// Reproduction of Figure 1: the paper's worked example. Prints the executed
// schedule with the inter-thread edges of the regular HBR and of the lazy
// HBR (the latter drops the unlock->lock edge), then verifies the counts the
// paper's §2 narrative claims: naive enumeration needs many schedules, they
// fall into exactly 2 HBR classes, 1 lazy-HBR class, and 1 terminal state.

#include <cstdio>

#include "lazyhb/lazyhb.hpp"
#include "support/options.hpp"

using namespace lazyhb;

namespace {

/// The program of Figure 1: T1 locks m, reads x, unlocks m, writes y;
/// T2 writes z, locks m, reads x, unlocks m.
void figure1() {
  Shared<int> x{7, "x"};
  Shared<int> y{0, "y"};
  Shared<int> z{0, "z"};
  Mutex m("m");
  auto t2 = spawn([&] {
    z.store(1);
    m.lock();
    (void)x.load();
    m.unlock();
  });
  m.lock();
  (void)x.load();
  m.unlock();
  y.store(1);
  t2.join();
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options("fig1_example", "Figure 1: the paper's worked example");
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  // Render the schedule of Figure 1 (T1 runs first, then T2) under both
  // relations. An empty choice list with the fallback scheduler produces
  // exactly that schedule modulo the spawn/join scaffolding.
  for (const char* relation : {"full", "lazy"}) {
    TraceOptions traceOptions;
    traceOptions.relation = relation;
    const ScheduleTrace replay = traceSchedule(figure1, {}, traceOptions);
    std::printf("--- schedule with %s-HBR inter-thread edges "
                "(\"<- {k}\" = depends on event k) ---\n%s\n",
                relation, replay.rendered.c_str());
  }

  const TestReport result =
      Session().strategy("dfs").schedules(100000).run(figure1);

  std::printf("--- exhaustive enumeration ---\n");
  std::printf("schedules executed : %llu\n",
              static_cast<unsigned long long>(result.schedulesExecuted));
  std::printf("distinct HBRs      : %llu   (paper: 2 — the two critical-section orders)\n",
              static_cast<unsigned long long>(result.distinctHbrs));
  std::printf("distinct lazy HBRs : %llu   (paper: 1 — mutex edges erased)\n",
              static_cast<unsigned long long>(result.distinctLazyHbrs));
  std::printf("distinct states    : %llu   (paper: 1)\n",
              static_cast<unsigned long long>(result.distinctStates));

  const bool ok = result.complete && result.distinctHbrs == 2 &&
                  result.distinctLazyHbrs == 1 && result.distinctStates == 1;
  std::printf("\n%s\n", ok ? "MATCHES the paper's Figure 1 narrative."
                           : "MISMATCH with the paper's Figure 1 narrative!");
  return ok ? 0 : 1;
}
