// Empirical check of the paper's two theorems — and of the value-class
// soundness property behind the caching-value explorer — over the corpus:
//
//   Theorem 2.1: equal HBR         => equal terminal state.
//   Theorem 2.2: equal lazy HBR    => equal terminal state (the contribution).
//   Value:       equal value class => equal terminal state (the
//                observation-centric coarsening; see core/equivalence.hpp).
//
// Every terminal schedule explored by DPOR *and* by a random-walk explorer
// (for linearization diversity beyond what DFS order produces) feeds three
// EquivalenceChecker instances; a conflict — two schedules agreeing on the
// relation fingerprint but disagreeing on the state — would falsify the
// theorem (or expose a fingerprint collision). Also reports the compression
// each relation achieves: classes per state.

#include <cstdio>

#include "bench_common.hpp"
#include "campaign/explorer_spec.hpp"

using namespace lazyhb;

namespace {

struct Row {
  std::string name;
  int id = 0;
  std::uint64_t terminalSchedules = 0;
  core::EquivalenceChecker::Stats thm21;
  core::EquivalenceChecker::Stats thm22;
  core::EquivalenceChecker::Stats thmValue;
};

Row checkBenchmark(const programs::ProgramSpec& spec, std::uint64_t limit,
                   std::uint32_t maxEvents) {
  Row row;
  row.name = spec.name;
  row.id = spec.id;
  auto accumulate = [&](const explore::ExplorationResult& result) {
    row.terminalSchedules += result.terminalSchedules;
    row.thm21.schedules += result.theorem21.schedules;
    row.thm21.classes += result.theorem21.classes;
    row.thm21.states += result.theorem21.states;
    row.thm21.conflicts += result.theorem21.conflicts;
    row.thm22.schedules += result.theorem22.schedules;
    row.thm22.classes += result.theorem22.classes;
    row.thm22.states += result.theorem22.states;
    row.thm22.conflicts += result.theorem22.conflicts;
    row.thmValue.schedules += result.theoremValue.schedules;
    row.thmValue.classes += result.theoremValue.classes;
    row.thmValue.states += result.theoremValue.states;
    row.thmValue.conflicts += result.theoremValue.conflicts;
  };
  {
    explore::ExplorerOptions options;
    options.scheduleLimit = limit;
    options.maxEventsPerSchedule = maxEvents;
    options.checkTheorems = true;
    const auto explorer = campaign::parseExplorerSpec("dpor")->create(options, 42);
    accumulate(explorer->explore(spec.body));
  }
  {
    explore::ExplorerOptions options;
    options.scheduleLimit = limit / 2;
    options.maxEventsPerSchedule = maxEvents;
    options.checkTheorems = true;
    const auto explorer = campaign::parseExplorerSpec("random")->create(
        options, 0x5eedULL + static_cast<std::uint64_t>(spec.id));
    accumulate(explorer->explore(spec.body));
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::corpusOptions(
      "tab_theorem_check",
      "empirical verification of Theorems 2.1/2.2 and value soundness");
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  const auto corpus = bench::selectCorpus(options);
  const auto limit = static_cast<std::uint64_t>(options.getInt("limit"));
  const auto maxEvents = static_cast<std::uint32_t>(options.getInt("max-events"));

  std::printf("Theorem + value-soundness check: DPOR + random walks, "
              "%llu-schedule budget\n\n",
              static_cast<unsigned long long>(limit));

  const auto rows = bench::runCorpus<Row>(
      corpus, static_cast<int>(options.getInt("jobs")),
      [&](const programs::ProgramSpec& spec) {
        return checkBenchmark(spec, limit, maxEvents);
      });

  support::Table table({"id", "benchmark", "terminal-scheds", "HBR-classes",
                        "lazy-classes", "value-classes", "states",
                        "2.1-conflicts", "2.2-conflicts", "value-conflicts"});
  std::uint64_t conflicts = 0;
  std::uint64_t totalTerminal = 0;
  std::uint64_t chainViolations = 0;
  for (const auto& row : rows) {
    conflicts += row.thm21.conflicts + row.thm22.conflicts + row.thmValue.conflicts;
    totalTerminal += row.terminalSchedules;
    // The class counts must respect the extended chain on every benchmark:
    // a value class unions one or more lazy classes, never the reverse.
    if (row.thmValue.states > row.thmValue.classes ||
        row.thmValue.classes > row.thm22.classes ||
        row.thm22.classes > row.thm21.classes) {
      ++chainViolations;
    }
    table.beginRow();
    table.cell(static_cast<std::int64_t>(row.id));
    table.cell(row.name);
    table.cell(row.terminalSchedules);
    table.cell(row.thm21.classes);
    table.cell(row.thm22.classes);
    table.cell(row.thmValue.classes);
    table.cell(row.thm22.states);
    table.cell(row.thm21.conflicts);
    table.cell(row.thm22.conflicts);
    table.cell(row.thmValue.conflicts);
  }
  bench::emit(table, options.getFlag("csv"));

  std::printf("\n%s terminal schedules checked; %llu theorem conflicts"
              " (must be 0: equal-(lazy)HBR and equal-value-class schedules"
              " always reached equal states); %llu chain violations"
              " (must be 0: #states <= #valueClasses <= #lazyHBRs <= #HBRs)\n",
              support::withCommas(totalTerminal).c_str(),
              static_cast<unsigned long long>(conflicts),
              static_cast<unsigned long long>(chainViolations));
  return conflicts == 0 && chainViolations == 0 ? 0 : 1;
}
