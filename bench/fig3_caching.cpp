// Reproduction of Figure 3: "The number of lazy happens-before relations
// explored within 100,000 schedules of regular vs. lazy HBR caching."
//
// For every benchmark two explorations run under the same schedule budget:
// HBR caching (prefix cache keyed on regular-HBR fingerprints, Musuvathi &
// Qadeer) and lazy HBR caching (keyed on lazy-HBR fingerprints, the paper's
// contribution). We count the distinct terminal lazy HBRs each reached.
// Lazy caching prunes redundant prefixes earlier, so within a fixed budget
// it reaches at least as many — and on contended benchmarks strictly more —
// terminal lazy HBRs. The paper reports 18 benchmarks where the techniques
// differ, with lazy caching exploring 8,969 (84%) more terminal lazy HBRs
// across them.
//
// Note on plotting conventions: the paper's prose counts the differing
// benchmarks as "below the diagonal"; with x = regular caching and
// y = lazy caching those points satisfy y > x. We report them as
// "differing" to avoid the ambiguity.
//
// The measurement runs on the campaign layer — both caching cells of every
// benchmark are independent campaign tasks, so the two explorations of one
// benchmark can even run on different workers. The table is computed from
// the same aggregator as `lazyhb bench` and --out dumps the same versioned
// BENCH_*.json report.

#include <cstdio>

#include "bench_common.hpp"
#include "core/redundancy.hpp"

using namespace lazyhb;

int main(int argc, char** argv) {
  auto options = bench::corpusOptions(
      "fig3_caching",
      "Figure 3: lazy HBRs explored by regular vs. lazy HBR caching");
  options.addString("out", "", "also write the campaign JSON report here");
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  auto campaignOptions = bench::campaignOptions(
      options, {*campaign::parseExplorerSpec("caching-full"),
                *campaign::parseExplorerSpec("caching-lazy")});
  std::printf("Figure 3 reproduction: HBR caching vs lazy HBR caching,"
              " %llu-schedule budget, %zu benchmarks\n\n",
              static_cast<unsigned long long>(
                  campaignOptions.explorer.scheduleLimit),
              campaignOptions.programs.size());

  const campaign::CampaignResult result = campaign::runCampaign(campaignOptions);
  const std::vector<core::CachingCounts> rows = campaign::fig3Counts(result);

  support::Table table({"id", "benchmark", "lazyHBRs(HBR-caching)",
                        "lazyHBRs(lazy-caching)", "sched(reg)", "sched(lazy)",
                        "hit-limit", "differs"});
  for (const core::CachingCounts& row : rows) {
    table.beginRow();
    table.cell(static_cast<std::int64_t>(row.id));
    table.cell(row.name);
    table.cell(row.lazyHbrsByRegularCaching);
    table.cell(row.lazyHbrsByLazyCaching);
    table.cell(row.schedulesRegular);
    table.cell(row.schedulesLazy);
    table.cell(std::string(row.hitScheduleLimit ? "yes" : "no"));
    table.cell(std::string(
        row.lazyHbrsByLazyCaching > row.lazyHbrsByRegularCaching ? "LAZY+" : "-"));
  }
  bench::emit(table, options.getFlag("csv"));

  const core::Fig3Summary summary = core::summarizeFig3(rows);
  std::printf("\nSummary (ours):  %d/%d benchmarks differ;"
              " lazy HBR caching explored %s (%.0f%%) more terminal lazy HBRs"
              " across them; regular caching never won on %d\n",
              summary.differing, summary.benchmarks,
              support::withCommas(summary.extraLazyHbrs).c_str(),
              summary.extraPercent, summary.regularWon);
  std::printf("Paper (Fig. 3):  18/79 benchmarks differ; lazy HBR caching"
              " explored 8,969 (84%%) more terminal lazy HBRs across them\n");
  std::printf("Campaign: %.2fs wall (%.2fs cpu), %d job(s)\n",
              result.wallSeconds, result.cpuSeconds, result.jobs);
  if (!bench::maybeWriteReport(options, campaignOptions, result)) return 1;
  return result.inequalityViolations == 0 ? 0 : 1;
}
