// Ablation of the design choices DESIGN.md calls out, on the full corpus:
//
//   dfs          — naive enumeration (no reduction; the baseline)
//   dpor-nosleep — Flanagan–Godefroid backtracking only
//   dpor         — + sleep sets (default configuration)
//   cache-hbr    — DFS + regular-HBR prefix caching (Musuvathi–Qadeer)
//   cache-lazy   — DFS + lazy-HBR prefix caching (the paper)
//   dpor+lazy$   — EXPERIMENTAL §4: DPOR with a lazy-HBR prefix cache
//
// For each variant we report total schedules executed, distinct terminal
// lazy HBRs and distinct terminal states across the corpus, plus how many
// benchmarks were fully exhausted within the budget. The interesting reads:
// how much of naive's work each reduction avoids, and whether the
// experimental §4 combination loses states (its caveat).

#include <cstdio>

#include "bench_common.hpp"
#include "campaign/explorer_spec.hpp"

using namespace lazyhb;

namespace {

struct Totals {
  std::uint64_t schedules = 0;
  std::uint64_t lazyHbrs = 0;
  std::uint64_t states = 0;
  std::uint64_t violationsFound = 0;  // benchmarks where a violation surfaced
  int complete = 0;
};

/// Display label -> ExplorerSpec mode name. Every variant — including the
/// ablation-only ones — is constructed through the shared factory.
struct Variant {
  const char* label;
  const char* mode;
};

constexpr Variant kVariants[] = {
    {"dfs", "dfs"},
    {"dpor-nosleep", "dpor-nosleep"},
    {"dpor", "dpor"},
    {"cache-hbr", "caching-full"},
    {"cache-lazy", "caching-lazy"},
    {"dpor+lazy$", "dpor-lazy-cache"},
};

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::corpusOptions(
      "ablation_dpor", "explorer-variant ablation over the corpus");
  // Six explorers over the whole corpus: default to a lighter budget than
  // the figure benches (the regime comparison is identical).
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  const auto corpus = bench::selectCorpus(options);
  auto limit = static_cast<std::uint64_t>(options.getInt("limit"));
  if (limit == 10000) limit = 2000;  // lighter default for 6x79 explorations
  const auto maxEvents = static_cast<std::uint32_t>(options.getInt("max-events"));

  std::printf("Explorer ablation, %llu-schedule budget per benchmark, %zu benchmarks\n\n",
              static_cast<unsigned long long>(limit), corpus.size());

  support::Table table({"explorer", "schedules(total)", "lazyHBRs(total)",
                        "states(total)", "bug-benchmarks-caught", "exhausted"});
  for (const Variant& variant : kVariants) {
    const auto parsed = campaign::parseExplorerSpec(variant.mode);
    if (!parsed) {
      std::fprintf(stderr, "unknown explorer mode '%s'\n", variant.mode);
      return 1;
    }
    const campaign::ExplorerSpec& explorerSpec = *parsed;
    const auto totalsPerBenchmark = bench::runCorpus<Totals>(
        corpus, static_cast<int>(options.getInt("jobs")),
        [&](const programs::ProgramSpec& spec) {
          explore::ExplorerOptions exploreOptions;
          exploreOptions.scheduleLimit = limit;
          exploreOptions.maxEventsPerSchedule = maxEvents;
          auto explorer = explorerSpec.create(exploreOptions, 42);
          const auto result = explorer->explore(spec.body);
          Totals t;
          t.schedules = result.schedulesExecuted;
          t.lazyHbrs = result.distinctLazyHbrs;
          t.states = result.distinctStates;
          t.violationsFound = result.foundViolation() ? 1 : 0;
          t.complete = result.complete ? 1 : 0;
          return t;
        });
    Totals sum;
    for (const Totals& t : totalsPerBenchmark) {
      sum.schedules += t.schedules;
      sum.lazyHbrs += t.lazyHbrs;
      sum.states += t.states;
      sum.violationsFound += t.violationsFound;
      sum.complete += t.complete;
    }
    table.beginRow();
    table.cell(std::string(variant.label));
    table.cell(sum.schedules);
    table.cell(sum.lazyHbrs);
    table.cell(sum.states);
    table.cell(sum.violationsFound);
    table.cell(static_cast<std::int64_t>(sum.complete));
  }
  bench::emit(table, options.getFlag("csv"));
  std::printf("\n'dpor+lazy$' is the experimental section-4 direction; compare its"
              " states/lazyHBRs against 'dpor' to see whether caching under DPOR"
              " sacrificed coverage within this budget.\n");
  return 0;
}
