// Shared driver for the figure/table reproduction benches: runs an explorer
// over the 79-benchmark corpus (optionally in parallel — explorations of
// distinct benchmarks are independent), and prints aligned tables plus
// optional CSV for external plotting.

#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "programs/registry.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace lazyhb::bench {

/// Options shared by every corpus bench.
inline support::Options corpusOptions(const char* name, const char* description) {
  support::Options options(name, description);
  options.addInt("limit", 10000, "schedule budget per benchmark (paper: 100000)");
  options.addInt("jobs", 4, "worker threads (benchmarks explored in parallel)");
  options.addInt("max-events", 65536, "per-schedule event budget");
  options.addFlag("csv", "also print machine-readable CSV");
  options.addString("only", "", "run a single benchmark by name");
  return options;
}

/// The subset of the corpus selected by --only (default: everything).
inline std::vector<const programs::ProgramSpec*> selectCorpus(
    const support::Options& options) {
  std::vector<const programs::ProgramSpec*> selected;
  const std::string only = options.getString("only");
  for (const auto& spec : programs::all()) {
    if (only.empty() || spec.name == only) selected.push_back(&spec);
  }
  return selected;
}

/// Run `explore(spec)` for every selected benchmark across a thread pool;
/// results land in a vector parallel to the selection.
template <typename Result>
std::vector<Result> runCorpus(
    const std::vector<const programs::ProgramSpec*>& corpus, int jobs,
    const std::function<Result(const programs::ProgramSpec&)>& explore) {
  std::vector<Result> results(corpus.size());
  support::ThreadPool pool(jobs);
  pool.parallelFor(corpus.size(), [&](std::size_t i) {
    results[i] = explore(*corpus[i]);
  });
  return results;
}

inline void emit(const support::Table& table, bool csv) {
  std::fputs(table.toText().c_str(), stdout);
  if (csv) {
    std::fputs("\n--- CSV ---\n", stdout);
    std::fputs(table.toCsv().c_str(), stdout);
  }
}

}  // namespace lazyhb::bench
