// Shared driver for the figure/table reproduction benches: runs an explorer
// over the benchmark corpus (optionally in parallel — explorations of
// distinct benchmarks are independent), and prints aligned tables plus
// optional CSV for external plotting.
//
// Benches whose measurement is a plain (programs × explorers) matrix go
// through the campaign layer (campaignOptions/maybeWriteReport below), so
// their tables come from the same aggregator as `lazyhb bench` and they can
// dump the same versioned BENCH_*.json via --out. Benches with bespoke
// per-benchmark procedures keep using runCorpus.

#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"
#include "explore/explorer.hpp"
#include "programs/registry.hpp"
#include "support/options.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace lazyhb::bench {

/// Options shared by every corpus bench.
inline support::Options corpusOptions(const char* name, const char* description) {
  support::Options options(name, description);
  options.addInt("limit", 10000, "schedule budget per benchmark (paper: 100000)");
  options.addInt("jobs", 4, "worker threads (benchmarks explored in parallel)");
  options.addInt("max-events", 65536, "per-schedule event budget");
  options.addFlag("csv", "also print machine-readable CSV");
  options.addString("only", "", "run a single benchmark by name");
  return options;
}

/// The subset of the corpus selected by --only (default: everything).
inline std::vector<const programs::ProgramSpec*> selectCorpus(
    const support::Options& options) {
  std::vector<const programs::ProgramSpec*> selected;
  const std::string only = options.getString("only");
  for (const auto& spec : programs::all()) {
    if (only.empty() || spec.name == only) selected.push_back(&spec);
  }
  return selected;
}

/// Run `explore(spec)` for every selected benchmark across a thread pool;
/// results land in a vector parallel to the selection.
template <typename Result>
std::vector<Result> runCorpus(
    const std::vector<const programs::ProgramSpec*>& corpus, int jobs,
    const std::function<Result(const programs::ProgramSpec&)>& explore) {
  std::vector<Result> results(corpus.size());
  support::ThreadPool pool(jobs);
  pool.parallelFor(corpus.size(), [&](std::size_t i) {
    results[i] = explore(*corpus[i]);
  });
  return results;
}

/// Build campaign options from the shared corpus flags for a matrix bench
/// running `explorers` over the --only selection.
inline campaign::CampaignOptions campaignOptions(
    const support::Options& options,
    std::vector<campaign::ExplorerSpec> explorers) {
  campaign::CampaignOptions co;
  co.explorers = std::move(explorers);
  co.programs = selectCorpus(options);
  co.explorer.scheduleLimit = static_cast<std::uint64_t>(options.getInt("limit"));
  co.explorer.maxEventsPerSchedule =
      static_cast<std::uint32_t>(options.getInt("max-events"));
  co.jobs = static_cast<int>(options.getInt("jobs"));
  return co;
}

/// Honour a bench's --out flag: write the campaign's versioned JSON report.
/// The config block is echoed from the CampaignOptions the run actually
/// used, so the report stays self-describing. Returns false when --out was
/// given but the file could not be written — callers must fail their exit
/// status, or a pipeline depending on the BENCH_*.json artifact sees
/// success with no report.
[[nodiscard]] inline bool maybeWriteReport(
    const support::Options& options,
    const campaign::CampaignOptions& campaignOptions,
    const campaign::CampaignResult& result) {
  const std::string out = options.getString("out");
  if (out.empty()) return true;
  campaign::ReportConfig config;
  config.scheduleLimit = campaignOptions.explorer.scheduleLimit;
  config.maxEventsPerSchedule = campaignOptions.explorer.maxEventsPerSchedule;
  config.seed = campaignOptions.seed;
  if (!campaign::writeReportFile(out, result, config)) return false;
  if (out != "-") std::printf("report: %s\n", out.c_str());
  return true;
}

inline void emit(const support::Table& table, bool csv) {
  std::fputs(table.toText().c_str(), stdout);
  if (csv) {
    std::fputs("\n--- CSV ---\n", stdout);
    std::fputs(table.toCsv().c_str(), stdout);
  }
}

}  // namespace lazyhb::bench
