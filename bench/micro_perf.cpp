// Micro-benchmarks (google-benchmark) for the substrate the experiments
// stand on: fiber context switches, controlled-execution throughput, vector
// clock operations, incremental fingerprint maintenance, exact Foata
// canonicalisation and cache lookups. These quantify the "executions per
// second" budget that makes 100k-schedule explorations practical.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/hbr_cache.hpp"
#include "explore/dfs_explorer.hpp"
#include "explore/dpor_explorer.hpp"
#include "explore/random_explorer.hpp"
#include "explore/replay.hpp"
#include "memory/memory_model.hpp"
#include "runtime/api.hpp"
#include "runtime/fiber.hpp"
#include "support/rng.hpp"
#include "trace/clock_arena.hpp"
#include "trace/foata.hpp"
#include "trace/vector_clock.hpp"

namespace {

using namespace lazyhb;

// --- fiber switching ---------------------------------------------------------

void BM_FiberRoundTrip(benchmark::State& state) {
  runtime::StackPool pool;
  // One fiber that yields forever; each iteration is resume+yield.
  bool stop = false;
  runtime::Fiber* self = nullptr;
  runtime::Fiber fiber(pool, [&] {
    while (!stop) {
      self->yieldToHost();
    }
  });
  self = &fiber;
  for (auto _ : state) {
    fiber.resume();
  }
  stop = true;
  fiber.resume();  // let it finish
}
BENCHMARK(BM_FiberRoundTrip);

// --- execution throughput ------------------------------------------------------

void incrementProgram() {
  Shared<int> x{0, "x"};
  Mutex m("m");
  auto t = spawn([&] {
    LockGuard guard(m);
    x.store(x.load() + 1);
  });
  {
    LockGuard guard(m);
    x.store(x.load() + 1);
  }
  t.join();
}

void BM_ExecutionsPerSecond(benchmark::State& state) {
  runtime::StackPool pool;
  trace::TraceRecorder recorder;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    runtime::Execution exec(runtime::Config{}, pool, &recorder);
    explore::FixedScheduler scheduler({});
    benchmark::DoNotOptimize(exec.run(incrementProgram, scheduler));
    ++seed;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ExecutionsPerSecond);

void BM_RandomExploration1k(benchmark::State& state) {
  for (auto _ : state) {
    explore::ExplorerOptions options;
    options.scheduleLimit = 1000;
    explore::RandomExplorer explorer(options, 42);
    benchmark::DoNotOptimize(explorer.explore(incrementProgram));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_RandomExploration1k);

void BM_DporExplorationComplete(benchmark::State& state) {
  for (auto _ : state) {
    explore::ExplorerOptions options;
    options.scheduleLimit = 1u << 20;
    explore::DporExplorer explorer(options);
    benchmark::DoNotOptimize(explorer.explore(incrementProgram));
  }
}
BENCHMARK(BM_DporExplorationComplete);

// --- vector clocks ------------------------------------------------------------

void BM_VectorClockJoin(benchmark::State& state) {
  const int width = static_cast<int>(state.range(0));
  trace::VectorClock a;
  trace::VectorClock b;
  support::Rng rng(7);
  for (int i = 0; i < width; ++i) {
    a.set(i, static_cast<std::uint32_t>(rng.below(1000)));
    b.set(i, static_cast<std::uint32_t>(rng.below(1000)));
  }
  for (auto _ : state) {
    a.joinWith(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VectorClockJoin)->Arg(4)->Arg(16)->Arg(64);

void BM_ClockArenaJoin(benchmark::State& state) {
  // The recorder's actual clock primitive: a branch-free span join between
  // two arena rows (compare against BM_VectorClockJoin above, the owning
  // fallback the Foata/test layers use).
  const auto width = static_cast<std::uint32_t>(state.range(0));
  trace::ClockArena arena{width};
  support::Rng rng(7);
  (void)arena.appendRow();
  (void)arena.appendRow();  // may reallocate: take row pointers only now
  auto* a = const_cast<std::uint32_t*>(arena.row(0));
  auto* b = const_cast<std::uint32_t*>(arena.row(1));
  for (std::uint32_t i = 0; i < width; ++i) {
    a[i] = static_cast<std::uint32_t>(rng.below(1000));
    b[i] = static_cast<std::uint32_t>(rng.below(1000));
  }
  for (auto _ : state) {
    trace::joinClockSpans(a, b, width);
    benchmark::DoNotOptimize(a[0]);
  }
}
BENCHMARK(BM_ClockArenaJoin)->Arg(4)->Arg(16)->Arg(64);

// --- recorder hot loop ---------------------------------------------------------

/// Captures the observer stream of one execution so the recorder can be
/// benchmarked in isolation (no fibers, no scheduling — just onEvent).
struct CapturedTrace : runtime::ExecutionObserver {
  struct Registration {
    std::int32_t index;
    runtime::Uid uid;
    runtime::ObjectKind kind;
    std::string name;
    std::uint64_t initialValueHash;
  };
  std::vector<Registration> registrations;
  std::vector<runtime::EventRecord> events;

  void onObjectRegistered(const runtime::Execution&, std::int32_t index,
                          runtime::Uid uid, runtime::ObjectKind kind,
                          const std::string& name,
                          std::uint64_t initialValueHash) override {
    registrations.push_back({index, uid, kind, name, initialValueHash});
  }
  void onEvent(const runtime::Execution&, const runtime::EventRecord& ev) override {
    events.push_back(ev);
  }
};

void BM_TraceRecorderOnEvent(benchmark::State& state) {
  runtime::StackPool pool;
  CapturedTrace captured;
  runtime::Execution source(runtime::Config{}, pool, &captured);
  explore::FixedScheduler scheduler({});
  (void)source.run(incrementProgram, scheduler);

  trace::TraceRecorder recorder;
  runtime::Execution dummy(runtime::Config{}, pool, nullptr);  // never run
  for (auto _ : state) {
    recorder.onExecutionStart(dummy);
    for (const auto& reg : captured.registrations) {
      recorder.onObjectRegistered(dummy, reg.index, reg.uid, reg.kind, reg.name,
                                reg.initialValueHash);
    }
    for (const auto& ev : captured.events) {
      recorder.onEvent(dummy, ev);
    }
    benchmark::DoNotOptimize(recorder.fingerprint(trace::Relation::Lazy));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * captured.events.size()));
}
BENCHMARK(BM_TraceRecorderOnEvent);

// --- fingerprints ---------------------------------------------------------------

void BM_MultisetHashAdd(benchmark::State& state) {
  support::MultisetHash acc;
  std::uint64_t i = 0;
  for (auto _ : state) {
    acc.add(support::hash128(i++));
    benchmark::DoNotOptimize(acc.digest());
  }
}
BENCHMARK(BM_MultisetHashAdd);

void BM_HbrCacheCheckAndInsert(benchmark::State& state) {
  core::HbrCache cache;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.checkAndInsert(support::hash128(i++ % 4096)));
  }
}
BENCHMARK(BM_HbrCacheCheckAndInsert);

void BM_HbrCacheHitAtSize(benchmark::State& state) {
  // Steady-state lookups against a populated table (the caching explorers'
  // common case late in a campaign: nearly every probe is a hit).
  const auto entries = static_cast<std::uint64_t>(state.range(0));
  core::HbrCache cache;
  for (std::uint64_t i = 0; i < entries; ++i) cache.insert(support::hash128(i));
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.contains(support::hash128(i++ % entries)));
  }
}
BENCHMARK(BM_HbrCacheHitAtSize)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

// --- undo-log checkpoints --------------------------------------------------------
//
// The checkpoint store's cost model (docs/performance.md): staging is
// O(objects touched since the last stage), rollback replays the undo chain
// newest-first, and evicting a stage keeps its undo entries so rolling back
// *past* an evicted depth still works. The probes below pin each leg of
// that model against a fixed population of registered objects, so a
// regression back to O(all objects) staging shows up as the Arg sweep
// going flat.

constexpr int kUndoObjects = 256;
int gTouchedSuffix = 0;  // how many objects the program's suffix re-touches

void touchManyProgram() {
  // kUndoObjects registered vars, all written once (the prefix); then the
  // suffix re-touches the first gTouchedSuffix of them, one store each.
  std::vector<std::unique_ptr<Shared<int>>> vars;
  vars.reserve(kUndoObjects);
  for (int i = 0; i < kUndoObjects; ++i) {
    vars.push_back(std::make_unique<Shared<int>>(0, "v"));
  }
  for (auto& v : vars) v->store(1);
  for (int i = 0; i < gTouchedSuffix; ++i) {
    vars[static_cast<std::size_t>(i)]->store(2);
  }
}

CapturedTrace captureTouchTrace(int touchedSuffix) {
  runtime::StackPool pool;
  CapturedTrace captured;
  runtime::Execution source(runtime::Config{}, pool, &captured);
  explore::FixedScheduler scheduler({});
  gTouchedSuffix = touchedSuffix;
  (void)source.run(touchManyProgram, scheduler);
  return captured;
}

/// Feeds a captured trace's prefix into `recorder` and stages a base
/// checkpoint there. Returns the base depth.
std::size_t feedPrefixAndStage(trace::TraceRecorder& recorder,
                               runtime::Execution& dummy,
                               const CapturedTrace& full, std::size_t prefix) {
  recorder.onExecutionStart(dummy);
  for (const auto& reg : full.registrations) {
    recorder.onObjectRegistered(dummy, reg.index, reg.uid, reg.kind, reg.name,
                                reg.initialValueHash);
  }
  for (std::size_t i = 0; i < prefix; ++i) {
    recorder.onEvent(dummy, full.events[i]);
  }
  return recorder.checkpoint();
}

void BM_RecorderCheckpointStageTouched(benchmark::State& state) {
  // One stage/rollback cycle where the span between stages touches K of
  // the 256 registered objects: feed the K-store suffix (each first touch
  // undo-logs one cursor pre-image), stage, roll back. Time per iteration
  // must scale with K, not with the object population.
  const int touched = static_cast<int>(state.range(0));
  const CapturedTrace base = captureTouchTrace(0);
  const CapturedTrace full = captureTouchTrace(touched);
  const std::size_t prefix = base.events.size();

  runtime::StackPool pool;
  trace::TraceRecorder recorder;
  runtime::Execution dummy(runtime::Config{}, pool, nullptr);  // never run
  const std::size_t depth = feedPrefixAndStage(recorder, dummy, full, prefix);
  for (auto _ : state) {
    for (std::size_t i = prefix; i < full.events.size(); ++i) {
      recorder.onEvent(dummy, full.events[i]);
    }
    benchmark::DoNotOptimize(recorder.checkpoint());
    recorder.rollbackTo(depth);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * touched);
}
BENCHMARK(BM_RecorderCheckpointStageTouched)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

void BM_RecorderUndoChainRollback(benchmark::State& state) {
  // S stages spread along a 256-store suffix, then one rollback to the
  // base: the rollback discards every deeper stage and replays the whole
  // undo chain newest-first, whatever S is.
  const int stages = static_cast<int>(state.range(0));
  const CapturedTrace base = captureTouchTrace(0);
  const CapturedTrace full = captureTouchTrace(kUndoObjects);
  const std::size_t prefix = base.events.size();
  const std::size_t suffix = full.events.size() - prefix;
  const std::size_t chunk = suffix / static_cast<std::size_t>(stages);

  runtime::StackPool pool;
  trace::TraceRecorder recorder;
  runtime::Execution dummy(runtime::Config{}, pool, nullptr);  // never run
  const std::size_t depth = feedPrefixAndStage(recorder, dummy, full, prefix);
  for (auto _ : state) {
    std::size_t fed = 0;
    for (std::size_t i = prefix; i < full.events.size(); ++i) {
      recorder.onEvent(dummy, full.events[i]);
      if (++fed % chunk == 0) (void)recorder.checkpoint();
    }
    recorder.rollbackTo(depth);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(suffix));
}
BENCHMARK(BM_RecorderUndoChainRollback)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_RecorderRollbackPastEvicted(benchmark::State& state) {
  // The byte-budget eviction path: stage mid-suffix, finish the suffix,
  // evict the mid stage, then roll back to the base *past* the evicted
  // depth — the retained undo entries must still replay cleanly.
  const CapturedTrace base = captureTouchTrace(0);
  const CapturedTrace full = captureTouchTrace(kUndoObjects);
  const std::size_t prefix = base.events.size();
  const std::size_t mid = prefix + (full.events.size() - prefix) / 2;

  runtime::StackPool pool;
  trace::TraceRecorder recorder;
  runtime::Execution dummy(runtime::Config{}, pool, nullptr);  // never run
  const std::size_t depth = feedPrefixAndStage(recorder, dummy, full, prefix);
  for (auto _ : state) {
    for (std::size_t i = prefix; i < mid; ++i) {
      recorder.onEvent(dummy, full.events[i]);
    }
    const std::size_t midDepth = recorder.checkpoint();
    for (std::size_t i = mid; i < full.events.size(); ++i) {
      recorder.onEvent(dummy, full.events[i]);
    }
    benchmark::DoNotOptimize(recorder.evictCheckpoint(midDepth));
    recorder.rollbackTo(depth);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(full.events.size() - prefix));
}
BENCHMARK(BM_RecorderRollbackPastEvicted);

int gDeepStores = 0;  // stores per thread in deepTreeProgram

/// Descend `frames` stack frames, then run the store loop with all of them
/// live: each fiber switch inside the loop snapshots the whole used stack,
/// so the per-stage runtime image is ~frames x frame-size bytes.
void deepSpine(int frames, Shared<int>& x, int sign) {
  if (frames > 0) {
    deepSpine(frames - 1, x, sign);
    benchmark::DoNotOptimize(frames);  // keep the frame from being elided
    return;
  }
  for (int i = 0; i < gDeepStores; ++i) x.store(sign * i);
}

void deepTreeProgram() {
  // Two always-enabled writers on deep stacks: every depth of the schedule
  // tree is a branch point, so one DFS branch stages a checkpoint at every
  // event, each pinning both threads' fiber images. Live staged bytes grow
  // linearly with depth at ~10 KB/stage — the deep-tree regime where the
  // default 256 MiB snapshot budget binds within one branch.
  Shared<int> x{0, "x"};
  auto t = spawn([&] { deepSpine(256, x, 1); });
  deepSpine(256, x, -1);
  t.join();
}

void BM_DfsDeepTreeDefaultBudget(benchmark::State& state) {
  // End-to-end: a deep-tree exploration at the DEFAULT snapshot budget.
  // With range(0) stores per thread the first branch stacks ~range(0)
  // stages; once their summed fiber images cross 256 MiB the engine evicts
  // the shallowest stages mid-branch and later divergences below an
  // evicted depth replay from a shallower stage (counters below;
  // docs/performance.md records the measured numbers). Counts are
  // byte-identical to an unlimited-budget run either way.
  gDeepStores = static_cast<int>(state.range(0));
  explore::CheckpointStats last{};
  for (auto _ : state) {
    explore::ExplorerOptions options;
    options.scheduleLimit = 4;
    options.maxEventsPerSchedule = 1u << 18;
    options.checkpointable = true;  // fiber images dominate the stage cost
    // ExplorerOptions defaults to defaultSnapshotBudgetBytes(): the probe
    // deliberately measures the out-of-the-box configuration.
    explore::DfsExplorer explorer(options);
    const auto result = explorer.explore(deepTreeProgram);
    last = result.checkpointStats;
    benchmark::DoNotOptimize(result.schedulesExecuted);
  }
  state.counters["stages"] = static_cast<double>(last.stages);
  state.counters["bytes_staged"] = static_cast<double>(last.bytesStaged);
  state.counters["evictions"] = static_cast<double>(last.evictions);
  state.counters["replay_fallbacks"] = static_cast<double>(last.replayFallbacks);
}
BENCHMARK(BM_DfsDeepTreeDefaultBudget)
    ->Arg(4000)     // live stages stay far under budget: 0 evictions
    ->Arg(16000)    // stacked fiber images cross 256 MiB: the budget binds
    ->Unit(benchmark::kMillisecond);

void BM_DfsDeepTreeTsoDefaultBudget(benchmark::State& state) {
  // The same deep-tree regime under TSO: every store now stages a buffered
  // write plus a flush transition (twice the events per branch, so half the
  // stores reach the same depth), and every checkpoint pins the writers'
  // store-buffer pre-images through the undo log on top of their fiber
  // images. The budget must bind the same way it does under SC — evictions
  // without count drift — with buffers live across almost every stage.
  gDeepStores = static_cast<int>(state.range(0));
  explore::CheckpointStats last{};
  for (auto _ : state) {
    explore::ExplorerOptions options;
    options.scheduleLimit = 4;
    options.maxEventsPerSchedule = 1u << 18;
    options.checkpointable = true;
    options.memoryModel = memory::MemoryModel::Tso;
    explore::DfsExplorer explorer(options);
    const auto result = explorer.explore(deepTreeProgram);
    last = result.checkpointStats;
    benchmark::DoNotOptimize(result.schedulesExecuted);
  }
  state.counters["stages"] = static_cast<double>(last.stages);
  state.counters["bytes_staged"] = static_cast<double>(last.bytesStaged);
  state.counters["evictions"] = static_cast<double>(last.evictions);
  state.counters["replay_fallbacks"] = static_cast<double>(last.replayFallbacks);
}
BENCHMARK(BM_DfsDeepTreeTsoDefaultBudget)
    ->Arg(2000)     // ~6k stages: under budget, 0 evictions
    ->Arg(12000)    // ~36k stages of fiber+buffer images: the budget binds
    ->Unit(benchmark::kMillisecond);

void contendedProgram() {
  // Three unlocked incrementers: a schedule tree deep and wide enough that
  // a small snapshot budget forces constant eviction during the walk.
  Shared<int> x{0, "x"};
  auto t1 = spawn([&] { x.store(x.load() + 1); });
  auto t2 = spawn([&] { x.store(x.load() + 1); });
  x.store(x.load() + 1);
  t1.join();
  t2.join();
}

void BM_DfsExplorationAtBudget(benchmark::State& state) {
  // End-to-end eviction cost: the same DFS exploration at an unlimited
  // budget (0), a budget that evicts occasionally, and one that thrashes.
  // Counts are byte-identical at every Arg; only the replay spans differ.
  for (auto _ : state) {
    explore::ExplorerOptions options;
    options.scheduleLimit = 1u << 14;
    options.snapshotBudgetBytes = static_cast<std::uint64_t>(state.range(0));
    explore::DfsExplorer explorer(options);
    benchmark::DoNotOptimize(explorer.explore(contendedProgram));
  }
}
BENCHMARK(BM_DfsExplorationAtBudget)->Arg(0)->Arg(4096)->Arg(256);

// --- exact canonical forms -------------------------------------------------------

void BM_FoataNormalForm(benchmark::State& state) {
  // Record one execution with predecessors kept, then canonicalise it
  // repeatedly (the cost model for "exact mode" experiments).
  runtime::StackPool pool;
  trace::TraceRecorder recorder(trace::TraceRecorder::Options{true, false});
  runtime::Execution exec(runtime::Config{}, pool, &recorder);
  explore::FixedScheduler scheduler({});
  (void)exec.run(incrementProgram, scheduler);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::foataNormalForm(recorder, trace::Relation::Lazy));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * recorder.eventCount()));
}
BENCHMARK(BM_FoataNormalForm);

}  // namespace

BENCHMARK_MAIN();
