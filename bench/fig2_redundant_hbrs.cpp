// Reproduction of Figure 2: "The number of regular vs. lazy happens-before
// relations explored within 100,000 schedules of DPOR."
//
// For every benchmark, DPOR (regular HBR, sleep sets on — the technique the
// paper runs) explores up to --limit schedules; we count the distinct
// terminal HBRs (x) and distinct terminal lazy HBRs (y). A benchmark below
// the diagonal (y < x) explored HBR classes that the lazy HBR proves
// redundant. The paper reports 33 of 79 benchmarks below the diagonal, with
// 910,007 (80%) of the unique HBRs on those benchmarks redundant; we expect
// the same *shape* (a large below-diagonal subset with a high redundancy
// percentage), not the same absolute numbers (different corpus, budget and
// substrate).

#include <cstdio>

#include "bench_common.hpp"
#include "core/redundancy.hpp"
#include "explore/dpor_explorer.hpp"

using namespace lazyhb;

namespace {

struct Row {
  core::BenchmarkCounts counts;
  bool complete = false;
};

Row expledBenchmark(const programs::ProgramSpec& spec, std::uint64_t limit,
                    std::uint32_t maxEvents) {
  explore::ExplorerOptions options;
  options.scheduleLimit = limit;
  options.maxEventsPerSchedule = maxEvents;
  explore::DporExplorer explorer(options, explore::DporOptions{});
  const auto result = explorer.explore(spec.body);
  Row row;
  row.counts.name = spec.name;
  row.counts.id = spec.id;
  row.counts.schedules = result.schedulesExecuted;
  row.counts.hbrs = result.distinctHbrs;
  row.counts.lazyHbrs = result.distinctLazyHbrs;
  row.counts.states = result.distinctStates;
  row.counts.hitScheduleLimit = result.hitScheduleLimit;
  row.complete = result.complete;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::corpusOptions(
      "fig2_redundant_hbrs",
      "Figure 2: #HBRs vs #lazy HBRs explored by DPOR per benchmark");
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  const auto corpus = bench::selectCorpus(options);
  const auto limit = static_cast<std::uint64_t>(options.getInt("limit"));
  const auto maxEvents = static_cast<std::uint32_t>(options.getInt("max-events"));

  std::printf("Figure 2 reproduction: DPOR with a %llu-schedule budget, %zu benchmarks\n\n",
              static_cast<unsigned long long>(limit), corpus.size());

  const auto rows = bench::runCorpus<Row>(
      corpus, static_cast<int>(options.getInt("jobs")),
      [&](const programs::ProgramSpec& spec) {
        return expledBenchmark(spec, limit, maxEvents);
      });

  support::Table table({"id", "benchmark", "schedules", "#HBRs", "#lazyHBRs",
                        "hit-limit", "below-diagonal"});
  std::vector<core::BenchmarkCounts> counts;
  counts.reserve(rows.size());
  for (const Row& row : rows) {
    counts.push_back(row.counts);
    table.beginRow();
    table.cell(static_cast<std::int64_t>(row.counts.id));
    table.cell(row.counts.name);
    table.cell(row.counts.schedules);
    table.cell(row.counts.hbrs);
    table.cell(row.counts.lazyHbrs);
    table.cell(std::string(row.counts.hitScheduleLimit ? "yes" : "no"));
    table.cell(std::string(row.counts.lazyHbrs < row.counts.hbrs ? "BELOW" : "-"));
  }
  bench::emit(table, options.getFlag("csv"));

  const core::Fig2Summary summary = core::summarizeFig2(counts);
  std::printf("\nSummary (ours):  %d/%d benchmarks below the diagonal;"
              " %s of %s unique HBRs on them are redundant (%.0f%%)\n",
              summary.belowDiagonal, summary.benchmarks,
              support::withCommas(summary.redundantHbrs).c_str(),
              support::withCommas(summary.hbrsBelow).c_str(),
              summary.redundantPercent);
  std::printf("Paper (Fig. 2):  33/79 benchmarks below the diagonal;"
              " 910,007 of the unique HBRs on them are redundant (80%%)\n");
  return 0;
}
