// Reproduction of Figure 2: "The number of regular vs. lazy happens-before
// relations explored within 100,000 schedules of DPOR."
//
// For every benchmark, DPOR (regular HBR, sleep sets on — the technique the
// paper runs) explores up to --limit schedules; we count the distinct
// terminal HBRs (x) and distinct terminal lazy HBRs (y). A benchmark below
// the diagonal (y < x) explored HBR classes that the lazy HBR proves
// redundant. The paper reports 33 of 79 benchmarks below the diagonal, with
// 910,007 (80%) of the unique HBRs on those benchmarks redundant; we expect
// the same *shape* (a large below-diagonal subset with a high redundancy
// percentage), not the same absolute numbers (different corpus, budget and
// substrate).
//
// The measurement runs on the campaign layer, so the table is computed from
// the same aggregator as `lazyhb bench` and --out dumps the same versioned
// BENCH_*.json report.

#include <cstdio>

#include "bench_common.hpp"
#include "core/redundancy.hpp"

using namespace lazyhb;

int main(int argc, char** argv) {
  auto options = bench::corpusOptions(
      "fig2_redundant_hbrs",
      "Figure 2: #HBRs vs #lazy HBRs explored by DPOR per benchmark");
  options.addString("out", "", "also write the campaign JSON report here");
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  auto campaignOptions =
      bench::campaignOptions(options, {*campaign::parseExplorerSpec("dpor")});
  std::printf(
      "Figure 2 reproduction: DPOR with a %llu-schedule budget, %zu benchmarks\n\n",
      static_cast<unsigned long long>(campaignOptions.explorer.scheduleLimit),
      campaignOptions.programs.size());

  const campaign::CampaignResult result = campaign::runCampaign(campaignOptions);
  const std::vector<core::BenchmarkCounts> counts = campaign::fig2Counts(result);

  support::Table table({"id", "benchmark", "schedules", "#HBRs", "#lazyHBRs",
                        "hit-limit", "below-diagonal"});
  for (const core::BenchmarkCounts& row : counts) {
    table.beginRow();
    table.cell(static_cast<std::int64_t>(row.id));
    table.cell(row.name);
    table.cell(row.schedules);
    table.cell(row.hbrs);
    table.cell(row.lazyHbrs);
    table.cell(std::string(row.hitScheduleLimit ? "yes" : "no"));
    table.cell(std::string(row.lazyHbrs < row.hbrs ? "BELOW" : "-"));
  }
  bench::emit(table, options.getFlag("csv"));

  const core::Fig2Summary summary = core::summarizeFig2(counts);
  std::printf("\nSummary (ours):  %d/%d benchmarks below the diagonal;"
              " %s of %s unique HBRs on them are redundant (%.0f%%)\n",
              summary.belowDiagonal, summary.benchmarks,
              support::withCommas(summary.redundantHbrs).c_str(),
              support::withCommas(summary.hbrsBelow).c_str(),
              summary.redundantPercent);
  std::printf("Paper (Fig. 2):  33/79 benchmarks below the diagonal;"
              " 910,007 of the unique HBRs on them are redundant (80%%)\n");
  std::printf("Campaign: %.2fs wall (%.2fs cpu), %d job(s)\n",
              result.wallSeconds, result.cpuSeconds, result.jobs);
  if (!bench::maybeWriteReport(options, campaignOptions, result)) return 1;
  return result.inequalityViolations == 0 ? 0 : 1;
}
