// Reproduction of the paper's §3 counting chain:
//
//     #states <= #valueClasses <= #lazyHBRs <= #HBRs <= #schedules <= limit
//
// verified per benchmark under naive systematic enumeration (the chain is a
// hard invariant of a correct implementation for ANY explorer; enumeration
// gives the densest data). Prints one row per benchmark and fails loudly if
// any link of the chain breaks.

#include <cstdio>

#include "bench_common.hpp"
#include "campaign/explorer_spec.hpp"
#include "core/redundancy.hpp"

using namespace lazyhb;

int main(int argc, char** argv) {
  auto options = bench::corpusOptions(
      "tab_inequality", "per-benchmark verification of the section-3 counting chain");
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  const auto corpus = bench::selectCorpus(options);
  auto limit = static_cast<std::uint64_t>(options.getInt("limit"));
  if (limit == 10000) limit = 5000;  // naive enumeration default
  const auto maxEvents = static_cast<std::uint32_t>(options.getInt("max-events"));

  std::printf("Counting chain (#states <= #valueClasses <= #lazyHBRs <= #HBRs"
              " <= #schedules),"
              " naive enumeration, %llu-schedule budget\n\n",
              static_cast<unsigned long long>(limit));

  const auto rows = bench::runCorpus<core::BenchmarkCounts>(
      corpus, static_cast<int>(options.getInt("jobs")),
      [&](const programs::ProgramSpec& spec) {
        explore::ExplorerOptions exploreOptions;
        exploreOptions.scheduleLimit = limit;
        exploreOptions.maxEventsPerSchedule = maxEvents;
        const auto explorer =
            campaign::parseExplorerSpec("dfs")->create(exploreOptions, 42);
        const auto result = explorer->explore(spec.body);
        core::BenchmarkCounts counts;
        counts.name = spec.name;
        counts.id = spec.id;
        counts.schedules = result.schedulesExecuted;
        counts.hbrs = result.distinctHbrs;
        counts.lazyHbrs = result.distinctLazyHbrs;
        counts.valueClasses = result.distinctValueClasses;
        counts.states = result.distinctStates;
        counts.hitScheduleLimit = result.hitScheduleLimit;
        return counts;
      });

  support::Table table({"id", "benchmark", "#states", "#valueClasses",
                        "#lazyHBRs", "#HBRs", "#schedules", "chain"});
  int violations = 0;
  for (const auto& row : rows) {
    const std::string diagnostic = core::checkCountingChain(row, limit);
    if (!diagnostic.empty()) ++violations;
    table.beginRow();
    table.cell(static_cast<std::int64_t>(row.id));
    table.cell(row.name);
    table.cell(row.states);
    table.cell(row.valueClasses);
    table.cell(row.lazyHbrs);
    table.cell(row.hbrs);
    table.cell(row.schedules);
    table.cell(diagnostic.empty() ? std::string("ok") : diagnostic);
  }
  bench::emit(table, options.getFlag("csv"));

  std::printf("\n%d/%zu benchmarks violate the chain (paper: the chain holds by "
              "construction; any violation is an implementation bug)\n",
              violations, rows.size());
  return violations == 0 ? 0 : 1;
}
