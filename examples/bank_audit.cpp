// Bank audit: the paper's motivating scenario in application form.
//
// A bank guards every operation with ONE coarse mutex — the simple locking
// discipline well-engineered software deliberately chooses. Tellers move
// money between disjoint account pairs while an auditor sums balances under
// the same lock. The invariant (total conservation) holds; what varies
// between interleavings is only the ORDER of critical sections.
//
// This example shows the lazy HBR earning its keep: systematic testing with
// the regular HBR must explore every critical-section ordering; the lazy
// HBR proves almost all of them equivalent, so the verification evidence
// ("invariant holds in all interleavings") comes from exploring a handful
// of schedule classes. Both explorations run through lazyhb::Session, the
// public embedding facade.

#include <cstdio>
#include <memory>
#include <vector>

#include "lazyhb/lazyhb.hpp"
#include "support/options.hpp"

using namespace lazyhb;

namespace {

constexpr int kTellers = 3;
constexpr int kInitialBalance = 100;

void bankDay() {
  Mutex bankLock("bank");
  std::vector<std::unique_ptr<Shared<int>>> accounts;
  for (int i = 0; i < 2 * kTellers; ++i) {
    accounts.push_back(std::make_unique<Shared<int>>(kInitialBalance, "acct"));
  }

  std::vector<ThreadHandle> tellers;
  for (int t = 0; t < kTellers; ++t) {
    tellers.push_back(spawn([&, t] {
      auto& from = *accounts[static_cast<std::size_t>(2 * t)];
      auto& to = *accounts[static_cast<std::size_t>(2 * t + 1)];
      LockGuard guard(bankLock);
      from.store(from.load() - 25);
      to.store(to.load() + 25);
    }));
  }

  auto auditor = spawn([&] {
    LockGuard guard(bankLock);
    int total = 0;
    for (auto& account : accounts) {
      total += account->load();
    }
    // The audit may run before, between or after transfers; conservation
    // must hold at every quiescent point.
    checkAlways(total == 2 * kTellers * kInitialBalance, "money is conserved");
  });

  for (auto& teller : tellers) teller.join();
  auditor.join();
}

}  // namespace

int main(int argc, char** argv) {
  support::Options options("bank_audit", "coarse-locked bank under systematic testing");
  options.addInt("limit", 200000, "schedule budget");
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  const Session session =
      Session().schedules(static_cast<std::uint64_t>(options.getInt("limit")));

  std::printf("Exploring a %d-teller coarse-locked bank + auditor...\n\n", kTellers);

  const TestReport base = Session(session).strategy("dfs").run(bankDay);
  std::printf("naive enumeration : %7llu schedules, %llu HBR classes, "
              "%llu lazy classes, %llu states, violations: %zu\n",
              static_cast<unsigned long long>(base.schedulesExecuted),
              static_cast<unsigned long long>(base.distinctHbrs),
              static_cast<unsigned long long>(base.distinctLazyHbrs),
              static_cast<unsigned long long>(base.distinctStates),
              base.violations.size());

  const TestReport reduced = Session(session).strategy("caching-lazy").run(bankDay);
  std::printf("lazy HBR caching  : %7llu schedules for the same %llu lazy classes"
              " and %llu states, violations: %zu\n",
              static_cast<unsigned long long>(reduced.schedulesExecuted),
              static_cast<unsigned long long>(reduced.distinctLazyHbrs),
              static_cast<unsigned long long>(reduced.distinctStates),
              reduced.violations.size());

  const double factor =
      reduced.schedulesExecuted == 0
          ? 0.0
          : static_cast<double>(base.schedulesExecuted) /
                static_cast<double>(reduced.schedulesExecuted);
  std::printf("\nThe audit invariant held in every interleaving; lazy HBR caching"
              " needed %.1fx fewer executions to certify it.\n", factor);
  return base.foundViolation() || reduced.foundViolation() ? 1 : 0;
}
