// Side-by-side comparison of every exploration strategy on one benchmark
// from the corpus (default: disjoint-lock-3, the paper's motivating shape).
//
//   $ ./build/examples/compare_reduction --benchmark indexer-coarse-3
//
// Useful for building intuition about what each reduction pays for: naive
// enumeration visits every schedule, DPOR one per HBR class (with sleep
// sets), HBR caching prunes schedule prefixes with previously-seen HBRs,
// and lazy HBR caching prunes prefixes with previously-seen *lazy* HBRs —
// the coarsest sound equivalence of the four. All five runs go through
// lazyhb::Session (the "dpor-nosleep" row uses an extended strategy name).

#include <cstdio>

#include "lazyhb/lazyhb.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace lazyhb;

int main(int argc, char** argv) {
  support::Options options("compare_reduction",
                           "compare exploration strategies on one benchmark");
  options.addString("benchmark", "disjoint-lock-3", "benchmark name (see README)");
  options.addInt("limit", 100000, "schedule budget");
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  const std::string benchmark = options.getString("benchmark");
  std::string description;
  bool known = false;
  for (const ScenarioInfo& info : scenarios()) {
    if (info.name == benchmark) {
      known = true;
      description = info.description;
    }
  }
  if (!known) {
    std::fprintf(stderr, "unknown benchmark '%s'; available:\n", benchmark.c_str());
    for (const ScenarioInfo& info : scenarios()) {
      std::fprintf(stderr, "  %-24s %s\n", info.name.c_str(),
                   info.description.c_str());
    }
    return 1;
  }

  const Session session =
      Session().schedules(static_cast<std::uint64_t>(options.getInt("limit")));

  std::printf("benchmark: %s — %s\n\n", benchmark.c_str(), description.c_str());

  support::Table table({"strategy", "schedules", "#HBRs", "#lazyHBRs", "#states",
                        "complete", "violations"});
  const struct {
    const char* label;
    const char* strategy;
  } rows[] = {
      {"naive DFS", "dfs"},
      {"DPOR (no sleep sets)", "dpor-nosleep"},
      {"DPOR + sleep sets", "dpor"},
      {"HBR caching", "caching-full"},
      {"lazy HBR caching", "caching-lazy"},
  };
  for (const auto& row : rows) {
    const TestReport report = Session(session).strategy(row.strategy).run(benchmark);
    table.beginRow();
    table.cell(std::string(row.label));
    table.cell(report.schedulesExecuted);
    table.cell(report.distinctHbrs);
    table.cell(report.distinctLazyHbrs);
    table.cell(report.distinctStates);
    table.cell(std::string(report.complete ? "yes" : "no"));
    table.cell(report.violationSchedules);
  }

  std::fputs(table.toText().c_str(), stdout);
  std::printf("\nAll strategies must agree on #states (and on #lazyHBRs when"
              " complete); schedules is the cost each paid.\n");
  return 0;
}
