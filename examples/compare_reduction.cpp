// Side-by-side comparison of every exploration strategy on one benchmark
// from the corpus (default: disjoint-lock-3, the paper's motivating shape).
//
//   $ ./build/examples/compare_reduction --benchmark indexer-coarse-3
//
// Useful for building intuition about what each reduction pays for: naive
// enumeration visits every schedule, DPOR one per HBR class (with sleep
// sets), HBR caching prunes schedule prefixes with previously-seen HBRs,
// and lazy HBR caching prunes prefixes with previously-seen *lazy* HBRs —
// the coarsest sound equivalence of the four.

#include <cstdio>
#include <memory>

#include "explore/caching_explorer.hpp"
#include "explore/dfs_explorer.hpp"
#include "explore/dpor_explorer.hpp"
#include "programs/registry.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

using namespace lazyhb;

int main(int argc, char** argv) {
  support::Options options("compare_reduction",
                           "compare exploration strategies on one benchmark");
  options.addString("benchmark", "disjoint-lock-3", "benchmark name (see README)");
  options.addInt("limit", 100000, "schedule budget");
  if (!options.parse(argc, argv)) return options.parseError() ? 1 : 0;

  const auto* spec = programs::byName(options.getString("benchmark"));
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown benchmark '%s'; available:\n",
                 options.getString("benchmark").c_str());
    for (const auto& p : programs::all()) {
      std::fprintf(stderr, "  %-24s %s\n", p.name.c_str(), p.description.c_str());
    }
    return 1;
  }

  explore::ExplorerOptions exploreOptions;
  exploreOptions.scheduleLimit = static_cast<std::uint64_t>(options.getInt("limit"));

  std::printf("benchmark: %s — %s\n\n", spec->name.c_str(), spec->description.c_str());

  support::Table table({"strategy", "schedules", "#HBRs", "#lazyHBRs", "#states",
                        "complete", "violations"});
  auto report = [&](const char* name, explore::ExplorerBase& explorer) {
    const auto result = explorer.explore(spec->body);
    table.beginRow();
    table.cell(std::string(name));
    table.cell(result.schedulesExecuted);
    table.cell(result.distinctHbrs);
    table.cell(result.distinctLazyHbrs);
    table.cell(result.distinctStates);
    table.cell(std::string(result.complete ? "yes" : "no"));
    table.cell(static_cast<std::uint64_t>(result.violationSchedules));
  };

  {
    explore::DfsExplorer explorer(exploreOptions);
    report("naive DFS", explorer);
  }
  {
    explore::DporOptions dpor;
    dpor.sleepSets = false;
    explore::DporExplorer explorer(exploreOptions, dpor);
    report("DPOR (no sleep sets)", explorer);
  }
  {
    explore::DporExplorer explorer(exploreOptions);
    report("DPOR + sleep sets", explorer);
  }
  {
    explore::CachingExplorer explorer(exploreOptions, trace::Relation::Full);
    report("HBR caching", explorer);
  }
  {
    explore::CachingExplorer explorer(exploreOptions, trace::Relation::Lazy);
    report("lazy HBR caching", explorer);
  }

  std::fputs(table.toText().c_str(), stdout);
  std::printf("\nAll strategies must agree on #states (and on #lazyHBRs when"
              " complete); schedules is the cost each paid.\n");
  return 0;
}
