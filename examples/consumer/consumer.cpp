// The ten-line embedding walkthrough from docs/embedding.md, in compilable
// form: register a scenario of your own, explore it through lazyhb::Session,
// and replay the violating interleaving. Only <lazyhb/lazyhb.hpp> is
// included — no lazyhb internals — and the build knows nothing about the
// lazyhb source tree beyond find_package(lazyhb).
//
// The scenario seeds a classic check-then-act race: two clerks may both see
// "one ticket left" before either sells it. Exit status 0 means the
// exploration found the seeded bug (the expected outcome).

#include <cstdio>

#include <lazyhb/lazyhb.hpp>

LAZYHB_SCENARIO("ticket-race", "consumer-demo",
                "two clerks race a check-then-act sale of the last ticket",
                .hasKnownBug = true) {
  lazyhb::Shared<int> tickets{1, "tickets"};
  auto clerk = lazyhb::spawn([&] {
    if (tickets.load() > 0) tickets.store(tickets.load() - 1);
  });
  if (tickets.load() > 0) tickets.store(tickets.load() - 1);
  clerk.join();
  lazyhb::checkAlways(tickets.load() >= 0, "tickets are never oversold");
}

int main() {
  const lazyhb::TestReport report = lazyhb::Session()
                                        .strategy("caching-lazy")
                                        .schedules(100'000)
                                        .run("ticket-race");
  std::printf("%s\n", report.summary().c_str());
  if (!report.foundViolation()) {
    std::printf("seeded bug NOT found — something is wrong\n");
    return 1;
  }
  const lazyhb::ScheduleTrace trace =
      lazyhb::traceSchedule("ticket-race", report.violations.front().schedule);
  std::printf("\nreproducing interleaving:\n%s", trace.rendered.c_str());
  return 0;
}
