// Deadlock hunt: find a deadlock systematically, print the reproducing
// interleaving, then verify the classic fix (global lock ordering) by
// exhausting the fixed program's schedule space.
//
// Demonstrates the tool-style workflow through the public facade:
// Session::run -> violation + replayable schedule -> traceSchedule -> fix ->
// exhaustive re-verification (complete = true, no violations = proof for
// this program size).

#include <cstdio>
#include <memory>
#include <vector>

#include "lazyhb/lazyhb.hpp"

using namespace lazyhb;

namespace {

constexpr int kPhilosophers = 3;

/// Dining philosophers; `ordered` selects the deadlock-free fork discipline.
Program dine(bool ordered) {
  return [ordered] {
    std::vector<std::unique_ptr<Mutex>> forks;
    std::vector<std::unique_ptr<Shared<int>>> meals;
    for (int i = 0; i < kPhilosophers; ++i) {
      forks.push_back(std::make_unique<Mutex>("fork"));
      meals.push_back(std::make_unique<Shared<int>>(0, "meals"));
    }
    std::vector<ThreadHandle> philosophers;
    for (int i = 0; i < kPhilosophers; ++i) {
      philosophers.push_back(spawn([&, i, ordered] {
        auto left = static_cast<std::size_t>(i);
        auto right = static_cast<std::size_t>((i + 1) % kPhilosophers);
        if (ordered && left > right) std::swap(left, right);
        LockGuard first(*forks[left]);
        LockGuard second(*forks[right]);
        meals[static_cast<std::size_t>(i)]->store(1);
      }));
    }
    for (auto& p : philosophers) p.join();
  };
}

}  // namespace

int main() {
  std::printf("Hunting deadlocks in %d naive dining philosophers...\n", kPhilosophers);

  const Program buggy = dine(/*ordered=*/false);
  const TestReport hunt = Session()
                              .strategy("dpor")
                              .schedules(100'000)
                              .stopOnFirstViolation(true)
                              .run(buggy);
  if (!hunt.foundViolation()) {
    std::printf("no deadlock found (unexpected)\n");
    return 1;
  }
  const TestViolation& violation = hunt.violations.front();
  std::printf("found after %llu schedules: %s\n\n",
              static_cast<unsigned long long>(hunt.schedulesExecuted),
              violation.message.c_str());

  const ScheduleTrace trace = traceSchedule(buggy, violation.schedule);
  std::printf("reproducing interleaving:\n%s\n", trace.rendered.c_str());

  std::printf("Applying the fix (acquire forks in global index order) and"
              " re-verifying exhaustively...\n");
  const TestReport proof =
      Session().strategy("dpor").schedules(1u << 20).run(dine(/*ordered=*/true));
  std::printf("explored %llu schedules; search space exhausted: %s;"
              " violations: %zu\n",
              static_cast<unsigned long long>(proof.schedulesExecuted),
              proof.complete ? "yes" : "no", proof.violations.size());
  const bool fixed = proof.complete && !proof.foundViolation();
  std::printf("%s\n", fixed ? "Fix verified: deadlock-free for this configuration."
                            : "Fix NOT verified!");
  return fixed ? 0 : 1;
}
