// Quickstart: systematically test a tiny concurrent program, find the
// interleaving bug a stress test would almost never hit, and print a
// replayable trace of it.
//
//   $ ./build/examples/quickstart
//
// The program under test is an innocent-looking "check then act" on a
// shared counter. Exactly one interleaving class violates the assertion;
// DPOR finds it in a handful of schedules.

#include <cstdio>

#include "explore/dpor_explorer.hpp"
#include "explore/replay.hpp"
#include "runtime/api.hpp"

using namespace lazyhb;

namespace {

// The program under test: written against lazyhb's API instead of
// std::thread/std::mutex. Every Shared<> access and Mutex operation is a
// point where the explorer may switch threads.
void budgetTracker() {
  Shared<int> budget{100, "budget"};
  Mutex m("m");

  auto spender = [&](int amount) {
    // BUG: the check and the spend are two separate critical sections.
    bool affordable = false;
    {
      LockGuard guard(m);
      affordable = budget.load() >= amount;
    }
    if (affordable) {
      LockGuard guard(m);
      budget.store(budget.load() - amount);
    }
  };

  auto t = spawn([&] { spender(70); });
  spender(60);
  t.join();
  checkAlways(budget.load() >= 0, "budget never goes negative");
}

}  // namespace

int main() {
  explore::ExplorerOptions options;
  options.scheduleLimit = 10'000;
  options.stopOnFirstViolation = true;
  explore::DporExplorer explorer(options);
  const auto result = explorer.explore(budgetTracker);

  std::printf("schedules explored : %llu\n",
              static_cast<unsigned long long>(result.schedulesExecuted));
  if (!result.foundViolation()) {
    std::printf("no violation found (unexpected for this demo)\n");
    return 1;
  }
  const auto& violation = result.violations.front();
  std::printf("violation          : %s — %s\n",
              runtime::outcomeName(violation.kind), violation.message.c_str());

  // Replay the recorded schedule with full tracing to show the interleaving.
  const auto replay = explore::replaySchedule(budgetTracker, violation.schedule);
  std::printf("\nreproducing schedule (inter-thread happens-before edges shown):\n%s",
              replay.renderedTrace.c_str());
  std::printf("\nreplay outcome     : %s (%s)\n", runtime::outcomeName(replay.outcome),
              replay.violationMessage.c_str());
  return 0;
}
