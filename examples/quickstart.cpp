// Quickstart: systematically test a tiny concurrent program, find the
// interleaving bug a stress test would almost never hit, and print a
// replayable trace of it.
//
//   $ ./build/examples/quickstart
//
// The program under test is an innocent-looking "check then act" on a
// shared counter. Exactly one interleaving class violates the assertion;
// DPOR finds it in a handful of schedules. Everything here goes through
// the public embedding surface — <lazyhb/lazyhb.hpp> and lazyhb::Session —
// exactly as an out-of-tree consumer would use it (see docs/embedding.md).

#include <cstdio>

#include "lazyhb/lazyhb.hpp"

using namespace lazyhb;

namespace {

// The program under test: written against lazyhb's API instead of
// std::thread/std::mutex. Every Shared<> access and Mutex operation is a
// point where the explorer may switch threads.
void budgetTracker() {
  Shared<int> budget{100, "budget"};
  Mutex m("m");

  auto spender = [&](int amount) {
    // BUG: the check and the spend are two separate critical sections.
    bool affordable = false;
    {
      LockGuard guard(m);
      affordable = budget.load() >= amount;
    }
    if (affordable) {
      LockGuard guard(m);
      budget.store(budget.load() - amount);
    }
  };

  auto t = spawn([&] { spender(70); });
  spender(60);
  t.join();
  checkAlways(budget.load() >= 0, "budget never goes negative");
}

}  // namespace

int main() {
  const TestReport report = Session()
                                .strategy("dpor")
                                .schedules(10'000)
                                .stopOnFirstViolation(true)
                                .run(budgetTracker);

  std::printf("schedules explored : %llu\n",
              static_cast<unsigned long long>(report.schedulesExecuted));
  if (!report.foundViolation()) {
    std::printf("no violation found (unexpected for this demo)\n");
    return 1;
  }
  const TestViolation& violation = report.violations.front();
  std::printf("violation          : %s — %s\n", violation.kind.c_str(),
              violation.message.c_str());

  // Replay the recorded schedule with full tracing to show the interleaving.
  const ScheduleTrace trace = traceSchedule(budgetTracker, violation.schedule);
  std::printf("\nreproducing schedule (inter-thread happens-before edges shown):\n%s",
              trace.rendered.c_str());
  std::printf("\nreplay outcome     : %s (%s)\n", trace.outcome.c_str(),
              trace.message.c_str());
  return 0;
}
