#!/usr/bin/env python3
"""Compare two lazyhb-bench-report JSONs.

The determinism contract of `lazyhb bench` is that every per-cell *count* is
a pure function of (corpus, explorer list, budget, seed) — independent of
--jobs, hardware and, crucially, of performance refactors. This tool is how
that contract is enforced: it exits non-zero if any count differs between
two reports, and reports the per-explorer eventsPerSecond deltas (geometric
mean over cells) so perf PRs have a standard scoreboard.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--counts-only]

Either argument may be a plain lazyhb-bench-report or a BENCH_PR*.json
before/after wrapper ({"before": <report>, "after": <report>}); for a
wrapper the "after" report is used.

Exit status: 0 when all counts match, 1 on any count mismatch (or on cell
sets that do not line up), 2 on usage/schema errors.
"""

import argparse
import json
import math
import sys

# The per-cell fields that must be byte-identical between runs. Wall-clock
# fields (wall_seconds, events_per_second) are deliberately absent.
COUNT_FIELDS = [
    "schedules",
    "terminal",
    "pruned",
    "violations",
    "hbrs",
    "lazy_hbrs",
    "states",
    "events",
    "complete",
    "hit_schedule_limit",
]

# Cache counts are also deterministic, but only present for caching cells.
CACHE_COUNT_FIELDS = ["lookups", "hits", "insertions", "entries"]


def load_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read '{path}': {e}")
    if "after" in doc and "schema" not in doc:
        doc = doc["after"]  # BENCH_PR*.json before/after wrapper
    if doc.get("schema") != "lazyhb-bench-report":
        sys.exit(f"bench_diff: '{path}' is not a lazyhb-bench-report "
                 f"(schema={doc.get('schema')!r})")
    return doc


def cell_key(cell):
    return (cell["program"], cell["explorer"])


def cell_counts(cell):
    counts = {f: cell[f] for f in COUNT_FIELDS}
    if "cache" in cell:
        counts["cache"] = {f: cell["cache"][f] for f in CACHE_COUNT_FIELDS}
    return counts


def geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def main():
    parser = argparse.ArgumentParser(
        description="compare two lazyhb bench reports")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--counts-only", action="store_true",
                        help="skip the eventsPerSecond delta table "
                             "(e.g. when the runs used different hardware)")
    args = parser.parse_args()

    base = load_report(args.baseline)
    cand = load_report(args.candidate)

    base_cells = {cell_key(c): c for c in base["cells"]}
    cand_cells = {cell_key(c): c for c in cand["cells"]}

    failed = False
    only_base = sorted(base_cells.keys() - cand_cells.keys())
    only_cand = sorted(cand_cells.keys() - base_cells.keys())
    for key in only_base:
        print(f"MISSING in candidate: {key[0]} x {key[1]}")
        failed = True
    for key in only_cand:
        print(f"EXTRA in candidate:   {key[0]} x {key[1]}")
        failed = True

    shared = sorted(base_cells.keys() & cand_cells.keys())
    mismatches = 0
    for key in shared:
        a = cell_counts(base_cells[key])
        b = cell_counts(cand_cells[key])
        if a != b:
            mismatches += 1
            failed = True
            diffs = {f: (a[f], b[f]) for f in a if f in b and a[f] != b[f]}
            print(f"COUNT MISMATCH {key[0]} x {key[1]}: "
                  + ", ".join(f"{f} {was} -> {now}"
                              for f, (was, now) in diffs.items()))

    print(f"counts: {len(shared)} cells compared, {mismatches} mismatch(es)")

    if not args.counts_only and shared:
        by_explorer = {}
        for key in shared:
            a = base_cells[key]["events_per_second"]
            b = cand_cells[key]["events_per_second"]
            if a > 0 and b > 0:
                by_explorer.setdefault(key[1], []).append(b / a)
        print("\neventsPerSecond (candidate / baseline, geomean over cells):")
        all_ratios = []
        for explorer in sorted(by_explorer):
            ratios = by_explorer[explorer]
            all_ratios.extend(ratios)
            print(f"  {explorer:<14} {geomean(ratios):6.2f}x  "
                  f"({len(ratios)} cells)")
        if all_ratios:
            print(f"  {'overall':<14} {geomean(all_ratios):6.2f}x  "
                  f"({len(all_ratios)} cells)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
