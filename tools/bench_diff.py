#!/usr/bin/env python3
"""Compare two lazyhb-bench-report JSONs.

The determinism contract of `lazyhb bench` is that every per-cell *count* is
a pure function of (corpus, explorer list, budget, seed) — independent of
--jobs, hardware and, crucially, of performance refactors. This tool is how
that contract is enforced: it exits non-zero if any count differs between
two reports, and reports the per-explorer eventsPerSecond deltas (geometric
mean over cells) so perf PRs have a standard scoreboard.

Schema v3 reports additionally carry incremental-replay fields: per-cell
`events_elided` / `events_replayed` and `executed_events_per_second`. The
scoreboard then shows two views: `events_per_second` (logical exploration
throughput — what incremental replay improves) and
`executed_events_per_second` (per-executed-event hardware cost — immune to
elision inflating the numerator). For pre-v3 baselines the two coincide,
so both views stay comparable across schema versions.

Schema v4 reports carry intra-scenario parallelism: `config.workers` is
mandatory (a v4 report without it is rejected — a report must never hide
the parallelism it ran with), and parallel cells carry a `parallel` block.
The count contract is unchanged — counts are byte-identical at any
--workers, so a v4 candidate still count-compares against any older
baseline — and the scoreboard gains a `--workers` column so speedup rows
are attributed to the worker count that produced them.

Schema v5 reports come from resumable/shardable campaigns: cells may carry
`timed_out` / `error` / `attempts` / `from_checkpoint`, the config may carry
a `shard` block, and a report produced by `lazyhb merge` carries a top-level
`merge` provenance block. Timed-out and failed cells are *excluded* from the
count comparison (their counts are wall-clock-dependent prefixes, not
violations of the determinism contract) and noted instead; clean cells —
including checkpointed and merged ones — compare exactly as before. When a
`merge` block is present its provenance is validated structurally.

Schema v6 reports come from the undo-log checkpoint store: `config.snapshot_budget`
is mandatory (0 = unlimited; a v6 report without it is rejected — the byte
budget changes which checkpoints survive, so a report must never hide it),
and incremental cells carry a `checkpoint` block (stages, bytes_staged,
evictions, replay_fallbacks). Checkpoint stats are *scoreboard-only* and
never count-compared: under work-stealing at --workers > 1 the staging and
eviction order is timing-dependent even though the explored counts are not.

Schema v7 reports carry the observation-centric value classes: every
comparable cell has a `value_classes` count (a v7 report with a clean cell
missing it is rejected — the extended section-3 chain
#states <= #valueClasses <= #lazyHBRs <= #HBRs runs through it), and the
tool prints a compression scoreboard (schedules-per-state and the per-link
class compression) for reports that carry the field. `value_classes` is
count-compared only when both reports carry it, so a v7 candidate still
compares against a v6 or older baseline.

Schema v8 reports carry the memory model: `config.memory_model` is
mandatory ("sc" or "tso"; a v8 report without it is rejected — TSO adds
scheduler-visible flush transitions, so a report must never hide the model
it explored under), and TSO cells carry a `tso` block (flush_events,
fence_events, max_buffered_stores). Pre-v8 reports are implicitly "sc".
Comparing reports that ran under different memory models is a usage error —
their schedule spaces are different objects, so every scoreboard is labelled
with the (shared) memory model instead of mixing models in one table. Flush
and fence totals are part of the count contract (they are a pure function of
the explored schedule set); the buffer high-water mark is scoreboard-only.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--counts-only]
                        [--allow-new-cells]
    tools/bench_diff.py --history REPORT.json [REPORT.json ...]

Either argument may be a plain lazyhb-bench-report or a BENCH_PR*.json
before/after wrapper ({"before": <report>, "after": <report>}); for a
wrapper the "after" report is used. --history prints the totals-level
events/s trajectory across the given reports (oldest first) — the
cross-PR perf history the nightly workflow appends to.

Exit status: 0 when all counts match, 1 on any count mismatch (or on cell
sets that do not line up), 2 on usage/schema errors.
"""

import argparse
import json
import math
import sys

# The per-cell fields that must be byte-identical between runs. Wall-clock
# fields (wall_seconds, *events_per_second) are deliberately absent, and so
# are events_elided / events_replayed: those are deterministic for a fixed
# configuration but legitimately differ between --incremental on and off
# runs of the same corpus, which must still count-compare as equal.
COUNT_FIELDS = [
    "schedules",
    "terminal",
    "pruned",
    "violations",
    "hbrs",
    "lazy_hbrs",
    "states",
    "events",
    "complete",
    "hit_schedule_limit",
]

# Schema v7 count field, compared only when both cells carry it (older
# baselines legitimately predate it).
OPTIONAL_COUNT_FIELDS = ["value_classes"]

# Cache counts are also deterministic, but only present for caching cells.
CACHE_COUNT_FIELDS = ["lookups", "hits", "insertions", "entries"]

# Schema versions this tool knows how to compare. v1/v2 reports lack the
# incremental-replay fields, v1-v3 lack the parallelism fields (both
# handled by the fallbacks below); any other version means the report
# format moved ahead of this tool, and guessing at unknown field semantics
# would silently corrupt the comparison.
KNOWN_SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6, 7, 8)

# Scoreboard-only checkpoint stats (schema v6). Deliberately NOT part of
# COUNT_FIELDS: staging/eviction order is timing-dependent under
# work-stealing, so these may differ between byte-identical explorations.
CHECKPOINT_FIELDS = ["stages", "bytes_staged", "evictions", "replay_fallbacks"]

# Schema v8 TSO store-buffer counts. Flush and fence totals are a pure
# function of the explored schedule set, so they count-compare; the buffer
# high-water mark is a per-worker maximum and stays scoreboard-only.
TSO_COUNT_FIELDS = ["flush_events", "fence_events"]


def load_report(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"bench_diff: cannot read '{path}': {e}")
    if not isinstance(doc, dict):
        sys.exit(f"bench_diff: '{path}' is not a JSON object")
    if "after" in doc and "schema" not in doc:
        doc = doc["after"]  # BENCH_PR*.json before/after wrapper
        if not isinstance(doc, dict):
            sys.exit(f"bench_diff: '{path}' wraps a non-object \"after\" report")
    if doc.get("schema") != "lazyhb-bench-report":
        sys.exit(f"bench_diff: '{path}' is not a lazyhb-bench-report "
                 f"(schema={doc.get('schema')!r})")
    version = doc.get("version")
    if version not in KNOWN_SCHEMA_VERSIONS:
        known = ", ".join(str(v) for v in KNOWN_SCHEMA_VERSIONS)
        sys.exit(f"bench_diff: '{path}' carries schema version {version!r}, "
                 f"but this tool only understands versions {known}; "
                 f"update tools/bench_diff.py for the new schema "
                 f"(see docs/bench-report-schema.md)")
    if version >= 4 and "workers" not in doc.get("config", {}):
        sys.exit(f"bench_diff: '{path}' is a schema v{version} report but "
                 f"its config block has no 'workers' field; v4 made "
                 f"config.workers mandatory so a report cannot silently "
                 f"hide the intra-scenario parallelism it ran with — "
                 f"regenerate the report with a current `lazyhb bench`")
    if version >= 6 and "snapshot_budget" not in doc.get("config", {}):
        sys.exit(f"bench_diff: '{path}' is a schema v{version} report but "
                 f"its config block has no 'snapshot_budget' field; v6 made "
                 f"config.snapshot_budget mandatory so a report cannot "
                 f"silently hide the checkpoint byte budget it ran with — "
                 f"regenerate the report with a current `lazyhb bench`")
    if version >= 7:
        for cell in doc.get("cells", []):
            if cell.get("error"):
                continue  # a crashed cell's counts are zeroed placeholders
            if "value_classes" not in cell:
                sys.exit(f"bench_diff: '{path}' is a schema v{version} report "
                         f"but cell {cell.get('program')!r} x "
                         f"{cell.get('explorer')!r} has no 'value_classes' "
                         f"count; v7 made it mandatory so the extended "
                         f"section-3 chain can be checked on every cell — "
                         f"regenerate the report with a current `lazyhb bench`")
    if version >= 8 and "memory_model" not in doc.get("config", {}):
        sys.exit(f"bench_diff: '{path}' is a schema v{version} report but "
                 f"its config block has no 'memory_model' field; v8 made "
                 f"config.memory_model mandatory so a report cannot "
                 f"silently hide the memory model it explored under — "
                 f"regenerate the report with a current `lazyhb bench`")
    if "merge" in doc:
        validate_merge_provenance(doc, path)
    return doc


def report_memory_model(doc):
    """The memory model a report explored under; pre-v8 reports predate the
    memory-model subsystem and are sequentially consistent by construction."""
    return doc.get("config", {}).get("memory_model", "sc")


def validate_merge_provenance(doc, path):
    """Structural check of a `lazyhb merge` report's provenance block."""
    merge = doc["merge"]
    sources = merge.get("sources") if isinstance(merge, dict) else None
    if not isinstance(sources, list) or not sources:
        sys.exit(f"bench_diff: '{path}' has a merge block without a "
                 f"non-empty 'sources' list")
    for i, src in enumerate(sources):
        for field, kind in (("label", str), ("shard_index", int),
                            ("shard_count", int), ("cells", int)):
            if not isinstance(src.get(field), kind):
                sys.exit(f"bench_diff: '{path}' merge.sources[{i}] has a "
                         f"missing or mistyped '{field}' field")
        if not (0 <= src["shard_index"] < src["shard_count"]):
            sys.exit(f"bench_diff: '{path}' merge.sources[{i}] claims shard "
                     f"{src['shard_index']}/{src['shard_count']}")
    contributed = sum(src["cells"] for src in sources)
    if contributed < len(doc.get("cells", [])):
        sys.exit(f"bench_diff: '{path}' merge sources contributed "
                 f"{contributed} cell(s) but the report carries "
                 f"{len(doc['cells'])} — provenance cannot cover the report")


def cell_unstable(cell):
    """Why this cell's counts are not comparable, or None. A timed-out cell
    stopped at a wall-clock-dependent schedule boundary; a failed cell's
    counts are whatever the last crashing attempt reached."""
    if cell.get("error"):
        return "failed"
    if cell.get("timed_out"):
        return "timed_out"
    return None


def cell_workers(cell):
    """The worker count that actually explored this cell: the cell's
    parallel block when present (a budget-abort sequential fallback reports
    as 1), else 1 — pre-v4 reports and non-shardable v4 cells both ran
    sequentially."""
    par = cell.get("parallel")
    if par is not None:
        return 1 if par.get("fell_back_sequential") else par["workers"]
    return 1


def cell_key(cell):
    return (cell["program"], cell["explorer"])


def cell_counts(cell, optional_fields=()):
    counts = {f: cell[f] for f in COUNT_FIELDS}
    for f in optional_fields:
        counts[f] = cell[f]
    if "cache" in cell:
        counts["cache"] = {f: cell["cache"][f] for f in CACHE_COUNT_FIELDS}
    if "tso" in cell:
        counts["tso"] = {f: cell["tso"][f] for f in TSO_COUNT_FIELDS}
    return counts


def geomean(ratios):
    return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def cell_rate(cell, field):
    """A cell's events/s under `field`, falling back to events_per_second
    for pre-v3 reports (where executed == logical)."""
    return cell.get(field, cell.get("events_per_second", 0.0))


def rate_table(title, base_cells, cand_cells, shared, field):
    # Rows group by (explorer, baseline-workers -> candidate-workers) so a
    # speedup is always attributed to the worker count that produced it; a
    # uniformly-sequential comparison collapses to one row per explorer.
    by_row = {}
    for key in shared:
        a = cell_rate(base_cells[key], field)
        b = cell_rate(cand_cells[key], field)
        if a > 0 and b > 0:
            wa = cell_workers(base_cells[key])
            wb = cell_workers(cand_cells[key])
            workers = str(wa) if wa == wb else f"{wa}->{wb}"
            by_row.setdefault((key[1], workers), []).append(b / a)
    if not by_row:
        return
    print(f"\n{title} (candidate / baseline, geomean over cells):")
    print(f"  {'explorer':<14} {'--workers':>9}")
    all_ratios = []
    for explorer, workers in sorted(by_row):
        ratios = by_row[(explorer, workers)]
        all_ratios.extend(ratios)
        print(f"  {explorer:<14} {workers:>9}  {geomean(ratios):6.2f}x  "
              f"({len(ratios)} cells)")
    if all_ratios:
        print(f"  {'overall':<14} {'':>9}  {geomean(all_ratios):6.2f}x  "
              f"({len(all_ratios)} cells)")


def compression_table(label, cells, shared):
    """Schema v7 scoreboard: how hard each relation compresses the explored
    schedules, summed per explorer over the shared cells. The headline
    column is schedules-per-state — how many schedules the explorer ran for
    every distinct terminal state it reached (lower = less redundant work);
    the class columns walk the extended section-3 chain."""
    by_explorer = {}
    for key in shared:
        cell = cells[key]
        if "value_classes" not in cell:
            return  # pre-v7 report: no scoreboard
        agg = by_explorer.setdefault(key[1], dict.fromkeys(
            ("schedules", "terminal", "hbrs", "lazy_hbrs", "value_classes",
             "states"), 0))
        for field in agg:
            agg[field] += cell.get(field, 0)
    if not by_explorer:
        return
    print(f"\ncompression ({label}, summed over cells; "
          f"scheds/state = executed schedules per distinct terminal state):")
    print(f"  {'explorer':<14} {'schedules':>11} {'hbrs':>9} {'lazy':>9} "
          f"{'value':>9} {'states':>9} {'scheds/state':>13}")
    for explorer in sorted(by_explorer):
        agg = by_explorer[explorer]
        per_state = (agg["schedules"] / agg["states"]) if agg["states"] else 0.0
        print(f"  {explorer:<14} {agg['schedules']:>11} {agg['hbrs']:>9} "
              f"{agg['lazy_hbrs']:>9} {agg['value_classes']:>9} "
              f"{agg['states']:>9} {per_state:>13.2f}")


def checkpoint_table(base_cells, cand_cells, shared):
    """Scoreboard of v6 checkpoint-store stats, summed per explorer over the
    cells that carry a `checkpoint` block. Informational only: these numbers
    describe how much snapshot work the store did (and how often eviction
    forced a replay-from-shallower fallback), never whether counts match."""
    def collect(cells):
        by_explorer = {}
        for key in shared:
            cp = cells[key].get("checkpoint")
            if cp is None:
                continue
            agg = by_explorer.setdefault(
                key[1], dict.fromkeys(CHECKPOINT_FIELDS, 0))
            for field in CHECKPOINT_FIELDS:
                agg[field] += cp.get(field, 0)
        return by_explorer
    base = collect(base_cells)
    cand = collect(cand_cells)
    if not base and not cand:
        return
    print("\ncheckpoint store (baseline -> candidate, summed over cells):")
    print(f"  {'explorer':<14} {'stages':>18} {'bytes_staged':>26} "
          f"{'evictions':>16} {'replay_fallbacks':>18}")
    for explorer in sorted(base.keys() | cand.keys()):
        row = []
        for field in CHECKPOINT_FIELDS:
            a = base[explorer][field] if explorer in base else "-"
            b = cand[explorer][field] if explorer in cand else "-"
            row.append(f"{a} -> {b}")
        print(f"  {explorer:<14} {row[0]:>18} {row[1]:>26} "
              f"{row[2]:>16} {row[3]:>18}")


def tso_table(base_cells, cand_cells, shared):
    """Scoreboard of v8 TSO store-buffer activity, summed per explorer over
    the cells that carry a `tso` block (SC campaigns buffer nothing and emit
    none). Flush/fence totals also count-compare; the buffer high-water mark
    shown here is the informational part."""
    def collect(cells):
        by_explorer = {}
        for key in shared:
            tso = cells[key].get("tso")
            if tso is None:
                continue
            agg = by_explorer.setdefault(
                key[1], {"flush_events": 0, "fence_events": 0,
                         "max_buffered_stores": 0})
            agg["flush_events"] += tso.get("flush_events", 0)
            agg["fence_events"] += tso.get("fence_events", 0)
            agg["max_buffered_stores"] = max(agg["max_buffered_stores"],
                                             tso.get("max_buffered_stores", 0))
        return by_explorer
    base = collect(base_cells)
    cand = collect(cand_cells)
    if not base and not cand:
        return
    print("\ntso store buffers (baseline -> candidate, summed over cells; "
          "max_buffered is a high-water mark):")
    print(f"  {'explorer':<14} {'flush_events':>22} {'fence_events':>22} "
          f"{'max_buffered':>14}")
    for explorer in sorted(base.keys() | cand.keys()):
        row = []
        for field in ("flush_events", "fence_events", "max_buffered_stores"):
            a = base[explorer][field] if explorer in base else "-"
            b = cand[explorer][field] if explorer in cand else "-"
            row.append(f"{a} -> {b}")
        print(f"  {explorer:<14} {row[0]:>22} {row[1]:>22} {row[2]:>14}")


def print_history(paths):
    """Totals-level events/s trajectory across reports, oldest first."""
    print(f"{'report':<28} {'schedules':>12} {'events':>14} "
          f"{'elided%':>8} {'events/s':>12} {'exec-ev/s':>12}")
    for path in paths:
        doc = load_report(path)
        totals = doc["totals"]
        events = totals.get("events", 0)
        elided = totals.get("events_elided", 0)
        elided_pct = 100.0 * elided / events if events else 0.0
        eps = totals.get("events_per_second", 0.0)
        executed_eps = totals.get("executed_events_per_second", eps)
        print(f"{path:<28} {totals.get('schedules', 0):>12} {events:>14} "
              f"{elided_pct:>7.1f}% {eps:>12.0f} {executed_eps:>12.0f}")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="compare two lazyhb bench reports")
    parser.add_argument("reports", nargs="+",
                        help="BASELINE.json CANDIDATE.json, or with "
                             "--history any number of reports")
    parser.add_argument("--counts-only", action="store_true",
                        help="skip the eventsPerSecond delta table "
                             "(e.g. when the runs used different hardware)")
    parser.add_argument("--history", action="store_true",
                        help="print the totals events/s trajectory across "
                             "the given reports instead of diffing two")
    parser.add_argument("--allow-new-cells", action="store_true",
                        help="tolerate cells present only in the candidate "
                             "(for diffing against a baseline captured "
                             "before the corpus grew); cells MISSING from "
                             "the candidate stay fatal")
    args = parser.parse_args()

    if args.history:
        return print_history(args.reports)
    if len(args.reports) != 2:
        parser.error("expected exactly BASELINE.json and CANDIDATE.json")

    base = load_report(args.reports[0])
    cand = load_report(args.reports[1])

    # A TSO campaign explores a different schedule space than an SC one;
    # count-comparing across models would "fail" every cell for reasons that
    # have nothing to do with the determinism contract. Per-model scoreboards
    # stay split by construction: one diff, one model.
    base_model = report_memory_model(base)
    cand_model = report_memory_model(cand)
    if base_model != cand_model:
        sys.exit(f"bench_diff: memory-model mismatch: '{args.reports[0]}' "
                 f"ran under {base_model} but '{args.reports[1]}' under "
                 f"{cand_model}; reports are only comparable within one "
                 f"memory model")

    base_cells = {cell_key(c): c for c in base["cells"]}
    cand_cells = {cell_key(c): c for c in cand["cells"]}

    failed = False
    only_base = sorted(base_cells.keys() - cand_cells.keys())
    only_cand = sorted(cand_cells.keys() - base_cells.keys())
    for key in only_base:
        print(f"MISSING in candidate: {key[0]} x {key[1]}")
        failed = True
    for key in only_cand:
        if args.allow_new_cells:
            print(f"NEW in candidate (allowed): {key[0]} x {key[1]}")
        else:
            print(f"EXTRA in candidate:   {key[0]} x {key[1]}")
            failed = True

    shared = []
    skipped = 0
    for key in sorted(base_cells.keys() & cand_cells.keys()):
        reasons = {r for r in (cell_unstable(base_cells[key]),
                               cell_unstable(cand_cells[key])) if r}
        if reasons:
            skipped += 1
            print(f"SKIPPED (not comparable): {key[0]} x {key[1]} "
                  f"[{', '.join(sorted(reasons))}]")
        else:
            shared.append(key)
    mismatches = 0
    for key in shared:
        optional = [f for f in OPTIONAL_COUNT_FIELDS
                    if f in base_cells[key] and f in cand_cells[key]]
        a = cell_counts(base_cells[key], optional)
        b = cell_counts(cand_cells[key], optional)
        if a != b:
            mismatches += 1
            failed = True
            diffs = {f: (a[f], b[f]) for f in a if f in b and a[f] != b[f]}
            print(f"COUNT MISMATCH {key[0]} x {key[1]}: "
                  + ", ".join(f"{f} {was} -> {now}"
                              for f, (was, now) in diffs.items()))

    print(f"counts: {len(shared)} cells compared under {cand_model}, "
          f"{mismatches} mismatch(es)"
          + (f", {skipped} timed-out/failed cell(s) skipped" if skipped else ""))

    if not args.counts_only and shared:
        rate_table(f"eventsPerSecond [{cand_model}]", base_cells, cand_cells,
                   shared, "events_per_second")
        rate_table(f"executedEventsPerSecond [{cand_model}]", base_cells,
                   cand_cells, shared, "executed_events_per_second")
        checkpoint_table(base_cells, cand_cells, shared)
        tso_table(base_cells, cand_cells, shared)
        compression_table(f"candidate, {cand_model}", cand_cells, shared)

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
