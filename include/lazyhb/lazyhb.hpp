// lazyhb/lazyhb.hpp — the public umbrella header.
//
// Everything an embedding application needs, in one include:
//
//   * the programming interface for code under test — lazyhb::Shared<T>,
//     Mutex, LockGuard, CondVar, Semaphore, spawn/yield/checkAlways,
//     InlineVec (runtime/api.hpp);
//   * scenario registration — LAZYHB_SCENARIO, lazyhb::scenarios()
//     (lazyhb/scenario.hpp);
//   * the exploration facade — lazyhb::Session, TestReport, traceSchedule
//     (lazyhb/session.hpp);
//   * the batch-campaign facade — lazyhb::Suite, SuiteReport, with
//     checkpointed resume and shard/merge support (lazyhb/suite.hpp);
//   * the progress-event surface both facades share — lazyhb::ProgressEvent
//     (lazyhb/progress.hpp).
//
// Link against the exported `lazyhb::lazyhb` CMake target:
//
//   find_package(lazyhb REQUIRED)
//   target_link_libraries(my_tests PRIVATE lazyhb::lazyhb)
//
// See docs/embedding.md for the ten-line walkthrough.

#pragma once

#include "runtime/api.hpp"

#include "lazyhb/progress.hpp"
#include "lazyhb/scenario.hpp"
#include "lazyhb/session.hpp"
#include "lazyhb/suite.hpp"
