// lazyhb/session.hpp — the public embedding facade.
//
// Session is a small builder over the exploration engine: configure a
// strategy and budgets with chained setters, then run() a program (or a
// registered scenario by name) and receive a self-describing TestReport.
// The whole API is value types and strings — no internal engine types leak
// through this boundary, so embedders depend only on <lazyhb/lazyhb.hpp>.
//
//   const lazyhb::TestReport report = lazyhb::Session()
//                                         .strategy("caching-lazy")
//                                         .schedules(100'000)
//                                         .detectRaces(true)
//                                         .run(myProgram);
//   if (report.foundViolation()) {
//     const auto trace = lazyhb::traceSchedule(myProgram,
//                                              report.violations.front().schedule);
//     std::fputs(trace.rendered.c_str(), stderr);
//   }
//
// Configuration errors (unknown strategy or scenario name) throw
// std::invalid_argument from run(); everything else is reported through the
// TestReport. Counts produced through Session are byte-identical to driving
// the underlying explorers directly — the parity test suite pins this.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lazyhb/progress.hpp"
#include "lazyhb/scenario.hpp"

namespace lazyhb {

inline constexpr const char* kTestReportSchemaName = "lazyhb-test-report";
inline constexpr int kTestReportSchemaVersion = 2;

/// A property violation with the schedule that reproduces it (feed the
/// schedule to lazyhb::traceSchedule, or to `lazyhb replay --schedule`).
struct TestViolation {
  std::string kind;  ///< "assertion-failure" | "deadlock" | "usage-error"
  std::string message;
  std::vector<int> schedule;  ///< thread picked at each step; replayable
};

/// A sync-HB data race (only populated when detectRaces is on).
struct TestRace {
  std::string object;  ///< name of the shared variable raced on
  int firstEvent = -1;
  int secondEvent = -1;
};

/// Snapshot of the strategy's HBR prefix cache (all-zero when the strategy
/// consults no cache).
struct TestCacheStats {
  bool enabled = false;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;
  std::uint64_t insertions = 0;
  std::uint64_t entries = 0;
  std::uint64_t approxBytes = 0;
};

/// Per-theorem equivalence-checker tallies (populated when checkTheorems
/// is on; a nonzero `conflicts` falsifies the theorem or exposes a
/// fingerprint collision).
struct TestTheoremStats {
  std::uint64_t schedules = 0;
  std::uint64_t classes = 0;
  std::uint64_t states = 0;
  std::uint64_t conflicts = 0;
};

/// The self-describing result of one Session::run.
struct TestReport {
  // Identity and configuration echo.
  std::string scenario;  ///< registered scenario name; empty for ad-hoc programs
  std::string family;    ///< scenario family; empty for ad-hoc programs
  std::string strategy;
  std::uint64_t scheduleLimit = 0;
  std::uint32_t maxEventsPerSchedule = 0;
  std::uint64_t seed = 0;
  bool incremental = true;
  bool checkpointable = false;
  /// Memory model the exploration ran under: "sc" | "tso".
  std::string memoryModel = "sc";

  // Exploration counts (the extended §3 chain reads distinctStates <=
  // distinctValueClasses <= distinctLazyHbrs <= distinctHbrs <=
  // schedulesExecuted).
  std::uint64_t schedulesExecuted = 0;
  std::uint64_t terminalSchedules = 0;
  std::uint64_t prunedSchedules = 0;
  std::uint64_t violationSchedules = 0;
  std::uint64_t totalEvents = 0;
  std::uint64_t eventsElided = 0;
  std::uint64_t eventsReplayed = 0;
  std::uint64_t distinctHbrs = 0;
  std::uint64_t distinctLazyHbrs = 0;
  /// Distinct terminal observation (value-class) fingerprints — same
  /// operations, same values observed, same visible state. Schema v2.
  std::uint64_t distinctValueClasses = 0;
  std::uint64_t distinctStates = 0;
  bool hitScheduleLimit = false;
  bool complete = false;  ///< search space fully explored

  // Findings.
  std::vector<TestViolation> violations;
  std::vector<TestRace> races;
  TestCacheStats cache;
  TestTheoremStats theorem21;  ///< full HBR -> state (when checkTheorems)
  TestTheoremStats theorem22;  ///< lazy HBR -> state (when checkTheorems)
  /// Value class -> state (when checkTheorems): the observation-centric
  /// soundness check behind the caching-value strategy. Schema v2.
  TestTheoremStats theoremValue;

  double wallSeconds = 0.0;

  [[nodiscard]] bool foundViolation() const noexcept { return !violations.empty(); }
  [[nodiscard]] bool passed() const noexcept { return violations.empty(); }

  /// The versioned lazyhb-test-report JSON document (newline-terminated);
  /// the same document `lazyhb explore --out` writes.
  [[nodiscard]] std::string toJson() const;

  /// One human-readable summary line (no trailing newline).
  [[nodiscard]] std::string summary() const;
};

/// Builder facade over the exploration engine. A Session is a reusable
/// value: run() constructs a fresh single-use explorer each call, so one
/// configured Session can test many programs.
class Session {
 public:
  Session();

  /// Exploration strategy, one of strategies() (default "caching-lazy").
  /// Validated at run().
  Session& strategy(std::string name);
  /// Maximum number of schedules to execute (default 10,000; the paper's
  /// experiments use 100,000).
  Session& schedules(std::uint64_t limit);
  /// Per-schedule event budget, guarding against unbounded loops.
  Session& maxEventsPerSchedule(std::uint32_t events);
  /// Seed for the "random" strategy (ignored by the others).
  Session& seed(std::uint64_t value);
  /// Memory model to explore under: "sc" (sequential consistency, the
  /// default — semantics and counts identical to every prior release) or
  /// "tso" (x86-style total store order: writes enter a per-thread FIFO
  /// store buffer, flushes become scheduler-visible transitions, reads
  /// forward from the local buffer; see docs/memory-models.md). Validated
  /// at run().
  Session& memoryModel(std::string model);
  /// Run the sync-HB data-race detector on every execution.
  Session& detectRaces(bool on = true);
  /// Feed every terminal schedule through the Theorem 2.1/2.2 checkers.
  Session& checkTheorems(bool on = true);
  /// Stop the whole exploration at the first violation (testing-tool mode;
  /// the default keeps exploring and counting).
  Session& stopOnFirstViolation(bool on = true);
  /// Keep at most this many violation records (default 16).
  Session& keepViolations(std::uint32_t max);
  /// Incremental prefix replay (checkpoint/rollback; default on). Counts
  /// are byte-identical either way; only wall time changes.
  Session& incremental(bool on);
  /// Assert the program satisfies the checkpointable contract (see
  /// ScenarioTraits::checkpointable); enables full runtime rollback.
  /// run(name) inherits this from the scenario's registered traits.
  Session& checkpointable(bool on = true);
  /// Shard the scenario's schedule tree across this many OS threads
  /// (default 1 = sequential). Only the tree searches with
  /// order-independent counts shard ("dfs", "caching-full", "caching-lazy",
  /// "caching-value"); other strategies — and order-sensitive option
  /// combinations such as stopOnFirstViolation or checkTheorems — run
  /// sequentially whatever this is set to. Every count in the TestReport is
  /// byte-identical at any worker count.
  Session& workers(int count);
  /// Byte budget for staged incremental-replay snapshots (0 = unlimited;
  /// default: the LAZYHB_SNAPSHOT_BUDGET environment variable, else
  /// 256 MiB). When staging would exceed it, the engine evicts the staged
  /// checkpoint furthest from the search frontier and later rollbacks into
  /// the evicted region replay from the deepest surviving shallower stage.
  /// Counts are byte-identical at any budget; only wall time and memory
  /// change. With workers(N), the budget is split evenly per worker.
  Session& snapshotBudget(std::uint64_t bytes);
  /// Progress hook: a ProgressEvent of kind ScheduleTick every
  /// progressInterval() executed schedules, synchronously on the exploring
  /// thread (lazyhb/progress.hpp documents the full callback contract).
  /// Setting a callback forces the exploration sequential even when
  /// workers(N > 1) was requested — ticks from racing shard workers would
  /// interleave nondeterministically. Counts are unaffected.
  Session& onProgress(ProgressCallback callback);
  /// Schedules between ScheduleTick events (default 1024; 0 is clamped
  /// to 1). Only meaningful together with onProgress().
  Session& progressInterval(std::uint64_t schedules);

  /// Explore an ad-hoc program. Throws std::invalid_argument for an
  /// unknown strategy name.
  [[nodiscard]] TestReport run(const Program& program) const;
  /// Explore a registered scenario by name (inheriting its checkpointable
  /// trait). Throws std::invalid_argument for an unknown scenario name.
  [[nodiscard]] TestReport run(const std::string& scenarioName) const;
  [[nodiscard]] TestReport run(const char* scenarioName) const;

  /// Every strategy name run() accepts, canonical modes first.
  [[nodiscard]] static std::vector<std::string> strategies();

 private:
  struct Config {
    std::string strategy = "caching-lazy";
    std::uint64_t scheduleLimit = 10'000;
    std::uint32_t maxEventsPerSchedule = 1u << 16;
    std::uint64_t seed = 42;
    std::string memoryModel = "sc";
    bool detectRaces = false;
    bool checkTheorems = false;
    bool stopOnFirstViolation = false;
    std::uint32_t maxViolationsKept = 16;
    bool incremental = true;
    bool checkpointable = false;
    int workers = 1;
    /// Set to defaultSnapshotBudgetBytes() by the Session constructor.
    std::uint64_t snapshotBudgetBytes = 0;
    ProgressCallback progress;
    std::uint64_t progressInterval = 1024;
    std::string scenarioLabel;  ///< names run(name) ticks; empty for ad-hoc
  };

  Config config_;
};

/// Options for traceSchedule.
struct TraceOptions {
  /// Relation whose inter-thread edges annotate the trace:
  /// "sync" | "full" | "lazy".
  std::string relation = "full";
  /// Memory model to re-execute under: "sc" | "tso". Must match the model
  /// the schedule was recorded under — TSO schedules carry flush picks
  /// (>= 32) that no SC execution can apply.
  std::string memoryModel = "sc";
  bool detectRaces = false;
  bool renderTrace = true;
  std::uint32_t maxEventsPerSchedule = 1u << 16;
};

/// Deterministic re-execution of a recorded schedule.
struct ScheduleTrace {
  /// False when the schedule does not apply to the program (a pick named a
  /// thread that was not enabled at that point); every other field is then
  /// meaningless.
  bool applied = false;
  std::string outcome;  ///< "terminal" | "deadlock" | "assertion-failure" | ...
  bool violated = false;
  std::string message;   ///< violation message, if any
  std::string rendered;  ///< human-readable interleaving with HB edges
  std::size_t events = 0;
  std::string hbrFingerprint;    ///< 32 hex digits
  std::string lazyFingerprint;   ///< 32 hex digits
  std::string stateFingerprint;  ///< 32 hex digits
  std::vector<TestRace> races;
};

/// Re-execute `schedule` (e.g. a TestViolation::schedule) under `program`
/// and render the interleaving. Throws std::invalid_argument for an unknown
/// relation name in `options`.
[[nodiscard]] ScheduleTrace traceSchedule(const Program& program,
                                          const std::vector<int>& schedule,
                                          const TraceOptions& options = {});

/// Same, for a registered scenario. Throws std::invalid_argument for an
/// unknown scenario name.
[[nodiscard]] ScheduleTrace traceSchedule(const std::string& scenarioName,
                                          const std::vector<int>& schedule,
                                          const TraceOptions& options = {});

}  // namespace lazyhb
