// lazyhb/progress.hpp — the public progress-event surface.
//
// One event type flows through every layer that reports progress: a
// sequential exploration emits ScheduleTick (Session::onProgress), the
// campaign runner emits the Cell* lifecycle events and one final
// CampaignFinished (Suite::onProgress, `lazyhb bench --progress` /
// --progress-json). Consumers switch on `kind` and read the fields that
// apply; unused fields are zero/empty.
//
// Callback contract (see docs/embedding.md):
//   * thread — ScheduleTick fires synchronously on the exploring thread;
//     campaign events fire on worker threads but are serialized by the
//     campaign runner (never two callbacks concurrently).
//   * frequency — ScheduleTick every Session::progressInterval schedules
//     (default 1024); campaign events once per lifecycle transition.
//   * reentrancy — the callback must not call back into the emitting
//     Session/Suite, and should return quickly (it blocks the exploration).
//   * parallelism — a Session-level ScheduleTick callback forces the
//     exploration sequential (ticks from racing shard workers would
//     interleave nondeterministically); campaign-level events are
//     unaffected by --jobs/--workers.

#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace lazyhb {

struct ProgressEvent {
  enum class Kind : std::uint8_t {
    ScheduleTick,      ///< a sequential exploration passed a tick boundary
    CellStarted,       ///< a campaign cell began executing
    CellFinished,      ///< a campaign cell completed (possibly from a journal)
    CellRetried,       ///< a cell attempt timed out / threw; another follows
    CellTimedOut,      ///< a cell exhausted its retries on timeouts
    CellFailed,        ///< a cell exhausted its retries on errors
    CampaignFinished,  ///< the whole matrix is done
  };

  Kind kind = Kind::ScheduleTick;
  std::string scenario;  ///< program under test (empty for CampaignFinished)
  std::string strategy;  ///< explorer mode (empty for CampaignFinished)
  std::uint64_t schedulesExecuted = 0;
  std::uint64_t scheduleLimit = 0;
  std::size_t cellsDone = 0;   ///< finished cells, campaign events only
  std::size_t cellsTotal = 0;  ///< cells this run will execute (the shard's)
  int attempt = 1;             ///< 1-based attempt number (supervisor retries)
  double wallSeconds = 0.0;    ///< elapsed wall time of the emitting scope
  bool fromCheckpoint = false; ///< CellFinished satisfied from a journal
};

using ProgressCallback = std::function<void(const ProgressEvent&)>;

/// The canonical spelling of an event kind ("schedule_tick",
/// "cell_started", ...) — the `event` field of --progress-json lines.
[[nodiscard]] inline const char* progressKindName(ProgressEvent::Kind kind) noexcept {
  switch (kind) {
    case ProgressEvent::Kind::ScheduleTick: return "schedule_tick";
    case ProgressEvent::Kind::CellStarted: return "cell_started";
    case ProgressEvent::Kind::CellFinished: return "cell_finished";
    case ProgressEvent::Kind::CellRetried: return "cell_retried";
    case ProgressEvent::Kind::CellTimedOut: return "cell_timed_out";
    case ProgressEvent::Kind::CellFailed: return "cell_failed";
    case ProgressEvent::Kind::CampaignFinished: return "campaign_finished";
  }
  return "unknown";
}

}  // namespace lazyhb
