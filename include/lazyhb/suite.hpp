// lazyhb/suite.hpp — the public batch-campaign facade.
//
// Suite is to the campaign layer what Session (lazyhb/session.hpp) is to a
// single exploration: a builder of value types and strings that runs a
// whole (scenario × strategy) matrix and returns a self-describing
// SuiteReport. It is a thin adapter over the same campaign runner the CLI's
// `bench` subcommand drives, so every durability feature rides along:
// checkpointed resume, shard slicing, per-cell timeouts and retries, and
// the serialized progress-event stream.
//
//   const lazyhb::SuiteReport report = lazyhb::Suite()
//                                          .add("peterson")
//                                          .add("disjoint-lock")      // a family
//                                          .strategies({"dfs", "caching-lazy"})
//                                          .schedules(50'000)
//                                          .checkpointDir("ckpt/")    // resumable
//                                          .onProgress([](const lazyhb::ProgressEvent& e) {
//                                            /* serialized; see lazyhb/progress.hpp */
//                                          })
//                                          .run();
//   if (!report.allInequalitiesHold()) { /* §3 chain broke — a bug */ }
//   writeFile("shard0.json", report.toJson());  // `lazyhb merge`-able
//
// Configuration errors (unknown strategy/scenario name, bad shard spec)
// throw std::invalid_argument from run(); journal problems (config
// mismatch, nothing to resume) throw std::runtime_error. Counts are
// byte-identical to the CLI's `bench` for the same configuration — the
// parity tests pin this.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lazyhb/progress.hpp"

namespace lazyhb {

inline constexpr const char* kSuiteReportSchemaName = "lazyhb-bench-report";
inline constexpr int kSuiteReportSchemaVersion = 5;

/// One (scenario, strategy) cell of the suite matrix — the public mirror of
/// the campaign report's cell block.
struct SuiteCell {
  std::string scenario;
  std::string family;
  std::string strategy;

  // Exploration counts (the §3 chain reads
  // states <= lazyHbrs <= hbrs <= schedules).
  std::uint64_t schedules = 0;
  std::uint64_t terminal = 0;
  std::uint64_t pruned = 0;
  std::uint64_t violations = 0;
  std::uint64_t events = 0;
  std::uint64_t hbrs = 0;
  std::uint64_t lazyHbrs = 0;
  std::uint64_t states = 0;
  bool complete = false;
  bool hitScheduleLimit = false;

  // Supervisor / durability provenance.
  bool timedOut = false;       ///< final attempt hit the cell timeout
  bool fromCheckpoint = false; ///< loaded from the journal, not re-run
  int attempts = 1;            ///< > 1: the cell retried
  std::string error;           ///< non-empty: every attempt threw

  double wallSeconds = 0.0;
  bool inequalityHolds = true;
  std::string inequalityDiagnostic;  ///< empty when the §3 chain holds

  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
};

/// The self-describing result of one Suite::run.
struct SuiteReport {
  std::vector<SuiteCell> cells;  ///< scenario-major, strategy-minor

  std::uint64_t totalSchedules = 0;
  std::uint64_t totalEvents = 0;
  int inequalityViolations = 0;  ///< cells whose §3 chain failed (expect 0)
  double wallSeconds = 0.0;

  // Durability / supervisor tallies.
  std::size_t cellsFromCheckpoint = 0;
  int cellsTimedOut = 0;
  int cellsFailed = 0;
  int cellsRetried = 0;

  // The shard this run covered (0-based; 0/1 when unsharded).
  int shardIndex = 0;
  int shardCount = 1;

  [[nodiscard]] bool allInequalitiesHold() const noexcept {
    return inequalityViolations == 0;
  }

  /// The versioned lazyhb-bench-report JSON document (schema v5,
  /// newline-terminated) — the same document `lazyhb bench --out` writes,
  /// accepted by `lazyhb merge` and tools/bench_diff.py.
  [[nodiscard]] const std::string& toJson() const noexcept { return json_; }

  /// One human-readable summary line (no trailing newline).
  [[nodiscard]] std::string summary() const;

 private:
  friend class Suite;
  std::string json_;
};

/// Builder facade over the campaign runner. A Suite is a reusable value:
/// run() executes the configured matrix and returns a fresh SuiteReport.
class Suite {
 public:
  Suite();

  /// Select a scenario or a whole family by name (repeatable; order is
  /// kept, duplicates collapse). No add() at all runs the full registered
  /// corpus. Validated at run().
  Suite& add(std::string scenarioOrFamily);
  /// Strategies to run each scenario under (default: the five canonical
  /// modes). Validated at run().
  Suite& strategies(std::vector<std::string> names);
  /// Schedule budget per cell (default 10,000; the paper's experiments use
  /// 100,000).
  Suite& schedules(std::uint64_t limit);
  /// Per-schedule event budget, guarding against unbounded loops.
  Suite& maxEventsPerSchedule(std::uint32_t events);
  /// Seed for the "random" strategy; identical in every cell.
  Suite& seed(std::uint64_t value);
  /// Incremental prefix replay (default on); counts are byte-identical
  /// either way.
  Suite& incremental(bool on);
  /// Memory model every cell explores under: "sc" (default) or "tso"
  /// (x86-style store buffering; see docs/memory-models.md). Validated at
  /// run(). The report's config.memory_model echoes this — TSO and SC
  /// reports never merge.
  Suite& memoryModel(std::string model);
  /// Campaign worker threads fanning cells out (<= 0: one per hardware
  /// thread). Counts are byte-identical at any value.
  Suite& jobs(int count);
  /// Intra-cell worker threads sharding each scenario's schedule tree
  /// (dfs/caching-* only; counts stay byte-identical).
  Suite& workers(int count);
  /// Run only this 0-based slice of the cell matrix (cells with
  /// index % count == index_). Shard reports merge back to the unsharded
  /// count set via `lazyhb merge`. Validated at run().
  Suite& shard(int index, int count);
  /// Journal finished cells into this directory and resume from it when it
  /// already holds a matching journal (see docs/campaign-service.md).
  Suite& checkpointDir(std::string directory);
  /// Require checkpointDir() to hold an existing journal — run() then
  /// throws std::runtime_error instead of silently starting fresh.
  Suite& resumeOnly(bool on = true);
  /// Per-cell wall-clock budget in seconds (0 = none); a cell over budget
  /// stops at the next schedule boundary and is marked timedOut.
  Suite& cellTimeout(double seconds);
  /// Extra attempts after a timeout or exception before a cell is recorded
  /// as timedOut/failed (the campaign survives poisoned cells either way).
  Suite& cellRetries(int count);
  /// Campaign lifecycle events (serialized; lazyhb/progress.hpp documents
  /// the contract).
  Suite& onProgress(ProgressCallback callback);

  /// Run the configured matrix. Throws std::invalid_argument for unknown
  /// names or a bad shard spec, std::runtime_error for journal problems.
  [[nodiscard]] SuiteReport run() const;

 private:
  struct Config {
    std::vector<std::string> selectors;
    std::vector<std::string> strategies;
    std::uint64_t scheduleLimit = 10'000;
    std::uint32_t maxEventsPerSchedule = 1u << 16;
    std::uint64_t seed = 42;
    bool incremental = true;
    std::string memoryModel = "sc";
    int jobs = 0;
    int workers = 1;
    int shardIndex = 0;
    int shardCount = 1;
    std::string checkpointDir;
    bool resumeOnly = false;
    double cellTimeoutSeconds = 0.0;
    int cellRetries = 0;
    ProgressCallback progress;
  };

  Config config_;
};

}  // namespace lazyhb
