// lazyhb/scenario.hpp — public scenario registration.
//
// A *scenario* is a named program under test, registered into the global
// registry the CLI (`lazyhb list` / `--program`), the campaign matrix and
// Session::run(name) all enumerate. The built-in 87-benchmark corpus and
// user code register through the same mechanism, so a scenario defined in
// an embedding application is a first-class citizen of every tool surface.
//
// Typical use — define the body inline at namespace scope:
//
//   LAZYHB_SCENARIO("ticket-race", "ticketing",
//                   "two clerks race for the last ticket",
//                   .hasKnownBug = true) {
//     lazyhb::Shared<int> tickets{1, "tickets"};
//     auto clerk = lazyhb::spawn([&] {
//       if (tickets.load() > 0) tickets.store(tickets.load() - 1);
//     });
//     if (tickets.load() > 0) tickets.store(tickets.load() - 1);
//     clerk.join();
//     lazyhb::checkAlways(tickets.load() >= 0, "tickets never oversold");
//   }
//
// or register a factory-built body (any std::function<void()>):
//
//   LAZYHB_SCENARIO_FN("handoff-3", "handoff", "3-hop handoff",
//                      makeHandoff(3), .checkpointable = true)
//
// Registration happens during static initialization, strictly before the
// registry is first enumerated; registering after that point is a checked
// error. The trailing macro arguments are designated initializers for
// ScenarioTraits and may be omitted entirely.

#pragma once

#include <functional>
#include <string>
#include <vector>

namespace lazyhb {

/// A program under test: a callable run as thread 0 of every controlled
/// execution. Must be re-runnable (each schedule re-executes it from
/// scratch) and deterministic apart from scheduling.
using Program = std::function<void()>;

/// Enumeration order of the built-in corpus ends below this rank; scenarios
/// registered without an explicit rank sort after the corpus, in
/// registration order.
inline constexpr int kScenarioUserRank = 10000;

struct ScenarioTraits {
  /// The scenario intentionally contains a reachable violation (assertion
  /// failure or deadlock); `lazyhb list --buggy` and the test suites use
  /// this to assert explorers do find it.
  bool hasKnownBug = false;
  /// The known bug is reachable only under the TSO memory model (store
  /// buffering); exploring the scenario under SC is violation-free.
  /// Meaningful only together with hasKnownBug.
  bool bugRequiresTso = false;
  /// The body satisfies the checkpointable contract (see
  /// docs/embedding.md): all cross-schedule state lives in registered
  /// lazyhb objects or trivially-copyable stack locals — no heap-owning
  /// locals such as std::vector or std::string on fiber stacks. Enables
  /// full runtime rollback under incremental exploration; non-checkpointable
  /// scenarios still explore correctly via re-execution.
  bool checkpointable = false;
  /// Sort key for registry enumeration (ties keep registration order).
  /// Ranks below kScenarioUserRank are reserved for the built-in corpus;
  /// registerScenario clamps smaller values (with a warning) so user
  /// scenarios always enumerate after the corpus' stable ids 1..87.
  int rank = kScenarioUserRank;
};

/// One registered scenario, as enumerated by lazyhb::scenarios().
struct ScenarioInfo {
  int id = 0;  ///< stable 1-based registry id
  std::string name;
  std::string family;
  std::string description;
  bool hasKnownBug = false;
  bool bugRequiresTso = false;
  bool checkpointable = false;
};

/// Register a scenario. Names must be unique across the whole registry.
/// Normally invoked via LAZYHB_SCENARIO / LAZYHB_SCENARIO_FN during static
/// initialization; calling after the registry has been enumerated aborts.
void registerScenario(std::string name, std::string family,
                      std::string description, Program body,
                      ScenarioTraits traits = {});

/// Snapshot of every registered scenario, in registry (id) order.
[[nodiscard]] std::vector<ScenarioInfo> scenarios();

/// RAII helper the registration macros expand to.
struct ScenarioRegistrar {
  ScenarioRegistrar(const char* name, const char* family,
                    const char* description, Program body,
                    ScenarioTraits traits = {}) {
    registerScenario(name, family, description, std::move(body), traits);
  }
};

}  // namespace lazyhb

#define LAZYHB_SCENARIO_CAT2(a, b) a##b
#define LAZYHB_SCENARIO_CAT(a, b) LAZYHB_SCENARIO_CAT2(a, b)

/// Register `bodyExpr` (any lazyhb::Program expression) as a scenario.
/// Trailing arguments, if any, are ScenarioTraits designated initializers.
#define LAZYHB_SCENARIO_FN(name, family, description, bodyExpr, ...)         \
  [[maybe_unused]] static const ::lazyhb::ScenarioRegistrar                  \
      LAZYHB_SCENARIO_CAT(lazyhbScenarioRegistrar_, __COUNTER__){            \
          name, family, description, (bodyExpr),                             \
          ::lazyhb::ScenarioTraits{__VA_ARGS__}}

/// Define-and-register form: the macro invocation is followed by the
/// scenario body as a compound statement (see the header comment).
#define LAZYHB_SCENARIO(name, family, description, ...)                      \
  LAZYHB_SCENARIO_IMPL(LAZYHB_SCENARIO_CAT(lazyhbScenarioBody_, __COUNTER__),\
                       name, family, description, __VA_ARGS__)

#define LAZYHB_SCENARIO_IMPL(fn, name, family, description, ...)             \
  static void fn();                                                         \
  LAZYHB_SCENARIO_FN(name, family, description, &fn, __VA_ARGS__);          \
  static void fn()
