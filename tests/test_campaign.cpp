// Tests for the campaign layer: the shared ExplorerSpec factory, the JSON
// writer, the work-stealing pool, determinism of the parallel campaign
// (identical per-cell counts whatever --jobs is), aggregation, and the
// versioned report — including the HbrCache footprint stat it surfaces.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <limits>
#include <thread>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/explorer_spec.hpp"
#include "campaign/report.hpp"
#include "campaign/work_stealing_pool.hpp"
#include "core/hbr_cache.hpp"
#include "programs/registry.hpp"
#include "support/json_writer.hpp"

namespace {

using namespace lazyhb;

// --- ExplorerSpec factory ----------------------------------------------------

TEST(ExplorerSpec, ParsesEveryCanonicalName) {
  for (const campaign::ExplorerSpec& spec : campaign::allExplorers()) {
    const auto parsed = campaign::parseExplorerSpec(spec.name);
    ASSERT_TRUE(parsed.has_value()) << spec.name;
    EXPECT_EQ(parsed->kind, spec.kind);
    EXPECT_EQ(parsed->name, spec.name);
  }
  EXPECT_EQ(campaign::allExplorers().size(), 5u);
}

TEST(ExplorerSpec, RejectsUnknownNames) {
  EXPECT_FALSE(campaign::parseExplorerSpec("").has_value());
  EXPECT_FALSE(campaign::parseExplorerSpec("bfs").has_value());
  EXPECT_FALSE(campaign::parseExplorerSpec("caching").has_value());
  EXPECT_FALSE(campaign::parseExplorerSpec("DFS").has_value());  // case matters
  EXPECT_FALSE(campaign::parseExplorerSpec("dfs ").has_value());
}

TEST(ExplorerSpec, ParseListSplitsAndValidates) {
  const auto all = campaign::parseExplorerList("");
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->size(), 5u);

  const auto two = campaign::parseExplorerList("dpor, caching-lazy");
  ASSERT_TRUE(two.has_value());
  ASSERT_EQ(two->size(), 2u);
  EXPECT_EQ((*two)[0].name, "dpor");
  EXPECT_EQ((*two)[1].name, "caching-lazy");

  std::string bad;
  EXPECT_FALSE(campaign::parseExplorerList("dpor,warp,dfs", &bad).has_value());
  EXPECT_EQ(bad, "warp");
}

TEST(ExplorerSpec, CreatedExplorersAreFresh) {
  explore::ExplorerOptions options;
  options.scheduleLimit = 50;
  const programs::ProgramSpec* program = programs::byName("disjoint-lock-2");
  ASSERT_NE(program, nullptr);
  for (const campaign::ExplorerSpec& spec : campaign::allExplorers()) {
    auto first = spec.create(options, 7);
    auto second = spec.create(options, 7);
    ASSERT_NE(first, nullptr);
    // Each instance is single-use; both must run without tripping the
    // explore-once check, and identical configs give identical counts.
    const auto a = first->explore(program->body);
    const auto b = second->explore(program->body);
    EXPECT_EQ(a.schedulesExecuted, b.schedulesExecuted) << spec.name;
    EXPECT_EQ(a.distinctLazyHbrs, b.distinctLazyHbrs) << spec.name;
  }
}

// --- JSON writer -------------------------------------------------------------

/// Minimal unescaper for round-trip checks (handles exactly what jsonEscape
/// emits: the shorthand escapes and \u00xx).
std::string jsonUnescape(const std::string& s) {
  std::string out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        const int code = std::stoi(s.substr(i + 1, 4), nullptr, 16);
        out += static_cast<char>(code);
        i += 4;
        break;
      }
      default: ADD_FAILURE() << "unexpected escape \\" << s[i];
    }
  }
  return out;
}

TEST(JsonWriter, EscapingRoundTrips) {
  const std::string nasty =
      "quote:\" backslash:\\ newline:\n tab:\t cr:\r bell:\x07 nul-adjacent:\x1f";
  const std::string escaped = support::jsonEscape(nasty);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\t'), std::string::npos);
  EXPECT_NE(escaped.find("\\u0007"), std::string::npos);
  EXPECT_NE(escaped.find("\\u001f"), std::string::npos);
  EXPECT_EQ(jsonUnescape(escaped), nasty);
}

TEST(JsonWriter, NestedStructure) {
  support::JsonWriter json;
  json.beginObject();
  json.field("name", std::string("a\"b"));
  json.field("count", std::uint64_t{18446744073709551615ull});
  json.field("signed", std::int64_t{-3});
  json.field("ratio", 0.5);
  json.field("flag", true);
  json.key("list").beginArray();
  json.value(std::uint64_t{1});
  json.beginObject().field("inner", std::string("x")).endObject();
  json.endArray();
  json.key("empty").beginObject().endObject();
  json.endObject();

  const std::string doc = json.str();
  EXPECT_EQ(doc,
            "{\n"
            "  \"name\": \"a\\\"b\",\n"
            "  \"count\": 18446744073709551615,\n"
            "  \"signed\": -3,\n"
            "  \"ratio\": 0.5,\n"
            "  \"flag\": true,\n"
            "  \"list\": [\n"
            "    1,\n"
            "    {\n"
            "      \"inner\": \"x\"\n"
            "    }\n"
            "  ],\n"
            "  \"empty\": {}\n"
            "}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  support::JsonWriter json;
  json.beginArray();
  json.value(std::numeric_limits<double>::infinity());
  json.value(std::numeric_limits<double>::quiet_NaN());
  json.endArray();
  EXPECT_EQ(json.str(), "[\n  null,\n  null\n]");
}

// --- work-stealing pool ------------------------------------------------------

TEST(WorkStealingPool, RunsEveryTaskExactlyOnce) {
  campaign::WorkStealingPool pool(4);
  EXPECT_EQ(pool.workerCount(), 4);
  constexpr std::size_t kTasks = 200;
  std::vector<std::atomic<int>> ran(kTasks);
  std::vector<campaign::WorkStealingPool::Task> tasks;
  tasks.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.push_back([&ran, i] { ran[i].fetch_add(1); });
  }
  pool.run(std::move(tasks));
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(ran[i].load(), 1) << i;
  }
}

TEST(WorkStealingPool, ReusableAcrossBatchesAndClampsWorkers) {
  campaign::WorkStealingPool pool(0);  // clamps to 1
  EXPECT_EQ(pool.workerCount(), 1);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    std::vector<campaign::WorkStealingPool::Task> tasks;
    for (int i = 0; i < 10; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.run(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 30);
  pool.run({});  // empty batch is a no-op
  EXPECT_EQ(counter.load(), 30);
}

TEST(WorkStealingPool, BackToBackBatchesWithManyWorkers) {
  // Regression: run() deals the next batch into the deques while straggler
  // workers from the previous batch may still be scanning them for steal
  // victims — every push must take the deque mutex.
  campaign::WorkStealingPool pool(8);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 50; ++batch) {
    std::vector<campaign::WorkStealingPool::Task> tasks;
    for (int i = 0; i < 16; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.run(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 50 * 16);
}

TEST(WorkStealingPool, UnevenTasksGetStolen) {
  // Worker 0 is dealt one long task plus most of the short ones (round
  // robin); with 4 workers something must be stolen to finish.
  campaign::WorkStealingPool pool(4);
  std::atomic<int> counter{0};
  std::vector<campaign::WorkStealingPool::Task> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      counter.fetch_add(1);
    });
  }
  pool.run(std::move(tasks));
  EXPECT_EQ(counter.load(), 64);
  // Stealing is timing-dependent; only assert the counter is sane.
  EXPECT_LE(pool.tasksStolen(), 64u);
}

// --- campaign runner ---------------------------------------------------------

campaign::CampaignOptions smallCampaign(int jobs) {
  campaign::CampaignOptions options;
  options.explorers = *campaign::parseExplorerList("");
  for (const char* name :
       {"disjoint-lock-2", "disjoint-lock-3", "counter-lock-3", "lost-signal"}) {
    const programs::ProgramSpec* spec = programs::byName(name);
    EXPECT_NE(spec, nullptr) << name;
    if (spec != nullptr) options.programs.push_back(spec);
  }
  options.explorer.scheduleLimit = 150;
  options.jobs = jobs;
  return options;
}

TEST(Campaign, MatrixShapeAndOrderIsProgramMajor) {
  const auto result = campaign::runCampaign(smallCampaign(2));
  ASSERT_EQ(result.programs.size(), 4u);
  ASSERT_EQ(result.perExplorer.size(), 5u);
  ASSERT_EQ(result.cells.size(), 20u);
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t e = 0; e < 5; ++e) {
      const campaign::CellResult& cell = result.cells[p * 5 + e];
      EXPECT_EQ(cell.program, result.programs[p].program);
      EXPECT_EQ(cell.explorer, result.perExplorer[e].explorer);
    }
  }
}

TEST(Campaign, PerCellCountsIdenticalAcrossJobCounts) {
  const auto serial = campaign::runCampaign(smallCampaign(1));
  const auto parallel = campaign::runCampaign(smallCampaign(8));
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    const campaign::CellResult& a = serial.cells[i];
    const campaign::CellResult& b = parallel.cells[i];
    const std::string label = a.program + " x " + a.explorer;
    EXPECT_EQ(a.program, b.program) << label;
    EXPECT_EQ(a.explorer, b.explorer) << label;
    EXPECT_EQ(a.stats.schedulesExecuted, b.stats.schedulesExecuted) << label;
    EXPECT_EQ(a.stats.terminalSchedules, b.stats.terminalSchedules) << label;
    EXPECT_EQ(a.stats.prunedSchedules, b.stats.prunedSchedules) << label;
    EXPECT_EQ(a.stats.violationSchedules, b.stats.violationSchedules) << label;
    EXPECT_EQ(a.stats.distinctHbrs, b.stats.distinctHbrs) << label;
    EXPECT_EQ(a.stats.distinctLazyHbrs, b.stats.distinctLazyHbrs) << label;
    EXPECT_EQ(a.stats.distinctStates, b.stats.distinctStates) << label;
    EXPECT_EQ(a.stats.totalEvents, b.stats.totalEvents) << label;
    EXPECT_EQ(a.stats.complete, b.stats.complete) << label;
    EXPECT_EQ(a.stats.cacheStats.entries, b.stats.cacheStats.entries) << label;
    EXPECT_EQ(a.inequalityDiagnostic, b.inequalityDiagnostic) << label;
  }
  EXPECT_EQ(serial.totalSchedules, parallel.totalSchedules);
  EXPECT_EQ(serial.totalEvents, parallel.totalEvents);
}

TEST(Campaign, InequalityHoldsAndTotalsAddUp) {
  const auto result = campaign::runCampaign(smallCampaign(3));
  EXPECT_EQ(result.inequalityViolations, 0);
  std::uint64_t schedules = 0;
  for (const campaign::CellResult& cell : result.cells) {
    EXPECT_TRUE(cell.inequalityHolds())
        << cell.program << " x " << cell.explorer << ": "
        << cell.inequalityDiagnostic;
    schedules += cell.stats.schedulesExecuted;
  }
  EXPECT_EQ(result.totalSchedules, schedules);
  std::uint64_t perExplorerSchedules = 0;
  for (const campaign::ExplorerTotals& totals : result.perExplorer) {
    EXPECT_EQ(totals.cells, 4u);
    perExplorerSchedules += totals.schedules;
  }
  EXPECT_EQ(perExplorerSchedules, schedules);
}

TEST(Campaign, ProgramSummariesCarryFigureViews) {
  const auto result = campaign::runCampaign(smallCampaign(2));
  for (const campaign::ProgramSummary& program : result.programs) {
    EXPECT_TRUE(program.inequalityHolds) << program.program;
    ASSERT_TRUE(program.hasDpor) << program.program;
    EXPECT_LE(program.dporLazyHbrs, program.dporHbrs) << program.program;
    ASSERT_TRUE(program.hasCachingPair) << program.program;
    // Within the same budget lazy caching reaches at least as many terminal
    // lazy HBRs (the Figure 3 direction).
    EXPECT_GE(program.lazyHbrsByLazyCaching, program.lazyHbrsByFullCaching)
        << program.program;
  }
  // disjoint-lock programs are the paper's motivating case: strictly below
  // the diagonal under DPOR.
  EXPECT_TRUE(result.programs[0].belowDiagonal);
  EXPECT_GT(result.programs[0].redundantHbrPercent, 0.0);
}

TEST(Campaign, CacheStatsSurfaceFootprint) {
  const auto result = campaign::runCampaign(smallCampaign(2));
  for (const campaign::CellResult& cell : result.cells) {
    const explore::PrefixCacheStats& cache = cell.stats.cacheStats;
    if (cell.explorer == "caching-full" || cell.explorer == "caching-lazy") {
      EXPECT_TRUE(cache.enabled) << cell.program;
      EXPECT_GT(cache.entries, 0u) << cell.program;
      EXPECT_GT(cache.approxBytes, 0u) << cell.program;
      EXPECT_EQ(cache.insertions, cache.entries) << cell.program;
    } else {
      EXPECT_FALSE(cache.enabled) << cell.program << " x " << cell.explorer;
      EXPECT_EQ(cache.approxBytes, 0u);
    }
  }
}

TEST(Campaign, Fig2AndFig3ViewsMatchCells) {
  const auto result = campaign::runCampaign(smallCampaign(2));
  const auto fig2 = campaign::fig2Counts(result);
  ASSERT_EQ(fig2.size(), result.programs.size());
  for (std::size_t p = 0; p < fig2.size(); ++p) {
    EXPECT_EQ(fig2[p].name, result.programs[p].program);
    EXPECT_EQ(fig2[p].hbrs, result.programs[p].dporHbrs);
    EXPECT_EQ(fig2[p].lazyHbrs, result.programs[p].dporLazyHbrs);
  }
  const auto fig3 = campaign::fig3Counts(result);
  ASSERT_EQ(fig3.size(), result.programs.size());
  for (std::size_t p = 0; p < fig3.size(); ++p) {
    EXPECT_EQ(fig3[p].lazyHbrsByRegularCaching,
              result.programs[p].lazyHbrsByFullCaching);
    EXPECT_EQ(fig3[p].lazyHbrsByLazyCaching,
              result.programs[p].lazyHbrsByLazyCaching);
  }
}

TEST(Campaign, ProgressCallbackSeesEveryCell) {
  auto options = smallCampaign(4);
  std::vector<std::size_t> doneValues;
  std::size_t observedTotal = 0;
  std::size_t started = 0;
  std::size_t finishedCampaigns = 0;
  options.onProgress = [&](const ProgressEvent& event) {
    switch (event.kind) {
      case ProgressEvent::Kind::CellStarted:
        ++started;
        break;
      case ProgressEvent::Kind::CellFinished:
        doneValues.push_back(event.cellsDone);
        observedTotal = event.cellsTotal;
        EXPECT_FALSE(event.scenario.empty());
        EXPECT_FALSE(event.strategy.empty());
        break;
      case ProgressEvent::Kind::CampaignFinished:
        ++finishedCampaigns;
        break;
      default:
        break;
    }
  };
  const auto result = campaign::runCampaign(options);
  EXPECT_EQ(doneValues.size(), result.cells.size());
  EXPECT_EQ(started, result.cells.size());
  EXPECT_EQ(observedTotal, result.cells.size());
  EXPECT_EQ(finishedCampaigns, 1u);
  // The serialized callback counts monotonically 1..N.
  for (std::size_t i = 0; i < doneValues.size(); ++i) {
    EXPECT_EQ(doneValues[i], i + 1);
  }
}

// --- report ------------------------------------------------------------------

TEST(Report, VersionedAndStructurallySound) {
  const auto result = campaign::runCampaign(smallCampaign(2));
  campaign::ReportConfig config;
  config.scheduleLimit = 150;
  config.maxEventsPerSchedule = 1u << 16;
  config.seed = 42;
  const std::string json = campaign::writeReportJson(result, config);

  EXPECT_NE(json.find("\"schema\": \"lazyhb-bench-report\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": 8"), std::string::npos);
  // Since v4, config.workers is mandatory, and since v6 so is
  // config.snapshot_budget (bench_diff.py rejects a report without them).
  // v7 adds the per-cell value-class count; v8 the config memory model.
  EXPECT_NE(json.find("\"value_classes\""), std::string::npos);
  EXPECT_NE(json.find("\"memory_model\": \"sc\""), std::string::npos);
  // An SC campaign buffers nothing, so no cell emits the optional v8
  // per-cell tso block.
  EXPECT_EQ(json.find("\"tso\""), std::string::npos);
  // A clean unsharded run emits none of the v5 optional fields.
  EXPECT_EQ(json.find("\"timed_out\""), std::string::npos);
  EXPECT_EQ(json.find("\"shard\""), std::string::npos);
  EXPECT_NE(json.find("\"workers\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_budget\""), std::string::npos);
  // The campaign ran incrementally, so every cell carries its v6
  // checkpoint block.
  EXPECT_NE(json.find("\"checkpoint\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_staged\""), std::string::npos);
  EXPECT_NE(json.find("\"inequality_violations\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"explorer\": \"caching-lazy\""), std::string::npos);
  EXPECT_NE(json.find("\"approx_bytes\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  // Structural sanity without a parser: balanced braces/brackets outside
  // strings (the writer never emits braces inside these cells' strings).
  int braces = 0;
  int brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(Report, HbrCacheFootprintGrowsWithInsertions) {
  core::HbrCache cache;
  const std::size_t empty = cache.approxMemoryBytes();
  for (std::uint64_t i = 0; i < 1000; ++i) {
    cache.insert(support::hash128(i));
  }
  EXPECT_EQ(cache.size(), 1000u);
  EXPECT_GT(cache.approxMemoryBytes(), empty);
  EXPECT_GE(cache.approxMemoryBytes(), 1000 * sizeof(support::Hash128));
  cache.clear();
  EXPECT_LT(cache.approxMemoryBytes(), 1000 * sizeof(support::Hash128));
}

}  // namespace
