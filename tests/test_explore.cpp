// End-to-end explorer tests: the paper's Figure 1 example, completeness of
// DPOR and the caching explorers against naive enumeration, the §3 counting
// chain, and the Theorem 2.1/2.2 checkers.

#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace {

using namespace lazyhb;
using lazyhb::testing::figure1Program;
using lazyhb::testing::runCaching;
using lazyhb::testing::runDfs;
using lazyhb::testing::runDpor;

TEST(Figure1, NaiveEnumerationCounts) {
  const auto result = runDfs(figure1Program);
  EXPECT_TRUE(result.complete);
  // The two critical sections can be ordered two ways: two HBR classes.
  EXPECT_EQ(result.distinctHbrs, 2u);
  // The lazy HBR erases the mutex edges; x is only read, y and z disjoint:
  // every schedule is lazy-equivalent.
  EXPECT_EQ(result.distinctLazyHbrs, 1u);
  // And indeed only one state is reachable.
  EXPECT_EQ(result.distinctStates, 1u);
  // Sanity: the paper's counting chain.
  EXPECT_LE(result.distinctStates, result.distinctLazyHbrs);
  EXPECT_LE(result.distinctLazyHbrs, result.distinctHbrs);
  EXPECT_LE(result.distinctHbrs, result.schedulesExecuted);
  // Theorems hold across every explored schedule.
  EXPECT_EQ(result.theorem21.conflicts, 0u);
  EXPECT_EQ(result.theorem22.conflicts, 0u);
  EXPECT_EQ(result.theoremValue.conflicts, 0u);
}

TEST(Figure1, DporExploresOnePerHbrClass) {
  const auto result = runDpor(figure1Program);
  EXPECT_TRUE(result.complete);
  // DPOR must still see both HBR classes...
  EXPECT_EQ(result.distinctHbrs, 2u);
  EXPECT_EQ(result.distinctLazyHbrs, 1u);
  // ...with far fewer schedules than naive enumeration.
  const auto naive = runDfs(figure1Program);
  EXPECT_LT(result.schedulesExecuted, naive.schedulesExecuted);
}

TEST(Figure1, LazyCachingExploresLessThanRegularCaching) {
  const auto regular = runCaching(figure1Program, trace::Relation::Full);
  const auto lazy = runCaching(figure1Program, trace::Relation::Lazy);
  EXPECT_TRUE(regular.complete);
  EXPECT_TRUE(lazy.complete);
  // Both find the single reachable state.
  EXPECT_EQ(regular.distinctStates, 1u);
  EXPECT_EQ(lazy.distinctStates, 1u);
  // Lazy caching prunes at least as aggressively.
  EXPECT_LE(lazy.schedulesExecuted, regular.schedulesExecuted);
}

// A two-thread program with *independent* work under a coarse lock: the
// paper's motivating pattern. N increments of disjoint variables, each under
// the same global mutex.
void disjointCoarse() {
  Shared<int> a{0, "a"};
  Shared<int> b{0, "b"};
  Mutex m("m");
  auto t = spawn([&] {
    LockGuard guard(m);
    a.store(a.load() + 1);
  });
  {
    LockGuard guard(m);
    b.store(b.load() + 1);
  }
  t.join();
}

TEST(CoarseLocking, LazyHbrCollapsesDisjointCriticalSections) {
  const auto result = runDfs(disjointCoarse);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.distinctStates, 1u);
  EXPECT_EQ(result.distinctLazyHbrs, 1u);   // the paper's headline effect
  EXPECT_GT(result.distinctHbrs, 1u);       // regular HBR sees 2 classes
  EXPECT_EQ(result.theorem22.conflicts, 0u);
  EXPECT_EQ(result.theoremValue.conflicts, 0u);
}

// Racy counter: two unsynchronised read-modify-write pairs; the lost-update
// bug must be visible as multiple terminal states.
void racyCounter() {
  Shared<int> c{0, "c"};
  auto t = spawn([&] {
    const int v = c.load();
    c.store(v + 1);
  });
  const int v = c.load();
  c.store(v + 1);
  t.join();
}

TEST(RacyCounter, MultipleStatesAndTheoremsHold) {
  const auto result = runDfs(racyCounter);
  ASSERT_TRUE(result.complete);
  // c can end as 1 (lost update) or 2.
  EXPECT_EQ(result.distinctStates, 2u);
  // No mutexes: lazy HBR == HBR (points on the diagonal of Figure 2).
  EXPECT_EQ(result.distinctLazyHbrs, result.distinctHbrs);
  EXPECT_EQ(result.theorem21.conflicts, 0u);
  EXPECT_EQ(result.theorem22.conflicts, 0u);
  EXPECT_EQ(result.theoremValue.conflicts, 0u);
}

TEST(RacyCounter, DporFindsAllStates) {
  const auto naive = runDfs(racyCounter);
  const auto dpor = runDpor(racyCounter);
  EXPECT_TRUE(dpor.complete);
  EXPECT_EQ(dpor.distinctStates, naive.distinctStates);
  EXPECT_EQ(dpor.distinctHbrs, naive.distinctHbrs);
  EXPECT_LE(dpor.schedulesExecuted, naive.schedulesExecuted);
}

// Assertion bug reachable only in some interleavings.
void assertionBug() {
  Shared<int> x{0, "x"};
  Shared<int> y{0, "y"};
  auto t = spawn([&] {
    x.store(1);
    y.store(1);
  });
  const int sawX = x.load();
  const int sawY = y.load();
  // Buggy claim: "if I saw y unset... then x must also be unset when read
  // earlier" is false under any interleaving where both loads straddle the
  // child's stores: sawX == 0 with sawY == 1 is reachable.
  checkAlways(!(sawX == 0 && sawY == 1), "stale x with fresh y");
  t.join();
}

TEST(Violations, NaiveAndDporBothFindAssertionFailure) {
  const auto naive = runDfs(assertionBug);
  const auto dpor = runDpor(assertionBug);
  EXPECT_TRUE(naive.foundViolation());
  EXPECT_TRUE(dpor.foundViolation());
  EXPECT_EQ(naive.violations.front().kind, runtime::Outcome::AssertionFailure);
}

void abbaDeadlock() {
  Mutex a("a");
  Mutex b("b");
  auto t = spawn([&] {
    b.lock();
    a.lock();
    a.unlock();
    b.unlock();
  });
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  t.join();
}

TEST(Violations, DeadlockFoundByAllExplorers) {
  EXPECT_TRUE(runDfs(abbaDeadlock).foundViolation());
  EXPECT_TRUE(runDpor(abbaDeadlock).foundViolation());
  EXPECT_TRUE(runCaching(abbaDeadlock, trace::Relation::Full).foundViolation());
  EXPECT_TRUE(runCaching(abbaDeadlock, trace::Relation::Lazy).foundViolation());
}

// Three threads incrementing a counter under a lock: all schedules reach the
// same state; HBR classes = orderings of the critical sections = 3! = 6.
void lockedCounter3() {
  Shared<int> c{0, "c"};
  Mutex m("m");
  auto worker = [&] {
    LockGuard guard(m);
    c.store(c.load() + 1);
  };
  auto t1 = spawn(worker);
  auto t2 = spawn(worker);
  auto t3 = spawn(worker);
  t1.join();
  t2.join();
  t3.join();
}

TEST(LockedCounter, SixHbrClassesOneLazyClass) {
  const auto result = runDfs(lockedCounter3);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.distinctStates, 1u);
  EXPECT_EQ(result.distinctHbrs, 6u);
  // All critical sections write the same variable c... the writes conflict,
  // so the lazy HBR still orders them: 6 classes remain.
  EXPECT_EQ(result.distinctLazyHbrs, 6u);
  EXPECT_EQ(result.theorem22.conflicts, 0u);
  EXPECT_EQ(result.theoremValue.conflicts, 0u);
}

// Same three threads, but each under the lock touches only its OWN variable:
// now the lazy HBR collapses all 6 orderings into one class.
void lockedDisjoint3() {
  Shared<int> v1{0, "v1"};
  Shared<int> v2{0, "v2"};
  Shared<int> v3{0, "v3"};
  Mutex m("m");
  auto t1 = spawn([&] { LockGuard g(m); v1.store(1); });
  auto t2 = spawn([&] { LockGuard g(m); v2.store(1); });
  auto t3 = spawn([&] { LockGuard g(m); v3.store(1); });
  t1.join();
  t2.join();
  t3.join();
}

TEST(LockedDisjoint, LazyHbrCollapsesAllOrderings) {
  const auto result = runDfs(lockedDisjoint3);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.distinctStates, 1u);
  EXPECT_EQ(result.distinctHbrs, 6u);
  EXPECT_EQ(result.distinctLazyHbrs, 1u);
}

TEST(LockedDisjoint, CachingBudgetComparison) {
  // With a tight schedule budget, lazy caching reaches at least as many
  // distinct lazy HBRs as regular caching (the Figure 3 effect).
  for (const std::uint64_t limit : {4u, 8u, 16u, 64u}) {
    const auto regular = runCaching(lockedDisjoint3, trace::Relation::Full, limit);
    const auto lazy = runCaching(lockedDisjoint3, trace::Relation::Lazy, limit);
    EXPECT_GE(lazy.distinctLazyHbrs, regular.distinctLazyHbrs) << "limit=" << limit;
  }
}

// DPOR completeness sweep over a family of small programs: DPOR (with and
// without sleep sets) and both caching explorers must observe exactly the
// same distinct terminal HBRs/lazy HBRs/states as naive enumeration.
class CompletenessSweep : public ::testing::TestWithParam<int> {};

explore::Program programByIndex(int index) {
  switch (index) {
    case 0: return figure1Program;
    case 1: return disjointCoarse;
    case 2: return racyCounter;
    case 3: return lockedCounter3;
    case 4: return lockedDisjoint3;
    case 5:
      return [] {  // reader/writer race on two vars
        Shared<int> x{0, "x"};
        Shared<int> y{0, "y"};
        auto t = spawn([&] {
          x.store(1);
          (void)y.load();
        });
        y.store(1);
        (void)x.load();
        t.join();
      };
    case 6:
      return [] {  // semaphore handoff
        Shared<int> data{0, "data"};
        Semaphore ready{0, "ready"};
        auto t = spawn([&] {
          data.store(42);
          ready.release();
        });
        ready.acquire();
        checkAlways(data.load() == 42, "handoff ordered");
        t.join();
      };
    case 7:
      return [] {  // trylock contention
        Mutex m("m");
        Shared<int> fallback{0, "fallback"};
        auto t = spawn([&] {
          LockGuard g(m);
          fallback.store(fallback.load() + 10);
        });
        if (m.tryLock()) {
          fallback.store(fallback.load() + 1);
          m.unlock();
        } else {
          fallback.store(fallback.load() + 100);
        }
        t.join();
      };
    case 8:
      return [] {  // condvar ping
        Shared<int> flag{0, "flag"};
        Mutex m("m");
        CondVar cv("cv");
        auto t = spawn([&] {
          LockGuard g(m);
          while (flag.load() == 0) cv.wait(m);
        });
        {
          LockGuard g(m);
          flag.store(1);
          cv.signal();
        }
        t.join();
      };
    default:
      return [] {};
  }
}

TEST_P(CompletenessSweep, ReducedExplorersMatchNaive) {
  const auto program = programByIndex(GetParam());
  const auto naive = runDfs(program);
  ASSERT_TRUE(naive.complete) << "naive search must exhaust the space";

  for (const bool sleepSets : {true, false}) {
    const auto dpor = runDpor(program, sleepSets);
    EXPECT_TRUE(dpor.complete);
    EXPECT_EQ(dpor.distinctHbrs, naive.distinctHbrs) << "sleep=" << sleepSets;
    EXPECT_EQ(dpor.distinctLazyHbrs, naive.distinctLazyHbrs) << "sleep=" << sleepSets;
    EXPECT_EQ(dpor.distinctStates, naive.distinctStates) << "sleep=" << sleepSets;
    EXPECT_LE(dpor.schedulesExecuted, naive.schedulesExecuted);
  }
  for (const auto relation : {trace::Relation::Full, trace::Relation::Lazy}) {
    const auto cached = runCaching(program, relation);
    EXPECT_TRUE(cached.complete);
    EXPECT_EQ(cached.distinctStates, naive.distinctStates)
        << "relation=" << trace::relationName(relation);
    EXPECT_EQ(cached.distinctLazyHbrs, naive.distinctLazyHbrs)
        << "relation=" << trace::relationName(relation);
    EXPECT_LE(cached.schedulesExecuted, naive.schedulesExecuted);
  }
  // Theorems checked on the naive run already; also check DPOR's view.
  EXPECT_EQ(naive.theorem21.conflicts, 0u);
  EXPECT_EQ(naive.theorem22.conflicts, 0u);
  EXPECT_EQ(naive.theoremValue.conflicts, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllSmallPrograms, CompletenessSweep, ::testing::Range(0, 9));

}  // namespace
