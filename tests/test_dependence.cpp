// Unit tests for the dependence (conflict) relation — the definitional core
// of both HBRs — and for the co-enabledness approximation DPOR relies on.

#include <gtest/gtest.h>

#include "core/dependence.hpp"

namespace {

using namespace lazyhb;
using core::OpSig;
using runtime::OpKind;
using trace::Relation;

OpSig sig(OpKind kind, int thread, std::int32_t object, std::int32_t mutex = -1) {
  OpSig s;
  s.kind = kind;
  s.thread = thread;
  s.object = object;
  s.mutexObject = mutex;
  return s;
}

TEST(Dependence, SameThreadNeverConflictsButIsDependent) {
  const OpSig a = sig(OpKind::Write, 0, 1);
  const OpSig b = sig(OpKind::Write, 0, 1);
  EXPECT_FALSE(core::conflicting(a, b, Relation::Full));
  EXPECT_TRUE(core::dependent(a, b, Relation::Full));
}

TEST(Dependence, VariableConflictsNeedAWrite) {
  const OpSig r1 = sig(OpKind::Read, 0, 5);
  const OpSig r2 = sig(OpKind::Read, 1, 5);
  const OpSig w = sig(OpKind::Write, 2, 5);
  const OpSig rmw = sig(OpKind::Rmw, 3, 5);
  EXPECT_FALSE(core::conflicting(r1, r2, Relation::Full));
  EXPECT_FALSE(core::conflicting(r1, r2, Relation::Lazy));
  EXPECT_TRUE(core::conflicting(r1, w, Relation::Full));
  EXPECT_TRUE(core::conflicting(r1, w, Relation::Lazy));
  EXPECT_TRUE(core::conflicting(w, rmw, Relation::Full));
  EXPECT_TRUE(core::conflicting(rmw, r2, Relation::Lazy));
}

TEST(Dependence, DistinctObjectsNeverConflict) {
  const OpSig w1 = sig(OpKind::Write, 0, 5);
  const OpSig w2 = sig(OpKind::Write, 1, 6);
  EXPECT_FALSE(core::conflicting(w1, w2, Relation::Full));
  const OpSig l1 = sig(OpKind::Lock, 0, 7);
  const OpSig l2 = sig(OpKind::Lock, 1, 8);
  EXPECT_FALSE(core::conflicting(l1, l2, Relation::Full));
}

TEST(Dependence, MutexBlockingPairsEraseInLazyOnly) {
  const OpSig lock = sig(OpKind::Lock, 0, 3);
  const OpSig unlock = sig(OpKind::Unlock, 1, 3);
  EXPECT_TRUE(core::conflicting(lock, unlock, Relation::Full));
  EXPECT_FALSE(core::conflicting(lock, unlock, Relation::Lazy));  // the paper

  const OpSig trylock = sig(OpKind::TryLock, 1, 3);
  EXPECT_TRUE(core::conflicting(lock, trylock, Relation::Full));
  EXPECT_TRUE(core::conflicting(lock, trylock, Relation::Lazy));  // retained
  const OpSig trylockOther = sig(OpKind::TryLock, 2, 3);
  EXPECT_TRUE(core::conflicting(trylock, trylockOther, Relation::Lazy));
}

TEST(Dependence, WaitTouchesBothCondvarAndMutex) {
  const OpSig wait = sig(OpKind::Wait, 0, /*cv=*/10, /*mutex=*/3);
  const OpSig lock = sig(OpKind::Lock, 1, 3);
  const OpSig signal = sig(OpKind::Signal, 1, 10);
  EXPECT_TRUE(core::conflicting(wait, lock, Relation::Full));    // via the mutex
  EXPECT_FALSE(core::conflicting(wait, lock, Relation::Lazy));   // mutex erased
  EXPECT_TRUE(core::conflicting(wait, signal, Relation::Full));  // via the condvar
  EXPECT_TRUE(core::conflicting(wait, signal, Relation::Lazy));  // condvars kept
}

TEST(Dependence, SemaphoreAndThreadObjectsConflictInBothRelations) {
  const OpSig acq = sig(OpKind::SemAcquire, 0, 4);
  const OpSig rel = sig(OpKind::SemRelease, 1, 4);
  EXPECT_TRUE(core::conflicting(acq, rel, Relation::Full));
  EXPECT_TRUE(core::conflicting(acq, rel, Relation::Lazy));

  const OpSig spawnOp = sig(OpKind::Spawn, 0, 9);
  const OpSig joinOp = sig(OpKind::Join, 1, 9);
  EXPECT_TRUE(core::conflicting(spawnOp, joinOp, Relation::Full));
  EXPECT_TRUE(core::conflicting(spawnOp, joinOp, Relation::Lazy));
}

TEST(Dependence, YieldConflictsWithNothing) {
  const OpSig y = sig(OpKind::Yield, 0, -1);
  EXPECT_FALSE(core::conflicting(y, sig(OpKind::Write, 1, 5), Relation::Full));
  EXPECT_FALSE(core::conflicting(y, sig(OpKind::Lock, 1, 3), Relation::Full));
}

TEST(CoEnabled, MutexRoleConstraints) {
  const OpSig lock = sig(OpKind::Lock, 0, 3);
  const OpSig lock2 = sig(OpKind::Lock, 1, 3);
  const OpSig unlock = sig(OpKind::Unlock, 1, 3);
  const OpSig unlock2 = sig(OpKind::Unlock, 0, 3);
  // Two locks on a free mutex: co-enabled.
  EXPECT_TRUE(core::mayBeCoEnabled(lock, lock2));
  // A lock needs the mutex free; an unlock needs it held by the caller.
  EXPECT_FALSE(core::mayBeCoEnabled(lock, unlock));
  // Two unlocks require two owners: impossible.
  EXPECT_FALSE(core::mayBeCoEnabled(unlock, unlock2));
  // Wait behaves as needs-held; reacquire as needs-free.
  const OpSig wait = sig(OpKind::Wait, 0, 10, 3);
  const OpSig reacquire = sig(OpKind::Reacquire, 1, 10, 3);
  EXPECT_FALSE(core::mayBeCoEnabled(wait, unlock));
  EXPECT_FALSE(core::mayBeCoEnabled(wait, reacquire));
  EXPECT_TRUE(core::mayBeCoEnabled(reacquire, lock));  // both need it free
}

TEST(CoEnabled, UnrelatedMutexesAreIndependentConstraints) {
  const OpSig unlockA = sig(OpKind::Unlock, 0, 3);
  const OpSig lockB = sig(OpKind::Lock, 1, 4);
  EXPECT_TRUE(core::mayBeCoEnabled(unlockA, lockB));
}

TEST(CoEnabled, VariableAccessesAlwaysCoEnabled) {
  EXPECT_TRUE(core::mayBeCoEnabled(sig(OpKind::Write, 0, 5), sig(OpKind::Read, 1, 5)));
  EXPECT_TRUE(core::mayBeCoEnabled(sig(OpKind::TryLock, 0, 3), sig(OpKind::Lock, 1, 3)));
}

TEST(Dependence, SymmetricInBothRelations) {
  // Conflict must be symmetric; sweep a small matrix of signatures.
  const OpSig sigs[] = {
      sig(OpKind::Read, 0, 1),        sig(OpKind::Write, 1, 1),
      sig(OpKind::Lock, 2, 2),        sig(OpKind::Unlock, 3, 2),
      sig(OpKind::TryLock, 4, 2),     sig(OpKind::Wait, 5, 3, 2),
      sig(OpKind::Signal, 6, 3),      sig(OpKind::SemAcquire, 7, 4),
      sig(OpKind::SemRelease, 8, 4),  sig(OpKind::Spawn, 9, 5),
      sig(OpKind::Join, 10, 5),       sig(OpKind::Yield, 11, -1),
  };
  for (const auto relation : {Relation::Full, Relation::Lazy}) {
    for (const OpSig& a : sigs) {
      for (const OpSig& b : sigs) {
        EXPECT_EQ(core::conflicting(a, b, relation), core::conflicting(b, a, relation))
            << runtime::opKindName(a.kind) << " vs " << runtime::opKindName(b.kind);
      }
    }
  }
}

}  // namespace
