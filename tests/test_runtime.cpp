// Deeper runtime-engine tests: condvar FIFO and broadcast semantics,
// semaphore counting, nested spawn identity, stack-pool reuse, teardown
// robustness when executions are pruned at every possible depth, and
// enabled-set correctness around blocking operations.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "explore/dfs_explorer.hpp"
#include "explore/replay.hpp"
#include "runtime/api.hpp"
#include "runtime/fiber.hpp"

namespace {

using namespace lazyhb;
using runtime::Config;
using runtime::Execution;
using runtime::Outcome;
using runtime::StackPool;

class FirstEnabled final : public runtime::Scheduler {
 public:
  int pick(Execution& exec) override { return exec.enabled().first(); }
};

/// Picks the highest-numbered enabled thread: children drain before the
/// main thread proceeds (used where main would otherwise starve them by
/// spinning on a condition they have not yet had a chance to establish).
class LastEnabled final : public runtime::Scheduler {
 public:
  int pick(Execution& exec) override {
    const support::ThreadSet enabled = exec.enabled();
    int tid = enabled.first();
    for (int next = enabled.next(tid); next != -1; next = enabled.next(tid)) {
      tid = next;
    }
    return tid;
  }
};

Outcome run(const std::function<void()>& body, runtime::Scheduler& s,
            Execution* out = nullptr) {
  StackPool pool;
  Execution exec(Config{}, pool, nullptr);
  const Outcome outcome = exec.run(body, s);
  if (out != nullptr) {
    // Execution is not copyable; callers use the pointer variant below.
  }
  return outcome;
}

TEST(Runtime, CondVarWakesInFifoOrder) {
  // Three waiters park in order; three signals must wake them in the same
  // order (deterministic wakeup is part of the schedule-invariance story).
  LastEnabled sched;
  StackPool pool;
  Execution exec(Config{}, pool, nullptr);
  const Outcome outcome = exec.run(
      [] {
        Mutex m("m");
        CondVar cv("cv");
        Shared<int> wokenOrder{0, "order"};
        Shared<int> parked{0, "parked"};
        std::vector<ThreadHandle> waiters;
        for (int i = 1; i <= 3; ++i) {
          waiters.push_back(spawn([&, i] {
            LockGuard guard(m);
            parked.fetchAdd(1);
            cv.wait(m);
            // Encode wake order in base 10: first-woken contributes the
            // most significant digit.
            wokenOrder.store(wokenOrder.load() * 10 + i);
          }));
        }
        // Wait until all three are parked (first-enabled scheduling runs
        // each spawned thread to its wait before the main thread proceeds,
        // but the loop makes the invariant explicit).
        while (parked.load() < 3) {
          yield();
        }
        for (int i = 0; i < 3; ++i) {
          LockGuard guard(m);
          cv.signal();
        }
        for (auto& w : waiters) w.join();
        checkAlways(wokenOrder.load() == 123, "FIFO wakeup");
      },
      sched);
  EXPECT_EQ(outcome, Outcome::Terminal);
}

TEST(Runtime, BroadcastWakesAllWaiters) {
  LastEnabled sched;
  EXPECT_EQ(run(
                [] {
                  Mutex m("m");
                  CondVar cv("cv");
                  Shared<int> parked{0, "parked"};
                  Shared<int> woken{0, "woken"};
                  std::vector<ThreadHandle> waiters;
                  for (int i = 0; i < 3; ++i) {
                    waiters.push_back(spawn([&] {
                      LockGuard guard(m);
                      parked.fetchAdd(1);
                      cv.wait(m);
                      woken.fetchAdd(1);
                    }));
                  }
                  while (parked.load() < 3) yield();
                  {
                    LockGuard guard(m);
                    cv.broadcast();
                  }
                  for (auto& w : waiters) w.join();
                  checkAlways(woken.load() == 3, "all woken");
                },
                sched),
            Outcome::Terminal);
}

TEST(Runtime, SemaphoreCountsPermits) {
  FirstEnabled sched;
  EXPECT_EQ(run(
                [] {
                  Semaphore sem(2, "sem");
                  sem.acquire();
                  sem.acquire();  // both immediate permits consumed
                  auto t = spawn([&] { sem.release(); });
                  sem.acquire();  // must block until the child releases
                  t.join();
                },
                sched),
            Outcome::Terminal);
}

TEST(Runtime, NestedSpawnIdentityIsStable) {
  // Grandchildren spawned from a child must get schedule-invariant UIDs:
  // two different schedules of the same program agree on every event's
  // thread UID (checked via the trace fingerprint of a fixed replay).
  auto body = [] {
    Shared<int> sum{0, "sum"};
    auto child = spawn([&] {
      auto grandchild = spawn([&] { sum.fetchAdd(1); });
      grandchild.join();
      sum.fetchAdd(10);
    });
    sum.fetchAdd(100);
    child.join();
  };
  // Two different interleavings that both complete.
  const auto a = explore::replaySchedule(body, {});
  ASSERT_EQ(a.outcome, Outcome::Terminal);
  // All schedules reach the same final sum, and the HBR machinery never
  // confuses the grandchild across schedules (same state fingerprint).
  explore::ExplorerOptions options;
  options.scheduleLimit = 100000;
  explore::DfsExplorer explorer(options);
  const auto result = explorer.explore(body);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.distinctStates, 1u);
}

TEST(Runtime, StackPoolReusesStacks) {
  StackPool pool(64 * 1024);
  EXPECT_EQ(pool.pooledCount(), 0u);
  {
    runtime::Fiber fiber(pool, [] {});
    fiber.resume();
    EXPECT_TRUE(fiber.finished());
  }
  EXPECT_EQ(pool.pooledCount(), 1u);  // returned on destruction
  {
    runtime::Fiber fiber(pool, [] {});
    EXPECT_EQ(pool.pooledCount(), 0u);  // reused, not reallocated
    fiber.resume();
  }
  EXPECT_EQ(pool.pooledCount(), 1u);
}

/// Abandon an execution after exactly k events; used to sweep teardown
/// through every possible prune depth.
class AbandonAfter final : public runtime::Scheduler {
 public:
  explicit AbandonAfter(std::size_t k) : k_(k) {}
  int pick(Execution& exec) override {
    if (exec.choices().size() >= k_) return kAbandon;
    return exec.enabled().first();
  }

 private:
  std::size_t k_;
};

TEST(Runtime, TeardownSafeAtEveryDepth) {
  // A program using every synchronisation feature; pruning it after each
  // possible event count must neither crash, hang, nor leak fibers.
  auto body = [] {
    Shared<int> x{0, "x"};
    Mutex m("m");
    CondVar cv("cv");
    Semaphore sem(1, "sem");
    auto t1 = spawn([&] {
      LockGuard guard(m);
      while (x.load() == 0) cv.wait(m);
      sem.acquire();
      sem.release();
    });
    auto t2 = spawn([&] {
      LockGuard guard(m);
      x.store(1);
      cv.signal();
    });
    if (m.tryLock()) m.unlock();
    t1.join();
    t2.join();
  };
  StackPool pool;
  for (std::size_t k = 0; k < 40; ++k) {
    Execution exec(Config{}, pool, nullptr);
    AbandonAfter sched(k);
    const Outcome outcome = exec.run(body, sched);
    EXPECT_TRUE(outcome == Outcome::Abandoned || outcome == Outcome::Terminal)
        << "k=" << k;
  }
}

TEST(Runtime, EnabledSetTracksBlocking) {
  // Drive a specific schedule and observe enabled() transitions around a
  // lock conflict.
  StackPool pool;
  Execution exec(Config{}, pool, nullptr);
  struct Probe final : runtime::Scheduler {
    bool sawBlockedLock = false;
    int pick(Execution& e) override {
      // While some thread holds m and another has a pending lock on it,
      // that other thread must not be enabled.
      for (int tid = 0; tid < e.threadCount(); ++tid) {
        const auto& op = e.pending(tid);
        if (op.valid && op.kind == runtime::OpKind::Lock &&
            e.object(op.object).a != -1 && !e.enabled().contains(tid)) {
          sawBlockedLock = true;
        }
      }
      return e.enabled().first();
    }
  } sched;
  const Outcome outcome = exec.run(
      [] {
        Mutex m("m");
        Shared<int> x{0, "x"};
        auto t = spawn([&] {
          LockGuard guard(m);
          x.store(1);
        });
        LockGuard guard(m);
        x.store(2);
        // Give the child a chance to be blocked on m while we hold it.
        yield();
        t.join();
      },
      sched);
  // The schedule above deadlocks: main holds m and joins t while t waits
  // for m... actually main unlocks at scope exit after join -> deadlock.
  // Either way the probe must have observed the disabled pending lock.
  (void)outcome;
  EXPECT_TRUE(sched.sawBlockedLock);
}

TEST(Runtime, ViolationSchedulesReplayExactly) {
  auto body = [] {
    Shared<int> x{0, "x"};
    auto t = spawn([&] { x.store(1); });
    const int seen = x.load();
    t.join();
    checkAlways(seen == 0, "main read before child wrote");  // fails sometimes
  };
  explore::ExplorerOptions options;
  options.scheduleLimit = 1000;
  options.stopOnFirstViolation = true;
  explore::DfsExplorer explorer(options);
  const auto result = explorer.explore(body);
  ASSERT_TRUE(result.foundViolation());
  const auto replay = explore::replaySchedule(body, result.violations[0].schedule);
  EXPECT_EQ(replay.outcome, Outcome::AssertionFailure);
  EXPECT_EQ(replay.violationMessage, result.violations[0].message);
}

}  // namespace
