// Tests for the durability/divisibility layer added with report schema v5:
// the campaign journal (kill a campaign mid-matrix, resume, counts are
// byte-identical), the report merge algebra (associative, commutative,
// conflict-rejecting), shard partitioning, the per-cell supervisor
// (timeout/retry marking), the progress-event chain, and the lazyhb::Suite
// facade's parity with the campaign runner it adapts.

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/explorer_spec.hpp"
#include "campaign/merge.hpp"
#include "campaign/report.hpp"
#include "lazyhb/lazyhb.hpp"
#include "programs/registry.hpp"
#include "support/json_reader.hpp"

namespace {

using namespace lazyhb;
namespace fs = std::filesystem;

// --- helpers -----------------------------------------------------------------

/// A fresh temp directory, removed at scope exit.
class TempDir {
 public:
  TempDir() {
    std::string templ =
        (fs::temp_directory_path() / "lazyhb-resume-XXXXXX").string();
    path_ = mkdtemp(templ.data());
    EXPECT_FALSE(path_.empty());
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// The small (4 program × 5 explorer) matrix test_campaign.cpp also uses.
campaign::CampaignOptions smallCampaign(int jobs) {
  campaign::CampaignOptions options;
  options.explorers = *campaign::parseExplorerList("");
  for (const char* name :
       {"disjoint-lock-2", "disjoint-lock-3", "counter-lock-3", "lost-signal"}) {
    const programs::ProgramSpec* spec = programs::byName(name);
    EXPECT_NE(spec, nullptr) << name;
    if (spec != nullptr) options.programs.push_back(spec);
  }
  options.explorer.scheduleLimit = 150;
  options.jobs = jobs;
  return options;
}

/// The count fields the determinism contract pins, as a comparable tuple.
void expectSameCounts(const campaign::CellResult& a,
                      const campaign::CellResult& b) {
  const std::string label = a.program + " x " + a.explorer;
  EXPECT_EQ(a.program, b.program) << label;
  EXPECT_EQ(a.explorer, b.explorer) << label;
  EXPECT_EQ(a.stats.schedulesExecuted, b.stats.schedulesExecuted) << label;
  EXPECT_EQ(a.stats.terminalSchedules, b.stats.terminalSchedules) << label;
  EXPECT_EQ(a.stats.prunedSchedules, b.stats.prunedSchedules) << label;
  EXPECT_EQ(a.stats.violationSchedules, b.stats.violationSchedules) << label;
  EXPECT_EQ(a.stats.totalEvents, b.stats.totalEvents) << label;
  EXPECT_EQ(a.stats.distinctHbrs, b.stats.distinctHbrs) << label;
  EXPECT_EQ(a.stats.distinctLazyHbrs, b.stats.distinctLazyHbrs) << label;
  EXPECT_EQ(a.stats.distinctStates, b.stats.distinctStates) << label;
  EXPECT_EQ(a.stats.complete, b.stats.complete) << label;
}

campaign::ReportConfig reportConfigFor(const campaign::CampaignOptions& options) {
  campaign::ReportConfig config;
  config.scheduleLimit = options.explorer.scheduleLimit;
  config.maxEventsPerSchedule = options.explorer.maxEventsPerSchedule;
  config.seed = options.seed;
  config.incremental = options.explorer.incremental;
  config.workers = options.explorer.workers;
  config.shardIndex = options.shardIndex;
  config.shardCount = options.shardCount;
  return config;
}

/// Run one shard of the small campaign and render its v5 report.
std::string shardDocument(int index, int count) {
  campaign::CampaignOptions options = smallCampaign(2);
  options.shardIndex = index;
  options.shardCount = count;
  const campaign::CampaignResult result = campaign::runCampaign(options);
  return campaign::writeReportJson(result, reportConfigFor(options));
}

/// A fabricated clean cell for merge-conflict tests (counts satisfy the §3
/// chain so only the *conflict* path is exercised).
campaign::CellResult fabricatedCell(std::uint64_t schedules) {
  campaign::CellResult cell;
  cell.programId = 1;
  cell.program = "fabricated";
  cell.family = "synthetic";
  cell.explorer = "dfs";
  cell.stats.schedulesExecuted = schedules;
  cell.stats.terminalSchedules = schedules;
  cell.stats.distinctHbrs = 4;
  cell.stats.distinctLazyHbrs = 3;
  cell.stats.distinctStates = 2;
  cell.stats.totalEvents = 10 * schedules;
  cell.stats.complete = true;
  cell.wallSeconds = 0.5;
  return cell;
}

std::string fabricatedDocument(campaign::CellResult cell) {
  std::vector<campaign::CellResult> cells;
  cells.push_back(std::move(cell));
  const campaign::CampaignResult result =
      campaign::foldCells(std::move(cells), {"dfs"});
  campaign::ReportConfig config;
  config.scheduleLimit = 150;
  config.maxEventsPerSchedule = 1u << 16;
  return campaign::writeReportJson(result, config);
}

// --- journal -----------------------------------------------------------------

campaign::JournalConfig journalConfigFor(const campaign::CampaignOptions& options) {
  campaign::JournalConfig config;
  config.scheduleLimit = options.explorer.scheduleLimit;
  config.maxEventsPerSchedule = options.explorer.maxEventsPerSchedule;
  config.seed = options.seed;
  config.incremental = options.explorer.incremental;
  config.workers = options.explorer.workers;
  for (const campaign::ExplorerSpec& spec : options.explorers) {
    config.explorers.push_back(spec.name);
  }
  for (const programs::ProgramSpec* spec : options.programs) {
    config.programs.push_back(spec->name);
  }
  return config;
}

TEST(Journal, RecordsAndReloadsCells) {
  const TempDir dir;
  const auto options = smallCampaign(1);
  const auto config = journalConfigFor(options);
  {
    campaign::CampaignJournal journal(dir.path(), config, false);
    EXPECT_EQ(journal.completedCount(), 0u);
    EXPECT_FALSE(journal.completed(3));
    journal.record(3, fabricatedCell(42));
  }
  campaign::CampaignJournal reopened(dir.path(), config, true);
  EXPECT_EQ(reopened.completedCount(), 1u);
  ASSERT_TRUE(reopened.completed(3));
  EXPECT_FALSE(reopened.completed(2));
  expectSameCounts(reopened.loaded(3), fabricatedCell(42));
}

TEST(Journal, RejectsConfigMismatch) {
  const TempDir dir;
  const auto options = smallCampaign(1);
  const auto config = journalConfigFor(options);
  { campaign::CampaignJournal journal(dir.path(), config, false); }

  auto differentSeed = config;
  differentSeed.seed = 7;
  EXPECT_THROW(campaign::CampaignJournal(dir.path(), differentSeed, false),
               std::runtime_error);

  auto differentLimit = config;
  differentLimit.scheduleLimit = 99;
  EXPECT_THROW(campaign::CampaignJournal(dir.path(), differentLimit, false),
               std::runtime_error);

  auto differentShard = config;
  differentShard.shardIndex = 1;
  differentShard.shardCount = 2;
  EXPECT_THROW(campaign::CampaignJournal(dir.path(), differentShard, false),
               std::runtime_error);
}

TEST(Journal, RequireExistingRefusesEmptyDirectory) {
  const TempDir dir;
  const auto config = journalConfigFor(smallCampaign(1));
  EXPECT_THROW(campaign::CampaignJournal(dir.path(), config, true),
               std::runtime_error);
}

TEST(Journal, ResumeLoadsCompletedCellsInsteadOfRerunning) {
  const TempDir dir;
  const auto direct = campaign::runCampaign(smallCampaign(2));

  auto first = smallCampaign(2);
  first.checkpointDir = dir.path();
  const auto initial = campaign::runCampaign(first);
  EXPECT_EQ(initial.cellsFromCheckpoint, 0u);

  auto second = smallCampaign(2);
  second.checkpointDir = dir.path();
  second.requireExistingJournal = true;
  const auto resumed = campaign::runCampaign(second);
  EXPECT_EQ(resumed.cellsFromCheckpoint, resumed.cells.size());

  ASSERT_EQ(resumed.cells.size(), direct.cells.size());
  for (std::size_t i = 0; i < direct.cells.size(); ++i) {
    expectSameCounts(direct.cells[i], resumed.cells[i]);
    EXPECT_TRUE(resumed.cells[i].fromCheckpoint);
  }
  EXPECT_EQ(resumed.totalSchedules, direct.totalSchedules);
  EXPECT_EQ(resumed.inequalityViolations, 0);
}

// The headline durability property: SIGKILL a campaign child mid-matrix,
// resume from its journal, and the completed campaign's counts are
// byte-identical to an uninterrupted run's.
TEST(Journal, KillAndResumeMatchesUninterruptedRun) {
  const TempDir dir;
  const auto direct = campaign::runCampaign(smallCampaign(2));

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: run the journaled campaign until killed (or completion —
    // either way the parent's resume below must produce identical counts).
    auto options = smallCampaign(1);
    options.checkpointDir = dir.path();
    try {
      (void)campaign::runCampaign(options);
    } catch (...) {
    }
    _exit(0);
  }

  // Parent: wait until at least two cells are journaled, then kill the
  // child without warning. The per-cell files are written atomically, so
  // whatever the kill interrupts, the journal holds only complete cells.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  std::size_t journaled = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    journaled = 0;
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("cell-", 0) == 0 && name.find(".tmp") == std::string::npos) {
        ++journaled;
      }
    }
    if (journaled >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(journaled, 2u) << "campaign child journaled no cells in 60s";
  kill(child, SIGKILL);
  int status = 0;
  ASSERT_EQ(waitpid(child, &status, 0), child);

  auto resumeOptions = smallCampaign(2);
  resumeOptions.checkpointDir = dir.path();
  resumeOptions.requireExistingJournal = true;
  const auto resumed = campaign::runCampaign(resumeOptions);

  EXPECT_GE(resumed.cellsFromCheckpoint, 2u);
  ASSERT_EQ(resumed.cells.size(), direct.cells.size());
  for (std::size_t i = 0; i < direct.cells.size(); ++i) {
    expectSameCounts(direct.cells[i], resumed.cells[i]);
  }
  EXPECT_EQ(resumed.totalSchedules, direct.totalSchedules);
  EXPECT_EQ(resumed.totalEvents, direct.totalEvents);
  EXPECT_EQ(resumed.inequalityViolations, 0);
}

// --- sharding ----------------------------------------------------------------

TEST(Shard, SlicesPartitionTheMatrixAndPreserveCounts) {
  const auto full = campaign::runCampaign(smallCampaign(2));
  constexpr int kShards = 3;

  std::set<std::pair<std::string, std::string>> seen;
  std::size_t totalCells = 0;
  for (int shard = 0; shard < kShards; ++shard) {
    campaign::CampaignOptions options = smallCampaign(2);
    options.shardIndex = shard;
    options.shardCount = kShards;
    const auto slice = campaign::runCampaign(options);
    EXPECT_EQ(slice.shardIndex, shard);
    EXPECT_EQ(slice.shardCount, kShards);
    // Per-explorer rows stay column-compatible with the full campaign.
    ASSERT_EQ(slice.perExplorer.size(), full.perExplorer.size());
    totalCells += slice.cells.size();
    for (const campaign::CellResult& cell : slice.cells) {
      EXPECT_TRUE(seen.emplace(cell.program, cell.explorer).second)
          << cell.program << " x " << cell.explorer << " in two shards";
      // The shard cell's counts are byte-identical to the full run's.
      bool found = false;
      for (const campaign::CellResult& reference : full.cells) {
        if (reference.program == cell.program &&
            reference.explorer == cell.explorer) {
          expectSameCounts(reference, cell);
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
  }
  EXPECT_EQ(totalCells, full.cells.size());
  EXPECT_EQ(seen.size(), full.cells.size());
}

TEST(Shard, RejectsBadShardSpecs) {
  campaign::CampaignOptions options = smallCampaign(1);
  options.shardIndex = 2;
  options.shardCount = 2;
  EXPECT_THROW((void)campaign::runCampaign(options), std::invalid_argument);
  options.shardIndex = -1;
  options.shardCount = 2;
  EXPECT_THROW((void)campaign::runCampaign(options), std::invalid_argument);
  options.shardIndex = 0;
  options.shardCount = 0;
  EXPECT_THROW((void)campaign::runCampaign(options), std::invalid_argument);
}

// --- merge algebra -----------------------------------------------------------

TEST(Merge, ShardsMergeBackToTheUnshardedCounts) {
  const auto full = campaign::runCampaign(smallCampaign(2));
  const std::vector<std::string> docs = {shardDocument(0, 3), shardDocument(1, 3),
                                         shardDocument(2, 3)};
  const auto merged =
      campaign::mergeReports(docs, {"s0.json", "s1.json", "s2.json"});

  ASSERT_EQ(merged.result.cells.size(), full.cells.size());
  for (std::size_t i = 0; i < full.cells.size(); ++i) {
    expectSameCounts(full.cells[i], merged.result.cells[i]);
  }
  EXPECT_EQ(merged.result.totalSchedules, full.totalSchedules);
  EXPECT_EQ(merged.result.totalEvents, full.totalEvents);
  EXPECT_EQ(merged.result.inequalityViolations, 0);
  EXPECT_EQ(merged.result.programs.size(), full.programs.size());
  ASSERT_EQ(merged.provenance.sources.size(), 3u);
  // The merged report's config is unsharded; coverage lives in provenance.
  EXPECT_EQ(merged.config.shardCount, 1);
}

TEST(Merge, IsCommutativeAndAssociativeByteForByte) {
  const std::string a = shardDocument(0, 3);
  const std::string b = shardDocument(1, 3);
  const std::string c = shardDocument(2, 3);

  const auto render = [](const campaign::MergeOutcome& outcome) {
    return campaign::writeReportJson(outcome.result, outcome.config,
                                     &outcome.provenance);
  };

  // Commutativity: any input order produces the same document.
  const std::string abc =
      render(campaign::mergeReports({a, b, c}, {"a", "b", "c"}));
  const std::string cba =
      render(campaign::mergeReports({c, b, a}, {"c", "b", "a"}));
  EXPECT_EQ(abc, cba);

  // Associativity: any grouping produces the same document.
  const std::string ab = render(campaign::mergeReports({a, b}, {"a", "b"}));
  const std::string bc = render(campaign::mergeReports({b, c}, {"b", "c"}));
  const std::string ab_c =
      render(campaign::mergeReports({ab, c}, {"ab.json", "c"}));
  const std::string a_bc =
      render(campaign::mergeReports({a, bc}, {"a", "bc.json"}));
  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab_c, abc);
}

TEST(Merge, DeduplicatesIdenticalCellsAndOverlappingShards) {
  const std::string a = shardDocument(0, 2);
  const std::string b = shardDocument(1, 2);
  // Merging a shard with itself and its complement: the duplicate copy of
  // every shard-0 cell deduplicates, leaving the full matrix exactly once.
  const auto merged = campaign::mergeReports({a, a, b}, {"a", "a2", "b"});
  const auto full = campaign::runCampaign(smallCampaign(2));
  ASSERT_EQ(merged.result.cells.size(), full.cells.size());
  for (std::size_t i = 0; i < full.cells.size(); ++i) {
    expectSameCounts(full.cells[i], merged.result.cells[i]);
  }
}

TEST(Merge, RejectsConflictingDuplicateCounts) {
  const std::string doc1 = fabricatedDocument(fabricatedCell(10));
  const std::string doc2 = fabricatedDocument(fabricatedCell(11));
  EXPECT_THROW((void)campaign::mergeReports({doc1, doc2}, {"one", "two"}),
               std::runtime_error);
  // Same counts: no conflict, one copy survives.
  const auto merged = campaign::mergeReports({doc1, doc1}, {"one", "copy"});
  EXPECT_EQ(merged.result.cells.size(), 1u);
}

TEST(Merge, PrefersTheHealthyCopyOfATimedOutCell) {
  campaign::CellResult partial = fabricatedCell(5);
  partial.timedOut = true;
  partial.stats.timedOut = true;
  partial.stats.complete = false;
  const std::string timedOutDoc = fabricatedDocument(partial);
  const std::string cleanDoc = fabricatedDocument(fabricatedCell(10));

  for (const auto& order :
       {std::vector<std::string>{timedOutDoc, cleanDoc},
        std::vector<std::string>{cleanDoc, timedOutDoc}}) {
    const auto merged = campaign::mergeReports(order, {"x", "y"});
    ASSERT_EQ(merged.result.cells.size(), 1u);
    EXPECT_FALSE(merged.result.cells[0].timedOut);
    EXPECT_EQ(merged.result.cells[0].stats.schedulesExecuted, 10u);
    EXPECT_EQ(merged.result.cellsTimedOut, 0);
  }
}

TEST(Merge, RejectsIncompatibleConfigs) {
  const std::string base = fabricatedDocument(fabricatedCell(10));
  std::vector<campaign::CellResult> cells;
  cells.push_back(fabricatedCell(10));
  const campaign::CampaignResult result =
      campaign::foldCells(std::move(cells), {"dfs"});
  campaign::ReportConfig config;
  config.scheduleLimit = 999;  // differs from fabricatedDocument's 150
  config.maxEventsPerSchedule = 1u << 16;
  const std::string different = campaign::writeReportJson(result, config);
  EXPECT_THROW((void)campaign::mergeReports({base, different}, {"a", "b"}),
               std::runtime_error);
}

// --- supervisor --------------------------------------------------------------

TEST(Supervisor, TimedOutCellsAreMarkedAndRetried) {
  campaign::CampaignOptions options = smallCampaign(2);
  options.explorer.scheduleLimit = 5'000'000;  // the timeout must bite first
  options.cellTimeoutSeconds = 1e-9;
  options.cellRetries = 1;
  int retried = 0;
  int timedOut = 0;
  options.onProgress = [&](const ProgressEvent& event) {
    if (event.kind == ProgressEvent::Kind::CellRetried) ++retried;
    if (event.kind == ProgressEvent::Kind::CellTimedOut) ++timedOut;
  };
  const auto result = campaign::runCampaign(options);
  EXPECT_GT(result.cellsTimedOut, 0);
  EXPECT_GT(result.cellsRetried, 0);
  EXPECT_GT(retried, 0);
  EXPECT_GT(timedOut, 0);
  for (const campaign::CellResult& cell : result.cells) {
    if (cell.timedOut) {
      EXPECT_EQ(cell.attempts, 2) << cell.program << " x " << cell.explorer;
      EXPECT_TRUE(cell.stats.hitScheduleLimit || cell.stats.timedOut);
    }
    // A timed-out prefix still satisfies the §3 chain.
    EXPECT_TRUE(cell.inequalityHolds())
        << cell.program << " x " << cell.explorer << ": "
        << cell.inequalityDiagnostic;
  }
  // The campaign finished despite every cell timing out — resilience, not
  // abortion, is the supervisor's contract.
  EXPECT_EQ(result.cells.size(), 20u);
}

// --- Suite facade ------------------------------------------------------------

TEST(Suite, MatchesTheCampaignRunnerCellForCell) {
  const auto direct = campaign::runCampaign(smallCampaign(2));

  const SuiteReport report = Suite()
                                 .add("disjoint-lock-2")
                                 .add("disjoint-lock-3")
                                 .add("counter-lock-3")
                                 .add("lost-signal")
                                 .schedules(150)
                                 .jobs(2)
                                 .run();
  ASSERT_EQ(report.cells.size(), direct.cells.size());
  for (std::size_t i = 0; i < direct.cells.size(); ++i) {
    const campaign::CellResult& want = direct.cells[i];
    const SuiteCell& got = report.cells[i];
    EXPECT_EQ(got.scenario, want.program);
    EXPECT_EQ(got.strategy, want.explorer);
    EXPECT_EQ(got.schedules, want.stats.schedulesExecuted);
    EXPECT_EQ(got.hbrs, want.stats.distinctHbrs);
    EXPECT_EQ(got.lazyHbrs, want.stats.distinctLazyHbrs);
    EXPECT_EQ(got.states, want.stats.distinctStates);
    EXPECT_EQ(got.events, want.stats.totalEvents);
    EXPECT_EQ(got.complete, want.stats.complete);
    EXPECT_TRUE(got.inequalityHolds);
  }
  EXPECT_EQ(report.totalSchedules, direct.totalSchedules);
  EXPECT_TRUE(report.allInequalitiesHold());
  EXPECT_FALSE(report.summary().empty());
}

TEST(Suite, EmitsASchemaV5DocumentMergeableWithShards) {
  const auto runShard = [](int index) {
    return Suite()
        .add("disjoint-lock-2")
        .add("disjoint-lock-3")
        .add("counter-lock-3")
        .add("lost-signal")
        .schedules(150)
        .jobs(2)
        .shard(index, 2)
        .run();
  };
  const SuiteReport s0 = runShard(0);
  const SuiteReport s1 = runShard(1);
  EXPECT_EQ(s0.shardCount, 2);

  std::string error;
  const auto parsed = support::JsonValue::parse(s0.toJson(), &error);
  ASSERT_NE(parsed, nullptr) << error;
  EXPECT_EQ(parsed->intAt("version"), campaign::kReportSchemaVersion);
  EXPECT_EQ(parsed->find("config")->find("shard")->intAt("count"), 2);

  const auto merged =
      campaign::mergeReports({s0.toJson(), s1.toJson()}, {"s0", "s1"});
  const auto full = campaign::runCampaign(smallCampaign(2));
  ASSERT_EQ(merged.result.cells.size(), full.cells.size());
  for (std::size_t i = 0; i < full.cells.size(); ++i) {
    expectSameCounts(full.cells[i], merged.result.cells[i]);
  }
}

TEST(Suite, ResumesFromItsCheckpointDirectory) {
  const TempDir dir;
  const auto build = [&] {
    return Suite()
        .add("disjoint-lock")  // a family selector
        .strategies({"dfs", "caching-lazy"})
        .schedules(150)
        .checkpointDir(dir.path());
  };
  const SuiteReport first = build().run();
  EXPECT_EQ(first.cellsFromCheckpoint, 0u);
  const SuiteReport second = build().resumeOnly().run();
  EXPECT_EQ(second.cellsFromCheckpoint, second.cells.size());
  ASSERT_EQ(second.cells.size(), first.cells.size());
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_EQ(first.cells[i].schedules, second.cells[i].schedules);
    EXPECT_EQ(first.cells[i].lazyHbrs, second.cells[i].lazyHbrs);
  }
  // resumeOnly against a fresh directory refuses to run.
  const TempDir empty;
  EXPECT_THROW(
      (void)Suite().add("peterson").checkpointDir(empty.path()).resumeOnly().run(),
      std::runtime_error);
}

TEST(Suite, RejectsUnknownNames) {
  EXPECT_THROW((void)Suite().add("no-such-scenario").run(),
               std::invalid_argument);
  EXPECT_THROW(
      (void)Suite().add("peterson").strategies({"no-such-strategy"}).run(),
      std::invalid_argument);
  EXPECT_THROW((void)Suite().add("peterson").shard(3, 2).run(),
               std::invalid_argument);
}

// --- Session progress ticks --------------------------------------------------

TEST(SessionProgress, TicksEveryIntervalOnTheExploringThread) {
  std::vector<std::uint64_t> ticks;
  const TestReport report = Session()
                                .strategy("dfs")
                                .schedules(100)
                                .onProgress([&](const ProgressEvent& event) {
                                  EXPECT_EQ(event.kind,
                                            ProgressEvent::Kind::ScheduleTick);
                                  EXPECT_EQ(event.strategy, "dfs");
                                  ticks.push_back(event.schedulesExecuted);
                                })
                                .progressInterval(10)
                                .run("peterson");
  ASSERT_FALSE(ticks.empty());
  for (std::size_t i = 0; i < ticks.size(); ++i) {
    EXPECT_EQ(ticks[i], (i + 1) * 10);
  }
  EXPECT_EQ(ticks.size(), report.schedulesExecuted / 10);
}

TEST(SessionProgress, CallbackForcesSequentialButKeepsCounts) {
  const TestReport plain =
      Session().strategy("caching-lazy").schedules(200).run("peterson");
  std::uint64_t ticks = 0;
  const TestReport ticked = Session()
                                .strategy("caching-lazy")
                                .schedules(200)
                                .workers(4)
                                .onProgress([&](const ProgressEvent&) { ++ticks; })
                                .progressInterval(1)
                                .run("peterson");
  EXPECT_EQ(ticked.schedulesExecuted, plain.schedulesExecuted);
  EXPECT_EQ(ticked.distinctLazyHbrs, plain.distinctLazyHbrs);
  EXPECT_EQ(ticked.distinctStates, plain.distinctStates);
  EXPECT_EQ(ticks, ticked.schedulesExecuted);
}

}  // namespace
