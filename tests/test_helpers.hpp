// Shared helpers for the lazyhb test suite.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "explore/caching_explorer.hpp"
#include "explore/dfs_explorer.hpp"
#include "explore/dpor_explorer.hpp"
#include "explore/explorer.hpp"
#include "explore/random_explorer.hpp"
#include "runtime/api.hpp"

namespace lazyhb::testing {

inline explore::ExplorerOptions smallOptions(std::uint64_t limit = 200'000) {
  explore::ExplorerOptions options;
  options.scheduleLimit = limit;
  options.maxEventsPerSchedule = 4096;
  options.checkTheorems = true;
  return options;
}

inline explore::ExplorationResult runDfs(const explore::Program& p,
                                         std::uint64_t limit = 200'000) {
  explore::DfsExplorer explorer(smallOptions(limit));
  return explorer.explore(p);
}

inline explore::ExplorationResult runDpor(const explore::Program& p, bool sleepSets = true,
                                          std::uint64_t limit = 200'000) {
  explore::DporOptions dpor;
  dpor.sleepSets = sleepSets;
  explore::DporExplorer explorer(smallOptions(limit), dpor);
  return explorer.explore(p);
}

inline explore::ExplorationResult runCaching(const explore::Program& p, trace::Relation r,
                                             std::uint64_t limit = 200'000) {
  explore::CachingExplorer explorer(smallOptions(limit), r);
  return explorer.explore(p);
}

/// The exact program of the paper's Figure 1 (plus the spawn/join scaffold a
/// real program needs): T1 locks m, reads x, unlocks m, writes y; T2 writes
/// z, locks m, reads x, unlocks m.
inline void figure1Program() {
  using namespace lazyhb;
  Shared<int> x{7, "x"};
  Shared<int> y{0, "y"};
  Shared<int> z{0, "z"};
  Mutex m("m");
  auto t2 = spawn([&] {
    z.store(1);
    m.lock();
    (void)x.load();
    m.unlock();
  });
  m.lock();
  (void)x.load();
  m.unlock();
  y.store(1);
  t2.join();
}

}  // namespace lazyhb::testing
