// Rollback-equivalence properties for the incremental prefix-replay engine.
//
// The engine's contract is byte-identity: exploring with checkpoints and
// rollbacks (either tier — full runtime rollback or recorder-side replay
// elision) must produce, schedule by schedule, exactly the choices,
// outcomes, fingerprints, per-event causal hashes and clock rows that a
// from-scratch exploration produces. These tests pin that contract:
//
//   * a traced DFS walk run three ways (incremental off / recorder elision /
//     full rollback) over a corpus slice, compared element-wise;
//   * the same triple-run over randomly generated checkpointable programs
//     (InlineVec storage, the shape the fiber-snapshot tier requires);
//   * explorer-level count identity across modes for DPOR and the caching
//     explorers (prune hooks interleave with rollback);
//   * ClockArena truncation re-extension identity.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "explore/caching_explorer.hpp"
#include "explore/dfs_explorer.hpp"
#include "memory/memory_model.hpp"
#include "explore/dpor_explorer.hpp"
#include "explore/parallel_explorer.hpp"
#include "explore/prefix_replay.hpp"
#include "explore/replay.hpp"
#include "programs/registry.hpp"
#include "runtime/api.hpp"
#include "support/rng.hpp"
#include "trace/clock_arena.hpp"
#include "trace/trace_recorder.hpp"

namespace {

using namespace lazyhb;

struct ScheduleTrace {
  std::vector<int> choices;
  runtime::Outcome outcome = runtime::Outcome::Terminal;
  support::Hash128 full;
  support::Hash128 lazy;
  support::Hash128 state;
  std::vector<support::Hash128> eventHashes;      // full-relation, per event
  std::vector<std::vector<std::uint32_t>> clocks; // full-relation rows
};

bool operator==(const ScheduleTrace& a, const ScheduleTrace& b) {
  return a.choices == b.choices && a.outcome == b.outcome && a.full == b.full &&
         a.lazy == b.lazy && a.state == b.state && a.eventHashes == b.eventHashes &&
         a.clocks == b.clocks;
}

/// The DFS walk of DfsExplorer::runSearch, instrumented: returns one trace
/// per executed schedule, capturing everything the exploration layer could
/// observe about it.
std::vector<ScheduleTrace> tracedDfs(const explore::Program& program,
                                     bool incremental, bool checkpointable,
                                     std::uint64_t limit = 4000,
                                     std::uint64_t snapshotBudgetBytes = 0,
                                     memory::MemoryModel model = memory::MemoryModel::Sc) {
  trace::TraceRecorder recorder;
  runtime::StackPool pool;
  explore::PrefixReplayEngine engine(
      pool, recorder, incremental,
      checkpointable && runtime::Execution::checkpointingSupported(),
      snapshotBudgetBytes);
  explore::TreeSearchState state;
  std::vector<ScheduleTrace> traces;
  std::size_t startDepth = 0;
  for (;;) {
    if (traces.size() >= limit) break;
    explore::TreeScheduler scheduler(state, {}, &engine, startDepth);
    runtime::Config config;
    config.memoryModel = model;
    const explore::PrefixReplayEngine::Session session =
        engine.beginSchedule(config, &recorder);
    const runtime::Outcome outcome = session.resumed
                                         ? session.exec->resume(scheduler)
                                         : session.exec->run(program, scheduler);
    ScheduleTrace trace;
    trace.choices = session.exec->choices();
    trace.outcome = outcome;
    trace.state = session.exec->stateFingerprint();
    if (recorder.eventCount() > 0) {
      trace.full = recorder.fingerprint(trace::Relation::Full);
      trace.lazy = recorder.fingerprint(trace::Relation::Lazy);
    }
    for (std::size_t i = 0; i < recorder.eventCount(); ++i) {
      const auto index = static_cast<std::int32_t>(i);
      trace.eventHashes.push_back(recorder.eventHash(trace::Relation::Full, index));
      const trace::ClockView view = recorder.eventClock(trace::Relation::Full, index);
      trace.clocks.emplace_back(view.data(), view.data() + view.width());
    }
    traces.push_back(std::move(trace));
    if (!state.advance()) break;
    startDepth = engine.prepareNext(state.checkFromDepth);
  }
  return traces;
}

void expectIdenticalTraces(const explore::Program& program, bool checkpointable,
                           const std::string& label) {
  const std::vector<ScheduleTrace> baseline = tracedDfs(program, false, false);
  const std::vector<ScheduleTrace> elision = tracedDfs(program, true, false);
  ASSERT_EQ(baseline.size(), elision.size()) << label << " (recorder elision)";
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_TRUE(baseline[i] == elision[i])
        << label << ": schedule " << i << " diverges under recorder elision";
  }
  if (checkpointable && runtime::Execution::checkpointingSupported()) {
    const std::vector<ScheduleTrace> rollback = tracedDfs(program, true, true);
    ASSERT_EQ(baseline.size(), rollback.size()) << label << " (runtime rollback)";
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_TRUE(baseline[i] == rollback[i])
          << label << ": schedule " << i << " diverges under runtime rollback";
    }
  }
}

TEST(IncrementalReplay, CorpusSliceTracesIdenticalAcrossModes) {
  // A slice spanning the regimes: coarse locking, racy counters, condvars,
  // trylock, semaphores, and known-buggy programs (violations mid-tree).
  const char* names[] = {
      "disjoint-lock-2", "noisy-counter-3x1", "prodcons-1x1", "trylock-vs-lock",
      "sem-rendezvous",  "racy-counter-3",    "pingpong-2",
  };
  for (const char* name : names) {
    const programs::ProgramSpec* spec = programs::byName(name);
    ASSERT_NE(spec, nullptr) << name;
    expectIdenticalTraces(spec->body, spec->checkpointable, name);
  }
}

TEST(IncrementalReplay, HeapBasedProgramFallsBackAndMatches) {
  // buggy-family programs keep std::vector storage on purpose: they must
  // still explore correctly (via re-execution + recorder elision), never
  // via fiber snapshots.
  const programs::ProgramSpec* spec = programs::byName("deadlock-ab");
  ASSERT_NE(spec, nullptr);
  EXPECT_FALSE(spec->checkpointable);
  expectIdenticalTraces(spec->body, spec->checkpointable, "deadlock-ab");
}

// --- randomly generated checkpointable programs ------------------------------

struct GenOp {
  enum class Kind : std::uint8_t { Read, Write, Lock, Unlock, TryLockPulse };
  Kind kind = Kind::Read;
  int object = 0;
};

struct GenProgram {
  int vars = 2;
  int mutexes = 2;
  std::vector<std::vector<GenOp>> threads;
};

GenProgram generate(std::uint64_t seed) {
  support::Rng rng(seed);
  GenProgram p;
  p.vars = rng.intIn(1, 2);
  p.mutexes = rng.intIn(1, 2);
  const int threadCount = rng.intIn(2, 3);
  for (int t = 0; t < threadCount; ++t) {
    std::vector<GenOp> ops;
    std::vector<int> held;
    const int steps = rng.intIn(2, 4);
    for (int s = 0; s < steps; ++s) {
      const int roll = rng.intIn(0, 9);
      if (roll < 4) {
        ops.push_back({rng.chance(1, 2) ? GenOp::Kind::Read : GenOp::Kind::Write,
                       rng.intIn(0, p.vars - 1)});
      } else if (roll < 7 && held.size() < 2) {
        const int m = rng.intIn(0, p.mutexes - 1);
        bool alreadyHeld = false;
        for (const int h : held) alreadyHeld = alreadyHeld || h == m;
        if (!alreadyHeld) {
          ops.push_back({GenOp::Kind::Lock, m});
          held.push_back(m);
        }
      } else if (roll < 8 && !held.empty()) {
        ops.push_back({GenOp::Kind::Unlock, held.back()});
        held.pop_back();
      } else {
        ops.push_back({GenOp::Kind::TryLockPulse, rng.intIn(0, p.mutexes - 1)});
      }
    }
    while (!held.empty()) {
      ops.push_back({GenOp::Kind::Unlock, held.back()});
      held.pop_back();
    }
    p.threads.push_back(std::move(ops));
  }
  return p;
}

/// Materialize with InlineVec storage: the checkpointable-contract shape.
explore::Program materializeCheckpointable(const GenProgram& gen) {
  return [gen] {
    InlineVec<Shared<int>, 4> vars;
    for (int v = 0; v < gen.vars; ++v) vars.emplace(0, "v");
    InlineVec<Mutex, 4> mutexes;
    for (int m = 0; m < gen.mutexes; ++m) mutexes.emplace("m");
    InlineVec<ThreadHandle, 4> workers;
    for (const auto& ops : gen.threads) {
      workers.push(spawn([&vars, &mutexes, &ops] {
        for (const GenOp& op : ops) {
          switch (op.kind) {
            case GenOp::Kind::Read:
              (void)vars[static_cast<std::size_t>(op.object)].load();
              break;
            case GenOp::Kind::Write:
              vars[static_cast<std::size_t>(op.object)].modify(
                  [](int v) { return v + 1; });
              break;
            case GenOp::Kind::Lock:
              mutexes[static_cast<std::size_t>(op.object)].lock();
              break;
            case GenOp::Kind::Unlock:
              mutexes[static_cast<std::size_t>(op.object)].unlock();
              break;
            case GenOp::Kind::TryLockPulse:
              if (mutexes[static_cast<std::size_t>(op.object)].tryLock()) {
                mutexes[static_cast<std::size_t>(op.object)].unlock();
              }
              break;
          }
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

TEST(IncrementalReplay, RandomCheckpointableProgramsTraceIdentically) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const GenProgram gen = generate(seed);
    expectIdenticalTraces(materializeCheckpointable(gen), /*checkpointable=*/true,
                          "seed " + std::to_string(seed));
  }
}

// --- explorer-level identity (prune hooks interact with rollback) ------------

explore::ExplorerOptions optionsFor(bool incremental, bool checkpointable) {
  explore::ExplorerOptions options;
  options.scheduleLimit = 500;
  options.incremental = incremental;
  options.checkpointable = checkpointable;
  return options;
}

void expectSameCounts(const explore::ExplorationResult& a,
                      const explore::ExplorationResult& b,
                      const std::string& label) {
  EXPECT_EQ(a.schedulesExecuted, b.schedulesExecuted) << label;
  EXPECT_EQ(a.terminalSchedules, b.terminalSchedules) << label;
  EXPECT_EQ(a.prunedSchedules, b.prunedSchedules) << label;
  EXPECT_EQ(a.violationSchedules, b.violationSchedules) << label;
  EXPECT_EQ(a.totalEvents, b.totalEvents) << label;
  EXPECT_EQ(a.distinctHbrs, b.distinctHbrs) << label;
  EXPECT_EQ(a.distinctLazyHbrs, b.distinctLazyHbrs) << label;
  EXPECT_EQ(a.distinctStates, b.distinctStates) << label;
  EXPECT_EQ(a.complete, b.complete) << label;
}

TEST(IncrementalReplay, CachingAndDporCountsIdenticalAcrossModes) {
  const char* names[] = {"noisy-counter-3x2", "prodcons-1x1", "deadlock-ab",
                         "trylock-fallback-2"};
  for (const char* name : names) {
    const programs::ProgramSpec* spec = programs::byName(name);
    ASSERT_NE(spec, nullptr) << name;
    for (const trace::Relation relation :
         {trace::Relation::Full, trace::Relation::Lazy}) {
      explore::CachingExplorer off(optionsFor(false, false), relation);
      explore::CachingExplorer on(optionsFor(true, spec->checkpointable), relation);
      expectSameCounts(off.explore(spec->body), on.explore(spec->body),
                       std::string(name) + " caching-" + trace::relationName(relation));
    }
    explore::DporExplorer off(optionsFor(false, false));
    explore::DporExplorer on(optionsFor(true, spec->checkpointable));
    expectSameCounts(off.explore(spec->body), on.explore(spec->body),
                     std::string(name) + " dpor");
  }
}

TEST(IncrementalReplay, ElisionAccountingIsConsistent) {
  const programs::ProgramSpec* spec = programs::byName("noisy-counter-3x2");
  ASSERT_NE(spec, nullptr);
  explore::DfsExplorer off(optionsFor(false, false));
  const explore::ExplorationResult base = off.explore(spec->body);
  EXPECT_EQ(base.eventsElided, 0u);
  EXPECT_GT(base.eventsReplayed, 0u);  // replays exist; they are just re-run

  explore::DfsExplorer on(optionsFor(true, spec->checkpointable));
  const explore::ExplorationResult fast = on.explore(spec->body);
  EXPECT_EQ(fast.totalEvents, base.totalEvents);
  if (runtime::Execution::checkpointingSupported()) {
    EXPECT_GT(fast.eventsElided, 0u);
    // Elided + replayed per schedule == divergence depth, and the engine
    // rolls back exactly to staged divergence points, so the two modes
    // partition the same redundant-prefix total.
    EXPECT_EQ(fast.eventsElided + fast.eventsReplayed, base.eventsReplayed);
  }
  EXPECT_LE(fast.eventsElided, fast.totalEvents);
}

// --- snapshot-budget identity ------------------------------------------------
//
// The byte-budgeted snapshot store (explore/prefix_replay.hpp) evicts
// staged checkpoints under pressure and falls back to replaying from a
// shallower stage (or a full restart). None of that may move a single
// observable: traces and counts are byte-identical at any budget.

TEST(IncrementalReplay, TracesIdenticalAtAnySnapshotBudget) {
  // A 64-byte budget keeps at most the deepest stage alive — every
  // shallower divergence goes through the eviction fallback path.
  const char* names[] = {"noisy-counter-3x1", "racy-counter-3", "pingpong-2"};
  for (const char* name : names) {
    const programs::ProgramSpec* spec = programs::byName(name);
    ASSERT_NE(spec, nullptr) << name;
    const std::vector<ScheduleTrace> baseline = tracedDfs(spec->body, false, false);
    for (const std::uint64_t budget : {std::uint64_t{64}, std::uint64_t{0}}) {
      const std::vector<ScheduleTrace> elision =
          tracedDfs(spec->body, true, false, 4000, budget);
      ASSERT_EQ(baseline.size(), elision.size()) << name << " budget " << budget;
      for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_TRUE(baseline[i] == elision[i])
            << name << ": schedule " << i << " diverges at budget " << budget;
      }
      if (spec->checkpointable && runtime::Execution::checkpointingSupported()) {
        const std::vector<ScheduleTrace> rollback =
            tracedDfs(spec->body, true, true, 4000, budget);
        ASSERT_EQ(baseline.size(), rollback.size()) << name << " budget " << budget;
        for (std::size_t i = 0; i < baseline.size(); ++i) {
          EXPECT_TRUE(baseline[i] == rollback[i])
              << name << ": schedule " << i
              << " diverges under rollback at budget " << budget;
        }
      }
    }
  }
}

// --- TSO store-buffer identity -----------------------------------------------
//
// Under TSO a checkpoint can land with stores still parked in per-thread
// buffers; rollback must restore the buffers (contents, FIFO order, flush
// counters) exactly, or the re-extended schedule forwards different values
// and every fingerprint downstream drifts. These tests run the same
// triple-mode and budget-eviction comparisons as above, but over the
// weak-memory corpus with flush transitions in every schedule tree.

TEST(IncrementalReplay, TsoTracesIdenticalAcrossModes) {
  // The whole weak-memory family: buggy litmus variants (violations
  // mid-tree), fenced witnesses (fence gates interleave with rollback), and
  // the forwarding witness (reads served from restored buffers).
  for (const programs::ProgramSpec* spec : programs::byFamily("weakmem")) {
    const std::vector<ScheduleTrace> baseline =
        tracedDfs(spec->body, false, false, 4000, 0, memory::MemoryModel::Tso);
    const std::vector<ScheduleTrace> elision =
        tracedDfs(spec->body, true, false, 4000, 0, memory::MemoryModel::Tso);
    ASSERT_EQ(baseline.size(), elision.size()) << spec->name;
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      EXPECT_TRUE(baseline[i] == elision[i])
          << spec->name << ": schedule " << i
          << " diverges under recorder elision (tso)";
    }
    if (spec->checkpointable && runtime::Execution::checkpointingSupported()) {
      const std::vector<ScheduleTrace> rollback =
          tracedDfs(spec->body, true, true, 4000, 0, memory::MemoryModel::Tso);
      ASSERT_EQ(baseline.size(), rollback.size()) << spec->name;
      for (std::size_t i = 0; i < baseline.size(); ++i) {
        EXPECT_TRUE(baseline[i] == rollback[i])
            << spec->name << ": schedule " << i
            << " diverges under runtime rollback (tso)";
      }
    }
  }
}

TEST(IncrementalReplay, TsoTracesIdenticalUnderSnapshotBudgetEviction) {
  // A 64-byte budget forces the eviction fallback on nearly every
  // divergence: rollback targets vanish and the engine replays from
  // shallower stages — with non-empty store buffers at both ends.
  const char* names[] = {"sb-unfenced", "peterson-unfenced", "seqlock-fenced",
                         "store-forwarding"};
  for (const char* name : names) {
    const programs::ProgramSpec* spec = programs::byName(name);
    ASSERT_NE(spec, nullptr) << name;
    const std::vector<ScheduleTrace> baseline =
        tracedDfs(spec->body, false, false, 4000, 0, memory::MemoryModel::Tso);
    for (const std::uint64_t budget : {std::uint64_t{64}, std::uint64_t{0}}) {
      for (const bool useRollback : {false, true}) {
        if (useRollback && !(spec->checkpointable &&
                             runtime::Execution::checkpointingSupported())) {
          continue;
        }
        const std::vector<ScheduleTrace> candidate = tracedDfs(
            spec->body, true, useRollback, 4000, budget, memory::MemoryModel::Tso);
        ASSERT_EQ(baseline.size(), candidate.size())
            << name << " budget " << budget << " rollback " << useRollback;
        for (std::size_t i = 0; i < baseline.size(); ++i) {
          EXPECT_TRUE(baseline[i] == candidate[i])
              << name << ": schedule " << i << " diverges at budget " << budget
              << (useRollback ? " under runtime rollback" : " under elision")
              << " (tso)";
        }
      }
    }
  }
}

TEST(IncrementalReplay, CountsIdenticalAcrossBudgetAndWorkerMatrix) {
  // The golden 8-program matrix crossed with undo-log on/off, snapshot
  // budget {tiny, engine default, unlimited} and workers {1, 4}. The
  // incremental-off sequential run is the one baseline; every other mode
  // must reproduce its counts byte-for-byte.
  const char* names[] = {
      "disjoint-lock-2", "noisy-counter-3x1", "prodcons-1x1", "trylock-vs-lock",
      "sem-rendezvous",  "racy-counter-3",    "pingpong-2",   "deadlock-ab",
  };
  const std::uint64_t budgets[] = {512, explore::defaultSnapshotBudgetBytes(), 0};
  for (const char* name : names) {
    const programs::ProgramSpec* spec = programs::byName(name);
    ASSERT_NE(spec, nullptr) << name;
    explore::DfsExplorer off(optionsFor(false, false));
    const explore::ExplorationResult baseline = off.explore(spec->body);
    for (const std::uint64_t budget : budgets) {
      for (const int workers : {1, 4}) {
        explore::ExplorerOptions options = optionsFor(true, spec->checkpointable);
        options.snapshotBudgetBytes = budget;
        options.workers = workers;
        const std::string label = std::string(name) + " budget " +
                                  std::to_string(budget) + " workers " +
                                  std::to_string(workers);
        if (workers == 1) {
          explore::DfsExplorer on(options);
          expectSameCounts(baseline, on.explore(spec->body), label);
        } else {
          ASSERT_TRUE(explore::ParallelExplorer::shardable(options)) << label;
          explore::ParallelExplorer on(options, explore::ParallelStrategy::Dfs,
                                       /*seed=*/42);
          expectSameCounts(baseline, on.explore(spec->body), label);
        }
      }
    }
  }
}

// --- undo-log mechanics ------------------------------------------------------

/// Captures one execution's observer stream so the recorder's undo-log
/// machinery can be driven directly (no fibers, no scheduling).
struct CapturedTrace : runtime::ExecutionObserver {
  struct Registration {
    std::int32_t index;
    runtime::Uid uid;
    runtime::ObjectKind kind;
    std::string name;
    std::uint64_t initialValueHash;
  };
  std::vector<Registration> registrations;
  std::vector<runtime::EventRecord> events;

  void onObjectRegistered(const runtime::Execution&, std::int32_t index,
                          runtime::Uid uid, runtime::ObjectKind kind,
                          const std::string& name,
                          std::uint64_t initialValueHash) override {
    registrations.push_back({index, uid, kind, name, initialValueHash});
  }
  void onEvent(const runtime::Execution&, const runtime::EventRecord& ev) override {
    events.push_back(ev);
  }
};

void coalesceProgram() {
  Shared<int> a{0, "a"};
  Shared<int> b{0, "b"};
  a.store(1);
  a.store(2);
  a.store(3);
  b.store(1);
  a.store(4);
}

CapturedTrace captureCoalesceTrace() {
  runtime::StackPool pool;
  CapturedTrace captured;
  runtime::Execution source(runtime::Config{}, pool, &captured);
  explore::FixedScheduler scheduler({});
  (void)source.run(coalesceProgram, scheduler);
  return captured;
}

TEST(IncrementalReplay, UndoEntriesCoalescePerObjectBetweenStages) {
  const CapturedTrace captured = captureCoalesceTrace();
  std::vector<std::size_t> writes;
  for (std::size_t i = 0; i < captured.events.size(); ++i) {
    if (captured.events[i].kind == runtime::OpKind::Write) writes.push_back(i);
  }
  ASSERT_EQ(writes.size(), 5u);  // a, a, a, b, a

  runtime::StackPool pool;
  trace::TraceRecorder recorder;
  runtime::Execution dummy(runtime::Config{}, pool, nullptr);  // never run
  recorder.onExecutionStart(dummy);
  for (const auto& reg : captured.registrations) {
    recorder.onObjectRegistered(dummy, reg.index, reg.uid, reg.kind, reg.name,
                                reg.initialValueHash);
  }
  std::size_t next = 0;
  auto feedThrough = [&](std::size_t lastEvent) {
    for (; next <= lastEvent; ++next) {
      recorder.onEvent(dummy, captured.events[next]);
    }
  };

  // No stage, no undo-logging: the hook must be a no-op.
  feedThrough(writes[0]);
  EXPECT_EQ(recorder.undoLogSize(), 0u);

  const std::size_t d0 = recorder.checkpoint();
  feedThrough(writes[1]);
  EXPECT_EQ(recorder.undoLogSize(), 1u);  // first touch of `a` this epoch
  feedThrough(writes[2]);
  EXPECT_EQ(recorder.undoLogSize(), 1u);  // second write to `a` coalesces
  feedThrough(writes[3]);
  EXPECT_EQ(recorder.undoLogSize(), 2u);  // `b` is a fresh object

  const std::size_t d1 = recorder.checkpoint();
  feedThrough(writes[4]);
  EXPECT_EQ(recorder.undoLogSize(), 3u);  // new epoch re-logs `a` once

  // Rolling back trims the undo log to each stage's mark.
  recorder.rollbackTo(d1);
  EXPECT_EQ(recorder.undoLogSize(), 2u);
  recorder.rollbackTo(d0);
  EXPECT_EQ(recorder.undoLogSize(), 0u);
  EXPECT_EQ(recorder.eventCount(), d0);
}

TEST(IncrementalReplay, EvictThenRollbackPastEvictedRestoresState) {
  const CapturedTrace captured = captureCoalesceTrace();
  std::vector<std::size_t> writes;
  for (std::size_t i = 0; i < captured.events.size(); ++i) {
    if (captured.events[i].kind == runtime::OpKind::Write) writes.push_back(i);
  }
  ASSERT_EQ(writes.size(), 5u);

  runtime::StackPool pool;
  trace::TraceRecorder recorder;
  runtime::Execution dummy(runtime::Config{}, pool, nullptr);  // never run
  recorder.onExecutionStart(dummy);
  for (const auto& reg : captured.registrations) {
    recorder.onObjectRegistered(dummy, reg.index, reg.uid, reg.kind, reg.name,
                                reg.initialValueHash);
  }
  std::size_t next = 0;
  auto feedThrough = [&](std::size_t lastEvent) {
    for (; next <= lastEvent; ++next) {
      recorder.onEvent(dummy, captured.events[next]);
    }
  };

  feedThrough(writes[0]);
  const std::size_t d0 = recorder.checkpoint();
  const support::Hash128 fullAtD0 = recorder.fingerprint(trace::Relation::Full);
  const support::Hash128 lazyAtD0 = recorder.fingerprint(trace::Relation::Lazy);

  feedThrough(writes[2]);
  const std::size_t d1 = recorder.checkpoint();
  feedThrough(writes[4]);
  const support::Hash128 fullEnd = recorder.fingerprint(trace::Relation::Full);

  // Evict the mid stage: its slot empties, but the undo entries logged
  // since d0 are retained, so rolling back *past* d1 still lands exactly
  // on d0's state.
  EXPECT_TRUE(recorder.evictCheckpoint(d1));
  EXPECT_FALSE(recorder.evictCheckpoint(d1));  // already gone
  EXPECT_EQ(recorder.checkpointApproxBytes(d1), 0u);
  EXPECT_EQ(recorder.deepestCheckpointAtOrBelow(d1), d0);

  recorder.rollbackTo(d0);
  EXPECT_EQ(recorder.eventCount(), d0);
  EXPECT_EQ(recorder.fingerprint(trace::Relation::Full), fullAtD0);
  EXPECT_EQ(recorder.fingerprint(trace::Relation::Lazy), lazyAtD0);

  // Re-extending along the same suffix reproduces the original trace.
  next = writes[0] + 1;
  feedThrough(writes[4]);
  EXPECT_EQ(recorder.fingerprint(trace::Relation::Full), fullEnd);
}

TEST(IncrementalReplay, ValueFingerprintSurvivesRollbackAndReplay) {
  // The observation state behind Relation::Value (abelian prefix digest,
  // per-var value hashes, condvar queues) must restore across
  // checkpoint/rollback exactly like the relation state: a rolled-back and
  // re-extended recorder's Value fingerprint is byte-identical to a fresh
  // recorder fed the same stream.
  runtime::StackPool pool;
  CapturedTrace captured;
  {
    runtime::Execution source(runtime::Config{}, pool, &captured);
    explore::FixedScheduler scheduler({});
    (void)source.run(
        [] {
          Shared<int> a{0, "a"};
          Shared<int> b{5, "b"};  // nonzero initial value hash
          a.store(1);
          b.store(a.load() + 2);
          a.store(4);
          (void)b.load();
        },
        scheduler);
  }
  ASSERT_GE(captured.events.size(), 4u);

  trace::TraceRecorder recorder;
  runtime::Execution dummy(runtime::Config{}, pool, nullptr);  // never run
  auto seed = [&](trace::TraceRecorder& r) {
    r.onExecutionStart(dummy);
    for (const auto& reg : captured.registrations) {
      r.onObjectRegistered(dummy, reg.index, reg.uid, reg.kind, reg.name,
                           reg.initialValueHash);
    }
  };
  seed(recorder);
  const std::size_t half = captured.events.size() / 2;
  for (std::size_t i = 0; i < half; ++i) recorder.onEvent(dummy, captured.events[i]);
  const std::size_t d = recorder.checkpoint();
  const support::Hash128 valueAtD = recorder.fingerprint(trace::Relation::Value);
  for (std::size_t i = half; i < captured.events.size(); ++i) {
    recorder.onEvent(dummy, captured.events[i]);
  }
  const support::Hash128 valueEnd = recorder.fingerprint(trace::Relation::Value);
  EXPECT_NE(valueAtD, valueEnd);  // the suffix must actually change it

  recorder.rollbackTo(d);
  EXPECT_EQ(recorder.fingerprint(trace::Relation::Value), valueAtD);
  for (std::size_t i = half; i < captured.events.size(); ++i) {
    recorder.onEvent(dummy, captured.events[i]);
  }
  EXPECT_EQ(recorder.fingerprint(trace::Relation::Value), valueEnd);

  trace::TraceRecorder fresh;
  seed(fresh);
  for (const auto& ev : captured.events) fresh.onEvent(dummy, ev);
  EXPECT_EQ(fresh.fingerprint(trace::Relation::Value), valueEnd);
}

// --- arena truncation --------------------------------------------------------

TEST(ClockArena, TruncateThenReExtendMatchesFreshRows) {
  trace::ClockArena arena(4);
  auto append = [&](std::uint32_t base) {
    std::uint32_t* row = arena.appendRow();
    for (std::uint32_t i = 0; i < arena.stride(); ++i) row[i] = base + i;
  };
  for (std::uint32_t r = 0; r < 6; ++r) append(10 * r);
  arena.truncate(3);
  EXPECT_EQ(arena.rows(), 3u);
  // Retained rows untouched.
  for (std::uint32_t r = 0; r < 3; ++r) {
    EXPECT_EQ(arena.view(r).get(0), 10 * r);
  }
  // Re-extension overwrites the truncated tail.
  append(700);
  EXPECT_EQ(arena.rows(), 4u);
  EXPECT_EQ(arena.view(3).get(0), 700u);
  EXPECT_EQ(arena.view(3).get(3), 703u);
}

TEST(ClockArena, TruncateToZeroBehavesLikeReset) {
  trace::ClockArena arena(2);
  (void)arena.appendRow();
  arena.truncate(0);
  EXPECT_EQ(arena.rows(), 0u);
}

}  // namespace
