// Property-based testing over randomly generated programs.
//
// A seeded generator produces small well-formed concurrent programs (2-3
// threads; reads/writes over a shared variable pool; properly nested
// critical sections over a mutex pool; occasional trylock). For every seed:
//
//   * naive DFS enumerates the space (seeds whose spaces exceed the cap are
//     still theorem-checked, just not completeness-compared);
//   * Theorems 2.1 and 2.2 must hold over every terminal schedule;
//   * the section-3 counting chain must hold;
//   * DPOR (with and without sleep sets) and both caching explorers must
//     reach exactly the same distinct terminal states (and lazy HBRs) as
//     naive enumeration — the soundness property of every reduction;
//   * deadlocks found by naive search must also be found by DPOR.
//
// This is the suite that caught the subtle bugs during development; 40
// seeds x 6 explorers keeps it strong without dominating test time.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "support/rng.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lazyhb;

struct GenOp {
  enum class Kind : std::uint8_t { Read, Write, Lock, Unlock, TryLockPulse };
  Kind kind = Kind::Read;
  int object = 0;  // var index for Read/Write; mutex index otherwise
};

struct GenProgram {
  int vars = 2;
  int mutexes = 2;
  std::vector<std::vector<GenOp>> threads;
};

/// Generate a structurally valid program: every Lock is closed by a
/// matching Unlock in the same thread (nesting allowed, max depth 2, no
/// re-acquisition of a held mutex).
GenProgram generate(std::uint64_t seed) {
  support::Rng rng(seed);
  GenProgram p;
  p.vars = rng.intIn(1, 2);
  p.mutexes = rng.intIn(1, 2);
  const int threadCount = rng.intIn(2, 3);
  for (int t = 0; t < threadCount; ++t) {
    std::vector<GenOp> ops;
    std::vector<int> held;  // lock stack
    const int steps = rng.intIn(2, 4);
    for (int s = 0; s < steps; ++s) {
      const int roll = rng.intIn(0, 9);
      if (roll < 4) {
        ops.push_back({rng.chance(1, 2) ? GenOp::Kind::Read : GenOp::Kind::Write,
                       rng.intIn(0, p.vars - 1)});
      } else if (roll < 7 && held.size() < 2) {
        const int m = rng.intIn(0, p.mutexes - 1);
        bool alreadyHeld = false;
        for (const int h : held) alreadyHeld = alreadyHeld || h == m;
        if (!alreadyHeld) {
          ops.push_back({GenOp::Kind::Lock, m});
          held.push_back(m);
        }
      } else if (roll < 8 && !held.empty()) {
        ops.push_back({GenOp::Kind::Unlock, held.back()});
        held.pop_back();
      } else {
        ops.push_back({GenOp::Kind::TryLockPulse, rng.intIn(0, p.mutexes - 1)});
      }
    }
    while (!held.empty()) {
      ops.push_back({GenOp::Kind::Unlock, held.back()});
      held.pop_back();
    }
    p.threads.push_back(std::move(ops));
  }
  return p;
}

/// Interpret a generated program against the lazyhb API.
explore::Program materialize(const GenProgram& gen) {
  return [gen] {
    std::vector<std::unique_ptr<Shared<int>>> vars;
    for (int v = 0; v < gen.vars; ++v) {
      vars.push_back(std::make_unique<Shared<int>>(0, "v"));
    }
    std::vector<std::unique_ptr<Mutex>> mutexes;
    for (int m = 0; m < gen.mutexes; ++m) {
      mutexes.push_back(std::make_unique<Mutex>("m"));
    }
    std::vector<ThreadHandle> workers;
    for (const auto& ops : gen.threads) {
      workers.push_back(spawn([&vars, &mutexes, &ops] {
        for (const GenOp& op : ops) {
          switch (op.kind) {
            case GenOp::Kind::Read:
              (void)vars[static_cast<std::size_t>(op.object)]->load();
              break;
            case GenOp::Kind::Write:
              vars[static_cast<std::size_t>(op.object)]->modify(
                  [](int v) { return v + 1; });
              break;
            case GenOp::Kind::Lock:
              mutexes[static_cast<std::size_t>(op.object)]->lock();
              break;
            case GenOp::Kind::Unlock:
              mutexes[static_cast<std::size_t>(op.object)]->unlock();
              break;
            case GenOp::Kind::TryLockPulse:
              if (mutexes[static_cast<std::size_t>(op.object)]->tryLock()) {
                mutexes[static_cast<std::size_t>(op.object)]->unlock();
              }
              break;
          }
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

class RandomProgramSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomProgramSweep, AllExplorersAgree) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) * 0x9e3779b97f4a7c15ULL + 1;
  const GenProgram gen = generate(seed);
  const explore::Program program = materialize(gen);

  constexpr std::uint64_t kCap = 60000;
  const auto naive = lazyhb::testing::runDfs(program, kCap);

  // Theorems and the counting chain hold regardless of completeness.
  EXPECT_EQ(naive.theorem21.conflicts, 0u) << "seed " << seed;
  EXPECT_EQ(naive.theorem22.conflicts, 0u) << "seed " << seed;
  EXPECT_LE(naive.distinctStates, naive.distinctLazyHbrs);
  EXPECT_LE(naive.distinctLazyHbrs, naive.distinctHbrs);
  EXPECT_LE(naive.distinctHbrs, naive.schedulesExecuted);

  if (!naive.complete) {
    GTEST_SKIP() << "seed " << seed << " space exceeds the cap; theorem-checked only";
  }

  for (const bool sleepSets : {true, false}) {
    const auto dpor = lazyhb::testing::runDpor(program, sleepSets, kCap);
    ASSERT_TRUE(dpor.complete) << "seed " << seed;
    EXPECT_EQ(dpor.distinctStates, naive.distinctStates)
        << "seed " << seed << " sleep=" << sleepSets;
    EXPECT_EQ(dpor.distinctHbrs, naive.distinctHbrs)
        << "seed " << seed << " sleep=" << sleepSets;
    EXPECT_EQ(dpor.distinctLazyHbrs, naive.distinctLazyHbrs)
        << "seed " << seed << " sleep=" << sleepSets;
    EXPECT_LE(dpor.schedulesExecuted, naive.schedulesExecuted);
    EXPECT_EQ(dpor.foundViolation(), naive.foundViolation()) << "seed " << seed;
    EXPECT_EQ(dpor.theorem21.conflicts, 0u);
    EXPECT_EQ(dpor.theorem22.conflicts, 0u);
  }

  for (const auto relation : {trace::Relation::Full, trace::Relation::Lazy}) {
    const auto cached = lazyhb::testing::runCaching(program, relation, kCap);
    ASSERT_TRUE(cached.complete) << "seed " << seed;
    EXPECT_EQ(cached.distinctStates, naive.distinctStates)
        << "seed " << seed << " relation=" << trace::relationName(relation);
    EXPECT_EQ(cached.distinctLazyHbrs, naive.distinctLazyHbrs)
        << "seed " << seed << " relation=" << trace::relationName(relation);
    EXPECT_LE(cached.schedulesExecuted, naive.schedulesExecuted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramSweep, ::testing::Range(0, 40));

}  // namespace
