// Unit tests for the support layer: hashing, multiset accumulators, thread
// sets, RNG determinism, tables and option parsing.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "support/hash.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"
#include "support/thread_set.hpp"

namespace {

using namespace lazyhb::support;

TEST(Hash, Mix64IsInjectiveOnSamples) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    EXPECT_TRUE(seen.insert(mix64(i)).second);
  }
}

TEST(Hash, Hash128DiffersAcrossInputsAndStreams) {
  EXPECT_NE(hash128(1), hash128(2));
  EXPECT_NE(hash128(1).lo, hash128(1).hi);
  EXPECT_EQ(hash128(7, 9), hash128(7, 9));
  EXPECT_NE(hash128(7, 9), hash128(9, 7));
}

TEST(Hash, ToHexRoundTripFormat) {
  const Hash128 h{0x0123456789abcdefULL, 0xfedcba9876543210ULL};
  EXPECT_EQ(h.toHex().size(), 32u);
  EXPECT_EQ(h.toHex(), "fedcba98765432100123456789abcdef");
}

TEST(MultisetHash, OrderIndependent) {
  MultisetHash a;
  MultisetHash b;
  const Hash128 x = hash128(1);
  const Hash128 y = hash128(2);
  const Hash128 z = hash128(3);
  a.add(x); a.add(y); a.add(z);
  b.add(z); b.add(x); b.add(y);
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(MultisetHash, DuplicatesMatter) {
  MultisetHash once;
  MultisetHash twice;
  const Hash128 x = hash128(42);
  once.add(x);
  twice.add(x);
  twice.add(x);
  EXPECT_NE(once.digest(), twice.digest());  // XOR-style hashing would collide
}

TEST(MultisetHash, RemoveUndoesAdd) {
  MultisetHash acc;
  acc.add(hash128(1));
  const Hash128 before = acc.digest();
  acc.add(hash128(2));
  acc.remove(hash128(2));
  EXPECT_EQ(acc.digest(), before);
}

TEST(MultisetHash, EmptyVsNonEmpty) {
  MultisetHash empty;
  MultisetHash one;
  one.add(Hash128{0, 0});  // all-zero element still changes the count
  EXPECT_NE(empty.digest(), one.digest());
}

TEST(ThreadSet, BasicSetAlgebra) {
  ThreadSet s;
  EXPECT_TRUE(s.empty());
  s.insert(3);
  s.insert(17);
  s.insert(63);
  EXPECT_EQ(s.size(), 3);
  EXPECT_TRUE(s.contains(17));
  EXPECT_FALSE(s.contains(16));
  EXPECT_EQ(s.first(), 3);
  EXPECT_EQ(s.next(3), 17);
  EXPECT_EQ(s.next(17), 63);
  EXPECT_EQ(s.next(63), -1);
  s.erase(17);
  EXPECT_FALSE(s.contains(17));
}

TEST(ThreadSet, UnionIntersectMinus) {
  ThreadSet a = ThreadSet::single(1).unionWith(ThreadSet::single(2));
  ThreadSet b = ThreadSet::single(2).unionWith(ThreadSet::single(3));
  EXPECT_EQ(a.intersect(b), ThreadSet::single(2));
  EXPECT_EQ(a.minus(b), ThreadSet::single(1));
  EXPECT_EQ(a.unionWith(b).size(), 3);
}

TEST(ThreadSet, FirstNAndIteration) {
  const ThreadSet s = ThreadSet::firstN(5);
  EXPECT_EQ(s.size(), 5);
  std::vector<int> seen;
  for (const int tid : s) seen.push_back(tid);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(ThreadSet::firstN(64).size(), 64);
  EXPECT_TRUE(ThreadSet::firstN(0).empty());
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(123);
  Rng b(123);
  Rng c(124);
  bool allEqual = true;
  bool anyDiffer = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.nextU64();
    allEqual = allEqual && va == b.nextU64();
    anyDiffer = anyDiffer || va != c.nextU64();
  }
  EXPECT_TRUE(allEqual);
  EXPECT_TRUE(anyDiffer);
}

TEST(Rng, BelowIsInRangeAndCoversRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(5);
    ASSERT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Table, AlignmentAndCsv) {
  Table t({"name", "count"});
  t.beginRow();
  t.cell(std::string("alpha"));
  t.cell(static_cast<std::int64_t>(42));
  t.beginRow();
  t.cell(std::string("b"));
  t.cell(static_cast<std::int64_t>(7));
  const std::string text = t.toText();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_EQ(t.toCsv(), "name,count\nalpha,42\nb,7\n");
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, WithCommas) {
  EXPECT_EQ(withCommas(0), "0");
  EXPECT_EQ(withCommas(999), "999");
  EXPECT_EQ(withCommas(1000), "1,000");
  EXPECT_EQ(withCommas(910007), "910,007");
  EXPECT_EQ(withCommas(1234567890), "1,234,567,890");
}

TEST(Options, ParsesIntFlagString) {
  Options options("test", "test options");
  options.addInt("limit", 100, "limit");
  options.addFlag("verbose", "verbose");
  options.addString("name", "default", "name");
  const char* argv[] = {"test", "--limit", "42", "--verbose", "--name=hello", "extra"};
  ASSERT_TRUE(options.parse(6, const_cast<char**>(argv)));
  EXPECT_EQ(options.getInt("limit"), 42);
  EXPECT_TRUE(options.getFlag("verbose"));
  EXPECT_EQ(options.getString("name"), "hello");
  ASSERT_EQ(options.positional().size(), 1u);
  EXPECT_EQ(options.positional()[0], "extra");
}

TEST(Options, RejectsUnknownOption) {
  Options options("test", "test options");
  options.addInt("limit", 100, "limit");
  const char* argv[] = {"test", "--nope"};
  EXPECT_FALSE(options.parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(options.parseError());
}

TEST(Options, RejectsNonIntegerValue) {
  Options options("test", "test options");
  options.addInt("limit", 100, "limit");
  const char* argv[] = {"test", "--limit", "abc"};
  EXPECT_FALSE(options.parse(3, const_cast<char**>(argv)));
  EXPECT_TRUE(options.parseError());
}

TEST(Options, EqualsAndSpaceFormsAreEquivalent) {
  Options spaced("test", "test options");
  spaced.addInt("limit", 100, "limit");
  spaced.addString("name", "default", "name");
  const char* spacedArgv[] = {"test", "--limit", "42", "--name", "hello"};
  ASSERT_TRUE(spaced.parse(5, const_cast<char**>(spacedArgv)));

  Options inlined("test", "test options");
  inlined.addInt("limit", 100, "limit");
  inlined.addString("name", "default", "name");
  const char* inlinedArgv[] = {"test", "--limit=42", "--name=hello"};
  ASSERT_TRUE(inlined.parse(3, const_cast<char**>(inlinedArgv)));

  EXPECT_EQ(spaced.getInt("limit"), inlined.getInt("limit"));
  EXPECT_EQ(spaced.getString("name"), inlined.getString("name"));
}

TEST(Options, InlineValueMayContainEquals) {
  Options options("test", "test options");
  options.addString("filter", "", "filter");
  const char* argv[] = {"test", "--filter=key=value"};
  ASSERT_TRUE(options.parse(2, const_cast<char**>(argv)));
  EXPECT_EQ(options.getString("filter"), "key=value");
}

TEST(Options, FlagAcceptsInlineBoolean) {
  Options options("test", "test options");
  options.addFlag("verbose", "verbose");
  options.addFlag("quiet", "quiet");
  options.addFlag("loud", "loud");
  const char* argv[] = {"test", "--verbose=false", "--quiet=1", "--loud=true"};
  ASSERT_TRUE(options.parse(4, const_cast<char**>(argv)));
  EXPECT_FALSE(options.getFlag("verbose"));
  EXPECT_TRUE(options.getFlag("quiet"));
  EXPECT_TRUE(options.getFlag("loud"));
}

TEST(Options, FlagDoesNotConsumeFollowingArgument) {
  Options options("test", "test options");
  options.addFlag("verbose", "verbose");
  const char* argv[] = {"test", "--verbose", "positional"};
  ASSERT_TRUE(options.parse(3, const_cast<char**>(argv)));
  EXPECT_TRUE(options.getFlag("verbose"));
  ASSERT_EQ(options.positional().size(), 1u);
  EXPECT_EQ(options.positional()[0], "positional");
}

TEST(Options, MissingValueAtEndOfArgvIsAnError) {
  Options options("test", "test options");
  options.addInt("limit", 100, "limit");
  const char* argv[] = {"test", "--limit"};
  EXPECT_FALSE(options.parse(2, const_cast<char**>(argv)));
  EXPECT_TRUE(options.parseError());
}

TEST(Options, DefaultsSurviveWhenNotPassed) {
  Options options("test", "test options");
  options.addInt("limit", 100, "limit");
  options.addFlag("verbose", "verbose");
  options.addString("name", "default", "name");
  const char* argv[] = {"test"};
  ASSERT_TRUE(options.parse(1, const_cast<char**>(argv)));
  EXPECT_EQ(options.getInt("limit"), 100);
  EXPECT_FALSE(options.getFlag("verbose"));
  EXPECT_EQ(options.getString("name"), "default");
  EXPECT_FALSE(options.parseError());
}

TEST(Options, LastOccurrenceWins) {
  Options options("test", "test options");
  options.addInt("limit", 100, "limit");
  const char* argv[] = {"test", "--limit", "1", "--limit=2"};
  ASSERT_TRUE(options.parse(4, const_cast<char**>(argv)));
  EXPECT_EQ(options.getInt("limit"), 2);
}

TEST(Options, WasSetDistinguishesDefaultsFromExplicit) {
  Options options("test", "test options");
  options.addInt("limit", 100, "limit");
  options.addFlag("verbose", "verbose");
  const char* argv[] = {"test", "--limit", "100"};
  ASSERT_TRUE(options.parse(3, const_cast<char**>(argv)));
  EXPECT_TRUE(options.wasSet("limit"));  // explicit, even if == default
  EXPECT_FALSE(options.wasSet("verbose"));
}

TEST(Options, SplitCsvStripsSpacesAndEmptyTokens) {
  EXPECT_TRUE(splitCsv("").empty());
  EXPECT_EQ(splitCsv("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(splitCsv("a, b ,,c,"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(splitCsv(", ,"), std::vector<std::string>{});
}

TEST(Options, HelpPrintsEveryOptionAndIsNotAnError) {
  Options options("myprog", "does things");
  options.addInt("limit", 100, "the schedule budget");
  options.addFlag("verbose", "print more");
  options.addString("name", "default", "a label");
  const char* argv[] = {"myprog", "--help"};
  testing::internal::CaptureStdout();
  EXPECT_FALSE(options.parse(2, const_cast<char**>(argv)));  // caller should exit
  const std::string usage = testing::internal::GetCapturedStdout();
  EXPECT_FALSE(options.parseError());  // --help is a clean exit, not a failure
  EXPECT_NE(usage.find("myprog"), std::string::npos);
  EXPECT_NE(usage.find("does things"), std::string::npos);
  EXPECT_NE(usage.find("--limit"), std::string::npos);
  EXPECT_NE(usage.find("the schedule budget"), std::string::npos);
  EXPECT_NE(usage.find("(default 100)"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("(default 'default')"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

TEST(Options, NegativeIntegerValues) {
  Options options("test", "test options");
  options.addInt("delta", 0, "delta");
  const char* argv[] = {"test", "--delta", "-5"};
  ASSERT_TRUE(options.parse(3, const_cast<char**>(argv)));
  EXPECT_EQ(options.getInt("delta"), -5);
}

}  // namespace
