// Trace-layer tests: vector clocks, the three happens-before relations on
// hand-constructed scenarios, exact canonical forms, the equivalence of the
// incremental fingerprints with the exact forms across entire schedule
// spaces, and sync-HB race detection.

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <vector>

#include "explore/dfs_explorer.hpp"
#include "explore/replay.hpp"
#include "runtime/api.hpp"
#include "test_helpers.hpp"
#include "trace/clock_arena.hpp"
#include "trace/foata.hpp"
#include "trace/hb_graph.hpp"
#include "trace/trace_recorder.hpp"
#include "trace/vector_clock.hpp"

namespace {

using namespace lazyhb;
using trace::Relation;
using trace::TraceRecorder;
using trace::VectorClock;

TEST(VectorClock, GetSetJoinLeq) {
  VectorClock a;
  a.set(0, 3);
  a.set(2, 1);
  EXPECT_EQ(a.get(0), 3u);
  EXPECT_EQ(a.get(1), 0u);
  EXPECT_EQ(a.get(5), 0u);  // beyond width

  VectorClock b;
  b.set(1, 2);
  b.set(2, 4);
  VectorClock joined = a;
  joined.joinWith(b);
  EXPECT_EQ(joined.get(0), 3u);
  EXPECT_EQ(joined.get(1), 2u);
  EXPECT_EQ(joined.get(2), 4u);

  EXPECT_TRUE(a.leq(joined));
  EXPECT_TRUE(b.leq(joined));
  EXPECT_FALSE(joined.leq(a));
}

TEST(VectorClock, EqualityIgnoresTrailingZeros) {
  VectorClock a;
  a.set(0, 1);
  VectorClock b;
  b.set(0, 1);
  b.set(3, 0);
  EXPECT_TRUE(a == b);
}

TEST(ClockView, ViewsInteroperateAcrossWidths) {
  const std::uint32_t narrow[] = {3, 1};
  const std::uint32_t wide[] = {3, 2, 0, 5};
  const trace::ClockView a{narrow, 2};
  const trace::ClockView b{wide, 4};
  EXPECT_EQ(a.get(0), 3u);
  EXPECT_EQ(a.get(3), 0u);         // beyond width: zero by convention
  EXPECT_TRUE(a.leq(b));           // pointwise over the implicit zeros
  EXPECT_FALSE(b.leq(a));          // b[3]=5 exceeds a's implicit zero
  const std::uint32_t bumped[] = {3, 3};
  EXPECT_FALSE((trace::ClockView{bumped, 2}.leq(b)));  // 3 > b[1]=2
  // Default view is the zero clock: leq everything, equal to explicit zeros.
  EXPECT_TRUE(trace::ClockView{}.leq(a));
  const std::uint32_t zeros[] = {0, 0};
  EXPECT_TRUE((trace::ClockView{} == trace::ClockView{zeros, 2}));
  // Round trip through the owning class.
  const VectorClock owned{b};
  EXPECT_TRUE(owned.view() == b);
}

TEST(ClockArena, AppendJoinAndWiden) {
  trace::ClockArena arena{4};
  std::uint32_t* r0 = arena.appendRow();
  for (std::uint32_t i = 0; i < 4; ++i) r0[i] = i + 1;  // 1 2 3 4
  std::uint32_t* r1 = arena.appendRow();
  for (std::uint32_t i = 0; i < 4; ++i) r1[i] = 4 - i;  // 4 3 2 1
  trace::joinClockSpans(r1, arena.row(0), 4);
  EXPECT_TRUE((arena.view(1) == trace::ClockView{
                   std::array<std::uint32_t, 4>{4, 3, 3, 4}.data(), 4}));

  // Widening re-strides in place and zero-pads: no clock changes value.
  const VectorClock before0{arena.view(0)};
  const VectorClock before1{arena.view(1)};
  arena.widen(8);
  EXPECT_EQ(arena.stride(), 8u);
  EXPECT_TRUE(arena.view(0) == before0.view());
  EXPECT_TRUE(arena.view(1) == before1.view());
  EXPECT_EQ(arena.view(0).get(7), 0u);

  // reset keeps stride and storage, drops rows.
  arena.reset();
  EXPECT_EQ(arena.rows(), 0u);
  EXPECT_EQ(arena.stride(), 8u);
}

/// Record one execution of `body` (first-enabled schedule) with full
/// predecessor tracking and hand it to `inspect`.
void recordOnce(const std::function<void()>& body,
                const std::function<void(const TraceRecorder&)>& inspect,
                bool detectRaces = false) {
  TraceRecorder recorder(TraceRecorder::Options{true, detectRaces});
  runtime::StackPool pool;
  runtime::Execution exec(runtime::Config{}, pool, &recorder);
  explore::FixedScheduler scheduler({});
  (void)exec.run(body, scheduler);
  inspect(recorder);
}

TEST(Relations, MutexEdgesPresentInFullAbsentInLazy) {
  recordOnce(lazyhb::testing::figure1Program, [](const TraceRecorder& recorder) {
    // Figure 1, T1-first schedule: T2's lock must depend on T1's unlock in
    // the Full relation but not in the Lazy relation.
    const int fullEdges = trace::interThreadEdgeCount(recorder, Relation::Full);
    const int lazyEdges = trace::interThreadEdgeCount(recorder, Relation::Lazy);
    EXPECT_GT(fullEdges, lazyEdges);
    // Lazy keeps only the spawn/join scaffold here (x is read-only, y/z
    // disjoint, all mutex edges erased): exactly 2 inter-thread edges.
    EXPECT_EQ(lazyEdges, 2);
  });
}

TEST(Relations, SpawnJoinEdgesInEveryRelation) {
  auto body = [] {
    Shared<int> x{0, "x"};
    auto t = spawn([&] { x.store(1); });
    t.join();
  };
  recordOnce(body, [](const TraceRecorder& recorder) {
    // Events: spawn(T0), write(T1), join(T0). The write's spawn predecessor
    // and the join's target-last-event predecessor must appear in all three
    // relations.
    ASSERT_EQ(recorder.eventCount(), 3u);
    for (const auto relation : {Relation::Sync, Relation::Full, Relation::Lazy}) {
      EXPECT_EQ(recorder.eventPredecessors(relation, 1), std::vector<std::int32_t>{0})
          << trace::relationName(relation);
      // join's predecessors: its own thread's previous event (0) and the
      // child's last event (1).
      EXPECT_EQ(recorder.eventPredecessors(relation, 2),
                (std::vector<std::int32_t>{0, 1}))
          << trace::relationName(relation);
    }
  });
}

TEST(Relations, TryLockKeepsLazyEdges) {
  auto body = [] {
    Mutex m("m");
    m.lock();
    m.unlock();
    if (m.tryLock()) {
      m.unlock();
    }
  };
  recordOnce(body, [](const TraceRecorder& recorder) {
    // Events: lock(0) unlock(1) trylock(2) unlock(3). The trylock must be
    // lazily ordered after the preceding lock AND unlock (it observes the
    // mutex state); the plain lock/unlock chain is lazily erased.
    ASSERT_EQ(recorder.eventCount(), 4u);
    EXPECT_EQ(recorder.eventPredecessors(Relation::Lazy, 2),
              (std::vector<std::int32_t>{0, 1}));
    // Full keeps the chain: each event depends on its chain predecessor.
    EXPECT_EQ(recorder.eventPredecessors(Relation::Full, 2),
              (std::vector<std::int32_t>{1}));
  });
}

TEST(Races, DetectedOnUnsyncAccessMissedUnderLock) {
  auto racy = [] {
    Shared<int> x{0, "x"};
    auto t = spawn([&] { x.store(1); });
    x.store(2);
    t.join();
  };
  recordOnce(racy, [](const TraceRecorder& recorder) {
    ASSERT_EQ(recorder.races().size(), 1u);
    EXPECT_EQ(recorder.races()[0].objectName, "x");
  }, /*detectRaces=*/true);

  auto locked = [] {
    Shared<int> x{0, "x"};
    Mutex m("m");
    auto t = spawn([&] {
      LockGuard guard(m);
      x.store(1);
    });
    {
      LockGuard guard(m);
      x.store(2);
    }
    t.join();
  };
  recordOnce(locked, [](const TraceRecorder& recorder) {
    EXPECT_TRUE(recorder.races().empty());
  }, /*detectRaces=*/true);
}

TEST(Races, SemaphoreSynchronizes) {
  auto body = [] {
    Shared<int> data{0, "data"};
    Semaphore ready{0, "sem"};
    auto t = spawn([&] {
      data.store(1);
      ready.release();
    });
    ready.acquire();
    data.store(2);
    t.join();
  };
  recordOnce(body, [](const TraceRecorder& recorder) {
    EXPECT_TRUE(recorder.races().empty());
  }, /*detectRaces=*/true);
}

TEST(Foata, LevelsRespectDependencies) {
  auto body = [] {
    Shared<int> x{0, "x"};
    auto t = spawn([&] { x.store(1); });
    x.store(2);
    t.join();
  };
  recordOnce(body, [](const TraceRecorder& recorder) {
    const auto levels = trace::foataLevels(recorder, Relation::Full);
    ASSERT_EQ(levels.size(), recorder.eventCount());
    // Every event sits strictly above all of its predecessors.
    for (std::int32_t i = 0; i < static_cast<std::int32_t>(levels.size()); ++i) {
      for (const std::int32_t p : recorder.eventPredecessors(Relation::Full, i)) {
        EXPECT_LT(levels[static_cast<std::size_t>(p)],
                  levels[static_cast<std::size_t>(i)]);
      }
    }
  });
}

TEST(HbGraph, RenderContainsEventsAndDot) {
  recordOnce(lazyhb::testing::figure1Program, [](const TraceRecorder& recorder) {
    const std::string text = trace::renderSchedule(recorder, Relation::Full);
    EXPECT_NE(text.find("lock(m)"), std::string::npos);
    EXPECT_NE(text.find("write(y)"), std::string::npos);
    const std::string dot = trace::renderDot(recorder, Relation::Full);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
  });
}

// The central canonicity property: across the ENTIRE schedule space of a
// program, two schedules get the same incremental fingerprint iff they have
// the same exact canonical form — for both relations, with the Foata normal
// form and the clock-derived explicit relation as independent oracles.
class FingerprintCanonicity : public ::testing::TestWithParam<int> {};

TEST_P(FingerprintCanonicity, FingerprintEqualsIffExactFormEqual) {
  const explore::Program program = [&]() -> explore::Program {
    switch (GetParam()) {
      case 0: return lazyhb::testing::figure1Program;
      case 1:
        return [] {  // racy writes + mutex
          Shared<int> x{0, "x"};
          Mutex m("m");
          auto t = spawn([&] {
            x.store(1);
            LockGuard guard(m);
          });
          {
            LockGuard guard(m);
          }
          x.store(2);
          t.join();
        };
      case 2:
        return [] {  // three threads, two vars
          Shared<int> a{0, "a"};
          Shared<int> b{0, "b"};
          auto t1 = spawn([&] { a.store(1); });
          auto t2 = spawn([&] {
            b.store(1);
            (void)a.load();
          });
          a.store(2);
          t1.join();
          t2.join();
        };
      default:
        return [] {};
    }
  }();

  // Enumerate every schedule; for each terminal one, record (fingerprint,
  // exact form) pairs per relation and check the bijection.
  TraceRecorder recorder(TraceRecorder::Options{true, false});
  runtime::StackPool pool;
  explore::TreeSearchState state;
  std::map<std::vector<std::uint64_t>, support::Hash128> foataToFp[2];
  std::map<std::vector<std::uint64_t>, support::Hash128> explicitToFp[2];
  std::map<support::Hash128, std::vector<std::uint64_t>,
           decltype([](const support::Hash128& a, const support::Hash128& b) {
             return a.lo != b.lo ? a.lo < b.lo : a.hi < b.hi;
           })>
      fpToFoata[2];
  int schedules = 0;
  for (;;) {
    runtime::Execution exec(runtime::Config{}, pool, &recorder);
    explore::TreeScheduler scheduler(state);
    const auto outcome = exec.run(program, scheduler);
    ++schedules;
    ASSERT_LT(schedules, 100000) << "space too large for the test";
    if (outcome == runtime::Outcome::Terminal) {
      for (const auto relation : {Relation::Full, Relation::Lazy}) {
        const int r = relation == Relation::Full ? 0 : 1;
        const auto fp = recorder.fingerprint(relation);
        const auto foata = trace::foataNormalForm(recorder, relation);
        const auto exact = trace::explicitRelation(recorder, relation);
        auto [itF, insertedF] = foataToFp[r].emplace(foata, fp);
        EXPECT_EQ(itF->second, fp) << "same Foata NF, different fingerprint";
        auto [itE, insertedE] = explicitToFp[r].emplace(exact, fp);
        EXPECT_EQ(itE->second, fp) << "same explicit relation, different fingerprint";
        auto [itR, insertedR] = fpToFoata[r].emplace(fp, foata);
        EXPECT_EQ(itR->second, foata) << "same fingerprint, different Foata NF";
      }
    }
    if (!state.advance()) break;
  }
  // Foata NF and the explicit relation must agree on the class count too.
  EXPECT_EQ(foataToFp[0].size(), explicitToFp[0].size());
  EXPECT_EQ(foataToFp[1].size(), explicitToFp[1].size());
  EXPECT_GT(schedules, 1);
}

INSTANTIATE_TEST_SUITE_P(SmallPrograms, FingerprintCanonicity, ::testing::Range(0, 3));

// --- value-class fingerprints ------------------------------------------------

/// Enumerate every terminal schedule of `program`; return the distinct
/// fingerprint sets under the Lazy and Value relations plus the distinct
/// terminal-state set (the extended section-3 chain reads
/// |states| <= |value| <= |lazy|).
struct ValueEnumeration {
  std::set<std::pair<std::uint64_t, std::uint64_t>> lazy;
  std::set<std::pair<std::uint64_t, std::uint64_t>> value;
  std::set<std::pair<std::uint64_t, std::uint64_t>> states;
};

ValueEnumeration enumerateValueClasses(const explore::Program& program) {
  TraceRecorder recorder;
  runtime::StackPool pool;
  explore::TreeSearchState state;
  ValueEnumeration out;
  for (;;) {
    runtime::Execution exec(runtime::Config{}, pool, &recorder);
    explore::TreeScheduler scheduler(state);
    if (exec.run(program, scheduler) == runtime::Outcome::Terminal) {
      const auto l = recorder.fingerprint(Relation::Lazy);
      const auto v = recorder.fingerprint(Relation::Value);
      const auto s = exec.stateFingerprint();
      out.lazy.emplace(l.lo, l.hi);
      out.value.emplace(v.lo, v.hi);
      out.states.emplace(s.lo, s.hi);
    }
    if (!state.advance()) break;
  }
  return out;
}

TEST(ValueFingerprint, SameValueDifferentWriterCollides) {
  // Two racing writers store the SAME value, then the parent reads it. The
  // lazy relation still totally orders the conflicting writes (two
  // classes), but both orders produce identical observations — every read
  // sees 7, the final visible state is x == 7 — so the value class merges
  // what the lazy HBR keeps apart.
  const auto e = enumerateValueClasses([] {
    Shared<int> x{0, "x"};
    auto t = spawn([&] { x.store(7); });
    x.store(7);
    t.join();
    (void)x.load();
  });
  EXPECT_GT(e.lazy.size(), 1u);
  EXPECT_EQ(e.value.size(), 1u);
  EXPECT_EQ(e.states.size(), 1u);
}

TEST(ValueFingerprint, DifferentObservedValuesSeparate) {
  // Same shape with different stored values: the write order now decides
  // which value the read observes and which state is terminal, so the
  // value classes must NOT collapse — they track the two states exactly.
  const auto e = enumerateValueClasses([] {
    Shared<int> x{0, "x"};
    auto t = spawn([&] { x.store(1); });
    x.store(2);
    t.join();
    (void)x.load();
  });
  EXPECT_EQ(e.value.size(), 2u);
  EXPECT_EQ(e.states.size(), 2u);
  EXPECT_EQ(e.value.size(), e.lazy.size());
}

TEST(ValueFingerprint, IntermediateObservationsSplitWithinOneState) {
  // The child writes 1 then 2; the parent's lone read can observe 0, 1, or
  // 2 while the terminal state is always x == 2. Value classes sit strictly
  // between states and lazy classes: |states| = 1 < |value| = 3 <= |lazy|.
  const auto e = enumerateValueClasses([] {
    Shared<int> x{0, "x"};
    auto t = spawn([&] {
      x.store(1);
      x.store(2);
    });
    (void)x.load();
    t.join();
  });
  EXPECT_EQ(e.states.size(), 1u);
  EXPECT_EQ(e.value.size(), 3u);
  EXPECT_LE(e.value.size(), e.lazy.size());
}

}  // namespace

