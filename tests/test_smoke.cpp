// Smoke tests for the fiber engine and controlled execution: basic spawn /
// join / mutex / condvar / shared-variable behaviour under a deterministic
// scheduler, deadlock and assertion detection, and replay determinism.

#include <gtest/gtest.h>

#include <vector>

#include "runtime/api.hpp"
#include "runtime/execution.hpp"

namespace {

using namespace lazyhb;
using runtime::Config;
using runtime::Execution;
using runtime::Outcome;
using runtime::StackPool;

/// Always picks the lowest-numbered enabled thread.
class FirstEnabledScheduler final : public runtime::Scheduler {
 public:
  int pick(Execution& exec) override { return exec.enabled().first(); }
};

/// Replays a fixed choice sequence, falling back to first-enabled once the
/// sequence is exhausted.
class FixedScheduler final : public runtime::Scheduler {
 public:
  explicit FixedScheduler(std::vector<int> choices) : choices_(std::move(choices)) {}
  int pick(Execution& exec) override {
    const auto step = exec.choices().size();
    if (step < choices_.size()) return choices_[step];
    return exec.enabled().first();
  }

 private:
  std::vector<int> choices_;
};

Outcome runOnce(const std::function<void()>& body, runtime::Scheduler& sched) {
  StackPool pool;
  Execution exec(Config{}, pool, nullptr);
  return exec.run(body, sched);
}

TEST(Smoke, TrivialBodyTerminates) {
  FirstEnabledScheduler sched;
  EXPECT_EQ(runOnce([] {}, sched), Outcome::Terminal);
}

TEST(Smoke, SpawnJoinAndIncrement) {
  FirstEnabledScheduler sched;
  const Outcome outcome = runOnce(
      [] {
        Shared<int> x{0, "x"};
        Mutex m("m");
        auto t = spawn([&] {
          LockGuard guard(m);
          x.store(x.load() + 1);
        });
        {
          LockGuard guard(m);
          x.store(x.load() + 1);
        }
        t.join();
        checkAlways(x.load() == 2, "both increments applied");
      },
      sched);
  EXPECT_EQ(outcome, Outcome::Terminal);
}

TEST(Smoke, AssertionFailureIsReported) {
  FirstEnabledScheduler sched;
  StackPool pool;
  Execution exec(Config{}, pool, nullptr);
  const Outcome outcome = exec.run(
      [] {
        Shared<int> x{0, "x"};
        checkAlways(x.load() == 1, "deliberately false");
      },
      sched);
  EXPECT_EQ(outcome, Outcome::AssertionFailure);
  EXPECT_EQ(exec.violation().message, "deliberately false");
}

TEST(Smoke, AbBaDeadlockDetected) {
  // Force the interleaving T0:lock(a) T1:lock(b) T0:lock(b)-blocked
  // T1:lock(a)-blocked. With first-enabled scheduling T0 would run to
  // completion first, so steer via a fixed prefix.
  StackPool pool;
  Execution exec(Config{}, pool, nullptr);
  // Step 0: thread 0 spawns; step 1: let thread 1 lock b... We need to know
  // the event numbering: t0 executes spawn first, then both alternate.
  FixedScheduler sched({0, 0, 1, 0, 1});
  const Outcome outcome = exec.run(
      [] {
        Mutex a("a");
        Mutex b("b");
        auto t = spawn([&] {
          b.lock();
          a.lock();
          a.unlock();
          b.unlock();
        });
        a.lock();
        b.lock();
        b.unlock();
        a.unlock();
        t.join();
      },
      sched);
  EXPECT_EQ(outcome, Outcome::Deadlock);
}

TEST(Smoke, CondVarSignalWakesWaiter) {
  FirstEnabledScheduler sched;
  const Outcome outcome = runOnce(
      [] {
        Shared<int> ready{0, "ready"};
        Mutex m("m");
        CondVar cv("cv");
        auto t = spawn([&] {
          LockGuard guard(m);
          while (ready.load() == 0) {
            cv.wait(m);
          }
        });
        {
          LockGuard guard(m);
          ready.store(1);
          cv.signal();
        }
        t.join();
      },
      sched);
  EXPECT_EQ(outcome, Outcome::Terminal);
}

TEST(Smoke, LostSignalIsDeadlock) {
  // If the signaller runs entirely before the waiter checks the (not
  // re-checked) flag... here the waiter waits unconditionally, so a signal
  // sent before the wait is lost and the waiter blocks forever.
  StackPool pool;
  Execution exec(Config{}, pool, nullptr);
  FirstEnabledScheduler sched;  // main thread runs first: signal is lost
  const Outcome outcome = exec.run(
      [] {
        Mutex m("m");
        CondVar cv("cv");
        auto t = spawn([&] {
          LockGuard guard(m);
          cv.wait(m);  // bug: no predicate loop, signal may already be gone
        });
        {
          LockGuard guard(m);
          cv.signal();
        }
        t.join();
      },
      sched);
  // With first-enabled scheduling, thread 0 continues after spawn: it takes
  // the lock and signals before the waiter ever waits => deadlock.
  EXPECT_EQ(outcome, Outcome::Deadlock);
}

TEST(Smoke, ReplayIsDeterministic) {
  auto body = [] {
    Shared<int> x{0, "x"};
    auto t1 = spawn([&] { x.fetchAdd(1); });
    auto t2 = spawn([&] { x.fetchAdd(2); });
    t1.join();
    t2.join();
  };
  StackPool pool;
  Execution first(Config{}, pool, nullptr);
  FirstEnabledScheduler greedy;
  ASSERT_EQ(first.run(body, greedy), Outcome::Terminal);
  const auto choices = first.choices();
  const auto fingerprint = first.stateFingerprint();
  const auto eventCount = first.events().size();

  Execution second(Config{}, pool, nullptr);
  FixedScheduler replay(choices);
  ASSERT_EQ(second.run(body, replay), Outcome::Terminal);
  EXPECT_EQ(second.choices(), choices);
  EXPECT_EQ(second.stateFingerprint(), fingerprint);
  EXPECT_EQ(second.events().size(), eventCount);
}

TEST(Smoke, EventLimitStopsRunaway) {
  StackPool pool;
  Config config;
  config.maxEventsPerSchedule = 50;
  Execution exec(config, pool, nullptr);
  FirstEnabledScheduler sched;
  const Outcome outcome = exec.run(
      [] {
        Shared<int> x{0, "x"};
        for (;;) {
          x.fetchAdd(1);  // unbounded visible work
        }
      },
      sched);
  EXPECT_EQ(outcome, Outcome::EventLimit);
}

TEST(Smoke, SemaphoreBlocksAtZero) {
  FirstEnabledScheduler sched;
  const Outcome outcome = runOnce(
      [] {
        Semaphore sem(0, "sem");
        auto t = spawn([&] { sem.release(); });
        sem.acquire();  // must block until the child releases
        t.join();
      },
      sched);
  EXPECT_EQ(outcome, Outcome::Terminal);
}

TEST(Smoke, TryLockReportsContention) {
  StackPool pool;
  Execution exec(Config{}, pool, nullptr);
  // Schedule: t0 spawns (step 0 is t0's spawn), t1 locks, t0 trylocks (fails).
  FixedScheduler sched({0, 1, 0});
  const Outcome outcome = exec.run(
      [] {
        Mutex m("m");
        Shared<int> sawHeld{0, "sawHeld"};
        auto t = spawn([&] {
          m.lock();
          m.unlock();
        });
        if (!m.tryLock()) {
          sawHeld.store(1);
        } else {
          m.unlock();
        }
        t.join();
        checkAlways(sawHeld.load() == 1, "trylock observed the held mutex");
      },
      sched);
  EXPECT_EQ(outcome, Outcome::Terminal);
}

TEST(Smoke, UnlockWithoutOwnershipIsUsageError) {
  StackPool pool;
  Execution exec(Config{}, pool, nullptr);
  FirstEnabledScheduler sched;
  const Outcome outcome = exec.run(
      [] {
        Mutex m("m");
        m.unlock();  // never locked
      },
      sched);
  EXPECT_EQ(outcome, Outcome::UsageError);
}

}  // namespace
