// Golden per-program count snapshots and partial-order fingerprint
// permutation properties.
//
// The hot-path data structures under the recorder (clock arena, SoA event
// storage, flat fingerprint cache) are rewritten for speed from time to
// time; the contract of every such rewrite is that no observable count
// moves. This suite pins that contract in two ways:
//
//   * a golden snapshot: a diverse slice of the corpus explored by the five
//     canonical explorers plus caching-value at a small budget, with every
//     count the campaign reports (schedules / terminal / pruned /
//     violations / distinct HBRs / lazy HBRs / value classes / states)
//     asserted against values captured from the seed implementation (heap
//     VectorClock per event, std::unordered_set cache; value-class counts
//     captured when the observation fingerprint landed). Any drift here
//     means fingerprints or scheduling changed, not just performance.
//
//   * permutation properties: schedules that are linearizations of the same
//     labelled partial order must fingerprint identically through the arena
//     path, and order-sensitive conflicts must still separate.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "campaign/explorer_spec.hpp"
#include "explore/dfs_explorer.hpp"
#include "memory/memory_model.hpp"
#include "programs/registry.hpp"
#include "runtime/api.hpp"
#include "trace/trace_recorder.hpp"

namespace {

using namespace lazyhb;

struct GoldenCell {
  const char* program;
  const char* explorer;
  std::uint64_t schedules;
  std::uint64_t terminal;
  std::uint64_t pruned;
  std::uint64_t violations;
  std::uint64_t hbrs;
  std::uint64_t lazyHbrs;
  std::uint64_t valueClasses;
  std::uint64_t states;
};

// Captured from the seed implementation at scheduleLimit=200, seed=42
// (byte-identical to `lazyhb bench --quick` cells for these programs).
// The slice spans the corpus regimes: disjoint coarse locking (the paper's
// motivating pattern), noisy shared counters, condvar producer/consumer,
// trylock (lazy-erasure boundary), lock-free CAS, deadlocking and
// lost-signal bugs, and semaphore handoff.
const GoldenCell kGolden[] = {
    {"disjoint-lock-2", "dfs", 17, 17, 0, 0, 2, 1, 1, 1},
    {"disjoint-lock-2", "random", 200, 200, 0, 0, 2, 1, 1, 1},
    {"disjoint-lock-2", "dpor", 2, 2, 0, 0, 2, 1, 1, 1},
    {"disjoint-lock-2", "caching-full", 8, 2, 6, 0, 2, 1, 1, 1},
    {"disjoint-lock-2", "caching-lazy", 8, 1, 7, 0, 1, 1, 1, 1},
    {"disjoint-lock-2", "caching-value", 8, 1, 7, 0, 1, 1, 1, 1},
    {"noisy-counter-3x2", "dfs", 200, 200, 0, 0, 18, 3, 2, 2},
    {"noisy-counter-3x2", "random", 200, 200, 0, 0, 155, 32, 14, 3},
    {"noisy-counter-3x2", "dpor", 200, 200, 0, 0, 98, 4, 3, 2},
    {"noisy-counter-3x2", "caching-full", 200, 24, 176, 0, 24, 4, 3, 2},
    {"noisy-counter-3x2", "caching-lazy", 200, 4, 196, 0, 4, 4, 3, 2},
    // caching-value reaches the same two states in 3 terminal schedules
    // where caching-lazy needs 4: the value class merges lazy-distinct
    // writer orders that produce the same counter values.
    {"noisy-counter-3x2", "caching-value", 200, 3, 197, 0, 3, 3, 3, 2},
    {"prodcons-1x1", "dfs", 200, 200, 0, 0, 8, 8, 8, 1},
    {"prodcons-1x1", "random", 200, 200, 0, 0, 8, 8, 8, 1},
    {"prodcons-1x1", "dpor", 8, 8, 0, 0, 8, 8, 8, 1},
    {"prodcons-1x1", "caching-full", 83, 8, 75, 0, 8, 8, 8, 1},
    {"prodcons-1x1", "caching-lazy", 83, 8, 75, 0, 8, 8, 8, 1},
    {"prodcons-1x1", "caching-value", 83, 8, 75, 0, 8, 8, 8, 1},
    {"trylock-vs-lock", "dfs", 7, 7, 0, 0, 3, 3, 3, 3},
    {"trylock-vs-lock", "random", 200, 200, 0, 0, 3, 3, 3, 3},
    {"trylock-vs-lock", "dpor", 4, 4, 0, 0, 3, 3, 3, 3},
    {"trylock-vs-lock", "caching-full", 6, 3, 3, 0, 3, 3, 3, 3},
    {"trylock-vs-lock", "caching-lazy", 6, 3, 3, 0, 3, 3, 3, 3},
    {"trylock-vs-lock", "caching-value", 6, 3, 3, 0, 3, 3, 3, 3},
    {"cas-counter-3", "dfs", 200, 200, 0, 0, 8, 8, 8, 1},
    {"cas-counter-3", "random", 200, 200, 0, 0, 74, 74, 66, 2},
    {"cas-counter-3", "dpor", 200, 200, 0, 0, 80, 80, 66, 2},
    {"cas-counter-3", "caching-full", 200, 34, 166, 0, 34, 34, 31, 2},
    {"cas-counter-3", "caching-lazy", 200, 34, 166, 0, 34, 34, 31, 2},
    // Pruning on value classes steers the search into a different subtree,
    // so the 200-schedule budget lands on a different (not nested) slice:
    // 33 value classes seen here vs 31 within the lazy run's slice.
    {"cas-counter-3", "caching-value", 200, 33, 167, 0, 33, 33, 33, 2},
    {"deadlock-ab", "dfs", 6, 4, 0, 2, 2, 1, 1, 1},
    {"deadlock-ab", "random", 200, 96, 0, 104, 2, 1, 1, 1},
    {"deadlock-ab", "dpor", 2, 1, 0, 1, 1, 1, 1, 1},
    {"deadlock-ab", "caching-full", 6, 2, 2, 2, 2, 1, 1, 1},
    {"deadlock-ab", "caching-lazy", 6, 1, 3, 2, 1, 1, 1, 1},
    {"deadlock-ab", "caching-value", 6, 1, 3, 2, 1, 1, 1, 1},
    {"lost-signal", "dfs", 2, 1, 0, 1, 1, 1, 1, 1},
    {"lost-signal", "random", 200, 94, 0, 106, 1, 1, 1, 1},
    {"lost-signal", "dpor", 2, 1, 0, 1, 1, 1, 1, 1},
    {"lost-signal", "caching-full", 2, 1, 0, 1, 1, 1, 1, 1},
    {"lost-signal", "caching-lazy", 2, 1, 0, 1, 1, 1, 1, 1},
    {"lost-signal", "caching-value", 2, 1, 0, 1, 1, 1, 1, 1},
    {"sem-handoff-1", "dfs", 1, 1, 0, 0, 1, 1, 1, 1},
    {"sem-handoff-1", "random", 200, 200, 0, 0, 1, 1, 1, 1},
    {"sem-handoff-1", "dpor", 1, 1, 0, 0, 1, 1, 1, 1},
    {"sem-handoff-1", "caching-full", 1, 1, 0, 0, 1, 1, 1, 1},
    {"sem-handoff-1", "caching-lazy", 1, 1, 0, 0, 1, 1, 1, 1},
    {"sem-handoff-1", "caching-value", 1, 1, 0, 0, 1, 1, 1, 1},
};

// The TSO golden matrix: the full weak-memory family under
// --memory-model tso across all six explorers, captured from
// `lazyhb bench --quick --memory-model tso` on the same implementation
// that produced kGolden. Store-buffer flushes are scheduler-visible
// transitions here, so these counts pin the TSO schedule-space shape the
// same way kGolden pins the SC one: any drift means the store-buffer
// semantics (staging, forwarding, flush enumeration) changed, not just
// performance. Note the unfenced litmus rows all carry violations — the
// TSO-only bugs — while every fenced row is violation-free.
const GoldenCell kGoldenTso[] = {
    {"sb-unfenced", "dfs", 200, 68, 0, 132, 1, 1, 1, 1},
    {"sb-unfenced", "random", 200, 164, 0, 36, 3, 3, 3, 3},
    {"sb-unfenced", "dpor", 13, 4, 7, 2, 3, 3, 3, 3},
    {"sb-unfenced", "caching-full", 118, 3, 114, 1, 3, 3, 3, 3},
    {"sb-unfenced", "caching-lazy", 118, 3, 114, 1, 3, 3, 3, 3},
    {"sb-unfenced", "caching-value", 118, 3, 114, 1, 3, 3, 3, 3},
    {"sb-fenced", "dfs", 200, 200, 0, 0, 3, 3, 3, 3},
    {"sb-fenced", "random", 200, 200, 0, 0, 3, 3, 3, 3},
    {"sb-fenced", "dpor", 8, 4, 4, 0, 3, 3, 3, 3},
    {"sb-fenced", "caching-full", 53, 3, 50, 0, 3, 3, 3, 3},
    {"sb-fenced", "caching-lazy", 53, 3, 50, 0, 3, 3, 3, 3},
    {"sb-fenced", "caching-value", 53, 3, 50, 0, 3, 3, 3, 3},
    {"dekker-unfenced", "dfs", 200, 42, 0, 158, 1, 1, 1, 1},
    {"dekker-unfenced", "random", 200, 164, 0, 36, 3, 3, 3, 3},
    {"dekker-unfenced", "dpor", 11, 4, 5, 2, 3, 3, 3, 3},
    {"dekker-unfenced", "caching-full", 88, 3, 84, 1, 3, 3, 3, 3},
    {"dekker-unfenced", "caching-lazy", 88, 3, 84, 1, 3, 3, 3, 3},
    {"dekker-unfenced", "caching-value", 88, 3, 84, 1, 3, 3, 3, 3},
    {"dekker-fenced", "dfs", 170, 170, 0, 0, 3, 3, 3, 3},
    {"dekker-fenced", "random", 200, 200, 0, 0, 3, 3, 3, 3},
    {"dekker-fenced", "dpor", 5, 4, 1, 0, 3, 3, 3, 3},
    {"dekker-fenced", "caching-full", 33, 3, 30, 0, 3, 3, 3, 3},
    {"dekker-fenced", "caching-lazy", 33, 3, 30, 0, 3, 3, 3, 3},
    {"dekker-fenced", "caching-value", 33, 3, 30, 0, 3, 3, 3, 3},
    {"peterson-unfenced", "dfs", 200, 81, 0, 119, 5, 5, 2, 2},
    {"peterson-unfenced", "random", 200, 177, 0, 23, 24, 24, 8, 6},
    {"peterson-unfenced", "dpor", 153, 117, 27, 9, 28, 28, 8, 6},
    {"peterson-unfenced", "caching-full", 200, 6, 190, 4, 6, 6, 3, 3},
    {"peterson-unfenced", "caching-lazy", 200, 6, 190, 4, 6, 6, 3, 3},
    {"peterson-unfenced", "caching-value", 200, 4, 192, 4, 4, 4, 4, 4},
    {"peterson-fenced", "dfs", 200, 200, 0, 0, 3, 3, 3, 2},
    {"peterson-fenced", "random", 200, 200, 0, 0, 6, 6, 6, 4},
    {"peterson-fenced", "dpor", 17, 14, 3, 0, 6, 6, 6, 4},
    {"peterson-fenced", "caching-full", 132, 6, 126, 0, 6, 6, 6, 4},
    {"peterson-fenced", "caching-lazy", 132, 6, 126, 0, 6, 6, 6, 4},
    {"peterson-fenced", "caching-value", 132, 6, 126, 0, 6, 6, 6, 4},
    {"seqlock-fenced", "dfs", 200, 200, 0, 0, 5, 5, 5, 1},
    {"seqlock-fenced", "random", 200, 200, 0, 0, 8, 8, 8, 1},
    {"seqlock-fenced", "dpor", 114, 89, 25, 0, 11, 11, 11, 1},
    {"seqlock-fenced", "caching-full", 68, 11, 57, 0, 11, 11, 11, 1},
    {"seqlock-fenced", "caching-lazy", 68, 11, 57, 0, 11, 11, 11, 1},
    {"seqlock-fenced", "caching-value", 68, 11, 57, 0, 11, 11, 11, 1},
    {"store-forwarding", "dfs", 63, 63, 0, 0, 6, 6, 3, 3},
    {"store-forwarding", "random", 200, 200, 0, 0, 6, 6, 3, 3},
    {"store-forwarding", "dpor", 16, 11, 5, 0, 6, 6, 3, 3},
    {"store-forwarding", "caching-full", 26, 6, 20, 0, 6, 6, 3, 3},
    {"store-forwarding", "caching-lazy", 26, 6, 20, 0, 6, 6, 3, 3},
    {"store-forwarding", "caching-value", 21, 3, 18, 0, 3, 3, 3, 3},
};

// The three incremental-replay configurations every golden cell must agree
// under: classic from-scratch exploration, recorder-side prefix elision,
// and (for checkpointable programs on fast-fiber builds) full runtime
// rollback. Byte-identical counts across all three is the correctness bar
// of the incremental engine.
struct ReplayMode {
  const char* label;
  bool incremental;
  bool useProgramCheckpointable;
};
constexpr ReplayMode kReplayModes[] = {
    {"incremental-off", false, false},
    {"recorder-elision", true, false},
    {"runtime-rollback", true, true},
};

void expectGoldenCells(const GoldenCell* cells, std::size_t count,
                       memory::MemoryModel model) {
  for (std::size_t i = 0; i < count; ++i) {
    const GoldenCell& golden = cells[i];
    const programs::ProgramSpec* spec = programs::byName(golden.program);
    ASSERT_NE(spec, nullptr) << golden.program;
    const auto explorerSpec = campaign::parseExplorerSpec(golden.explorer);
    ASSERT_TRUE(explorerSpec.has_value()) << golden.explorer;

    for (const ReplayMode& mode : kReplayModes) {
      explore::ExplorerOptions options;
      options.scheduleLimit = 200;  // the bench --quick budget
      options.incremental = mode.incremental;
      options.checkpointable =
          mode.useProgramCheckpointable && spec->checkpointable;
      options.memoryModel = model;
      auto explorer = explorerSpec->create(options, /*seed=*/42);
      const explore::ExplorationResult result = explorer->explore(spec->body);

      const std::string cell = std::string(golden.program) + " x " +
                               golden.explorer + " [" + mode.label + "]";
      EXPECT_EQ(result.schedulesExecuted, golden.schedules) << cell;
      EXPECT_EQ(result.terminalSchedules, golden.terminal) << cell;
      EXPECT_EQ(result.prunedSchedules, golden.pruned) << cell;
      EXPECT_EQ(result.violationSchedules, golden.violations) << cell;
      EXPECT_EQ(result.distinctHbrs, golden.hbrs) << cell;
      EXPECT_EQ(result.distinctLazyHbrs, golden.lazyHbrs) << cell;
      EXPECT_EQ(result.distinctValueClasses, golden.valueClasses) << cell;
      EXPECT_EQ(result.distinctStates, golden.states) << cell;
    }
  }
}

TEST(GoldenCounts, QuickBudgetSnapshotUnchanged) {
  expectGoldenCells(kGolden, std::size(kGolden), memory::MemoryModel::Sc);
}

TEST(GoldenCounts, TsoQuickBudgetSnapshotUnchanged) {
  expectGoldenCells(kGoldenTso, std::size(kGoldenTso), memory::MemoryModel::Tso);
}

/// Enumerate every schedule of `program`; return the sets of distinct
/// terminal fingerprints under the Full and Lazy relations.
std::pair<std::set<std::pair<std::uint64_t, std::uint64_t>>,
          std::set<std::pair<std::uint64_t, std::uint64_t>>>
terminalFingerprints(const explore::Program& program) {
  trace::TraceRecorder recorder;
  runtime::StackPool pool;
  explore::TreeSearchState state;
  std::set<std::pair<std::uint64_t, std::uint64_t>> full;
  std::set<std::pair<std::uint64_t, std::uint64_t>> lazy;
  for (;;) {
    runtime::Execution exec(runtime::Config{}, pool, &recorder);
    explore::TreeScheduler scheduler(state);
    if (exec.run(program, scheduler) == runtime::Outcome::Terminal) {
      const auto f = recorder.fingerprint(trace::Relation::Full);
      const auto l = recorder.fingerprint(trace::Relation::Lazy);
      full.emplace(f.lo, f.hi);
      lazy.emplace(l.lo, l.hi);
    }
    if (!state.advance()) break;
  }
  return {full, lazy};
}

TEST(PermutedLinearizations, EqualPartialOrdersYieldEqualFingerprints) {
  // Two threads touching disjoint variables: every interleaving is a
  // linearization of one and the same labelled partial order, so the whole
  // schedule space must collapse to a single fingerprint per relation.
  const auto [full, lazy] = terminalFingerprints([] {
    Shared<int> x{0, "x"};
    Shared<int> y{0, "y"};
    auto t = spawn([&] {
      x.store(1);
      x.store(2);
    });
    y.store(1);
    y.store(2);
    t.join();
  });
  EXPECT_EQ(full.size(), 1u);
  EXPECT_EQ(lazy.size(), 1u);
}

TEST(PermutedLinearizations, ConflictOrdersStillSeparate) {
  // Same shape but with a genuine write-write conflict: the interleavings
  // now realise different partial orders, which must not collapse (three
  // conflict-edge arrangements of two writes against two writes... the
  // exact class count is the recorder's business; it must exceed one).
  const auto [full, lazy] = terminalFingerprints([] {
    Shared<int> x{0, "x"};
    auto t = spawn([&] {
      x.store(1);
      x.store(2);
    });
    x.store(3);
    x.store(4);
    t.join();
  });
  EXPECT_GT(full.size(), 1u);
  EXPECT_GT(lazy.size(), 1u);
  // No mutexes involved: the lazy relation erases nothing here, so the
  // class structure must coincide.
  EXPECT_EQ(full.size(), lazy.size());
}

}  // namespace
