// The public embedding facade (lazyhb/lazyhb.hpp): Session/TestReport
// parity against direct explorer construction, open scenario registration,
// and registry invariants.
//
// The parity suite is the redesign's hard guarantee: Session is an adapter,
// not a reimplementation, so every count it reports must be byte-identical
// to constructing the explorer by hand the way consumers did before the
// facade existed. The sample spans the corpus regimes (coarse locking,
// noisy counters, condvars, trylock, CAS, deadlock and lost-signal bugs)
// and runs all five canonical strategies over each.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/explorer_spec.hpp"
#include "explore/caching_explorer.hpp"
#include "explore/dfs_explorer.hpp"
#include "explore/dpor_explorer.hpp"
#include "explore/random_explorer.hpp"
#include "lazyhb/lazyhb.hpp"
#include "programs/registry.hpp"

namespace {

using namespace lazyhb;

// --- scenario registration (exercises the LAZYHB_SCENARIO macros exactly
// --- as an embedding application would, in this binary's registry) --------

LAZYHB_SCENARIO("session-test-overdraft", "session-test",
                "check-then-act overdraft seeded for the facade tests",
                .hasKnownBug = true) {
  Shared<int> balance{10, "balance"};
  auto spender = spawn([&] {
    if (balance.load() >= 10) balance.store(balance.load() - 10);
  });
  if (balance.load() >= 10) balance.store(balance.load() - 10);
  spender.join();
  checkAlways(balance.load() >= 0, "no overdraft");
}

LAZYHB_SCENARIO("session-test-quiet", "session-test",
                "single racy increment pair (no violation)") {
  Shared<int> counter{0, "counter"};
  auto t = spawn([&] { counter.fetchAdd(1); });
  counter.fetchAdd(1);
  t.join();
}

explore::Program sessionTestFactory(int writers) {
  return [writers] {
    Shared<int> cell{0, "cell"};
    InlineVec<ThreadHandle, 4> threads;
    for (int i = 0; i < writers; ++i) {
      threads.push(spawn([&, i] { cell.store(i + 1); }));
    }
    for (auto& t : threads) t.join();
  };
}

LAZYHB_SCENARIO_FN("session-test-writers", "session-test",
                   "racy writers from a factory body", sessionTestFactory(3),
                   .checkpointable = true);

// Ranks below kScenarioUserRank are reserved for the corpus; public
// registration clamps them (with a warning), so this scenario must land
// after the corpus like any other user registration.
LAZYHB_SCENARIO_FN("session-test-reserved-rank", "session-test",
                   "asks for a reserved rank and gets clamped",
                   sessionTestFactory(2), .rank = 5);

// --- parity -----------------------------------------------------------------

constexpr std::uint64_t kParityLimit = 200;
constexpr std::uint64_t kParitySeed = 42;

/// The pre-redesign construction path: explorers built by hand from
/// internal headers, exactly as the CLI/examples/benches did before the
/// facade. Kept independent of campaign::ExplorerSpec so the parity check
/// cannot degenerate into comparing the factory against itself.
explore::ExplorationResult runDirect(const std::string& strategy,
                                     const explore::Program& program,
                                     bool checkpointable) {
  explore::ExplorerOptions options;
  options.scheduleLimit = kParityLimit;
  options.checkpointable = checkpointable;
  if (strategy == "dfs") {
    explore::DfsExplorer explorer(options);
    return explorer.explore(program);
  }
  if (strategy == "random") {
    explore::RandomExplorer explorer(options, kParitySeed);
    return explorer.explore(program);
  }
  if (strategy == "dpor") {
    explore::DporExplorer explorer(options);
    return explorer.explore(program);
  }
  if (strategy == "caching-full") {
    explore::CachingExplorer explorer(options, trace::Relation::Full);
    return explorer.explore(program);
  }
  if (strategy == "caching-lazy") {
    explore::CachingExplorer explorer(options, trace::Relation::Lazy);
    return explorer.explore(program);
  }
  ADD_FAILURE() << "unknown strategy " << strategy;
  return {};
}

/// A diverse slice of the corpus (mirrors the golden-count sample).
const char* const kParityPrograms[] = {
    "disjoint-lock-2", "noisy-counter-3x2", "prodcons-1x1", "trylock-vs-lock",
    "cas-counter-3",   "deadlock-ab",       "lost-signal",
};

TEST(SessionParity, CountsMatchDirectConstructionAcrossStrategies) {
  for (const char* programName : kParityPrograms) {
    const programs::ProgramSpec* spec = programs::byName(programName);
    ASSERT_NE(spec, nullptr) << programName;
    for (const campaign::ExplorerSpec& mode : campaign::allExplorers()) {
      SCOPED_TRACE(std::string(programName) + " x " + mode.name);
      const explore::ExplorationResult direct =
          runDirect(mode.name, spec->body, spec->checkpointable);
      const TestReport viaSession = Session()
                                        .strategy(mode.name)
                                        .schedules(kParityLimit)
                                        .seed(kParitySeed)
                                        .run(spec->name);

      EXPECT_EQ(viaSession.schedulesExecuted, direct.schedulesExecuted);
      EXPECT_EQ(viaSession.terminalSchedules, direct.terminalSchedules);
      EXPECT_EQ(viaSession.prunedSchedules, direct.prunedSchedules);
      EXPECT_EQ(viaSession.violationSchedules, direct.violationSchedules);
      EXPECT_EQ(viaSession.totalEvents, direct.totalEvents);
      EXPECT_EQ(viaSession.distinctHbrs, direct.distinctHbrs);
      EXPECT_EQ(viaSession.distinctLazyHbrs, direct.distinctLazyHbrs);
      EXPECT_EQ(viaSession.distinctStates, direct.distinctStates);
      EXPECT_EQ(viaSession.complete, direct.complete);
      EXPECT_EQ(viaSession.hitScheduleLimit, direct.hitScheduleLimit);
      EXPECT_EQ(viaSession.violations.size(), direct.violations.size());
      EXPECT_EQ(viaSession.cache.enabled, direct.cacheStats.enabled);
      EXPECT_EQ(viaSession.cache.lookups, direct.cacheStats.lookups);
      EXPECT_EQ(viaSession.cache.hits, direct.cacheStats.hits);
      EXPECT_EQ(viaSession.cache.entries, direct.cacheStats.entries);
      EXPECT_EQ(viaSession.scenario, spec->name);
      EXPECT_EQ(viaSession.family, spec->family);
    }
  }
}

TEST(SessionParity, ViolationSchedulesReplayIdentically) {
  const TestReport report =
      Session().strategy("dfs").schedules(500).run("deadlock-ab");
  ASSERT_TRUE(report.foundViolation());
  for (const TestViolation& violation : report.violations) {
    const ScheduleTrace trace =
        traceSchedule("deadlock-ab", violation.schedule);
    EXPECT_TRUE(trace.applied);
    EXPECT_TRUE(trace.violated);
    EXPECT_EQ(trace.outcome, violation.kind);
  }
}

// --- Session behaviour -------------------------------------------------------

TEST(Session, UnknownStrategyThrows) {
  EXPECT_THROW((void)Session().strategy("bfs").run("disjoint-lock-2"),
               std::invalid_argument);
  EXPECT_THROW((void)Session().strategy("").run([] {}), std::invalid_argument);
}

TEST(Session, UnknownScenarioThrows) {
  EXPECT_THROW((void)Session().run("no-such-scenario"), std::invalid_argument);
  EXPECT_THROW((void)traceSchedule("no-such-scenario", {}),
               std::invalid_argument);
}

TEST(Session, UnknownRelationThrows) {
  TraceOptions options;
  options.relation = "total";
  EXPECT_THROW((void)traceSchedule("disjoint-lock-2", {}, options),
               std::invalid_argument);
}

TEST(Session, StrategiesListsCanonicalThenExtended) {
  const std::vector<std::string> names = Session::strategies();
  ASSERT_EQ(names.size(), 8u);
  EXPECT_EQ(names[0], "dfs");
  EXPECT_EQ(names[4], "caching-lazy");
  EXPECT_EQ(names[5], "dpor-nosleep");
  EXPECT_EQ(names[6], "dpor-lazy-cache");
  EXPECT_EQ(names[7], "caching-value");
  for (const std::string& name : names) {
    EXPECT_TRUE(campaign::parseExplorerSpec(name).has_value()) << name;
  }
}

TEST(Session, ExtendedStrategiesRunButStayOutOfTheCanonicalMatrix) {
  const TestReport nosleep = Session()
                                 .strategy("dpor-nosleep")
                                 .schedules(kParityLimit)
                                 .run("disjoint-lock-2");
  EXPECT_GT(nosleep.schedulesExecuted, 0u);
  for (const campaign::ExplorerSpec& spec : campaign::allExplorers()) {
    EXPECT_NE(spec.name, "dpor-nosleep");
    EXPECT_NE(spec.name, "dpor-lazy-cache");
  }
}

TEST(Session, RunByNameInheritsCheckpointableTrait) {
  // disjoint-lock-2 is registered checkpointable; the report echoes the
  // trait (and the incremental engine may elide events on fast-fiber
  // builds — counts stay identical either way, which the parity test
  // already pins).
  const TestReport report =
      Session().schedules(50).run("disjoint-lock-2");
  EXPECT_TRUE(report.checkpointable);
  const TestReport adHoc = Session().schedules(50).run([] {
    Shared<int> x{0, "x"};
    x.store(1);
  });
  EXPECT_FALSE(adHoc.checkpointable);
  EXPECT_TRUE(adHoc.scenario.empty());
}

TEST(Session, ReportEchoesConfiguration) {
  const TestReport report = Session()
                                .strategy("caching-lazy")
                                .schedules(123)
                                .maxEventsPerSchedule(4096)
                                .seed(7)
                                .incremental(false)
                                .run("session-test-quiet");
  EXPECT_EQ(report.strategy, "caching-lazy");
  EXPECT_EQ(report.scheduleLimit, 123u);
  EXPECT_EQ(report.maxEventsPerSchedule, 4096u);
  EXPECT_EQ(report.seed, 7u);
  EXPECT_FALSE(report.incremental);
  EXPECT_EQ(report.scenario, "session-test-quiet");
  EXPECT_EQ(report.family, "session-test");
}

TEST(Session, StopOnFirstViolationStopsEarly) {
  const TestReport all =
      Session().strategy("dfs").schedules(500).run("session-test-overdraft");
  const TestReport first = Session()
                               .strategy("dfs")
                               .schedules(500)
                               .stopOnFirstViolation(true)
                               .run("session-test-overdraft");
  ASSERT_TRUE(all.foundViolation());
  ASSERT_TRUE(first.foundViolation());
  EXPECT_LE(first.schedulesExecuted, all.schedulesExecuted);
  EXPECT_EQ(first.violations.size(), 1u);
}

// --- TestReport JSON ---------------------------------------------------------

TEST(TestReportJson, VersionedAndStructurallySound) {
  const TestReport report = Session()
                                .strategy("caching-lazy")
                                .schedules(kParityLimit)
                                .checkTheorems(true)
                                .run("session-test-overdraft");
  const std::string json = report.toJson();

  EXPECT_NE(json.find("\"schema\": \"lazyhb-test-report\""), std::string::npos);
  EXPECT_NE(json.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"scenario\": \"session-test-overdraft\""),
            std::string::npos);
  EXPECT_NE(json.find("\"strategy\": \"caching-lazy\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"assertion-failure\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"theorem_22\""), std::string::npos);
  // v2 adds the value-class count and the value-soundness checker block.
  EXPECT_NE(json.find("\"value_classes\""), std::string::npos);
  EXPECT_NE(json.find("\"theorem_value\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  // Structural sanity without a parser: balanced braces/brackets (the
  // writer never emits braces inside these strings).
  int braces = 0;
  int brackets = 0;
  for (const char c : json) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TestReportJson, CacheSectionOnlyForCachingStrategies) {
  const TestReport dfs =
      Session().strategy("dfs").schedules(50).run("session-test-quiet");
  EXPECT_FALSE(dfs.cache.enabled);
  EXPECT_EQ(dfs.toJson().find("\"cache\""), std::string::npos);
}

TEST(TestReportJson, SummaryNamesScenarioAndFirstViolation) {
  const TestReport report =
      Session().strategy("dfs").schedules(500).run("session-test-overdraft");
  const std::string summary = report.summary();
  EXPECT_NE(summary.find("session-test-overdraft"), std::string::npos);
  EXPECT_NE(summary.find("assertion-failure"), std::string::npos);
}

// --- registry invariants (registration is open now; these must hold for
// --- the corpus plus whatever this binary registered) ------------------------

TEST(Registry, IdsAreDense1ToN) {
  const auto& all = programs::all();
  ASSERT_GE(all.size(), 91u);  // 87 corpus + the 4 scenarios above
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].id, static_cast<int>(i) + 1);
  }
}

TEST(Registry, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& spec : programs::all()) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate " << spec.name;
  }
}

TEST(Registry, CorpusKeepsItsStableIdsAheadOfUserScenarios) {
  // Corpus ranks sort below user registrations, so the corpus' 87
  // benchmarks keep ids 1..87 regardless of what an embedder registers.
  const auto& all = programs::all();
  EXPECT_EQ(all[0].name, "disjoint-lock-2");
  const programs::ProgramSpec* lastCorpus = programs::byName("store-forwarding");
  ASSERT_NE(lastCorpus, nullptr);
  EXPECT_EQ(lastCorpus->id, 87);
  const programs::ProgramSpec* user = programs::byName("session-test-overdraft");
  ASSERT_NE(user, nullptr);
  EXPECT_GT(user->id, 87);
  // The reserved-rank request was clamped into the user range: it cannot
  // displace corpus ids, and registration order among user scenarios holds.
  const programs::ProgramSpec* clamped =
      programs::byName("session-test-reserved-rank");
  ASSERT_NE(clamped, nullptr);
  EXPECT_GT(clamped->id, user->id);
}

TEST(Registry, MacroRegisteredScenariosCarryTheirTraits) {
  const programs::ProgramSpec* overdraft =
      programs::byName("session-test-overdraft");
  ASSERT_NE(overdraft, nullptr);
  EXPECT_TRUE(overdraft->hasKnownBug);
  EXPECT_FALSE(overdraft->checkpointable);

  const programs::ProgramSpec* writers = programs::byName("session-test-writers");
  ASSERT_NE(writers, nullptr);
  EXPECT_FALSE(writers->hasKnownBug);
  EXPECT_TRUE(writers->checkpointable);
}

TEST(Registry, FamilyLookupFindsAllMembersInIdOrder) {
  const auto family = programs::byFamily("session-test");
  ASSERT_EQ(family.size(), 4u);
  EXPECT_EQ(family[0]->name, "session-test-overdraft");
  EXPECT_EQ(family[1]->name, "session-test-quiet");
  EXPECT_EQ(family[2]->name, "session-test-writers");
  EXPECT_EQ(family[3]->name, "session-test-reserved-rank");
  for (std::size_t i = 1; i < family.size(); ++i) {
    EXPECT_LT(family[i - 1]->id, family[i]->id);
  }
  EXPECT_TRUE(programs::byFamily("no-such-family").empty());
}

TEST(Registry, ScenariosSnapshotMatchesRegistry) {
  const std::vector<ScenarioInfo> infos = scenarios();
  const auto& all = programs::all();
  ASSERT_EQ(infos.size(), all.size());
  for (std::size_t i = 0; i < infos.size(); ++i) {
    EXPECT_EQ(infos[i].id, all[i].id);
    EXPECT_EQ(infos[i].name, all[i].name);
    EXPECT_EQ(infos[i].family, all[i].family);
    EXPECT_EQ(infos[i].hasKnownBug, all[i].hasKnownBug);
    EXPECT_EQ(infos[i].checkpointable, all[i].checkpointable);
  }
}

TEST(Registry, UserScenarioIsFullyOperational) {
  // The macro-registered scenario behaves exactly like a corpus program:
  // explorable through the facade, bug found, schedule replayable.
  const TestReport report = Session()
                                .strategy("dpor")
                                .schedules(1000)
                                .run("session-test-overdraft");
  EXPECT_TRUE(report.complete);
  ASSERT_TRUE(report.foundViolation());
  const ScheduleTrace trace = traceSchedule("session-test-overdraft",
                                            report.violations.front().schedule);
  EXPECT_TRUE(trace.applied);
  EXPECT_TRUE(trace.violated);
  EXPECT_EQ(trace.outcome, "assertion-failure");
}

}  // namespace
