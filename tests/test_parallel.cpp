// Count-identity stress suite for the parallel intra-scenario explorer.
//
// The contract of explore/parallel_explorer.hpp is that sharding a
// scenario's schedule tree across N workers changes *nothing observable*:
// every count an ExplorationResult carries (schedules / terminal / pruned /
// violations / events / distinct HBR, lazy-HBR and state classes / cache
// lookups, hits, insertions, entries) is byte-identical to the sequential
// explorer's at any worker count. The quotient-DAG argument behind that
// (equal fingerprints => isomorphic subtrees, so all counts are
// order-independent sums) lives in the parallel explorer's header; this
// suite is the empirical judge:
//
//   * the golden corpus slice explored by every explorer mode at
//     --workers {1,2,4,8} against the sequential result;
//   * a >= 20-iteration flakiness loop on the two deepest corpus programs
//     whose searches complete (noisy-flags-3x2, seqlock-2), cycling worker
//     counts, so a racy merge or a lost frontier job has real iterations in
//     which to flake;
//   * invariants of the parallel metadata block (worker shares sum to the
//     total, budget aborts fall back to a sequential rerun).
//
// The suite is also half of the ThreadSanitizer CI leg (with test_core) —
// under LAZYHB_SANITIZE=thread these same runs double as race hunts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "campaign/explorer_spec.hpp"
#include "explore/explorer.hpp"
#include "explore/parallel_explorer.hpp"
#include "programs/registry.hpp"

// Scale every heavy test to the build. Under ThreadSanitizer the forced
// ucontext backend is not just ~100x slower per schedule: TSan's
// swapcontext interceptor allocates per-fiber shadow state that it can
// never free (a ucontext has no destroy hook), so with fresh fibers per
// schedule both memory and the per-schedule cost grow with the *total*
// schedule count of the process — the full-size suite runs quadratic and
// eventually traps inside libtsan. Race coverage, by contrast, comes from
// the concurrent machinery exercised per *run* (frontier claim/donation,
// CAS cache publish, table growth, the merge), not from tree depth. So the
// TSan leg keeps every run shape but holds the whole binary to a few
// thousand schedules total; regular builds sweep the full-depth spaces.
#if defined(__SANITIZE_THREAD__)
#define LAZYHB_TSAN_BUILD 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LAZYHB_TSAN_BUILD 1
#endif
#endif

namespace {

using namespace lazyhb;

/// Explore `program` under `mode` with the given worker count, through the
/// same ExplorerSpec factory every production consumer uses (so workers >= 2
/// on a shardable mode really does construct a ParallelExplorer).
explore::ExplorationResult runWith(const programs::ProgramSpec& spec,
                                   const std::string& mode, int workers,
                                   std::uint64_t scheduleLimit) {
  const auto explorerSpec = campaign::parseExplorerSpec(mode);
  EXPECT_TRUE(explorerSpec.has_value()) << mode;
  explore::ExplorerOptions options;
  options.scheduleLimit = scheduleLimit;
  options.workers = workers;
  auto explorer = explorerSpec->create(options, /*seed=*/42);
  return explorer->explore(spec.body);
}

/// Assert every order-independent count of `parallel` equals `sequential`.
/// events_elided / events_replayed are deliberately not compared: they are
/// replay-savings diagnostics that legitimately differ with sharding (each
/// worker replays its own prefixes), exactly as they differ between
/// --incremental modes — tools/bench_diff.py excludes them for the same
/// reason.
void expectCountsIdentical(const explore::ExplorationResult& sequential,
                           const explore::ExplorationResult& parallel,
                           const std::string& label) {
  EXPECT_EQ(parallel.schedulesExecuted, sequential.schedulesExecuted) << label;
  EXPECT_EQ(parallel.terminalSchedules, sequential.terminalSchedules) << label;
  EXPECT_EQ(parallel.prunedSchedules, sequential.prunedSchedules) << label;
  EXPECT_EQ(parallel.violationSchedules, sequential.violationSchedules)
      << label;
  EXPECT_EQ(parallel.totalEvents, sequential.totalEvents) << label;
  EXPECT_EQ(parallel.distinctHbrs, sequential.distinctHbrs) << label;
  EXPECT_EQ(parallel.distinctLazyHbrs, sequential.distinctLazyHbrs) << label;
  EXPECT_EQ(parallel.distinctStates, sequential.distinctStates) << label;
  EXPECT_EQ(parallel.complete, sequential.complete) << label;
  EXPECT_EQ(parallel.hitScheduleLimit, sequential.hitScheduleLimit) << label;
  EXPECT_EQ(parallel.violations.size(), sequential.violations.size()) << label;
  EXPECT_EQ(parallel.races.size(), sequential.races.size()) << label;
  EXPECT_EQ(parallel.cacheStats.enabled, sequential.cacheStats.enabled)
      << label;
  EXPECT_EQ(parallel.cacheStats.lookups, sequential.cacheStats.lookups)
      << label;
  EXPECT_EQ(parallel.cacheStats.hits, sequential.cacheStats.hits) << label;
  EXPECT_EQ(parallel.cacheStats.insertions, sequential.cacheStats.insertions)
      << label;
  EXPECT_EQ(parallel.cacheStats.entries, sequential.cacheStats.entries)
      << label;
}

// The golden corpus slice of tests/test_golden_counts.cpp (whose absolute
// values that suite pins); here each cell's sequential result is the
// baseline its parallel runs must match byte-for-byte. All five explorer
// modes are exercised: dfs / caching-full / caching-lazy shard, while
// random / dpor must come out of the factory sequential — and therefore
// trivially identical — whatever --workers says.
#if defined(LAZYHB_TSAN_BUILD)
const char* const kGoldenPrograms[] = {
    "disjoint-lock-2", "cas-counter-3", "deadlock-ab",
};
constexpr std::uint64_t kMatrixLimit = 40;
constexpr int kMatrixWorkerCounts[] = {4};
#else
const char* const kGoldenPrograms[] = {
    "disjoint-lock-2", "noisy-counter-3x2", "prodcons-1x1", "trylock-vs-lock",
    "cas-counter-3",   "deadlock-ab",       "lost-signal",  "sem-handoff-1",
};
constexpr std::uint64_t kMatrixLimit = 200;
constexpr int kMatrixWorkerCounts[] = {2, 4, 8};
#endif
const char* const kExplorerModes[] = {
    "dfs", "random", "dpor", "caching-full", "caching-lazy",
};

TEST(ParallelCountIdentity, GoldenMatrixAtAllWorkerCounts) {
  for (const char* name : kGoldenPrograms) {
    const programs::ProgramSpec* spec = programs::byName(name);
    ASSERT_NE(spec, nullptr) << name;
    for (const char* mode : kExplorerModes) {
      const auto sequential = runWith(*spec, mode, /*workers=*/1, kMatrixLimit);
      for (const int workers : kMatrixWorkerCounts) {
        const auto parallel = runWith(*spec, mode, workers, kMatrixLimit);
        expectCountsIdentical(sequential, parallel,
                              std::string(name) + " x " + mode + " @" +
                                  std::to_string(workers) + " workers");
      }
    }
  }
}

TEST(ParallelCountIdentity, DeepProgramsFlakinessLoop) {
  // The two deepest corpus programs whose caching-lazy searches complete
  // (so the parallel path runs end-to-end rather than budget-aborting):
  // noisy-flags-3x2 (~15k schedules) and seqlock-2 (~10k). Twenty
  // iterations cycling the worker count gives a racy merge, a double-pruned
  // prefix or a dropped frontier job real opportunities to flake.
#if defined(LAZYHB_TSAN_BUILD)
  // racy-counter-3's search completes at 126 schedules — deep enough that
  // 4 and 8 workers all get frontier jobs, small enough that the whole
  // loop stays inside the TSan fiber budget (see the header comment).
  constexpr int kIterations = 6;
  constexpr std::uint64_t kLimit = 2000;
  const char* const kDeepPrograms[] = {"racy-counter-3"};
#else
  constexpr int kIterations = 20;
  constexpr std::uint64_t kLimit = 20000;
  const char* const kDeepPrograms[] = {"noisy-flags-3x2", "seqlock-2"};
#endif
  for (const char* name : kDeepPrograms) {
    const programs::ProgramSpec* spec = programs::byName(name);
    ASSERT_NE(spec, nullptr) << name;
    const auto sequential = runWith(*spec, "caching-lazy", 1, kLimit);
    ASSERT_TRUE(sequential.complete) << name;
    for (int i = 0; i < kIterations; ++i) {
      const int workers = 2 << (i % 3);  // 2, 4, 8, 2, ...
      const auto parallel = runWith(*spec, "caching-lazy", workers, kLimit);
      expectCountsIdentical(sequential, parallel,
                            std::string(name) + " iteration " +
                                std::to_string(i) + " @" +
                                std::to_string(workers) + " workers");
    }
  }
}

TEST(ParallelCountIdentity, DfsViolationSetIsOrderIndependent) {
  // Without pruning every schedule executes, so for a *complete* dfs search
  // even the concrete violation records — not just their count — must come
  // out identical (the parallel merge lex-sorts; a complete sequential dfs
  // enumerates in the same lexicographic order). Caching modes only promise
  // the count: which schedule witnesses a violation class there is
  // insertion-order dependent by design.
  const programs::ProgramSpec* spec = programs::byName("deadlock-ab");
  ASSERT_NE(spec, nullptr);
  const auto sequential = runWith(*spec, "dfs", 1, 200);
  ASSERT_TRUE(sequential.complete);
  ASSERT_GE(sequential.violations.size(), 2u);
  for (const int workers : kMatrixWorkerCounts) {
    const auto parallel = runWith(*spec, "dfs", workers, 200);
    ASSERT_EQ(parallel.violations.size(), sequential.violations.size());
    auto key = [](const explore::ViolationRecord& v) {
      return std::make_tuple(v.kind, v.message, v.schedule);
    };
    std::vector<std::tuple<runtime::Outcome, std::string, std::vector<int>>>
        expected, actual;
    for (const auto& v : sequential.violations) expected.push_back(key(v));
    for (const auto& v : parallel.violations) actual.push_back(key(v));
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << workers << " workers";
  }
}

// --- parallel metadata -------------------------------------------------------

TEST(ParallelMetadata, WorkerSharesSumToTheTotal) {
#if defined(LAZYHB_TSAN_BUILD)
  const programs::ProgramSpec* spec = programs::byName("racy-counter-3");
#else
  const programs::ProgramSpec* spec = programs::byName("noisy-flags-3x2");
#endif
  ASSERT_NE(spec, nullptr);
  const auto result = runWith(*spec, "caching-lazy", 4, 20000);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.parallel.workers, 4);
  EXPECT_FALSE(result.parallel.fellBackSequential);
  EXPECT_GE(result.parallel.frontierJobs, 1u);
  ASSERT_EQ(result.parallel.byWorker.size(), 4u);
  std::uint64_t visited = 0;
  for (const explore::WorkerShare& share : result.parallel.byWorker) {
    visited += share.schedulesVisited;
  }
  EXPECT_EQ(visited, result.schedulesExecuted);
}

TEST(ParallelMetadata, BudgetAbortRerunsSequentially) {
  // When the shared schedule budget bites mid-flight, whether any worker's
  // claim exceeds it is itself order-independent — but the partial tallies
  // are not, so the explorer discards them and reruns sequentially. The
  // result must carry the fallback marker and the sequential run's counts.
  const programs::ProgramSpec* spec = programs::byName("noisy-flags-3x2");
  ASSERT_NE(spec, nullptr);
  const auto sequential = runWith(*spec, "caching-lazy", 1, 200);
  ASSERT_TRUE(sequential.hitScheduleLimit);
  const auto parallel = runWith(*spec, "caching-lazy", 4, 200);
  EXPECT_TRUE(parallel.parallel.fellBackSequential);
  EXPECT_EQ(parallel.parallel.workers, 4);
  expectCountsIdentical(sequential, parallel, "budget-abort fallback");
}

TEST(ParallelMetadata, SequentialRunsCarryNoParallelBlock) {
  const programs::ProgramSpec* spec = programs::byName("disjoint-lock-2");
  ASSERT_NE(spec, nullptr);
  const auto result = runWith(*spec, "caching-lazy", 1, 200);
  EXPECT_EQ(result.parallel.workers, 0);  // 0 => sequential, no v4 block
  EXPECT_TRUE(result.parallel.byWorker.empty());
}

// --- the shardable gate ------------------------------------------------------

TEST(ParallelShardable, OrderSensitiveConfigurationsStaySequential) {
  explore::ExplorerOptions options;
  options.workers = 4;
  EXPECT_TRUE(explore::ParallelExplorer::shardable(options));

  options.workers = 1;
  EXPECT_FALSE(explore::ParallelExplorer::shardable(options));

  options.workers = 4;
  options.stopOnFirstViolation = true;  // "first" is visit-order defined
  EXPECT_FALSE(explore::ParallelExplorer::shardable(options));

  options.stopOnFirstViolation = false;
  options.checkTheorems = true;  // checkers are single-threaded accumulators
  EXPECT_FALSE(explore::ParallelExplorer::shardable(options));
}

TEST(ParallelShardable, FactoryFallsBackForNonShardableKinds) {
  // random and dpor must never shard: the factory hands back their
  // sequential explorers, which report no parallel block at any --workers.
  for (const char* mode : {"random", "dpor"}) {
    const programs::ProgramSpec* spec = programs::byName("disjoint-lock-2");
    ASSERT_NE(spec, nullptr);
    const auto result = runWith(*spec, mode, 8, 200);
    EXPECT_EQ(result.parallel.workers, 0) << mode;
  }
}

}  // namespace
