// Unit tests for the core module: the HBR prefix cache (including its
// concurrency properties), the theorem checkers, the Figure 2/3 summary
// aggregation and race aggregation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/equivalence.hpp"
#include "core/hbr_cache.hpp"
#include "core/redundancy.hpp"

namespace {

using namespace lazyhb;
using support::hash128;

TEST(HbrCache, CheckAndInsertSemantics) {
  core::HbrCache cache;
  EXPECT_FALSE(cache.checkAndInsert(hash128(1)));  // first sight: miss
  EXPECT_TRUE(cache.checkAndInsert(hash128(1)));   // second: hit => prune
  EXPECT_FALSE(cache.checkAndInsert(hash128(2)));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().lookups, 3u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().insertions, 2u);
}

TEST(HbrCache, SilentInsertAndClear) {
  core::HbrCache cache;
  cache.insert(hash128(7));
  EXPECT_TRUE(cache.contains(hash128(7)));
  EXPECT_EQ(cache.stats().lookups, 0u);  // insert() is not a lookup
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.contains(hash128(7)));
}

TEST(HbrCache, SurvivesGrowthAcrossLoadFactor) {
  // Push well past several doublings of the open-addressing table; every
  // fingerprint inserted must remain resident and no phantom member appears.
  core::HbrCache cache;
  constexpr std::uint64_t kCount = 10000;
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_FALSE(cache.checkAndInsert(hash128(i)));
  }
  EXPECT_EQ(cache.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) {
    EXPECT_TRUE(cache.contains(hash128(i))) << i;
  }
  EXPECT_FALSE(cache.contains(hash128(kCount + 1)));
  // The table is the storage: footprint stays within the load factor's
  // slack of one slot per entry (capacity <= entries / 0.7 rounded up to a
  // power of two, i.e. < 4x entries even right after a doubling).
  EXPECT_LT(cache.approxMemoryBytes(), 4 * kCount * sizeof(support::Hash128));
}

TEST(HbrCache, ZeroFingerprintIsAValidKey) {
  // The all-zero hash doubles as the empty-slot sentinel internally; it must
  // still behave as an ordinary key at the interface.
  core::HbrCache cache;
  const support::Hash128 zero{};
  EXPECT_FALSE(cache.contains(zero));
  EXPECT_FALSE(cache.checkAndInsert(zero));
  EXPECT_TRUE(cache.checkAndInsert(zero));
  EXPECT_TRUE(cache.contains(zero));
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_FALSE(cache.contains(zero));
}

TEST(HbrCache, CollidingProbeStartsChainCorrectly) {
  // Fingerprints whose low words collide modulo the table size probe
  // linearly; membership must be exact for every member of the cluster.
  core::HbrCache cache;
  std::vector<support::Hash128> cluster;
  for (std::uint64_t i = 0; i < 32; ++i) {
    cluster.push_back(support::Hash128{0x40, 0x1000 + i});  // identical .lo
  }
  for (const auto& h : cluster) EXPECT_FALSE(cache.checkAndInsert(h));
  for (const auto& h : cluster) EXPECT_TRUE(cache.contains(h));
  EXPECT_EQ(cache.size(), cluster.size());
  EXPECT_FALSE(cache.contains(support::Hash128{0x40, 0x9999}));
}

// --- concurrent properties ---------------------------------------------------
//
// Since PR 6 the cache is shared by N exploration workers
// (explore/parallel_explorer.hpp); its contract there is linearizability of
// the miss: for every distinct fingerprint, exactly one concurrent
// checkAndInsert observes the insert and every other call a hit, with no
// fingerprint ever lost. These tests hammer that contract from
// std::thread's (real OS threads — the fiber runtime is not involved, so
// the interleavings are genuinely nondeterministic) and are half of the
// ThreadSanitizer CI leg alongside tests/test_parallel.cpp.

TEST(HbrCacheConcurrent, NoLostInsertAgainstMutexGuardedReference) {
  // Eight threads draw overlapping pseudorandom keys from a small universe,
  // mirroring every draw into a mutex-guarded reference set. Afterwards the
  // lock-free table and the reference must agree exactly, and the misses
  // recorded across all threads must cover each distinct key exactly once.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kUniverse = 2048;
  constexpr int kOpsPerThread = 20000;
  core::HbrCache cache;
  std::mutex referenceMutex;
  std::set<std::uint64_t> reference;
  std::vector<std::vector<std::uint64_t>> missedBy(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t x = 0x9e3779b97f4a7c15ULL * (t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        x ^= x << 13;  // xorshift64: cheap, deterministic per thread
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t key = x % kUniverse;
        if (!cache.checkAndInsert(hash128(key))) missedBy[t].push_back(key);
        const std::lock_guard<std::mutex> lock(referenceMutex);
        reference.insert(key);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(cache.size(), reference.size());
  for (const std::uint64_t key : reference) {
    EXPECT_TRUE(cache.contains(hash128(key))) << key;
  }
  // Exactly-one-miss per distinct key, across all threads together.
  std::set<std::uint64_t> missed;
  std::size_t totalMisses = 0;
  for (const auto& perThread : missedBy) {
    totalMisses += perThread.size();
    for (const std::uint64_t key : perThread) {
      EXPECT_TRUE(missed.insert(key).second)
          << "fingerprint " << key << " was inserted twice";
    }
  }
  EXPECT_EQ(totalMisses, reference.size());
  EXPECT_EQ(missed, reference);
  // The atomically maintained counters balance: every operation was either
  // the one insert of its key or a hit.
  EXPECT_EQ(cache.stats().lookups,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(cache.stats().insertions, reference.size());
  EXPECT_EQ(cache.stats().hits, cache.stats().lookups - reference.size());
}

TEST(HbrCacheConcurrent, CollidingLoWordsUnderContention) {
  // Every key shares one probe start (identical .lo), so all eight threads
  // fight over a single linear-probe cluster — claim/publish races on the
  // very same slots, plus reads of half-published entries. Each thread
  // walks the key set in a different order to maximize overlap.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kKeys = 256;
  core::HbrCache cache;
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t local = 0;
      const std::uint64_t stride = 2 * t + 1;  // odd => coprime with 256
      for (std::uint64_t i = 0; i < kKeys; ++i) {
        const std::uint64_t hi = 0x1000 + (i * stride) % kKeys;
        if (!cache.checkAndInsert(support::Hash128{0x40, hi})) ++local;
      }
      misses.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(misses.load(), kKeys);
  EXPECT_EQ(cache.size(), kKeys);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    EXPECT_TRUE(cache.contains(support::Hash128{0x40, 0x1000 + i})) << i;
  }
  EXPECT_FALSE(cache.contains(support::Hash128{0x40, 0x9999}));
}

TEST(HbrCacheConcurrent, GrowthUnderContention) {
  // Disjoint per-thread key ranges big enough to force many doublings of
  // the 512-slot initial table while inserts are in flight: the
  // accessor-epoch drain must let no insert land in a table about to be
  // retired and no fingerprint vanish across a swap.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 8000;
  core::HbrCache cache;
  const std::size_t initialFootprint = cache.approxMemoryBytes();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        EXPECT_FALSE(cache.checkAndInsert(hash128(t * kPerThread + i)));
      }
    });
  }
  for (auto& thread : threads) thread.join();

  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(cache.size(), kTotal);
  EXPECT_EQ(cache.stats().insertions, kTotal);
  EXPECT_EQ(cache.stats().hits, 0u);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    ASSERT_TRUE(cache.contains(hash128(i))) << i;
  }
  EXPECT_FALSE(cache.contains(hash128(kTotal)));
  EXPECT_GT(cache.approxMemoryBytes(), initialFootprint);
}

TEST(HbrCacheConcurrent, SentinelCollidingKeysStayExact) {
  // Fingerprints whose low word collides with the empty (0) or
  // claim-pending (~0) slot sentinels take the out-of-band path; hammered
  // from all threads alongside in-table keys, they must obey the same
  // exactly-one-miss contract and never corrupt the table proper.
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerClass = 64;
  constexpr std::uint64_t kBusy = ~std::uint64_t{0};
  core::HbrCache cache;
  std::atomic<std::uint64_t> misses{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::uint64_t local = 0;
      for (std::uint64_t i = 0; i < kPerClass; ++i) {
        // Interleave the three key classes so sentinel and normal inserts
        // race each other, not just themselves.
        const std::uint64_t j = (i + t) % kPerClass;
        if (!cache.checkAndInsert(support::Hash128{0, j})) ++local;
        if (!cache.checkAndInsert(support::Hash128{kBusy, j})) ++local;
        if (!cache.checkAndInsert(support::Hash128{j + 1, j})) ++local;
      }
      misses.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(misses.load(), 3 * kPerClass);
  EXPECT_EQ(cache.size(), 3 * kPerClass);
  for (std::uint64_t j = 0; j < kPerClass; ++j) {
    EXPECT_TRUE(cache.contains(support::Hash128{0, j})) << j;
    EXPECT_TRUE(cache.contains(support::Hash128{kBusy, j})) << j;
    EXPECT_TRUE(cache.contains(support::Hash128{j + 1, j})) << j;
  }
  EXPECT_FALSE(cache.contains(support::Hash128{0, kPerClass}));
  EXPECT_FALSE(cache.contains(support::Hash128{kBusy, kPerClass}));
}

TEST(EquivalenceChecker, DetectsTheoremConflicts) {
  core::EquivalenceChecker checker;
  EXPECT_TRUE(checker.record(hash128(1), hash128(100)));  // new class
  EXPECT_TRUE(checker.record(hash128(1), hash128(100)));  // consistent repeat
  EXPECT_TRUE(checker.record(hash128(2), hash128(200)));
  EXPECT_FALSE(checker.record(hash128(1), hash128(999)));  // conflict!
  const auto& stats = checker.stats();
  EXPECT_EQ(stats.schedules, 4u);
  EXPECT_EQ(stats.classes, 2u);
  EXPECT_EQ(stats.states, 3u);
  EXPECT_EQ(stats.conflicts, 1u);
}

TEST(EquivalenceChecker, ManyClassesOneState) {
  // The lazy-HBR promise in miniature: classes may exceed states, never
  // the other way round per class.
  core::EquivalenceChecker checker;
  for (std::uint64_t c = 0; c < 50; ++c) {
    EXPECT_TRUE(checker.record(hash128(c), hash128(42)));
  }
  EXPECT_EQ(checker.stats().classes, 50u);
  EXPECT_EQ(checker.stats().states, 1u);
  EXPECT_EQ(checker.stats().conflicts, 0u);
}

core::BenchmarkCounts counts(const char* name, std::uint64_t schedules,
                             std::uint64_t hbrs, std::uint64_t lazyHbrs,
                             std::uint64_t states) {
  core::BenchmarkCounts c;
  c.name = name;
  c.schedules = schedules;
  c.hbrs = hbrs;
  c.lazyHbrs = lazyHbrs;
  c.states = states;
  return c;
}

TEST(Redundancy, Fig2SummaryMatchesPaperArithmetic) {
  // Mirror the paper's aggregate definition on a toy set: two benchmarks
  // below the diagonal (with 100+20 HBRs, 10+2 lazy) and one on it.
  std::vector<core::BenchmarkCounts> rows{
      counts("a", 1000, 100, 10, 5),
      counts("b", 500, 20, 2, 2),
      counts("c", 10, 7, 7, 3),
  };
  const auto summary = core::summarizeFig2(rows);
  EXPECT_EQ(summary.benchmarks, 3);
  EXPECT_EQ(summary.belowDiagonal, 2);
  EXPECT_EQ(summary.hbrsBelow, 120u);
  EXPECT_EQ(summary.lazyHbrsBelow, 12u);
  EXPECT_EQ(summary.redundantHbrs, 108u);
  EXPECT_NEAR(summary.redundantPercent, 90.0, 0.01);
}

TEST(Redundancy, Fig3SummaryCountsDifferingOnly) {
  std::vector<core::CachingCounts> rows(3);
  rows[0].lazyHbrsByRegularCaching = 10;
  rows[0].lazyHbrsByLazyCaching = 25;  // differs: +15
  rows[1].lazyHbrsByRegularCaching = 7;
  rows[1].lazyHbrsByLazyCaching = 7;  // equal
  rows[2].lazyHbrsByRegularCaching = 3;
  rows[2].lazyHbrsByLazyCaching = 6;  // differs: +3
  const auto summary = core::summarizeFig3(rows);
  EXPECT_EQ(summary.differing, 2);
  EXPECT_EQ(summary.regularWon, 0);
  EXPECT_EQ(summary.extraLazyHbrs, 18u);
  EXPECT_EQ(summary.regularOnDiffering, 13u);
  EXPECT_NEAR(summary.extraPercent, 100.0 * 18.0 / 13.0, 0.01);
}

TEST(Redundancy, CountingChainDiagnostics) {
  EXPECT_EQ(core::checkCountingChain(counts("ok", 100, 50, 20, 10), 1000), "");
  EXPECT_NE(core::checkCountingChain(counts("bad1", 100, 50, 60, 10), 1000), "");
  EXPECT_NE(core::checkCountingChain(counts("bad2", 100, 200, 20, 10), 1000), "");
  EXPECT_NE(core::checkCountingChain(counts("bad3", 100, 50, 20, 30), 1000), "");
  EXPECT_NE(core::checkCountingChain(counts("bad4", 2000, 50, 20, 10), 1000), "");
}

}  // namespace
