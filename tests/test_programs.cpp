// Benchmark-corpus tests: registry integrity, per-benchmark sanity under a
// budgeted exploration (the §3 counting chain and Theorems 2.1/2.2 must hold
// on every benchmark), and bug/no-bug classification: DPOR must find the
// violation in every known-buggy benchmark and must find none elsewhere.

#include <gtest/gtest.h>

#include <set>

#include "core/redundancy.hpp"
#include "explore/dpor_explorer.hpp"
#include "programs/registry.hpp"
#include "test_helpers.hpp"

namespace {

using namespace lazyhb;

TEST(Registry, HasExactly87UniqueBenchmarks) {
  const auto& corpus = programs::all();
  ASSERT_EQ(corpus.size(), 87u);
  std::set<std::string> names;
  for (const auto& spec : corpus) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate name " << spec.name;
    EXPECT_FALSE(spec.family.empty());
    EXPECT_FALSE(spec.description.empty());
    EXPECT_TRUE(static_cast<bool>(spec.body));
    // bugRequiresTso refines hasKnownBug; it never stands alone, and only
    // the weak-memory family uses it.
    if (spec.bugRequiresTso) {
      EXPECT_TRUE(spec.hasKnownBug) << spec.name;
      EXPECT_EQ(spec.family, "weakmem") << spec.name;
    }
  }
  EXPECT_EQ(corpus.front().id, 1);
  EXPECT_EQ(corpus.back().id, 87);
}

TEST(Registry, LookupByNameAndFamily) {
  EXPECT_NE(programs::byName("disjoint-lock-2"), nullptr);
  EXPECT_EQ(programs::byName("no-such-benchmark"), nullptr);
  EXPECT_FALSE(programs::byFamily("deadlock").empty());
  for (const auto* spec : programs::byFamily("deadlock")) {
    EXPECT_TRUE(spec->hasKnownBug);
  }
}

class CorpusSweep : public ::testing::TestWithParam<int> {};

TEST_P(CorpusSweep, CountingChainAndTheoremsHold) {
  const auto& spec = programs::all()[static_cast<std::size_t>(GetParam())];

  explore::ExplorerOptions options;
  options.scheduleLimit = 1500;
  options.maxEventsPerSchedule = 4096;
  options.checkTheorems = true;
  explore::DporExplorer explorer(options, explore::DporOptions{});
  const auto result = explorer.explore(spec.body);

  // Every benchmark must actually run: schedules executed, events committed,
  // and no API usage errors.
  EXPECT_GT(result.schedulesExecuted, 0u) << spec.name;
  EXPECT_GT(result.totalEvents, 0u) << spec.name;
  for (const auto& v : result.violations) {
    EXPECT_NE(v.kind, runtime::Outcome::UsageError) << spec.name << ": " << v.message;
  }

  // The paper's §3 counting chain.
  core::BenchmarkCounts counts;
  counts.name = spec.name;
  counts.schedules = result.schedulesExecuted;
  counts.hbrs = result.distinctHbrs;
  counts.lazyHbrs = result.distinctLazyHbrs;
  counts.states = result.distinctStates;
  EXPECT_EQ(core::checkCountingChain(counts, options.scheduleLimit), "") << spec.name;

  // Theorems 2.1 and 2.2 on every terminal schedule seen.
  EXPECT_EQ(result.theorem21.conflicts, 0u) << spec.name;
  EXPECT_EQ(result.theorem22.conflicts, 0u) << spec.name;

  // Bug classification: known-buggy benchmarks must reveal a violation
  // within the budget; sound benchmarks must not. A bugRequiresTso bug is
  // unreachable under this sweep's SC exploration by definition — finding
  // one here would falsify the memory-model split.
  if (spec.hasKnownBug && !spec.bugRequiresTso) {
    EXPECT_TRUE(result.foundViolation()) << spec.name << " bug not found";
  } else {
    EXPECT_FALSE(result.foundViolation())
        << spec.name << " unexpected violation: "
        << (result.violations.empty() ? "" : result.violations.front().message);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CorpusSweep, ::testing::Range(0, 87),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string name = programs::all()[static_cast<std::size_t>(info.param)].name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The same sweep under TSO, over the weak-memory family: the unfenced
// litmus variants must reveal their violation (which the SC sweep above
// just proved unreachable), the fenced variants must stay violation-free,
// and the counting chain and theorem checkers must hold on TSO executions
// exactly as on SC ones.
class WeakMemTsoSweep : public ::testing::TestWithParam<int> {};

TEST_P(WeakMemTsoSweep, TsoBugClassificationAndChainsHold) {
  const auto weakmem = programs::byFamily("weakmem");
  const auto& spec = *weakmem[static_cast<std::size_t>(GetParam())];

  explore::ExplorerOptions options;
  options.scheduleLimit = 1500;
  options.maxEventsPerSchedule = 4096;
  options.checkTheorems = true;
  options.memoryModel = memory::MemoryModel::Tso;
  explore::DporExplorer explorer(options, explore::DporOptions{});
  const auto result = explorer.explore(spec.body);

  EXPECT_GT(result.schedulesExecuted, 0u) << spec.name;
  EXPECT_TRUE(result.complete) << spec.name;
  for (const auto& v : result.violations) {
    EXPECT_NE(v.kind, runtime::Outcome::UsageError) << spec.name << ": " << v.message;
  }

  core::BenchmarkCounts counts;
  counts.name = spec.name;
  counts.schedules = result.schedulesExecuted;
  counts.hbrs = result.distinctHbrs;
  counts.lazyHbrs = result.distinctLazyHbrs;
  counts.states = result.distinctStates;
  EXPECT_EQ(core::checkCountingChain(counts, options.scheduleLimit), "") << spec.name;
  EXPECT_EQ(result.theorem21.conflicts, 0u) << spec.name;
  EXPECT_EQ(result.theorem22.conflicts, 0u) << spec.name;

  if (spec.hasKnownBug) {
    EXPECT_TRUE(result.foundViolation()) << spec.name << " TSO bug not found";
  } else {
    EXPECT_FALSE(result.foundViolation())
        << spec.name << " unexpected violation under TSO: "
        << (result.violations.empty() ? "" : result.violations.front().message);
  }
}

INSTANTIATE_TEST_SUITE_P(
    WeakMemFamily, WeakMemTsoSweep, ::testing::Range(0, 8),
    [](const ::testing::TestParamInfo<int>& info) {
      std::string name =
          programs::byFamily("weakmem")[static_cast<std::size_t>(info.param)]->name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
