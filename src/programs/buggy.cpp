// Known-buggy benchmarks: assertion failures, atomicity violations, lost
// signals and deadlocks, modelled on the classic SCT bug suites (Inspect /
// SV-COMP / SCTBench: reorder, twostage, wronglock, stateful01, airline...).
// They keep the corpus honest: a partial-order reduction must find every one
// of these violations while exploring fewer schedules, and the test suite
// asserts exactly that.

#include <memory>
#include <vector>

#include "programs/registry.hpp"
#include "runtime/api.hpp"

namespace lazyhb::programs::detail {

namespace {

using namespace lazyhb;

/// AB–BA deadlock between two threads.
explore::Program deadlockAb() {
  return [] {
    Mutex a("a");
    Mutex b("b");
    auto t = spawn([&] {
      LockGuard first(b);
      LockGuard second(a);
    });
    {
      LockGuard first(a);
      LockGuard second(b);
    }
    t.join();
  };
}

/// Circular lock acquisition over a ring of three mutexes.
explore::Program deadlockRing(int size) {
  return [size] {
    std::vector<std::unique_ptr<Mutex>> locks;
    for (int i = 0; i < size; ++i) {
      locks.push_back(std::make_unique<Mutex>("ring"));
    }
    std::vector<ThreadHandle> workers;
    for (int i = 0; i < size; ++i) {
      workers.push_back(spawn([&, i] {
        LockGuard mine(*locks[static_cast<std::size_t>(i)]);
        LockGuard next(*locks[static_cast<std::size_t>((i + 1) % size)]);
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// "wronglock": threads believe they protect the counter, but each uses a
/// different mutex — a lost update slips through.
explore::Program wrongLock(int threads) {
  return [threads] {
    std::vector<std::unique_ptr<Mutex>> locks;
    for (int i = 0; i < threads; ++i) {
      locks.push_back(std::make_unique<Mutex>("wrong"));
    }
    Shared<int> counter{0, "counter"};
    std::vector<ThreadHandle> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push_back(spawn([&, i] {
        LockGuard guard(*locks[static_cast<std::size_t>(i)]);  // wrong mutex!
        counter.store(counter.load() + 1);
      }));
    }
    for (auto& w : workers) w.join();
    checkAlways(counter.load() == threads, "no update lost");
  };
}

/// Atomicity violation: the check and the act are each locked, but the lock
/// is dropped in between.
explore::Program checkThenAct() {
  return [] {
    Mutex m("m");
    Shared<int> slot{0, "slot"};
    auto claim = [&](int who) {
      bool free = false;
      {
        LockGuard guard(m);
        free = slot.load() == 0;
      }
      // BUG: the state can change here.
      if (free) {
        LockGuard guard(m);
        checkAlways(slot.load() == 0, "slot still free when claimed");
        slot.store(who);
      }
    };
    auto t = spawn([&] { claim(2); });
    claim(1);
    t.join();
  };
}

/// Airline: sellers oversell the last seat because the seat check and the
/// sale are not atomic.
explore::Program airline(int sellers, int seats) {
  return [sellers, seats] {
    Mutex m("sales");
    Shared<int> sold{0, "sold"};
    std::vector<ThreadHandle> workers;
    for (int s = 0; s < sellers; ++s) {
      workers.push_back(spawn([&, seats] {
        const bool available = sold.load() < seats;  // unprotected check
        if (available) {
          LockGuard guard(m);
          sold.store(sold.load() + 1);
        }
      }));
    }
    for (auto& w : workers) w.join();
    checkAlways(sold.load() <= seats, "no overselling");
  };
}

/// SV-COMP "reorder": the author meant to publish data before the flag but
/// wrote the stores in the wrong order.
explore::Program reorder(int checkers) {
  return [checkers] {
    Shared<int> data{0, "data"};
    Shared<int> flag{0, "flag"};
    std::vector<ThreadHandle> workers;
    workers.push_back(spawn([&] {
      flag.store(1);  // BUG: flag published before data
      data.store(1);
    }));
    for (int c = 0; c < checkers; ++c) {
      workers.push_back(spawn([&] {
        if (flag.load() == 1) {
          checkAlways(data.load() == 1, "flag implies data");
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// "twostage": a value and its cached copy are updated under two different
/// locks, and a reader can observe the window between the stages.
explore::Program twoStage() {
  return [] {
    Mutex l1("l1");
    Mutex l2("l2");
    Shared<int> data{0, "data"};
    Shared<int> cache{0, "cache"};
    auto t = spawn([&] {
      {
        LockGuard guard(l1);
        data.store(1);
      }
      // BUG: data and cache are momentarily inconsistent here.
      {
        LockGuard guard(l2);
        cache.store(1);
      }
    });
    int d = 0;
    int c = 0;
    {
      LockGuard guard(l1);
      d = data.load();
    }
    // The writer can be between its stages right here.
    {
      LockGuard guard(l2);
      c = cache.load();
    }
    checkAlways(!(d == 1 && c == 0), "cache keeps up with data");
    t.join();
  };
}

/// "stateful01": two lock-protected updates that do not commute; the final
/// assertion bakes in one order.
explore::Program stateful() {
  return [] {
    Mutex m("m");
    Shared<int> x{0, "x"};
    auto t = spawn([&] {
      LockGuard guard(m);
      x.store(x.load() + 1);
    });
    {
      LockGuard guard(m);
      x.store(x.load() * 2);
    }
    t.join();
    // Only the (+1 then *2) order yields 2; the other order yields 1.
    checkAlways(x.load() == 2, "assumed increment-then-double order");
  };
}

/// Lost signal: the waiter does not re-check a predicate, so a signal sent
/// before the wait deadlocks the waiter.
explore::Program lostSignal() {
  return [] {
    Mutex m("m");
    CondVar cv("cv");
    auto waiter = spawn([&] {
      LockGuard guard(m);
      cv.wait(m);  // BUG: no predicate loop
    });
    {
      LockGuard guard(m);
      cv.signal();
    }
    waiter.join();
  };
}

/// Unordered dining philosophers: both grab their left fork first.
explore::Program diningDeadlock(int philosophers) {
  return [philosophers] {
    std::vector<std::unique_ptr<Mutex>> forks;
    for (int i = 0; i < philosophers; ++i) {
      forks.push_back(std::make_unique<Mutex>("fork"));
    }
    std::vector<ThreadHandle> workers;
    for (int i = 0; i < philosophers; ++i) {
      workers.push_back(spawn([&, i] {
        LockGuard left(*forks[static_cast<std::size_t>(i)]);
        LockGuard right(*forks[static_cast<std::size_t>((i + 1) % philosophers)]);
      }));
    }
    for (auto& w : workers) w.join();
  };
}

}  // namespace

// Self-registration at rank kBuggyRank (last of the corpus). Every
// scenario here has a reachable violation; the bodies deliberately keep
// heap-based std::vector state, exercising the non-checkpointable
// (re-execution) incremental path.
#define LAZYHB_BUGGY(name, family, description, body)                      \
  [[maybe_unused]] static const ::lazyhb::programs::detail::          \
      CorpusRegistrar LAZYHB_SCENARIO_CAT(lazyhbCorpusRegistrar_,     \
                                          __COUNTER__){               \
          name, family, description, (body),                          \
          /*hasKnownBug=*/true, /*checkpointable=*/false, kBuggyRank}

LAZYHB_BUGGY("deadlock-ab", "deadlock", "AB-BA deadlock", deadlockAb());
LAZYHB_BUGGY("deadlock-ring-3", "deadlock", "3-mutex circular wait", deadlockRing(3));
LAZYHB_BUGGY("dining-deadlock-2", "deadlock",
             "2 philosophers, unordered forks", diningDeadlock(2));
LAZYHB_BUGGY("dining-deadlock-3", "deadlock",
             "3 philosophers, unordered forks", diningDeadlock(3));
LAZYHB_BUGGY("wronglock-2", "wronglock",
             "2 threads guard one var with 2 mutexes", wrongLock(2));
LAZYHB_BUGGY("wronglock-3", "wronglock",
             "3 threads guard one var with 3 mutexes", wrongLock(3));
LAZYHB_BUGGY("check-then-act", "atomicity",
             "lock dropped between check and act", checkThenAct());
LAZYHB_BUGGY("airline-2", "airline",
             "2 sellers, 1 seat, unprotected check", airline(2, 1));
LAZYHB_BUGGY("airline-3", "airline",
             "3 sellers, 2 seats, unprotected check", airline(3, 2));
LAZYHB_BUGGY("reorder-1", "reorder",
             "flag published before data, 1 checker", reorder(1));
LAZYHB_BUGGY("twostage", "twostage",
             "two-lock staged update, visible window", twoStage());
LAZYHB_BUGGY("stateful01", "stateful", "non-commutative locked updates", stateful());
LAZYHB_BUGGY("lost-signal", "lost-signal", "wait without predicate loop", lostSignal());

void linkBuggyScenarios() {}

}  // namespace lazyhb::programs::detail
