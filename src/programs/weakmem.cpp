// Weak-memory litmus benchmarks (ids 80..87): programs whose behaviour is
// store-buffer sensitive. Each classic mutual-exclusion first attempt comes
// in an unfenced variant — correct under sequential consistency, broken
// under TSO, where a write parks in the per-thread store buffer while the
// cross-thread read runs ahead of it — and a fenced variant that drains the
// buffer with lazyhb::fence() at the store->load boundary and is correct
// under both models. The unfenced variants carry bugRequiresTso: the test
// suite asserts SC exploration never reaches their violations and TSO
// exploration always does, which pins the store-buffer semantics from both
// sides. All bodies are bounded (single-attempt entries, no spin loops) and
// satisfy the checkpointable contract.

#include "programs/registry.hpp"
#include "runtime/api.hpp"

namespace lazyhb::programs::detail {

namespace {

using namespace lazyhb;

/// The store-buffering litmus (SB): each thread stores its flag, then reads
/// the other's. r0 == r1 == 0 requires both loads to overtake the sibling
/// store — impossible under SC, routine under TSO. `fenced` drains the
/// buffer between the store and the load.
explore::Program storeBuffering(bool fenced) {
  return [fenced] {
    Shared<int> x{0, "x"};
    Shared<int> y{0, "y"};
    Shared<int> r0{-1, "r0"};
    Shared<int> r1{-1, "r1"};
    auto t = spawn([&] {
      y.store(1);
      if (fenced) fence();
      r1.store(x.load());
    });
    x.store(1);
    if (fenced) fence();
    r0.store(y.load());
    t.join();
    checkAlways(r0.load() == 1 || r1.load() == 1,
                "store buffering: some thread sees the other's store");
  };
}

/// Dekker's first attempt, one entry try per thread: raise my flag, enter
/// only when the other flag still reads 0. SC forbids both entering (each
/// raise is program-ordered before the sibling read); TSO lets both flags
/// hide in store buffers while both reads see 0.
explore::Program dekker(bool fenced) {
  return [fenced] {
    Shared<int> flag0{0, "flag0"};
    Shared<int> flag1{0, "flag1"};
    Shared<int> entered0{0, "entered0"};
    Shared<int> entered1{0, "entered1"};
    auto t = spawn([&] {
      flag1.store(1);
      if (fenced) fence();
      if (flag0.load() == 0) entered1.store(1);
    });
    flag0.store(1);
    if (fenced) fence();
    if (flag1.load() == 0) entered0.store(1);
    t.join();
    checkAlways(entered0.load() + entered1.load() <= 1,
                "dekker: at most one thread enters the critical section");
  };
}

/// Peterson's algorithm, one bounded entry attempt per thread (enter only
/// when the exit condition already holds instead of spinning). Correct
/// under SC even without fences; under TSO the unfenced variant lets both
/// intent flags sit buffered while both threads read the other's flag as 0
/// and enter together.
explore::Program peterson(bool fenced) {
  return [fenced] {
    Shared<int> flag0{0, "flag0"};
    Shared<int> flag1{0, "flag1"};
    Shared<int> turn{0, "turn"};
    Shared<int> entered0{0, "entered0"};
    Shared<int> entered1{0, "entered1"};
    auto t = spawn([&] {
      flag1.store(1);
      turn.store(0);
      if (fenced) fence();
      if (flag0.load() == 0 || turn.load() == 1) entered1.store(1);
    });
    flag0.store(1);
    turn.store(1);
    if (fenced) fence();
    if (flag1.load() == 0 || turn.load() == 0) entered0.store(1);
    t.join();
    checkAlways(entered0.load() + entered1.load() <= 1,
                "peterson: at most one thread enters the critical section");
  };
}

/// Correctly fenced seqlock, one writer pass and one bounded reader
/// attempt: the writer brackets the data writes with seq 1 (odd) and
/// seq 2; the reader accepts only a stable even seq. Violation-free under
/// both models — the safe witness next to the buggy litmus variants.
explore::Program seqlockWitness() {
  return [] {
    Shared<int> seq{0, "seq"};
    Shared<int> data1{0, "data1"};
    Shared<int> data2{0, "data2"};
    auto writer = spawn([&] {
      seq.store(1);
      fence();
      data1.store(1);
      data2.store(1);
      fence();
      seq.store(2);
    });
    const int s1 = seq.load();
    if (s1 % 2 == 0) {
      const int d1 = data1.load();
      const int d2 = data2.load();
      const int s2 = seq.load();
      if (s1 == s2) {
        checkAlways(d1 == d2, "seqlock: stable even seq implies consistent data");
      }
    }
    writer.join();
    checkAlways(data1.load() == 1 && data2.load() == 1, "writer completed");
  };
}

/// Store-to-load forwarding witness: a thread that just stored x must read
/// its own value (from the store buffer under TSO, from memory under SC) —
/// never the stale initial 0 — whatever the concurrent writer does.
explore::Program storeForwarding() {
  return [] {
    Shared<int> x{0, "x"};
    Shared<int> seen{-1, "seen"};
    auto t = spawn([&] { x.store(2); });
    x.store(1);
    seen.store(x.load());
    t.join();
    checkAlways(seen.load() != 0,
                "store forwarding: own store is never invisible to own load");
  };
}

}  // namespace

// Self-registration at kWeakMemRank (ids 80..87). The unfenced litmus
// variants are the corpus' only bugRequiresTso members.
#define LAZYHB_WEAKMEM(name, description, body, hasBug, requiresTso)   \
  [[maybe_unused]] static const ::lazyhb::programs::detail::           \
      CorpusRegistrar LAZYHB_SCENARIO_CAT(lazyhbCorpusRegistrar_,      \
                                          __COUNTER__){                \
          name, "weakmem", description, (body),                        \
          /*hasKnownBug=*/hasBug, /*checkpointable=*/true,             \
          kWeakMemRank, /*bugRequiresTso=*/requiresTso}

LAZYHB_WEAKMEM("sb-unfenced", "store-buffering litmus, no fences",
               storeBuffering(false), true, true);
LAZYHB_WEAKMEM("sb-fenced", "store-buffering litmus, fenced",
               storeBuffering(true), false, false);
LAZYHB_WEAKMEM("dekker-unfenced", "Dekker first attempt, no fences",
               dekker(false), true, true);
LAZYHB_WEAKMEM("dekker-fenced", "Dekker first attempt, fenced",
               dekker(true), false, false);
LAZYHB_WEAKMEM("peterson-unfenced", "Peterson single attempt, no fences",
               peterson(false), true, true);
LAZYHB_WEAKMEM("peterson-fenced", "Peterson single attempt, fenced",
               peterson(true), false, false);
LAZYHB_WEAKMEM("seqlock-fenced", "fenced seqlock, single reader attempt",
               seqlockWitness(), false, false);
LAZYHB_WEAKMEM("store-forwarding", "own store visible to own load",
               storeForwarding(), false, false);

void linkWeakMemScenarios() {}

}  // namespace lazyhb::programs::detail
