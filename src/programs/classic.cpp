// Shared-variable (lock-free) benchmarks: mutual-exclusion algorithms,
// litmus tests and racy counters. These have no (or few) mutex operations,
// so the lazy HBR coincides with the regular HBR — they populate the
// diagonal of Figure 2 and keep the corpus honest about where the lazy HBR
// does NOT help.


#include "programs/registry.hpp"
#include "runtime/api.hpp"

namespace lazyhb::programs::detail {

namespace {

using namespace lazyhb;

/// Unsynchronised load+store increments: the classic lost-update race.
explore::Program racyCounter(int threads) {
  return [threads] {
    Shared<int> counter{0, "counter"};
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&] {
        const int v = counter.load();
        counter.store(v + 1);
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Dekker's mutual-exclusion algorithm (2 threads), with bounded retries so
/// every schedule terminates. Asserts mutual exclusion of the critical
/// section (holds under sequential consistency, which this engine models).
explore::Program dekker() {
  return [] {
    Shared<int> flag0{0, "flag0"};
    Shared<int> flag1{0, "flag1"};
    Shared<int> turn{0, "turn"};
    Shared<int> inCritical{0, "inCritical"};
    auto contender = [&](int me, Shared<int>& myFlag, Shared<int>& otherFlag) {
      myFlag.store(1);
      for (int tries = 0; tries < 2 && otherFlag.load() == 1; ++tries) {
        if (turn.load() != me) {
          myFlag.store(0);
          while (turn.load() != me && tries < 2) ++tries;  // bounded spin
          myFlag.store(1);
        }
      }
      if (otherFlag.load() == 0) {  // entered the critical section
        inCritical.store(inCritical.load() + 1);
        checkAlways(inCritical.load() == 1, "mutual exclusion");
        inCritical.store(inCritical.load() - 1);
      }
      turn.store(1 - me);
      myFlag.store(0);
    };
    auto t1 = spawn([&] { contender(1, flag1, flag0); });
    contender(0, flag0, flag1);
    t1.join();
  };
}

/// Peterson's algorithm (2 threads) with a bounded busy-wait.
explore::Program peterson() {
  return [] {
    Shared<int> flag0{0, "flag0"};
    Shared<int> flag1{0, "flag1"};
    Shared<int> victim{0, "victim"};
    Shared<int> inCritical{0, "inCritical"};
    auto contender = [&](int me, Shared<int>& myFlag, Shared<int>& otherFlag) {
      myFlag.store(1);
      victim.store(me);
      // Bounded spin: give up the attempt after a few observations rather
      // than spinning unboundedly (keeps the schedule space finite).
      bool entered = false;
      for (int tries = 0; tries < 3; ++tries) {
        if (otherFlag.load() == 0 || victim.load() != me) {
          entered = true;
          break;
        }
      }
      if (entered) {
        inCritical.store(inCritical.load() + 1);
        checkAlways(inCritical.load() == 1, "mutual exclusion");
        inCritical.store(inCritical.load() - 1);
      }
      myFlag.store(0);
    };
    auto t1 = spawn([&] { contender(1, flag1, flag0); });
    contender(0, flag0, flag1);
    t1.join();
  };
}

/// Store-buffering litmus (SB): under sequential consistency at least one
/// thread observes the other's store, so (r0,r1) == (0,0) is unreachable;
/// the assertion documents that this engine is SC.
explore::Program litmusStoreBuffer() {
  return [] {
    Shared<int> x{0, "x"};
    Shared<int> y{0, "y"};
    Shared<int> r0{-1, "r0"};
    Shared<int> r1{-1, "r1"};
    auto t1 = spawn([&] {
      x.store(1);
      r0.store(y.load());
    });
    y.store(1);
    r1.store(x.load());
    t1.join();
    checkAlways(!(r0.load() == 0 && r1.load() == 0), "SC forbids 0/0");
  };
}

/// Message-passing litmus (MP): data is published before the flag, so a
/// reader that sees the flag must see the data (holds under SC).
explore::Program litmusMessagePassing() {
  return [] {
    Shared<int> data{0, "data"};
    Shared<int> flag{0, "flag"};
    auto reader = spawn([&] {
      if (flag.load() == 1) {
        checkAlways(data.load() == 99, "flag implies data");
      }
    });
    data.store(99);
    flag.store(1);
    reader.join();
  };
}

/// Each thread raises its own flag then counts the flags it can see: a
/// wide racy read fan-in with many distinct HBRs and states.
explore::Program sharedFlags(int threads) {
  return [threads] {
    InlineVec<Shared<int>, 8> flags;
    InlineVec<Shared<int>, 8> seen;
    for (int i = 0; i < threads; ++i) {
      flags.emplace(0, "flag");
      seen.emplace(0, "seen");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, i] {
        flags[static_cast<std::size_t>(i)].store(1);
        int count = 0;
        for (int j = 0; j < threads; ++j) {
          count += flags[static_cast<std::size_t>(j)].load();
        }
        seen[static_cast<std::size_t>(i)].store(count);
        checkAlways(count >= 1, "a thread always sees its own flag");
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// SCTBench-style "lastzero": writers fill slots of a small array while a
/// reader scans for the last zero; racy but assertion-free.
explore::Program lastZero(int writers) {
  return [writers] {
    InlineVec<Shared<int>, 8> slots;
    for (int i = 0; i <= writers; ++i) {
      slots.emplace(0, "slot");
    }
    Shared<int> lastSeenZero{-1, "lastZero"};
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 1; i <= writers; ++i) {
      workers.push(spawn([&, i] {
        const auto prev = static_cast<std::size_t>(i - 1);
        slots[static_cast<std::size_t>(i)].store(slots[prev].load() + 1);
      }));
    }
    for (int i = writers; i >= 0; --i) {
      if (slots[static_cast<std::size_t>(i)].load() == 0) {
        lastSeenZero.store(i);
        break;
      }
    }
    for (auto& w : workers) w.join();
  };
}

/// A pure fork/join computation tree (a thread spawns grandchildren):
/// exercises nested spawn identity and join edges; almost fully ordered.
explore::Program forkTree() {
  return [] {
    Shared<int> sum{0, "sum"};
    auto left = spawn([&] {
      auto leftLeft = spawn([&] { sum.fetchAdd(1); });
      auto leftRight = spawn([&] { sum.fetchAdd(2); });
      leftLeft.join();
      leftRight.join();
    });
    auto right = spawn([&] { sum.fetchAdd(4); });
    left.join();
    right.join();
    checkAlways(sum.load() == 7, "tree sums to 7");
  };
}

/// A nearly sequential program: one child doing one write. Lands at (1,1)
/// in Figure 2 — the degenerate sanity point.
explore::Program quiet() {
  return [] {
    Shared<int> x{0, "x"};
    auto t = spawn([&] { x.store(1); });
    t.join();
    checkAlways(x.load() == 1, "write visible after join");
  };
}

/// Two phases of racy writers separated by a full join barrier: the fork/
/// join edges cut the HBR count multiplicatively.
explore::Program twoPhase(int threadsPerPhase) {
  return [threadsPerPhase] {
    Shared<int> phase1{0, "phase1"};
    Shared<int> phase2{0, "phase2"};
    InlineVec<ThreadHandle, 8> wave1;
    for (int i = 0; i < threadsPerPhase; ++i) {
      wave1.push(spawn([&] { phase1.fetchAdd(1); }));
    }
    for (auto& w : wave1) w.join();
    InlineVec<ThreadHandle, 8> wave2;
    for (int i = 0; i < threadsPerPhase; ++i) {
      wave2.push(spawn([&] { phase2.fetchAdd(phase1.load()); }));
    }
    for (auto& w : wave2) w.join();
  };
}

}  // namespace

// Self-registration at rank kClassicRank (after the locking family);
// bodies use InlineVec, so every one satisfies the checkpointable
// contract.
#define LAZYHB_CLASSIC(name, family, description, body)                      \
  [[maybe_unused]] static const ::lazyhb::programs::detail::          \
      CorpusRegistrar LAZYHB_SCENARIO_CAT(lazyhbCorpusRegistrar_,     \
                                          __COUNTER__){               \
          name, family, description, (body),                          \
          /*hasKnownBug=*/false, /*checkpointable=*/true, kClassicRank}

LAZYHB_CLASSIC("racy-counter-3", "racy-counter",
               "3 unsynchronised increments", racyCounter(3));
LAZYHB_CLASSIC("racy-counter-4", "racy-counter",
               "4 unsynchronised increments", racyCounter(4));
LAZYHB_CLASSIC("dekker", "mutex-algo", "Dekker's algorithm, bounded spins", dekker());
LAZYHB_CLASSIC("peterson", "mutex-algo",
               "Peterson's algorithm, bounded spins", peterson());
LAZYHB_CLASSIC("litmus-sb", "litmus",
               "store buffering (SC: 0/0 unreachable)", litmusStoreBuffer());
LAZYHB_CLASSIC("litmus-mp", "litmus",
               "message passing (SC: flag implies data)", litmusMessagePassing());
LAZYHB_CLASSIC("shared-flags-3", "shared-flags",
               "3 threads raise and count flags", sharedFlags(3));
LAZYHB_CLASSIC("lastzero-3", "lastzero", "3 writers vs array scanner", lastZero(3));
LAZYHB_CLASSIC("fork-tree", "fork-join", "nested spawn/join tree", forkTree());
LAZYHB_CLASSIC("quiet", "fork-join",
               "single child, single write (sanity point)", quiet());
LAZYHB_CLASSIC("two-phase-2", "fork-join",
               "2+2 racy writers with a join barrier", twoPhase(2));

void linkClassicScenarios() {}

}  // namespace lazyhb::programs::detail
