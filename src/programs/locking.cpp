// Coarse- and fine-grained locking benchmarks.
//
// These are the programs the lazy HBR was invented for: well-engineered code
// that guards data with a simple (often single-mutex) locking discipline.
// The regular HBR must explore every ordering of the critical sections; the
// lazy HBR recognises that critical sections over disjoint (or read-only)
// data commute.


#include "programs/registry.hpp"
#include "runtime/api.hpp"

namespace lazyhb::programs::detail {

namespace {

using namespace lazyhb;

/// N threads; thread i performs `reps` writes to its OWN variable, each
/// write inside the same global critical section. All interleavings reach
/// one state; the lazy HBR proves it (1 class), the regular HBR cannot
/// (one class per critical-section ordering).
explore::Program disjointLock(int threads, int reps) {
  return [threads, reps] {
    Mutex m("g");
    InlineVec<Shared<int>, 8> vars;
    for (int i = 0; i < threads; ++i) {
      vars.emplace(0, "v");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, i] {
        for (int r = 0; r < reps; ++r) {
          LockGuard guard(m);
          vars[static_cast<std::size_t>(i)].store(r + 1);
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// N threads read a shared configuration value under the global lock —
/// read-only critical sections, the other pattern the paper calls out.
explore::Program readonlyLock(int threads, int reps = 1) {
  return [threads, reps] {
    Mutex m("g");
    Shared<int> config{42, "config"};
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, reps] {
        for (int r = 0; r < reps; ++r) {
          LockGuard guard(m);
          checkAlways(config.load() == 42, "config is constant");
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// The indexer rewritten with a single coarse table lock: threads insert
/// into *distinct* buckets, but every insert serialises on the one lock.
/// This is exactly the "well-engineered coarse locking" regime the paper
/// targets: many HBR classes, one lazy class.
explore::Program indexerCoarse(int threads, int insertsPerThread) {
  return [threads, insertsPerThread] {
    Mutex tableLock("table");
    InlineVec<Shared<int>, 8> table;
    for (int i = 0; i < threads * insertsPerThread; ++i) {
      table.emplace(0, "bucket");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int t = 0; t < threads; ++t) {
      workers.push(spawn([&, t] {
        for (int k = 0; k < insertsPerThread; ++k) {
          LockGuard guard(tableLock);
          table[static_cast<std::size_t>(t * insertsPerThread + k)].store(t + 1);
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Mutex noise plus a genuinely racy counter: each thread takes `noise`
/// empty critical sections (pure lock/unlock — the lazy HBR erases all of
/// them) and then performs one unsynchronised load+store increment (real
/// lazy-class variety: orderings and lost updates). Regular HBR caching
/// burns its schedule budget distinguishing noise orderings; lazy HBR
/// caching spends the same budget covering distinct racy outcomes — the
/// Figure 3 effect in its purest form.
explore::Program noisyCounter(int threads, int noise) {
  return [threads, noise] {
    Mutex m("noise");
    Shared<int> counter{0, "counter"};
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, noise] {
        // Racy variety first, noise second: depth-first search backtracks
        // deepest choices first, so a budgeted regular-HBR-caching run
        // exhausts itself re-ordering the (lazy-equivalent) critical
        // sections below each racy outcome before it ever flips the racy
        // choices themselves. Lazy caching prunes each noise re-ordering
        // immediately and spends the budget on genuinely new outcomes.
        const int seen = counter.load();
        counter.store(seen + 1);
        for (int k = 0; k < noise; ++k) {
          LockGuard guard(m);  // empty critical section
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Noisy flags: each thread raises its flag, counts the flags it sees
/// (racy read fan-in — wide genuine variety), then takes `noise` empty
/// critical sections. Mixed-regime benchmark for Figure 3, like
/// noisyCounter but with a larger lazy-class population.
explore::Program noisyFlags(int threads, int noise) {
  return [threads, noise] {
    Mutex m("noise");
    InlineVec<Shared<int>, 8> flags;
    InlineVec<Shared<int>, 8> seen;
    for (int i = 0; i < threads; ++i) {
      flags.emplace(0, "flag");
      seen.emplace(0, "seen");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, i, noise] {
        flags[static_cast<std::size_t>(i)].store(1);
        int count = 0;
        for (int j = 0; j < threads; ++j) {
          count += flags[static_cast<std::size_t>(j)].load();
        }
        seen[static_cast<std::size_t>(i)].store(count);
        for (int k = 0; k < noise; ++k) {
          LockGuard guard(m);  // empty critical section
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// N threads increment one shared counter under the global lock. The writes
/// conflict, so even the lazy HBR keeps every ordering: a diagonal point in
/// Figure 2 — included so the corpus does not overstate the reduction.
explore::Program counterLock(int threads) {
  return [threads] {
    Mutex m("g");
    Shared<int> counter{0, "counter"};
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&] {
        LockGuard guard(m);
        counter.store(counter.load() + 1);
      }));
    }
    for (auto& w : workers) w.join();
    checkAlways(counter.load() == threads, "all increments applied");
  };
}

/// Bank with one coarse lock; thread i transfers within its own disjoint
/// account pair (2i, 2i+1): commuting critical sections.
explore::Program accountsCoarse(int threads) {
  return [threads] {
    Mutex bankLock("bank");
    InlineVec<Shared<int>, 8> accounts;
    for (int i = 0; i < 2 * threads; ++i) {
      accounts.emplace(100, "acct");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, i] {
        Shared<int>& from = accounts[static_cast<std::size_t>(2 * i)];
        Shared<int>& to = accounts[static_cast<std::size_t>(2 * i + 1)];
        LockGuard guard(bankLock);
        const int amount = 30;
        from.store(from.load() - amount);
        to.store(to.load() + amount);
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Bank with one coarse lock where every transfer touches a common hub
/// account: the data conflicts keep the orderings distinct even under the
/// lazy HBR (partial reduction only through the spectator accounts).
explore::Program accountsShared(int threads) {
  return [threads] {
    Mutex bankLock("bank");
    Shared<int> hub{1000, "hub"};
    InlineVec<Shared<int>, 8> accounts;
    for (int i = 0; i < threads; ++i) {
      accounts.emplace(0, "acct");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, i] {
        LockGuard guard(bankLock);
        hub.store(hub.load() - 10);
        auto& mine = accounts[static_cast<std::size_t>(i)];
        mine.store(mine.load() + 10);
      }));
    }
    for (auto& w : workers) w.join();
    checkAlways(hub.load() == 1000 - 10 * threads, "conservation");
  };
}

/// Flanagan–Godefroid "indexer": threads hash keys into a table with one
/// mutex per bucket. With few threads the hash avoids collisions and all
/// bucket operations are disjoint; the table reads/writes still conflict
/// within a bucket.
explore::Program indexer(int threads, int insertsPerThread, int buckets) {
  return [threads, insertsPerThread, buckets] {
    InlineVec<Mutex, 8> locks;
    InlineVec<Shared<int>, 8> table;
    for (int b = 0; b < buckets; ++b) {
      locks.emplace("bucket-lock");
      table.emplace(0, "bucket");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int t = 0; t < threads; ++t) {
      workers.push(spawn([&, t] {
        for (int k = 0; k < insertsPerThread; ++k) {
          const int key = t * insertsPerThread + k + 1;
          const int bucket = (key * 7) % buckets;
          LockGuard guard(locks[static_cast<std::size_t>(bucket)]);
          auto& slot = table[static_cast<std::size_t>(bucket)];
          if (slot.load() == 0) {
            slot.store(key);
          }
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Flanagan–Godefroid "filesystem": threads pick an inode, lock it, test a
/// busy flag, and if free lock a block and claim both.
explore::Program filesystem(int threads, int inodes, int blocks) {
  return [threads, inodes, blocks] {
    InlineVec<Mutex, 8> inodeLocks;
    InlineVec<Shared<int>, 8> inodeBusy;
    for (int i = 0; i < inodes; ++i) {
      inodeLocks.emplace("inode-lock");
      inodeBusy.emplace(0, "inode");
    }
    InlineVec<Mutex, 8> blockLocks;
    InlineVec<Shared<int>, 8> blockUsed;
    for (int b = 0; b < blocks; ++b) {
      blockLocks.emplace("block-lock");
      blockUsed.emplace(0, "block");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int t = 0; t < threads; ++t) {
      workers.push(spawn([&, t] {
        const auto i = static_cast<std::size_t>(t % inodes);
        LockGuard inodeGuard(inodeLocks[i]);
        if (inodeBusy[i].load() == 0) {
          const auto b = static_cast<std::size_t>((t * 2) % blocks);
          LockGuard blockGuard(blockLocks[b]);
          if (blockUsed[b].load() == 0) {
            blockUsed[b].store(t + 1);
            inodeBusy[i].store(1);
          }
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Fine-grained bank: per-account locks acquired in index order (deadlock
/// free); thread i moves money between its own pair.
explore::Program accountsFine(int threads) {
  return [threads] {
    InlineVec<Mutex, 8> locks;
    InlineVec<Shared<int>, 8> balance;
    for (int i = 0; i < 2 * threads; ++i) {
      locks.emplace("acct-lock");
      balance.emplace(50, "balance");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, i] {
        const auto a = static_cast<std::size_t>(2 * i);
        const auto b = static_cast<std::size_t>(2 * i + 1);
        LockGuard guardA(locks[a]);
        LockGuard guardB(locks[b]);
        balance[a].store(balance[a].load() - 5);
        balance[b].store(balance[b].load() + 5);
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Dining philosophers with ordered fork acquisition (deadlock-free):
/// heavy genuine mutex contention, little lazy reduction on the shared
/// forks but full reduction between non-adjacent philosophers.
explore::Program diningOrdered(int philosophers) {
  return [philosophers] {
    InlineVec<Mutex, 8> forks;
    InlineVec<Shared<int>, 8> meals;
    for (int i = 0; i < philosophers; ++i) {
      forks.emplace("fork");
      meals.emplace(0, "meals");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < philosophers; ++i) {
      workers.push(spawn([&, i] {
        const auto left = static_cast<std::size_t>(i);
        const auto right = static_cast<std::size_t>((i + 1) % philosophers);
        const auto first = left < right ? left : right;
        const auto second = left < right ? right : left;
        LockGuard firstGuard(forks[first]);
        LockGuard secondGuard(forks[second]);
        meals[static_cast<std::size_t>(i)].store(1);
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Locked pipeline: stage i reads value[i-1] and writes value[i], all under
/// one lock. Data flows through a chain, so the lazy HBR keeps the chain
/// order but drops orderings of non-adjacent stages.
explore::Program pipelineLocked(int stages) {
  return [stages] {
    Mutex m("pipe");
    InlineVec<Shared<int>, 8> values;
    for (int i = 0; i <= stages; ++i) {
      values.emplace(i == 0 ? 1 : 0, "stage");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 1; i <= stages; ++i) {
      workers.push(spawn([&, i] {
        LockGuard guard(m);
        const int upstream = values[static_cast<std::size_t>(i - 1)].load();
        values[static_cast<std::size_t>(i)].store(upstream + 1);
      }));
    }
    for (auto& w : workers) w.join();
  };
}

}  // namespace

// The locking corpus registers itself (rank kLockingRank keeps these
// scenarios first in registry order); bodies use InlineVec, so every one
// satisfies the checkpointable contract.
#define LAZYHB_LOCKING(name, family, description, body)                      \
  [[maybe_unused]] static const ::lazyhb::programs::detail::          \
      CorpusRegistrar LAZYHB_SCENARIO_CAT(lazyhbCorpusRegistrar_,     \
                                          __COUNTER__){               \
          name, family, description, (body),                          \
          /*hasKnownBug=*/false, /*checkpointable=*/true, kLockingRank}

LAZYHB_LOCKING("disjoint-lock-2", "disjoint-lock",
               "2 threads, disjoint vars under one lock", disjointLock(2, 1));
LAZYHB_LOCKING("disjoint-lock-3", "disjoint-lock",
               "3 threads, disjoint vars under one lock", disjointLock(3, 1));
LAZYHB_LOCKING("disjoint-lock-4", "disjoint-lock",
               "4 threads, disjoint vars under one lock", disjointLock(4, 1));
LAZYHB_LOCKING("disjoint-lock-2x2", "disjoint-lock",
               "2 threads, 2 critical sections each", disjointLock(2, 2));
LAZYHB_LOCKING("disjoint-lock-3x2", "disjoint-lock",
               "3 threads, 2 critical sections each", disjointLock(3, 2));
LAZYHB_LOCKING("readonly-lock-2", "readonly-lock",
               "2 readers under one lock", readonlyLock(2));
LAZYHB_LOCKING("readonly-lock-3", "readonly-lock",
               "3 readers under one lock", readonlyLock(3));
LAZYHB_LOCKING("readonly-lock-4", "readonly-lock",
               "4 readers under one lock", readonlyLock(4));
LAZYHB_LOCKING("counter-lock-3", "counter-lock",
               "3 threads increment shared counter under lock", counterLock(3));
LAZYHB_LOCKING("noisy-counter-3x1", "noisy-counter",
               "1 empty CS each + racy increment, 3 threads", noisyCounter(3, 1));
LAZYHB_LOCKING("noisy-counter-3x2", "noisy-counter",
               "2 empty CS each + racy increment, 3 threads", noisyCounter(3, 2));
LAZYHB_LOCKING("noisy-counter-3x3", "noisy-counter",
               "3 empty CS each + racy increment, 3 threads", noisyCounter(3, 3));
LAZYHB_LOCKING("noisy-counter-4x1", "noisy-counter",
               "1 empty CS each + racy increment, 4 threads", noisyCounter(4, 1));
LAZYHB_LOCKING("noisy-counter-4x2", "noisy-counter",
               "2 empty CS each + racy increment, 4 threads", noisyCounter(4, 2));
LAZYHB_LOCKING("noisy-flags-3x2", "noisy-counter",
               "flag fan-in + 2 empty CS, 3 threads", noisyFlags(3, 2));
LAZYHB_LOCKING("accounts-coarse-2", "accounts",
               "coarse-locked bank, disjoint transfers", accountsCoarse(2));
LAZYHB_LOCKING("accounts-coarse-3", "accounts",
               "coarse-locked bank, disjoint transfers", accountsCoarse(3));
LAZYHB_LOCKING("accounts-shared-2", "accounts",
               "coarse-locked bank, hub account contended", accountsShared(2));
LAZYHB_LOCKING("accounts-shared-3", "accounts",
               "coarse-locked bank, hub account contended", accountsShared(3));
LAZYHB_LOCKING("accounts-fine-3", "accounts",
               "per-account locks, ordered acquisition", accountsFine(3));
LAZYHB_LOCKING("disjoint-lock-4x2", "disjoint-lock",
               "4 threads, 2 critical sections each", disjointLock(4, 2));
LAZYHB_LOCKING("disjoint-lock-5x2", "disjoint-lock",
               "5 threads, 2 critical sections each", disjointLock(5, 2));
LAZYHB_LOCKING("readonly-lock-2x3", "readonly-lock",
               "2 readers, 3 read-only sections each", readonlyLock(2, 3));
LAZYHB_LOCKING("indexer-2", "indexer",
               "FG indexer, 2 threads x 2 inserts, 3 buckets", indexer(2, 2, 3));
LAZYHB_LOCKING("indexer-3", "indexer",
               "FG indexer, 3 threads x 2 inserts, 3 buckets", indexer(3, 2, 3));
LAZYHB_LOCKING("indexer-coarse-2", "indexer",
               "coarse-locked indexer, 2 threads x 2 inserts", indexerCoarse(2, 2));
LAZYHB_LOCKING("indexer-coarse-3", "indexer",
               "coarse-locked indexer, 3 threads x 2 inserts", indexerCoarse(3, 2));
LAZYHB_LOCKING("filesystem-2", "filesystem",
               "FG filesystem, 2 threads, 1 shared inode", filesystem(2, 1, 4));
LAZYHB_LOCKING("filesystem-3", "filesystem",
               "FG filesystem, 3 threads, 2 inodes", filesystem(3, 2, 4));
LAZYHB_LOCKING("dining-2", "dining",
               "2 dining philosophers, ordered forks", diningOrdered(2));
LAZYHB_LOCKING("dining-3", "dining",
               "3 dining philosophers, ordered forks", diningOrdered(3));
LAZYHB_LOCKING("pipeline-locked-2", "pipeline",
               "2-stage locked pipeline", pipelineLocked(2));
LAZYHB_LOCKING("pipeline-locked-3", "pipeline",
               "3-stage locked pipeline", pipelineLocked(3));

void linkLockingScenarios() {}

}  // namespace lazyhb::programs::detail
