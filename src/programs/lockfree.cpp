// Lock-free and optimistic-synchronisation benchmarks: CAS loops, a
// Treiber-style stack, a seqlock, trylock fallbacks and a miniature
// work-stealing deque. Mutex-free programs sit on the Figure 2 diagonal;
// the trylock programs exercise the conservative retained-edge rule the
// lazy HBR needs for soundness.


#include "programs/registry.hpp"
#include "runtime/api.hpp"

namespace lazyhb::programs::detail {

namespace {

using namespace lazyhb;

/// CAS-retry counter: each thread retries a bounded number of times.
explore::Program casCounter(int threads, int attempts) {
  return [threads, attempts] {
    Shared<int> counter{0, "counter"};
    Shared<int> successes{0, "successes"};
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, attempts] {
        for (int a = 0; a < attempts; ++a) {
          const int seen = counter.load();
          if (counter.compareExchange(seen, seen + 1)) {
            successes.fetchAdd(1);
            break;
          }
        }
      }));
    }
    for (auto& w : workers) w.join();
    checkAlways(counter.load() == successes.load(), "every success counted once");
  };
}

/// Treiber-style stack over a small array: `top` is CAS-managed; pushers
/// write their slot then publish. Bounded retries.
explore::Program treiberStack(int pushers) {
  return [pushers] {
    Shared<int> top{0, "top"};
    InlineVec<Shared<int>, 8> slots;
    for (int i = 0; i <= pushers; ++i) {
      slots.emplace(0, "slot");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int p = 0; p < pushers; ++p) {
      workers.push(spawn([&, p] {
        for (int attempt = 0; attempt < 3; ++attempt) {
          const int oldTop = top.load();
          slots[static_cast<std::size_t>(oldTop + 1) % slots.size()].store(p + 1);
          if (top.compareExchange(oldTop, oldTop + 1)) break;
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Seqlock: writer bumps the sequence to odd, writes, bumps to even;
/// readers retry (bounded) until they see a stable even sequence, then
/// assert consistency of the pair.
explore::Program seqlock(int readers) {
  return [readers] {
    Shared<int> seq{0, "seq"};
    Shared<int> d1{0, "d1"};
    Shared<int> d2{0, "d2"};
    InlineVec<ThreadHandle, 8> workers;
    workers.push(spawn([&] {  // writer
      seq.store(1);
      d1.store(10);
      d2.store(10);
      seq.store(2);
    }));
    for (int r = 0; r < readers; ++r) {
      workers.push(spawn([&] {
        for (int attempt = 0; attempt < 2; ++attempt) {
          const int before = seq.load();
          if (before % 2 != 0) continue;
          const int v1 = d1.load();
          const int v2 = d2.load();
          if (seq.load() == before) {
            checkAlways(v1 == v2, "seqlock read is consistent");
            break;
          }
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Optimistic locking: threads tryLock and take a fallback path on failure;
/// the mutex edges around TryLock stay in the lazy HBR.
explore::Program trylockFallback(int threads) {
  return [threads] {
    Mutex m("opt");
    Shared<int> fast{0, "fast"};
    Shared<int> slow{0, "slow"};
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&] {
        if (m.tryLock()) {
          fast.store(fast.load() + 1);
          m.unlock();
        } else {
          slow.fetchAdd(1);
        }
      }));
    }
    for (auto& w : workers) w.join();
    checkAlways(fast.load() + slow.load() == threads, "every thread took a path");
  };
}

/// Mixed blocking/optimistic: one thread holds the lock for a disjoint
/// write while others poll with tryLock.
explore::Program trylockVsLock() {
  return [] {
    Mutex m("opt");
    Shared<int> guarded{0, "guarded"};
    Shared<int> observedBusy{0, "observedBusy"};
    auto holder = spawn([&] {
      LockGuard guard(m);
      guarded.store(1);
    });
    if (m.tryLock()) {
      guarded.store(guarded.load() + 10);
      m.unlock();
    } else {
      observedBusy.store(1);
    }
    holder.join();
  };
}

/// Miniature work-stealing deque: a two-slot deque, the owner pushes and
/// pops at the bottom, a thief steals from the top with CAS.
explore::Program workStealing() {
  return [] {
    Shared<int> top{0, "top"};
    Shared<int> bottom{0, "bottom"};
    Shared<int> slot0{0, "slot0"};
    Shared<int> slot1{0, "slot1"};
    Shared<int> ownerGot{0, "ownerGot"};
    Shared<int> thiefGot{0, "thiefGot"};

    auto thief = spawn([&] {
      const int t = top.load();
      const int b = bottom.load();
      if (b > t) {
        const int stolen = (t % 2 == 0 ? slot0 : slot1).load();
        if (top.compareExchange(t, t + 1)) {
          thiefGot.store(stolen);
        }
      }
    });

    // Owner: push two tasks, then pop one from the bottom.
    slot0.store(11);
    bottom.store(1);
    slot1.store(22);
    bottom.store(2);
    {
      const int b = bottom.load() - 1;
      bottom.store(b);
      const int t = top.load();
      if (b > t) {
        ownerGot.store((b % 2 == 0 ? slot0 : slot1).load());
      } else if (b == t) {  // race with the thief for the last task
        if (top.compareExchange(t, t + 1)) {
          ownerGot.store((b % 2 == 0 ? slot0 : slot1).load());
        }
        bottom.store(t + 1);
      }
    }
    thief.join();
    checkAlways(ownerGot.load() != thiefGot.load() || ownerGot.load() == 0,
                "a task is not taken twice");
  };
}

/// Flag consensus: threads race to CAS a decision variable from 0 to their
/// id; everyone must then agree on the winner.
explore::Program consensus(int threads) {
  return [threads] {
    Shared<int> decision{0, "decision"};
    InlineVec<Shared<int>, 8> agreed;
    for (int i = 0; i < threads; ++i) {
      agreed.emplace(0, "agreed");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, i] {
        (void)decision.compareExchange(0, i + 1);
        agreed[static_cast<std::size_t>(i)].store(decision.load());
        checkAlways(decision.load() != 0, "a winner exists after any CAS");
      }));
    }
    for (auto& w : workers) w.join();
    for (int i = 1; i < threads; ++i) {
      checkAlways(agreed[0].peek() == agreed[static_cast<std::size_t>(i)].peek(),
                  "all threads agree");
    }
  };
}

}  // namespace

// Self-registration at rank kLockfreeRank; bodies use InlineVec, so
// every one satisfies the checkpointable contract.
#define LAZYHB_LOCKFREE(name, family, description, body)                      \
  [[maybe_unused]] static const ::lazyhb::programs::detail::          \
      CorpusRegistrar LAZYHB_SCENARIO_CAT(lazyhbCorpusRegistrar_,     \
                                          __COUNTER__){               \
          name, family, description, (body),                          \
          /*hasKnownBug=*/false, /*checkpointable=*/true, kLockfreeRank}

LAZYHB_LOCKFREE("cas-counter-3", "cas",
                "3 threads, bounded CAS retry", casCounter(3, 2));
LAZYHB_LOCKFREE("treiber-3", "treiber",
                "Treiber-style stack, 3 pushers", treiberStack(3));
LAZYHB_LOCKFREE("seqlock-2", "seqlock", "seqlock, 2 readers", seqlock(2));
LAZYHB_LOCKFREE("trylock-fallback-2", "trylock",
                "2 threads, trylock or fallback", trylockFallback(2));
LAZYHB_LOCKFREE("trylock-fallback-3", "trylock",
                "3 threads, trylock or fallback", trylockFallback(3));
LAZYHB_LOCKFREE("trylock-vs-lock", "trylock",
                "blocking holder vs polling thread", trylockVsLock());
LAZYHB_LOCKFREE("work-stealing", "wsq", "owner/thief two-slot deque", workStealing());
LAZYHB_LOCKFREE("consensus-2", "consensus", "CAS consensus, 2 threads", consensus(2));
LAZYHB_LOCKFREE("consensus-3", "consensus", "CAS consensus, 3 threads", consensus(3));

void linkLockfreeScenarios() {}

}  // namespace lazyhb::programs::detail
