// Condition-variable and semaphore coordination benchmarks: bounded
// producer/consumer, barriers, ping-pong handoffs, reader–writer locks.
// These mix mutex-protected state (lazy-reducible) with genuine signalling
// order (kept by every relation).


#include "programs/registry.hpp"
#include "runtime/api.hpp"

namespace lazyhb::programs::detail {

namespace {

using namespace lazyhb;

/// Bounded buffer with one mutex and two condvars, `items` items pushed by
/// each producer and popped by consumers (counts matched).
explore::Program producerConsumer(int producers, int consumers, int capacity,
                                  int itemsPerProducer) {
  return [producers, consumers, capacity, itemsPerProducer] {
    Mutex m("buf-lock");
    CondVar notFull("not-full");
    CondVar notEmpty("not-empty");
    Shared<int> count{0, "count"};
    Shared<int> produced{0, "produced"};
    Shared<int> consumed{0, "consumed"};
    const int total = producers * itemsPerProducer;
    const int perConsumer = total / consumers;

    InlineVec<ThreadHandle, 8> workers;
    for (int p = 0; p < producers; ++p) {
      workers.push(spawn([&] {
        for (int i = 0; i < itemsPerProducer; ++i) {
          LockGuard guard(m);
          while (count.load() == capacity) notFull.wait(m);
          count.store(count.load() + 1);
          produced.store(produced.load() + 1);
          notEmpty.signal();
        }
      }));
    }
    for (int c = 0; c < consumers; ++c) {
      workers.push(spawn([&, perConsumer] {
        for (int i = 0; i < perConsumer; ++i) {
          LockGuard guard(m);
          while (count.load() == 0) notEmpty.wait(m);
          count.store(count.load() - 1);
          consumed.store(consumed.load() + 1);
          notFull.signal();
        }
      }));
    }
    for (auto& w : workers) w.join();
    checkAlways(count.load() == 0, "buffer drained");
    checkAlways(consumed.load() == total, "all items consumed");
  };
}

/// Reusable barrier from mutex + condvar (broadcast); after the barrier each
/// thread writes its own variable — the post-barrier writes commute.
explore::Program barrier(int threads) {
  return [threads] {
    Mutex m("barrier-lock");
    CondVar cv("barrier-cv");
    Shared<int> arrived{0, "arrived"};
    InlineVec<Shared<int>, 8> results;
    for (int i = 0; i < threads; ++i) {
      results.emplace(0, "result");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, i] {
        {
          LockGuard guard(m);
          arrived.store(arrived.load() + 1);
          if (arrived.load() == threads) {
            cv.broadcast();
          } else {
            while (arrived.load() < threads) cv.wait(m);
          }
        }
        results[static_cast<std::size_t>(i)].store(i + 1);
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Barrier followed by coarse-locked disjoint work: the barrier orders the
/// arrival phase, then `reps` critical sections per thread over private
/// variables commute — lazy HBR collapses the post-barrier phase.
explore::Program barrierWork(int threads, int reps) {
  return [threads, reps] {
    Mutex barrierLock("barrier-lock");
    CondVar cv("barrier-cv");
    Shared<int> arrived{0, "arrived"};
    Mutex workLock("work-lock");
    InlineVec<Shared<int>, 8> results;
    for (int i = 0; i < threads; ++i) {
      results.emplace(0, "result");
    }
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, i, reps] {
        {
          LockGuard guard(barrierLock);
          arrived.store(arrived.load() + 1);
          if (arrived.load() == threads) {
            cv.broadcast();
          } else {
            while (arrived.load() < threads) cv.wait(barrierLock);
          }
        }
        for (int r = 0; r < reps; ++r) {
          LockGuard guard(workLock);
          results[static_cast<std::size_t>(i)].store(r + 1);
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Two threads strictly alternating via a turn flag and one condvar.
explore::Program pingPong(int rounds) {
  return [rounds] {
    Mutex m("pp-lock");
    CondVar cv("pp-cv");
    Shared<int> turn{0, "turn"};
    Shared<int> rally{0, "rally"};
    auto player = [&](int me) {
      for (int r = 0; r < rounds; ++r) {
        LockGuard guard(m);
        while (turn.load() != me) cv.wait(m);
        rally.store(rally.load() + 1);
        turn.store(1 - me);
        cv.signal();
      }
    };
    auto t = spawn([&] { player(1); });
    player(0);
    t.join();
    checkAlways(rally.load() == 2 * rounds, "every round played");
  };
}

/// Readers–writer lock built from mutex + condvar; `readers` readers check
/// an invariant two writers maintain.
explore::Program readersWriter(int readers) {
  return [readers] {
    Mutex m("rw-lock");
    CondVar cv("rw-cv");
    Shared<int> activeReaders{0, "activeReaders"};
    Shared<int> writerActive{0, "writerActive"};
    Shared<int> a{0, "a"};
    Shared<int> b{0, "b"};

    InlineVec<ThreadHandle, 8> workers;
    workers.push(spawn([&] {  // writer
      {
        LockGuard guard(m);
        while (activeReaders.load() > 0) cv.wait(m);
        writerActive.store(1);
      }
      a.store(1);
      b.store(1);
      {
        LockGuard guard(m);
        writerActive.store(0);
        cv.broadcast();
      }
    }));
    for (int r = 0; r < readers; ++r) {
      workers.push(spawn([&] {
        {
          LockGuard guard(m);
          while (writerActive.load() == 1) cv.wait(m);
          activeReaders.store(activeReaders.load() + 1);
        }
        checkAlways(a.load() == b.load(), "writer is atomic to readers");
        {
          LockGuard guard(m);
          activeReaders.store(activeReaders.load() - 1);
          if (activeReaders.load() == 0) cv.broadcast();
        }
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Semaphore handoff: data published before release must be visible after
/// acquire.
explore::Program semHandoff(int hops) {
  return [hops] {
    Shared<int> data{0, "data"};
    Semaphore ready{0, "ready"};
    auto t = spawn([&] {
      for (int i = 0; i < hops; ++i) {
        data.store(data.load() + 1);
        ready.release();
      }
    });
    for (int i = 0; i < hops; ++i) {
      ready.acquire();
      checkAlways(data.load() >= i + 1, "handoff ordered");
    }
    t.join();
  };
}

/// Semaphore-multiplexed critical section: a counting semaphore admits up to
/// `permits` threads; an occupancy counter asserts the bound.
explore::Program semMultiplex(int threads, int permits) {
  return [threads, permits] {
    Semaphore sem(permits, "permits");
    Shared<int> inside{0, "inside"};
    InlineVec<ThreadHandle, 8> workers;
    for (int i = 0; i < threads; ++i) {
      workers.push(spawn([&, permits] {
        sem.acquire();
        const int occupancy = inside.fetchAdd(1) + 1;
        checkAlways(occupancy <= permits, "semaphore bounds occupancy");
        inside.fetchAdd(-1);
        sem.release();
      }));
    }
    for (auto& w : workers) w.join();
  };
}

/// Rendezvous: each of two threads signals its own semaphore then waits on
/// the other's — both must pass or neither.
explore::Program semRendezvous() {
  return [] {
    Semaphore aArrived(0, "aArrived");
    Semaphore bArrived(0, "bArrived");
    Shared<int> aDone{0, "aDone"};
    Shared<int> bDone{0, "bDone"};
    auto t = spawn([&] {
      bArrived.release();
      aArrived.acquire();
      checkAlways(aDone.load() == 1, "a passed its phase");
      bDone.store(1);
    });
    aDone.store(1);
    aArrived.release();
    bArrived.acquire();
    t.join();
    checkAlways(bDone.load() == 1, "b passed its phase");
  };
}

}  // namespace

// Self-registration at rank kCondvarRank; bodies use InlineVec, so
// every one satisfies the checkpointable contract.
#define LAZYHB_CONDVAR(name, family, description, body)                      \
  [[maybe_unused]] static const ::lazyhb::programs::detail::          \
      CorpusRegistrar LAZYHB_SCENARIO_CAT(lazyhbCorpusRegistrar_,     \
                                          __COUNTER__){               \
          name, family, description, (body),                          \
          /*hasKnownBug=*/false, /*checkpointable=*/true, kCondvarRank}

LAZYHB_CONDVAR("prodcons-1x1", "prodcons",
               "1 producer, 1 consumer, buffer 1", producerConsumer(1, 1, 1, 2));
LAZYHB_CONDVAR("barrier-work-2", "barrier",
               "barrier then coarse-locked disjoint work, 2 threads", barrierWork(2, 2));
LAZYHB_CONDVAR("prodcons-2x2", "prodcons",
               "2 producers, 2 consumers, buffer 1", producerConsumer(2, 2, 1, 1));
LAZYHB_CONDVAR("barrier-2", "barrier", "condvar barrier, 2 parties", barrier(2));
LAZYHB_CONDVAR("barrier-3", "barrier", "condvar barrier, 3 parties", barrier(3));
LAZYHB_CONDVAR("barrier-work-3", "barrier",
               "barrier then coarse-locked disjoint work, 3 threads", barrierWork(3, 1));
LAZYHB_CONDVAR("pingpong-2", "pingpong", "strict alternation, 2 rounds", pingPong(2));
LAZYHB_CONDVAR("readers-writer-1", "rwlock", "1 reader vs 1 writer", readersWriter(1));
LAZYHB_CONDVAR("readers-writer-2", "rwlock", "2 readers vs 1 writer", readersWriter(2));
LAZYHB_CONDVAR("sem-handoff-1", "semaphore", "semaphore handoff, 1 hop", semHandoff(1));
LAZYHB_CONDVAR("sem-handoff-2", "semaphore",
               "semaphore handoff, 2 hops", semHandoff(2));
LAZYHB_CONDVAR("sem-multiplex-3x2", "semaphore",
               "3 threads through 2 permits", semMultiplex(3, 2));
LAZYHB_CONDVAR("sem-rendezvous", "semaphore", "two-way rendezvous", semRendezvous());

void linkCondvarScenarios() {}

}  // namespace lazyhb::programs::detail
