#include "programs/registry.hpp"

#include "support/diagnostics.hpp"

namespace lazyhb::programs {

const std::vector<ProgramSpec>& all() {
  static const std::vector<ProgramSpec> programs = [] {
    std::vector<ProgramSpec> out;
    detail::appendLockingPrograms(out);
    detail::appendClassicPrograms(out);
    detail::appendCondvarPrograms(out);
    detail::appendLockfreePrograms(out);
    detail::appendBuggyPrograms(out);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i].id = static_cast<int>(i) + 1;
    }
    LAZYHB_CHECK(out.size() == 79);  // the paper's corpus size
    return out;
  }();
  return programs;
}

const ProgramSpec* byName(const std::string& name) {
  for (const ProgramSpec& spec : all()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<const ProgramSpec*> byFamily(const std::string& family) {
  std::vector<const ProgramSpec*> out;
  for (const ProgramSpec& spec : all()) {
    if (spec.family == family) out.push_back(&spec);
  }
  return out;
}

}  // namespace lazyhb::programs
