#include "programs/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>
#include <utility>

#include "support/diagnostics.hpp"

namespace lazyhb {
namespace programs::detail {
namespace {

/// One registration awaiting the first enumeration.
struct PendingScenario {
  std::string name;
  std::string family;
  std::string description;
  explore::Program body;
  ScenarioTraits traits;
  std::uint64_t seq = 0;  ///< registration order, the rank tie-breaker
};

std::vector<PendingScenario>& pendingScenarios() {
  static std::vector<PendingScenario> pending;
  return pending;
}

bool& registryLatched() {
  static bool latched = false;
  return latched;
}

}  // namespace
}  // namespace programs::detail

namespace programs::detail {
namespace {

void appendPendingScenario(std::string name, std::string family,
                           std::string description, explore::Program body,
                           ScenarioTraits traits) {
  if (registryLatched()) {
    std::fprintf(stderr,
                 "lazyhb: scenario '%s' registered after the registry was "
                 "enumerated; register scenarios at namespace scope via "
                 "LAZYHB_SCENARIO (static initialization)\n",
                 name.c_str());
    LAZYHB_CHECK(!"late scenario registration");
  }
  auto& pending = pendingScenarios();
  PendingScenario scenario;
  scenario.name = std::move(name);
  scenario.family = std::move(family);
  scenario.description = std::move(description);
  scenario.body = std::move(body);
  scenario.traits = traits;
  scenario.seq = pending.size();
  pending.push_back(std::move(scenario));
}

}  // namespace

void registerCorpusScenario(std::string name, std::string family,
                            std::string description, explore::Program body,
                            bool hasKnownBug, bool checkpointable, int rank,
                            bool bugRequiresTso) {
  ScenarioTraits traits;
  traits.hasKnownBug = hasKnownBug;
  traits.bugRequiresTso = bugRequiresTso;
  traits.checkpointable = checkpointable;
  traits.rank = rank;
  appendPendingScenario(std::move(name), std::move(family),
                        std::move(description), std::move(body), traits);
}

}  // namespace programs::detail

void registerScenario(std::string name, std::string family,
                      std::string description, Program body,
                      ScenarioTraits traits) {
  if (traits.rank < kScenarioUserRank) {
    // Sub-user ranks are reserved for the built-in corpus (they are what
    // keeps corpus ids stable at 1..79); clamp rather than abort — the
    // scenario still registers, just after the corpus.
    std::fprintf(stderr,
                 "lazyhb: scenario '%s' asked for reserved rank %d; using %d "
                 "(ranks below %d belong to the built-in corpus)\n",
                 name.c_str(), traits.rank, kScenarioUserRank,
                 kScenarioUserRank);
    traits.rank = kScenarioUserRank;
  }
  programs::detail::appendPendingScenario(std::move(name), std::move(family),
                                          std::move(description),
                                          std::move(body), traits);
}

std::vector<ScenarioInfo> scenarios() {
  std::vector<ScenarioInfo> out;
  out.reserve(programs::all().size());
  for (const programs::ProgramSpec& spec : programs::all()) {
    ScenarioInfo info;
    info.id = spec.id;
    info.name = spec.name;
    info.family = spec.family;
    info.description = spec.description;
    info.hasKnownBug = spec.hasKnownBug;
    info.bugRequiresTso = spec.bugRequiresTso;
    info.checkpointable = spec.checkpointable;
    out.push_back(std::move(info));
  }
  return out;
}

namespace programs {

const std::vector<ProgramSpec>& all() {
  static const std::vector<ProgramSpec> programs = [] {
    // Pull the corpus translation units into the link and make sure their
    // static registrations ran (see registry.hpp).
    detail::linkLockingScenarios();
    detail::linkClassicScenarios();
    detail::linkCondvarScenarios();
    detail::linkLockfreeScenarios();
    detail::linkBuggyScenarios();
    detail::linkWeakMemScenarios();

    auto pending = std::move(detail::pendingScenarios());
    detail::pendingScenarios().clear();
    detail::registryLatched() = true;

    // Rank-major order; seq keeps registration order within a rank (the
    // corpus family TUs hold distinct ranks, so corpus order never depends
    // on link order, and user scenarios of equal rank enumerate in
    // registration order).
    std::sort(pending.begin(), pending.end(),
              [](const detail::PendingScenario& a,
                 const detail::PendingScenario& b) {
                if (a.traits.rank != b.traits.rank) {
                  return a.traits.rank < b.traits.rank;
                }
                return a.seq < b.seq;
              });

    std::vector<ProgramSpec> out;
    out.reserve(pending.size());
    std::unordered_set<std::string> names;
    std::size_t corpus = 0;
    for (auto& scenario : pending) {
      if (!names.insert(scenario.name).second) {
        std::fprintf(stderr, "lazyhb: duplicate scenario name '%s'\n",
                     scenario.name.c_str());
        LAZYHB_CHECK(!"duplicate scenario name");
      }
      if (scenario.traits.rank < kScenarioUserRank) ++corpus;
      ProgramSpec spec;
      spec.id = static_cast<int>(out.size()) + 1;
      spec.name = std::move(scenario.name);
      spec.family = std::move(scenario.family);
      spec.description = std::move(scenario.description);
      spec.body = std::move(scenario.body);
      spec.hasKnownBug = scenario.traits.hasKnownBug;
      spec.bugRequiresTso = scenario.traits.bugRequiresTso;
      spec.checkpointable = scenario.traits.checkpointable;
      out.push_back(std::move(spec));
    }
    // The paper's 79 benchmarks plus the 8-program weak-memory extension.
    LAZYHB_CHECK(corpus == 87);
    return out;
  }();
  return programs;
}

const ProgramSpec* byName(const std::string& name) {
  for (const ProgramSpec& spec : all()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::vector<const ProgramSpec*> byFamily(const std::string& family) {
  std::vector<const ProgramSpec*> out;
  for (const ProgramSpec& spec : all()) {
    if (spec.family == family) out.push_back(&spec);
  }
  return out;
}

bool selectByTokens(const std::vector<std::string>& tokens,
                    std::vector<const ProgramSpec*>& out,
                    std::string* badToken) {
  std::vector<bool> taken(all().size() + 1, false);
  for (const std::string& token : tokens) {
    std::vector<const ProgramSpec*> matched;
    if (const ProgramSpec* named = byName(token)) {
      matched.push_back(named);
    } else {
      matched = byFamily(token);
    }
    if (matched.empty()) {
      if (badToken != nullptr) *badToken = token;
      return false;
    }
    for (const ProgramSpec* spec : matched) {
      if (static_cast<std::size_t>(spec->id) < taken.size() && taken[spec->id]) {
        continue;
      }
      taken[spec->id] = true;
      out.push_back(spec);
    }
  }
  return true;
}

}  // namespace programs
}  // namespace lazyhb
