// lazyhb/programs/registry.hpp
//
// The benchmark corpus: 79 multithreaded programs standing in for the 79
// open-source Java benchmarks of the paper's evaluation (see DESIGN.md §2
// for why the substitution preserves the phenomena being measured).
//
// The corpus deliberately spans the regimes the paper's figures show:
//
//   * coarse-grained locking over disjoint or read-only data — the paper's
//     motivating pattern, where the lazy HBR collapses many HBR classes
//     (points below the diagonal of Figure 2);
//   * lock-free / shared-variable algorithms — no mutex edges to erase, so
//     lazy HBR == HBR (points on the diagonal);
//   * condition-variable and semaphore coordination;
//   * known-buggy programs (assertion failures, deadlocks) proving the
//     reduction does not mask violations.
//
// Programs are small by design: systematic exploration is exponential, and
// the interesting quantities are the *counts of equivalence classes*, not
// program size. Every program is bounded (no unbounded spinning), so every
// execution terminates.

#pragma once

#include <string>
#include <vector>

#include "explore/explorer.hpp"

namespace lazyhb::programs {

struct ProgramSpec {
  int id = 0;               ///< 1-based stable id; the figures plot these
  std::string name;         ///< unique, e.g. "disjoint-lock-3"
  std::string family;       ///< e.g. "disjoint-lock"
  std::string description;  ///< one line for tables/docs
  explore::Program body;
  bool hasKnownBug = false; ///< an assertion failure or deadlock is reachable
  /// The body satisfies the checkpointable contract (runtime/execution.hpp):
  /// no heap-owning state on fiber stacks (lazyhb::InlineVec instead of
  /// std::vector), enabling full runtime rollback under incremental
  /// exploration. Heap-using programs still run incrementally, via
  /// re-execution with recorder-side prefix elision.
  bool checkpointable = false;
};

/// All 79 benchmarks, in id order (ids are 1..79).
[[nodiscard]] const std::vector<ProgramSpec>& all();

/// Lookup by unique name; nullptr if absent.
[[nodiscard]] const ProgramSpec* byName(const std::string& name);

/// All members of a family, in id order.
[[nodiscard]] std::vector<const ProgramSpec*> byFamily(const std::string& family);

// Family fragments (one translation unit each); used by registry.cpp.
namespace detail {
void appendLockingPrograms(std::vector<ProgramSpec>& out);
void appendClassicPrograms(std::vector<ProgramSpec>& out);
void appendCondvarPrograms(std::vector<ProgramSpec>& out);
void appendLockfreePrograms(std::vector<ProgramSpec>& out);
void appendBuggyPrograms(std::vector<ProgramSpec>& out);
}  // namespace detail

}  // namespace lazyhb::programs
