// lazyhb/programs/registry.hpp
//
// The scenario registry: the benchmark corpus plus every user-registered
// scenario, enumerated by the CLI, the campaign matrix and Session::run.
//
// The built-in corpus is 87 multithreaded programs: 79 standing in for the
// 79 open-source Java benchmarks of the paper's evaluation, plus an
// 8-program weak-memory extension (ids 80..87) whose behaviour is
// store-buffer sensitive. It deliberately spans the regimes the paper's
// figures show:
//
//   * coarse-grained locking over disjoint or read-only data — the paper's
//     motivating pattern, where the lazy HBR collapses many HBR classes
//     (points below the diagonal of Figure 2);
//   * lock-free / shared-variable algorithms — no mutex edges to erase, so
//     lazy HBR == HBR (points on the diagonal);
//   * condition-variable and semaphore coordination;
//   * known-buggy programs (assertion failures, deadlocks) proving the
//     reduction does not mask violations;
//   * weak-memory litmus programs (store buffering, Dekker, Peterson,
//     seqlock) whose unfenced variants fail only under --memory-model tso.
//
// Programs are small by design: systematic exploration is exponential, and
// the interesting quantities are the *counts of equivalence classes*, not
// program size. Every program is bounded (no unbounded spinning), so every
// execution terminates.
//
// Registration is open: corpus families and user code both feed the
// registry through lazyhb::registerScenario (usually via the
// LAZYHB_SCENARIO macros in lazyhb/scenario.hpp) during static
// initialization. On first enumeration the pending registrations are
// ordered by (ScenarioTraits::rank, registration order) — the corpus
// families hold ranks below kScenarioUserRank, so corpus ids stay stable
// at 1..87 and user scenarios append after them — then the registry
// latches: registering later is a checked error.

#pragma once

#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "lazyhb/scenario.hpp"

namespace lazyhb::programs {

struct ProgramSpec {
  int id = 0;               ///< 1-based stable id; the figures plot these
  std::string name;         ///< unique, e.g. "disjoint-lock-3"
  std::string family;       ///< e.g. "disjoint-lock"
  std::string description;  ///< one line for tables/docs
  explore::Program body;
  bool hasKnownBug = false; ///< an assertion failure or deadlock is reachable
  /// The known bug is reachable only under the TSO memory model; exploring
  /// this program under SC is violation-free (the weak-memory unfenced
  /// litmus variants). Meaningful only with hasKnownBug.
  bool bugRequiresTso = false;
  /// The body satisfies the checkpointable contract (runtime/execution.hpp):
  /// no heap-owning state on fiber stacks (lazyhb::InlineVec instead of
  /// std::vector), enabling full runtime rollback under incremental
  /// exploration. Heap-using programs still run incrementally, via
  /// re-execution with recorder-side prefix elision.
  bool checkpointable = false;
};

/// Every registered scenario (87 corpus benchmarks first, then user
/// scenarios), in id order (ids are 1..N). First call latches the registry.
[[nodiscard]] const std::vector<ProgramSpec>& all();

/// Lookup by unique name; nullptr if absent.
[[nodiscard]] const ProgramSpec* byName(const std::string& name);

/// All members of a family, in id order.
[[nodiscard]] std::vector<const ProgramSpec*> byFamily(const std::string& family);

/// Resolve selector tokens — each a program name or a family name — into
/// specs, in token order, deduplicated (a family plus one of its members
/// keeps one copy). The shared resolver behind the CLI's --programs and
/// Suite::add(). Returns false with *badToken set when a token matches
/// neither a program nor a family; an empty token list resolves to an
/// empty selection (callers treat that as "whole corpus").
[[nodiscard]] bool selectByTokens(const std::vector<std::string>& tokens,
                                  std::vector<const ProgramSpec*>& out,
                                  std::string* badToken);

namespace detail {

// Corpus family ranks: enumeration order of the built-in corpus (each
// family's scenarios keep their in-file registration order within the rank).
// These sit below kScenarioUserRank, a range the public registration path
// refuses (it clamps), so only the corpus can occupy it — which is what
// keeps the 87-benchmark count check and the stable ids 1..87 sound.
inline constexpr int kLockingRank = 10;
inline constexpr int kClassicRank = 20;
inline constexpr int kCondvarRank = 30;
inline constexpr int kLockfreeRank = 40;
inline constexpr int kBuggyRank = 50;
inline constexpr int kWeakMemRank = 60;

/// Corpus-only registration: like lazyhb::registerScenario but allowed to
/// use the reserved sub-user ranks above.
void registerCorpusScenario(std::string name, std::string family,
                            std::string description, explore::Program body,
                            bool hasKnownBug, bool checkpointable, int rank,
                            bool bugRequiresTso = false);

/// Static registrar the corpus family macros expand to.
struct CorpusRegistrar {
  CorpusRegistrar(const char* name, const char* family, const char* description,
                  explore::Program body, bool hasKnownBug, bool checkpointable,
                  int rank, bool bugRequiresTso = false) {
    registerCorpusScenario(name, family, description, std::move(body),
                           hasKnownBug, checkpointable, rank, bugRequiresTso);
  }
};

// Linker anchors (one per corpus translation unit): the corpus registers
// itself via static ScenarioRegistrar objects, which a static library only
// links in when some symbol of the TU is referenced. all() calls these
// no-ops, forcing the corpus TUs — and thus their registrations — into
// every binary that enumerates the registry (and, per [basic.start.dynamic],
// guaranteeing their static initialization has completed first).
void linkLockingScenarios();
void linkClassicScenarios();
void linkCondvarScenarios();
void linkLockfreeScenarios();
void linkBuggyScenarios();
void linkWeakMemScenarios();

}  // namespace detail

}  // namespace lazyhb::programs
