#include "runtime/operation.hpp"

namespace lazyhb::runtime {

const char* opKindName(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::Read: return "read";
    case OpKind::Write: return "write";
    case OpKind::Rmw: return "rmw";
    case OpKind::Lock: return "lock";
    case OpKind::Unlock: return "unlock";
    case OpKind::TryLock: return "trylock";
    case OpKind::Wait: return "wait";
    case OpKind::Reacquire: return "reacquire";
    case OpKind::Signal: return "signal";
    case OpKind::Broadcast: return "broadcast";
    case OpKind::SemAcquire: return "sem_acquire";
    case OpKind::SemRelease: return "sem_release";
    case OpKind::Spawn: return "spawn";
    case OpKind::Join: return "join";
    case OpKind::Yield: return "yield";
    case OpKind::Flush: return "flush";
    case OpKind::Fence: return "fence";
  }
  return "?";
}

const char* objectKindName(ObjectKind kind) noexcept {
  switch (kind) {
    case ObjectKind::Var: return "var";
    case ObjectKind::Mutex: return "mutex";
    case ObjectKind::CondVar: return "condvar";
    case ObjectKind::Semaphore: return "semaphore";
    case ObjectKind::Thread: return "thread";
  }
  return "?";
}

const char* outcomeName(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::Terminal: return "terminal";
    case Outcome::Deadlock: return "deadlock";
    case Outcome::AssertionFailure: return "assertion-failure";
    case Outcome::UsageError: return "usage-error";
    case Outcome::EventLimit: return "event-limit";
    case Outcome::Abandoned: return "abandoned";
  }
  return "?";
}

}  // namespace lazyhb::runtime
