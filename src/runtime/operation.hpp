// lazyhb/runtime/operation.hpp
//
// The vocabulary of *visible operations*: the events a controlled execution
// is made of. Every inter-thread interaction in a program under test is one
// of these operations; each is a scheduling point, and each committed
// operation becomes one event in the trace.
//
// Event identity must be schedule-invariant: the same logical operation must
// carry the same label in every schedule that executes it, or partial-order
// fingerprints would be meaningless. Threads and objects are therefore named
// by stable 64-bit UIDs derived from (creator uid, per-creator sequence
// number) rather than by runtime indices, which depend on scheduling order.

#pragma once

#include <cstdint>
#include <string>

#include "support/hash.hpp"

namespace lazyhb::runtime {

/// Kinds of visible operations.
enum class OpKind : std::uint8_t {
  Read,       ///< Shared<T>::load
  Write,      ///< Shared<T>::store
  Rmw,        ///< Shared<T>::fetchAdd / compareExchange (read-modify-write)
  Lock,       ///< Mutex::lock acquisition (blocks while held)
  Unlock,     ///< Mutex::unlock
  TryLock,    ///< Mutex::tryLock (never blocks; result is part of the label)
  Wait,       ///< CondVar::wait release step (atomically unlocks and parks)
  Reacquire,  ///< CondVar::wait re-acquisition step after being signalled
  Signal,     ///< CondVar::signal (wakes at most one waiter, FIFO)
  Broadcast,  ///< CondVar::broadcast (wakes all waiters)
  SemAcquire, ///< Semaphore::acquire (blocks while the count is zero)
  SemRelease, ///< Semaphore::release
  Spawn,      ///< thread creation
  Join,       ///< thread join (blocks until the target finishes)
  Yield,      ///< pure scheduling point, no object
  Flush,      ///< TSO: the oldest buffered store of one thread lands in
              ///< memory. Committed by a flush *pick* (memory/), never
              ///< published by a fiber; its EventRecord carries the flush
              ///< agent's identity, not the buffer owner's.
  Fence,      ///< lazyhb::fence(): store-buffer drain point. Under TSO it is
              ///< enabled only when the caller's buffer is empty; under SC
              ///< it is a Yield-like no-op event, so fenced programs run
              ///< under both models.
};

[[nodiscard]] const char* opKindName(OpKind kind) noexcept;

/// True for operations that modify their primary object. Reads are the only
/// non-modifying variable accesses; every mutex/condvar/semaphore operation
/// is treated as a modification of its object (the classic HBR treats lock
/// and unlock as writes to the mutex).
[[nodiscard]] constexpr bool isModification(OpKind kind) noexcept {
  return kind != OpKind::Read;
}

/// True for the operations whose same-mutex conflict edges the *lazy* HBR
/// discards: blocking lock, unlock, and the condvar wait steps (which are an
/// unlock and a lock in disguise). TryLock is deliberately excluded — its
/// result observes the mutex state, so erasing its edges would break
/// Theorem 2.2 (see DESIGN.md §4).
[[nodiscard]] constexpr bool isLazyErasableMutexOp(OpKind kind) noexcept {
  return kind == OpKind::Lock || kind == OpKind::Unlock ||
         kind == OpKind::Wait || kind == OpKind::Reacquire;
}

/// Kinds of registered shared objects.
enum class ObjectKind : std::uint8_t {
  Var,
  Mutex,
  CondVar,
  Semaphore,
  Thread,  ///< threads double as objects so spawn/join events have a target
};

[[nodiscard]] const char* objectKindName(ObjectKind kind) noexcept;

/// Schedule-invariant identifier for a thread or object.
using Uid = std::uint64_t;

/// UID of the root thread (thread index 0, which runs the test body).
inline constexpr Uid kRootThreadUid = 0x526f6f7454687230ULL;  // "RootThr0"

/// Derive a child UID from its creator's UID and a per-creator sequence
/// number. mix64 is bijective per (creator, seq) pair modulo collisions,
/// which at 64 bits are not a practical concern for < 2^20 objects.
[[nodiscard]] constexpr Uid deriveUid(Uid creator, std::uint32_t seq,
                                      ObjectKind kind) noexcept {
  return support::mix64(creator ^ support::mix64(
      (static_cast<std::uint64_t>(seq) << 8) | static_cast<std::uint64_t>(kind)));
}

/// A committed visible operation: one entry in the execution's event log.
/// This is the runtime's output vocabulary; the trace module turns streams
/// of EventRecords into happens-before structures.
struct EventRecord {
  int threadIndex = -1;          ///< runtime thread index (execution-local)
  std::uint32_t indexInThread = 0;  ///< 0-based per-thread event counter
  OpKind kind = OpKind::Yield;
  /// TryLock: 1 on success. Write: 1 when the store entered a TSO store
  /// buffer instead of memory (part of the label — whether a given static
  /// store buffers is a function of the Shared<T>'s engine residency, not
  /// of scheduling, so labels stay schedule-invariant; under SC every
  /// write has aux 0 and labels are byte-identical to before). Otherwise 0.
  std::uint64_t aux = 0;

  Uid threadUid = 0;             ///< schedule-invariant thread identity
  Uid objectUid = 0;             ///< primary object (0 for Yield)
  std::int32_t objectIndex = -1; ///< execution-local object index (-1 none)

  /// For Wait/Reacquire: the mutex involved alongside the condvar.
  Uid mutexUid = 0;
  std::int32_t mutexIndex = -1;

  /// Global index (into the schedule) of special predecessor events, or -1:
  std::int32_t signalPredecessor = -1;  ///< Signal/Broadcast that woke us (Reacquire)
  std::int32_t spawnPredecessor = -1;   ///< parent's Spawn event (first event of a thread)
  std::int32_t joinPredecessor = -1;    ///< joined thread's last event (Join)

  /// Var accesses: the variable's value hash at commit time — the value a
  /// Read observed (under TSO: forwarded from the reader's own store buffer
  /// when a matching entry exists, memory otherwise), the post-state a
  /// Write/Rmw committed (for a TSO-buffered Write: the value enqueued, not
  /// yet in memory), the value a Flush landed in memory. 0 for non-Var
  /// events. Deliberately NOT part of labelHash(): labels name *which*
  /// operation ran, values are what it saw — the Value relation mixes them
  /// separately.
  std::uint64_t valueHash = 0;

  /// Schedule-invariant label hash: identifies *which* operation this is
  /// independently of where in the schedule it ran.
  [[nodiscard]] support::Hash128 labelHash() const noexcept {
    const std::uint64_t a =
        threadUid ^ support::mix64((static_cast<std::uint64_t>(indexInThread) << 16) |
                                   (static_cast<std::uint64_t>(kind) << 8));
    const std::uint64_t b = objectUid ^ support::mix64(aux + 0x51ULL) ^ mutexUid;
    return support::hash128(a, b);
  }
};

/// How one controlled execution ended.
enum class Outcome : std::uint8_t {
  Terminal,          ///< every thread ran to completion
  Deadlock,          ///< unfinished threads remain but none is enabled
  AssertionFailure,  ///< a checkAlways() in the program under test failed
  UsageError,        ///< program misused the API (e.g. unlock of a free mutex)
  EventLimit,        ///< exceeded Config::maxEventsPerSchedule
  Abandoned,         ///< the scheduler pruned this execution midway
};

[[nodiscard]] const char* outcomeName(Outcome outcome) noexcept;

/// True for outcomes that should be reported as property violations.
[[nodiscard]] constexpr bool isViolation(Outcome outcome) noexcept {
  return outcome == Outcome::Deadlock || outcome == Outcome::AssertionFailure ||
         outcome == Outcome::UsageError;
}

}  // namespace lazyhb::runtime
