#include "runtime/fiber.hpp"

#include <cstdint>
#include <utility>

#include "support/diagnostics.hpp"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/common_interface_defs.h>
#endif

namespace lazyhb::runtime {

std::unique_ptr<char[]> StackPool::acquire() {
  if (!free_.empty()) {
    auto stack = std::move(free_.back());
    free_.pop_back();
    return stack;
  }
  return std::make_unique<char[]>(stackBytes_);
}

void StackPool::release(std::unique_ptr<char[]> stack) {
  free_.push_back(std::move(stack));
}

// --- sanitizer fiber-switch protocol ----------------------------------------
// Every switch A->B must bracket as: A calls startSwitch(&A.fakeSave,
// B.stack); B, immediately after gaining control, calls
// finishSwitch(B.fakeSave, &A.stack-out). The first entry into a fiber and
// the final exit (dying fiber passes a null save slot) are special-cased.

#if defined(__SANITIZE_ADDRESS__)
#define LAZYHB_ASAN_START(saveSlot, bottom, size) \
  __sanitizer_start_switch_fiber((saveSlot), (bottom), (size))
#define LAZYHB_ASAN_FINISH(save, bottomOut, sizeOut) \
  __sanitizer_finish_switch_fiber((save), (bottomOut), (sizeOut))
#else
#define LAZYHB_ASAN_START(saveSlot, bottom, size) ((void)0)
#define LAZYHB_ASAN_FINISH(save, bottomOut, sizeOut) ((void)0)
#endif

#if defined(LAZYHB_FAST_FIBER)

// --- fast switch (x86-64 SysV) ----------------------------------------------
// A switch pushes the six callee-saved GP registers onto the running stack,
// publishes the resulting stack pointer through *saveSp, adopts restoreSp
// and pops the target's register file. The FP environment (mxcsr/x87 control
// words) is deliberately not saved: all fibers share one OS thread and the
// engine never alters it between switches.
//
// A brand-new fiber's stack is fabricated so the first switch "returns" into
// fiberEntryThunk with the Fiber* parked in %r12. Frame layout, low to high,
// matching the pop sequence: r15 r14 r13 r12 rbx rbp <thunk address>. The
// frame base is 16-byte aligned, so after the seven 8-byte pops the thunk
// starts with %rsp aligned and the ABI call alignment holds.

extern "C" {
void lazyhbFiberSwitch(void** saveSp, void* restoreSp);
void lazyhbFiberEntryThunk();
void lazyhbFiberEntry(void* self);
}

asm(R"(
.text
.p2align 4
.globl lazyhbFiberSwitch
.type lazyhbFiberSwitch, @function
lazyhbFiberSwitch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size lazyhbFiberSwitch, .-lazyhbFiberSwitch

.p2align 4
.globl lazyhbFiberEntryThunk
.type lazyhbFiberEntryThunk, @function
lazyhbFiberEntryThunk:
  movq %r12, %rdi
  callq lazyhbFiberEntry
  ud2
.size lazyhbFiberEntryThunk, .-lazyhbFiberEntryThunk
)");

namespace {
constexpr std::size_t kEntryFrameWords = 7;  // six registers + thunk address
}  // namespace

void fiberEntryThunkTarget(void* self) { static_cast<Fiber*>(self)->run(); }

extern "C" void lazyhbFiberEntry(void* self) {
  fiberEntryThunkTarget(self);
  LAZYHB_UNREACHABLE("fiber entry fell through");
}

Fiber::Fiber(StackPool& pool, std::function<void()> entry)
    : pool_(pool), stack_(pool.acquire()), entry_(std::move(entry)) {
  const auto top = reinterpret_cast<std::uintptr_t>(stack_.get()) + pool_.stackBytes();
  auto* frame = reinterpret_cast<std::uint64_t*>(top & ~std::uintptr_t{15});
  *--frame = reinterpret_cast<std::uint64_t>(&lazyhbFiberEntryThunk);
  *--frame = 0;                                        // rbp
  *--frame = 0;                                        // rbx
  *--frame = reinterpret_cast<std::uint64_t>(this);    // r12
  *--frame = 0;                                        // r13
  *--frame = 0;                                        // r14
  *--frame = 0;                                        // r15
  static_assert(kEntryFrameWords == 7);
  fiberSp_ = frame;
}

void Fiber::run() {
  // First entry: complete the switch started by resume() and capture the
  // host stack bounds for the return switches.
  LAZYHB_ASAN_FINISH(nullptr, &hostStackBottom_, &hostStackSize_);
  try {
    entry_();
  } catch (const AbandonExecution&) {
    // Normal teardown path for pruned executions: user destructors have run.
  }
  finished_ = true;
  // Dying fiber: null save slot tells the sanitizer to destroy its fake
  // stack rather than expect a return.
  LAZYHB_ASAN_START(nullptr, hostStackBottom_, hostStackSize_);
  lazyhbFiberSwitch(&fiberSp_, hostSp_);
  LAZYHB_UNREACHABLE("resumed a finished fiber");
}

void Fiber::resume() {
  LAZYHB_CHECK(!finished_);
  started_ = true;
  LAZYHB_ASAN_START(&hostFakeStack_, stack_.get(), pool_.stackBytes());
  lazyhbFiberSwitch(&hostSp_, fiberSp_);
  LAZYHB_ASAN_FINISH(hostFakeStack_, nullptr, nullptr);
}

void Fiber::yieldToHost() {
  LAZYHB_ASAN_START(&fiberFakeStack_, hostStackBottom_, hostStackSize_);
  lazyhbFiberSwitch(&fiberSp_, hostSp_);
  LAZYHB_ASAN_FINISH(fiberFakeStack_, nullptr, nullptr);
}

#else  // !LAZYHB_FAST_FIBER: POSIX ucontext fallback

Fiber::Fiber(StackPool& pool, std::function<void()> entry)
    : pool_(pool), stack_(pool.acquire()), entry_(std::move(entry)) {
  LAZYHB_CHECK(getcontext(&fiberContext_) == 0);
  fiberContext_.uc_stack.ss_sp = stack_.get();
  fiberContext_.uc_stack.ss_size = pool_.stackBytes();
  fiberContext_.uc_link = nullptr;  // entry never falls off: run() swaps back
  // makecontext only passes ints; split the pointer into two 32-bit halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&fiberContext_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run();
  // Unreachable: run() performs the final swap back to the host.
  LAZYHB_UNREACHABLE("fiber trampoline fell through");
}

void Fiber::run() {
  // First entry: complete the switch started by resume() and capture the
  // host stack bounds for the return switches.
  LAZYHB_ASAN_FINISH(nullptr, &hostStackBottom_, &hostStackSize_);
  try {
    entry_();
  } catch (const AbandonExecution&) {
    // Normal teardown path for pruned executions: user destructors have run.
  }
  finished_ = true;
  // Dying fiber: null save slot tells the sanitizer to destroy its fake
  // stack rather than expect a return.
  LAZYHB_ASAN_START(nullptr, hostStackBottom_, hostStackSize_);
  LAZYHB_CHECK(swapcontext(&fiberContext_, &hostContext_) == 0);
  LAZYHB_UNREACHABLE("resumed a finished fiber");
}

void Fiber::resume() {
  LAZYHB_CHECK(!finished_);
  started_ = true;
  LAZYHB_ASAN_START(&hostFakeStack_, stack_.get(), pool_.stackBytes());
  LAZYHB_CHECK(swapcontext(&hostContext_, &fiberContext_) == 0);
  LAZYHB_ASAN_FINISH(hostFakeStack_, nullptr, nullptr);
}

void Fiber::yieldToHost() {
  LAZYHB_ASAN_START(&fiberFakeStack_, hostStackBottom_, hostStackSize_);
  LAZYHB_CHECK(swapcontext(&fiberContext_, &hostContext_) == 0);
  LAZYHB_ASAN_FINISH(fiberFakeStack_, nullptr, nullptr);
}

#endif  // LAZYHB_FAST_FIBER

Fiber::~Fiber() {
  // An unfinished fiber being destroyed would leak whatever RAII state its
  // stack holds; the engine always abandons fibers before destruction.
  LAZYHB_CHECK(finished_ || !started_);
  pool_.release(std::move(stack_));
}

#undef LAZYHB_ASAN_START
#undef LAZYHB_ASAN_FINISH

}  // namespace lazyhb::runtime
