#include "runtime/fiber.hpp"

#include <cstdint>
#include <cstring>
#include <utility>

#include "support/diagnostics.hpp"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/common_interface_defs.h>
#endif

namespace lazyhb::runtime {

std::unique_ptr<char[]> StackPool::acquire() {
  if (!free_.empty()) {
    auto stack = std::move(free_.back());
    free_.pop_back();
    return stack;
  }
  return std::make_unique<char[]>(stackBytes_);
}

void StackPool::release(std::unique_ptr<char[]> stack) {
  free_.push_back(std::move(stack));
}

// --- sanitizer fiber-switch protocol ----------------------------------------
// Every switch A->B must bracket as: A calls startSwitch(&A.fakeSave,
// B.stack); B, immediately after gaining control, calls
// finishSwitch(B.fakeSave, &A.stack-out). The first entry into a fiber and
// the final exit (dying fiber passes a null save slot) are special-cased.

#if defined(__SANITIZE_ADDRESS__)
#define LAZYHB_ASAN_START(saveSlot, bottom, size) \
  __sanitizer_start_switch_fiber((saveSlot), (bottom), (size))
#define LAZYHB_ASAN_FINISH(save, bottomOut, sizeOut) \
  __sanitizer_finish_switch_fiber((save), (bottomOut), (sizeOut))
#else
#define LAZYHB_ASAN_START(saveSlot, bottom, size) ((void)0)
#define LAZYHB_ASAN_FINISH(save, bottomOut, sizeOut) ((void)0)
#endif

#if defined(LAZYHB_FAST_FIBER)

// --- fast switch ------------------------------------------------------------
// A switch saves the psABI callee-saved register file onto the running
// stack, publishes the resulting stack pointer through *saveSp, adopts
// restoreSp and restores the target's register file. The FP environment
// (mxcsr/x87 control words, FPCR) is deliberately not saved: all fibers
// share one OS thread and the engine never alters it between switches.
//
// A brand-new fiber's stack is fabricated so the first switch "returns"
// into fiberEntryThunk with the Fiber* parked in a callee-saved register
// (%r12 on x86-64, x19 on aarch64).

extern "C" {
void lazyhbFiberSwitch(void** saveSp, void* restoreSp);
void lazyhbFiberEntryThunk();
void lazyhbFiberEntry(void* self);
}

#if defined(__x86_64__)

// x86-64 SysV: six callee-saved GP registers. Frame layout, low to high,
// matching the pop sequence: r15 r14 r13 r12 rbx rbp <thunk address>. The
// frame base is 16-byte aligned, so after the seven 8-byte pops the thunk
// starts with %rsp aligned and the ABI call alignment holds.
asm(R"(
.text
.p2align 4
.globl lazyhbFiberSwitch
.type lazyhbFiberSwitch, @function
lazyhbFiberSwitch:
  pushq %rbp
  pushq %rbx
  pushq %r12
  pushq %r13
  pushq %r14
  pushq %r15
  movq %rsp, (%rdi)
  movq %rsi, %rsp
  popq %r15
  popq %r14
  popq %r13
  popq %r12
  popq %rbx
  popq %rbp
  ret
.size lazyhbFiberSwitch, .-lazyhbFiberSwitch

.p2align 4
.globl lazyhbFiberEntryThunk
.type lazyhbFiberEntryThunk, @function
lazyhbFiberEntryThunk:
  movq %r12, %rdi
  callq lazyhbFiberEntry
  ud2
.size lazyhbFiberEntryThunk, .-lazyhbFiberEntryThunk
)");

#elif defined(__aarch64__)

// AAPCS64: callee-saved x19-x28, the frame pair x29/x30, and the low 64
// bits of v8-v15 (d8-d15) — 20 eight-byte slots, a 160-byte frame that
// keeps sp 16-byte aligned throughout. `ret` branches to the restored x30,
// which for a fabricated entry frame is the thunk; the thunk moves the
// parked Fiber* from x19 into the argument register and calls the C++
// entry. swapcontext on this path would additionally make the
// rt_sigprocmask syscall per switch — the very tax this switch removes.
asm(R"(
.text
.p2align 4
.globl lazyhbFiberSwitch
.type lazyhbFiberSwitch, @function
lazyhbFiberSwitch:
  stp x29, x30, [sp, #-160]!
  stp x19, x20, [sp, #16]
  stp x21, x22, [sp, #32]
  stp x23, x24, [sp, #48]
  stp x25, x26, [sp, #64]
  stp x27, x28, [sp, #80]
  stp d8,  d9,  [sp, #96]
  stp d10, d11, [sp, #112]
  stp d12, d13, [sp, #128]
  stp d14, d15, [sp, #144]
  mov x2, sp
  str x2, [x0]
  mov sp, x1
  ldp x19, x20, [sp, #16]
  ldp x21, x22, [sp, #32]
  ldp x23, x24, [sp, #48]
  ldp x25, x26, [sp, #64]
  ldp x27, x28, [sp, #80]
  ldp d8,  d9,  [sp, #96]
  ldp d10, d11, [sp, #112]
  ldp d12, d13, [sp, #128]
  ldp d14, d15, [sp, #144]
  ldp x29, x30, [sp], #160
  ret
.size lazyhbFiberSwitch, .-lazyhbFiberSwitch

.p2align 4
.globl lazyhbFiberEntryThunk
.type lazyhbFiberEntryThunk, @function
lazyhbFiberEntryThunk:
  mov x0, x19
  bl lazyhbFiberEntry
  brk #0
.size lazyhbFiberEntryThunk, .-lazyhbFiberEntryThunk
)");

#endif  // architecture

void fiberEntryThunkTarget(void* self) { static_cast<Fiber*>(self)->run(); }

extern "C" void lazyhbFiberEntry(void* self) {
  fiberEntryThunkTarget(self);
  LAZYHB_UNREACHABLE("fiber entry fell through");
}

Fiber::Fiber(StackPool& pool, std::function<void()> entry)
    : pool_(pool), stack_(pool.acquire()), entry_(std::move(entry)) {
  const auto top = reinterpret_cast<std::uintptr_t>(stack_.get()) + pool_.stackBytes();
  auto* base = reinterpret_cast<std::uint64_t*>(top & ~std::uintptr_t{15});
#if defined(__x86_64__)
  auto* frame = base;
  *--frame = reinterpret_cast<std::uint64_t>(&lazyhbFiberEntryThunk);
  *--frame = 0;                                        // rbp
  *--frame = 0;                                        // rbx
  *--frame = reinterpret_cast<std::uint64_t>(this);    // r12
  *--frame = 0;                                        // r13
  *--frame = 0;                                        // r14
  *--frame = 0;                                        // r15
  fiberSp_ = frame;
#elif defined(__aarch64__)
  auto* frame = base - 20;  // 160-byte switch frame, 16-byte aligned
  for (int i = 0; i < 20; ++i) frame[i] = 0;
  frame[1] = reinterpret_cast<std::uint64_t>(&lazyhbFiberEntryThunk);  // x30
  frame[2] = reinterpret_cast<std::uint64_t>(this);                    // x19
  fiberSp_ = frame;
#endif
}

void Fiber::run() {
  // First entry: complete the switch started by resume() and capture the
  // host stack bounds for the return switches.
  LAZYHB_ASAN_FINISH(nullptr, &hostStackBottom_, &hostStackSize_);
  try {
    entry_();
  } catch (const AbandonExecution&) {
    // Normal teardown path for pruned executions: user destructors have run.
  }
  finished_ = true;
  // Dying fiber: null save slot tells the sanitizer to destroy its fake
  // stack rather than expect a return.
  LAZYHB_ASAN_START(nullptr, hostStackBottom_, hostStackSize_);
  lazyhbFiberSwitch(&fiberSp_, hostSp_);
  LAZYHB_UNREACHABLE("resumed a finished fiber");
}

void Fiber::resume() {
  LAZYHB_CHECK(!finished_);
  started_ = true;
  LAZYHB_ASAN_START(&hostFakeStack_, stack_.get(), pool_.stackBytes());
  lazyhbFiberSwitch(&hostSp_, fiberSp_);
  LAZYHB_ASAN_FINISH(hostFakeStack_, nullptr, nullptr);
}

void Fiber::yieldToHost() {
  LAZYHB_ASAN_START(&fiberFakeStack_, hostStackBottom_, hostStackSize_);
  lazyhbFiberSwitch(&fiberSp_, hostSp_);
  LAZYHB_ASAN_FINISH(fiberFakeStack_, nullptr, nullptr);
}

#else  // !LAZYHB_FAST_FIBER: POSIX ucontext fallback

Fiber::Fiber(StackPool& pool, std::function<void()> entry)
    : pool_(pool), stack_(pool.acquire()), entry_(std::move(entry)) {
  LAZYHB_CHECK(getcontext(&fiberContext_) == 0);
  fiberContext_.uc_stack.ss_sp = stack_.get();
  fiberContext_.uc_stack.ss_size = pool_.stackBytes();
  fiberContext_.uc_link = nullptr;  // entry never falls off: run() swaps back
  // makecontext only passes ints; split the pointer into two 32-bit halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&fiberContext_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run();
  // Unreachable: run() performs the final swap back to the host.
  LAZYHB_UNREACHABLE("fiber trampoline fell through");
}

void Fiber::run() {
  // First entry: complete the switch started by resume() and capture the
  // host stack bounds for the return switches.
  LAZYHB_ASAN_FINISH(nullptr, &hostStackBottom_, &hostStackSize_);
  try {
    entry_();
  } catch (const AbandonExecution&) {
    // Normal teardown path for pruned executions: user destructors have run.
  }
  finished_ = true;
  // Dying fiber: null save slot tells the sanitizer to destroy its fake
  // stack rather than expect a return.
  LAZYHB_ASAN_START(nullptr, hostStackBottom_, hostStackSize_);
  LAZYHB_CHECK(swapcontext(&fiberContext_, &hostContext_) == 0);
  LAZYHB_UNREACHABLE("resumed a finished fiber");
}

void Fiber::resume() {
  LAZYHB_CHECK(!finished_);
  started_ = true;
  LAZYHB_ASAN_START(&hostFakeStack_, stack_.get(), pool_.stackBytes());
  LAZYHB_CHECK(swapcontext(&hostContext_, &fiberContext_) == 0);
  LAZYHB_ASAN_FINISH(hostFakeStack_, nullptr, nullptr);
}

void Fiber::yieldToHost() {
  LAZYHB_ASAN_START(&fiberFakeStack_, hostStackBottom_, hostStackSize_);
  LAZYHB_CHECK(swapcontext(&fiberContext_, &hostContext_) == 0);
  LAZYHB_ASAN_FINISH(fiberFakeStack_, nullptr, nullptr);
}

#endif  // LAZYHB_FAST_FIBER

Fiber::~Fiber() {
  // An unfinished fiber being destroyed would leak whatever RAII state its
  // stack holds; the engine always abandons fibers before destruction.
  LAZYHB_CHECK(finished_ || !started_);
  pool_.release(std::move(stack_));
}

#if defined(LAZYHB_FIBER_SNAPSHOT)

void Fiber::snapshotTo(FiberImage& image) const {
  // The continuation of a suspended fiber is exactly the bytes between its
  // saved stack pointer and the stack top (the switch frame at fiberSp_
  // holds the callee-saved registers; everything above it is live frames).
  const char* top = stack_.get() + pool_.stackBytes();
  const char* sp = static_cast<const char*>(fiberSp_);
  LAZYHB_CHECK(sp > stack_.get() && sp <= top);
  const auto used = static_cast<std::size_t>(top - sp);
  image.bytes.resize(used);
  std::memcpy(image.bytes.data(), sp, used);
  image.fiberSp = const_cast<char*>(sp);
  image.started = started_;
  image.finished = finished_;
}

void Fiber::restoreFrom(const FiberImage& image) {
  char* top = stack_.get() + pool_.stackBytes();
  char* sp = static_cast<char*>(image.fiberSp);
  LAZYHB_CHECK(sp > stack_.get() && sp <= top &&
               static_cast<std::size_t>(top - sp) == image.bytes.size());
  std::memcpy(sp, image.bytes.data(), image.bytes.size());
  fiberSp_ = sp;
  started_ = image.started;
  finished_ = image.finished;
}

#else  // !LAZYHB_FIBER_SNAPSHOT

void Fiber::snapshotTo(FiberImage&) const {
  LAZYHB_UNREACHABLE("fiber snapshots are unsupported in this build");
}

void Fiber::restoreFrom(const FiberImage&) {
  LAZYHB_UNREACHABLE("fiber snapshots are unsupported in this build");
}

#endif  // LAZYHB_FIBER_SNAPSHOT

#undef LAZYHB_ASAN_START
#undef LAZYHB_ASAN_FINISH

}  // namespace lazyhb::runtime
