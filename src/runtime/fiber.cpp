#include "runtime/fiber.hpp"

#include <cstdint>
#include <utility>

#include "support/diagnostics.hpp"

#if defined(__SANITIZE_ADDRESS__)
#include <sanitizer/common_interface_defs.h>
#endif

namespace lazyhb::runtime {

std::unique_ptr<char[]> StackPool::acquire() {
  if (!free_.empty()) {
    auto stack = std::move(free_.back());
    free_.pop_back();
    return stack;
  }
  return std::make_unique<char[]>(stackBytes_);
}

void StackPool::release(std::unique_ptr<char[]> stack) {
  free_.push_back(std::move(stack));
}

Fiber::Fiber(StackPool& pool, std::function<void()> entry)
    : pool_(pool), stack_(pool.acquire()), entry_(std::move(entry)) {
  LAZYHB_CHECK(getcontext(&fiberContext_) == 0);
  fiberContext_.uc_stack.ss_sp = stack_.get();
  fiberContext_.uc_stack.ss_size = pool_.stackBytes();
  fiberContext_.uc_link = nullptr;  // entry never falls off: run() swaps back
  // makecontext only passes ints; split the pointer into two 32-bit halves.
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  makecontext(&fiberContext_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
              static_cast<unsigned>(self >> 32),
              static_cast<unsigned>(self & 0xffffffffu));
}

Fiber::~Fiber() {
  // An unfinished fiber being destroyed would leak whatever RAII state its
  // stack holds; the engine always abandons fibers before destruction.
  LAZYHB_CHECK(finished_ || !started_);
  pool_.release(std::move(stack_));
}

void Fiber::trampoline(unsigned hi, unsigned lo) {
  auto* self = reinterpret_cast<Fiber*>(
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo));
  self->run();
  // Unreachable: run() performs the final swap back to the host.
  LAZYHB_UNREACHABLE("fiber trampoline fell through");
}

// --- sanitizer fiber-switch protocol ----------------------------------------
// Every switch A->B must bracket as: A calls startSwitch(&A.fakeSave,
// B.stack); B, immediately after gaining control, calls
// finishSwitch(B.fakeSave, &A.stack-out). The first entry into a fiber and
// the final exit (dying fiber passes a null save slot) are special-cased.

#if defined(__SANITIZE_ADDRESS__)
#define LAZYHB_ASAN_START(saveSlot, bottom, size) \
  __sanitizer_start_switch_fiber((saveSlot), (bottom), (size))
#define LAZYHB_ASAN_FINISH(save, bottomOut, sizeOut) \
  __sanitizer_finish_switch_fiber((save), (bottomOut), (sizeOut))
#else
#define LAZYHB_ASAN_START(saveSlot, bottom, size) ((void)0)
#define LAZYHB_ASAN_FINISH(save, bottomOut, sizeOut) ((void)0)
#endif

void Fiber::run() {
  // First entry: complete the switch started by resume() and capture the
  // host stack bounds for the return switches.
  LAZYHB_ASAN_FINISH(nullptr, &hostStackBottom_, &hostStackSize_);
  try {
    entry_();
  } catch (const AbandonExecution&) {
    // Normal teardown path for pruned executions: user destructors have run.
  }
  finished_ = true;
  // Dying fiber: null save slot tells the sanitizer to destroy its fake
  // stack rather than expect a return.
  LAZYHB_ASAN_START(nullptr, hostStackBottom_, hostStackSize_);
  LAZYHB_CHECK(swapcontext(&fiberContext_, &hostContext_) == 0);
  LAZYHB_UNREACHABLE("resumed a finished fiber");
}

void Fiber::resume() {
  LAZYHB_CHECK(!finished_);
  started_ = true;
  LAZYHB_ASAN_START(&hostFakeStack_, stack_.get(), pool_.stackBytes());
  LAZYHB_CHECK(swapcontext(&hostContext_, &fiberContext_) == 0);
  LAZYHB_ASAN_FINISH(hostFakeStack_, nullptr, nullptr);
}

void Fiber::yieldToHost() {
  LAZYHB_ASAN_START(&fiberFakeStack_, hostStackBottom_, hostStackSize_);
  LAZYHB_CHECK(swapcontext(&fiberContext_, &hostContext_) == 0);
  LAZYHB_ASAN_FINISH(fiberFakeStack_, nullptr, nullptr);
}

#undef LAZYHB_ASAN_START
#undef LAZYHB_ASAN_FINISH

}  // namespace lazyhb::runtime
