// lazyhb/runtime/fiber.hpp
//
// Stackful cooperative fibers.
//
// Each logical thread of a program under test runs on a fiber; the scheduler
// runs on the host context. On x86-64 the switch is a hand-rolled swap of the
// callee-saved register file (~10 ns, no kernel involvement); elsewhere it
// falls back to POSIX ucontext, whose swapcontext carries a rt_sigprocmask
// syscall per switch (~25% of campaign wall time when it is the switch
// primitive — see docs/performance.md). Either way the whole engine stays on
// one OS thread, so there is no data race in the engine itself.
//
// Stacks are pooled and reused across the millions of short executions an
// exploration performs (Per.14: minimise allocations).
//
// Teardown of unfinished fibers is *forward-running*, not unwinding: the
// execution wakes each fiber and grants every subsequent visible operation
// immediately as a no-op, so the fiber runs to the natural end of its entry
// function with all destructors executing in ordinary (non-exceptional)
// contexts. Unwinding via an exception would std::terminate whenever the
// suspension point sits inside a destructor (e.g. a lock guard publishing
// its unlock), which is the common case. AbandonExecution exists for the
// one legitimate throw site: failed assertions in straight-line user code.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

// The fast switch assumes the SysV x86-64 ABI (callee-saved GP registers
// only; the engine is single-OS-threaded and never changes the FP control
// words between switches). Any other target uses ucontext.
#if defined(__x86_64__) && !defined(_WIN32) && !defined(LAZYHB_FORCE_UCONTEXT)
#define LAZYHB_FAST_FIBER 1
#else
#include <ucontext.h>
#endif

namespace lazyhb::runtime {

/// Thrown by checkAlways() failures (and as a last resort when teardown fuel
/// runs out) to abort the fiber's entry function. The fiber trampoline
/// catches it. User code must let it propagate.
struct AbandonExecution {};

/// A reusable fixed-size fiber stack.
class StackPool {
 public:
  explicit StackPool(std::size_t stackBytes = 128 * 1024) : stackBytes_(stackBytes) {}

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  [[nodiscard]] std::size_t stackBytes() const noexcept { return stackBytes_; }

  /// Get a stack (reusing a previously released one when available).
  [[nodiscard]] std::unique_ptr<char[]> acquire();

  /// Return a stack to the pool.
  void release(std::unique_ptr<char[]> stack);

  [[nodiscard]] std::size_t pooledCount() const noexcept { return free_.size(); }

 private:
  std::size_t stackBytes_;
  std::vector<std::unique_ptr<char[]>> free_;
};

/// One stackful coroutine. resume() switches into the fiber until it calls
/// yieldToHost() or its entry function returns; finished() reports the
/// latter.
class Fiber {
 public:
  Fiber(StackPool& pool, std::function<void()> entry);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the host context into the fiber. Precondition: !finished().
  void resume();

  /// Switch from inside the fiber back to the host. Must be called on the
  /// currently running fiber.
  void yieldToHost();

  [[nodiscard]] bool finished() const noexcept { return finished_; }

 private:
  void run();

  StackPool& pool_;
  std::unique_ptr<char[]> stack_;
  std::function<void()> entry_;
#if defined(LAZYHB_FAST_FIBER)
  friend void fiberEntryThunkTarget(void* self);
  void* fiberSp_ = nullptr;  ///< fiber's saved stack pointer while suspended
  void* hostSp_ = nullptr;   ///< host's saved stack pointer while the fiber runs
#else
  static void trampoline(unsigned hi, unsigned lo);
  ucontext_t fiberContext_{};
  ucontext_t hostContext_{};
#endif
  bool started_ = false;
  bool finished_ = false;
  // Sanitizer fiber-switch bookkeeping (unused in plain builds).
  void* hostFakeStack_ = nullptr;
  void* fiberFakeStack_ = nullptr;
  const void* hostStackBottom_ = nullptr;
  std::size_t hostStackSize_ = 0;
};

}  // namespace lazyhb::runtime
