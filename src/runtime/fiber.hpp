// lazyhb/runtime/fiber.hpp
//
// Stackful cooperative fibers.
//
// Each logical thread of a program under test runs on a fiber; the scheduler
// runs on the host context. On x86-64 and aarch64 the switch is a
// hand-rolled swap of the callee-saved register file (~10 ns, no kernel
// involvement); elsewhere it falls back to POSIX ucontext, whose swapcontext
// carries a rt_sigprocmask syscall per switch (~25% of campaign wall time
// when it is the switch primitive — see docs/performance.md). Either way the
// whole engine stays on one OS thread, so there is no data race in the
// engine itself.
//
// Fast-fiber builds additionally support *snapshotting*: while a fiber is
// suspended (or finished), the used portion of its stack plus its saved
// stack pointer fully determine its continuation, and because restore
// copies the bytes back into the very same stack buffer, every pointer into
// the stack stays valid. This is what lets a resumable Execution fork
// itself at a scheduling point and later roll back (execution.hpp). Not
// available under AddressSanitizer (fake-stack bookkeeping cannot be
// rewound) or with the ucontext fallback.
//
// Stacks are pooled and reused across the millions of short executions an
// exploration performs (Per.14: minimise allocations).
//
// Teardown of unfinished fibers is *forward-running*, not unwinding: the
// execution wakes each fiber and grants every subsequent visible operation
// immediately as a no-op, so the fiber runs to the natural end of its entry
// function with all destructors executing in ordinary (non-exceptional)
// contexts. Unwinding via an exception would std::terminate whenever the
// suspension point sits inside a destructor (e.g. a lock guard publishing
// its unlock), which is the common case. AbandonExecution exists for the
// one legitimate throw site: failed assertions in straight-line user code.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

// The fast switch swaps exactly the registers the psABI makes callee-saved:
// on x86-64 the six GP registers, on aarch64 x19-x28 + fp/lr and the low
// halves of v8-v15. The FP control words are deliberately not saved (the
// engine is single-OS-threaded and never changes them between switches).
// Any other target uses ucontext.
#if defined(__x86_64__) && !defined(_WIN32) && !defined(LAZYHB_FORCE_UCONTEXT)
#define LAZYHB_FAST_FIBER 1
#elif defined(__aarch64__) && defined(__ELF__) && !defined(LAZYHB_FORCE_UCONTEXT)
#define LAZYHB_FAST_FIBER 1
#else
#include <ucontext.h>
#endif

// Snapshot/restore relies on raw stack bytes round-tripping through memcpy;
// ASan's fake stacks and ucontext's opaque machine contexts both break that.
#ifndef __has_feature
#define LAZYHB_HAS_FEATURE(x) 0
#else
#define LAZYHB_HAS_FEATURE(x) __has_feature(x)
#endif
#if defined(LAZYHB_FAST_FIBER) && !defined(__SANITIZE_ADDRESS__) && \
    !LAZYHB_HAS_FEATURE(address_sanitizer)
#define LAZYHB_FIBER_SNAPSHOT 1
#endif

namespace lazyhb::runtime {

/// Thrown by checkAlways() failures (and as a last resort when teardown fuel
/// runs out) to abort the fiber's entry function. The fiber trampoline
/// catches it. User code must let it propagate.
struct AbandonExecution {};

/// A reusable fixed-size fiber stack.
class StackPool {
 public:
  explicit StackPool(std::size_t stackBytes = 128 * 1024) : stackBytes_(stackBytes) {}

  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  [[nodiscard]] std::size_t stackBytes() const noexcept { return stackBytes_; }

  /// Get a stack (reusing a previously released one when available).
  [[nodiscard]] std::unique_ptr<char[]> acquire();

  /// Return a stack to the pool.
  void release(std::unique_ptr<char[]> stack);

  [[nodiscard]] std::size_t pooledCount() const noexcept { return free_.size(); }

 private:
  std::size_t stackBytes_;
  std::vector<std::unique_ptr<char[]>> free_;
};

/// Saved continuation of a suspended fiber: the used stack bytes plus the
/// saved stack pointer. Only meaningful for the fiber it was taken from
/// (restore writes the bytes back into the same stack buffer). The byte
/// buffer is pooled by reuse: repeated snapshotTo calls into one image
/// perform no allocation once its capacity covers the deepest stack seen.
struct FiberImage {
  std::vector<char> bytes;
  void* fiberSp = nullptr;
  bool started = false;
  bool finished = false;
};

/// One stackful coroutine. resume() switches into the fiber until it calls
/// yieldToHost() or its entry function returns; finished() reports the
/// latter.
class Fiber {
 public:
  /// True when this build can snapshot/restore suspended fibers (fast-fiber
  /// switch and no AddressSanitizer).
  static constexpr bool kSnapshotSupported =
#if defined(LAZYHB_FIBER_SNAPSHOT)
      true;
#else
      false;
#endif

  Fiber(StackPool& pool, std::function<void()> entry);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the host context into the fiber. Precondition: !finished().
  void resume();

  /// Switch from inside the fiber back to the host. Must be called on the
  /// currently running fiber.
  void yieldToHost();

  [[nodiscard]] bool finished() const noexcept { return finished_; }

  /// Capture the fiber's continuation. Must be called from the host while
  /// the fiber is suspended (or finished). Requires kSnapshotSupported.
  void snapshotTo(FiberImage& image) const;

  /// Restore a continuation previously captured from *this* fiber. The
  /// fiber's current state (suspended or finished) is discarded.
  void restoreFrom(const FiberImage& image);

  /// Discard a suspended fiber without running it to completion: the stack
  /// is dropped as raw bytes. Only legitimate during an Execution rollback,
  /// where everything the stack owns is engine-managed or covered by the
  /// checkpointable-program contract (no owning pointers into the heap).
  void abandonForRollback() noexcept { finished_ = true; }

 private:
  void run();

  StackPool& pool_;
  std::unique_ptr<char[]> stack_;
  std::function<void()> entry_;
#if defined(LAZYHB_FAST_FIBER)
  friend void fiberEntryThunkTarget(void* self);
  void* fiberSp_ = nullptr;  ///< fiber's saved stack pointer while suspended
  void* hostSp_ = nullptr;   ///< host's saved stack pointer while the fiber runs
#else
  static void trampoline(unsigned hi, unsigned lo);
  ucontext_t fiberContext_{};
  ucontext_t hostContext_{};
#endif
  bool started_ = false;
  bool finished_ = false;
  // Sanitizer fiber-switch bookkeeping (unused in plain builds).
  void* hostFakeStack_ = nullptr;
  void* fiberFakeStack_ = nullptr;
  const void* hostStackBottom_ = nullptr;
  std::size_t hostStackSize_ = 0;
};

}  // namespace lazyhb::runtime
