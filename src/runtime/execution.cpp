#include "runtime/execution.hpp"

#include <exception>
#include <utility>

#include "support/diagnostics.hpp"

namespace lazyhb::runtime {

namespace {
/// The execution owning the currently running fiber on this OS thread.
thread_local Execution* g_current = nullptr;
}  // namespace

Execution* Execution::current() noexcept { return g_current; }

Execution::Execution(const Config& config, StackPool& stackPool,
                     ExecutionObserver* observer)
    : config_(config),
      stackPool_(stackPool),
      observer_(observer),
      tso_(config.memoryModel == memory::MemoryModel::Tso) {}

Execution::~Execution() {
  // In resumable mode end-of-run teardown is deferred (fibers stay restorable
  // between schedules); run whatever is left forward now so destructors in
  // the program under test execute normally.
  if (resumable_ && ran_ && !abandoning_) {
    LAZYHB_CHECK(g_current == nullptr);
    g_current = this;
    teardownUnfinished();
    g_current = nullptr;
  }
  // Otherwise run() tears all fibers down before returning; if run() was
  // never called there are no fibers.
  for (const auto& t : threads_) {
    LAZYHB_CHECK(!t.fiber || t.fiber->finished());
  }
}

void Execution::enableResumable() {
  LAZYHB_CHECK(!ran_);
  LAZYHB_CHECK(checkpointingSupported());
  resumable_ = true;
}

Outcome Execution::run(const std::function<void()>& body, Scheduler& scheduler) {
  LAZYHB_CHECK(!ran_);
  ran_ = true;
  LAZYHB_CHECK(g_current == nullptr);
  g_current = this;

  if (observer_ != nullptr) observer_->onExecutionStart(*this);

  // Thread 0 runs the test body. It doubles as an object so that spawn/join
  // events targeting it have an identity; the root UID is a fixed constant.
  {
    ObjectInfo rootObj;
    rootObj.uid = kRootThreadUid;
    rootObj.kind = ObjectKind::Thread;
    rootObj.name = "main";
    rootObj.a = 0;
    objects_.push_back(std::move(rootObj));
    if (observer_ != nullptr) {
      observer_->onObjectRegistered(*this, 0, kRootThreadUid, ObjectKind::Thread,
                                    "main", 0);
    }
    ThreadRec root;
    root.uid = kRootThreadUid;
    root.objectIndex = 0;
    root.fiber = std::make_unique<Fiber>(stackPool_, [&body] { body(); });
    threads_.push_back(std::move(root));
  }
  advance(0);
  driveLoop(scheduler);
  return finishRun();
}

Outcome Execution::resume(Scheduler& scheduler) {
  LAZYHB_CHECK(ran_ && resumable_ && !done_);
  LAZYHB_CHECK(g_current == nullptr);
  g_current = this;
  driveLoop(scheduler);
  return finishRun();
}

void Execution::driveLoop(Scheduler& scheduler) {
  for (;;) {
    if (violation_.kind != Outcome::Terminal) {
      outcome_ = violation_.kind;
      break;
    }
    if (events_.size() >= config_.maxEventsPerSchedule) {
      outcome_ = Outcome::EventLimit;
      break;
    }
    const support::ThreadSet enabledSet = enabled();
    if (enabledSet.empty()) {
      if (allFinished()) {
        outcome_ = Outcome::Terminal;
      } else {
        outcome_ = Outcome::Deadlock;
        std::string blocked = "deadlock; blocked threads:";
        for (int tid = 0; tid < threadCount(); ++tid) {
          if (threads_[static_cast<std::size_t>(tid)].status != ThreadStatus::Finished) {
            blocked += ' ';
            blocked += std::to_string(tid);
          }
        }
        violation_ = Violation{Outcome::Deadlock, std::move(blocked), choices_};
      }
      break;
    }
    const int pick = scheduler.pick(*this);
    if (pick == Scheduler::kAbandon) {
      outcome_ = Outcome::Abandoned;
      break;
    }
    LAZYHB_CHECK(enabledSet.contains(pick));
    choices_.push_back(pick);
    if (tso_ && memory::isFlushPick(pick)) {
      // A flush pick commits an event without resuming any fiber: the
      // oldest buffered store of the designated thread lands in memory.
      commitFlush(memory::flushPickOwner(pick));
    } else {
      advance(pick);
    }
  }
}

Outcome Execution::finishRun() {
  finalFingerprint_ = computeStateFingerprint();
  done_ = true;
  // Resumable executions stay restorable: teardown is deferred until the
  // destructor (or never needed, when the schedule ended with every fiber
  // finished naturally).
  if (!resumable_) teardownUnfinished();
  if (observer_ != nullptr) observer_->onExecutionEnd(*this, outcome_);
  g_current = nullptr;
  return outcome_;
}

std::size_t Execution::checkpoint() {
  // Only legal at a scheduling point: the host loop is asking the scheduler
  // for a pick, so every fiber is suspended at its publish/park site.
  LAZYHB_CHECK(resumable_ && !done_ && currentThread_ == -1);
  const std::size_t depth = events_.size();
  LAZYHB_CHECK(choices_.size() == depth);
  if (!snapshots_.empty() && snapshots_.back().depth == depth) {
    return depth;  // already staged at this depth
  }
  LAZYHB_CHECK(snapshots_.empty() || snapshots_.back().depth < depth);
  if (snapshotPool_.empty()) {
    snapshots_.emplace_back();
  } else {
    snapshots_.push_back(std::move(snapshotPool_.back()));
    snapshotPool_.pop_back();
  }
  ExecSnapshot& s = snapshots_.back();
  s.depth = depth;
  s.threadCount = threads_.size();
  s.objectCount = objects_.size();
  if (s.threads.size() < s.threadCount) s.threads.resize(s.threadCount);
  if (imageCache_.size() < threads_.size()) imageCache_.resize(threads_.size());
  for (std::size_t i = 0; i < s.threadCount; ++i) {
    const ThreadRec& t = threads_[i];
    ThreadSnapshot& ts = s.threads[i];
    ts.status = t.status;
    ts.pendingOp = t.pendingOp;
    ts.eventsExecuted = t.eventsExecuted;
    ts.creationSeq = t.creationSeq;
    ts.advanceCount = t.advanceCount;
    ts.spawnPredecessor = t.spawnPredecessor;
    ts.signalPredecessor = t.signalPredecessor;
    ts.joinPredecessor = t.joinPredecessor;
    ts.lastEventIndex = t.lastEventIndex;
    if (t.status == ThreadStatus::Finished) {
      // A finished thread never runs again on any suffix of this prefix;
      // its continuation is irrelevant and its stack bytes stay dead.
      ts.image = nullptr;
      continue;
    }
    // Image sharing: the stack only changes when the fiber is advanced, so
    // a cached image at the same advanceCount is byte-identical — only the
    // (usually one) thread that moved since the last checkpoint is copied.
    ImageCacheEntry& cached = imageCache_[i];
    if (cached.version != t.advanceCount || cached.image == nullptr) {
      auto image = std::make_shared<ThreadImage>();
      t.fiber->snapshotTo(image->fiber);
      image->pendingSpawnFn = t.pendingSpawnFn;
      cached.version = t.advanceCount;
      cached.image = std::move(image);
    }
    ts.image = cached.image;
  }
  // Object state is not copied: the undo log above `undoMark` is this
  // stage's pre-image. A fresh epoch makes the next write to any object
  // log it again (relative to *this* checkpoint).
  s.undoMark = undoSize_;
  // Store buffers follow the same pattern via their own undo log; the stat
  // counters are tiny scalars, copied outright so replayed prefixes report
  // the same totals regardless of how they were reached.
  s.bufferUndoMark = bufferUndoSize_;
  s.flushEvents = flushEvents_;
  s.fenceEvents = fenceEvents_;
  s.maxBufferedStores = maxBufferedStores_;
  currentEpoch_ = ++epochCounter_;
  return depth;
}

void Execution::logObjectUndo(std::int32_t index, const ObjectInfo& o) {
  if (undoSize_ == undoLog_.size()) undoLog_.emplace_back();
  ObjectUndo& u = undoLog_[undoSize_++];
  u.index = index;
  u.valueHash = o.valueHash;
  u.a = o.a;
  u.waiters.assign(o.waiters.begin(), o.waiters.end());
}

std::size_t Execution::deepestCheckpointAtOrBelow(std::size_t depth) const noexcept {
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    if (it->depth <= depth) return it->depth;
  }
  return kNoCheckpoint;
}

void Execution::rollbackTo(std::size_t depth) {
  LAZYHB_CHECK(resumable_ && ran_ && done_);
  LAZYHB_CHECK(g_current == nullptr);
  while (!snapshots_.empty() && snapshots_.back().depth > depth) {
    for (ThreadSnapshot& ts : snapshots_.back().threads) ts.image = nullptr;
    snapshotPool_.push_back(std::move(snapshots_.back()));
    snapshots_.pop_back();
  }
  LAZYHB_CHECK(!snapshots_.empty() && snapshots_.back().depth == depth);
  const ExecSnapshot& s = snapshots_.back();

  // Store buffers roll back before the thread truncation below: an undo
  // entry can name a thread spawned past the checkpoint, whose rec must
  // still be addressable while its (empty) pre-image is applied.
  while (bufferUndoSize_ > s.bufferUndoMark) {
    BufferUndo& u = bufferUndoLog_[--bufferUndoSize_];
    ThreadRec& t = threads_[static_cast<std::size_t>(u.tid)];
    t.storeBuffer.swap(u.entries);  // consume the entry; keep capacity pooled
    t.flushCount = u.flushCount;
  }
  flushEvents_ = s.flushEvents;
  fenceEvents_ = s.fenceEvents;
  maxBufferedStores_ = s.maxBufferedStores;

  // Threads spawned past the checkpoint are discarded outright: their
  // stacks are dropped as raw bytes (checkpointable-program contract), and
  // their engine resources (stack buffer, parked closure) are freed by the
  // Fiber destructor.
  while (threads_.size() > s.threadCount) {
    threads_.back().fiber->abandonForRollback();
    threads_.pop_back();
    if (imageCache_.size() > threads_.size()) {
      imageCache_.back() = ImageCacheEntry{};
      imageCache_.pop_back();
    }
  }
  for (std::size_t i = 0; i < s.threadCount; ++i) {
    ThreadRec& t = threads_[i];
    const ThreadSnapshot& ts = s.threads[i];
    t.status = ts.status;
    t.pendingOp = ts.pendingOp;
    t.eventsExecuted = ts.eventsExecuted;
    t.creationSeq = ts.creationSeq;
    t.spawnPredecessor = ts.spawnPredecessor;
    t.signalPredecessor = ts.signalPredecessor;
    t.joinPredecessor = ts.joinPredecessor;
    t.lastEventIndex = ts.lastEventIndex;
    if (ts.status == ThreadStatus::Finished) {
      t.fiber->abandonForRollback();  // stays finished
      t.advanceCount = ts.advanceCount;
      continue;
    }
    if (t.advanceCount == ts.advanceCount) {
      // The thread has not been advanced since this snapshot was taken:
      // its stack (and spawn slot) are already exactly the snapshot state.
      LAZYHB_ASSERT(!t.fiber->finished());
      continue;
    }
    t.fiber->restoreFrom(ts.image->fiber);
    t.pendingSpawnFn = ts.image->pendingSpawnFn;  // copy; snapshot stays reusable
    t.advanceCount = ts.advanceCount;
    // The cached image (if any) was taken further along the abandoned
    // suffix; at this advanceCount it is only valid if it *is* this
    // snapshot's image.
    if (imageCache_[i].version != ts.advanceCount) {
      imageCache_[i] = ImageCacheEntry{};
    }
  }

  // Replay the undo log backwards to this stage's mark, then drop the
  // objects registered past the checkpoint. Replay-before-truncate order
  // matters: entries can reference indices >= s.objectCount (objects that
  // existed under a deeper stage), which must still be addressable while
  // their pre-images are applied — the resize then discards them.
  while (undoSize_ > s.undoMark) {
    ObjectUndo& u = undoLog_[--undoSize_];
    ObjectInfo& o = objects_[static_cast<std::size_t>(u.index)];
    o.valueHash = u.valueHash;
    o.a = u.a;
    o.waiters.swap(u.waiters);  // entry is consumed; swap keeps capacity pooled
  }
  objects_.resize(s.objectCount);
  // New epoch: post-rollback writes must re-log their pre-images so this
  // same stage can be rolled back to again (once per remaining sibling).
  currentEpoch_ = ++epochCounter_;

  events_.resize(depth);
  choices_.resize(depth);
  done_ = false;
  outcome_ = Outcome::Terminal;
  violation_ = Violation{};
  finalFingerprint_ = support::Hash128{};
  teardownFuel_ = 0;
  LAZYHB_CHECK(!abandoning_);
}

bool Execution::evictCheckpoint(std::size_t depth) {
  for (std::size_t i = 0; i < snapshots_.size(); ++i) {
    if (snapshots_[i].depth != depth) continue;
    // Release the fiber images now — a pooled entry would otherwise keep
    // them alive until reuse. The undo log keeps this stage's entries:
    // rolling back past this depth to a shallower stage replays them.
    for (ThreadSnapshot& ts : snapshots_[i].threads) ts.image = nullptr;
    snapshotPool_.push_back(std::move(snapshots_[i]));
    snapshots_.erase(snapshots_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

std::size_t Execution::checkpointApproxBytes(std::size_t depth) const noexcept {
  // Reverse scan: snapshots are depth-ascending and every caller asks about
  // the just-staged (deepest) one — a forward scan made staging O(stages)
  // and deep-tree branches quadratic.
  for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
    const ExecSnapshot& s = *it;
    if (s.depth != depth) continue;
    std::size_t bytes = sizeof(ExecSnapshot);
    for (std::size_t i = 0; i < s.threadCount; ++i) {
      bytes += sizeof(ThreadSnapshot);
      if (s.threads[i].image != nullptr) {
        bytes += sizeof(ThreadImage) + s.threads[i].image->fiber.bytes.size();
      }
    }
    return bytes;
  }
  return 0;
}

void Execution::advance(int tid) {
  const int previous = currentThread_;
  currentThread_ = tid;
  ++threads_[static_cast<std::size_t>(tid)].advanceCount;
  threads_[static_cast<std::size_t>(tid)].fiber->resume();
  if (threads_[static_cast<std::size_t>(tid)].fiber->finished()) {
    threads_[static_cast<std::size_t>(tid)].status = ThreadStatus::Finished;
  }
  currentThread_ = previous;
}

void Execution::publishAndPark(OpKind kind, std::int32_t object,
                               std::int32_t mutexObject, int targetThread,
                               std::uint64_t aux) {
  // During teardown, visible operations are granted immediately as no-ops:
  // the state fingerprint has already been snapshotted and nothing observes
  // the execution any more. This lets fibers run forward to the end of
  // their entry function with destructors executing in ordinary contexts
  // (unwinding with an exception would std::terminate when the suspension
  // point is inside a destructor, e.g. a lock guard publishing its unlock).
  if (abandoning_) {
    consumeTeardownFuel();
    return;
  }
  ThreadRec& me = threads_[static_cast<std::size_t>(currentThread_)];
  LAZYHB_CHECK(me.status == ThreadStatus::Pending && !me.pendingOp.valid);
  me.pendingOp = PendingOp{true, kind, object, mutexObject, targetThread, aux};
  me.fiber->yieldToHost();
  // Woken. Either the scheduler granted the operation, or the execution is
  // being torn down (in which case the operation is a no-op for the caller).
  threads_[static_cast<std::size_t>(currentThread_)].pendingOp.valid = false;
  if (abandoning_) {
    consumeTeardownFuel();
  }
}

void Execution::consumeTeardownFuel() {
  // A fiber looping over visible operations (e.g. a condvar predicate loop
  // whose waits are now no-ops) would run forward forever; after a per-fiber
  // budget, fall back to unwinding it. While that unwinding is in flight,
  // operations issued by destructors must stay silent no-ops — throwing
  // again from inside a destructor would terminate the process.
  if (teardownFuel_ > 0) {
    --teardownFuel_;
    return;
  }
  if (std::uncaught_exceptions() > 0) {
    return;  // already unwinding this fiber; let destructors finish
  }
  throw AbandonExecution{};
}

std::int32_t Execution::recordEvent(OpKind kind, std::int32_t object,
                                    std::int32_t mutexObject, std::uint64_t aux,
                                    const std::uint64_t* valueOverride) {
  if (abandoning_) return -1;  // teardown-time operations are not events
  ThreadRec& me = threads_[static_cast<std::size_t>(currentThread_)];
  EventRecord event;
  event.threadIndex = currentThread_;
  event.indexInThread = me.eventsExecuted++;
  event.kind = kind;
  event.aux = aux;
  event.threadUid = me.uid;
  if (object >= 0) {
    const ObjectInfo& obj = objects_[static_cast<std::size_t>(object)];
    event.objectUid = obj.uid;
    event.objectIndex = object;
    if (obj.kind == ObjectKind::Var) {
      event.valueHash = valueOverride != nullptr ? *valueOverride : obj.valueHash;
    }
  }
  if (mutexObject >= 0) {
    event.mutexUid = objects_[static_cast<std::size_t>(mutexObject)].uid;
    event.mutexIndex = mutexObject;
  }
  if (event.indexInThread == 0) {
    event.spawnPredecessor = me.spawnPredecessor;
  }
  if (kind == OpKind::Reacquire) {
    event.signalPredecessor = me.signalPredecessor;
    me.signalPredecessor = -1;
  }
  if (kind == OpKind::Join) {
    event.joinPredecessor = me.joinPredecessor;
    me.joinPredecessor = -1;
  }
  const auto index = static_cast<std::int32_t>(events_.size());
  me.lastEventIndex = index;
  events_.push_back(event);
  if (observer_ != nullptr) observer_->onEvent(*this, events_.back());
  return index;
}

support::ThreadSet Execution::enabled() const {
  support::ThreadSet result;
  for (int tid = 0; tid < threadCount(); ++tid) {
    const ThreadRec& t = threads_[static_cast<std::size_t>(tid)];
    if (t.status == ThreadStatus::Pending && t.pendingOp.valid && isEnabled(t)) {
      result.insert(tid);
    }
  }
  if (tso_) {
    // One flush pick per non-empty store buffer — independent of the owner
    // thread's status, so a thread that finished (or parked) with buffered
    // stores still gets them drained before the run can end.
    for (int tid = 0; tid < threadCount(); ++tid) {
      if (!threads_[static_cast<std::size_t>(tid)].storeBuffer.empty()) {
        result.insert(memory::kFlushPickOffset + tid);
      }
    }
  }
  return result;
}

bool Execution::isEnabled(const ThreadRec& t) const {
  const PendingOp& op = t.pendingOp;
  if (tso_) {
    // TSO ordering gates. Everything except plain loads, stores and pure
    // yields acts as a full fence (on real hardware these are locked
    // instructions or syscalls), so it commits only once the issuing
    // thread's buffer has drained — the scheduler must interleave the
    // flush picks first.
    switch (op.kind) {
      case OpKind::Read:
      case OpKind::Write:
      case OpKind::Yield:
        break;
      default:
        if (!t.storeBuffer.empty()) return false;
        break;
    }
    // Join additionally waits for the *target's* buffered stores to land:
    // everything a finished thread wrote is visible to its joiner.
    if (op.kind == OpKind::Join &&
        !threads_[static_cast<std::size_t>(op.targetThread)].storeBuffer.empty()) {
      return false;
    }
  }
  switch (op.kind) {
    case OpKind::Lock:
    case OpKind::Reacquire: {
      const std::int32_t m = op.kind == OpKind::Lock ? op.object : op.mutexObject;
      return objects_[static_cast<std::size_t>(m)].a == -1;
    }
    case OpKind::SemAcquire:
      return objects_[static_cast<std::size_t>(op.object)].a > 0;
    case OpKind::Join:
      return threads_[static_cast<std::size_t>(op.targetThread)].status ==
             ThreadStatus::Finished;
    default:
      return true;
  }
}

bool Execution::allFinished() const {
  for (const auto& t : threads_) {
    if (t.status != ThreadStatus::Finished) return false;
  }
  return true;
}

const PendingOp& Execution::pending(int tid) const {
  if (tso_ && memory::isFlushPick(tid)) {
    // Synthesize the operation a flush pick would commit: a Flush of the
    // object at the head of the owner's buffer (an invalid op when the
    // buffer is empty — callers sweep the whole pick range). Scratch-backed
    // so callers get the usual reference semantics without an allocation.
    const ThreadRec& owner =
        threads_[static_cast<std::size_t>(memory::flushPickOwner(tid))];
    if (owner.storeBuffer.empty()) {
      flushScratch_ = PendingOp{};
    } else {
      flushScratch_ = PendingOp{true, OpKind::Flush,
                                owner.storeBuffer.front().object, -1, -1, 0};
    }
    return flushScratch_;
  }
  if (tso_ && static_cast<std::size_t>(tid) >= threads_.size()) {
    // The pick range under TSO is [0, kFlushPickOffset + threadCount()),
    // but real threads occupy only its first threadCount() slots: picks in
    // the gap up to the flush offset name no thread. Callers sweeping the
    // whole range (the DPOR backtrack analysis) must see them as invalid
    // operations, not index past the thread table.
    flushScratch_ = PendingOp{};
    return flushScratch_;
  }
  return threads_[static_cast<std::size_t>(tid)].pendingOp;
}

bool Execution::threadFinished(int tid) const {
  return threads_[static_cast<std::size_t>(tid)].status == ThreadStatus::Finished;
}

Uid Execution::threadUid(int tid) const {
  return threads_[static_cast<std::size_t>(tid)].uid;
}

const ObjectInfo& Execution::object(std::int32_t index) const {
  return objects_[static_cast<std::size_t>(index)];
}

support::Hash128 Execution::stateFingerprint() const {
  return done_ ? finalFingerprint_ : computeStateFingerprint();
}

support::Hash128 Execution::computeStateFingerprint() const {
  support::MultisetHash acc;
  for (const ObjectInfo& obj : objects_) {
    switch (obj.kind) {
      case ObjectKind::Var:
        acc.add(support::hash128(obj.uid, obj.valueHash));
        break;
      case ObjectKind::Mutex: {
        const std::uint64_t owner =
            obj.a == -1 ? 0 : threads_[static_cast<std::size_t>(obj.a)].uid;
        acc.add(support::hash128(obj.uid ^ 0xA5A5A5A5ULL, owner));
        break;
      }
      case ObjectKind::Semaphore:
        acc.add(support::hash128(obj.uid ^ 0x5A5A5A5AULL,
                                 static_cast<std::uint64_t>(obj.a)));
        break;
      case ObjectKind::CondVar:
      case ObjectKind::Thread:
        break;  // no observable terminal state of their own
    }
  }
  if (tso_) {
    // Live store buffers are part of the machine state: two mid-run states
    // with the same memory but different in-flight stores are not the same
    // state. Terminal states always have empty buffers (flush picks stay
    // enabled until drained), so terminal fingerprints match SC's shape.
    for (const ThreadRec& t : threads_) {
      std::uint64_t position = 0;
      for (const StoreBufferEntry& e : t.storeBuffer) {
        acc.add(support::hash128(
            t.uid ^ support::mix64(0xB0FFULL + position),
            objects_[static_cast<std::size_t>(e.object)].uid ^
                support::mix64(e.valueHash)));
        ++position;
      }
    }
  }
  return acc.digest();
}

std::int32_t Execution::registerObject(ObjectKind kind, const char* name,
                                       std::uint64_t initialValueHash,
                                       std::int64_t initialA) {
  LAZYHB_CHECK(currentThread_ >= 0);
  ThreadRec& me = threads_[static_cast<std::size_t>(currentThread_)];
  ObjectInfo obj;
  obj.uid = deriveUid(me.uid, me.creationSeq++, kind);
  obj.kind = kind;
  obj.name = name != nullptr ? name : "";
  obj.valueHash = initialValueHash;
  obj.a = initialA;
  const auto index = static_cast<std::int32_t>(objects_.size());
  objects_.push_back(std::move(obj));
  if (observer_ != nullptr) {
    const ObjectInfo& stored = objects_.back();
    observer_->onObjectRegistered(*this, index, stored.uid, kind, stored.name,
                                  stored.valueHash);
  }
  return index;
}

void Execution::varPublish(std::int32_t object, OpKind kind) {
  LAZYHB_CHECK(kind == OpKind::Read || kind == OpKind::Write || kind == OpKind::Rmw);
  publishAndPark(kind, object, -1, -1, 0);
}

void Execution::varCommit(std::int32_t object, OpKind kind,
                          std::uint64_t newValueHash) {
  if (tso_ && !abandoning_) {
    varCommitTso(object, kind, newValueHash);
    return;
  }
  if (kind != OpKind::Read) {
    touchObject(object);
    objects_[static_cast<std::size_t>(object)].valueHash = newValueHash;
  }
  recordEvent(kind, object, -1, 0);
}

void Execution::varCommitTso(std::int32_t object, OpKind kind,
                             std::uint64_t newValueHash) {
  ThreadRec& me = threads_[static_cast<std::size_t>(currentThread_)];
  if (stagedStore_) {
    // setVarBits staged this store into the buffer instead of memory; all
    // that is missing is the value hash (bits were available to setVarBits,
    // the hash only to us). The event's aux=1 marks it buffered and its
    // valueHash carries the enqueued value — memory stays untouched until
    // the matching flush pick.
    stagedStore_ = false;
    LAZYHB_CHECK(kind == OpKind::Write && !me.storeBuffer.empty() &&
                 me.storeBuffer.back().object == object);
    me.storeBuffer.back().valueHash = newValueHash;
    recordEvent(kind, object, -1, 1, &newValueHash);
    return;
  }
  if (kind == OpKind::Read) {
    // Store-to-load forwarding: a load observes the *newest* matching entry
    // of its own buffer, memory only when no entry matches. The event's
    // valueHash records the observed value either way.
    std::uint64_t observed = objects_[static_cast<std::size_t>(object)].valueHash;
    for (auto it = me.storeBuffer.rbegin(); it != me.storeBuffer.rend(); ++it) {
      if (it->object == object) {
        observed = it->valueHash;
        break;
      }
    }
    recordEvent(kind, object, -1, 0, &observed);
    return;
  }
  // Write-through: an Rmw (empty-buffer-gated, so it is atomic against the
  // buffer) or a store to a non-engine-resident Shared<T> (documented SC
  // escape — its bytes live in the wrapper, not the engine, so there is no
  // buffer slot to stage into).
  touchObject(object);
  objects_[static_cast<std::size_t>(object)].valueHash = newValueHash;
  recordEvent(kind, object, -1, 0);
}

bool Execution::stageStoreTso(std::int32_t object, std::int64_t bits) {
  if (abandoning_ || currentThread_ < 0) return false;
  ThreadRec& me = threads_[static_cast<std::size_t>(currentThread_)];
  // Only the commit half of a granted Write stages; every other caller of
  // setVarBits (Rmw commit, initialization) writes through.
  if (me.pendingOp.kind != OpKind::Write || me.pendingOp.object != object ||
      me.pendingOp.valid) {
    return false;
  }
  touchBuffer(currentThread_);
  me.storeBuffer.push_back(StoreBufferEntry{object, bits, 0});
  const auto depth = static_cast<std::uint32_t>(me.storeBuffer.size());
  if (depth > maxBufferedStores_) maxBufferedStores_ = depth;
  stagedStore_ = true;
  return true;
}

std::int64_t Execution::varBitsTso(std::int32_t object) const noexcept {
  if (currentThread_ >= 0) {
    const ThreadRec& me = threads_[static_cast<std::size_t>(currentThread_)];
    for (auto it = me.storeBuffer.rbegin(); it != me.storeBuffer.rend(); ++it) {
      if (it->object == object) return it->bits;
    }
  }
  return objects_[static_cast<std::size_t>(object)].a;
}

void Execution::commitFlush(int tid) {
  ThreadRec& t = threads_[static_cast<std::size_t>(tid)];
  LAZYHB_CHECK(!t.storeBuffer.empty());
  touchBuffer(tid);
  const StoreBufferEntry entry = t.storeBuffer.front();
  t.storeBuffer.erase(t.storeBuffer.begin());
  touchObject(entry.object);
  ObjectInfo& obj = objects_[static_cast<std::size_t>(entry.object)];
  obj.a = entry.bits;
  obj.valueHash = entry.valueHash;
  ++flushEvents_;

  // The flush event is committed host-side — no fiber runs. It carries the
  // flush *agent's* identity (threadUid derived from, but distinct from,
  // the owner's; threadIndex in the flush-pick range) and its own per-agent
  // event counter, so labels stay schedule-invariant and program order among
  // one thread's flushes mirrors the buffer's FIFO discipline.
  EventRecord event;
  event.threadIndex = memory::kFlushPickOffset + tid;
  event.indexInThread = t.flushCount++;
  event.kind = OpKind::Flush;
  event.threadUid = memory::flushAgentUid(t.uid);
  event.objectUid = obj.uid;
  event.objectIndex = entry.object;
  event.valueHash = entry.valueHash;
  events_.push_back(event);
  if (observer_ != nullptr) observer_->onEvent(*this, events_.back());
}

void Execution::logBufferUndo(int tid, const ThreadRec& t) {
  if (bufferUndoSize_ == bufferUndoLog_.size()) bufferUndoLog_.emplace_back();
  BufferUndo& u = bufferUndoLog_[bufferUndoSize_++];
  u.tid = tid;
  u.flushCount = t.flushCount;
  u.entries.assign(t.storeBuffer.begin(), t.storeBuffer.end());
}

void Execution::fenceNow() {
  publishAndPark(OpKind::Fence, -1, -1, -1, 0);
  if (abandoning_) return;
  // Under TSO the grant itself is the guarantee: Fence is enabled only once
  // the caller's buffer is empty (isEnabled), so there is nothing to drain
  // here. Under SC it is a Yield-like event, so fenced programs produce
  // comparable traces under both models.
  LAZYHB_CHECK(!tso_ ||
               threads_[static_cast<std::size_t>(currentThread_)].storeBuffer.empty());
  recordEvent(OpKind::Fence, -1, -1, 0);
  // The TSO stat block stays all-zero under SC (a fence is a plain yield
  // there), so SC reports carry no tso cells at all.
  if (tso_) ++fenceEvents_;
}

void Execution::mutexLock(std::int32_t object) {
  publishAndPark(OpKind::Lock, object, -1, -1, 0);
  if (abandoning_) return;
  ObjectInfo& m = objects_[static_cast<std::size_t>(object)];
  LAZYHB_CHECK(m.a == -1);  // the scheduler only grants lock when free
  touchObject(object);
  m.a = currentThread_;
  recordEvent(OpKind::Lock, object, -1, 0);
}

void Execution::mutexUnlock(std::int32_t object) {
  publishAndPark(OpKind::Unlock, object, -1, -1, 0);
  if (abandoning_) return;
  ObjectInfo& m = objects_[static_cast<std::size_t>(object)];
  if (m.a != currentThread_) {
    failUsage("unlock of mutex '" + m.name + "' not held by the calling thread");
    return;
  }
  touchObject(object);
  m.a = -1;
  recordEvent(OpKind::Unlock, object, -1, 0);
}

bool Execution::mutexTryLock(std::int32_t object) {
  publishAndPark(OpKind::TryLock, object, -1, -1, 0);
  if (abandoning_) return false;
  ObjectInfo& m = objects_[static_cast<std::size_t>(object)];
  const bool acquired = m.a == -1;
  if (acquired) {
    touchObject(object);
    m.a = currentThread_;
  }
  recordEvent(OpKind::TryLock, object, -1, acquired ? 1 : 0);
  return acquired;
}

bool Execution::mutexHeldByCurrent(std::int32_t object) const {
  return objects_[static_cast<std::size_t>(object)].a == currentThread_;
}

void Execution::condWait(std::int32_t condvar, std::int32_t mutex) {
  publishAndPark(OpKind::Wait, condvar, mutex, -1, 0);
  if (abandoning_) return;
  ObjectInfo& m = objects_[static_cast<std::size_t>(mutex)];
  if (m.a != currentThread_) {
    failUsage("wait on condvar '" +
              objects_[static_cast<std::size_t>(condvar)].name +
              "' without holding mutex '" + m.name + "'");
    return;
  }
  touchObject(mutex);
  m.a = -1;  // atomically release with the park
  recordEvent(OpKind::Wait, condvar, mutex, 0);

  // Park until a signal re-arms us with a pre-staged Reacquire op.
  {
    ThreadRec& me = threads_[static_cast<std::size_t>(currentThread_)];
    me.pendingOp = PendingOp{false, OpKind::Reacquire, condvar, mutex, -1, 0};
    me.status = ThreadStatus::Parked;
    touchObject(condvar);
    objects_[static_cast<std::size_t>(condvar)].waiters.push_back(currentThread_);
    me.fiber->yieldToHost();
  }
  threads_[static_cast<std::size_t>(currentThread_)].pendingOp.valid = false;
  if (abandoning_) {
    consumeTeardownFuel();
    return;  // torn down while waiting; the wait never completes
  }
  // Granted the re-acquisition (mutex is free, scheduler picked us).
  ObjectInfo& m2 = objects_[static_cast<std::size_t>(mutex)];
  LAZYHB_CHECK(m2.a == -1);
  touchObject(mutex);
  m2.a = currentThread_;
  recordEvent(OpKind::Reacquire, condvar, mutex, 0);
}

void Execution::condSignal(std::int32_t condvar) {
  publishAndPark(OpKind::Signal, condvar, -1, -1, 0);
  if (abandoning_) return;
  const std::int32_t signalEvent = recordEvent(OpKind::Signal, condvar, -1, 0);
  ObjectInfo& cv = objects_[static_cast<std::size_t>(condvar)];
  if (!cv.waiters.empty()) {
    touchObject(condvar);
    const int waiter = cv.waiters.front();
    cv.waiters.erase(cv.waiters.begin());
    ThreadRec& w = threads_[static_cast<std::size_t>(waiter)];
    LAZYHB_CHECK(w.status == ThreadStatus::Parked);
    w.status = ThreadStatus::Pending;
    w.pendingOp.valid = true;
    w.signalPredecessor = signalEvent;
  }
}

void Execution::condBroadcast(std::int32_t condvar) {
  publishAndPark(OpKind::Broadcast, condvar, -1, -1, 0);
  if (abandoning_) return;
  const std::int32_t signalEvent = recordEvent(OpKind::Broadcast, condvar, -1, 0);
  ObjectInfo& cv = objects_[static_cast<std::size_t>(condvar)];
  if (!cv.waiters.empty()) touchObject(condvar);
  for (const int waiter : cv.waiters) {
    ThreadRec& w = threads_[static_cast<std::size_t>(waiter)];
    LAZYHB_CHECK(w.status == ThreadStatus::Parked);
    w.status = ThreadStatus::Pending;
    w.pendingOp.valid = true;
    w.signalPredecessor = signalEvent;
  }
  cv.waiters.clear();
}

void Execution::semAcquire(std::int32_t semaphore) {
  publishAndPark(OpKind::SemAcquire, semaphore, -1, -1, 0);
  if (abandoning_) return;
  ObjectInfo& s = objects_[static_cast<std::size_t>(semaphore)];
  LAZYHB_CHECK(s.a > 0);
  touchObject(semaphore);
  --s.a;
  recordEvent(OpKind::SemAcquire, semaphore, -1, 0);
}

void Execution::semRelease(std::int32_t semaphore) {
  publishAndPark(OpKind::SemRelease, semaphore, -1, -1, 0);
  if (abandoning_) return;
  touchObject(semaphore);
  ++objects_[static_cast<std::size_t>(semaphore)].a;
  recordEvent(OpKind::SemRelease, semaphore, -1, 0);
}

int Execution::spawnThread(std::function<void()> fn) {
  // Under TSO the picks >= kFlushPickOffset are flush picks, so real threads
  // are capped at the offset; under SC the full ThreadSet range is usable.
  const int threadCap = tso_ ? memory::kTsoMaxRealThreads : support::kMaxThreads;
  if (threadCount() >= threadCap) {
    failUsage("thread limit exceeded (" + std::to_string(threadCap) + ")");
    return -1;
  }
  // Park the closure in the engine-side slot *before* publishing: while the
  // spawner waits for the grant a checkpoint may snapshot its stack, and a
  // stack temporary owning heap (a big-capture std::function) would dangle
  // after a rollback. The slot is part of the snapshot instead.
  threads_[static_cast<std::size_t>(currentThread_)].pendingSpawnFn = std::move(fn);
  publishAndPark(OpKind::Spawn, -1, -1, -1, 0);
  if (abandoning_) {
    threads_[static_cast<std::size_t>(currentThread_)].pendingSpawnFn = nullptr;
    return -1;
  }

  // Commit: derive the child's schedule-invariant identity, register it as
  // an object, create its fiber, then run it to its first visible operation.
  const int childIndex = threadCount();
  Uid childUid;
  {
    ThreadRec& me = threads_[static_cast<std::size_t>(currentThread_)];
    childUid = deriveUid(me.uid, me.creationSeq++, ObjectKind::Thread);
  }
  // Thread names are drawn from a process-wide table: one "thread-N" string
  // per index, built once, so the millions of spawns an exploration performs
  // do not each allocate a name.
  static const std::vector<std::string> threadNames = [] {
    std::vector<std::string> names;
    names.reserve(static_cast<std::size_t>(support::kMaxThreads));
    for (int i = 0; i < support::kMaxThreads; ++i) {
      names.push_back("thread-" + std::to_string(i));
    }
    return names;
  }();

  ObjectInfo childObj;
  childObj.uid = childUid;
  childObj.kind = ObjectKind::Thread;
  childObj.name = threadNames[static_cast<std::size_t>(childIndex)];
  childObj.a = childIndex;
  const auto objIndex = static_cast<std::int32_t>(objects_.size());
  objects_.push_back(std::move(childObj));
  if (observer_ != nullptr) {
    observer_->onObjectRegistered(*this, objIndex, childUid, ObjectKind::Thread,
                                  objects_.back().name, 0);
  }

  const std::int32_t spawnEvent = recordEvent(OpKind::Spawn, objIndex, -1, 0);

  ThreadRec child;
  child.uid = childUid;
  child.spawnPredecessor = spawnEvent;
  child.objectIndex = objIndex;
  child.fiber = std::make_unique<Fiber>(
      stackPool_,
      std::move(threads_[static_cast<std::size_t>(currentThread_)].pendingSpawnFn));
  threads_.push_back(std::move(child));
  // Disarm the slot explicitly: a moved-from std::function is only
  // "unspecified but valid", and later snapshots copy the slot.
  threads_[static_cast<std::size_t>(currentThread_)].pendingSpawnFn = nullptr;

  advance(childIndex);
  return childIndex;
}

void Execution::joinThread(int tid) {
  LAZYHB_CHECK(tid >= 0 && tid < threadCount());
  // The target's thread-object entry rides in the pending operation (DPOR
  // reasons about join-join reorderings via the thread object's conflict
  // chain); every thread records its own object index at creation.
  const std::int32_t objIndex = threads_[static_cast<std::size_t>(tid)].objectIndex;
  LAZYHB_CHECK(objIndex >= 0);
  publishAndPark(OpKind::Join, objIndex, -1, tid, 0);
  if (abandoning_) return;
  const ThreadRec& target = threads_[static_cast<std::size_t>(tid)];
  LAZYHB_CHECK(target.status == ThreadStatus::Finished);
  threads_[static_cast<std::size_t>(currentThread_)].joinPredecessor =
      target.lastEventIndex;
  recordEvent(OpKind::Join, objIndex, -1, 0);
}

void Execution::yieldNow() {
  publishAndPark(OpKind::Yield, -1, -1, -1, 0);
  recordEvent(OpKind::Yield, -1, -1, 0);
}

void Execution::failAssertion(std::string message) {
  if (abandoning_) return;
  violation_ = Violation{Outcome::AssertionFailure, std::move(message), choices_};
  parkForViolation();
}

void Execution::failUsage(std::string message) {
  if (abandoning_) return;
  violation_ = Violation{Outcome::UsageError, std::move(message), choices_};
  parkForViolation();
}

void Execution::parkForViolation() {
  // Suspend the failing thread *without* unwinding it: unwinding here would
  // destroy its locals while other threads still reference them, and the
  // survivors would then be run forward into dead objects during teardown.
  // The host loop observes violation_ and ends the run; this fiber resumes
  // only in teardown mode and simply returns, continuing forward with every
  // subsequent operation granted as a no-op.
  ThreadRec& me = threads_[static_cast<std::size_t>(currentThread_)];
  me.fiber->yieldToHost();
  LAZYHB_CHECK(abandoning_);
  consumeTeardownFuel();
}

void Execution::teardownUnfinished() {
  abandoning_ = true;
  // Reverse spawn order: children run forward before the threads that own
  // the objects they reference (a child's lock guard must release a mutex
  // that still exists on its creator's stack).
  for (int tid = threadCount() - 1; tid >= 0; --tid) {
    ThreadRec& t = threads_[static_cast<std::size_t>(tid)];
    if (t.status != ThreadStatus::Finished) {
      teardownFuel_ = 512;  // per fiber: forward completion is ~100 ops
      advance(tid);
      LAZYHB_CHECK(t.fiber->finished());
      t.status = ThreadStatus::Finished;
    }
  }
  abandoning_ = false;
}

}  // namespace lazyhb::runtime
