// lazyhb/runtime/api.hpp
//
// The programming interface for code under test.
//
// Test programs are ordinary C++ callables that use these types instead of
// std::thread / std::mutex / plain shared variables. Every method that
// touches shared state is a *visible operation*: a scheduling point the
// explorer controls and an event in the happens-before trace. Example:
//
//   lazyhb::Shared<int> x{0};
//   lazyhb::Mutex m;
//   auto t = lazyhb::spawn([&] {
//     lazyhb::LockGuard guard(m);
//     x.store(x.load() + 1);
//   });
//   { lazyhb::LockGuard guard(m); x.store(x.load() + 1); }
//   t.join();
//   lazyhb::checkAlways(x.load() == 2, "both increments applied");
//
// All objects must be constructed inside a running controlled execution
// (i.e. from the test body or a thread it spawned), and must outlive every
// thread that touches them — exactly the lifetime discipline real concurrent
// C++ requires.

#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <new>
#include <string>
#include <type_traits>
#include <utility>

#include "runtime/execution.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace lazyhb {

namespace detail {

/// The execution the calling fiber belongs to; aborts if none is running.
inline runtime::Execution& currentExecution() {
  runtime::Execution* exec = runtime::Execution::current();
  LAZYHB_CHECK(exec != nullptr);
  return *exec;
}

/// Hash a shared value for state fingerprinting. Uses std::hash plus a
/// strong finaliser; specialise lazyhb::detail::ValueHash for user types
/// whose std::hash is weak or missing.
template <typename T>
struct ValueHash {
  [[nodiscard]] std::uint64_t operator()(const T& value) const {
    return support::mix64(static_cast<std::uint64_t>(std::hash<T>{}(value)) ^
                          0x9e3779b97f4a7c15ULL);
  }
};

/// True when Shared<T> keeps its value in the engine's object table rather
/// than inline (see Shared below).
template <typename T>
inline constexpr bool kEngineResidentShared =
    std::is_trivially_copyable_v<T> && std::is_default_constructible_v<T> &&
    sizeof(T) <= sizeof(std::int64_t);

template <typename T>
[[nodiscard]] inline std::int64_t valueToBits(const T& value) noexcept {
  static_assert(kEngineResidentShared<T>);
  std::int64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(T));
  return bits;
}

template <typename T>
[[nodiscard]] inline T bitsToValue(std::int64_t bits) noexcept {
  static_assert(kEngineResidentShared<T>);
  T value{};
  std::memcpy(&value, &bits, sizeof(T));
  return value;
}

/// Inline value storage for Shared<T> when T is too big (or not trivially
/// copyable) for the engine's object table; the engine-resident case
/// stores nothing here.
template <typename T, bool EngineResident>
struct SharedStorage {
  T value;
  explicit SharedStorage(T&& v) : value(std::move(v)) {}
};
template <typename T>
struct SharedStorage<T, true> {
  explicit SharedStorage(T&&) noexcept {}
};

}  // namespace detail

/// A fixed-capacity, stack-resident sequence: the checkpointable-contract
/// alternative to std::vector for program bodies (see execution.hpp —
/// resumable executions snapshot fiber stacks as raw bytes, so program
/// state must not own heap memory). Elements are constructed in place in
/// inline storage and destroyed in reverse order; capacity overflow is a
/// program bug and aborts the execution via checkAlways-style failure.
///
/// Deliberately minimal: emplace/push, indexing and range-for — exactly
/// what the benchmark corpus needs to build its object tables and worker
/// lists without touching the heap.
template <typename T, std::size_t N>
class InlineVec {
 public:
  InlineVec() = default;
  ~InlineVec() {
    for (std::size_t i = size_; i-- > 0;) ptr(i)->~T();
  }

  InlineVec(const InlineVec&) = delete;
  InlineVec& operator=(const InlineVec&) = delete;

  template <typename... Args>
  T& emplace(Args&&... args) {
    LAZYHB_CHECK(size_ < N);
    T* slot = new (static_cast<void*>(storage_ + size_ * sizeof(T)))
        T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void push(T value) { emplace(std::move(value)); }

  [[nodiscard]] T& operator[](std::size_t i) {
    LAZYHB_CHECK(i < size_);
    return *ptr(i);
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    LAZYHB_CHECK(i < size_);
    return *ptr(i);
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] T* begin() noexcept { return ptr(0); }
  [[nodiscard]] T* end() noexcept { return ptr(0) + size_; }
  [[nodiscard]] const T* begin() const noexcept { return ptr(0); }
  [[nodiscard]] const T* end() const noexcept { return ptr(0) + size_; }

 private:
  [[nodiscard]] T* ptr(std::size_t i) noexcept {
    return std::launder(reinterpret_cast<T*>(storage_ + i * sizeof(T)));
  }
  [[nodiscard]] const T* ptr(std::size_t i) const noexcept {
    return std::launder(reinterpret_cast<const T*>(storage_ + i * sizeof(T)));
  }

  alignas(T) unsigned char storage_[N * sizeof(T)];
  std::size_t size_ = 0;
};

/// Handle to a spawned thread. join() blocks until the thread finishes and
/// establishes a happens-before edge from its last event.
class ThreadHandle {
 public:
  ThreadHandle() = default;

  /// Join the thread. May be called at most once per spawned thread; joining
  /// an already-finished thread succeeds immediately.
  void join() {
    runtime::Execution& exec = detail::currentExecution();
    if (tid_ < 0) {
      // A dummy handle from a spawn that was no-op'd during execution
      // teardown; joining it is itself a no-op. Outside teardown a negative
      // id means the handle was never attached to a thread.
      LAZYHB_CHECK(exec.isTearingDown());
      return;
    }
    exec.joinThread(tid_);
  }

  /// Runtime thread index (execution-local; mainly for diagnostics).
  [[nodiscard]] int id() const noexcept { return tid_; }

 private:
  friend ThreadHandle spawn(std::function<void()> fn);
  explicit ThreadHandle(int tid) : tid_(tid) {}
  int tid_ = -1;
};

/// Start a new controlled thread running `fn`. A visible operation.
[[nodiscard]] inline ThreadHandle spawn(std::function<void()> fn) {
  return ThreadHandle(detail::currentExecution().spawnThread(std::move(fn)));
}

/// Voluntary scheduling point with no object (models Thread.yield()).
inline void yield() { detail::currentExecution().yieldNow(); }

/// Store-buffer drain point (models mfence / atomic_thread_fence(seq_cst)).
/// Under the TSO memory model the fence commits only once every store the
/// calling thread has buffered has landed in memory; under SC it is a
/// Yield-like visible operation, so fenced programs explore under both
/// models. Placing one between the store and the load of a Dekker-style
/// handshake is exactly what makes such programs correct under TSO.
inline void fence() { detail::currentExecution().fenceNow(); }

/// Property assertion over the program under test. A failure records an
/// AssertionFailure violation with the reproducing schedule and abandons the
/// current execution. Not itself a visible operation — read shared state via
/// Shared<T>::load() in the condition.
inline void checkAlways(bool condition, const char* message = "checkAlways failed") {
  if (!condition) {
    detail::currentExecution().failAssertion(message);
  }
}

/// A non-reentrant mutual-exclusion lock. lock()/unlock() are the visible
/// operations whose inter-thread edges the lazy HBR erases.
class Mutex {
 public:
  explicit Mutex(const char* name = "mutex")
      : exec_(&detail::currentExecution()),
        index_(exec_->registerObject(runtime::ObjectKind::Mutex, name, 0, -1)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() { exec_->mutexLock(index_); }
  void unlock() { exec_->mutexUnlock(index_); }

  /// Non-blocking acquisition attempt. Note: the result observes the mutex
  /// state, so TryLock events keep their edges even in the lazy HBR.
  [[nodiscard]] bool tryLock() { return exec_->mutexTryLock(index_); }

  /// True iff the calling thread currently holds this mutex (no event).
  [[nodiscard]] bool heldByCaller() const { return exec_->mutexHeldByCurrent(index_); }

 private:
  friend class CondVar;
  runtime::Execution* exec_;
  std::int32_t index_;
};

/// Scoped lock ownership (CP.44: always name the guard).
class LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) : mutex_(mutex) { mutex_.lock(); }
  ~LockGuard() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable with Java monitor semantics: wait() atomically
/// releases the mutex and parks; signal() wakes the longest-waiting thread;
/// broadcast() wakes all. Woken threads re-acquire the mutex under scheduler
/// control (the wakeup races like real code). No spurious wakeups occur, but
/// the usual `while (!predicate) cv.wait(m);` pattern is still required for
/// correctness under broadcast and multiple waiters.
class CondVar {
 public:
  explicit CondVar(const char* name = "condvar")
      : exec_(&detail::currentExecution()),
        index_(exec_->registerObject(runtime::ObjectKind::CondVar, name, 0, -1)) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Precondition: the calling thread holds `mutex`.
  void wait(Mutex& mutex) { exec_->condWait(index_, mutex.index_); }
  void signal() { exec_->condSignal(index_); }
  void broadcast() { exec_->condBroadcast(index_); }

 private:
  runtime::Execution* exec_;
  std::int32_t index_;
};

/// Counting semaphore. Semaphore operations keep their edges in the lazy
/// HBR (the count is observable data, so the mutex-erasure argument of
/// Theorem 2.2 does not extend to them).
class Semaphore {
 public:
  explicit Semaphore(int initial, const char* name = "semaphore")
      : exec_(&detail::currentExecution()),
        index_(exec_->registerObject(runtime::ObjectKind::Semaphore, name, 0, initial)) {
    LAZYHB_CHECK(initial >= 0);
  }

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void acquire() { exec_->semAcquire(index_); }
  void release() { exec_->semRelease(index_); }

 private:
  runtime::Execution* exec_;
  std::int32_t index_;
};

/// A shared variable of type T. Every access is a visible operation and a
/// conflict-edge source in both the regular and the lazy HBR. T must be
/// copyable and hashable (std::hash or a ValueHash specialisation).
///
/// Storage: small trivially-copyable values live in the *engine's* object
/// table — the simulation's shared memory — not in this object. Fiber
/// stacks then hold no bytes another thread can mutate, which is what lets
/// resumable executions (a) version fiber snapshots by how often the fiber
/// ran and (b) capture every shared value in the object-table snapshot.
/// Larger or non-trivial T falls back to inline storage; such a variable
/// accessed across threads is outside the checkpointable contract.
template <typename T>
class Shared {
  static constexpr bool kEngineResident = detail::kEngineResidentShared<T>;

 public:
  explicit Shared(T initial, const char* name = "var")
      : exec_(&detail::currentExecution()), storage_(T(initial)) {
    std::int64_t initialBits = -1;
    if constexpr (kEngineResident) initialBits = detail::valueToBits(initial);
    index_ = exec_->registerObject(runtime::ObjectKind::Var, name,
                                   detail::ValueHash<T>{}(initial), initialBits);
  }

  Shared(const Shared&) = delete;
  Shared& operator=(const Shared&) = delete;

  /// Visible read.
  [[nodiscard]] T load() {
    exec_->varPublish(index_, runtime::OpKind::Read);
    T result = get();
    exec_->varCommit(index_, runtime::OpKind::Read, 0);
    return result;
  }

  /// Visible write.
  void store(T desired) {
    exec_->varPublish(index_, runtime::OpKind::Write);
    set(std::move(desired));
    exec_->varCommit(index_, runtime::OpKind::Write, detail::ValueHash<T>{}(get()));
  }

  /// Atomic read-modify-write; returns the previous value.
  template <typename F>
  T modify(F&& f) {
    exec_->varPublish(index_, runtime::OpKind::Rmw);
    T previous = get();
    T current = previous;
    set(std::forward<F>(f)(std::move(current)));
    exec_->varCommit(index_, runtime::OpKind::Rmw, detail::ValueHash<T>{}(get()));
    return previous;
  }

  /// Atomic fetch-and-add (T must support +).
  T fetchAdd(T delta) {
    return modify([&delta](T v) { return static_cast<T>(v + delta); });
  }

  /// Atomic compare-exchange; returns true and stores `desired` iff the
  /// current value equals `expected`.
  bool compareExchange(const T& expected, T desired) {
    bool swapped = false;
    modify([&](T v) {
      if (v == expected) {
        swapped = true;
        return std::move(desired);
      }
      return v;
    });
    return swapped;
  }

  /// Non-instrumented peek: no event, no scheduling point. Only safe where
  /// no other thread can be mutating the variable (e.g. after joining all
  /// writers); provided for assertions and result extraction. Returns by
  /// value for engine-resident T, by const reference otherwise.
  [[nodiscard]] decltype(auto) peek() const noexcept(kEngineResident) {
    if constexpr (kEngineResident) {
      return detail::bitsToValue<T>(exec_->varBits(index_));
    } else {
      return static_cast<const T&>(storage_.value);
    }
  }

 private:
  [[nodiscard]] T get() const noexcept(kEngineResident) {
    if constexpr (kEngineResident) {
      return detail::bitsToValue<T>(exec_->varBits(index_));
    } else {
      return storage_.value;
    }
  }

  void set(T v) {
    if constexpr (kEngineResident) {
      exec_->setVarBits(index_, detail::valueToBits(v));
    } else {
      storage_.value = std::move(v);
    }
  }

  runtime::Execution* exec_;
  detail::SharedStorage<T, kEngineResident> storage_;
  std::int32_t index_ = -1;
};

}  // namespace lazyhb
