// lazyhb/runtime/api.hpp
//
// The programming interface for code under test.
//
// Test programs are ordinary C++ callables that use these types instead of
// std::thread / std::mutex / plain shared variables. Every method that
// touches shared state is a *visible operation*: a scheduling point the
// explorer controls and an event in the happens-before trace. Example:
//
//   lazyhb::Shared<int> x{0};
//   lazyhb::Mutex m;
//   auto t = lazyhb::spawn([&] {
//     lazyhb::LockGuard guard(m);
//     x.store(x.load() + 1);
//   });
//   { lazyhb::LockGuard guard(m); x.store(x.load() + 1); }
//   t.join();
//   lazyhb::checkAlways(x.load() == 2, "both increments applied");
//
// All objects must be constructed inside a running controlled execution
// (i.e. from the test body or a thread it spawned), and must outlive every
// thread that touches them — exactly the lifetime discipline real concurrent
// C++ requires.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>

#include "runtime/execution.hpp"
#include "support/diagnostics.hpp"
#include "support/hash.hpp"

namespace lazyhb {

namespace detail {

/// The execution the calling fiber belongs to; aborts if none is running.
inline runtime::Execution& currentExecution() {
  runtime::Execution* exec = runtime::Execution::current();
  LAZYHB_CHECK(exec != nullptr);
  return *exec;
}

/// Hash a shared value for state fingerprinting. Uses std::hash plus a
/// strong finaliser; specialise lazyhb::detail::ValueHash for user types
/// whose std::hash is weak or missing.
template <typename T>
struct ValueHash {
  [[nodiscard]] std::uint64_t operator()(const T& value) const {
    return support::mix64(static_cast<std::uint64_t>(std::hash<T>{}(value)) ^
                          0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace detail

/// Handle to a spawned thread. join() blocks until the thread finishes and
/// establishes a happens-before edge from its last event.
class ThreadHandle {
 public:
  ThreadHandle() = default;

  /// Join the thread. May be called at most once per spawned thread; joining
  /// an already-finished thread succeeds immediately.
  void join() {
    runtime::Execution& exec = detail::currentExecution();
    if (tid_ < 0) {
      // A dummy handle from a spawn that was no-op'd during execution
      // teardown; joining it is itself a no-op. Outside teardown a negative
      // id means the handle was never attached to a thread.
      LAZYHB_CHECK(exec.isTearingDown());
      return;
    }
    exec.joinThread(tid_);
  }

  /// Runtime thread index (execution-local; mainly for diagnostics).
  [[nodiscard]] int id() const noexcept { return tid_; }

 private:
  friend ThreadHandle spawn(std::function<void()> fn);
  explicit ThreadHandle(int tid) : tid_(tid) {}
  int tid_ = -1;
};

/// Start a new controlled thread running `fn`. A visible operation.
[[nodiscard]] inline ThreadHandle spawn(std::function<void()> fn) {
  return ThreadHandle(detail::currentExecution().spawnThread(std::move(fn)));
}

/// Voluntary scheduling point with no object (models Thread.yield()).
inline void yield() { detail::currentExecution().yieldNow(); }

/// Property assertion over the program under test. A failure records an
/// AssertionFailure violation with the reproducing schedule and abandons the
/// current execution. Not itself a visible operation — read shared state via
/// Shared<T>::load() in the condition.
inline void checkAlways(bool condition, const char* message = "checkAlways failed") {
  if (!condition) {
    detail::currentExecution().failAssertion(message);
  }
}

/// A non-reentrant mutual-exclusion lock. lock()/unlock() are the visible
/// operations whose inter-thread edges the lazy HBR erases.
class Mutex {
 public:
  explicit Mutex(const char* name = "mutex")
      : exec_(&detail::currentExecution()),
        index_(exec_->registerObject(runtime::ObjectKind::Mutex, name, 0, -1)) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() { exec_->mutexLock(index_); }
  void unlock() { exec_->mutexUnlock(index_); }

  /// Non-blocking acquisition attempt. Note: the result observes the mutex
  /// state, so TryLock events keep their edges even in the lazy HBR.
  [[nodiscard]] bool tryLock() { return exec_->mutexTryLock(index_); }

  /// True iff the calling thread currently holds this mutex (no event).
  [[nodiscard]] bool heldByCaller() const { return exec_->mutexHeldByCurrent(index_); }

 private:
  friend class CondVar;
  runtime::Execution* exec_;
  std::int32_t index_;
};

/// Scoped lock ownership (CP.44: always name the guard).
class LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) : mutex_(mutex) { mutex_.lock(); }
  ~LockGuard() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable with Java monitor semantics: wait() atomically
/// releases the mutex and parks; signal() wakes the longest-waiting thread;
/// broadcast() wakes all. Woken threads re-acquire the mutex under scheduler
/// control (the wakeup races like real code). No spurious wakeups occur, but
/// the usual `while (!predicate) cv.wait(m);` pattern is still required for
/// correctness under broadcast and multiple waiters.
class CondVar {
 public:
  explicit CondVar(const char* name = "condvar")
      : exec_(&detail::currentExecution()),
        index_(exec_->registerObject(runtime::ObjectKind::CondVar, name, 0, -1)) {}

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Precondition: the calling thread holds `mutex`.
  void wait(Mutex& mutex) { exec_->condWait(index_, mutex.index_); }
  void signal() { exec_->condSignal(index_); }
  void broadcast() { exec_->condBroadcast(index_); }

 private:
  runtime::Execution* exec_;
  std::int32_t index_;
};

/// Counting semaphore. Semaphore operations keep their edges in the lazy
/// HBR (the count is observable data, so the mutex-erasure argument of
/// Theorem 2.2 does not extend to them).
class Semaphore {
 public:
  explicit Semaphore(int initial, const char* name = "semaphore")
      : exec_(&detail::currentExecution()),
        index_(exec_->registerObject(runtime::ObjectKind::Semaphore, name, 0, initial)) {
    LAZYHB_CHECK(initial >= 0);
  }

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  void acquire() { exec_->semAcquire(index_); }
  void release() { exec_->semRelease(index_); }

 private:
  runtime::Execution* exec_;
  std::int32_t index_;
};

/// A shared variable of type T. Every access is a visible operation and a
/// conflict-edge source in both the regular and the lazy HBR. T must be
/// copyable and hashable (std::hash or a ValueHash specialisation).
template <typename T>
class Shared {
 public:
  explicit Shared(T initial, const char* name = "var")
      : exec_(&detail::currentExecution()), value_(std::move(initial)),
        index_(exec_->registerObject(runtime::ObjectKind::Var, name,
                                     detail::ValueHash<T>{}(value_), -1)) {}

  Shared(const Shared&) = delete;
  Shared& operator=(const Shared&) = delete;

  /// Visible read.
  [[nodiscard]] T load() {
    exec_->varPublish(index_, runtime::OpKind::Read);
    T result = value_;
    exec_->varCommit(index_, runtime::OpKind::Read, 0);
    return result;
  }

  /// Visible write.
  void store(T desired) {
    exec_->varPublish(index_, runtime::OpKind::Write);
    value_ = std::move(desired);
    exec_->varCommit(index_, runtime::OpKind::Write, detail::ValueHash<T>{}(value_));
  }

  /// Atomic read-modify-write; returns the previous value.
  template <typename F>
  T modify(F&& f) {
    exec_->varPublish(index_, runtime::OpKind::Rmw);
    T previous = value_;
    value_ = std::forward<F>(f)(std::move(value_));
    exec_->varCommit(index_, runtime::OpKind::Rmw, detail::ValueHash<T>{}(value_));
    return previous;
  }

  /// Atomic fetch-and-add (T must support +).
  T fetchAdd(T delta) {
    return modify([&delta](T v) { return static_cast<T>(v + delta); });
  }

  /// Atomic compare-exchange; returns true and stores `desired` iff the
  /// current value equals `expected`.
  bool compareExchange(const T& expected, T desired) {
    bool swapped = false;
    modify([&](T v) {
      if (v == expected) {
        swapped = true;
        return std::move(desired);
      }
      return v;
    });
    return swapped;
  }

  /// Non-instrumented peek: no event, no scheduling point. Only safe where
  /// no other thread can be mutating the variable (e.g. after joining all
  /// writers); provided for assertions and result extraction.
  [[nodiscard]] const T& peek() const noexcept { return value_; }

 private:
  runtime::Execution* exec_;
  T value_;
  std::int32_t index_;
};

}  // namespace lazyhb
