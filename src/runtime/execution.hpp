// lazyhb/runtime/execution.hpp
//
// One controlled execution of a program under test.
//
// The engine runs every logical thread on a fiber and multiplexes them on
// the calling OS thread. A thread runs until it reaches its next *visible
// operation* (see operation.hpp), publishes the operation descriptor, and
// yields; the host loop then asks the Scheduler which enabled thread may
// commit its pending operation. One pick == one committed event, so the
// sequence of picks is a complete, replayable encoding of the schedule.
//
// This structure gives explorers exactly what dynamic partial-order
// reduction needs: at every scheduling point, the pending operation of every
// live thread is known *before* anything is committed.
//
// Resumable executions (incremental prefix replay). A tree search's
// consecutive schedules share a prefix; re-running it costs fibers, engine
// bookkeeping and recorder work just to get back to the divergence point.
// In resumable mode an execution can instead *fork itself at a scheduling
// point*: checkpoint() snapshots every thread's suspended continuation
// (fiber stack bytes restored in place — see fiber.hpp), the object table
// and the append-only event/choice logs; rollbackTo(depth) restores the
// snapshot after the schedule completes, and resume() drives the host loop
// onward along a different suffix. Threads spawned past the checkpoint are
// discarded, threads that existed resume exactly where they were parked.
//
// Soundness contract (the "checkpointable program" contract): restore
// rewrites fiber stacks as raw bytes, so the program under test must keep
// all its cross-schedule-varying state either in registered lazyhb objects
// (Shared/Mutex/CondVar/Semaphore — snapshotted by the engine) or in
// trivially-copyable stack locals. A program whose stack owns heap memory
// (std::vector, std::string, ...) must not run in resumable mode: the heap
// is not versioned, so a restored stack would resurrect stale owners.
// Closures passed to spawn are exempt — spawnThread parks them in an
// engine-side slot before publishing, and the snapshot copies the slot.
// Explorers fall back to full re-execution (with recorder-side replay
// elision) for programs that do not declare the contract.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "memory/memory_model.hpp"
#include "runtime/fiber.hpp"
#include "runtime/operation.hpp"
#include "support/hash.hpp"
#include "support/thread_set.hpp"

namespace lazyhb::runtime {

class Execution;

/// Strategy interface: decides which enabled thread commits next.
class Scheduler {
 public:
  /// Sentinel return value: prune (abandon) the current execution.
  static constexpr int kAbandon = -1;

  virtual ~Scheduler() = default;

  /// Called at every scheduling point. Must return a member of
  /// exec.enabled(), or kAbandon to abandon the execution.
  virtual int pick(Execution& exec) = 0;
};

/// Passive listener for execution lifecycle and events (the trace module's
/// TraceRecorder is the canonical implementation).
class ExecutionObserver {
 public:
  virtual ~ExecutionObserver() = default;
  virtual void onExecutionStart(const Execution&) {}
  /// `initialValueHash` is the Var's initial value hash (0 for other kinds),
  /// so observers can mirror value state without reading back into the
  /// Execution — the registration + event stream alone replays a trace.
  virtual void onObjectRegistered(const Execution&, std::int32_t index, Uid uid,
                                  ObjectKind kind, const std::string& name,
                                  std::uint64_t initialValueHash) {
    (void)index; (void)uid; (void)kind; (void)name; (void)initialValueHash;
  }
  virtual void onEvent(const Execution&, const EventRecord&) {}
  virtual void onExecutionEnd(const Execution&, Outcome) {}
};

/// Execution-time limits and knobs.
struct Config {
  /// Abort an execution that commits more events than this (guards against
  /// unbounded spin loops in programs under test).
  std::uint32_t maxEventsPerSchedule = 1u << 20;
  /// The memory model this execution runs under (memory/memory_model.hpp).
  /// Sc is byte-identical to the pre-subsystem engine; Tso adds per-thread
  /// FIFO store buffers whose flushes are scheduler picks
  /// >= memory::kFlushPickOffset.
  memory::MemoryModel memoryModel = memory::MemoryModel::Sc;
};

/// A thread's pending (published but uncommitted) visible operation.
struct PendingOp {
  bool valid = false;
  OpKind kind = OpKind::Yield;
  std::int32_t object = -1;       ///< primary object index (-1: none)
  std::int32_t mutexObject = -1;  ///< Wait/Reacquire: the mutex
  int targetThread = -1;          ///< Join: joined thread's index
  std::uint64_t aux = 0;
};

/// Registry entry for a shared object. `a` is kind-dependent scalar state:
/// mutex owner thread index (-1 free), semaphore count, thread index for
/// Thread entries, and the engine-resident value bits for Var entries
/// (small trivially-copyable Shared<T> values live here — see api.hpp);
/// `valueHash` is the current value hash for Var entries.
struct ObjectInfo {
  Uid uid = 0;
  ObjectKind kind = ObjectKind::Var;
  std::string name;
  std::uint64_t valueHash = 0;
  std::int64_t a = -1;
  std::vector<int> waiters;  ///< CondVar: parked thread indices, FIFO
  /// Dirty stamp: the checkpoint epoch that last undo-logged this object.
  /// Engine-internal (undo-log staging); epochs are never reused, so a
  /// stale stamp is simply "not dirty in the current epoch".
  std::uint64_t epoch = 0;
};

/// Details of a detected violation (assertion failure, deadlock, API
/// misuse), with the choice sequence that reproduces it.
struct Violation {
  Outcome kind = Outcome::Terminal;
  std::string message;
  std::vector<int> schedule;  ///< thread index picked at each step
};

class Execution {
 public:
  /// `observer` may be nullptr. The stack pool outlives the execution and is
  /// typically shared by all executions of one exploration.
  Execution(const Config& config, StackPool& stackPool,
            ExecutionObserver* observer);
  ~Execution();

  Execution(const Execution&) = delete;
  Execution& operator=(const Execution&) = delete;

  /// Run `body` as thread 0 under `scheduler` control. May be called once.
  Outcome run(const std::function<void()>& body, Scheduler& scheduler);

  // --- resumable mode (incremental prefix replay) ---------------------------

  /// Sentinel for "no staged checkpoint".
  static constexpr std::size_t kNoCheckpoint = static_cast<std::size_t>(-1);

  /// True when this build can snapshot/restore executions (fast-fiber
  /// switch, no AddressSanitizer).
  [[nodiscard]] static constexpr bool checkpointingSupported() noexcept {
    return Fiber::kSnapshotSupported;
  }

  /// Switch this execution into resumable mode. Must be called before
  /// run(). End-of-run teardown is deferred (fibers keep their state so
  /// checkpoints can be restored); the destructor tears down whatever is
  /// left. Requires checkpointingSupported().
  void enableResumable();

  /// Stage a snapshot at the current scheduling point (only callable from
  /// Scheduler::pick, when every fiber is suspended). Checkpoints form a
  /// stack ordered by depth; staging at the top's depth is a no-op.
  /// Returns the staged depth (== events().size()).
  std::size_t checkpoint();

  /// Deepest staged checkpoint at depth <= `depth`, or kNoCheckpoint.
  [[nodiscard]] std::size_t deepestCheckpointAtOrBelow(std::size_t depth) const noexcept;

  /// After run()/resume() has returned: restore the staged checkpoint at
  /// exactly `depth`, discarding deeper ones (they stay staged for reuse —
  /// a node can be rolled back to once per remaining sibling).
  void rollbackTo(std::size_t depth);

  /// Drop the staged checkpoint at exactly `depth`, freeing its fiber
  /// images (byte-budgeted snapshot store; explore/prefix_replay.hpp owns
  /// the policy). The undo log is retained — rolling back *past* an evicted
  /// depth to a shallower stage still replays its entries. Returns false
  /// when nothing is staged at that depth.
  bool evictCheckpoint(std::size_t depth);

  /// Approximate resident bytes of the checkpoint staged at `depth`:
  /// dominated by the fiber stack images (which adjacent checkpoints may
  /// share — this counts each referenced image in full, an upper bound).
  /// 0 when nothing is staged at that depth.
  [[nodiscard]] std::size_t checkpointApproxBytes(std::size_t depth) const noexcept;

  /// Continue a rolled-back execution under `scheduler` from its restored
  /// scheduling point. Returns like run().
  Outcome resume(Scheduler& scheduler);

  // --- introspection for schedulers/explorers -------------------------------

  /// Picks the scheduler may return: thread indices whose pending operation
  /// can commit, plus — under TSO — one flush pick
  /// (memory::kFlushPickOffset + t) per thread with a non-empty store
  /// buffer. Flush picks ignore the owning thread's status: a thread may
  /// finish, park or block with stores still buffered, and those stores
  /// must still be able to drain.
  [[nodiscard]] support::ThreadSet enabled() const;

  /// Number of threads created so far (indices are [0, threadCount())).
  [[nodiscard]] int threadCount() const noexcept { return static_cast<int>(threads_.size()); }

  /// Exclusive upper bound on pick values: threadCount() under SC,
  /// memory::kFlushPickOffset + threadCount() under TSO. Loops that inspect
  /// every potential pick (DPOR's race analysis) iterate to this bound.
  [[nodiscard]] int pickLimit() const noexcept {
    return tso_ ? memory::kFlushPickOffset + threadCount() : threadCount();
  }

  /// The memory model this execution runs under.
  [[nodiscard]] memory::MemoryModel memoryModel() const noexcept {
    return config_.memoryModel;
  }

  /// The pending operation behind a pick. For a thread index this is the
  /// thread's published operation; for a flush pick (TSO) it is a
  /// synthesized OpKind::Flush on the buffer head's variable (valid iff the
  /// buffer is non-empty), so DPOR's dependence machinery sees flushes as
  /// ordinary pending writes.
  [[nodiscard]] const PendingOp& pending(int tid) const;
  [[nodiscard]] bool threadFinished(int tid) const;
  [[nodiscard]] Uid threadUid(int tid) const;

  [[nodiscard]] const ObjectInfo& object(std::int32_t index) const;
  [[nodiscard]] int objectCount() const noexcept { return static_cast<int>(objects_.size()); }

  /// Committed events, in schedule order.
  [[nodiscard]] const std::vector<EventRecord>& events() const noexcept { return events_; }

  /// Thread indices picked so far, one per committed event.
  [[nodiscard]] const std::vector<int>& choices() const noexcept { return choices_; }

  /// Fingerprint of the shared state: all Var values, mutex owners and
  /// semaphore counts, combined order-independently. While the execution is
  /// in flight this is computed live; once run() has returned it is the
  /// state at the moment the schedule ended (teardown destructors run after
  /// that point and do not perturb it). Meaningful for comparing *terminal*
  /// states of complete executions (Theorems 2.1/2.2).
  [[nodiscard]] support::Hash128 stateFingerprint() const;

  /// The violation record if run() ended with isViolation(outcome).
  [[nodiscard]] const Violation& violation() const noexcept { return violation_; }

  // --- entry points used by the user-facing API (api.hpp) -------------------
  // These must only be called from inside a running fiber of this execution.

  /// The execution the calling fiber belongs to (null outside of run()).
  [[nodiscard]] static Execution* current() noexcept;

  /// Index of the thread whose fiber is currently running.
  [[nodiscard]] int currentThread() const noexcept { return currentThread_; }

  /// True while unfinished fibers are being run forward with all visible
  /// operations granted as no-ops (see teardownUnfinished).
  [[nodiscard]] bool isTearingDown() const noexcept { return abandoning_; }

  [[nodiscard]] std::int32_t registerObject(ObjectKind kind, const char* name,
                                            std::uint64_t initialValueHash,
                                            std::int64_t initialA);

  /// Publish a variable access and block until the scheduler grants it. The
  /// caller then mutates the value and calls varCommit (no yield between).
  void varPublish(std::int32_t object, OpKind kind);
  void varCommit(std::int32_t object, OpKind kind, std::uint64_t newValueHash);

  /// Engine-resident Var value bits (api.hpp Shared<T> keeps small
  /// trivially-copyable values in the object table, so they are part of
  /// checkpoints and never live on a fiber stack). Under TSO a load
  /// forwards from the calling thread's own store buffer (newest matching
  /// entry) before falling through to memory.
  [[nodiscard]] std::int64_t varBits(std::int32_t object) const noexcept {
    if (tso_) return varBitsTso(object);
    return objects_[static_cast<std::size_t>(object)].a;
  }

  /// Under TSO a granted Write stages `bits` into the calling thread's FIFO
  /// store buffer instead of memory (varCommit then fills in the entry's
  /// value hash); Rmw — granted only on an empty buffer — and every SC
  /// write still land in memory directly.
  void setVarBits(std::int32_t object, std::int64_t bits) {
    if (tso_ && stageStoreTso(object, bits)) return;
    touchObject(object);
    objects_[static_cast<std::size_t>(object)].a = bits;
  }

  /// lazyhb::fence(): a visible Fence event. Under TSO it is enabled only
  /// once the caller's store buffer has fully drained; under SC it is a
  /// Yield-like scheduling point, so fenced programs run under both models.
  void fenceNow();

  // --- per-schedule TSO statistics (all zero under SC) ----------------------

  /// Flush events committed in this schedule so far.
  [[nodiscard]] std::uint64_t flushEventCount() const noexcept { return flushEvents_; }
  /// Fence events committed in this schedule so far.
  [[nodiscard]] std::uint64_t fenceEventCount() const noexcept { return fenceEvents_; }
  /// High-water mark of any single thread's buffered store count.
  [[nodiscard]] std::uint32_t maxBufferedStores() const noexcept {
    return maxBufferedStores_;
  }

  void mutexLock(std::int32_t object);
  void mutexUnlock(std::int32_t object);
  [[nodiscard]] bool mutexTryLock(std::int32_t object);
  [[nodiscard]] bool mutexHeldByCurrent(std::int32_t object) const;

  void condWait(std::int32_t condvar, std::int32_t mutex);
  void condSignal(std::int32_t condvar);
  void condBroadcast(std::int32_t condvar);

  void semAcquire(std::int32_t semaphore);
  void semRelease(std::int32_t semaphore);

  [[nodiscard]] int spawnThread(std::function<void()> fn);
  void joinThread(int tid);
  void yieldNow();

  /// Record an assertion failure in the program under test and end the
  /// execution. The failing thread is parked (not unwound — its locals may
  /// be referenced by other threads) and later run forward during teardown.
  /// During teardown this is a no-op (conditions evaluated over no-op'd
  /// operations are meaningless).
  void failAssertion(std::string message);

 private:
  enum class ThreadStatus : std::uint8_t {
    Pending,   ///< has a published, uncommitted operation
    Parked,    ///< inside CondVar::wait, not yet signalled
    Finished,  ///< entry function returned (or was abandoned)
  };

  /// One store parked in a thread's TSO store buffer: destination object,
  /// the engine-resident value bits, and the value's hash (filled by
  /// varCommit immediately after the store stages — no scheduling point in
  /// between, so every entry an observer can see is complete).
  struct StoreBufferEntry {
    std::int32_t object = -1;
    std::int64_t bits = 0;
    std::uint64_t valueHash = 0;
  };

  struct ThreadRec {
    std::unique_ptr<Fiber> fiber;
    Uid uid = 0;
    ThreadStatus status = ThreadStatus::Pending;
    PendingOp pendingOp;
    std::uint32_t eventsExecuted = 0;
    /// TSO: this thread's FIFO store buffer, oldest first. Always empty
    /// under SC. Outlives the thread's own activity — a thread can finish
    /// with stores still buffered, and they drain via later flush picks.
    std::vector<StoreBufferEntry> storeBuffer;
    /// TSO: flush events committed for this thread's buffer so far — the
    /// indexInThread counter of its flush agent's event stream.
    std::uint32_t flushCount = 0;
    /// Dirty stamp for the buffer undo log (mirrors ObjectInfo::epoch).
    std::uint64_t bufferEpoch = 0;
    std::uint32_t creationSeq = 0;   ///< per-thread counter for derived UIDs
    std::int32_t spawnPredecessor = -1;   ///< consumed by the first event
    std::int32_t signalPredecessor = -1;  ///< consumed by the Reacquire event
    std::int32_t joinPredecessor = -1;    ///< staged just before a Join event
    std::int32_t lastEventIndex = -1;
    std::int32_t objectIndex = -1;        ///< this thread's own Thread object
    /// Times this thread's fiber has been resumed. The stack is a pure
    /// function of (shared prefix, advanceCount), which makes this the
    /// version tag for snapshot image sharing.
    std::uint32_t advanceCount = 0;
    /// A closure handed to spawnThread is parked here, engine-side, before
    /// the Spawn is published — so no fiber stack owns heap at a
    /// suspension point and checkpoints can copy the slot instead.
    std::function<void()> pendingSpawnFn;
  };

  /// The byte-level part of a thread's suspended state: fiber continuation
  /// plus the armed spawn slot. Immutable once captured and shared between
  /// adjacent snapshots — a thread's stack only changes when the thread is
  /// advanced, so consecutive checkpoints along a descent reuse the same
  /// image for every thread that did not move (advanceCount versioning).
  struct ThreadImage {
    FiberImage fiber;
    std::function<void()> pendingSpawnFn;
  };

  /// Rollback snapshot of one thread.
  struct ThreadSnapshot {
    ThreadStatus status = ThreadStatus::Pending;
    PendingOp pendingOp;
    std::uint32_t eventsExecuted = 0;
    std::uint32_t creationSeq = 0;
    std::uint32_t advanceCount = 0;  ///< image version (see ThreadImage)
    std::int32_t spawnPredecessor = -1;
    std::int32_t signalPredecessor = -1;
    std::int32_t joinPredecessor = -1;
    std::int32_t lastEventIndex = -1;
    std::shared_ptr<const ThreadImage> image;  ///< null for Finished threads
  };

  /// Per-thread cache of the latest captured image, keyed by advanceCount.
  struct ImageCacheEntry {
    std::uint32_t version = kInvalidVersion;
    std::shared_ptr<const ThreadImage> image;
  };
  static constexpr std::uint32_t kInvalidVersion = static_cast<std::uint32_t>(-1);

  /// One undo-log entry: the pre-image of an object's mutable state the
  /// first time it is written after a checkpoint (uid/kind/name are
  /// immutable after registration and need no copy). Replaying entries
  /// newest-first restores the object table to any staged depth, so
  /// checkpoint() costs O(objects touched since the last stage) instead of
  /// O(all objects).
  struct ObjectUndo {
    std::int32_t index = -1;
    std::uint64_t valueHash = 0;
    std::int64_t a = -1;
    std::vector<int> waiters;
  };

  /// One buffer undo-log entry: the pre-image of a thread's store buffer
  /// (and flush counter) the first time either mutates after a checkpoint —
  /// the store-buffer twin of ObjectUndo, so TSO checkpoints stay
  /// O(buffers touched) like object checkpoints stay O(objects touched).
  struct BufferUndo {
    int tid = -1;
    std::uint32_t flushCount = 0;
    std::vector<StoreBufferEntry> entries;
  };

  /// One staged rollback point of the whole execution. Object state is not
  /// copied: `undoMark` remembers the undo-log length at staging time, and
  /// rollback replays the entries above it backwards. Store buffers work
  /// the same way through `bufferUndoMark`.
  struct ExecSnapshot {
    std::size_t depth = 0;  ///< events_.size() == choices_.size()
    std::size_t threadCount = 0;
    std::size_t objectCount = 0;
    std::size_t undoMark = 0;  ///< undo-log length when this was staged
    std::size_t bufferUndoMark = 0;  ///< buffer undo-log length at staging
    std::uint64_t flushEvents = 0;   ///< TSO stat counters at staging time
    std::uint64_t fenceEvents = 0;
    std::uint32_t maxBufferedStores = 0;
    std::vector<ThreadSnapshot> threads;
  };

  /// Run tid's fiber until it publishes its next operation or finishes.
  void advance(int tid);

  /// The scheduling loop shared by run() and resume().
  void driveLoop(Scheduler& scheduler);

  /// Common tail of run()/resume(): fingerprint, teardown (unless
  /// resumable), observer notification.
  Outcome finishRun();

  /// Yield the current fiber until the scheduler grants its pending op.
  void publishAndPark(OpKind kind, std::int32_t object, std::int32_t mutexObject,
                      int targetThread, std::uint64_t aux);

  /// Append a committed event for the current thread and notify observers.
  /// Returns the event's global index. `valueOverride`, when non-null,
  /// supplies the event's valueHash instead of the object's memory value —
  /// TSO needs it for buffered writes (memory untouched) and forwarded
  /// reads (observed value is the buffer's, not memory's).
  std::int32_t recordEvent(OpKind kind, std::int32_t object,
                           std::int32_t mutexObject, std::uint64_t aux,
                           const std::uint64_t* valueOverride = nullptr);

  // --- TSO store-buffer machinery (all no-ops / unreachable under SC) -------

  /// Commit a flush pick: pop the oldest buffered store of `tid` into
  /// memory and record the Flush event under the thread's flush agent.
  void commitFlush(int tid);

  /// varCommit's TSO path: buffered Write (fills the staged entry's hash,
  /// memory untouched, event aux=1), forwarded Read (event carries the
  /// forwarded-or-memory value), or write-through (Rmw, non-resident
  /// Write).
  void varCommitTso(std::int32_t object, OpKind kind, std::uint64_t newValueHash);

  /// Out-of-line slow path of varBits(): newest matching own-buffer entry,
  /// else memory.
  [[nodiscard]] std::int64_t varBitsTso(std::int32_t object) const noexcept;

  /// setVarBits's TSO hook: returns true when the bits were staged into the
  /// calling thread's store buffer (granted Write on an engine-resident
  /// Shared<T>); false directs the caller to write through.
  bool stageStoreTso(std::int32_t object, std::int64_t bits);

  /// Dirty-tracking hook for store buffers (the touchObject analogue).
  void touchBuffer(int tid) {
    if (snapshots_.empty()) return;
    ThreadRec& t = threads_[static_cast<std::size_t>(tid)];
    if (t.bufferEpoch == currentEpoch_) return;
    t.bufferEpoch = currentEpoch_;
    logBufferUndo(tid, t);
  }
  void logBufferUndo(int tid, const ThreadRec& t);

  /// Dirty-tracking hook: called before the first mutation of an object's
  /// state since the last checkpoint; logs its pre-image once per epoch.
  /// No-op when nothing is staged (there is nothing to roll back to).
  void touchObject(std::int32_t index) {
    if (snapshots_.empty()) return;
    ObjectInfo& o = objects_[static_cast<std::size_t>(index)];
    if (o.epoch == currentEpoch_) return;
    o.epoch = currentEpoch_;
    logObjectUndo(index, o);
  }
  void logObjectUndo(std::int32_t index, const ObjectInfo& o);

  [[nodiscard]] bool isEnabled(const ThreadRec& t) const;
  [[nodiscard]] bool allFinished() const;
  [[nodiscard]] support::Hash128 computeStateFingerprint() const;
  void teardownUnfinished();
  void consumeTeardownFuel();
  void parkForViolation();
  void failUsage(std::string message);

  Config config_;
  StackPool& stackPool_;
  ExecutionObserver* observer_;
  /// Cached config_.memoryModel == Tso: varBits sits on the hot path of
  /// every Shared<T> access, so the SC fast path tests one bool.
  bool tso_ = false;

  std::vector<ThreadRec> threads_;
  std::vector<ObjectInfo> objects_;
  std::vector<EventRecord> events_;
  std::vector<int> choices_;

  int currentThread_ = -1;
  bool ran_ = false;
  bool done_ = false;
  bool abandoning_ = false;
  bool resumable_ = false;
  std::uint32_t teardownFuel_ = 0;
  Outcome outcome_ = Outcome::Terminal;
  Violation violation_;
  support::Hash128 finalFingerprint_;

  // Staged rollback points (resumable mode), shallow -> deep (eviction may
  // leave depth gaps); entries are pooled so their vectors keep capacity
  // across restage cycles.
  std::vector<ExecSnapshot> snapshots_;
  std::vector<ExecSnapshot> snapshotPool_;
  std::vector<ImageCacheEntry> imageCache_;  // per thread, advanceCount-keyed

  // Object undo log (see ObjectUndo): an arena indexed by undoSize_ — the
  // vector never shrinks, so the per-entry waiters vectors keep their
  // capacity across reuse. Epochs are handed out by a monotone counter;
  // an object is logged at most once per epoch.
  std::vector<ObjectUndo> undoLog_;
  std::size_t undoSize_ = 0;
  std::uint64_t epochCounter_ = 0;
  std::uint64_t currentEpoch_ = 0;

  // --- TSO state (quiescent under SC) ---------------------------------------

  /// Store-buffer undo log, arena-indexed like undoLog_ (entry vectors keep
  /// their capacity across reuse).
  std::vector<BufferUndo> bufferUndoLog_;
  std::size_t bufferUndoSize_ = 0;
  /// Set by stageStoreTso, consumed by varCommit: the granted Write between
  /// them staged a buffer entry (no scheduling point separates the two, so
  /// one flag — not per-thread state — suffices).
  bool stagedStore_ = false;
  /// Backing storage for pending() on flush picks (synthesized per call).
  mutable PendingOp flushScratch_;
  std::uint64_t flushEvents_ = 0;
  std::uint64_t fenceEvents_ = 0;
  std::uint32_t maxBufferedStores_ = 0;
};

}  // namespace lazyhb::runtime
