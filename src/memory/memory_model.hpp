// lazyhb/memory/memory_model.hpp
//
// The pluggable memory-model subsystem. A memory model decides what a
// Shared<T> write does at commit time and which extra scheduler-visible
// events an execution exposes:
//
//   Sc  — sequential consistency (the default): every write lands in memory
//         immediately; semantics and every observable count are
//         byte-identical to the engine before this subsystem existed.
//   Tso — total store order (x86-style): each thread owns a FIFO store
//         buffer. A Shared<T> store enqueues into the writer's buffer; a
//         separate *flush* event — schedulable like any other event —
//         moves the oldest buffered store to memory. A thread's loads
//         forward from its own buffer (newest matching entry) before
//         falling through to memory, which is exactly the store->load
//         reordering TSO permits. lazyhb::fence() drains the buffer
//         (enabled only when it is empty), restoring SC ordering locally.
//
// Following Lazy TSO Reachability (Bouajjani et al., see PAPERS.md), the
// buffer effects are *lazily enumerated as extra events* rather than baked
// into a product state space: a flush of thread t is encoded as the
// scheduler pick `kFlushPickOffset + t`, so the schedule tree, ThreadSet
// machinery, DPOR backtracking, HBR fingerprints and the incremental
// checkpoint engine all operate on TSO executions unchanged — a flush is
// just one more event with one more "thread" (the flush agent of t).
//
// This header is the subsystem's whole vocabulary; runtime/execution.hpp
// consumes it for the engine semantics, and the campaign/CLI layers consume
// the parse/name helpers for --memory-model plumbing.

#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "support/hash.hpp"

namespace lazyhb::memory {

/// The memory models an Execution can run under (Config::memoryModel).
enum class MemoryModel : std::uint8_t {
  Sc,   ///< sequential consistency (default)
  Tso,  ///< total store order: per-thread FIFO store buffers
};

/// Scheduler picks >= this value denote store-buffer flushes: pick
/// `kFlushPickOffset + t` commits the oldest buffered store of thread t.
/// Real threads are capped at this count under TSO so every pick — thread
/// or flush — fits one support::ThreadSet (64 bits: 32 threads + 32 flush
/// agents) and recorded schedules stay plain vectors of ints.
inline constexpr int kFlushPickOffset = 32;

/// Thread-count cap under TSO (see kFlushPickOffset).
inline constexpr int kTsoMaxRealThreads = kFlushPickOffset;

/// True for picks that denote a flush, not a thread advance.
[[nodiscard]] constexpr bool isFlushPick(int pick) noexcept {
  return pick >= kFlushPickOffset;
}

/// The thread index whose buffer a flush pick drains.
[[nodiscard]] constexpr int flushPickOwner(int pick) noexcept {
  return pick - kFlushPickOffset;
}

/// Schedule-invariant identity of thread t's flush agent: flush events need
/// their own threadUid (their indexInThread counts flushes, not thread
/// events, so sharing the owner's uid would collide labels). Derived from
/// the owner's uid, hence itself schedule-invariant.
[[nodiscard]] constexpr std::uint64_t flushAgentUid(std::uint64_t threadUid) noexcept {
  return support::mix64(threadUid ^ 0xF1A5EDB0FFull);
}

/// Canonical name ("sc" / "tso").
[[nodiscard]] const char* memoryModelName(MemoryModel model) noexcept;

/// Parse a canonical name; nullopt for anything else.
[[nodiscard]] std::optional<MemoryModel> parseMemoryModel(std::string_view name) noexcept;

/// "sc, tso" — for usage strings and unknown-value error messages.
[[nodiscard]] const char* memoryModelNamesHelp() noexcept;

}  // namespace lazyhb::memory
