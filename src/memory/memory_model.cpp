#include "memory/memory_model.hpp"

namespace lazyhb::memory {

const char* memoryModelName(MemoryModel model) noexcept {
  switch (model) {
    case MemoryModel::Sc: return "sc";
    case MemoryModel::Tso: return "tso";
  }
  return "?";
}

std::optional<MemoryModel> parseMemoryModel(std::string_view name) noexcept {
  if (name == "sc") return MemoryModel::Sc;
  if (name == "tso") return MemoryModel::Tso;
  return std::nullopt;
}

const char* memoryModelNamesHelp() noexcept { return "sc, tso"; }

}  // namespace lazyhb::memory
