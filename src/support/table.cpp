#include "support/table.hpp"

#include <algorithm>
#include <cstdio>

#include "support/diagnostics.hpp"

namespace lazyhb::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  LAZYHB_CHECK(!headers_.empty());
}

void Table::beginRow() { rows_.emplace_back(); }

void Table::cell(const std::string& value) {
  LAZYHB_CHECK(!rows_.empty() && rows_.back().size() < headers_.size());
  rows_.back().push_back(value);
}

void Table::cell(std::int64_t value) { cell(std::to_string(value)); }
void Table::cell(std::uint64_t value) { cell(std::to_string(value)); }

void Table::cell(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  cell(std::string(buf));
}

std::string Table::toText() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto appendRow = [&](std::string& out, const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& value = c < row.size() ? row[c] : std::string();
      out += "  ";
      out += value;
      out.append(widths[c] - value.size(), ' ');
    }
    out += '\n';
  };
  std::string out;
  appendRow(out, headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  ";
    rule.append(widths[c], '-');
  }
  out += rule + '\n';
  for (const auto& row : rows_) {
    appendRow(out, row);
  }
  return out;
}

std::string Table::toCsv() const {
  std::string out;
  auto appendRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  appendRow(headers_);
  for (const auto& row : rows_) {
    appendRow(row);
  }
  return out;
}

std::string withCommas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int sinceComma = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (sinceComma == 3) {
      out += ',';
      sinceComma = 0;
    }
    out += *it;
    ++sinceComma;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace lazyhb::support
