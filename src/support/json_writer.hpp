// lazyhb/support/json_writer.hpp
//
// A minimal streaming JSON emitter for the machine-readable benchmark
// reports (no third-party dependency). The writer is a push API — begin
// an object/array, push keys and values, end it — and enforces JSON
// well-formedness structurally: keys only inside objects, values only at
// the top level / in arrays / after a key, balanced begin/end. Output is
// pretty-printed with two-space indentation so reports diff cleanly.
//
// Numbers: unsigned/signed 64-bit integers are emitted verbatim (JSON
// numbers carry arbitrary precision; consumers like Python parse them
// exactly). Doubles are emitted with enough digits to round-trip; NaN and
// infinities have no JSON spelling and are emitted as null.

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "support/diagnostics.hpp"

namespace lazyhb::support {

/// Escape `s` for inclusion in a JSON string literal (quotes not included).
/// Handles the two mandatory escapes (`"` and `\`), the common control
/// shorthands, and \u00XX for the remaining control bytes. Non-ASCII bytes
/// pass through untouched (the report is UTF-8).
inline std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

class JsonWriter {
 public:
  JsonWriter& beginObject() { return beginContainer('{', Frame::Object); }
  JsonWriter& endObject() { return endContainer('}', Frame::Object); }
  JsonWriter& beginArray() { return beginContainer('[', Frame::Array); }
  JsonWriter& endArray() { return endContainer(']', Frame::Array); }

  /// Name the next value. Only legal directly inside an object.
  JsonWriter& key(const std::string& name) {
    LAZYHB_CHECK(!done_ && !stack_.empty() && stack_.back() == Frame::Object &&
                 !keyPending_);
    separate();
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\": ";
    keyPending_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) { return raw('"' + jsonEscape(v) + '"'); }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }
  JsonWriter& value(std::uint64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(std::int64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(int v) { return raw(std::to_string(v)); }
  JsonWriter& value(double v) {
    if (!std::isfinite(v)) return raw("null");
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return raw(buf);
  }
  JsonWriter& valueNull() { return raw("null"); }

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& field(const std::string& name, const T& v) {
    key(name);
    return value(v);
  }

  /// The finished document. All containers must be closed.
  [[nodiscard]] const std::string& str() const {
    LAZYHB_CHECK(stack_.empty() && done_);
    return out_;
  }

 private:
  enum class Frame : std::uint8_t { Object, Array };

  JsonWriter& beginContainer(char open, Frame frame) {
    beforeValue();
    out_ += open;
    stack_.push_back(frame);
    freshContainer_ = true;
    keyPending_ = false;
    return *this;
  }

  JsonWriter& endContainer(char close, Frame frame) {
    LAZYHB_CHECK(!stack_.empty() && stack_.back() == frame && !keyPending_);
    stack_.pop_back();
    if (!freshContainer_) {
      out_ += '\n';
      indent();
    }
    out_ += close;
    freshContainer_ = false;
    if (stack_.empty()) done_ = true;
    return *this;
  }

  JsonWriter& raw(const std::string& text) {
    beforeValue();
    out_ += text;
    keyPending_ = false;
    if (stack_.empty()) done_ = true;
    return *this;
  }

  /// Emit the comma/newline/indent owed before a value or sub-container.
  void beforeValue() {
    LAZYHB_CHECK(!done_);
    if (keyPending_) return;  // value follows its key on the same line
    if (stack_.empty()) return;
    // Bare values are only legal in arrays; object members need key().
    LAZYHB_CHECK(stack_.back() == Frame::Array);
    separate();
  }

  /// Comma/newline/indent before the next member of the open container.
  void separate() {
    if (!freshContainer_) out_ += ',';
    out_ += '\n';
    indent();
    freshContainer_ = false;
  }

  void indent() { out_.append(2 * stack_.size(), ' '); }

  std::string out_;
  std::vector<Frame> stack_;
  bool keyPending_ = false;
  bool freshContainer_ = true;
  bool done_ = false;
};

}  // namespace lazyhb::support
