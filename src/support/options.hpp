// lazyhb/support/options.hpp
//
// A tiny declarative command-line parser for the bench/example binaries.
// Supports `--flag`, `--key value` and `--key=value`; prints a usage table
// on --help; rejects unknown options so typos fail loudly rather than run a
// multi-minute experiment with defaults.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lazyhb::support {

/// Split a comma-separated option value ("a,b, c") into tokens, stripping
/// spaces and skipping empty tokens. The one tokenizer behind every
/// list-valued flag (--explorers, --programs), so their parsing quirks
/// cannot drift apart.
[[nodiscard]] std::vector<std::string> splitCsv(const std::string& csv);

class Options {
 public:
  Options(std::string programName, std::string description)
      : programName_(std::move(programName)), description_(std::move(description)) {}

  /// Declare an integer option with default value.
  void addInt(const std::string& name, std::int64_t defaultValue, const std::string& help);
  /// Declare a boolean flag (false by default; present => true; also accepts
  /// --name=true/false).
  void addFlag(const std::string& name, const std::string& help);
  /// Declare a string option with default value.
  void addString(const std::string& name, const std::string& defaultValue,
                 const std::string& help);

  /// Parse argv. Returns false (after printing usage or an error) if the
  /// process should exit; the caller should return 0 for --help and
  /// a nonzero status if parseError() is set.
  [[nodiscard]] bool parse(int argc, char** argv);

  [[nodiscard]] std::int64_t getInt(const std::string& name) const;
  [[nodiscard]] bool getFlag(const std::string& name) const;
  [[nodiscard]] const std::string& getString(const std::string& name) const;
  [[nodiscard]] bool parseError() const noexcept { return parseError_; }

  /// True when the user supplied the option on the command line (as opposed
  /// to the declared default being in effect). Lets presets like --quick
  /// yield to an explicit --limit.
  [[nodiscard]] bool wasSet(const std::string& name) const;

  /// Positional arguments left over after option parsing.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  void printUsage() const;

 private:
  struct Entry {
    enum class Kind { Int, Flag, String } kind;
    std::string help;
    std::int64_t intValue = 0;
    bool flagValue = false;
    std::string stringValue;
    bool set = false;  ///< supplied on the command line
  };

  std::string programName_;
  std::string description_;
  std::map<std::string, Entry> entries_;
  std::vector<std::string> declarationOrder_;
  std::vector<std::string> positional_;
  bool parseError_ = false;
};

}  // namespace lazyhb::support
