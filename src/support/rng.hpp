// lazyhb/support/rng.hpp
//
// Deterministic pseudo-random number generation (xoshiro256**). Used by the
// random-walk explorer and the random program generator in the test suite.
// Determinism given a seed is a hard requirement: random explorations must be
// replayable from (seed, schedule index) alone.

#pragma once

#include <cstdint>

#include "support/hash.hpp"

namespace lazyhb::support {

/// xoshiro256** 1.0 by Blackman & Vigna; seeded through splitmix64 so that
/// any 64-bit seed (including 0) yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1d872b41ULL) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = mix64(x);
    }
  }

  [[nodiscard]] std::uint64_t nextU64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be positive. Uses rejection-free
  /// Lemire reduction; the bias for bound << 2^64 is immaterial here.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(nextU64()) * bound) >> 64);
  }

  /// Uniform int in [lo, hi] inclusive.
  [[nodiscard]] int intIn(int lo, int hi) noexcept {
    return lo + static_cast<int>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli draw with probability num/den.
  [[nodiscard]] bool chance(std::uint64_t num, std::uint64_t den) noexcept {
    return below(den) < num;
  }

 private:
  [[nodiscard]] static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace lazyhb::support
