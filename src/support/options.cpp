#include "support/options.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "support/diagnostics.hpp"

namespace lazyhb::support {

std::vector<std::string> splitCsv(const std::string& csv) {
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : csv + ",") {
    if (c == ',') {
      if (!token.empty()) tokens.push_back(std::move(token));
      token.clear();
    } else if (c != ' ') {
      token += c;
    }
  }
  return tokens;
}

void Options::addInt(const std::string& name, std::int64_t defaultValue,
                     const std::string& help) {
  Entry e;
  e.kind = Entry::Kind::Int;
  e.help = help;
  e.intValue = defaultValue;
  LAZYHB_CHECK(entries_.emplace(name, std::move(e)).second);
  declarationOrder_.push_back(name);
}

void Options::addFlag(const std::string& name, const std::string& help) {
  Entry e;
  e.kind = Entry::Kind::Flag;
  e.help = help;
  LAZYHB_CHECK(entries_.emplace(name, std::move(e)).second);
  declarationOrder_.push_back(name);
}

void Options::addString(const std::string& name, const std::string& defaultValue,
                        const std::string& help) {
  Entry e;
  e.kind = Entry::Kind::String;
  e.help = help;
  e.stringValue = defaultValue;
  LAZYHB_CHECK(entries_.emplace(name, std::move(e)).second);
  declarationOrder_.push_back(name);
}

bool Options::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      printUsage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inlineValue;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      inlineValue = name.substr(eq + 1);
      name = name.substr(0, eq);
    }
    const auto it = entries_.find(name);
    if (it == entries_.end()) {
      std::fprintf(stderr, "%s: unknown option --%s (use --help)\n",
                   programName_.c_str(), name.c_str());
      parseError_ = true;
      return false;
    }
    Entry& entry = it->second;
    entry.set = true;
    auto takeValue = [&]() -> std::optional<std::string> {
      if (inlineValue) return inlineValue;
      if (i + 1 < argc) return std::string(argv[++i]);
      std::fprintf(stderr, "%s: option --%s requires a value\n",
                   programName_.c_str(), name.c_str());
      parseError_ = true;
      return std::nullopt;
    };
    switch (entry.kind) {
      case Entry::Kind::Flag:
        if (inlineValue) {
          entry.flagValue = (*inlineValue == "true" || *inlineValue == "1");
        } else {
          entry.flagValue = true;
        }
        break;
      case Entry::Kind::Int: {
        const auto value = takeValue();
        if (!value) return false;
        try {
          entry.intValue = std::stoll(*value);
        } catch (const std::exception&) {
          std::fprintf(stderr, "%s: option --%s expects an integer, got '%s'\n",
                       programName_.c_str(), name.c_str(), value->c_str());
          parseError_ = true;
          return false;
        }
        break;
      }
      case Entry::Kind::String: {
        const auto value = takeValue();
        if (!value) return false;
        entry.stringValue = *value;
        break;
      }
    }
  }
  return true;
}

std::int64_t Options::getInt(const std::string& name) const {
  const auto it = entries_.find(name);
  LAZYHB_CHECK(it != entries_.end() && it->second.kind == Entry::Kind::Int);
  return it->second.intValue;
}

bool Options::getFlag(const std::string& name) const {
  const auto it = entries_.find(name);
  LAZYHB_CHECK(it != entries_.end() && it->second.kind == Entry::Kind::Flag);
  return it->second.flagValue;
}

bool Options::wasSet(const std::string& name) const {
  const auto it = entries_.find(name);
  LAZYHB_CHECK(it != entries_.end());
  return it->second.set;
}

const std::string& Options::getString(const std::string& name) const {
  const auto it = entries_.find(name);
  LAZYHB_CHECK(it != entries_.end() && it->second.kind == Entry::Kind::String);
  return it->second.stringValue;
}

void Options::printUsage() const {
  std::printf("%s — %s\n\nOptions:\n", programName_.c_str(), description_.c_str());
  for (const auto& name : declarationOrder_) {
    const Entry& entry = entries_.at(name);
    std::string synopsis = "--" + name;
    std::string defaultNote;
    switch (entry.kind) {
      case Entry::Kind::Int:
        synopsis += " N";
        defaultNote = " (default " + std::to_string(entry.intValue) + ")";
        break;
      case Entry::Kind::String:
        synopsis += " STR";
        if (!entry.stringValue.empty()) defaultNote = " (default '" + entry.stringValue + "')";
        break;
      case Entry::Kind::Flag:
        break;
    }
    std::printf("  %-24s %s%s\n", synopsis.c_str(), entry.help.c_str(), defaultNote.c_str());
  }
  std::printf("  %-24s %s\n", "--help", "show this message");
}

}  // namespace lazyhb::support
