// lazyhb/support/table.hpp
//
// Column-aligned text tables and CSV emission for the experiment harnesses.
// Every figure/table bench prints both a human-readable table (stdout) and,
// on request, machine-readable CSV so plots can be regenerated externally.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace lazyhb::support {

class Table {
 public:
  /// Construct with column headers.
  explicit Table(std::vector<std::string> headers);

  /// Begin a new row; subsequent cell() calls fill it left to right.
  void beginRow();
  void cell(const std::string& value);
  void cell(std::int64_t value);
  void cell(std::uint64_t value);
  void cell(double value, int precision = 2);

  /// Number of data rows added so far.
  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

  /// Render as an aligned text table.
  [[nodiscard]] std::string toText() const;

  /// Render as CSV (headers + rows, comma-separated, no quoting — callers
  /// must not put commas in cells).
  [[nodiscard]] std::string toCsv() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format n with thousands separators ("1,234,567") for report text.
[[nodiscard]] std::string withCommas(std::uint64_t n);

}  // namespace lazyhb::support
