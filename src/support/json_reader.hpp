// lazyhb/support/json_reader.hpp
//
// A minimal recursive-descent JSON parser — the read half of the report
// pipeline (support/json_writer.hpp is the write half), used by the
// campaign journal (resume) and the report merger. No third-party
// dependency, same as the writer.
//
// Numbers: integer tokens that fit are kept exactly (uint64/int64 —
// report counts are 64-bit and must round-trip bit-for-bit); everything
// else becomes a double. Strings handle the writer's escape set plus
// \uXXXX for BMP code points (encoded back to UTF-8). Input is expected
// to be a complete document; trailing garbage is an error.

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace lazyhb::support {

class JsonValue {
 public:
  enum class Type : std::uint8_t { Null, Bool, Uint, Int, Double, String, Array, Object };

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool isNull() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool isBool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool isNumber() const noexcept {
    return type_ == Type::Uint || type_ == Type::Int || type_ == Type::Double;
  }
  [[nodiscard]] bool isString() const noexcept { return type_ == Type::String; }
  [[nodiscard]] bool isArray() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool isObject() const noexcept { return type_ == Type::Object; }

  [[nodiscard]] bool asBool(bool fallback = false) const noexcept {
    return type_ == Type::Bool ? bool_ : fallback;
  }
  [[nodiscard]] std::uint64_t asUint(std::uint64_t fallback = 0) const noexcept {
    switch (type_) {
      case Type::Uint: return uint_;
      case Type::Int: return int_ >= 0 ? static_cast<std::uint64_t>(int_) : fallback;
      case Type::Double: return double_ >= 0 ? static_cast<std::uint64_t>(double_) : fallback;
      default: return fallback;
    }
  }
  [[nodiscard]] std::int64_t asInt(std::int64_t fallback = 0) const noexcept {
    switch (type_) {
      case Type::Uint: return static_cast<std::int64_t>(uint_);
      case Type::Int: return int_;
      case Type::Double: return static_cast<std::int64_t>(double_);
      default: return fallback;
    }
  }
  [[nodiscard]] double asDouble(double fallback = 0.0) const noexcept {
    switch (type_) {
      case Type::Uint: return static_cast<double>(uint_);
      case Type::Int: return static_cast<double>(int_);
      case Type::Double: return double_;
      default: return fallback;
    }
  }
  [[nodiscard]] const std::string& asString() const noexcept { return string_; }

  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept { return items_; }

  /// Object member by key; nullptr when absent (or when this is no object).
  [[nodiscard]] const JsonValue* find(const std::string& key) const noexcept {
    if (type_ != Type::Object) return nullptr;
    const auto it = members_.find(key);
    return it == members_.end() ? nullptr : it->second.get();
  }
  [[nodiscard]] bool has(const std::string& key) const noexcept {
    return find(key) != nullptr;
  }

  // Typed member shorthands with fallbacks — report consumers read optional
  // fields defensively, same as the Python side's dict.get().
  [[nodiscard]] std::uint64_t uintAt(const std::string& key, std::uint64_t fb = 0) const noexcept {
    const JsonValue* v = find(key);
    return v == nullptr ? fb : v->asUint(fb);
  }
  [[nodiscard]] std::int64_t intAt(const std::string& key, std::int64_t fb = 0) const noexcept {
    const JsonValue* v = find(key);
    return v == nullptr ? fb : v->asInt(fb);
  }
  [[nodiscard]] double doubleAt(const std::string& key, double fb = 0.0) const noexcept {
    const JsonValue* v = find(key);
    return v == nullptr ? fb : v->asDouble(fb);
  }
  [[nodiscard]] bool boolAt(const std::string& key, bool fb = false) const noexcept {
    const JsonValue* v = find(key);
    return v == nullptr ? fb : v->asBool(fb);
  }
  [[nodiscard]] std::string stringAt(const std::string& key, const std::string& fb = {}) const {
    const JsonValue* v = find(key);
    return (v == nullptr || !v->isString()) ? fb : v->asString();
  }

  /// Parse a complete JSON document. Returns nullptr and fills *error (with
  /// a byte offset) on malformed input.
  [[nodiscard]] static std::unique_ptr<JsonValue> parse(const std::string& text,
                                                        std::string* error);

 private:
  struct Parser;

  Type type_ = Type::Null;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  // unique_ptr values keep JsonValue movable despite the recursive type.
  std::map<std::string, std::unique_ptr<JsonValue>> members_;
};

struct JsonValue::Parser {
  const std::string& text;
  std::size_t pos = 0;
  std::string error;

  explicit Parser(const std::string& t) : text(t) {}

  [[nodiscard]] bool atEnd() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return atEnd() ? '\0' : text[pos]; }

  void skipWhitespace() {
    while (!atEnd()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool fail(const std::string& message) {
    if (error.empty()) {
      error = message + " at byte " + std::to_string(pos);
    }
    return false;
  }

  bool expect(char c) {
    if (peek() != c) return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool parseValue(JsonValue& out) {
    skipWhitespace();
    switch (peek()) {
      case '{': return parseObject(out);
      case '[': return parseArray(out);
      case '"': {
        out.type_ = Type::String;
        return parseString(out.string_);
      }
      case 't':
      case 'f': return parseKeyword(out);
      case 'n': return parseKeyword(out);
      default: return parseNumber(out);
    }
  }

  bool parseKeyword(JsonValue& out) {
    const auto match = [&](const char* word) {
      const std::size_t n = std::char_traits<char>::length(word);
      if (text.compare(pos, n, word) != 0) return false;
      pos += n;
      return true;
    };
    if (match("true")) {
      out.type_ = Type::Bool;
      out.bool_ = true;
      return true;
    }
    if (match("false")) {
      out.type_ = Type::Bool;
      out.bool_ = false;
      return true;
    }
    if (match("null")) {
      out.type_ = Type::Null;
      return true;
    }
    return fail("unexpected token");
  }

  bool parseNumber(JsonValue& out) {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    const std::size_t firstDigit = pos;
    while (!atEnd() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    bool integral = pos > firstDigit;
    if (!integral) return fail("malformed number");
    if (peek() == '.') {
      integral = false;
      ++pos;
      while (!atEnd() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos;
      if (peek() == '+' || peek() == '-') ++pos;
      while (!atEnd() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    const std::string token = text.substr(start, pos - start);
    if (token.empty() || token == "-") return fail("malformed number");
    try {
      if (integral) {
        if (token[0] == '-') {
          out.type_ = Type::Int;
          out.int_ = std::stoll(token);
        } else {
          out.type_ = Type::Uint;
          out.uint_ = std::stoull(token);
        }
        return true;
      }
      out.type_ = Type::Double;
      out.double_ = std::stod(token);
      return true;
    } catch (const std::exception&) {
      // Out-of-range integers degrade to double rather than failing the
      // whole document.
      try {
        out.type_ = Type::Double;
        out.double_ = std::stod(token);
        return true;
      } catch (const std::exception&) {
        return fail("malformed number '" + token + "'");
      }
    }
  }

  bool parseString(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (true) {
      if (atEnd()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (atEnd()) return fail("unterminated escape");
      const char esc = text[pos++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("malformed \\u escape");
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs are not
          // produced by our writer; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parseArray(JsonValue& out) {
    if (!expect('[')) return false;
    out.type_ = Type::Array;
    skipWhitespace();
    if (peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      JsonValue item;
      if (!parseValue(item)) return false;
      out.items_.push_back(std::move(item));
      skipWhitespace();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      return expect(']');
    }
  }

  bool parseObject(JsonValue& out) {
    if (!expect('{')) return false;
    out.type_ = Type::Object;
    skipWhitespace();
    if (peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skipWhitespace();
      std::string key;
      if (!parseString(key)) return false;
      skipWhitespace();
      if (!expect(':')) return false;
      auto value = std::make_unique<JsonValue>();
      if (!parseValue(*value)) return false;
      out.members_[key] = std::move(value);
      skipWhitespace();
      if (peek() == ',') {
        ++pos;
        continue;
      }
      return expect('}');
    }
  }
};

inline std::unique_ptr<JsonValue> JsonValue::parse(const std::string& text,
                                                   std::string* error) {
  Parser parser(text);
  auto root = std::make_unique<JsonValue>();
  if (!parser.parseValue(*root)) {
    if (error != nullptr) *error = parser.error;
    return nullptr;
  }
  parser.skipWhitespace();
  if (!parser.atEnd()) {
    if (error != nullptr) {
      *error = "trailing content at byte " + std::to_string(parser.pos);
    }
    return nullptr;
  }
  return root;
}

}  // namespace lazyhb::support
