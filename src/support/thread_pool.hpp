// lazyhb/support/thread_pool.hpp
//
// A small fixed-size thread pool for the experiment harnesses.
//
// The lazyhb engine is single-threaded by construction (scheduling decisions
// must be deterministic), but explorations of *distinct* benchmarks are
// embarrassingly parallel: the figure-reproduction benches fan a list of
// benchmark explorations out over this pool. The design follows the HPC
// guidance: threads are created once (CP.41), wait on a condition (CP.42),
// and the critical section is only queue manipulation (CP.43).

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lazyhb::support {

class ThreadPool {
 public:
  /// Create a pool with `workers` OS threads (values < 1 are clamped to 1).
  explicit ThreadPool(int workers);

  /// Joins all workers after draining outstanding tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; exceptions terminate the process
  /// (an experiment harness has no meaningful recovery from a lost result).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void waitIdle();

  [[nodiscard]] int workerCount() const noexcept { return static_cast<int>(workers_.size()); }

  /// Run fn(i) for each i in [0, n) across the pool, then wait for all.
  void parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable taskReady_;
  std::condition_variable allDone_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t inFlight_ = 0;
  bool shuttingDown_ = false;
};

}  // namespace lazyhb::support
