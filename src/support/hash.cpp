#include "support/hash.hpp"

#include <array>

namespace lazyhb::support {

std::string Hash128::toHex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  std::uint64_t v = hi;
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  v = lo;
  for (int i = 31; i >= 16; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace lazyhb::support
