// lazyhb/support/diagnostics.hpp
//
// Internal invariant checking. LAZYHB_CHECK is an always-on assertion used
// for library invariants (violations indicate a bug in lazyhb itself, not in
// the program under test; programs under test use lazyhb::runtime's
// checkAlways, which records a violation instead of aborting). The cost of
// keeping these on in release builds is negligible next to the cost of a
// silently-wrong partial-order reduction.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace lazyhb::support {

[[noreturn]] inline void checkFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "lazyhb internal invariant violated: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace lazyhb::support

#define LAZYHB_CHECK(expr)                                               \
  do {                                                                   \
    if (!(expr)) [[unlikely]] {                                          \
      ::lazyhb::support::checkFailed(#expr, __FILE__, __LINE__);         \
    }                                                                    \
  } while (false)

#define LAZYHB_UNREACHABLE(msg) \
  ::lazyhb::support::checkFailed("unreachable: " msg, __FILE__, __LINE__)

// Debug-only assertion for per-event hot paths where even a predictable
// branch is measurable. Library invariants off the hot path use LAZYHB_CHECK.
#ifdef NDEBUG
#define LAZYHB_ASSERT(expr) ((void)0)
#else
#define LAZYHB_ASSERT(expr) LAZYHB_CHECK(expr)
#endif
