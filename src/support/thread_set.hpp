// lazyhb/support/thread_set.hpp
//
// A compact set of thread indices backed by a single 64-bit word.
//
// The execution engine caps a test program at 64 logical threads, which lets
// enabled sets, sleep sets and backtrack sets be single registers: set
// algebra is one instruction, iteration is a ctz loop, and snapshots taken at
// every scheduling point are free. Per the HPC guidance (compact data
// structures, no allocation on hot paths) this type is used everywhere a set
// of threads appears.

#pragma once

#include <bit>
#include <cstdint>

#include "support/diagnostics.hpp"

namespace lazyhb::support {

/// Maximum number of logical threads in one controlled execution.
inline constexpr int kMaxThreads = 64;

/// Value-type set of thread indices in [0, kMaxThreads).
class ThreadSet {
 public:
  constexpr ThreadSet() = default;

  /// Singleton set {tid}.
  [[nodiscard]] static constexpr ThreadSet single(int tid) noexcept {
    return ThreadSet(bitFor(tid));
  }

  /// The set {0, 1, ..., n-1}.
  [[nodiscard]] static constexpr ThreadSet firstN(int n) noexcept {
    LAZYHB_CHECK(n >= 0 && n <= kMaxThreads);
    return ThreadSet(n == kMaxThreads ? ~0ULL : ((1ULL << n) - 1));
  }

  constexpr void insert(int tid) noexcept { bits_ |= bitFor(tid); }
  constexpr void erase(int tid) noexcept { bits_ &= ~bitFor(tid); }
  constexpr void clear() noexcept { bits_ = 0; }

  [[nodiscard]] constexpr bool contains(int tid) const noexcept {
    return (bits_ & bitFor(tid)) != 0;
  }
  [[nodiscard]] constexpr bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] constexpr int size() const noexcept { return std::popcount(bits_); }

  /// Smallest element; set must be non-empty.
  [[nodiscard]] constexpr int first() const noexcept {
    LAZYHB_CHECK(!empty());
    return std::countr_zero(bits_);
  }

  /// Smallest element strictly greater than tid, or -1 if none.
  [[nodiscard]] constexpr int next(int tid) const noexcept {
    const std::uint64_t rest = bits_ & ~((bitFor(tid) << 1) - 1);
    return rest == 0 ? -1 : std::countr_zero(rest);
  }

  [[nodiscard]] constexpr ThreadSet unionWith(ThreadSet o) const noexcept {
    return ThreadSet(bits_ | o.bits_);
  }
  [[nodiscard]] constexpr ThreadSet intersect(ThreadSet o) const noexcept {
    return ThreadSet(bits_ & o.bits_);
  }
  [[nodiscard]] constexpr ThreadSet minus(ThreadSet o) const noexcept {
    return ThreadSet(bits_ & ~o.bits_);
  }

  [[nodiscard]] constexpr std::uint64_t raw() const noexcept { return bits_; }

  friend constexpr bool operator==(ThreadSet, ThreadSet) = default;

  /// Minimal forward iteration support: `for (int tid : set) ...`.
  class Iterator {
   public:
    constexpr explicit Iterator(std::uint64_t bits) noexcept : bits_(bits) {}
    constexpr int operator*() const noexcept { return std::countr_zero(bits_); }
    constexpr Iterator& operator++() noexcept {
      bits_ &= bits_ - 1;  // clear lowest set bit
      return *this;
    }
    friend constexpr bool operator==(Iterator, Iterator) = default;

   private:
    std::uint64_t bits_;
  };

  [[nodiscard]] constexpr Iterator begin() const noexcept { return Iterator(bits_); }
  [[nodiscard]] constexpr Iterator end() const noexcept { return Iterator(0); }

 private:
  constexpr explicit ThreadSet(std::uint64_t bits) noexcept : bits_(bits) {}

  [[nodiscard]] static constexpr std::uint64_t bitFor(int tid) noexcept {
    LAZYHB_CHECK(tid >= 0 && tid < kMaxThreads);
    return 1ULL << static_cast<unsigned>(tid);
  }

  std::uint64_t bits_ = 0;
};

}  // namespace lazyhb::support
