// lazyhb/support/hash.hpp
//
// Hashing primitives used throughout the library.
//
// The partial-order fingerprints at the heart of lazy-HBR caching are built
// from these: a strong 64-bit mixer (splitmix64 finaliser), a 128-bit value
// type with order-sensitive mixing, and an order-*insensitive* multiset
// accumulator used to fingerprint sets of per-event hashes.

#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>

namespace lazyhb::support {

/// Final mixing step of splitmix64. Bijective on 64-bit values; excellent
/// avalanche behaviour. This is the workhorse scalar mixer.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combine two 64-bit values into one, order-sensitively.
[[nodiscard]] constexpr std::uint64_t hashCombine(std::uint64_t a,
                                                  std::uint64_t b) noexcept {
  // boost::hash_combine-style with a stronger finaliser.
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// A 128-bit hash value. Used for partial-order fingerprints where the cost
/// of a collision is a silently-pruned schedule; at 128 bits the collision
/// probability over even 10^9 distinct prefixes is negligible (< 10^-20).
struct Hash128 {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  friend constexpr bool operator==(const Hash128&, const Hash128&) = default;

  /// Order-sensitive combine of two 128-bit hashes. By value throughout:
  /// Hash128 is two registers under the SysV ABI, so indirection would only
  /// add a load on the per-event fingerprint path.
  [[nodiscard]] constexpr Hash128 mixedWith(Hash128 o) const noexcept {
    return Hash128{hashCombine(lo, o.lo), hashCombine(hi ^ 0xabcdef0123456789ULL, o.hi)};
  }

  /// True iff this is the default (all-zero) hash.
  [[nodiscard]] constexpr bool isZero() const noexcept { return lo == 0 && hi == 0; }

  /// Render as 32 hex digits (for logs and debugging).
  [[nodiscard]] std::string toHex() const;
};

/// Hash a 64-bit value into a 128-bit one using two independent streams.
[[nodiscard]] constexpr Hash128 hash128(std::uint64_t x) noexcept {
  return Hash128{mix64(x ^ 0x243f6a8885a308d3ULL), mix64(x ^ 0x13198a2e03707344ULL)};
}

/// Hash a pair.
[[nodiscard]] constexpr Hash128 hash128(std::uint64_t a, std::uint64_t b) noexcept {
  const Hash128 ha = hash128(a);
  const Hash128 hb = hash128(b);
  return ha.mixedWith(hb);
}

/// FNV-1a over raw bytes; adequate for strings/labels off the hot path.
[[nodiscard]] inline std::uint64_t hashBytes(const void* data, std::size_t n) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

[[nodiscard]] inline std::uint64_t hashString(std::string_view s) noexcept {
  return hashBytes(s.data(), s.size());
}

/// Order-insensitive accumulator over a multiset of Hash128 values.
///
/// Equal multisets of element hashes produce equal accumulator values
/// regardless of insertion order. `sum` is a component-wise modular sum
/// (multiset-safe: duplicates accumulate rather than cancel as they would
/// under XOR alone); `zip` is a second, independent reduction that guards the
/// sum against structured-collision accidents. `count` disambiguates prefixes
/// of different lengths for free.
struct MultisetHash {
  std::uint64_t sumLo = 0;
  std::uint64_t sumHi = 0;
  std::uint64_t zip = 0;
  std::uint64_t count = 0;

  constexpr void add(Hash128 h) noexcept {
    sumLo += h.lo;
    sumHi += h.hi;
    zip += mix64(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL));
    ++count;
  }

  /// Remove a previously-added element (sum/zip are abelian-group valued).
  constexpr void remove(Hash128 h) noexcept {
    sumLo -= h.lo;
    sumHi -= h.hi;
    zip -= mix64(h.lo ^ (h.hi * 0x9e3779b97f4a7c15ULL));
    --count;
  }

  [[nodiscard]] constexpr Hash128 digest() const noexcept {
    const std::uint64_t a = mix64(sumLo ^ mix64(count));
    const std::uint64_t b = mix64(sumHi + 0x2545f4914f6cdd1dULL * count);
    const std::uint64_t c = mix64(zip ^ 0x9e3779b97f4a7c15ULL);
    return Hash128{hashCombine(a, c), hashCombine(b, mix64(c + count))};
  }

  friend constexpr bool operator==(const MultisetHash&, const MultisetHash&) = default;
};

/// std::hash adaptor so Hash128 can key unordered containers directly.
struct Hash128Hasher {
  [[nodiscard]] std::size_t operator()(Hash128 h) const noexcept {
    return static_cast<std::size_t>(h.lo ^ mix64(h.hi));
  }
};

}  // namespace lazyhb::support
