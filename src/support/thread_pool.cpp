#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace lazyhb::support {

ThreadPool::ThreadPool(int workers) {
  const int n = std::max(1, workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    shuttingDown_ = true;
  }
  taskReady_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  taskReady_.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void ThreadPool::parallelFor(std::size_t n, const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  waitIdle();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      taskReady_.wait(lock, [this] { return shuttingDown_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // shutting down and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      const std::lock_guard<std::mutex> guard(mutex_);
      --inFlight_;
      if (inFlight_ == 0) {
        allDone_.notify_all();
      }
    }
  }
}

}  // namespace lazyhb::support
