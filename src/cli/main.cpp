#include "cli/cli.hpp"

int main(int argc, char** argv) { return lazyhb::cli::run(argc, argv); }
