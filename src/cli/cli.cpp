#include "cli/cli.hpp"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "explore/caching_explorer.hpp"
#include "explore/dfs_explorer.hpp"
#include "explore/dpor_explorer.hpp"
#include "explore/random_explorer.hpp"
#include "explore/replay.hpp"
#include "programs/registry.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace lazyhb::cli {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitViolation = 1;
constexpr int kExitUsage = 2;

void printTopLevelUsage() {
  std::printf(
      "lazyhb — systematic concurrency testing with the lazy happens-before "
      "relation\n"
      "\n"
      "Usage: lazyhb <command> [options]\n"
      "\n"
      "Commands:\n"
      "  list      print the registered program corpus\n"
      "  explore   run one program under one explorer and report stats\n"
      "  compare   run one program under all five explorers, one row each\n"
      "  replay    re-execute a recorded schedule and render its trace\n"
      "\n"
      "Run `lazyhb <command> --help` for the command's options.\n"
      "Explorer modes: dfs, random, dpor, caching-full, caching-lazy\n");
}

/// Look up --program, printing candidates on failure.
const programs::ProgramSpec* resolveProgram(const std::string& name) {
  if (name.empty()) {
    std::fprintf(stderr, "lazyhb: --program is required (try `lazyhb list`)\n");
    return nullptr;
  }
  const programs::ProgramSpec* spec = programs::byName(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "lazyhb: unknown program '%s' (try `lazyhb list`)\n",
                 name.c_str());
  }
  return spec;
}

explore::ExplorerOptions explorerOptionsFrom(const support::Options& options) {
  explore::ExplorerOptions eo;
  eo.scheduleLimit = static_cast<std::uint64_t>(options.getInt("limit"));
  eo.maxEventsPerSchedule = static_cast<std::uint32_t>(options.getInt("max-events"));
  eo.detectRaces = options.getFlag("races");
  eo.checkTheorems = options.getFlag("theorems");
  eo.stopOnFirstViolation = options.getFlag("stop-on-violation");
  return eo;
}

void addExplorerFlags(support::Options& options) {
  options.addInt("limit", 10000, "schedule budget (paper: 100000)");
  options.addInt("max-events", 65536, "per-schedule event budget");
  options.addInt("seed", 42, "random explorer seed");
  options.addFlag("races", "run the sync-HB data-race detector");
  options.addFlag("theorems", "feed terminal schedules to the theorem checkers");
  options.addFlag("stop-on-violation", "stop at the first violation");
}

void printViolations(const explore::ExplorationResult& result) {
  for (const explore::ViolationRecord& v : result.violations) {
    std::string schedule;
    for (std::size_t i = 0; i < v.schedule.size(); ++i) {
      if (i > 0) schedule += ",";
      schedule += std::to_string(v.schedule[i]);
    }
    std::printf("violation [%s] %s\n  schedule: %s\n",
                runtime::outcomeName(v.kind), v.message.c_str(), schedule.c_str());
  }
}

void printRaces(const explore::ExplorationResult& result) {
  for (const trace::RaceReport& race : result.races) {
    std::printf("race on %s (events %d and %d)\n", race.objectName.c_str(),
                race.firstEvent, race.secondEvent);
  }
}

void addResultRow(support::Table& table, const std::string& label,
                  const explore::ExplorationResult& result) {
  table.beginRow();
  table.cell(label);
  table.cell(result.schedulesExecuted);
  table.cell(result.terminalSchedules);
  table.cell(result.prunedSchedules);
  table.cell(result.violationSchedules);
  table.cell(result.distinctHbrs);
  table.cell(result.distinctLazyHbrs);
  table.cell(result.distinctStates);
  table.cell(std::string(result.complete ? "yes" : result.hitScheduleLimit ? "limit" : "no"));
}

std::vector<std::string> resultHeaders() {
  return {"explorer", "schedules", "terminal", "pruned", "violations",
          "hbrs",     "lazy-hbrs", "states",   "complete"};
}

// --- list --------------------------------------------------------------------

int cmdList(int argc, char** argv) {
  support::Options options("lazyhb list", "print the registered program corpus");
  options.addString("family", "", "only programs of this family");
  options.addFlag("buggy", "only programs with a known reachable bug");
  options.addFlag("csv", "emit CSV instead of an aligned table");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  const std::string family = options.getString("family");
  support::Table table({"id", "name", "family", "bug", "description"});
  for (const programs::ProgramSpec& spec : programs::all()) {
    if (!family.empty() && spec.family != family) continue;
    if (options.getFlag("buggy") && !spec.hasKnownBug) continue;
    table.beginRow();
    table.cell(static_cast<std::int64_t>(spec.id));
    table.cell(spec.name);
    table.cell(spec.family);
    table.cell(std::string(spec.hasKnownBug ? "yes" : ""));
    table.cell(spec.description);
  }
  std::fputs((options.getFlag("csv") ? table.toCsv() : table.toText()).c_str(),
             stdout);
  std::printf("%zu program(s)\n", table.rowCount());
  return kExitOk;
}

// --- explore -----------------------------------------------------------------

int cmdExplore(int argc, char** argv) {
  support::Options options("lazyhb explore",
                           "run one program under one explorer and report stats");
  options.addString("program", "", "program name (see `lazyhb list`)");
  options.addString("explorer", "dfs",
                    "dfs | random | dpor | caching-full | caching-lazy");
  addExplorerFlags(options);
  options.addFlag("fail-on-violation", "exit 1 if any violation was found");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  const programs::ProgramSpec* spec = resolveProgram(options.getString("program"));
  if (spec == nullptr) return kExitUsage;

  const std::string mode = options.getString("explorer");
  auto explorer = makeExplorer(mode, explorerOptionsFrom(options),
                               static_cast<std::uint64_t>(options.getInt("seed")));
  if (explorer == nullptr) {
    std::fprintf(stderr,
                 "lazyhb: unknown explorer '%s' (expected dfs, random, dpor, "
                 "caching-full or caching-lazy)\n",
                 mode.c_str());
    return kExitUsage;
  }

  const explore::ExplorationResult result = explorer->explore(spec->body);

  std::printf("program %s (%s): %s\n", spec->name.c_str(), spec->family.c_str(),
              spec->description.c_str());
  support::Table table(resultHeaders());
  addResultRow(table, mode, result);
  std::fputs(table.toText().c_str(), stdout);
  std::printf("total events: %s\n",
              support::withCommas(result.totalEvents).c_str());
  if (options.getFlag("theorems")) {
    std::printf(
        "theorem 2.1 (full HBR -> state): %llu schedules, %llu classes, "
        "%llu states, %llu conflicts\n",
        static_cast<unsigned long long>(result.theorem21.schedules),
        static_cast<unsigned long long>(result.theorem21.classes),
        static_cast<unsigned long long>(result.theorem21.states),
        static_cast<unsigned long long>(result.theorem21.conflicts));
    std::printf(
        "theorem 2.2 (lazy HBR -> state): %llu schedules, %llu classes, "
        "%llu states, %llu conflicts\n",
        static_cast<unsigned long long>(result.theorem22.schedules),
        static_cast<unsigned long long>(result.theorem22.classes),
        static_cast<unsigned long long>(result.theorem22.states),
        static_cast<unsigned long long>(result.theorem22.conflicts));
  }
  printViolations(result);
  printRaces(result);
  if (options.getFlag("fail-on-violation") && result.foundViolation()) {
    return kExitViolation;
  }
  return kExitOk;
}

// --- compare -----------------------------------------------------------------

int cmdCompare(int argc, char** argv) {
  support::Options options(
      "lazyhb compare", "run one program under all five explorers, one row each");
  options.addString("program", "", "program name (see `lazyhb list`)");
  addExplorerFlags(options);
  options.addFlag("csv", "emit CSV instead of an aligned table");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  const programs::ProgramSpec* spec = resolveProgram(options.getString("program"));
  if (spec == nullptr) return kExitUsage;

  std::printf("program %s (%s): %s\n", spec->name.c_str(), spec->family.c_str(),
              spec->description.c_str());
  support::Table table(resultHeaders());
  for (const char* mode : kExplorerModes) {
    auto explorer = makeExplorer(mode, explorerOptionsFrom(options),
                                 static_cast<std::uint64_t>(options.getInt("seed")));
    const explore::ExplorationResult result = explorer->explore(spec->body);
    addResultRow(table, mode, result);
  }
  std::fputs((options.getFlag("csv") ? table.toCsv() : table.toText()).c_str(),
             stdout);
  return kExitOk;
}

// --- replay ------------------------------------------------------------------

/// Parse "0,1,1,0" (or "0 1 1 0") into thread indices. Every token must be
/// an integer in full — "1-2" or "1x" is rejected, not truncated.
bool parseSchedule(const std::string& text, std::vector<int>& out) {
  std::string token;
  for (const char c : text + ",") {
    if (c == ',' || c == ' ') {
      if (token.empty()) continue;
      try {
        std::size_t consumed = 0;
        const int value = std::stoi(token, &consumed);
        if (consumed != token.size()) return false;
        out.push_back(value);
      } catch (const std::exception&) {
        return false;
      }
      token.clear();
      continue;
    }
    const bool leadingMinus = (c == '-' && token.empty());
    if (!leadingMinus && (c < '0' || c > '9')) return false;
    token += c;
  }
  return true;
}

int cmdReplay(int argc, char** argv) {
  support::Options options("lazyhb replay",
                           "re-execute a recorded schedule and render its trace");
  options.addString("program", "", "program name (see `lazyhb list`)");
  options.addString("schedule", "",
                    "comma-separated thread picks, e.g. 0,1,1,0 (empty: "
                    "first-enabled everywhere)");
  options.addString("relation", "full", "relation to render: sync | full | lazy");
  options.addInt("max-events", 65536, "per-schedule event budget");
  options.addFlag("races", "run the sync-HB data-race detector");
  options.addFlag("no-trace", "skip the rendered trace, print fingerprints only");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  const programs::ProgramSpec* spec = resolveProgram(options.getString("program"));
  if (spec == nullptr) return kExitUsage;

  std::vector<int> schedule;
  if (!parseSchedule(options.getString("schedule"), schedule)) {
    std::fprintf(stderr, "lazyhb: --schedule expects comma-separated integers\n");
    return kExitUsage;
  }

  explore::ReplayOptions replayOptions;
  replayOptions.renderTrace = !options.getFlag("no-trace");
  replayOptions.detectRaces = options.getFlag("races");
  replayOptions.maxEventsPerSchedule =
      static_cast<std::uint32_t>(options.getInt("max-events"));
  const std::string relation = options.getString("relation");
  if (relation == "sync") {
    replayOptions.renderRelation = trace::Relation::Sync;
  } else if (relation == "full") {
    replayOptions.renderRelation = trace::Relation::Full;
  } else if (relation == "lazy") {
    replayOptions.renderRelation = trace::Relation::Lazy;
  } else {
    std::fprintf(stderr, "lazyhb: unknown relation '%s'\n", relation.c_str());
    return kExitUsage;
  }

  const explore::ReplayResult result =
      explore::replaySchedule(spec->body, schedule, replayOptions);

  if (result.outcome == runtime::Outcome::Abandoned) {
    std::fprintf(stderr,
                 "lazyhb: schedule does not apply to '%s' — a pick named a "
                 "thread that was not enabled at that point\n",
                 spec->name.c_str());
    return kExitUsage;
  }
  std::printf("program %s: outcome %s, %zu event(s)\n", spec->name.c_str(),
              runtime::outcomeName(result.outcome), result.eventCount);
  if (!result.violationMessage.empty()) {
    std::printf("violation: %s\n", result.violationMessage.c_str());
  }
  std::printf("hbr %016llx%016llx  lazy %016llx%016llx  state %016llx%016llx\n",
              static_cast<unsigned long long>(result.hbrFingerprint.hi),
              static_cast<unsigned long long>(result.hbrFingerprint.lo),
              static_cast<unsigned long long>(result.lazyFingerprint.hi),
              static_cast<unsigned long long>(result.lazyFingerprint.lo),
              static_cast<unsigned long long>(result.stateFingerprint.hi),
              static_cast<unsigned long long>(result.stateFingerprint.lo));
  if (replayOptions.renderTrace) {
    std::fputs(result.renderedTrace.c_str(), stdout);
  }
  for (const trace::RaceReport& race : result.races) {
    std::printf("race on %s (events %d and %d)\n", race.objectName.c_str(),
                race.firstEvent, race.secondEvent);
  }
  return runtime::isViolation(result.outcome) ? kExitViolation : kExitOk;
}

}  // namespace

std::unique_ptr<explore::ExplorerBase> makeExplorer(
    const std::string& mode, const explore::ExplorerOptions& options,
    std::uint64_t seed) {
  if (mode == "dfs") {
    return std::make_unique<explore::DfsExplorer>(options);
  }
  if (mode == "random") {
    return std::make_unique<explore::RandomExplorer>(options, seed);
  }
  if (mode == "dpor") {
    return std::make_unique<explore::DporExplorer>(options);
  }
  if (mode == "caching-full") {
    return std::make_unique<explore::CachingExplorer>(options,
                                                      trace::Relation::Full);
  }
  if (mode == "caching-lazy") {
    return std::make_unique<explore::CachingExplorer>(options,
                                                      trace::Relation::Lazy);
  }
  return nullptr;
}

int run(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0 || std::strcmp(argv[1], "help") == 0) {
    printTopLevelUsage();
    return argc < 2 ? kExitUsage : kExitOk;
  }
  const std::string command = argv[1];
  // Each subcommand re-parses from its own argv[0] == the command name.
  const int subArgc = argc - 1;
  char** subArgv = argv + 1;
  if (command == "list") return cmdList(subArgc, subArgv);
  if (command == "explore") return cmdExplore(subArgc, subArgv);
  if (command == "compare") return cmdCompare(subArgc, subArgv);
  if (command == "replay") return cmdReplay(subArgc, subArgv);
  std::fprintf(stderr, "lazyhb: unknown command '%s'\n\n", command.c_str());
  printTopLevelUsage();
  return kExitUsage;
}

}  // namespace lazyhb::cli
