#include "cli/cli.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/explorer_spec.hpp"
#include "campaign/merge.hpp"
#include "campaign/report.hpp"
#include "explore/explorer.hpp"
#include "lazyhb/lazyhb.hpp"
#include "memory/memory_model.hpp"
#include "programs/registry.hpp"
#include "support/json_writer.hpp"
#include "support/options.hpp"
#include "support/table.hpp"

namespace lazyhb::cli {
namespace {

constexpr int kExitOk = 0;
constexpr int kExitViolation = 1;
constexpr int kExitUsage = 2;
constexpr int kExitIo = 3;  ///< correct arguments, but a file could not be written

void printTopLevelUsage() {
  std::printf(
      "lazyhb — systematic concurrency testing with the lazy happens-before "
      "relation\n"
      "\n"
      "Usage: lazyhb <command> [options]\n"
      "\n"
      "Commands:\n"
      "  list      print the registered program corpus\n"
      "  explore   run one program under one explorer and report stats\n"
      "  compare   run one program under all six explorers, one row each\n"
      "  bench     run the (program x explorer) campaign matrix in parallel\n"
      "            and emit a machine-readable JSON report (checkpointable\n"
      "            with --checkpoint/--resume, divisible with --shard i/N)\n"
      "  merge     merge shard/resume bench reports into one report with\n"
      "            recomputed totals\n"
      "  replay    re-execute a recorded schedule and render its trace\n"
      "\n"
      "Run `lazyhb <command> --help` for the command's options.\n"
      "Explorer modes: %s\n",
      campaign::explorerNamesHelp().c_str());
}

/// Look up --program, printing candidates on failure.
const programs::ProgramSpec* resolveProgram(const std::string& name) {
  if (name.empty()) {
    std::fprintf(stderr, "lazyhb: --program is required (try `lazyhb list`)\n");
    return nullptr;
  }
  const programs::ProgramSpec* spec = programs::byName(name);
  if (spec == nullptr) {
    std::fprintf(stderr, "lazyhb: unknown program '%s' (try `lazyhb list`)\n",
                 name.c_str());
  }
  return spec;
}

/// Parse the --incremental on|off toggle into *enabled. Prints a usage
/// error and returns false for anything else.
bool parseIncremental(const support::Options& options, bool* enabled) {
  const std::string value = options.getString("incremental");
  if (value == "on") {
    *enabled = true;
    return true;
  }
  if (value == "off") {
    *enabled = false;
    return true;
  }
  std::fprintf(stderr, "lazyhb: --incremental expects 'on' or 'off', got '%s'\n",
               value.c_str());
  return false;
}

/// Parse --snapshot-budget into *bytes. -1 (the flag default) keeps the
/// engine default (LAZYHB_SNAPSHOT_BUDGET or 256 MiB); 0 means unlimited.
bool parseSnapshotBudget(const support::Options& options, std::uint64_t* bytes) {
  const std::int64_t value = options.getInt("snapshot-budget");
  if (value < -1) {
    std::fprintf(stderr,
                 "lazyhb: --snapshot-budget expects a byte count >= 0 "
                 "(0: unlimited), got %lld\n",
                 static_cast<long long>(value));
    return false;
  }
  if (value >= 0) *bytes = static_cast<std::uint64_t>(value);
  return true;
}

void addMemoryModelFlag(support::Options& options) {
  options.addString("memory-model", "sc",
                    "memory model to explore under: sc | tso (tso buffers "
                    "writes per thread and adds scheduler-visible flush "
                    "transitions; see docs/memory-models.md)");
}

/// Validate --memory-model into *name. Prints a usage error listing the
/// valid set and returns false for anything else.
bool parseMemoryModelFlag(const support::Options& options, std::string* name) {
  const std::string value = options.getString("memory-model");
  if (!memory::parseMemoryModel(value)) {
    std::fprintf(stderr, "lazyhb: unknown memory model '%s' (expected %s)\n",
                 value.c_str(), memory::memoryModelNamesHelp());
    return false;
  }
  *name = value;
  return true;
}

void addSnapshotBudgetFlag(support::Options& options) {
  options.addInt("snapshot-budget", -1,
                 "byte budget for staged rollback snapshots (0: unlimited; "
                 "default: LAZYHB_SNAPSHOT_BUDGET or 256 MiB); over budget, "
                 "the checkpoint furthest from the search frontier is "
                 "evicted — counts stay byte-identical at any budget");
}

/// Write `document` to `path` ("-" means stdout). Returns false (with a
/// message on stderr) when the file cannot be written.
bool writeDocument(const std::string& path, const std::string& document) {
  if (path == "-") {
    std::fputs(document.c_str(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "lazyhb: cannot write report to '%s'\n", path.c_str());
    return false;
  }
  bool ok =
      std::fwrite(document.data(), 1, document.size(), file) == document.size();
  // fclose flushes the stdio buffer; a full disk surfaces here, not in fwrite.
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) std::fprintf(stderr, "lazyhb: short write to '%s'\n", path.c_str());
  return ok;
}

/// Build a Session from the shared explorer flags (strategy is set by the
/// caller). Returns false after printing a usage error.
bool sessionFrom(const support::Options& options, Session* session) {
  bool incremental = true;
  if (!parseIncremental(options, &incremental)) return false;
  const int workers = static_cast<int>(options.getInt("workers"));
  if (workers < 1) {
    std::fprintf(stderr, "lazyhb: --workers expects a positive count, got %d\n",
                 workers);
    return false;
  }
  std::uint64_t snapshotBudget = explore::defaultSnapshotBudgetBytes();
  if (!parseSnapshotBudget(options, &snapshotBudget)) return false;
  std::string memoryModel;
  if (!parseMemoryModelFlag(options, &memoryModel)) return false;
  session->schedules(static_cast<std::uint64_t>(options.getInt("limit")))
      .maxEventsPerSchedule(static_cast<std::uint32_t>(options.getInt("max-events")))
      .seed(static_cast<std::uint64_t>(options.getInt("seed")))
      .memoryModel(memoryModel)
      .detectRaces(options.getFlag("races"))
      .checkTheorems(options.getFlag("theorems"))
      .stopOnFirstViolation(options.getFlag("stop-on-violation"))
      .incremental(incremental)
      .workers(workers)
      .snapshotBudget(snapshotBudget);
  return true;
}

void addExplorerFlags(support::Options& options) {
  options.addInt("limit", 10000, "schedule budget (paper: 100000)");
  options.addInt("max-events", 65536, "per-schedule event budget");
  options.addInt("seed", 42, "random explorer seed");
  options.addString("incremental", "on",
                    "incremental prefix replay (checkpoint/rollback): on | off");
  options.addInt("workers", 1,
                 "shard the schedule tree across this many threads "
                 "(dfs/caching-* only; counts stay byte-identical)");
  addMemoryModelFlag(options);
  addSnapshotBudgetFlag(options);
  options.addFlag("races", "run the sync-HB data-race detector");
  options.addFlag("theorems", "feed terminal schedules to the theorem checkers");
  options.addFlag("stop-on-violation", "stop at the first violation");
}

void printViolations(std::FILE* out, const TestReport& report) {
  for (const TestViolation& v : report.violations) {
    std::string schedule;
    for (std::size_t i = 0; i < v.schedule.size(); ++i) {
      if (i > 0) schedule += ",";
      schedule += std::to_string(v.schedule[i]);
    }
    std::fprintf(out, "violation [%s] %s\n  schedule: %s\n", v.kind.c_str(),
                 v.message.c_str(), schedule.c_str());
  }
}

void printRaces(std::FILE* out, const TestReport& report) {
  for (const TestRace& race : report.races) {
    std::fprintf(out, "race on %s (events %d and %d)\n", race.object.c_str(),
                 race.firstEvent, race.secondEvent);
  }
}

void addResultRow(support::Table& table, const std::string& label,
                  const TestReport& report) {
  table.beginRow();
  table.cell(label);
  table.cell(report.schedulesExecuted);
  table.cell(report.terminalSchedules);
  table.cell(report.prunedSchedules);
  table.cell(report.violationSchedules);
  table.cell(report.distinctHbrs);
  table.cell(report.distinctLazyHbrs);
  table.cell(report.distinctValueClasses);
  table.cell(report.distinctStates);
  table.cell(std::string(report.complete ? "yes" : report.hitScheduleLimit ? "limit" : "no"));
}

std::vector<std::string> resultHeaders() {
  return {"explorer", "schedules",     "terminal", "pruned",
          "violations", "hbrs",        "lazy-hbrs", "value-classes",
          "states",   "complete"};
}

// --- list --------------------------------------------------------------------

int cmdList(int argc, char** argv) {
  support::Options options("lazyhb list", "print the registered program corpus");
  options.addString("family", "", "only programs of this family");
  options.addFlag("buggy", "only programs with a known reachable bug");
  options.addFlag("csv", "emit CSV instead of an aligned table");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  const std::string family = options.getString("family");
  support::Table table({"id", "name", "family", "bug", "description"});
  for (const programs::ProgramSpec& spec : programs::all()) {
    if (!family.empty() && spec.family != family) continue;
    if (options.getFlag("buggy") && !spec.hasKnownBug) continue;
    table.beginRow();
    table.cell(static_cast<std::int64_t>(spec.id));
    table.cell(spec.name);
    table.cell(spec.family);
    table.cell(std::string(spec.hasKnownBug ? "yes" : ""));
    table.cell(spec.description);
  }
  std::fputs((options.getFlag("csv") ? table.toCsv() : table.toText()).c_str(),
             stdout);
  std::printf("%zu program(s)\n", table.rowCount());
  return kExitOk;
}

// --- explore -----------------------------------------------------------------

int cmdExplore(int argc, char** argv) {
  support::Options options("lazyhb explore",
                           "run one program under one explorer and report stats");
  options.addString("program", "", "program name (see `lazyhb list`)");
  options.addString("explorer", "dfs",
                    "dfs | random | dpor | caching-full | caching-lazy "
                    "(also the extended variants dpor-nosleep, "
                    "dpor-lazy-cache, caching-value)");
  addExplorerFlags(options);
  options.addString("out", "",
                    "write the lazyhb-test-report JSON to this path ('-': "
                    "stdout; empty: no report file)");
  options.addFlag("fail-on-violation", "exit 1 if any violation was found");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  const programs::ProgramSpec* spec = resolveProgram(options.getString("program"));
  if (spec == nullptr) return kExitUsage;

  const std::string mode = options.getString("explorer");
  if (!campaign::parseExplorerSpec(mode)) {
    std::fprintf(stderr, "lazyhb: unknown explorer '%s' (expected %s)\n",
                 mode.c_str(), campaign::explorerNamesHelp(true).c_str());
    return kExitUsage;
  }
  Session session;
  if (!sessionFrom(options, &session)) return kExitUsage;
  const TestReport report = session.strategy(mode).run(spec->name);

  // With `--out -` stdout carries the JSON document alone (so it pipes into
  // a parser); the human-readable rendering moves to stderr.
  const std::string out = options.getString("out");
  std::FILE* human = out == "-" ? stderr : stdout;
  std::fprintf(human, "program %s (%s): %s\n", spec->name.c_str(),
               spec->family.c_str(), spec->description.c_str());
  support::Table table(resultHeaders());
  addResultRow(table, mode, report);
  std::fputs(table.toText().c_str(), human);
  std::fprintf(human, "total events: %s (%s elided, %s replayed)\n",
               support::withCommas(report.totalEvents).c_str(),
               support::withCommas(report.eventsElided).c_str(),
               support::withCommas(report.eventsReplayed).c_str());
  if (options.getFlag("theorems")) {
    std::fprintf(
        human,
        "theorem 2.1 (full HBR -> state): %llu schedules, %llu classes, "
        "%llu states, %llu conflicts\n",
        static_cast<unsigned long long>(report.theorem21.schedules),
        static_cast<unsigned long long>(report.theorem21.classes),
        static_cast<unsigned long long>(report.theorem21.states),
        static_cast<unsigned long long>(report.theorem21.conflicts));
    std::fprintf(
        human,
        "theorem 2.2 (lazy HBR -> state): %llu schedules, %llu classes, "
        "%llu states, %llu conflicts\n",
        static_cast<unsigned long long>(report.theorem22.schedules),
        static_cast<unsigned long long>(report.theorem22.classes),
        static_cast<unsigned long long>(report.theorem22.states),
        static_cast<unsigned long long>(report.theorem22.conflicts));
    std::fprintf(
        human,
        "value soundness (value class -> state): %llu schedules, %llu "
        "classes, %llu states, %llu conflicts\n",
        static_cast<unsigned long long>(report.theoremValue.schedules),
        static_cast<unsigned long long>(report.theoremValue.classes),
        static_cast<unsigned long long>(report.theoremValue.states),
        static_cast<unsigned long long>(report.theoremValue.conflicts));
  }
  printViolations(human, report);
  printRaces(human, report);
  if (!out.empty()) {
    if (!writeDocument(out, report.toJson())) return kExitIo;
    if (out != "-") std::printf("report: %s\n", out.c_str());
  }
  if (options.getFlag("fail-on-violation") && report.foundViolation()) {
    return kExitViolation;
  }
  return kExitOk;
}

// --- compare -----------------------------------------------------------------

int cmdCompare(int argc, char** argv) {
  support::Options options(
      "lazyhb compare", "run one program under all six explorers, one row each");
  options.addString("program", "", "program name (see `lazyhb list`)");
  addExplorerFlags(options);
  options.addFlag("csv", "emit CSV instead of an aligned table");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  const programs::ProgramSpec* spec = resolveProgram(options.getString("program"));
  if (spec == nullptr) return kExitUsage;

  Session session;
  if (!sessionFrom(options, &session)) return kExitUsage;

  std::printf("program %s (%s): %s\n", spec->name.c_str(), spec->family.c_str(),
              spec->description.c_str());
  support::Table table(resultHeaders());
  std::vector<campaign::ExplorerSpec> modes = campaign::allExplorers();
  modes.push_back(*campaign::parseExplorerSpec("caching-value"));
  for (const campaign::ExplorerSpec& mode : modes) {
    const TestReport report = session.strategy(mode.name).run(spec->name);
    addResultRow(table, mode.name, report);
  }
  std::fputs((options.getFlag("csv") ? table.toCsv() : table.toText()).c_str(),
             stdout);
  return kExitOk;
}

// --- bench -------------------------------------------------------------------

/// Resolve the --programs selector: a comma-separated list where each token
/// is a program name or a family name. Empty selects the whole corpus.
/// Returns false with *badToken set when a token matches nothing.
bool selectPrograms(const std::string& csv,
                    std::vector<const programs::ProgramSpec*>& out,
                    std::string* badToken) {
  if (csv.empty()) return true;  // campaign default: full corpus
  return programs::selectByTokens(support::splitCsv(csv), out, badToken);
}

/// Parse the --shard selector "i/N" (1-based, e.g. "2/3") into the 0-based
/// campaign fields. Returns false after printing a usage error.
bool parseShard(const std::string& text, int* index, int* count) {
  const auto bad = [&] {
    std::fprintf(stderr,
                 "lazyhb: --shard expects 'i/N' with 1 <= i <= N (e.g. 2/3), "
                 "got '%s'\n",
                 text.c_str());
    return false;
  };
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) {
    return bad();
  }
  try {
    std::size_t consumed = 0;
    const int i = std::stoi(text.substr(0, slash), &consumed);
    if (consumed != slash) return bad();
    const std::string denominator = text.substr(slash + 1);
    const int n = std::stoi(denominator, &consumed);
    if (consumed != denominator.size()) return bad();
    if (n < 1 || i < 1 || i > n) return bad();
    *index = i - 1;
    *count = n;
    return true;
  } catch (const std::exception&) {
    return bad();
  }
}

/// One --progress-json line per event: a machine-readable single-line JSON
/// object on stdout, flushed immediately so a supervisor can stream it.
void printProgressJson(const ProgressEvent& event) {
  support::JsonWriter json;
  json.beginObject();
  json.field("event", progressKindName(event.kind));
  if (!event.scenario.empty()) json.field("program", event.scenario);
  if (!event.strategy.empty()) json.field("explorer", event.strategy);
  json.field("schedules", event.schedulesExecuted);
  json.field("cells_done", static_cast<std::uint64_t>(event.cellsDone));
  json.field("cells_total", static_cast<std::uint64_t>(event.cellsTotal));
  json.field("attempt", event.attempt);
  json.field("wall_seconds", event.wallSeconds);
  if (event.fromCheckpoint) json.field("from_checkpoint", true);
  json.endObject();
  // The writer pretty-prints; progress consumers want one line per event.
  std::string line = json.str();
  std::string flat;
  flat.reserve(line.size());
  for (const char c : line) {
    if (c == '\n') continue;
    flat += c;
  }
  std::printf("%s\n", flat.c_str());
  std::fflush(stdout);
}

void printProgressHuman(const ProgressEvent& event) {
  switch (event.kind) {
    case ProgressEvent::Kind::CellFinished:
      std::printf("[%zu/%zu] %s x %s: %llu schedules, %.3fs%s\n",
                  event.cellsDone, event.cellsTotal, event.scenario.c_str(),
                  event.strategy.c_str(),
                  static_cast<unsigned long long>(event.schedulesExecuted),
                  event.wallSeconds,
                  event.fromCheckpoint ? " (from checkpoint)" : "");
      break;
    case ProgressEvent::Kind::CellRetried:
      std::printf("retry %s x %s (attempt %d failed after %.3fs)\n",
                  event.scenario.c_str(), event.strategy.c_str(), event.attempt,
                  event.wallSeconds);
      break;
    case ProgressEvent::Kind::CellTimedOut:
      std::printf("timeout %s x %s after %.3fs (%llu schedules kept)\n",
                  event.scenario.c_str(), event.strategy.c_str(),
                  event.wallSeconds,
                  static_cast<unsigned long long>(event.schedulesExecuted));
      break;
    case ProgressEvent::Kind::CellFailed:
      std::printf("FAILED %s x %s after %d attempt(s)\n",
                  event.scenario.c_str(), event.strategy.c_str(), event.attempt);
      break;
    default:
      return;  // CellStarted/ScheduleTick/CampaignFinished stay quiet
  }
  std::fflush(stdout);
}

int cmdBench(int argc, char** argv) {
  support::Options options(
      "lazyhb bench",
      "run the (program x explorer) campaign matrix in parallel and emit a "
      "machine-readable JSON report");
  options.addString("explorers", "",
                    "comma-separated explorer modes (default: all of " +
                        campaign::explorerNamesHelp() + ")");
  options.addString("programs", "",
                    "comma-separated program or family names (default: the "
                    "full corpus)");
  options.addInt("jobs", 0, "worker threads (0: one per hardware thread)");
  options.addInt("workers", 1,
                 "intra-cell worker threads sharding each scenario's schedule "
                 "tree (dfs/caching-* only; counts stay byte-identical)");
  options.addInt("limit", 10000, "schedule budget per cell (paper: 100000)");
  options.addInt("max-events", 65536, "per-schedule event budget");
  options.addInt("seed", 42, "random explorer seed (same in every cell)");
  options.addString("incremental", "on",
                    "incremental prefix replay (checkpoint/rollback): on | off");
  addMemoryModelFlag(options);
  addSnapshotBudgetFlag(options);
  options.addString("out", "",
                    "write the JSON report to this path ('-': stdout; empty: "
                    "no report file)");
  options.addFlag("quick",
                  "CI preset: cap the schedule budget at 200 (an explicit "
                  "--limit wins)");
  options.addFlag("paper",
                  "nightly preset: the paper's 100000-schedule budget (an "
                  "explicit --limit wins)");
  options.addString("shard", "",
                    "run only slice i of N ('i/N', 1-based round-robin over "
                    "the cell matrix); merge slices with `lazyhb merge`");
  options.addString("checkpoint", "",
                    "journal finished cells into this directory; rerunning "
                    "with the same flags resumes from it");
  options.addString("resume", "",
                    "like --checkpoint, but require an existing journal in "
                    "the directory (error when there is nothing to resume)");
  options.addInt("cell-timeout", 0,
                 "per-cell wall-clock budget in seconds (0: none); cells "
                 "over budget are marked timed_out and the campaign "
                 "continues");
  options.addInt("cell-retries", 0,
                 "re-run a timed-out or crashing cell up to this many extra "
                 "times before recording it");
  options.addFlag("progress", "print one line per finished cell");
  options.addFlag("progress-json",
                  "stream one machine-readable JSON line per campaign event");
  options.addFlag("csv", "print the per-cell table as CSV");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  std::string bad;
  const auto explorers =
      campaign::parseExplorerList(options.getString("explorers"), &bad);
  if (!explorers) {
    std::fprintf(stderr, "lazyhb: unknown explorer '%s' (expected %s)\n",
                 bad.c_str(), campaign::explorerNamesHelp(true).c_str());
    return kExitUsage;
  }

  campaign::CampaignOptions campaignOptions;
  campaignOptions.explorers = *explorers;
  if (!selectPrograms(options.getString("programs"), campaignOptions.programs,
                      &bad)) {
    std::fprintf(stderr,
                 "lazyhb: '%s' names no program or family (try `lazyhb list`)\n",
                 bad.c_str());
    return kExitUsage;
  }

  const bool quick = options.getFlag("quick");
  const bool paper = options.getFlag("paper");
  if (quick && paper) {
    std::fprintf(stderr, "lazyhb: --quick and --paper are mutually exclusive\n");
    return kExitUsage;
  }
  std::uint64_t limit = static_cast<std::uint64_t>(options.getInt("limit"));
  if (quick && !options.wasSet("limit")) limit = 200;
  if (paper && !options.wasSet("limit")) limit = 100'000;
  campaignOptions.explorer.scheduleLimit = limit;
  if (!parseIncremental(options, &campaignOptions.explorer.incremental)) {
    return kExitUsage;
  }
  campaignOptions.explorer.maxEventsPerSchedule =
      static_cast<std::uint32_t>(options.getInt("max-events"));
  const int workers = static_cast<int>(options.getInt("workers"));
  if (workers < 1) {
    std::fprintf(stderr, "lazyhb: --workers expects a positive count, got %d\n",
                 workers);
    return kExitUsage;
  }
  campaignOptions.explorer.workers = workers;
  std::string memoryModel;
  if (!parseMemoryModelFlag(options, &memoryModel)) return kExitUsage;
  campaignOptions.explorer.memoryModel = *memory::parseMemoryModel(memoryModel);
  if (!parseSnapshotBudget(options,
                           &campaignOptions.explorer.snapshotBudgetBytes)) {
    return kExitUsage;
  }
  campaignOptions.seed = static_cast<std::uint64_t>(options.getInt("seed"));
  campaignOptions.jobs = static_cast<int>(options.getInt("jobs"));

  if (!options.getString("shard").empty() &&
      !parseShard(options.getString("shard"), &campaignOptions.shardIndex,
                  &campaignOptions.shardCount)) {
    return kExitUsage;
  }
  const std::string checkpointDir = options.getString("checkpoint");
  const std::string resumeDir = options.getString("resume");
  if (!checkpointDir.empty() && !resumeDir.empty()) {
    std::fprintf(stderr,
                 "lazyhb: --checkpoint and --resume are mutually exclusive "
                 "(--resume implies the journal directory)\n");
    return kExitUsage;
  }
  campaignOptions.checkpointDir = resumeDir.empty() ? checkpointDir : resumeDir;
  campaignOptions.requireExistingJournal = !resumeDir.empty();
  const std::int64_t cellTimeout = options.getInt("cell-timeout");
  const std::int64_t cellRetries = options.getInt("cell-retries");
  if (cellTimeout < 0 || cellRetries < 0) {
    std::fprintf(stderr,
                 "lazyhb: --cell-timeout and --cell-retries expect "
                 "non-negative values\n");
    return kExitUsage;
  }
  campaignOptions.cellTimeoutSeconds = static_cast<double>(cellTimeout);
  campaignOptions.cellRetries = static_cast<int>(cellRetries);

  if (options.getFlag("progress") && options.getFlag("progress-json")) {
    std::fprintf(stderr,
                 "lazyhb: --progress and --progress-json are mutually "
                 "exclusive\n");
    return kExitUsage;
  }
  if (options.getFlag("progress-json")) {
    campaignOptions.onProgress = printProgressJson;
  } else if (options.getFlag("progress")) {
    campaignOptions.onProgress = printProgressHuman;
  }

  campaign::CampaignResult result;
  try {
    result = campaign::runCampaign(campaignOptions);
  } catch (const std::exception& error) {
    // Journal mismatch / nothing to resume / bad shard spec.
    std::fprintf(stderr, "%s\n", error.what());
    return kExitUsage;
  }

  support::Table table({"explorer", "cells", "schedules", "terminal", "pruned",
                        "violations", "hbrs", "lazy-hbrs", "value-classes",
                        "states", "cache-entries", "cache-MB", "wall-s"});
  for (const campaign::ExplorerTotals& t : result.perExplorer) {
    table.beginRow();
    table.cell(t.explorer);
    table.cell(t.cells);
    table.cell(t.schedules);
    table.cell(t.terminal);
    table.cell(t.pruned);
    table.cell(t.violations);
    table.cell(t.hbrs);
    table.cell(t.lazyHbrs);
    table.cell(t.valueClasses);
    table.cell(t.states);
    table.cell(t.cacheEntries);
    table.cell(static_cast<double>(t.cacheApproxBytes) / (1024.0 * 1024.0));
    table.cell(t.wallSeconds);
  }
  std::printf("campaign: %zu programs x %zu explorers = %zu cells, "
              "%d job(s), %llu task(s) stolen\n",
              result.programs.size(), result.perExplorer.size(),
              result.cells.size(), result.jobs,
              static_cast<unsigned long long>(result.tasksStolen));
  if (result.shardCount > 1) {
    std::printf("shard %d/%d: this report covers only its slice of the "
                "matrix; merge slices with `lazyhb merge`\n",
                result.shardIndex + 1, result.shardCount);
  }
  if (result.cellsFromCheckpoint > 0 || result.cellsTimedOut > 0 ||
      result.cellsFailed > 0 || result.cellsRetried > 0) {
    std::printf("supervisor: %zu cell(s) from checkpoint, %d timed out, "
                "%d failed, %d retried\n",
                result.cellsFromCheckpoint, result.cellsTimedOut,
                result.cellsFailed, result.cellsRetried);
  }
  std::fputs(table.toText().c_str(), stdout);
  if (options.getFlag("csv")) {
    support::Table cells({"program_id", "program", "family", "explorer",
                          "schedules", "terminal", "pruned", "violations",
                          "hbrs", "lazy_hbrs", "value_classes", "states",
                          "events", "wall_seconds"});
    for (const campaign::CellResult& cell : result.cells) {
      cells.beginRow();
      cells.cell(static_cast<std::int64_t>(cell.programId));
      cells.cell(cell.program);
      cells.cell(cell.family);
      cells.cell(cell.explorer);
      cells.cell(cell.stats.schedulesExecuted);
      cells.cell(cell.stats.terminalSchedules);
      cells.cell(cell.stats.prunedSchedules);
      cells.cell(cell.stats.violationSchedules);
      cells.cell(cell.stats.distinctHbrs);
      cells.cell(cell.stats.distinctLazyHbrs);
      cells.cell(cell.stats.distinctValueClasses);
      cells.cell(cell.stats.distinctStates);
      cells.cell(cell.stats.totalEvents);
      cells.cell(cell.wallSeconds, 4);
    }
    std::fputs("\n--- CSV ---\n", stdout);
    std::fputs(cells.toCsv().c_str(), stdout);
  }
  std::printf("totals: %s schedules, %s events (%s elided, %s replayed), "
              "%.2fs wall (%.2fs cpu), %.1fx parallel speedup\n",
              support::withCommas(result.totalSchedules).c_str(),
              support::withCommas(result.totalEvents).c_str(),
              support::withCommas(result.totalEventsElided).c_str(),
              support::withCommas(result.totalEventsReplayed).c_str(),
              result.wallSeconds, result.cpuSeconds,
              result.wallSeconds > 0.0 ? result.cpuSeconds / result.wallSeconds
                                       : 0.0);
  if (result.inequalityViolations == 0) {
    std::printf("section-3 inequality (#states <= #valueClasses <= #lazyHBRs "
                "<= #HBRs <= #schedules): holds on all %zu cells\n",
                result.cells.size());
  } else {
    std::printf("section-3 inequality: VIOLATED on %d cell(s):\n",
                result.inequalityViolations);
    for (const campaign::CellResult& cell : result.cells) {
      if (!cell.inequalityHolds()) {
        std::printf("  %s x %s: %s\n", cell.program.c_str(),
                    cell.explorer.c_str(), cell.inequalityDiagnostic.c_str());
      }
    }
  }

  campaign::ReportConfig reportConfig;
  reportConfig.scheduleLimit = limit;
  reportConfig.maxEventsPerSchedule = campaignOptions.explorer.maxEventsPerSchedule;
  reportConfig.seed = campaignOptions.seed;
  reportConfig.quick = quick;
  reportConfig.incremental = campaignOptions.explorer.incremental;
  reportConfig.workers = workers;
  reportConfig.snapshotBudgetBytes = campaignOptions.explorer.snapshotBudgetBytes;
  reportConfig.memoryModel = memoryModel;
  reportConfig.shardIndex = campaignOptions.shardIndex;
  reportConfig.shardCount = campaignOptions.shardCount;
  const std::string out = options.getString("out");
  if (!out.empty()) {
    if (!campaign::writeReportFile(out, result, reportConfig)) {
      return kExitIo;
    }
    if (out != "-") std::printf("report: %s\n", out.c_str());
  }
  return result.inequalityViolations == 0 ? kExitOk : kExitViolation;
}

// --- merge -------------------------------------------------------------------

/// Read a whole file ("-" is not supported here: merge inputs are named
/// report files). Returns false with a message on failure.
bool readDocument(const std::string& path, std::string* out) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    std::fprintf(stderr, "lazyhb: cannot read '%s'\n", path.c_str());
    return false;
  }
  out->clear();
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    out->append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    std::fprintf(stderr, "lazyhb: read error on '%s'\n", path.c_str());
    return false;
  }
  return true;
}

int cmdMerge(int argc, char** argv) {
  support::Options options(
      "lazyhb merge [report.json ...]",
      "merge shard/resume bench reports (schema v5) into one report: "
      "disjoint cells union, identical duplicates dedupe, totals and the "
      "section-3 check are recomputed from the merged cells; conflicting "
      "duplicate counts are a hard error");
  options.addString("out", "-",
                    "write the merged report to this path ('-': stdout)");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  const std::vector<std::string>& paths = options.positional();
  if (paths.empty()) {
    std::fprintf(stderr,
                 "lazyhb: nothing to merge — pass report files as positional "
                 "arguments\n");
    return kExitUsage;
  }

  std::vector<std::string> documents(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) {
    if (!readDocument(paths[i], &documents[i])) return kExitIo;
  }

  campaign::MergeOutcome merged;
  try {
    merged = campaign::mergeReports(documents, paths);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return kExitViolation;
  }

  const std::string out = options.getString("out");
  if (!campaign::writeReportFile(out, merged.result, merged.config,
                                 &merged.provenance)) {
    return kExitIo;
  }
  if (out != "-") {
    std::printf("merged %zu report(s) -> %s: %zu cell(s), %zu program(s); "
                "section-3 inequality %s\n",
                paths.size(), out.c_str(), merged.result.cells.size(),
                merged.result.programs.size(),
                merged.result.inequalityViolations == 0
                    ? "holds on all cells"
                    : "VIOLATED");
  }
  return merged.result.inequalityViolations == 0 ? kExitOk : kExitViolation;
}

// --- replay ------------------------------------------------------------------

/// Parse "0,1,1,0" (or "0 1 1 0") into thread indices. Every token must be
/// an integer in full — "1-2" or "1x" is rejected, not truncated.
bool parseSchedule(const std::string& text, std::vector<int>& out) {
  std::string token;
  for (const char c : text + ",") {
    if (c == ',' || c == ' ') {
      if (token.empty()) continue;
      try {
        std::size_t consumed = 0;
        const int value = std::stoi(token, &consumed);
        if (consumed != token.size()) return false;
        out.push_back(value);
      } catch (const std::exception&) {
        return false;
      }
      token.clear();
      continue;
    }
    const bool leadingMinus = (c == '-' && token.empty());
    if (!leadingMinus && (c < '0' || c > '9')) return false;
    token += c;
  }
  return true;
}

int cmdReplay(int argc, char** argv) {
  support::Options options("lazyhb replay",
                           "re-execute a recorded schedule and render its trace");
  options.addString("program", "", "program name (see `lazyhb list`)");
  options.addString("schedule", "",
                    "comma-separated thread picks, e.g. 0,1,1,0 (empty: "
                    "first-enabled everywhere)");
  options.addString("relation", "full", "relation to render: sync | full | lazy");
  addMemoryModelFlag(options);
  options.addInt("max-events", 65536, "per-schedule event budget");
  options.addFlag("races", "run the sync-HB data-race detector");
  options.addFlag("no-trace", "skip the rendered trace, print fingerprints only");
  if (!options.parse(argc, argv)) return options.parseError() ? kExitUsage : kExitOk;

  const programs::ProgramSpec* spec = resolveProgram(options.getString("program"));
  if (spec == nullptr) return kExitUsage;

  std::vector<int> schedule;
  if (!parseSchedule(options.getString("schedule"), schedule)) {
    std::fprintf(stderr, "lazyhb: --schedule expects comma-separated integers\n");
    return kExitUsage;
  }

  TraceOptions traceOptions;
  traceOptions.renderTrace = !options.getFlag("no-trace");
  traceOptions.detectRaces = options.getFlag("races");
  traceOptions.maxEventsPerSchedule =
      static_cast<std::uint32_t>(options.getInt("max-events"));
  traceOptions.relation = options.getString("relation");
  if (!parseMemoryModelFlag(options, &traceOptions.memoryModel)) {
    return kExitUsage;
  }

  ScheduleTrace result;
  try {
    result = traceSchedule(spec->body, schedule, traceOptions);
  } catch (const std::invalid_argument&) {
    std::fprintf(stderr, "lazyhb: unknown relation '%s'\n",
                 traceOptions.relation.c_str());
    return kExitUsage;
  }

  if (!result.applied) {
    std::fprintf(stderr,
                 "lazyhb: schedule does not apply to '%s' — a pick named a "
                 "thread that was not enabled at that point\n",
                 spec->name.c_str());
    return kExitUsage;
  }
  std::printf("program %s: outcome %s, %zu event(s)\n", spec->name.c_str(),
              result.outcome.c_str(), result.events);
  if (!result.message.empty()) {
    std::printf("violation: %s\n", result.message.c_str());
  }
  std::printf("hbr %s  lazy %s  state %s\n", result.hbrFingerprint.c_str(),
              result.lazyFingerprint.c_str(), result.stateFingerprint.c_str());
  if (traceOptions.renderTrace) {
    std::fputs(result.rendered.c_str(), stdout);
  }
  for (const TestRace& race : result.races) {
    std::printf("race on %s (events %d and %d)\n", race.object.c_str(),
                race.firstEvent, race.secondEvent);
  }
  return result.violated ? kExitViolation : kExitOk;
}

}  // namespace

int run(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0 || std::strcmp(argv[1], "help") == 0) {
    printTopLevelUsage();
    return argc < 2 ? kExitUsage : kExitOk;
  }
  const std::string command = argv[1];
  // Each subcommand re-parses from its own argv[0] == the command name.
  const int subArgc = argc - 1;
  char** subArgv = argv + 1;
  if (command == "list") return cmdList(subArgc, subArgv);
  if (command == "explore") return cmdExplore(subArgc, subArgv);
  if (command == "compare") return cmdCompare(subArgc, subArgv);
  if (command == "bench") return cmdBench(subArgc, subArgv);
  if (command == "merge") return cmdMerge(subArgc, subArgv);
  if (command == "replay") return cmdReplay(subArgc, subArgv);
  std::fprintf(stderr, "lazyhb: unknown command '%s'\n\n", command.c_str());
  printTopLevelUsage();
  return kExitUsage;
}

}  // namespace lazyhb::cli
