// lazyhb/cli/cli.hpp
//
// The unified `lazyhb` command-line driver. Subcommands:
//
//   lazyhb list     — print the registered program corpus
//   lazyhb explore  — run one program under one explorer, print stats
//   lazyhb compare  — run one program under every explorer, one row each
//   lazyhb bench    — run the (program × explorer) campaign matrix in
//                     parallel and emit a machine-readable JSON report
//   lazyhb replay   — re-execute a recorded schedule and render its trace
//
// Every subcommand builds on support::Options, so `lazyhb <cmd> --help`
// prints the full flag table. Explorer construction goes through the shared
// campaign::ExplorerSpec factory (campaign/explorer_spec.hpp), so the CLI,
// the figure benches and the campaign runner accept the same mode names:
// dfs, random, dpor, caching-full, caching-lazy.

#pragma once

namespace lazyhb::cli {

/// Entry point: dispatch argv[1] to a subcommand. Returns the process exit
/// status: 0 on success, 2 on usage errors, 1 when a violation was found by
/// `explore --fail-on-violation`, a replay ends in a violation, or a bench
/// campaign sees a §3 inequality violation, and 3 when the arguments were
/// fine but a requested output file (bench --out) could not be written.
[[nodiscard]] int run(int argc, char** argv);

}  // namespace lazyhb::cli
