// lazyhb/cli/cli.hpp
//
// The unified `lazyhb` command-line driver. Subcommands:
//
//   lazyhb list     — print the registered program corpus
//   lazyhb explore  — run one program under one explorer, print stats
//   lazyhb compare  — run one program under every explorer, one row each
//   lazyhb replay   — re-execute a recorded schedule and render its trace
//
// Every subcommand builds on support::Options, so `lazyhb <cmd> --help`
// prints the full flag table. The explorer modes accepted by --explorer are
// dfs, random, dpor, caching-full and caching-lazy (see makeExplorer).

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "explore/explorer.hpp"

namespace lazyhb::cli {

/// The five explorer modes the driver exposes.
constexpr const char* kExplorerModes[] = {"dfs", "random", "dpor", "caching-full",
                                          "caching-lazy"};

/// Construct the explorer named by `mode` (one of kExplorerModes).
/// Returns nullptr for an unknown mode. `seed` is only used by `random`.
[[nodiscard]] std::unique_ptr<explore::ExplorerBase> makeExplorer(
    const std::string& mode, const explore::ExplorerOptions& options,
    std::uint64_t seed);

/// Entry point: dispatch argv[1] to a subcommand. Returns the process exit
/// status (0 on success, 2 on usage errors, 1 when a violation was found by
/// `explore --fail-on-violation` or a replay ends in a violation).
[[nodiscard]] int run(int argc, char** argv);

}  // namespace lazyhb::cli
