#include "trace/trace_recorder.hpp"

#include <algorithm>
#include <cstring>

#include "support/diagnostics.hpp"

namespace lazyhb::trace {

using runtime::EventRecord;
using runtime::ObjectKind;
using runtime::OpKind;

const char* relationName(Relation r) noexcept {
  switch (r) {
    case Relation::Sync: return "sync";
    case Relation::Full: return "full";
    case Relation::Lazy: return "lazy";
    case Relation::Value: return "value";
  }
  return "?";
}

namespace {

/// Salt separating the value-equivalence hash domain from the Full/Lazy ones.
constexpr std::uint64_t kValueDomain = 0x3c4dULL;

/// One value-observation contribution: hash of an observed value, salted
/// away from every other 64-bit quantity the fingerprints mix.
[[nodiscard]] support::Hash128 observedValueHash(std::uint64_t value) noexcept {
  return support::hash128(value ^ 0x0b5e55edULL, kValueDomain);
}

}  // namespace

TraceRecorder::TraceRecorder() : TraceRecorder(Options{}) {}

TraceRecorder::TraceRecorder(Options options) : options_(options) {
  scratchFull_.reserve(16);
  scratchLazy_.reserve(16);
  scratchSync_.reserve(16);
}

void TraceRecorder::onExecutionStart(const runtime::Execution&) {
  if (pendingResume_ != kNoCheckpoint) {
    // Re-executed schedule with a shared prefix: rewind to the staged point
    // and treat the first pendingResume_ events as replays to skip.
    rollbackTo(pendingResume_);
    skipEvents_ = pendingResume_;
    pendingResume_ = kNoCheckpoint;
    return;
  }
  resetAll();
}

void TraceRecorder::resetAll() {
  eventCount_ = 0;
  objectCount_ = 0;
  threadCount_ = 0;
  skipEvents_ = 0;
  fullHash_.clear();
  lazyHash_.clear();
  records_.clear();
  syncClocks_.reset();
  fullClocks_.reset();
  lazyClocks_.reset();
  prefixFull_ = support::MultisetHash{};
  prefixLazy_ = support::MultisetHash{};
  prefixValue_ = support::MultisetHash{};
  valueState_ = support::MultisetHash{};
  races_.clear();
  undoSize_ = 0;  // no stages left to roll back to; entries are dead
  recycleCheckpoints();
}

support::Hash128 TraceRecorder::cvQueueContribution(const ObjectHistory& h) noexcept {
  support::Hash128 fold = support::hash128(h.uid ^ 0xc01dfeedULL, kValueDomain);
  for (const runtime::Uid waiter : h.cvQueue) {
    fold = fold.mixedWith(support::hash128(waiter));
  }
  return fold;
}

void TraceRecorder::onObjectRegistered(const runtime::Execution&, std::int32_t index,
                                       runtime::Uid uid, runtime::ObjectKind kind,
                                       const std::string& name,
                                       std::uint64_t initialValueHash) {
  if (skipEvents_ > 0) {
    // Replayed registration of a prefix object: its rolled-back history is
    // already correct, so resetting it would erase prefix state.
    LAZYHB_ASSERT(static_cast<std::size_t>(index) < objects_.size() &&
                  objects_[static_cast<std::size_t>(index)].uid == uid);
    (void)index;
    (void)uid;
    return;
  }
  ObjectHistory& h = history(index);
  h.reset(uid, kind);
  // Seed the object's share of the value-state accumulator. Variables
  // contribute their (uid, value) pair from registration on; condvars
  // contribute their (empty) wait-queue fold. Mutexes, semaphores and
  // threads need no contribution: their state is a function of the
  // operation multiset prefixValue_ already carries. A rollback restores
  // valueState_ wholesale from the checkpoint copy, which un-registers
  // objects born past the stage.
  if (kind == ObjectKind::Var) {
    h.valueHash = initialValueHash;
    valueState_.add(support::hash128(uid, h.valueHash));
  } else if (kind == ObjectKind::CondVar) {
    valueState_.add(cvQueueContribution(h));
  }
  if (!name.empty()) {
    names_.emplace(uid, name);  // keeps the first name seen; stable across runs
  }
}

std::size_t TraceRecorder::checkpoint() {
  if (!checkpoints_.empty() && checkpoints_.back().eventCount == eventCount_) {
    return eventCount_;  // already staged at this depth
  }
  LAZYHB_CHECK(checkpoints_.empty() || checkpoints_.back().eventCount < eventCount_);
  if (checkpointPool_.empty()) {
    checkpoints_.emplace_back();
  } else {
    checkpoints_.push_back(std::move(checkpointPool_.back()));
    checkpointPool_.pop_back();
  }
  Checkpoint& cp = checkpoints_.back();
  cp.eventCount = eventCount_;
  cp.prefixFull = prefixFull_;
  cp.prefixLazy = prefixLazy_;
  cp.prefixValue = prefixValue_;
  cp.valueState = valueState_;
  cp.threadCount = threadCount_;
  cp.threadLastEvent.assign(threadLastEvent_.begin(),
                            threadLastEvent_.begin() +
                                static_cast<std::ptrdiff_t>(threadCount_));
  cp.objectCount = objectCount_;
  // Object cursors are not copied: the undo log above `undoMark` is this
  // stage's pre-image. A fresh epoch makes the next update of any history
  // log it again (relative to *this* checkpoint).
  cp.undoMark = undoSize_;
  currentEpoch_ = ++epochCounter_;
  cp.raceCount = races_.size();
  return eventCount_;
}

void TraceRecorder::logHistoryUndo(std::int32_t index, const ObjectHistory& h) {
  if (undoSize_ == undoLog_.size()) undoLog_.emplace_back();
  ObjectUndo& u = undoLog_[undoSize_++];
  u.index = index;
  ObjectCursor& c = u.cursor;
  c.lastWrite = h.lastWrite;
  c.readersSinceWrite.assign(h.readersSinceWrite.begin(), h.readersSinceWrite.end());
  c.lastChainOp = h.lastChainOp;
  c.chainSize = h.chain.size();
  c.lastTryLock = h.lastTryLock;
  c.mutexOpsSinceTryLock.assign(h.mutexOpsSinceTryLock.begin(),
                                h.mutexOpsSinceTryLock.end());
  c.lastReleaseEvent = h.lastReleaseEvent;
  c.lastWriteEvent = h.lastWriteEvent;
  c.lastReadPerThread.assign(h.lastReadPerThread.begin(), h.lastReadPerThread.end());
  c.valueHash = h.valueHash;
  c.cvQueue.assign(h.cvQueue.begin(), h.cvQueue.end());
}

std::size_t TraceRecorder::deepestCheckpointAtOrBelow(std::size_t depth) const noexcept {
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    if (it->eventCount <= depth) return it->eventCount;
  }
  return kNoCheckpoint;
}

void TraceRecorder::rollbackTo(std::size_t depth) {
  while (!checkpoints_.empty() && checkpoints_.back().eventCount > depth) {
    checkpointPool_.push_back(std::move(checkpoints_.back()));
    checkpoints_.pop_back();
  }
  LAZYHB_CHECK(!checkpoints_.empty() && checkpoints_.back().eventCount == depth);
  const Checkpoint& cp = checkpoints_.back();
  eventCount_ = depth;
  fullHash_.resize(depth);
  lazyHash_.resize(depth);
  records_.resize(depth);
  syncClocks_.truncate(depth);
  fullClocks_.truncate(depth);
  lazyClocks_.truncate(depth);
  prefixFull_ = cp.prefixFull;
  prefixLazy_ = cp.prefixLazy;
  prefixValue_ = cp.prefixValue;
  valueState_ = cp.valueState;
  threadCount_ = cp.threadCount;
  for (std::size_t i = 0; i < cp.threadCount; ++i) {
    threadLastEvent_[i] = cp.threadLastEvent[i];
  }
  // Replay the undo log backwards to this stage's mark. Entries can
  // reference histories past cp.objectCount (objects that existed under a
  // deeper stage); applying them is harmless — those histories are dead
  // until a re-registration resets them. Swaps consume the entry and keep
  // the arena slot's vector capacity pooled.
  while (undoSize_ > cp.undoMark) {
    ObjectUndo& u = undoLog_[--undoSize_];
    ObjectHistory& h = objects_[static_cast<std::size_t>(u.index)];
    ObjectCursor& c = u.cursor;
    h.lastWrite = c.lastWrite;
    h.readersSinceWrite.swap(c.readersSinceWrite);
    h.lastChainOp = c.lastChainOp;
    LAZYHB_ASSERT(h.chain.size() >= c.chainSize);
    h.chain.resize(c.chainSize);
    h.lastTryLock = c.lastTryLock;
    h.mutexOpsSinceTryLock.swap(c.mutexOpsSinceTryLock);
    h.lastReleaseEvent = c.lastReleaseEvent;
    h.lastWriteEvent = c.lastWriteEvent;
    h.lastReadPerThread.swap(c.lastReadPerThread);
    h.valueHash = c.valueHash;
    h.cvQueue.swap(c.cvQueue);
  }
  objectCount_ = cp.objectCount;
  // New epoch: post-rollback updates must re-log their pre-images so this
  // same stage can be rolled back to again.
  currentEpoch_ = ++epochCounter_;
  races_.resize(cp.raceCount);
}

bool TraceRecorder::evictCheckpoint(std::size_t depth) {
  for (std::size_t i = 0; i < checkpoints_.size(); ++i) {
    if (checkpoints_[i].eventCount != depth) continue;
    checkpointPool_.push_back(std::move(checkpoints_[i]));
    checkpoints_.erase(checkpoints_.begin() + static_cast<std::ptrdiff_t>(i));
    return true;
  }
  return false;
}

std::size_t TraceRecorder::checkpointApproxBytes(std::size_t depth) const noexcept {
  // Reverse scan: checkpoints are depth-ascending and the engine prices the
  // just-staged (deepest) one on every stage — a forward scan made staging
  // O(stages) and deep-tree branches quadratic.
  for (auto it = checkpoints_.rbegin(); it != checkpoints_.rend(); ++it) {
    const Checkpoint& cp = *it;
    if (cp.eventCount != depth) continue;
    return sizeof(Checkpoint) +
           cp.threadLastEvent.capacity() * sizeof(std::int32_t);
  }
  return 0;
}

void TraceRecorder::armResume(std::size_t depth) {
  LAZYHB_CHECK(deepestCheckpointAtOrBelow(depth) == depth);
  pendingResume_ = depth;
}

void TraceRecorder::recycleCheckpoints() noexcept {
  while (!checkpoints_.empty()) {
    checkpointPool_.push_back(std::move(checkpoints_.back()));
    checkpoints_.pop_back();
  }
}

TraceRecorder::ObjectHistory& TraceRecorder::history(std::int32_t objectIndex) {
  const auto i = static_cast<std::size_t>(objectIndex);
  if (i >= objects_.size()) {
    objects_.resize(i + 1);
  }
  objectCount_ = std::max(objectCount_, i + 1);
  return objects_[i];
}

const ClockArena& TraceRecorder::arena(Relation r) const noexcept {
  switch (r) {
    case Relation::Sync: return syncClocks_;
    case Relation::Full: return fullClocks_;
    case Relation::Lazy: return lazyClocks_;
    case Relation::Value: break;  // an equivalence, not a clock-bearing relation
  }
  LAZYHB_UNREACHABLE("bad relation");
}

namespace {

/// Branchless compare-exchange: leaves min(x, y) in x and max in y.
inline void cmpSwap(std::int32_t& x, std::int32_t& y) noexcept {
  const std::int32_t lo = x < y ? x : y;
  const std::int32_t hi = x < y ? y : x;
  x = lo;
  y = hi;
}

/// Sort + dedup of a predecessor scratch list. An event has at most a
/// handful of direct predecessors, so the common path is a branch-free
/// 8-element Batcher sorting network followed by a branch-free adjacent
/// compaction — no data-dependent branches for the branch predictor to
/// mistrain on, unlike the introsort the long tail falls back to.
void sortUnique(std::vector<std::int32_t>& v) {
  const std::size_t n = v.size();
  if (n <= 1) return;
  if (n > 8) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
    return;
  }
  std::int32_t a[8];
  for (std::size_t i = 0; i < n; ++i) a[i] = v[i];
  for (std::size_t i = n; i < 8; ++i) a[i] = INT32_MAX;  // pad sorts last
  // Batcher odd-even mergesort network for 8 elements (19 comparators).
  cmpSwap(a[0], a[1]); cmpSwap(a[2], a[3]); cmpSwap(a[4], a[5]); cmpSwap(a[6], a[7]);
  cmpSwap(a[0], a[2]); cmpSwap(a[1], a[3]); cmpSwap(a[4], a[6]); cmpSwap(a[5], a[7]);
  cmpSwap(a[1], a[2]); cmpSwap(a[5], a[6]);
  cmpSwap(a[0], a[4]); cmpSwap(a[1], a[5]); cmpSwap(a[2], a[6]); cmpSwap(a[3], a[7]);
  cmpSwap(a[2], a[4]); cmpSwap(a[3], a[5]);
  cmpSwap(a[1], a[2]); cmpSwap(a[3], a[4]); cmpSwap(a[5], a[6]);
  // Branch-free unique: the write index only advances on a new value.
  v[0] = a[0];
  std::size_t out = 1;
  for (std::size_t i = 1; i < n; ++i) {
    v[out] = a[i];
    out += static_cast<std::size_t>(a[i] != a[i - 1]);
  }
  v.resize(out);
}

/// Start one event's clock row in `arena`: copy the thread's running clock
/// (its previous event's row, or zeros for a thread's first event).
std::uint32_t* startClockRow(ClockArena& arena, std::int32_t copyFrom) {
  std::uint32_t* row = arena.appendRow();
  const std::size_t bytes = arena.stride() * sizeof(std::uint32_t);
  if (copyFrom >= 0) {
    std::memcpy(row, arena.row(static_cast<std::size_t>(copyFrom)), bytes);
  } else {
    std::memset(row, 0, bytes);
  }
  return row;
}

/// Build one event's clock row: running clock, join the direct
/// predecessors, tick the thread's own component. All span loops are
/// branch-free over the arena's fixed stride.
void buildClockRow(ClockArena& arena, std::int32_t copyFrom,
                   const std::vector<std::int32_t>& preds, int tid,
                   std::uint32_t tick) {
  std::uint32_t* row = startClockRow(arena, copyFrom);
  const std::uint32_t stride = arena.stride();
  for (const std::int32_t p : preds) {
    joinClockSpans(row, arena.row(static_cast<std::size_t>(p)), stride);
  }
  row[tid] = tick;
}

}  // namespace

void TraceRecorder::onEvent(const runtime::Execution& exec, const EventRecord& ev) {
  if (skipEvents_ > 0) [[unlikely]] {
    // Replay of an event the rollback retained: every per-event structure
    // for it is already in place, byte-identical to what re-recording would
    // produce (the replayed prefix is the same schedule of the same
    // deterministic program).
    LAZYHB_ASSERT(records_[eventCount_ - skipEvents_].threadIndex == ev.threadIndex &&
                  records_[eventCount_ - skipEvents_].kind == ev.kind);
    --skipEvents_;
    ++replaysSkipped_;
    return;
  }
  const int t = ev.threadIndex;
  const auto tIdx = static_cast<std::size_t>(t);
  if (tIdx >= threadCount_) {
    if (threadLastEvent_.size() <= tIdx) {
      threadLastEvent_.resize(tIdx + 1, -1);
    }
    for (std::size_t i = threadCount_; i <= tIdx; ++i) threadLastEvent_[i] = -1;
    threadCount_ = tIdx + 1;
  }
  if (static_cast<std::uint32_t>(t) >= syncClocks_.stride()) {
    // Thread capacity exceeded: widen all three matrices together (they
    // always share a stride). Rounded up so repeated spawns re-stride once.
    const std::uint32_t stride = (static_cast<std::uint32_t>(t) + 8u) & ~7u;
    syncClocks_.widen(stride);
    fullClocks_.widen(stride);
    lazyClocks_.widen(stride);
  }

  const auto index = static_cast<std::int32_t>(eventCount_);
  records_.push_back(ev);

  scratchFull_.clear();
  scratchLazy_.clear();
  scratchSync_.clear();
  // Pred-set coincidence tracking: when every predecessor was pushed to all
  // three relations (the common predAll-only case), or at least to both the
  // Full and Lazy ones, the per-relation scratch lists are identical and the
  // clock-row builds below fuse into one pass over a single list.
  bool lazySameAsFull = true;  // scratchLazy_ would equal scratchFull_
  bool syncSameAsFull = true;  // scratchSync_ would equal scratchFull_
  auto predAll = [&](std::int32_t p) {
    if (p >= 0) {
      scratchFull_.push_back(p);
      scratchLazy_.push_back(p);
      scratchSync_.push_back(p);
    }
  };
  auto predConflict = [&](std::int32_t p) {  // Full+Lazy (variable-style)
    if (p >= 0) {
      scratchFull_.push_back(p);
      scratchLazy_.push_back(p);
      syncSameAsFull = false;
    }
  };
  auto predFullOnly = [&](std::int32_t p) {
    if (p >= 0) {
      scratchFull_.push_back(p);
      lazySameAsFull = false;
      syncSameAsFull = false;
    }
  };
  auto predLazyOnly = [&](std::int32_t p) {
    if (p >= 0) {
      scratchLazy_.push_back(p);
      lazySameAsFull = false;
    }
  };
  auto predSyncOnly = [&](std::int32_t p) {
    if (p >= 0) {
      scratchSync_.push_back(p);
      syncSameAsFull = false;
    }
  };

  // Program order: the previous event of this thread. The clocks encode it
  // implicitly (the running clock is copied below); the hash needs the index.
  const std::int32_t prevEvent = threadLastEvent_[tIdx];
  if (ev.indexInThread > 0) {
    predAll(prevEvent);
  }

  // Special predecessors participate in every relation.
  predAll(ev.spawnPredecessor);
  predAll(ev.signalPredecessor);
  predAll(ev.joinPredecessor);

  // Object-conflict edges per kind.
  switch (ev.kind) {
    case OpKind::Read: {
      ObjectHistory& h = history(ev.objectIndex);
      predConflict(h.lastWrite);
      break;
    }
    case OpKind::Write:
    case OpKind::Rmw:
    case OpKind::Flush: {
      if (ev.kind == OpKind::Write && ev.aux == 1) {
        // TSO-buffered store: not yet a memory write, so program order is
        // its only ordering. The memory side of the store — and its
        // conflict edges — arrive with the matching Flush event.
        break;
      }
      ObjectHistory& h = history(ev.objectIndex);
      predConflict(h.lastWrite);
      for (const std::int32_t r : h.readersSinceWrite) predConflict(r);
      break;
    }
    case OpKind::Lock:
    case OpKind::Unlock: {
      ObjectHistory& h = history(ev.objectIndex);
      predFullOnly(h.lastChainOp);
      predLazyOnly(h.lastTryLock);
      if (ev.kind == OpKind::Lock) predSyncOnly(h.lastReleaseEvent);
      break;
    }
    case OpKind::TryLock: {
      ObjectHistory& h = history(ev.objectIndex);
      predFullOnly(h.lastChainOp);
      // Lazy: a trylock observes the whole lock history, so it is ordered
      // against every mutex op since (and including) the previous trylock.
      for (const std::int32_t p : h.mutexOpsSinceTryLock) predLazyOnly(p);
      predLazyOnly(h.lastTryLock);
      if (ev.aux == 1) predSyncOnly(h.lastReleaseEvent);
      break;
    }
    case OpKind::Wait:
    case OpKind::Reacquire: {
      ObjectHistory& cv = history(ev.objectIndex);
      predConflict(cv.lastChainOp);  // condvar chain
      ObjectHistory& m = history(ev.mutexIndex);
      predFullOnly(m.lastChainOp);
      predLazyOnly(m.lastTryLock);
      if (ev.kind == OpKind::Reacquire) predSyncOnly(m.lastReleaseEvent);
      break;
    }
    case OpKind::Signal:
    case OpKind::Broadcast: {
      ObjectHistory& h = history(ev.objectIndex);
      if (h.lastChainOp >= 0) predConflict(h.lastChainOp);
      break;
    }
    case OpKind::SemAcquire:
    case OpKind::SemRelease: {
      ObjectHistory& h = history(ev.objectIndex);
      if (h.lastChainOp >= 0) predAll(h.lastChainOp);  // semaphores sync
      break;
    }
    case OpKind::Spawn:
    case OpKind::Join: {
      ObjectHistory& h = history(ev.objectIndex);
      if (h.lastChainOp >= 0) predAll(h.lastChainOp);  // fork/join sync
      break;
    }
    case OpKind::Yield:
    case OpKind::Fence:  // a drain point orders nothing across threads
      break;
  }

  sortUnique(scratchFull_);
  if (!lazySameAsFull) sortUnique(scratchLazy_);
  if (!syncSameAsFull) sortUnique(scratchSync_);
  const std::vector<std::int32_t>& lazyPreds =
      lazySameAsFull ? scratchFull_ : scratchLazy_;
  const std::vector<std::int32_t>& syncPreds =
      syncSameAsFull ? scratchFull_ : scratchSync_;

  // Clocks: one arena row per relation, built from the thread's running
  // clock (its previous event's row) and the direct predecessors' rows.
  // When the pred sets coincide the three builds fuse into a single pass
  // over one list (one loop, one set of index loads, three joins per pred).
  const std::int32_t copyFrom = ev.indexInThread > 0 ? prevEvent : -1;
  const auto tick = ev.indexInThread + 1;
  if (lazySameAsFull && syncSameAsFull) {
    std::uint32_t* syncRow = startClockRow(syncClocks_, copyFrom);
    std::uint32_t* fullRow = startClockRow(fullClocks_, copyFrom);
    std::uint32_t* lazyRow = startClockRow(lazyClocks_, copyFrom);
    const std::uint32_t stride = syncClocks_.stride();
    for (const std::int32_t p : scratchFull_) {
      const auto row = static_cast<std::size_t>(p);
      joinClockSpans(syncRow, syncClocks_.row(row), stride);
      joinClockSpans(fullRow, fullClocks_.row(row), stride);
      joinClockSpans(lazyRow, lazyClocks_.row(row), stride);
    }
    syncRow[t] = fullRow[t] = lazyRow[t] = tick;
  } else if (lazySameAsFull) {
    buildClockRow(syncClocks_, copyFrom, syncPreds, t, tick);
    std::uint32_t* fullRow = startClockRow(fullClocks_, copyFrom);
    std::uint32_t* lazyRow = startClockRow(lazyClocks_, copyFrom);
    const std::uint32_t stride = fullClocks_.stride();
    for (const std::int32_t p : scratchFull_) {
      const auto row = static_cast<std::size_t>(p);
      joinClockSpans(fullRow, fullClocks_.row(row), stride);
      joinClockSpans(lazyRow, lazyClocks_.row(row), stride);
    }
    fullRow[t] = lazyRow[t] = tick;
  } else {
    buildClockRow(syncClocks_, copyFrom, syncPreds, t, tick);
    buildClockRow(fullClocks_, copyFrom, scratchFull_, t, tick);
    buildClockRow(lazyClocks_, copyFrom, lazyPreds, t, tick);
  }

  // Data-race detection uses the sync clock, against pre-update histories.
  if (options_.detectRaces &&
      (ev.kind == OpKind::Read || ev.kind == OpKind::Write || ev.kind == OpKind::Rmw)) {
    checkRace(exec, ev, index);
  }

  // Causal hashes: label mixed with the multiset of direct predecessors'
  // hashes under each relation.
  {
    support::MultisetHash acc;
    for (const std::int32_t p : scratchFull_) {
      acc.add(fullHash_[static_cast<std::size_t>(p)]);
    }
    fullHash_.push_back(ev.labelHash().mixedWith(acc.digest()));
    prefixFull_.add(fullHash_.back());
  }
  {
    support::MultisetHash acc;
    for (const std::int32_t p : lazyPreds) {
      acc.add(lazyHash_[static_cast<std::size_t>(p)]);
    }
    lazyHash_.push_back(
        ev.labelHash().mixedWith(acc.digest()).mixedWith(support::hash128(0x1a2bULL)));
    prefixLazy_.add(lazyHash_.back());
  }
  {
    // Value-equivalence contribution: the label alone — no causal mixing;
    // forgetting who produced an observed value is the whole coarsening —
    // plus, for reads and RMWs, the value observed (the variable's
    // pre-value; Execution commits an RMW's post-value before recording, so
    // the recorder's own mirror is consulted, not the execution's).
    support::Hash128 vh = ev.labelHash().mixedWith(support::hash128(kValueDomain));
    if (ev.kind == OpKind::Read) {
      // The event's own valueHash is the value the read observed — under
      // SC the variable's pre-value (identical to the mirror consulted for
      // RMWs), under TSO possibly a value forwarded from the reader's own
      // store buffer, which the memory mirror cannot know.
      vh = vh.mixedWith(observedValueHash(ev.valueHash));
    } else if (ev.kind == OpKind::Rmw) {
      vh = vh.mixedWith(observedValueHash(history(ev.objectIndex).valueHash));
    }
    prefixValue_.add(vh);
  }

  if (options_.keepPredecessors) {
    if (preds_.size() <= eventCount_) preds_.resize(eventCount_ + 1);
    EventPreds& p = preds_[eventCount_];
    p.full.assign(scratchFull_.begin(), scratchFull_.end());
    p.lazy.assign(lazyPreds.begin(), lazyPreds.end());
    p.sync.assign(syncPreds.begin(), syncPreds.end());
  }

  // History updates (after race checks and hashes). Each touchHistory call
  // undo-logs the history's pre-image on its first update since the last
  // checkpoint — and must precede taking the reference it guards (the
  // history() call inside may grow objects_).
  switch (ev.kind) {
    case OpKind::Read: {
      touchHistory(ev.objectIndex);
      ObjectHistory& h = history(ev.objectIndex);
      h.readersSinceWrite.push_back(index);
      if (options_.detectRaces) {
        bool found = false;
        for (auto& [tid, evIdx] : h.lastReadPerThread) {
          if (tid == t) {
            evIdx = index;
            found = true;
            break;
          }
        }
        if (!found) h.lastReadPerThread.emplace_back(t, index);
      }
      break;
    }
    case OpKind::Write:
    case OpKind::Rmw:
    case OpKind::Flush: {
      if (ev.kind == OpKind::Write && ev.aux == 1) {
        // Buffered store: memory (and therefore the mirror, the reader
        // set, and the value-state accumulator) is untouched until the
        // matching Flush below commits it.
        break;
      }
      touchHistory(ev.objectIndex);
      ObjectHistory& h = history(ev.objectIndex);
      h.lastWrite = index;
      h.readersSinceWrite.clear();
      // Final-visible effect: swap the variable's (uid, value) pair in the
      // value-state accumulator for the committed post-value. Overwritten
      // intermediate values leave no trace — that is where value
      // equivalence prunes beyond the lazy HBR.
      const std::uint64_t committed = ev.valueHash;
      if (committed != h.valueHash) {
        valueState_.remove(support::hash128(h.uid, h.valueHash));
        valueState_.add(support::hash128(h.uid, committed));
        h.valueHash = committed;
      }
      if (options_.detectRaces) {
        h.lastWriteEvent = index;
        h.lastReadPerThread.clear();
      }
      break;
    }
    case OpKind::Lock: {
      touchHistory(ev.objectIndex);
      ObjectHistory& h = history(ev.objectIndex);
      h.lastChainOp = index;
      h.chain.push_back(index);
      h.mutexOpsSinceTryLock.push_back(index);
      break;
    }
    case OpKind::Unlock: {
      touchHistory(ev.objectIndex);
      ObjectHistory& h = history(ev.objectIndex);
      h.lastChainOp = index;
      h.chain.push_back(index);
      h.mutexOpsSinceTryLock.push_back(index);
      h.lastReleaseEvent = index;
      break;
    }
    case OpKind::TryLock: {
      touchHistory(ev.objectIndex);
      ObjectHistory& h = history(ev.objectIndex);
      h.lastChainOp = index;
      h.chain.push_back(index);
      h.lastTryLock = index;
      h.mutexOpsSinceTryLock.clear();
      break;
    }
    case OpKind::Wait: {
      touchHistory(ev.objectIndex);
      touchHistory(ev.mutexIndex);
      ObjectHistory& cv = history(ev.objectIndex);
      cv.lastChainOp = index;
      cv.chain.push_back(index);
      // The waiter parks at the back of the condvar's FIFO queue.
      valueState_.remove(cvQueueContribution(cv));
      cv.cvQueue.push_back(ev.threadUid);
      valueState_.add(cvQueueContribution(cv));
      ObjectHistory& m = history(ev.mutexIndex);
      m.lastChainOp = index;
      m.chain.push_back(index);
      m.mutexOpsSinceTryLock.push_back(index);
      m.lastReleaseEvent = index;  // wait releases the mutex
      break;
    }
    case OpKind::Reacquire: {
      touchHistory(ev.objectIndex);
      touchHistory(ev.mutexIndex);
      ObjectHistory& cv = history(ev.objectIndex);
      cv.lastChainOp = index;
      cv.chain.push_back(index);
      ObjectHistory& m = history(ev.mutexIndex);
      m.lastChainOp = index;
      m.chain.push_back(index);
      m.mutexOpsSinceTryLock.push_back(index);
      break;
    }
    case OpKind::Signal:
    case OpKind::Broadcast:
    case OpKind::SemAcquire:
    case OpKind::SemRelease:
    case OpKind::Spawn:
    case OpKind::Join: {
      touchHistory(ev.objectIndex);
      ObjectHistory& h = history(ev.objectIndex);
      h.lastChainOp = index;
      h.chain.push_back(index);
      // Signal wakes the queue's front (FIFO); broadcast drains it. Mirror
      // the runtime's queue so the value fingerprint tracks wake order.
      if (ev.kind == OpKind::Signal && !h.cvQueue.empty()) {
        valueState_.remove(cvQueueContribution(h));
        h.cvQueue.erase(h.cvQueue.begin());
        valueState_.add(cvQueueContribution(h));
      } else if (ev.kind == OpKind::Broadcast && !h.cvQueue.empty()) {
        valueState_.remove(cvQueueContribution(h));
        h.cvQueue.clear();
        valueState_.add(cvQueueContribution(h));
      }
      break;
    }
    case OpKind::Yield:
    case OpKind::Fence:
      break;
  }

  threadLastEvent_[tIdx] = index;
  ++eventCount_;
}

void TraceRecorder::checkRace(const runtime::Execution& exec, const EventRecord& ev,
                              std::int32_t index) {
  ObjectHistory& h = history(ev.objectIndex);
  const ClockView myClock = syncClocks_.view(static_cast<std::size_t>(index));
  auto happensBefore = [&](std::int32_t earlier) {
    const int et = records_[static_cast<std::size_t>(earlier)].threadIndex;
    return syncClocks_.view(static_cast<std::size_t>(earlier)).get(et) <=
           myClock.get(et);
  };
  auto report = [&](std::int32_t earlier) {
    for (const RaceReport& r : races_) {
      if (r.objectUid == ev.objectUid) return;  // one report per object per run
    }
    RaceReport race;
    race.objectUid = ev.objectUid;
    race.objectName = exec.object(ev.objectIndex).name;
    race.firstEvent = earlier;
    race.secondEvent = index;
    races_.push_back(std::move(race));
  };
  // Any access races with a sync-concurrent earlier write.
  if (h.lastWriteEvent >= 0 && !happensBefore(h.lastWriteEvent)) {
    report(h.lastWriteEvent);
    return;
  }
  // A write additionally races with sync-concurrent earlier reads.
  if (ev.kind != OpKind::Read) {
    for (const auto& [tid, readEvent] : h.lastReadPerThread) {
      if (tid != ev.threadIndex && !happensBefore(readEvent)) {
        report(readEvent);
        return;
      }
    }
  }
}

void TraceRecorder::onExecutionEnd(const runtime::Execution&, runtime::Outcome) {}

support::Hash128 TraceRecorder::fingerprint(Relation r) const {
  switch (r) {
    case Relation::Full: return prefixFull_.digest();
    case Relation::Lazy: return prefixLazy_.digest();
    case Relation::Value:
      // Observations plus visible state: equal digests mean the same
      // operations ran, every read saw the same value, and the variables
      // and condvar queues stand identically — so the continuation
      // subtrees coincide, the property value-class pruning keys on.
      return prefixValue_.digest().mixedWith(valueState_.digest());
    case Relation::Sync: break;
  }
  LAZYHB_UNREACHABLE("no fingerprint is maintained for the sync relation");
}

const runtime::EventRecord& TraceRecorder::eventRecord(std::int32_t index) const {
  LAZYHB_CHECK(index >= 0 && static_cast<std::size_t>(index) < eventCount_);
  return records_[static_cast<std::size_t>(index)];
}

ClockView TraceRecorder::eventClock(Relation r, std::int32_t index) const {
  LAZYHB_CHECK(index >= 0 && static_cast<std::size_t>(index) < eventCount_);
  return arena(r).view(static_cast<std::size_t>(index));
}

support::Hash128 TraceRecorder::eventHash(Relation r, std::int32_t index) const {
  LAZYHB_CHECK(index >= 0 && static_cast<std::size_t>(index) < eventCount_);
  switch (r) {
    case Relation::Full: return fullHash_[static_cast<std::size_t>(index)];
    case Relation::Lazy: return lazyHash_[static_cast<std::size_t>(index)];
    case Relation::Sync:
    case Relation::Value:  // value contributions are not causal hashes
      break;
  }
  LAZYHB_UNREACHABLE("no per-event hash is maintained for this relation");
}

const std::vector<std::int32_t>& TraceRecorder::eventPredecessors(
    Relation r, std::int32_t index) const {
  LAZYHB_CHECK(options_.keepPredecessors);
  LAZYHB_CHECK(index >= 0 && static_cast<std::size_t>(index) < eventCount_);
  const EventPreds& p = preds_[static_cast<std::size_t>(index)];
  switch (r) {
    case Relation::Sync: return p.sync;
    case Relation::Full: return p.full;
    case Relation::Lazy: return p.lazy;
    case Relation::Value: break;  // no edge structure under the equivalence
  }
  LAZYHB_UNREACHABLE("bad relation");
}

ClockView TraceRecorder::threadClock(Relation r, int tid) const {
  const auto i = static_cast<std::size_t>(tid);
  if (i >= threadCount_ || threadLastEvent_[i] < 0) return ClockView{};
  return arena(r).view(static_cast<std::size_t>(threadLastEvent_[i]));
}

void TraceRecorder::collectConflicts(const runtime::Execution& exec, int tid,
                                     std::vector<std::int32_t>& out) const {
  out.clear();
  const runtime::PendingOp& op = exec.pending(tid);
  if (!op.valid) return;
  auto push = [&](std::int32_t p) {
    if (p >= 0) out.push_back(p);
  };
  auto chained = [&](std::int32_t objectIndex) {
    if (objectIndex >= 0 && static_cast<std::size_t>(objectIndex) < objectCount_) {
      push(objects_[static_cast<std::size_t>(objectIndex)].lastChainOp);
    }
  };
  switch (op.kind) {
    case OpKind::Read: {
      if (op.object >= 0 && static_cast<std::size_t>(op.object) < objectCount_) {
        push(objects_[static_cast<std::size_t>(op.object)].lastWrite);
      }
      break;
    }
    case OpKind::Write:
    case OpKind::Rmw:
    case OpKind::Flush: {
      // A pending Write may turn out to buffer under TSO (no memory
      // conflicts until its Flush); treating it as a memory write here is
      // conservative — DPOR explores at most extra interleavings, never
      // fewer. A Flush pick is always a memory write of the buffer head.
      if (op.object >= 0 && static_cast<std::size_t>(op.object) < objectCount_) {
        const ObjectHistory& h = objects_[static_cast<std::size_t>(op.object)];
        push(h.lastWrite);
        for (const std::int32_t r : h.readersSinceWrite) push(r);
      }
      break;
    }
    case OpKind::Lock:
    case OpKind::Unlock:
    case OpKind::TryLock:
      chained(op.object);
      break;
    case OpKind::Wait:
    case OpKind::Reacquire:
      chained(op.object);       // condvar chain
      chained(op.mutexObject);  // mutex chain
      break;
    case OpKind::Signal:
    case OpKind::Broadcast:
    case OpKind::SemAcquire:
    case OpKind::SemRelease:
      chained(op.object);
      break;
    case OpKind::Spawn:
    case OpKind::Join:
    case OpKind::Yield:
    case OpKind::Fence:
      break;  // not reorderable in a way DPOR can exploit
  }
  sortUnique(out);
}

const std::vector<std::int32_t>& TraceRecorder::chainEvents(std::int32_t objectIndex) const {
  static const std::vector<std::int32_t> kEmpty;
  if (objectIndex < 0 || static_cast<std::size_t>(objectIndex) >= objectCount_) {
    return kEmpty;
  }
  return objects_[static_cast<std::size_t>(objectIndex)].chain;
}

std::string TraceRecorder::objectName(runtime::Uid uid) const {
  const auto it = names_.find(uid);
  return it != names_.end() ? it->second : std::string("obj-") + std::to_string(uid % 10000);
}

}  // namespace lazyhb::trace
