#include "trace/trace_recorder.hpp"

#include <algorithm>
#include <cstring>

#include "support/diagnostics.hpp"

namespace lazyhb::trace {

using runtime::EventRecord;
using runtime::ObjectKind;
using runtime::OpKind;

const char* relationName(Relation r) noexcept {
  switch (r) {
    case Relation::Sync: return "sync";
    case Relation::Full: return "full";
    case Relation::Lazy: return "lazy";
  }
  return "?";
}

TraceRecorder::TraceRecorder() : TraceRecorder(Options{}) {}

TraceRecorder::TraceRecorder(Options options) : options_(options) {
  scratchFull_.reserve(16);
  scratchLazy_.reserve(16);
  scratchSync_.reserve(16);
}

void TraceRecorder::onExecutionStart(const runtime::Execution&) {
  eventCount_ = 0;
  objectCount_ = 0;
  threadCount_ = 0;
  fullHash_.clear();
  lazyHash_.clear();
  records_.clear();
  syncClocks_.reset();
  fullClocks_.reset();
  lazyClocks_.reset();
  prefixFull_ = support::MultisetHash{};
  prefixLazy_ = support::MultisetHash{};
  races_.clear();
}

void TraceRecorder::onObjectRegistered(const runtime::Execution&, std::int32_t index,
                                       runtime::Uid uid, runtime::ObjectKind kind,
                                       const std::string& name) {
  ObjectHistory& h = history(index);
  h.reset(uid, kind);
  if (!name.empty()) {
    names_.emplace(uid, name);  // keeps the first name seen; stable across runs
  }
}

TraceRecorder::ObjectHistory& TraceRecorder::history(std::int32_t objectIndex) {
  const auto i = static_cast<std::size_t>(objectIndex);
  if (i >= objects_.size()) {
    objects_.resize(i + 1);
  }
  objectCount_ = std::max(objectCount_, i + 1);
  return objects_[i];
}

const ClockArena& TraceRecorder::arena(Relation r) const noexcept {
  switch (r) {
    case Relation::Sync: return syncClocks_;
    case Relation::Full: return fullClocks_;
    case Relation::Lazy: return lazyClocks_;
  }
  LAZYHB_UNREACHABLE("bad relation");
}

namespace {

void sortUnique(std::vector<std::int32_t>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

/// Build one event's clock row: copy the thread's running clock (its
/// previous event's row, or zeros for a thread's first event), join the
/// direct predecessors, then tick the thread's own component. All span
/// loops are branch-free over the arena's fixed stride.
void buildClockRow(ClockArena& arena, std::int32_t copyFrom,
                   const std::vector<std::int32_t>& preds, int tid,
                   std::uint32_t tick) {
  std::uint32_t* row = arena.appendRow();
  const std::uint32_t stride = arena.stride();
  const std::size_t bytes = stride * sizeof(std::uint32_t);
  if (copyFrom >= 0) {
    std::memcpy(row, arena.row(static_cast<std::size_t>(copyFrom)), bytes);
  } else {
    std::memset(row, 0, bytes);
  }
  for (const std::int32_t p : preds) {
    joinClockSpans(row, arena.row(static_cast<std::size_t>(p)), stride);
  }
  row[tid] = tick;
}

}  // namespace

void TraceRecorder::onEvent(const runtime::Execution& exec, const EventRecord& ev) {
  const int t = ev.threadIndex;
  const auto tIdx = static_cast<std::size_t>(t);
  if (tIdx >= threadCount_) {
    if (threadLastEvent_.size() <= tIdx) {
      threadLastEvent_.resize(tIdx + 1, -1);
    }
    for (std::size_t i = threadCount_; i <= tIdx; ++i) threadLastEvent_[i] = -1;
    threadCount_ = tIdx + 1;
  }
  if (static_cast<std::uint32_t>(t) >= syncClocks_.stride()) {
    // Thread capacity exceeded: widen all three matrices together (they
    // always share a stride). Rounded up so repeated spawns re-stride once.
    const std::uint32_t stride = (static_cast<std::uint32_t>(t) + 8u) & ~7u;
    syncClocks_.widen(stride);
    fullClocks_.widen(stride);
    lazyClocks_.widen(stride);
  }

  const auto index = static_cast<std::int32_t>(eventCount_);
  records_.push_back(ev);

  scratchFull_.clear();
  scratchLazy_.clear();
  scratchSync_.clear();
  auto predAll = [&](std::int32_t p) {
    if (p >= 0) {
      scratchFull_.push_back(p);
      scratchLazy_.push_back(p);
      scratchSync_.push_back(p);
    }
  };
  auto predConflict = [&](std::int32_t p) {  // Full+Lazy (variable-style)
    if (p >= 0) {
      scratchFull_.push_back(p);
      scratchLazy_.push_back(p);
    }
  };

  // Program order: the previous event of this thread. The clocks encode it
  // implicitly (the running clock is copied below); the hash needs the index.
  const std::int32_t prevEvent = threadLastEvent_[tIdx];
  if (ev.indexInThread > 0) {
    predAll(prevEvent);
  }

  // Special predecessors participate in every relation.
  predAll(ev.spawnPredecessor);
  predAll(ev.signalPredecessor);
  predAll(ev.joinPredecessor);

  // Object-conflict edges per kind.
  switch (ev.kind) {
    case OpKind::Read: {
      ObjectHistory& h = history(ev.objectIndex);
      predConflict(h.lastWrite);
      break;
    }
    case OpKind::Write:
    case OpKind::Rmw: {
      ObjectHistory& h = history(ev.objectIndex);
      predConflict(h.lastWrite);
      for (const std::int32_t r : h.readersSinceWrite) predConflict(r);
      break;
    }
    case OpKind::Lock:
    case OpKind::Unlock: {
      ObjectHistory& h = history(ev.objectIndex);
      if (h.lastChainOp >= 0) scratchFull_.push_back(h.lastChainOp);
      if (h.lastTryLock >= 0) scratchLazy_.push_back(h.lastTryLock);
      if (ev.kind == OpKind::Lock && h.lastReleaseEvent >= 0) {
        scratchSync_.push_back(h.lastReleaseEvent);
      }
      break;
    }
    case OpKind::TryLock: {
      ObjectHistory& h = history(ev.objectIndex);
      if (h.lastChainOp >= 0) scratchFull_.push_back(h.lastChainOp);
      // Lazy: a trylock observes the whole lock history, so it is ordered
      // against every mutex op since (and including) the previous trylock.
      for (const std::int32_t p : h.mutexOpsSinceTryLock) scratchLazy_.push_back(p);
      if (h.lastTryLock >= 0) scratchLazy_.push_back(h.lastTryLock);
      if (ev.aux == 1 && h.lastReleaseEvent >= 0) {
        scratchSync_.push_back(h.lastReleaseEvent);
      }
      break;
    }
    case OpKind::Wait:
    case OpKind::Reacquire: {
      ObjectHistory& cv = history(ev.objectIndex);
      if (cv.lastChainOp >= 0) predConflict(cv.lastChainOp);  // condvar chain
      ObjectHistory& m = history(ev.mutexIndex);
      if (m.lastChainOp >= 0) scratchFull_.push_back(m.lastChainOp);
      if (m.lastTryLock >= 0) scratchLazy_.push_back(m.lastTryLock);
      if (ev.kind == OpKind::Reacquire && m.lastReleaseEvent >= 0) {
        scratchSync_.push_back(m.lastReleaseEvent);
      }
      break;
    }
    case OpKind::Signal:
    case OpKind::Broadcast: {
      ObjectHistory& h = history(ev.objectIndex);
      if (h.lastChainOp >= 0) predConflict(h.lastChainOp);
      break;
    }
    case OpKind::SemAcquire:
    case OpKind::SemRelease: {
      ObjectHistory& h = history(ev.objectIndex);
      if (h.lastChainOp >= 0) predAll(h.lastChainOp);  // semaphores sync
      break;
    }
    case OpKind::Spawn:
    case OpKind::Join: {
      ObjectHistory& h = history(ev.objectIndex);
      if (h.lastChainOp >= 0) predAll(h.lastChainOp);  // fork/join sync
      break;
    }
    case OpKind::Yield:
      break;
  }

  sortUnique(scratchFull_);
  sortUnique(scratchLazy_);
  sortUnique(scratchSync_);

  // Clocks: one arena row per relation, built from the thread's running
  // clock (its previous event's row) and the direct predecessors' rows.
  const std::int32_t copyFrom = ev.indexInThread > 0 ? prevEvent : -1;
  const auto tick = ev.indexInThread + 1;
  buildClockRow(syncClocks_, copyFrom, scratchSync_, t, tick);
  buildClockRow(fullClocks_, copyFrom, scratchFull_, t, tick);
  buildClockRow(lazyClocks_, copyFrom, scratchLazy_, t, tick);

  // Data-race detection uses the sync clock, against pre-update histories.
  if (options_.detectRaces &&
      (ev.kind == OpKind::Read || ev.kind == OpKind::Write || ev.kind == OpKind::Rmw)) {
    checkRace(exec, ev, index);
  }

  // Causal hashes: label mixed with the multiset of direct predecessors'
  // hashes under each relation.
  {
    support::MultisetHash acc;
    for (const std::int32_t p : scratchFull_) {
      acc.add(fullHash_[static_cast<std::size_t>(p)]);
    }
    fullHash_.push_back(ev.labelHash().mixedWith(acc.digest()));
    prefixFull_.add(fullHash_.back());
  }
  {
    support::MultisetHash acc;
    for (const std::int32_t p : scratchLazy_) {
      acc.add(lazyHash_[static_cast<std::size_t>(p)]);
    }
    lazyHash_.push_back(
        ev.labelHash().mixedWith(acc.digest()).mixedWith(support::hash128(0x1a2bULL)));
    prefixLazy_.add(lazyHash_.back());
  }

  if (options_.keepPredecessors) {
    if (preds_.size() <= eventCount_) preds_.resize(eventCount_ + 1);
    EventPreds& p = preds_[eventCount_];
    p.full.assign(scratchFull_.begin(), scratchFull_.end());
    p.lazy.assign(scratchLazy_.begin(), scratchLazy_.end());
    p.sync.assign(scratchSync_.begin(), scratchSync_.end());
  }

  // History updates (after race checks and hashes).
  switch (ev.kind) {
    case OpKind::Read: {
      ObjectHistory& h = history(ev.objectIndex);
      h.readersSinceWrite.push_back(index);
      if (options_.detectRaces) {
        bool found = false;
        for (auto& [tid, evIdx] : h.lastReadPerThread) {
          if (tid == t) {
            evIdx = index;
            found = true;
            break;
          }
        }
        if (!found) h.lastReadPerThread.emplace_back(t, index);
      }
      break;
    }
    case OpKind::Write:
    case OpKind::Rmw: {
      ObjectHistory& h = history(ev.objectIndex);
      h.lastWrite = index;
      h.readersSinceWrite.clear();
      if (options_.detectRaces) {
        h.lastWriteEvent = index;
        h.lastReadPerThread.clear();
      }
      break;
    }
    case OpKind::Lock: {
      ObjectHistory& h = history(ev.objectIndex);
      h.lastChainOp = index;
      h.chain.push_back(index);
      h.mutexOpsSinceTryLock.push_back(index);
      break;
    }
    case OpKind::Unlock: {
      ObjectHistory& h = history(ev.objectIndex);
      h.lastChainOp = index;
      h.chain.push_back(index);
      h.mutexOpsSinceTryLock.push_back(index);
      h.lastReleaseEvent = index;
      break;
    }
    case OpKind::TryLock: {
      ObjectHistory& h = history(ev.objectIndex);
      h.lastChainOp = index;
      h.chain.push_back(index);
      h.lastTryLock = index;
      h.mutexOpsSinceTryLock.clear();
      break;
    }
    case OpKind::Wait: {
      ObjectHistory& cv = history(ev.objectIndex);
      cv.lastChainOp = index;
      cv.chain.push_back(index);
      ObjectHistory& m = history(ev.mutexIndex);
      m.lastChainOp = index;
      m.chain.push_back(index);
      m.mutexOpsSinceTryLock.push_back(index);
      m.lastReleaseEvent = index;  // wait releases the mutex
      break;
    }
    case OpKind::Reacquire: {
      ObjectHistory& cv = history(ev.objectIndex);
      cv.lastChainOp = index;
      cv.chain.push_back(index);
      ObjectHistory& m = history(ev.mutexIndex);
      m.lastChainOp = index;
      m.chain.push_back(index);
      m.mutexOpsSinceTryLock.push_back(index);
      break;
    }
    case OpKind::Signal:
    case OpKind::Broadcast:
    case OpKind::SemAcquire:
    case OpKind::SemRelease:
    case OpKind::Spawn:
    case OpKind::Join: {
      ObjectHistory& h = history(ev.objectIndex);
      h.lastChainOp = index;
      h.chain.push_back(index);
      break;
    }
    case OpKind::Yield:
      break;
  }

  threadLastEvent_[tIdx] = index;
  ++eventCount_;
}

void TraceRecorder::checkRace(const runtime::Execution& exec, const EventRecord& ev,
                              std::int32_t index) {
  ObjectHistory& h = history(ev.objectIndex);
  const ClockView myClock = syncClocks_.view(static_cast<std::size_t>(index));
  auto happensBefore = [&](std::int32_t earlier) {
    const int et = records_[static_cast<std::size_t>(earlier)].threadIndex;
    return syncClocks_.view(static_cast<std::size_t>(earlier)).get(et) <=
           myClock.get(et);
  };
  auto report = [&](std::int32_t earlier) {
    for (const RaceReport& r : races_) {
      if (r.objectUid == ev.objectUid) return;  // one report per object per run
    }
    RaceReport race;
    race.objectUid = ev.objectUid;
    race.objectName = exec.object(ev.objectIndex).name;
    race.firstEvent = earlier;
    race.secondEvent = index;
    races_.push_back(std::move(race));
  };
  // Any access races with a sync-concurrent earlier write.
  if (h.lastWriteEvent >= 0 && !happensBefore(h.lastWriteEvent)) {
    report(h.lastWriteEvent);
    return;
  }
  // A write additionally races with sync-concurrent earlier reads.
  if (ev.kind != OpKind::Read) {
    for (const auto& [tid, readEvent] : h.lastReadPerThread) {
      if (tid != ev.threadIndex && !happensBefore(readEvent)) {
        report(readEvent);
        return;
      }
    }
  }
}

void TraceRecorder::onExecutionEnd(const runtime::Execution&, runtime::Outcome) {}

support::Hash128 TraceRecorder::fingerprint(Relation r) const {
  switch (r) {
    case Relation::Full: return prefixFull_.digest();
    case Relation::Lazy: return prefixLazy_.digest();
    case Relation::Sync: break;
  }
  LAZYHB_UNREACHABLE("no fingerprint is maintained for the sync relation");
}

const runtime::EventRecord& TraceRecorder::eventRecord(std::int32_t index) const {
  LAZYHB_CHECK(index >= 0 && static_cast<std::size_t>(index) < eventCount_);
  return records_[static_cast<std::size_t>(index)];
}

ClockView TraceRecorder::eventClock(Relation r, std::int32_t index) const {
  LAZYHB_CHECK(index >= 0 && static_cast<std::size_t>(index) < eventCount_);
  return arena(r).view(static_cast<std::size_t>(index));
}

support::Hash128 TraceRecorder::eventHash(Relation r, std::int32_t index) const {
  LAZYHB_CHECK(index >= 0 && static_cast<std::size_t>(index) < eventCount_);
  switch (r) {
    case Relation::Full: return fullHash_[static_cast<std::size_t>(index)];
    case Relation::Lazy: return lazyHash_[static_cast<std::size_t>(index)];
    case Relation::Sync: break;
  }
  LAZYHB_UNREACHABLE("no hash is maintained for the sync relation");
}

const std::vector<std::int32_t>& TraceRecorder::eventPredecessors(
    Relation r, std::int32_t index) const {
  LAZYHB_CHECK(options_.keepPredecessors);
  LAZYHB_CHECK(index >= 0 && static_cast<std::size_t>(index) < eventCount_);
  const EventPreds& p = preds_[static_cast<std::size_t>(index)];
  switch (r) {
    case Relation::Sync: return p.sync;
    case Relation::Full: return p.full;
    case Relation::Lazy: return p.lazy;
  }
  LAZYHB_UNREACHABLE("bad relation");
}

ClockView TraceRecorder::threadClock(Relation r, int tid) const {
  const auto i = static_cast<std::size_t>(tid);
  if (i >= threadCount_ || threadLastEvent_[i] < 0) return ClockView{};
  return arena(r).view(static_cast<std::size_t>(threadLastEvent_[i]));
}

void TraceRecorder::collectConflicts(const runtime::Execution& exec, int tid,
                                     std::vector<std::int32_t>& out) const {
  out.clear();
  const runtime::PendingOp& op = exec.pending(tid);
  if (!op.valid) return;
  auto push = [&](std::int32_t p) {
    if (p >= 0) out.push_back(p);
  };
  auto chained = [&](std::int32_t objectIndex) {
    if (objectIndex >= 0 && static_cast<std::size_t>(objectIndex) < objectCount_) {
      push(objects_[static_cast<std::size_t>(objectIndex)].lastChainOp);
    }
  };
  switch (op.kind) {
    case OpKind::Read: {
      if (op.object >= 0 && static_cast<std::size_t>(op.object) < objectCount_) {
        push(objects_[static_cast<std::size_t>(op.object)].lastWrite);
      }
      break;
    }
    case OpKind::Write:
    case OpKind::Rmw: {
      if (op.object >= 0 && static_cast<std::size_t>(op.object) < objectCount_) {
        const ObjectHistory& h = objects_[static_cast<std::size_t>(op.object)];
        push(h.lastWrite);
        for (const std::int32_t r : h.readersSinceWrite) push(r);
      }
      break;
    }
    case OpKind::Lock:
    case OpKind::Unlock:
    case OpKind::TryLock:
      chained(op.object);
      break;
    case OpKind::Wait:
    case OpKind::Reacquire:
      chained(op.object);       // condvar chain
      chained(op.mutexObject);  // mutex chain
      break;
    case OpKind::Signal:
    case OpKind::Broadcast:
    case OpKind::SemAcquire:
    case OpKind::SemRelease:
      chained(op.object);
      break;
    case OpKind::Spawn:
    case OpKind::Join:
    case OpKind::Yield:
      break;  // not reorderable in a way DPOR can exploit
  }
  sortUnique(out);
}

const std::vector<std::int32_t>& TraceRecorder::chainEvents(std::int32_t objectIndex) const {
  static const std::vector<std::int32_t> kEmpty;
  if (objectIndex < 0 || static_cast<std::size_t>(objectIndex) >= objectCount_) {
    return kEmpty;
  }
  return objects_[static_cast<std::size_t>(objectIndex)].chain;
}

std::string TraceRecorder::objectName(runtime::Uid uid) const {
  const auto it = names_.find(uid);
  return it != names_.end() ? it->second : std::string("obj-") + std::to_string(uid % 10000);
}

}  // namespace lazyhb::trace
