// lazyhb/trace/trace_recorder.hpp
//
// Online computation of the three happens-before relations of one execution:
//
//   Sync  — program order + spawn/join + mutex release->acquire + condvar
//           signal->wakeup. Used by the data-race detector.
//   Full  — the paper's HBR: Sync edges plus conflict edges between events
//           that access the same variable/mutex with at least one
//           modification (every mutex/condvar/semaphore op is treated as a
//           modification of its object).
//   Lazy  — the paper's lazy HBR: Full minus the inter-thread edges induced
//           by blocking lock/unlock (and condvar wait's hidden unlock/lock).
//           TryLock edges are retained: a trylock observes the mutex state,
//           so erasing them would break Theorem 2.2 (see DESIGN.md).
//
// For the Full and Lazy relations the recorder maintains an incremental
// canonical fingerprint of the executed *prefix*: each event's causal hash
// mixes its schedule-invariant label with the hashes of its direct
// predecessors under the relation, and the prefix fingerprint is an
// order-independent multiset combine of all event hashes. Two prefixes have
// equal fingerprints iff (modulo 128-bit collisions) they are linearizations
// of the same labelled partial order — this is what HBR caching and lazy
// HBR caching key on, and what the terminal-HBR counts of Figures 2 and 3
// de-duplicate by.
//
// Storage is structure-of-arrays, sized for the per-event loop that runs
// once per committed event of every explored schedule:
//   hot  — per-event causal hashes (one flat array per relation) and the
//          per-relation clock rows, which live in flat ClockArena matrices
//          (trace/clock_arena.hpp); a thread's running clock is simply its
//          last event's row, so no per-thread clock storage exists at all.
//   cold — EventRecords (consulted by DPOR's race analysis and the race
//          reports, not by the fingerprint loop) and per-event predecessor
//          lists, the latter populated only under keepPredecessors.
// Clock accessors deal in ClockView spans; the owning VectorClock class
// remains for the Foata/graph/test layers.
//
// The recorder is an ExecutionObserver and is reset on every
// onExecutionStart, so one instance can monitor millions of executions with
// no steady-state allocation: every array, arena, object history and scratch
// buffer keeps its capacity across executions.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/execution.hpp"
#include "runtime/operation.hpp"
#include "support/hash.hpp"
#include "trace/clock_arena.hpp"
#include "trace/vector_clock.hpp"

namespace lazyhb::trace {

/// Which happens-before relation to consult.
enum class Relation : std::uint8_t { Sync, Full, Lazy };

[[nodiscard]] const char* relationName(Relation r) noexcept;

/// A detected data race: two sync-concurrent accesses to one variable with
/// at least one write.
struct RaceReport {
  runtime::Uid objectUid = 0;
  std::string objectName;
  std::int32_t firstEvent = -1;
  std::int32_t secondEvent = -1;
};

class TraceRecorder final : public runtime::ExecutionObserver {
 public:
  struct Options {
    /// Record per-event direct-predecessor lists (needed by the Foata
    /// canonicaliser, the HB graph export and the tests; not needed by the
    /// experiment explorers, which only use fingerprints).
    bool keepPredecessors = false;
    /// Run the sync-HB data-race detector.
    bool detectRaces = false;
  };

  TraceRecorder();  // default options
  explicit TraceRecorder(Options options);

  // --- ExecutionObserver ----------------------------------------------------
  void onExecutionStart(const runtime::Execution& exec) override;
  void onObjectRegistered(const runtime::Execution& exec, std::int32_t index,
                          runtime::Uid uid, runtime::ObjectKind kind,
                          const std::string& name) override;
  void onEvent(const runtime::Execution& exec,
               const runtime::EventRecord& event) override;
  void onExecutionEnd(const runtime::Execution& exec,
                      runtime::Outcome outcome) override;

  // --- prefix fingerprints (valid after every event) -------------------------
  [[nodiscard]] support::Hash128 fingerprint(Relation r) const;
  [[nodiscard]] std::size_t eventCount() const noexcept { return eventCount_; }

  // --- per-event data (valid until the next onExecutionStart) ----------------
  [[nodiscard]] const runtime::EventRecord& eventRecord(std::int32_t index) const;
  [[nodiscard]] ClockView eventClock(Relation r, std::int32_t index) const;
  [[nodiscard]] support::Hash128 eventHash(Relation r, std::int32_t index) const;
  [[nodiscard]] const std::vector<std::int32_t>& eventPredecessors(
      Relation r, std::int32_t index) const;

  /// Clock of thread `tid`'s most recent event (zero clock if none).
  [[nodiscard]] ClockView threadClock(Relation r, int tid) const;

  /// Event indices of already-executed events that conflict (under the Full
  /// relation) with the given pending operation — the candidate backtracking
  /// points DPOR examines, most recent last.
  void collectConflicts(const runtime::Execution& exec, int tid,
                        std::vector<std::int32_t>& out) const;

  /// All events so far on an object's conflict chain (mutex / condvar /
  /// semaphore / thread objects), in schedule order. DPOR walks these from
  /// the back: the most recent chain event may fail the co-enabledness
  /// filter (e.g. an unlock against a pending lock) while an earlier one
  /// (the matching lock) is the real backtracking candidate.
  [[nodiscard]] const std::vector<std::int32_t>& chainEvents(std::int32_t objectIndex) const;

  // --- races ------------------------------------------------------------------
  [[nodiscard]] const std::vector<RaceReport>& races() const noexcept { return races_; }

  /// Human-readable object name for a UID seen in the current execution.
  [[nodiscard]] std::string objectName(runtime::Uid uid) const;

 private:
  /// Per-event predecessor lists, populated only under keepPredecessors.
  /// Pooled: the outer vector never shrinks, so inner capacity is reused.
  struct EventPreds {
    std::vector<std::int32_t> full;
    std::vector<std::int32_t> lazy;
    std::vector<std::int32_t> sync;
  };

  struct ObjectHistory {
    runtime::Uid uid = 0;
    runtime::ObjectKind kind = runtime::ObjectKind::Var;
    // Variables:
    std::int32_t lastWrite = -1;
    std::vector<std::int32_t> readersSinceWrite;
    // Chained objects (mutex Full chain, condvar, semaphore, thread):
    std::int32_t lastChainOp = -1;
    std::vector<std::int32_t> chain;  ///< every chain event, schedule order
    // Mutex Lazy-relation trylock bookkeeping:
    std::int32_t lastTryLock = -1;
    std::vector<std::int32_t> mutexOpsSinceTryLock;
    // Sync relation: last release (unlock/wait) event on this mutex.
    std::int32_t lastReleaseEvent = -1;
    // Race detection:
    std::int32_t lastWriteEvent = -1;
    std::vector<std::pair<int, std::int32_t>> lastReadPerThread;  // (tid, event)

    /// Clears per-execution state; every vector keeps its capacity, so a
    /// steady-state execution allocates nothing here.
    void reset(runtime::Uid u, runtime::ObjectKind k) {
      uid = u;
      kind = k;
      lastWrite = -1;
      readersSinceWrite.clear();
      lastChainOp = -1;
      chain.clear();
      lastTryLock = -1;
      mutexOpsSinceTryLock.clear();
      lastReleaseEvent = -1;
      lastWriteEvent = -1;
      lastReadPerThread.clear();
    }
  };

  ObjectHistory& history(std::int32_t objectIndex);
  [[nodiscard]] const ClockArena& arena(Relation r) const noexcept;
  void checkRace(const runtime::Execution& exec,
                 const runtime::EventRecord& event, std::int32_t index);

  Options options_;
  std::size_t eventCount_ = 0;

  // Hot per-event arrays (indexed by event).
  std::vector<support::Hash128> fullHash_;
  std::vector<support::Hash128> lazyHash_;
  ClockArena syncClocks_;
  ClockArena fullClocks_;
  ClockArena lazyClocks_;

  // Cold per-event arrays.
  std::vector<runtime::EventRecord> records_;
  std::vector<EventPreds> preds_;  // eventCount_ entries live iff keepPredecessors

  // Per-thread state: index of the thread's latest event (its running clock
  // is that event's arena row).
  std::vector<std::int32_t> threadLastEvent_;
  std::size_t threadCount_ = 0;

  std::vector<ObjectHistory> objects_;
  std::size_t objectCount_ = 0;
  support::MultisetHash prefixFull_;
  support::MultisetHash prefixLazy_;
  std::vector<RaceReport> races_;
  std::unordered_map<runtime::Uid, std::string> names_;

  // Scratch buffers reused across events (no hot-path allocation).
  std::vector<std::int32_t> scratchFull_;
  std::vector<std::int32_t> scratchLazy_;
  std::vector<std::int32_t> scratchSync_;
};

}  // namespace lazyhb::trace
