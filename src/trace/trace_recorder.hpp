// lazyhb/trace/trace_recorder.hpp
//
// Online computation of the happens-before relations of one execution:
//
//   Sync  — program order + spawn/join + mutex release->acquire + condvar
//           signal->wakeup. Used by the data-race detector.
//   Full  — the paper's HBR: Sync edges plus conflict edges between events
//           that access the same variable/mutex with at least one
//           modification (every mutex/condvar/semaphore op is treated as a
//           modification of its object).
//   Lazy  — the paper's lazy HBR: Full minus the inter-thread edges induced
//           by blocking lock/unlock (and condvar wait's hidden unlock/lock).
//           TryLock edges are retained: a trylock observes the mutex state,
//           so erasing them would break Theorem 2.2 (see DESIGN.md).
//   Value — not a relation but an observation equivalence, coarser than
//           Lazy (value-centric DPOR's framing): two prefixes are
//           value-equivalent when they executed the same operations and
//           every read/RMW observed the same *value* — regardless of which
//           writer produced it — and the shared state they reach is the
//           same (per-variable values plus each condvar's FIFO wait queue;
//           mutex owners, semaphore counts and per-thread progress are
//           already determined by the operation multiset). Lazy-equal
//           prefixes are always value-equal: the lazy relation keeps every
//           reads-from edge, orders same-variable write chains and condvar
//           chains totally, and trylock results sit in the event labels —
//           so #valueClasses <= #lazyHBRs, the next link of the §3 chain.
//
// For the Full and Lazy relations the recorder maintains an incremental
// canonical fingerprint of the executed *prefix*: each event's causal hash
// mixes its schedule-invariant label with the hashes of its direct
// predecessors under the relation, and the prefix fingerprint is an
// order-independent multiset combine of all event hashes. Two prefixes have
// equal fingerprints iff (modulo 128-bit collisions) they are linearizations
// of the same labelled partial order — this is what HBR caching and lazy
// HBR caching key on, and what the terminal-HBR counts of Figures 2 and 3
// de-duplicate by.
//
// Storage is structure-of-arrays, sized for the per-event loop that runs
// once per committed event of every explored schedule:
//   hot  — per-event causal hashes (one flat array per relation) and the
//          per-relation clock rows, which live in flat ClockArena matrices
//          (trace/clock_arena.hpp); a thread's running clock is simply its
//          last event's row, so no per-thread clock storage exists at all.
//   cold — EventRecords (consulted by DPOR's race analysis and the race
//          reports, not by the fingerprint loop) and per-event predecessor
//          lists, the latter populated only under keepPredecessors.
// Clock accessors deal in ClockView spans; the owning VectorClock class
// remains for the Foata/graph/test layers.
//
// The recorder is an ExecutionObserver and is reset on every
// onExecutionStart, so one instance can monitor millions of executions with
// no steady-state allocation: every array, arena, object history and scratch
// buffer keeps its capacity across executions.
//
// Incremental prefix replay: consecutive schedules of a tree search share a
// prefix, and everything the recorder computes for that prefix is identical
// across them. checkpoint() stages a rollback point at the current depth
// (the per-event arrays are append-only, the clock matrices truncate in
// place, and the prefix fingerprint accumulator is abelian — so a staged
// point is just the handful of non-monotonic cursors); rollbackTo(depth)
// rewinds the whole recorder to a staged point. Two consumers exist:
// resumable executions re-extend directly after a rollback, and re-executed
// schedules arm armResume(depth) so the next onExecutionStart rolls back
// and then *skips* the first `depth` replayed events instead of recomputing
// them — the recorder's share of the replay cost disappears.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/execution.hpp"
#include "runtime/operation.hpp"
#include "support/hash.hpp"
#include "trace/clock_arena.hpp"
#include "trace/vector_clock.hpp"

namespace lazyhb::trace {

/// Which happens-before relation (or, for Value, which prefix equivalence)
/// to consult.
enum class Relation : std::uint8_t { Sync, Full, Lazy, Value };

[[nodiscard]] const char* relationName(Relation r) noexcept;

/// A detected data race: two sync-concurrent accesses to one variable with
/// at least one write.
struct RaceReport {
  runtime::Uid objectUid = 0;
  std::string objectName;
  std::int32_t firstEvent = -1;
  std::int32_t secondEvent = -1;
};

class TraceRecorder final : public runtime::ExecutionObserver {
 public:
  struct Options {
    /// Record per-event direct-predecessor lists (needed by the Foata
    /// canonicaliser, the HB graph export and the tests; not needed by the
    /// experiment explorers, which only use fingerprints).
    bool keepPredecessors = false;
    /// Run the sync-HB data-race detector.
    bool detectRaces = false;
  };

  TraceRecorder();  // default options
  explicit TraceRecorder(Options options);

  // --- ExecutionObserver ----------------------------------------------------
  void onExecutionStart(const runtime::Execution& exec) override;
  void onObjectRegistered(const runtime::Execution& exec, std::int32_t index,
                          runtime::Uid uid, runtime::ObjectKind kind,
                          const std::string& name,
                          std::uint64_t initialValueHash) override;
  void onEvent(const runtime::Execution& exec,
               const runtime::EventRecord& event) override;
  void onExecutionEnd(const runtime::Execution& exec,
                      runtime::Outcome outcome) override;

  // --- prefix fingerprints (valid after every event) -------------------------
  [[nodiscard]] support::Hash128 fingerprint(Relation r) const;
  [[nodiscard]] std::size_t eventCount() const noexcept { return eventCount_; }

  // --- incremental prefix replay ---------------------------------------------

  /// Sentinel for "no staged checkpoint".
  static constexpr std::size_t kNoCheckpoint = static_cast<std::size_t>(-1);

  /// Stage a rollback point at the current depth (eventCount()). Checkpoints
  /// form a stack ordered by depth; staging at the current top's depth is a
  /// no-op. Returns the staged depth.
  std::size_t checkpoint();

  /// Deepest staged checkpoint at depth <= `depth`, or kNoCheckpoint.
  [[nodiscard]] std::size_t deepestCheckpointAtOrBelow(std::size_t depth) const noexcept;

  /// Rewind to the staged checkpoint at exactly `depth`, discarding every
  /// deeper one. All per-event data in [0, depth) stays valid; everything
  /// past it is truncated and the cursors/fingerprints restored.
  void rollbackTo(std::size_t depth);

  /// Arm the next onExecutionStart to rollbackTo(depth) and then skip the
  /// first `depth` replayed events (and their object re-registrations)
  /// instead of resetting — for re-executed schedules whose prefix is a
  /// replay of the previous one.
  void armResume(std::size_t depth);

  /// Drop the staged checkpoint at exactly `depth` (byte-budgeted snapshot
  /// store; explore/prefix_replay.hpp owns the policy). The undo log keeps
  /// its entries — rolling back past an evicted depth still replays them.
  /// Returns false when nothing is staged at that depth.
  bool evictCheckpoint(std::size_t depth);

  /// Approximate resident bytes of the checkpoint staged at `depth` (the
  /// recorder side is cursors only, so this is small next to the fiber
  /// images of Execution::checkpointApproxBytes). 0 when nothing is staged.
  [[nodiscard]] std::size_t checkpointApproxBytes(std::size_t depth) const noexcept;

  /// Live undo-log entries: one per object touched per checkpoint epoch.
  /// Introspection for tests pinning the O(touched) staging contract (two
  /// writes to one object between stages must coalesce into one entry).
  [[nodiscard]] std::size_t undoLogSize() const noexcept { return undoSize_; }

  /// Events skipped as already-recorded replays since construction.
  [[nodiscard]] std::uint64_t replaysSkipped() const noexcept { return replaysSkipped_; }

  // --- per-event data (valid until the next onExecutionStart) ----------------
  [[nodiscard]] const runtime::EventRecord& eventRecord(std::int32_t index) const;
  [[nodiscard]] ClockView eventClock(Relation r, std::int32_t index) const;
  [[nodiscard]] support::Hash128 eventHash(Relation r, std::int32_t index) const;
  [[nodiscard]] const std::vector<std::int32_t>& eventPredecessors(
      Relation r, std::int32_t index) const;

  /// Clock of thread `tid`'s most recent event (zero clock if none).
  [[nodiscard]] ClockView threadClock(Relation r, int tid) const;

  /// Event indices of already-executed events that conflict (under the Full
  /// relation) with the given pending operation — the candidate backtracking
  /// points DPOR examines, most recent last.
  void collectConflicts(const runtime::Execution& exec, int tid,
                        std::vector<std::int32_t>& out) const;

  /// All events so far on an object's conflict chain (mutex / condvar /
  /// semaphore / thread objects), in schedule order. DPOR walks these from
  /// the back: the most recent chain event may fail the co-enabledness
  /// filter (e.g. an unlock against a pending lock) while an earlier one
  /// (the matching lock) is the real backtracking candidate.
  [[nodiscard]] const std::vector<std::int32_t>& chainEvents(std::int32_t objectIndex) const;

  // --- races ------------------------------------------------------------------
  [[nodiscard]] const std::vector<RaceReport>& races() const noexcept { return races_; }

  /// Human-readable object name for a UID seen in the current execution.
  [[nodiscard]] std::string objectName(runtime::Uid uid) const;

 private:
  /// Per-event predecessor lists, populated only under keepPredecessors.
  /// Pooled: the outer vector never shrinks, so inner capacity is reused.
  struct EventPreds {
    std::vector<std::int32_t> full;
    std::vector<std::int32_t> lazy;
    std::vector<std::int32_t> sync;
  };

  struct ObjectHistory {
    runtime::Uid uid = 0;
    runtime::ObjectKind kind = runtime::ObjectKind::Var;
    // Variables:
    std::int32_t lastWrite = -1;
    std::vector<std::int32_t> readersSinceWrite;
    // Chained objects (mutex Full chain, condvar, semaphore, thread):
    std::int32_t lastChainOp = -1;
    std::vector<std::int32_t> chain;  ///< every chain event, schedule order
    // Mutex Lazy-relation trylock bookkeeping:
    std::int32_t lastTryLock = -1;
    std::vector<std::int32_t> mutexOpsSinceTryLock;
    // Sync relation: last release (unlock/wait) event on this mutex.
    std::int32_t lastReleaseEvent = -1;
    // Race detection:
    std::int32_t lastWriteEvent = -1;
    std::vector<std::pair<int, std::int32_t>> lastReadPerThread;  // (tid, event)
    /// Value equivalence: mirror of the variable's current value hash
    /// (Execution commits the post-value before recording the event, so the
    /// recorder keeps the pre-value itself — a read/RMW observes this).
    std::uint64_t valueHash = 0;
    /// Value equivalence: mirror of the condvar's FIFO wait queue, as
    /// thread UIDs in arrival order. Signal wakes the front deterministically,
    /// so arrival *order* is observable state an abelian multiset of labels
    /// cannot encode; the value fingerprint folds it order-sensitively.
    std::vector<runtime::Uid> cvQueue;
    /// Dirty stamp: the checkpoint epoch that last undo-logged this history.
    /// Epochs are never reused, so reset() need not clear it — a stale stamp
    /// simply reads as "not dirty in the current epoch".
    std::uint64_t epoch = 0;

    /// Clears per-execution state; every vector keeps its capacity, so a
    /// steady-state execution allocates nothing here.
    void reset(runtime::Uid u, runtime::ObjectKind k) {
      uid = u;
      kind = k;
      lastWrite = -1;
      readersSinceWrite.clear();
      lastChainOp = -1;
      chain.clear();
      lastTryLock = -1;
      mutexOpsSinceTryLock.clear();
      lastReleaseEvent = -1;
      lastWriteEvent = -1;
      lastReadPerThread.clear();
      valueHash = 0;
      cvQueue.clear();
    }
  };

  /// Pre-image of one object's non-monotonic cursors. The chain is
  /// append-only, so its length suffices; the clearable vectors are copied.
  struct ObjectCursor {
    std::int32_t lastWrite = -1;
    std::vector<std::int32_t> readersSinceWrite;
    std::int32_t lastChainOp = -1;
    std::size_t chainSize = 0;
    std::int32_t lastTryLock = -1;
    std::vector<std::int32_t> mutexOpsSinceTryLock;
    std::int32_t lastReleaseEvent = -1;
    std::int32_t lastWriteEvent = -1;
    std::vector<std::pair<int, std::int32_t>> lastReadPerThread;
    std::uint64_t valueHash = 0;
    std::vector<runtime::Uid> cvQueue;
  };

  /// One undo-log entry: an object's cursor pre-image, logged on its first
  /// history update after a checkpoint — so checkpoint() costs O(objects
  /// touched since the last stage) instead of O(all objects), and rollback
  /// replays entries newest-first.
  struct ObjectUndo {
    std::int32_t index = -1;
    ObjectCursor cursor;
  };

  /// One staged rollback point: the non-truncatable state at a depth.
  /// Object cursors are not copied — `undoMark` remembers the undo-log
  /// length at staging time.
  struct Checkpoint {
    std::size_t eventCount = 0;
    support::MultisetHash prefixFull;
    support::MultisetHash prefixLazy;
    support::MultisetHash prefixValue;
    support::MultisetHash valueState;
    std::size_t threadCount = 0;
    std::vector<std::int32_t> threadLastEvent;
    std::size_t objectCount = 0;
    std::size_t undoMark = 0;
    std::size_t raceCount = 0;
  };

  void resetAll();
  void recycleCheckpoints() noexcept;

  /// Dirty-tracking hook: called before the first history update of an
  /// object since the last checkpoint; logs its cursor pre-image once per
  /// epoch. No-op when nothing is staged.
  void touchHistory(std::int32_t index) {
    if (checkpoints_.empty()) return;
    ObjectHistory& h = history(index);
    if (h.epoch == currentEpoch_) return;
    h.epoch = currentEpoch_;
    logHistoryUndo(index, h);
  }
  void logHistoryUndo(std::int32_t index, const ObjectHistory& h);

  /// The condvar's contribution to valueState_: an order-sensitive fold of
  /// its FIFO wait queue over the condvar's uid. Computed before and after
  /// every queue change so the accumulator can remove/add the pair.
  [[nodiscard]] static support::Hash128 cvQueueContribution(const ObjectHistory& h) noexcept;

  ObjectHistory& history(std::int32_t objectIndex);
  [[nodiscard]] const ClockArena& arena(Relation r) const noexcept;
  void checkRace(const runtime::Execution& exec,
                 const runtime::EventRecord& event, std::int32_t index);

  Options options_;
  std::size_t eventCount_ = 0;

  // Hot per-event arrays (indexed by event).
  std::vector<support::Hash128> fullHash_;
  std::vector<support::Hash128> lazyHash_;
  ClockArena syncClocks_;
  ClockArena fullClocks_;
  ClockArena lazyClocks_;

  // Cold per-event arrays.
  std::vector<runtime::EventRecord> records_;
  std::vector<EventPreds> preds_;  // eventCount_ entries live iff keepPredecessors

  // Per-thread state: index of the thread's latest event (its running clock
  // is that event's arena row).
  std::vector<std::int32_t> threadLastEvent_;
  std::size_t threadCount_ = 0;

  std::vector<ObjectHistory> objects_;
  std::size_t objectCount_ = 0;
  support::MultisetHash prefixFull_;
  support::MultisetHash prefixLazy_;
  /// Value equivalence, two abelian accumulators: prefixValue_ holds one
  /// contribution per event — its label, mixed with the observed pre-value
  /// for reads/RMWs and nothing causal (that omission is the coarsening) —
  /// and valueState_ holds the currently-visible shared state: one
  /// (uid, value) contribution per variable and one order-sensitive queue
  /// fold per condvar. fingerprint(Relation::Value) combines both digests.
  support::MultisetHash prefixValue_;
  support::MultisetHash valueState_;
  std::vector<RaceReport> races_;
  std::unordered_map<runtime::Uid, std::string> names_;

  // Scratch buffers reused across events (no hot-path allocation).
  std::vector<std::int32_t> scratchFull_;
  std::vector<std::int32_t> scratchLazy_;
  std::vector<std::int32_t> scratchSync_;

  // Incremental prefix replay. Checkpoint entries are pooled so the nested
  // cursor vectors keep their capacity across stage/discard cycles;
  // eviction may leave depth gaps in the stack.
  std::vector<Checkpoint> checkpoints_;     // stack, shallow -> deep
  std::vector<Checkpoint> checkpointPool_;  // recycled entries

  // Object-cursor undo log: an arena indexed by undoSize_ — the vector
  // never shrinks, so per-entry cursor vectors keep capacity across reuse.
  // Epochs come from a monotone counter; one log entry per object per epoch.
  std::vector<ObjectUndo> undoLog_;
  std::size_t undoSize_ = 0;
  std::uint64_t epochCounter_ = 0;
  std::uint64_t currentEpoch_ = 0;

  std::size_t pendingResume_ = kNoCheckpoint;
  std::size_t skipEvents_ = 0;  // replayed prefix events left to skip
  std::uint64_t replaysSkipped_ = 0;
};

}  // namespace lazyhb::trace
