// lazyhb/trace/trace_recorder.hpp
//
// Online computation of the three happens-before relations of one execution:
//
//   Sync  — program order + spawn/join + mutex release->acquire + condvar
//           signal->wakeup. Used by the data-race detector.
//   Full  — the paper's HBR: Sync edges plus conflict edges between events
//           that access the same variable/mutex with at least one
//           modification (every mutex/condvar/semaphore op is treated as a
//           modification of its object).
//   Lazy  — the paper's lazy HBR: Full minus the inter-thread edges induced
//           by blocking lock/unlock (and condvar wait's hidden unlock/lock).
//           TryLock edges are retained: a trylock observes the mutex state,
//           so erasing them would break Theorem 2.2 (see DESIGN.md).
//
// For the Full and Lazy relations the recorder maintains an incremental
// canonical fingerprint of the executed *prefix*: each event's causal hash
// mixes its schedule-invariant label with the hashes of its direct
// predecessors under the relation, and the prefix fingerprint is an
// order-independent multiset combine of all event hashes. Two prefixes have
// equal fingerprints iff (modulo 128-bit collisions) they are linearizations
// of the same labelled partial order — this is what HBR caching and lazy
// HBR caching key on, and what the terminal-HBR counts of Figures 2 and 3
// de-duplicate by.
//
// The recorder is an ExecutionObserver and is reset on every
// onExecutionStart, so one instance can monitor millions of executions with
// no steady-state allocation.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "runtime/execution.hpp"
#include "runtime/operation.hpp"
#include "support/hash.hpp"
#include "trace/vector_clock.hpp"

namespace lazyhb::trace {

/// Which happens-before relation to consult.
enum class Relation : std::uint8_t { Sync, Full, Lazy };

[[nodiscard]] const char* relationName(Relation r) noexcept;

/// A detected data race: two sync-concurrent accesses to one variable with
/// at least one write.
struct RaceReport {
  runtime::Uid objectUid = 0;
  std::string objectName;
  std::int32_t firstEvent = -1;
  std::int32_t secondEvent = -1;
};

class TraceRecorder final : public runtime::ExecutionObserver {
 public:
  struct Options {
    /// Record per-event direct-predecessor lists (needed by the Foata
    /// canonicaliser, the HB graph export and the tests; not needed by the
    /// experiment explorers, which only use fingerprints).
    bool keepPredecessors = false;
    /// Run the sync-HB data-race detector.
    bool detectRaces = false;
  };

  TraceRecorder();  // default options
  explicit TraceRecorder(Options options);

  // --- ExecutionObserver ----------------------------------------------------
  void onExecutionStart(const runtime::Execution& exec) override;
  void onObjectRegistered(const runtime::Execution& exec, std::int32_t index,
                          runtime::Uid uid, runtime::ObjectKind kind,
                          const std::string& name) override;
  void onEvent(const runtime::Execution& exec,
               const runtime::EventRecord& event) override;
  void onExecutionEnd(const runtime::Execution& exec,
                      runtime::Outcome outcome) override;

  // --- prefix fingerprints (valid after every event) -------------------------
  [[nodiscard]] support::Hash128 fingerprint(Relation r) const;
  [[nodiscard]] std::size_t eventCount() const noexcept { return eventCount_; }

  // --- per-event data (valid until the next onExecutionStart) ----------------
  [[nodiscard]] const runtime::EventRecord& eventRecord(std::int32_t index) const;
  [[nodiscard]] const VectorClock& eventClock(Relation r, std::int32_t index) const;
  [[nodiscard]] support::Hash128 eventHash(Relation r, std::int32_t index) const;
  [[nodiscard]] const std::vector<std::int32_t>& eventPredecessors(
      Relation r, std::int32_t index) const;

  /// Clock of thread `tid`'s most recent event (zero clock if none).
  [[nodiscard]] const VectorClock& threadClock(Relation r, int tid) const;

  /// Event indices of already-executed events that conflict (under the Full
  /// relation) with the given pending operation — the candidate backtracking
  /// points DPOR examines, most recent last.
  void collectConflicts(const runtime::Execution& exec, int tid,
                        std::vector<std::int32_t>& out) const;

  /// All events so far on an object's conflict chain (mutex / condvar /
  /// semaphore / thread objects), in schedule order. DPOR walks these from
  /// the back: the most recent chain event may fail the co-enabledness
  /// filter (e.g. an unlock against a pending lock) while an earlier one
  /// (the matching lock) is the real backtracking candidate.
  [[nodiscard]] const std::vector<std::int32_t>& chainEvents(std::int32_t objectIndex) const;

  // --- races ------------------------------------------------------------------
  [[nodiscard]] const std::vector<RaceReport>& races() const noexcept { return races_; }

  /// Human-readable object name for a UID seen in the current execution.
  [[nodiscard]] std::string objectName(runtime::Uid uid) const;

 private:
  struct EventData {
    runtime::EventRecord record;
    support::Hash128 fullHash;
    support::Hash128 lazyHash;
    VectorClock sync;
    VectorClock full;
    VectorClock lazy;
    std::vector<std::int32_t> fullPreds;
    std::vector<std::int32_t> lazyPreds;
    std::vector<std::int32_t> syncPreds;
  };

  struct ObjectHistory {
    runtime::Uid uid = 0;
    runtime::ObjectKind kind = runtime::ObjectKind::Var;
    // Variables:
    std::int32_t lastWrite = -1;
    std::vector<std::int32_t> readersSinceWrite;
    // Chained objects (mutex Full chain, condvar, semaphore, thread):
    std::int32_t lastChainOp = -1;
    std::vector<std::int32_t> chain;  ///< every chain event, schedule order
    // Mutex Lazy-relation trylock bookkeeping:
    std::int32_t lastTryLock = -1;
    std::vector<std::int32_t> mutexOpsSinceTryLock;
    // Sync relation: last release (unlock/wait) event on this mutex.
    std::int32_t lastReleaseEvent = -1;
    // Race detection:
    std::int32_t lastWriteEvent = -1;
    std::vector<std::pair<int, std::int32_t>> lastReadPerThread;  // (tid, event)

    void reset(runtime::Uid u, runtime::ObjectKind k) {
      uid = u;
      kind = k;
      lastWrite = -1;
      readersSinceWrite.clear();
      lastChainOp = -1;
      chain.clear();
      lastTryLock = -1;
      mutexOpsSinceTryLock.clear();
      lastReleaseEvent = -1;
      lastWriteEvent = -1;
      lastReadPerThread.clear();
    }
  };

  struct ThreadClocks {
    VectorClock sync;
    VectorClock full;
    VectorClock lazy;
    std::int32_t lastEvent = -1;
    void reset() {
      sync.clear();
      full.clear();
      lazy.clear();
      lastEvent = -1;
    }
  };

  EventData& slot(std::size_t index);
  ObjectHistory& history(std::int32_t objectIndex);
  void checkRace(const runtime::Execution& exec,
                 const runtime::EventRecord& event, const EventData& data);

  Options options_;
  std::vector<EventData> events_;     // pooled; eventCount_ are live
  std::size_t eventCount_ = 0;
  std::vector<ObjectHistory> objects_;
  std::size_t objectCount_ = 0;
  std::vector<ThreadClocks> threads_;
  std::size_t threadCount_ = 0;
  support::MultisetHash prefixFull_;
  support::MultisetHash prefixLazy_;
  std::vector<RaceReport> races_;
  std::unordered_map<runtime::Uid, std::string> names_;

  // Scratch buffers reused across events (no hot-path allocation).
  std::vector<std::int32_t> scratchFull_;
  std::vector<std::int32_t> scratchLazy_;
  std::vector<std::int32_t> scratchSync_;
};

}  // namespace lazyhb::trace
