// lazyhb/trace/clock_arena.hpp
//
// A flat arena of vector-clock rows: one contiguous uint32 matrix with a
// fixed row width (the execution's thread capacity), rows appended in event
// order. This replaces one heap-allocated VectorClock per event per relation
// in the recorder's hot loop with a bump append into pooled storage —
// joining and copying become branch-free loops over raw spans the compiler
// can vectorise, and the rows of consecutive events are cache-adjacent.
//
// Width handling: the stride persists across reset() (cross-execution
// reuse), so after the first execution of a program the arena never
// re-strides again. When an execution spawns a thread index beyond the
// current stride, widen() re-strides every existing row in place,
// zero-padding the new components (a missing component is zero by the
// clock convention, so widening never changes a clock's value).

#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/diagnostics.hpp"
#include "trace/vector_clock.hpp"

namespace lazyhb::trace {

/// Pointwise maximum of two equal-width raw clock spans, dst <- max(dst, src).
inline void joinClockSpans(std::uint32_t* dst, const std::uint32_t* src,
                           std::uint32_t width) noexcept {
  for (std::uint32_t i = 0; i < width; ++i) {
    dst[i] = dst[i] < src[i] ? src[i] : dst[i];
  }
}

class ClockArena {
 public:
  explicit ClockArena(std::uint32_t stride = 8) : stride_(stride) {}

  /// Drop all rows, keeping the stride and the allocation (steady-state
  /// executions perform no allocation here).
  void reset() noexcept { rowCount_ = 0; }

  /// Drop every row past the first `rows` — the arena-side half of the
  /// recorder's rollbackTo(depth). Rows are append-only, so rolling a
  /// prefix back is pure truncation: the retained rows are untouched and
  /// the storage stays allocated for the re-extension that follows.
  void truncate(std::size_t rows) noexcept {
    LAZYHB_ASSERT(rows <= rowCount_);
    rowCount_ = rows;
  }

  [[nodiscard]] std::uint32_t stride() const noexcept { return stride_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rowCount_; }

  /// Append one uninitialised row and return its storage; the caller must
  /// fill all `stride()` components. Pointers from row()/appendRow() are
  /// invalidated by the next appendRow() or widen().
  [[nodiscard]] std::uint32_t* appendRow() {
    const std::size_t need = (rowCount_ + 1) * stride_;
    if (need > data_.size()) {
      data_.resize(std::max<std::size_t>(need, data_.size() * 2));
    }
    return data_.data() + (rowCount_++) * stride_;
  }

  [[nodiscard]] const std::uint32_t* row(std::size_t index) const noexcept {
    return data_.data() + index * stride_;
  }

  [[nodiscard]] ClockView view(std::size_t index) const noexcept {
    LAZYHB_ASSERT(index < rowCount_);
    return ClockView{row(index), stride_};
  }

  /// Grow the row width to at least `minStride`, re-striding every existing
  /// row and zero-padding the new components. Rare: only runs when an
  /// execution spawns more threads than any execution before it.
  void widen(std::uint32_t minStride) {
    if (minStride <= stride_) return;
    const std::uint32_t oldStride = stride_;
    const std::uint32_t newStride = minStride;
    data_.resize(std::max<std::size_t>(rowCount_ * newStride, data_.size()));
    // Back to front: each row moves to a higher address, so walking from the
    // last row keeps sources intact until they are consumed.
    for (std::size_t i = rowCount_; i-- > 0;) {
      std::uint32_t* dst = data_.data() + i * newStride;
      const std::uint32_t* src = data_.data() + i * oldStride;
      std::memmove(dst, src, oldStride * sizeof(std::uint32_t));
      std::memset(dst + oldStride, 0,
                  (newStride - oldStride) * sizeof(std::uint32_t));
    }
    stride_ = newStride;
  }

 private:
  std::vector<std::uint32_t> data_;
  std::size_t rowCount_ = 0;
  std::uint32_t stride_;
};

}  // namespace lazyhb::trace
