// lazyhb/trace/foata.hpp
//
// Exact canonical forms for happens-before relations.
//
// Two schedules have the same (lazy) HBR iff their labelled causal DAGs are
// equal. The incremental 128-bit fingerprints in TraceRecorder decide this
// probabilistically; this module decides it *exactly*, at O(n log n) to
// O(n^2) cost, and serves as the reference implementation the fingerprints
// are property-tested against (and as an opt-in exact mode for experiments).
//
// Two canonical forms are provided:
//
//  * foataNormalForm — the Foata level decomposition: level(e) = 1 + the
//    maximum level of e's direct predecessors, with the labels inside each
//    level sorted. Because dependence between events is a function of their
//    schedule-invariant labels (thread, per-thread index, kind, object), the
//    level word determines the partial order, making it a canonical form of
//    the trace (Mazurkiewicz theory).
//
//  * explicitRelation — the partial order itself, serialized: every event's
//    label followed by the sorted labels of its direct predecessors. This is
//    trivially canonical and is the ground truth in tests.
//
// Both require TraceRecorder::Options::keepPredecessors.

#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace_recorder.hpp"

namespace lazyhb::trace {

/// Canonical Foata normal form of the executed trace under relation `r`.
/// Equal vectors <=> equal labelled partial orders.
[[nodiscard]] std::vector<std::uint64_t> foataNormalForm(const TraceRecorder& recorder,
                                                         Relation r);

/// Exact serialization of the labelled partial order under relation `r`.
[[nodiscard]] std::vector<std::uint64_t> explicitRelation(const TraceRecorder& recorder,
                                                          Relation r);

/// Foata levels themselves (level of each event, 1-based); exposed for
/// analysis (the number of levels is the trace's critical-path length, a
/// parallelism measure used by the micro benchmarks).
[[nodiscard]] std::vector<int> foataLevels(const TraceRecorder& recorder, Relation r);

}  // namespace lazyhb::trace
