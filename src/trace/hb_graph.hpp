// lazyhb/trace/hb_graph.hpp
//
// Human-consumable views of a recorded happens-before relation: a text
// rendering of the schedule with its inter-thread edges (the form Figure 1
// of the paper uses) and a Graphviz DOT export.

#pragma once

#include <string>

#include "trace/trace_recorder.hpp"

namespace lazyhb::trace {

/// One line per event ("T0  lock(m)"), annotated with the indices of its
/// inter-thread direct predecessors under `r` (intra-thread edges are
/// omitted, as in the paper's Figure 1). Requires keepPredecessors.
[[nodiscard]] std::string renderSchedule(const TraceRecorder& recorder, Relation r);

/// Graphviz DOT rendering of the direct-predecessor DAG under `r`.
[[nodiscard]] std::string renderDot(const TraceRecorder& recorder, Relation r);

/// Number of inter-thread direct edges under `r` (the quantity the lazy HBR
/// reduces; used by examples and tests).
[[nodiscard]] int interThreadEdgeCount(const TraceRecorder& recorder, Relation r);

/// Compact one-line description of an event, e.g. "T1.write(y)".
[[nodiscard]] std::string describeEvent(const TraceRecorder& recorder,
                                        std::int32_t index);

}  // namespace lazyhb::trace
