#include "trace/hb_graph.hpp"

namespace lazyhb::trace {

std::string describeEvent(const TraceRecorder& recorder, std::int32_t index) {
  const runtime::EventRecord& ev = recorder.eventRecord(index);
  std::string out = "T" + std::to_string(ev.threadIndex);
  out += '.';
  out += runtime::opKindName(ev.kind);
  if (ev.objectUid != 0) {
    out += '(';
    out += recorder.objectName(ev.objectUid);
    if (ev.mutexUid != 0) {
      out += ',';
      out += recorder.objectName(ev.mutexUid);
    }
    out += ')';
  }
  if (ev.kind == runtime::OpKind::TryLock) {
    out += ev.aux == 1 ? "=ok" : "=busy";
  }
  return out;
}

std::string renderSchedule(const TraceRecorder& recorder, Relation r) {
  std::string out;
  const auto n = static_cast<std::int32_t>(recorder.eventCount());
  for (std::int32_t i = 0; i < n; ++i) {
    out += '[';
    const std::string idx = std::to_string(i);
    for (std::size_t pad = idx.size(); pad < 3; ++pad) out += ' ';
    out += idx;
    out += "] ";
    out += describeEvent(recorder, i);
    std::string edges;
    for (const std::int32_t p : recorder.eventPredecessors(r, i)) {
      if (recorder.eventRecord(p).threadIndex != recorder.eventRecord(i).threadIndex) {
        if (!edges.empty()) edges += ", ";
        edges += std::to_string(p);
      }
    }
    if (!edges.empty()) {
      out += "   <- {";
      out += edges;
      out += '}';
    }
    out += '\n';
  }
  return out;
}

std::string renderDot(const TraceRecorder& recorder, Relation r) {
  std::string out = "digraph hbr {\n  rankdir=TB;\n  node [shape=box,fontname=\"monospace\"];\n";
  const auto n = static_cast<std::int32_t>(recorder.eventCount());
  for (std::int32_t i = 0; i < n; ++i) {
    out += "  e" + std::to_string(i) + " [label=\"" + describeEvent(recorder, i) + "\"];\n";
  }
  for (std::int32_t i = 0; i < n; ++i) {
    for (const std::int32_t p : recorder.eventPredecessors(r, i)) {
      const bool inter =
          recorder.eventRecord(p).threadIndex != recorder.eventRecord(i).threadIndex;
      out += "  e" + std::to_string(p) + " -> e" + std::to_string(i);
      if (inter) out += " [color=red,penwidth=2]";
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

int interThreadEdgeCount(const TraceRecorder& recorder, Relation r) {
  int count = 0;
  const auto n = static_cast<std::int32_t>(recorder.eventCount());
  for (std::int32_t i = 0; i < n; ++i) {
    for (const std::int32_t p : recorder.eventPredecessors(r, i)) {
      if (recorder.eventRecord(p).threadIndex != recorder.eventRecord(i).threadIndex) {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace lazyhb::trace
