// lazyhb/trace/vector_clock.hpp
//
// Vector clocks over execution-local thread indices.
//
// A clock maps thread index -> number of that thread's events known to have
// happened before (and including) the owning point. Clocks are compared and
// joined pointwise; a missing component is zero. Widths grow as threads are
// spawned, so clocks from different moments of one execution interoperate.
// Clocks are never compared across executions (fingerprints are the
// cross-execution currency).

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/diagnostics.hpp"

namespace lazyhb::trace {

class VectorClock {
 public:
  VectorClock() = default;

  /// Component for thread `tid` (zero if beyond current width).
  [[nodiscard]] std::uint32_t get(int tid) const noexcept {
    const auto i = static_cast<std::size_t>(tid);
    return i < components_.size() ? components_[i] : 0;
  }

  void set(int tid, std::uint32_t value) {
    const auto i = static_cast<std::size_t>(tid);
    if (i >= components_.size()) components_.resize(i + 1, 0);
    components_[i] = value;
  }

  /// Pointwise maximum with another clock.
  void joinWith(const VectorClock& other) {
    if (other.components_.size() > components_.size()) {
      components_.resize(other.components_.size(), 0);
    }
    for (std::size_t i = 0; i < other.components_.size(); ++i) {
      components_[i] = std::max(components_[i], other.components_[i]);
    }
  }

  /// True iff this clock is pointwise <= other (this happened-before-or-
  /// equals other's point of view).
  [[nodiscard]] bool leq(const VectorClock& other) const noexcept {
    for (std::size_t i = 0; i < components_.size(); ++i) {
      if (components_[i] > other.get(static_cast<int>(i))) return false;
    }
    return true;
  }

  void clear() noexcept { components_.clear(); }

  [[nodiscard]] std::size_t width() const noexcept { return components_.size(); }

  friend bool operator==(const VectorClock&, const VectorClock&);

 private:
  std::vector<std::uint32_t> components_;
};

[[nodiscard]] bool operator==(const VectorClock& a, const VectorClock& b);

}  // namespace lazyhb::trace
