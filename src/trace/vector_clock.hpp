// lazyhb/trace/vector_clock.hpp
//
// Vector clocks over execution-local thread indices.
//
// A clock maps thread index -> number of that thread's events known to have
// happened before (and including) the owning point. Clocks are compared and
// joined pointwise; a missing component is zero. Clocks are never compared
// across executions (fingerprints are the cross-execution currency).
//
// Two representations:
//   ClockView   — a non-owning span over a row of the recorder's ClockArena
//                 (trace/clock_arena.hpp). This is what the hot path and the
//                 recorder's accessors deal in: two registers, no ownership.
//   VectorClock — an owning, growable clock for the Foata/graph/test layers
//                 and anywhere a clock must outlive the arena it came from.
//                 Convertible from a ClockView.

#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/diagnostics.hpp"

namespace lazyhb::trace {

/// Non-owning read view of one clock row. Components beyond `width` are zero
/// by convention, so views of different widths interoperate. A
/// default-constructed view is the zero clock.
class ClockView {
 public:
  constexpr ClockView() = default;
  constexpr ClockView(const std::uint32_t* data, std::uint32_t width) noexcept
      : data_(data), width_(width) {}

  /// Component for thread `tid` (zero if beyond the row's width).
  [[nodiscard]] constexpr std::uint32_t get(int tid) const noexcept {
    const auto i = static_cast<std::uint32_t>(tid);
    return i < width_ ? data_[i] : 0;
  }

  [[nodiscard]] constexpr std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] constexpr const std::uint32_t* data() const noexcept { return data_; }

  /// True iff this clock is pointwise <= other.
  [[nodiscard]] bool leq(ClockView other) const noexcept {
    const std::uint32_t shared = std::min(width_, other.width_);
    for (std::uint32_t i = 0; i < shared; ++i) {
      if (data_[i] > other.data_[i]) return false;
    }
    for (std::uint32_t i = shared; i < width_; ++i) {
      if (data_[i] != 0) return false;
    }
    return true;
  }

 private:
  const std::uint32_t* data_ = nullptr;
  std::uint32_t width_ = 0;
};

[[nodiscard]] inline bool operator==(ClockView a, ClockView b) noexcept {
  const std::uint32_t n = std::max(a.width(), b.width());
  for (std::uint32_t i = 0; i < n; ++i) {
    if (a.get(static_cast<int>(i)) != b.get(static_cast<int>(i))) return false;
  }
  return true;
}

class VectorClock {
 public:
  VectorClock() = default;

  /// Materialise an owning copy of an arena row.
  explicit VectorClock(ClockView view)
      : components_(view.data(), view.data() + view.width()) {}

  /// Component for thread `tid` (zero if beyond current width).
  [[nodiscard]] std::uint32_t get(int tid) const noexcept {
    const auto i = static_cast<std::size_t>(tid);
    return i < components_.size() ? components_[i] : 0;
  }

  void set(int tid, std::uint32_t value) {
    const auto i = static_cast<std::size_t>(tid);
    if (i >= components_.size()) components_.resize(i + 1, 0);
    components_[i] = value;
  }

  /// Pointwise maximum with another clock.
  void joinWith(const VectorClock& other) {
    if (other.components_.size() > components_.size()) {
      components_.resize(other.components_.size(), 0);
    }
    for (std::size_t i = 0; i < other.components_.size(); ++i) {
      components_[i] = std::max(components_[i], other.components_[i]);
    }
  }

  /// True iff this clock is pointwise <= other (this happened-before-or-
  /// equals other's point of view).
  [[nodiscard]] bool leq(const VectorClock& other) const noexcept {
    return view().leq(other.view());
  }

  void clear() noexcept { components_.clear(); }

  [[nodiscard]] std::size_t width() const noexcept { return components_.size(); }

  [[nodiscard]] ClockView view() const noexcept {
    return ClockView{components_.data(),
                     static_cast<std::uint32_t>(components_.size())};
  }

  friend bool operator==(const VectorClock&, const VectorClock&);

 private:
  std::vector<std::uint32_t> components_;
};

[[nodiscard]] bool operator==(const VectorClock& a, const VectorClock& b);

}  // namespace lazyhb::trace
