#include "trace/vector_clock.hpp"

namespace lazyhb::trace {

bool operator==(const VectorClock& a, const VectorClock& b) {
  const std::size_t n = std::max(a.components_.size(), b.components_.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (a.get(static_cast<int>(i)) != b.get(static_cast<int>(i))) return false;
  }
  return true;
}

}  // namespace lazyhb::trace
