#include "trace/vector_clock.hpp"

namespace lazyhb::trace {

bool operator==(const VectorClock& a, const VectorClock& b) {
  return a.view() == b.view();
}

}  // namespace lazyhb::trace
