#include "trace/foata.hpp"

#include <algorithm>

namespace lazyhb::trace {

namespace {

/// Serialize an event's schedule-invariant label as a fixed-width tuple.
void appendLabel(std::vector<std::uint64_t>& out, const runtime::EventRecord& ev) {
  out.push_back(ev.threadUid);
  out.push_back((static_cast<std::uint64_t>(ev.indexInThread) << 8) |
                static_cast<std::uint64_t>(ev.kind));
  out.push_back(ev.objectUid);
  out.push_back(ev.mutexUid ^ (ev.aux << 1));
}

/// Sort key for events: by (threadUid, indexInThread), which is unique.
struct LabelOrder {
  const TraceRecorder& recorder;
  bool operator()(std::int32_t a, std::int32_t b) const {
    const auto& ea = recorder.eventRecord(a);
    const auto& eb = recorder.eventRecord(b);
    if (ea.threadUid != eb.threadUid) return ea.threadUid < eb.threadUid;
    return ea.indexInThread < eb.indexInThread;
  }
};

}  // namespace

std::vector<int> foataLevels(const TraceRecorder& recorder, Relation r) {
  const auto n = static_cast<std::int32_t>(recorder.eventCount());
  std::vector<int> level(static_cast<std::size_t>(n), 1);
  for (std::int32_t i = 0; i < n; ++i) {
    int best = 0;
    for (const std::int32_t p : recorder.eventPredecessors(r, i)) {
      best = std::max(best, level[static_cast<std::size_t>(p)]);
    }
    level[static_cast<std::size_t>(i)] = best + 1;
  }
  return level;
}

std::vector<std::uint64_t> foataNormalForm(const TraceRecorder& recorder, Relation r) {
  const auto n = static_cast<std::int32_t>(recorder.eventCount());
  const std::vector<int> level = foataLevels(recorder, r);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    const int la = level[static_cast<std::size_t>(a)];
    const int lb = level[static_cast<std::size_t>(b)];
    if (la != lb) return la < lb;
    return LabelOrder{recorder}(a, b);
  });
  std::vector<std::uint64_t> out;
  out.reserve(static_cast<std::size_t>(n) * 5 + 8);
  int current = 0;
  for (const std::int32_t i : order) {
    if (level[static_cast<std::size_t>(i)] != current) {
      current = level[static_cast<std::size_t>(i)];
      out.push_back(~0ULL);  // level separator
    }
    appendLabel(out, recorder.eventRecord(i));
  }
  return out;
}

std::vector<std::uint64_t> explicitRelation(const TraceRecorder& recorder, Relation r) {
  // The *transitive* relation is reconstructed from vector clocks (event j
  // happens-before event i iff clock_j[thread(j)] <= clock_i[thread(j)]),
  // which makes this oracle independent of the direct-edge construction the
  // fingerprints are built from.
  const auto n = static_cast<std::int32_t>(recorder.eventCount());
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::sort(order.begin(), order.end(), LabelOrder{recorder});

  std::vector<std::uint64_t> out;
  std::vector<std::int32_t> preds;
  for (const std::int32_t i : order) {
    out.push_back(~0ULL);  // record separator
    appendLabel(out, recorder.eventRecord(i));
    preds.clear();
    const ClockView clockI = recorder.eventClock(r, i);
    for (std::int32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      const int tj = recorder.eventRecord(j).threadIndex;
      if (recorder.eventClock(r, j).get(tj) <= clockI.get(tj)) {
        preds.push_back(j);
      }
    }
    std::sort(preds.begin(), preds.end(), LabelOrder{recorder});
    for (const std::int32_t p : preds) {
      appendLabel(out, recorder.eventRecord(p));
    }
  }
  return out;
}

}  // namespace lazyhb::trace
