// lazyhb/explore/dpor_explorer.hpp
//
// Dynamic partial-order reduction (Flanagan & Godefroid, POPL 2005) with
// optional sleep sets — the POR technique the paper's Figure 2 experiment
// runs (it uses the regular HBR).
//
// At every new state along the current path, for every thread p with a
// pending operation, DPOR finds the most recent executed event i that is
// dependent with p's operation, may be co-enabled with it, and does not
// happen-before it. Such an (i, p) pair is a race the current schedule
// ordered one way; exploring p first from the state *before* i covers the
// other way, so p (or, if p was not enabled there, some thread that can lead
// to p) is added to that state's backtrack set. Depth-first search then only
// descends into backtrack-set children instead of all enabled children.
//
// Sleep sets additionally prune schedules that merely commute independent
// transitions already explored at the same node.
//
// As a §4 "future work" experiment, the explorer can also consult an
// HBR-prefix cache (Full or Lazy relation) exactly like CachingExplorer.
// This combination is EXPERIMENTAL: DPOR's coverage argument assumes a
// subtree, once entered, is explored to its backtrack-completion, which an
// external cache prune can violate; the test suite quantifies (and the
// benches report) its behaviour separately.

#pragma once

#include <optional>
#include <vector>

#include "core/dependence.hpp"
#include "core/hbr_cache.hpp"
#include "explore/explorer.hpp"
#include "support/thread_set.hpp"

namespace lazyhb::explore {

struct DporOptions {
  bool sleepSets = true;
  /// Experimental (§4): also prune on cached (lazy) HBR prefixes.
  std::optional<trace::Relation> cachePrefixes;
};

class DporExplorer final : public ExplorerBase {
 public:
  DporExplorer(ExplorerOptions options, DporOptions dpor = {});

  /// Number of executions abandoned because every enabled thread was asleep.
  [[nodiscard]] std::uint64_t sleepSetPrunes() const noexcept { return sleepPrunes_; }
  [[nodiscard]] const core::HbrCache& cache() const noexcept { return cache_; }

 protected:
  void runSearch(const Program& program) override;
  [[nodiscard]] const core::HbrCache* prefixCache() const noexcept override {
    return dpor_.cachePrefixes ? &cache_ : nullptr;
  }

 private:
  struct DporNode {
    support::ThreadSet enabled;
    support::ThreadSet backtrack;
    support::ThreadSet done;
    support::ThreadSet sleepIn;  ///< threads asleep on entry to this node
    int chosen = -1;
  };

  friend class DporScheduler;

  /// Deepest-first sibling advance honouring backtrack and sleep sets.
  bool advance();

  DporOptions dpor_;
  std::vector<DporNode> nodes_;
  std::size_t checkFromDepth_ = 0;
  std::uint64_t sleepPrunes_ = 0;
  core::HbrCache cache_;
};

}  // namespace lazyhb::explore
