#include "explore/replay.hpp"

#include "support/diagnostics.hpp"
#include "trace/hb_graph.hpp"

namespace lazyhb::explore {

int FixedScheduler::pick(runtime::Execution& exec) {
  const support::ThreadSet enabled = exec.enabled();
  if (step_ < choices_.size()) {
    const int tid = choices_[step_++];
    if (tid < 0 || tid >= support::kMaxThreads || !enabled.contains(tid)) {
      return kAbandon;
    }
    return tid;
  }
  return enabled.first();
}

ReplayResult replaySchedule(const Program& program, const std::vector<int>& choices,
                            const ReplayOptions& options) {
  trace::TraceRecorder recorder(
      trace::TraceRecorder::Options{options.renderTrace, options.detectRaces});
  runtime::StackPool pool;
  runtime::Config config;
  config.maxEventsPerSchedule = options.maxEventsPerSchedule;
  config.memoryModel = options.memoryModel;
  runtime::Execution exec(config, pool, &recorder);
  FixedScheduler scheduler(choices);

  ReplayResult result;
  result.outcome = exec.run(program, scheduler);
  result.violationMessage = exec.violation().message;
  result.hbrFingerprint = recorder.fingerprint(trace::Relation::Full);
  result.lazyFingerprint = recorder.fingerprint(trace::Relation::Lazy);
  result.stateFingerprint = exec.stateFingerprint();
  result.eventCount = recorder.eventCount();
  result.races = recorder.races();
  if (options.renderTrace) {
    result.renderedTrace = trace::renderSchedule(recorder, options.renderRelation);
  }
  return result;
}

}  // namespace lazyhb::explore
