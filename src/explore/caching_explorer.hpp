// lazyhb/explore/caching_explorer.hpp
//
// HBR caching, lazy HBR caching (paper §2, "Lazy HBR caching"), and
// value-class caching (the observation-centric successor).
//
// Depth-first enumeration with prefix-equivalence pruning: after every newly
// chosen event, the canonical fingerprint of the executed prefix's relation
// is looked up in a global cache. A hit means an equivalent prefix — one
// reaching the same program state, by Theorem 2.1 (Full relation) or
// Theorem 2.2 (Lazy relation) — was explored before, so the current schedule
// is redundant and is abandoned. With the Full relation this is
// Musuvathi–Qadeer HBR caching; with the Lazy relation it is the paper's
// contribution, which prunes strictly more because lazy classes are coarser.
// With the Value relation pruning keys on the observation fingerprint (same
// operations, same values observed, same visible state — the value-centric
// DPOR framing), which is coarser still: lazy-equal prefixes are always
// value-equal, so the value cache prunes at least as much as the lazy one.
//
// Figure 3 of the paper compares the Full and Lazy instantiations under a
// common schedule budget; the caching-value variant extends that A/B.

#pragma once

#include "core/hbr_cache.hpp"
#include "explore/dfs_explorer.hpp"

namespace lazyhb::explore {

class CachingExplorer final : public ExplorerBase {
 public:
  /// `relation` must be Full (regular HBR caching), Lazy (lazy HBR
  /// caching) or Value (value-class caching).
  CachingExplorer(ExplorerOptions options, trace::Relation relation);

  [[nodiscard]] const core::HbrCache& cache() const noexcept { return cache_; }
  [[nodiscard]] trace::Relation relation() const noexcept { return relation_; }

 protected:
  void runSearch(const Program& program) override;
  [[nodiscard]] const core::HbrCache* prefixCache() const noexcept override {
    return &cache_;
  }

 private:
  trace::Relation relation_;
  core::HbrCache cache_;
};

}  // namespace lazyhb::explore
