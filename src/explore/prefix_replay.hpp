// lazyhb/explore/prefix_replay.hpp
//
// The incremental prefix-replay engine: the piece that lets a tree search
// pay only for the *suffix* of each schedule past its divergence point.
//
// Tree searches (DFS, the caching explorers, DPOR) visit schedules in an
// order where consecutive schedules share a — usually deep — prefix: the
// next schedule is "the previous one up to depth d, then a different
// sibling". Classic stateless exploration re-runs the program from scratch
// and replays the prefix choices; everything about that replay (fiber
// switches, engine bookkeeping, recorder clock/hash work) recomputes values
// that are already known.
//
// This engine removes that cost in two tiers:
//
//   * Full runtime rollback (checkpointable programs, fast-fiber builds):
//     one persistent resumable Execution survives across schedules. At
//     every scheduling point that the search will revisit (a node with
//     unexplored siblings), the engine stages an Execution checkpoint and a
//     TraceRecorder checkpoint in lockstep. To start the next schedule it
//     rolls both back to the divergence depth and resumes — the prefix is
//     never re-executed at all ("elided" events).
//
//   * Recorder elision (every other program/build): the program is
//     re-executed from scratch as before, but the recorder is rolled back
//     to its staged checkpoint and *skips* the replayed prefix events
//     instead of recomputing clock rows, hashes and histories for them
//     ("replayed" events; only their recording cost disappears).
//
// Both tiers leave every observable count byte-identical to a
// non-incremental run: rollback restores exactly the state the prefix
// produces, and the re-extension is the same deterministic computation.
// tests/test_incremental.cpp holds the equivalence properties; the golden
// count suite runs the corpus matrix in both modes.

#pragma once

#include <cstdint>
#include <memory>

#include "runtime/execution.hpp"
#include "trace/trace_recorder.hpp"

namespace lazyhb::explore {

class PrefixReplayEngine {
 public:
  /// What one upcoming schedule execution should do.
  struct Session {
    runtime::Execution* exec = nullptr;
    bool resumed = false;        ///< true: call exec->resume(), else exec->run()
    std::size_t startDepth = 0;  ///< scheduler starts at this absolute depth
  };

  /// `incremental` turns the engine on at all; `runtimeRollback`
  /// additionally enables the full tier (the caller is responsible for
  /// checking the program's checkpointable contract and
  /// Execution::checkpointingSupported()).
  PrefixReplayEngine(runtime::StackPool& stackPool, trace::TraceRecorder& recorder,
                     bool incremental, bool runtimeRollback);

  PrefixReplayEngine(const PrefixReplayEngine&) = delete;
  PrefixReplayEngine& operator=(const PrefixReplayEngine&) = delete;

  [[nodiscard]] bool incremental() const noexcept { return incremental_; }
  [[nodiscard]] bool runtimeRollback() const noexcept { return runtimeRollback_; }

  /// Scheduler hook: called from Scheduler::pick at a node the search may
  /// revisit (unexplored siblings remain), with `depth` == the number of
  /// committed events. Stages recorder and (full tier) execution
  /// checkpoints; no-ops while the recorder is still skipping a replayed
  /// prefix, or when the depth is already staged.
  void stageCheckpoint(runtime::Execution& exec, std::size_t depth);

  /// Plan the next schedule given the divergence depth the search's
  /// advance() chose. Performs the rollback (full tier) or arms the
  /// recorder resume (elision tier). Returns the Session::startDepth the
  /// next scheduler must be constructed with.
  std::size_t prepareNext(std::size_t divergenceDepth);

  /// Hand out the execution for the next schedule: the rolled-back
  /// persistent one, or a fresh single-use one. Also commits the pending
  /// elided/replayed accounting planned by prepareNext.
  Session beginSchedule(const runtime::Config& config,
                        runtime::ExecutionObserver* observer);

  // --- accounting -------------------------------------------------------------

  /// Prefix events never re-executed (full runtime rollback).
  [[nodiscard]] std::uint64_t eventsElided() const noexcept { return eventsElided_; }
  /// Prefix events re-executed to reach a divergence point (their recording
  /// was skipped whenever a recorder checkpoint covered them).
  [[nodiscard]] std::uint64_t eventsReplayed() const noexcept { return eventsReplayed_; }
  /// Successful runtime rollbacks / cold restarts of the persistent execution.
  [[nodiscard]] std::uint64_t rollbacks() const noexcept { return rollbacks_; }
  [[nodiscard]] std::uint64_t fullRestarts() const noexcept { return fullRestarts_; }

 private:
  runtime::StackPool& stackPool_;
  trace::TraceRecorder& recorder_;
  bool incremental_;
  bool runtimeRollback_;

  std::unique_ptr<runtime::Execution> exec_;
  bool pendingResume_ = false;
  std::size_t pendingStart_ = 0;
  std::uint64_t pendingElided_ = 0;
  std::uint64_t pendingReplayed_ = 0;

  std::uint64_t eventsElided_ = 0;
  std::uint64_t eventsReplayed_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t fullRestarts_ = 0;
};

}  // namespace lazyhb::explore
