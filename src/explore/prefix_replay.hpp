// lazyhb/explore/prefix_replay.hpp
//
// The incremental prefix-replay engine: the piece that lets a tree search
// pay only for the *suffix* of each schedule past its divergence point.
//
// Tree searches (DFS, the caching explorers, DPOR) visit schedules in an
// order where consecutive schedules share a — usually deep — prefix: the
// next schedule is "the previous one up to depth d, then a different
// sibling". Classic stateless exploration re-runs the program from scratch
// and replays the prefix choices; everything about that replay (fiber
// switches, engine bookkeeping, recorder clock/hash work) recomputes values
// that are already known.
//
// This engine removes that cost in two tiers:
//
//   * Full runtime rollback (checkpointable programs, fast-fiber builds):
//     one persistent resumable Execution survives across schedules. At
//     every scheduling point that the search will revisit (a node with
//     unexplored siblings), the engine stages an Execution checkpoint and a
//     TraceRecorder checkpoint in lockstep. To start the next schedule it
//     rolls both back to the divergence depth and resumes — the prefix is
//     never re-executed at all ("elided" events).
//
//   * Recorder elision (every other program/build): the program is
//     re-executed from scratch as before, but the recorder is rolled back
//     to its staged checkpoint and *skips* the replayed prefix events
//     instead of recomputing clock rows, hashes and histories for them
//     ("replayed" events; only their recording cost disappears).
//
// Both tiers leave every observable count byte-identical to a
// non-incremental run: rollback restores exactly the state the prefix
// produces, and the re-extension is the same deterministic computation.
// tests/test_incremental.cpp holds the equivalence properties; the golden
// count suite runs the corpus matrix in both modes.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/execution.hpp"
#include "trace/trace_recorder.hpp"

namespace lazyhb::explore {

class PrefixReplayEngine {
 public:
  /// What one upcoming schedule execution should do.
  struct Session {
    runtime::Execution* exec = nullptr;
    bool resumed = false;        ///< true: call exec->resume(), else exec->run()
    std::size_t startDepth = 0;  ///< scheduler starts at this absolute depth
  };

  /// `incremental` turns the engine on at all; `runtimeRollback`
  /// additionally enables the full tier (the caller is responsible for
  /// checking the program's checkpointable contract and
  /// Execution::checkpointingSupported()). `snapshotBudgetBytes` bounds the
  /// approximate bytes held by staged checkpoints (0 = unlimited): staging
  /// past the budget evicts the shallowest staged depth — the one furthest
  /// from the frontier of a deepest-first walk — and a later divergence
  /// into an evicted region falls back to the deepest surviving shallower
  /// stage (or a full restart). Pure performance policy: counts stay
  /// byte-identical at any budget.
  PrefixReplayEngine(runtime::StackPool& stackPool, trace::TraceRecorder& recorder,
                     bool incremental, bool runtimeRollback,
                     std::uint64_t snapshotBudgetBytes);

  PrefixReplayEngine(const PrefixReplayEngine&) = delete;
  PrefixReplayEngine& operator=(const PrefixReplayEngine&) = delete;

  [[nodiscard]] bool incremental() const noexcept { return incremental_; }
  [[nodiscard]] bool runtimeRollback() const noexcept { return runtimeRollback_; }

  /// Scheduler hook: called from Scheduler::pick at a node the search may
  /// revisit (unexplored siblings remain), with `depth` == the number of
  /// committed events. Stages recorder and (full tier) execution
  /// checkpoints; no-ops while the recorder is still skipping a replayed
  /// prefix, or when the depth is already staged.
  void stageCheckpoint(runtime::Execution& exec, std::size_t depth);

  /// Plan the next schedule given the divergence depth the search's
  /// advance() chose. Performs the rollback (full tier) or arms the
  /// recorder resume (elision tier). Returns the Session::startDepth the
  /// next scheduler must be constructed with.
  std::size_t prepareNext(std::size_t divergenceDepth);

  /// Hand out the execution for the next schedule: the rolled-back
  /// persistent one, or a fresh single-use one. Also commits the pending
  /// elided/replayed accounting planned by prepareNext.
  Session beginSchedule(const runtime::Config& config,
                        runtime::ExecutionObserver* observer);

  // --- accounting -------------------------------------------------------------

  /// Prefix events never re-executed (full runtime rollback).
  [[nodiscard]] std::uint64_t eventsElided() const noexcept { return eventsElided_; }
  /// Prefix events re-executed to reach a divergence point (their recording
  /// was skipped whenever a recorder checkpoint covered them).
  [[nodiscard]] std::uint64_t eventsReplayed() const noexcept { return eventsReplayed_; }
  /// Successful runtime rollbacks / cold restarts of the persistent execution.
  [[nodiscard]] std::uint64_t rollbacks() const noexcept { return rollbacks_; }
  [[nodiscard]] std::uint64_t fullRestarts() const noexcept { return fullRestarts_; }
  /// Distinct depths staged over the whole run (re-stages of a still-live
  /// depth do not count).
  [[nodiscard]] std::uint64_t stagesCreated() const noexcept { return stagesCreated_; }
  /// Sum of approximate checkpoint bytes at their staging time.
  [[nodiscard]] std::uint64_t bytesStaged() const noexcept { return bytesStaged_; }
  /// Stages evicted to honour the byte budget.
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  /// prepareNext calls where an evicted stage would have served the chosen
  /// divergence better than the deepest surviving one.
  [[nodiscard]] std::uint64_t replayFallbacks() const noexcept { return replayFallbacks_; }
  /// Approximate bytes currently held by live staged checkpoints.
  [[nodiscard]] std::uint64_t liveSnapshotBytes() const noexcept { return liveBytes_; }

 private:
  /// One live staged depth with the approximate bytes it pinned when staged
  /// (kept sorted by depth: staging is strictly deepening between rollbacks).
  struct StageInfo {
    std::size_t depth = 0;
    std::uint64_t bytes = 0;
  };

  /// Evict shallowest-first until the ledger fits the budget; never evicts
  /// the deepest (just-staged) stage — it is the imminent rollback target.
  void enforceBudget();
  /// Reconcile the ledger with a prepareNext decision: count a replay
  /// fallback if an evicted depth in (keepAtOrBelow, divergenceDepth] would
  /// have been the better rollback target, drop ledger entries above
  /// keepAtOrBelow, and (after a full restart) re-price surviving stages to
  /// their recorder-only cost.
  void settleStages(std::size_t keepAtOrBelow, std::size_t divergenceDepth,
                    bool repriceRecorderOnly);
  runtime::StackPool& stackPool_;
  trace::TraceRecorder& recorder_;
  bool incremental_;
  bool runtimeRollback_;
  std::uint64_t budgetBytes_;  ///< 0 = unlimited

  std::unique_ptr<runtime::Execution> exec_;
  bool pendingResume_ = false;
  std::size_t pendingStart_ = 0;
  std::uint64_t pendingElided_ = 0;
  std::uint64_t pendingReplayed_ = 0;

  std::uint64_t eventsElided_ = 0;
  std::uint64_t eventsReplayed_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t fullRestarts_ = 0;

  std::vector<StageInfo> stages_;          ///< live stages, sorted by depth
  std::vector<std::size_t> evictedDepths_; ///< evicted, still above no live stage
  std::uint64_t liveBytes_ = 0;
  std::uint64_t stagesCreated_ = 0;
  std::uint64_t bytesStaged_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t replayFallbacks_ = 0;
};

}  // namespace lazyhb::explore
