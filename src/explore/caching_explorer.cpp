#include "explore/caching_explorer.hpp"

#include "support/diagnostics.hpp"

namespace lazyhb::explore {

CachingExplorer::CachingExplorer(ExplorerOptions options, trace::Relation relation)
    : ExplorerBase(options), relation_(relation) {
  LAZYHB_CHECK(relation == trace::Relation::Full ||
               relation == trace::Relation::Lazy ||
               relation == trace::Relation::Value);
}

void CachingExplorer::runSearch(const Program& program) {
  TreeSearchState state;
  std::size_t startDepth = 0;
  for (;;) {
    if (budgetExhausted()) {
      result().hitScheduleLimit = true;
      return;
    }
    if (shouldStopForViolation()) {
      return;
    }
    TreeScheduler scheduler(
        state,
        [this] { return cache_.checkAndInsert(recorder().fingerprint(relation_)); },
        &prefixEngine(), startDepth);
    const runtime::Outcome outcome = executeSchedule(program, scheduler);
    if (outcome != runtime::Outcome::Abandoned && recorder().eventCount() > 0) {
      // The final event's prefix is never tested by the scheduler (there is
      // no further pick); seed it so later executions can prune against it.
      cache_.insert(recorder().fingerprint(relation_));
    }
    if (!state.advance()) {
      markComplete();
      return;
    }
    startDepth = prefixEngine().prepareNext(state.checkFromDepth);
  }
}

}  // namespace lazyhb::explore
