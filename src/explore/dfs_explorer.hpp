// lazyhb/explore/dfs_explorer.hpp
//
// Stateless depth-first enumeration of the schedule tree, and the reusable
// tree-search machinery (search stack + replaying scheduler) that the
// caching explorers build on.
//
// The search tree has one node per scheduling point; a node's children are
// the enabled threads at that point. Exploration is stateless: to visit a
// sibling subtree the program is re-executed from scratch with the prefix of
// choices replayed. TreeScheduler distinguishes the replayed prefix from the
// new suffix (checkFromDepth) so prune hooks — the HBR caches — never test a
// schedule against its own previously explored path.

#pragma once

#include <functional>
#include <vector>

#include "explore/explorer.hpp"
#include "support/thread_set.hpp"

namespace lazyhb::explore {

/// One node of the DFS tree: the enabled set met at first visit, the
/// children already fully explored, and the child being explored now.
struct SearchNode {
  support::ThreadSet enabled;
  support::ThreadSet done;
  int chosen = -1;
};

/// The mutable search state threaded through executions.
struct TreeSearchState {
  std::vector<SearchNode> nodes;
  /// Depth of the first choice that differs from the previous execution;
  /// events at shallower depths are replays.
  std::size_t checkFromDepth = 0;

  /// Advance to the next unexplored sibling, deepest first. Truncates the
  /// stack below the flipped node. Returns false when the tree is exhausted.
  bool advance();
};

/// Scheduler that replays `state.nodes` and extends the tree depth-first.
/// `prunePrefix`, when set, is consulted once after every *new* (non-replay)
/// event; returning true abandons the execution (subtree pruned).
class TreeScheduler final : public runtime::Scheduler {
 public:
  TreeScheduler(TreeSearchState& state, std::function<bool()> prunePrefix = {});

  int pick(runtime::Execution& exec) override;

 private:
  TreeSearchState& state_;
  std::function<bool()> prunePrefix_;
  std::size_t depth_ = 0;
};

/// Naive systematic enumeration: visits every schedule (up to the limit).
/// The baseline every reduction is measured against, and the oracle the
/// property tests compare DPOR and the caching explorers to.
class DfsExplorer final : public ExplorerBase {
 public:
  explicit DfsExplorer(ExplorerOptions options) : ExplorerBase(options) {}

 protected:
  void runSearch(const Program& program) override;
};

}  // namespace lazyhb::explore
