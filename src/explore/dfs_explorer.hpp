// lazyhb/explore/dfs_explorer.hpp
//
// Stateless depth-first enumeration of the schedule tree, and the reusable
// tree-search machinery (search stack + replaying scheduler) that the
// caching explorers build on.
//
// The search tree has one node per scheduling point; a node's children are
// the enabled threads at that point. The walk is driven by a persistent
// schedule-tree cursor: advance() names the divergence depth of the next
// schedule, and the prefix-replay engine (explore/prefix_replay.hpp)
// decides how to get back there — rolling a persistent execution back to a
// staged checkpoint (nothing before the divergence is re-executed), or
// re-executing with the prefix of choices replayed (the stateless
// fallback). TreeScheduler replays any residual prefix from its start
// depth, stages checkpoints at nodes the search will revisit, and
// distinguishes replays from the new suffix (checkFromDepth) so prune
// hooks — the HBR caches — never test a schedule against its own
// previously explored path.

#pragma once

#include <functional>
#include <vector>

#include "explore/explorer.hpp"
#include "explore/prefix_replay.hpp"
#include "support/thread_set.hpp"

namespace lazyhb::explore {

/// One node of the DFS tree: the enabled set met at first visit, the
/// children already fully explored, and the child being explored now.
struct SearchNode {
  support::ThreadSet enabled;
  support::ThreadSet done;
  int chosen = -1;
};

/// The mutable search state threaded through executions.
struct TreeSearchState {
  std::vector<SearchNode> nodes;
  /// Depth of the first choice that differs from the previous execution;
  /// events at shallower depths are replays.
  std::size_t checkFromDepth = 0;

  /// Advance to the next unexplored sibling, deepest first. Truncates the
  /// stack below the flipped node. Returns false when the tree is exhausted.
  bool advance();
};

/// Scheduler that replays `state.nodes` and extends the tree depth-first.
/// `prunePrefix`, when set, is consulted once after every *new* (non-replay)
/// event; returning true abandons the execution (subtree pruned).
/// `engine`, when set, is asked to stage a checkpoint at every node the
/// search will revisit; `startDepth` is the absolute depth a rolled-back
/// execution resumes from (0 for a fresh run).
class TreeScheduler final : public runtime::Scheduler {
 public:
  explicit TreeScheduler(TreeSearchState& state,
                         std::function<bool()> prunePrefix = {},
                         PrefixReplayEngine* engine = nullptr,
                         std::size_t startDepth = 0);

  int pick(runtime::Execution& exec) override;

 private:
  TreeSearchState& state_;
  std::function<bool()> prunePrefix_;
  PrefixReplayEngine* engine_;
  std::size_t depth_;
};

/// Naive systematic enumeration: visits every schedule (up to the limit).
/// The baseline every reduction is measured against, and the oracle the
/// property tests compare DPOR and the caching explorers to.
class DfsExplorer final : public ExplorerBase {
 public:
  explicit DfsExplorer(ExplorerOptions options) : ExplorerBase(options) {}

 protected:
  void runSearch(const Program& program) override;
};

}  // namespace lazyhb::explore
