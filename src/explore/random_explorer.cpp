#include "explore/random_explorer.hpp"

namespace lazyhb::explore {

namespace {

class RandomScheduler final : public runtime::Scheduler {
 public:
  explicit RandomScheduler(std::uint64_t seed) : rng_(seed) {}

  int pick(runtime::Execution& exec) override {
    const support::ThreadSet enabled = exec.enabled();
    auto nth = rng_.below(static_cast<std::uint64_t>(enabled.size()));
    int tid = enabled.first();
    while (nth-- > 0) {
      tid = enabled.next(tid);
    }
    return tid;
  }

 private:
  support::Rng rng_;
};

}  // namespace

void RandomExplorer::runSearch(const Program& program) {
  for (std::uint64_t k = 0; !budgetExhausted(); ++k) {
    if (shouldStopForViolation()) return;
    RandomScheduler scheduler(support::mix64(seed_ + k));
    (void)executeSchedule(program, scheduler);
  }
  result().hitScheduleLimit = true;
}

}  // namespace lazyhb::explore
