#include "explore/explorer.hpp"

#include <cstdlib>

#include "support/diagnostics.hpp"

namespace lazyhb::explore {

std::uint64_t defaultSnapshotBudgetBytes() noexcept {
  static const std::uint64_t value = [] {
    if (const char* env = std::getenv("LAZYHB_SNAPSHOT_BUDGET")) {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(env, &end, 10);
      if (end != env && *end == '\0') return static_cast<std::uint64_t>(parsed);
    }
    return std::uint64_t{256} * 1024 * 1024;
  }();
  return value;
}

ExplorerBase::ExplorerBase(ExplorerOptions options)
    : options_(options),
      recorder_(trace::TraceRecorder::Options{options.keepPredecessors,
                                              options.detectRaces}),
      engine_(stackPool_, recorder_, options.incremental,
              options.checkpointable &&
                  runtime::Execution::checkpointingSupported(),
              options.snapshotBudgetBytes) {}

ExplorationResult ExplorerBase::explore(const Program& program) {
  LAZYHB_CHECK(!explored_);
  explored_ = true;
  if (options_.wallTimeoutSeconds > 0.0) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(options_.wallTimeoutSeconds));
  }
  runSearch(program);
  result_.distinctHbrs = terminalHbrs_.size();
  result_.distinctLazyHbrs = terminalLazyHbrs_.size();
  result_.distinctValueClasses = terminalValueClasses_.size();
  result_.distinctStates = terminalStates_.size();
  result_.eventsElided = engine_.eventsElided();
  result_.eventsReplayed = engine_.eventsReplayed();
  result_.checkpointStats.enabled = engine_.incremental();
  result_.checkpointStats.stages = engine_.stagesCreated();
  result_.checkpointStats.bytesStaged = engine_.bytesStaged();
  result_.checkpointStats.evictions = engine_.evictions();
  result_.checkpointStats.replayFallbacks = engine_.replayFallbacks();
  if (options_.checkTheorems) {
    result_.theorem21 = thm21_.stats();
    result_.theorem22 = thm22_.stats();
    result_.theoremValue = thmValue_.stats();
  }
  result_.races = raceAggregator_.distinctRaces();
  if (const core::HbrCache* cache = prefixCache()) {
    result_.cacheStats.enabled = true;
    result_.cacheStats.lookups = cache->stats().lookups;
    result_.cacheStats.hits = cache->stats().hits;
    result_.cacheStats.insertions = cache->stats().insertions;
    result_.cacheStats.entries = cache->size();
    result_.cacheStats.approxBytes = cache->approxMemoryBytes();
  }
  return result_;
}

bool ExplorerBase::budgetExhausted() const noexcept {
  return deadlineExpired_ || result_.schedulesExecuted >= options_.scheduleLimit;
}

bool ExplorerBase::shouldStopForViolation() const noexcept {
  return options_.stopOnFirstViolation && !result_.violations.empty();
}

runtime::Outcome ExplorerBase::executeSchedule(const Program& program,
                                               runtime::Scheduler& scheduler) {
  if (budgetExhausted()) {
    result_.hitScheduleLimit = true;
  }
  runtime::Config config;
  config.maxEventsPerSchedule = options_.maxEventsPerSchedule;
  config.memoryModel = options_.memoryModel;
  const PrefixReplayEngine::Session session = engine_.beginSchedule(config, &recorder_);
  runtime::Execution& exec = *session.exec;
  const runtime::Outcome outcome =
      session.resumed ? exec.resume(scheduler) : exec.run(program, scheduler);

  ++result_.schedulesExecuted;
  result_.totalEvents += exec.events().size();
  // Store-buffer stats. The engine's counters are checkpoint/rollback-aware
  // (snapshotted scalars), so at schedule end they always read this full
  // schedule's totals — summing them here is byte-identical across the
  // incremental replay modes, exactly like totalEvents.
  result_.flushEvents += exec.flushEventCount();
  result_.fenceEvents += exec.fenceEventCount();
  if (exec.maxBufferedStores() > result_.maxBufferedStores) {
    result_.maxBufferedStores = exec.maxBufferedStores();
  }

  switch (outcome) {
    case runtime::Outcome::Terminal: {
      ++result_.terminalSchedules;
      const support::Hash128 hbr = recorder_.fingerprint(trace::Relation::Full);
      const support::Hash128 lazy = recorder_.fingerprint(trace::Relation::Lazy);
      const support::Hash128 value = recorder_.fingerprint(trace::Relation::Value);
      const support::Hash128 state = exec.stateFingerprint();
      terminalHbrs_.insert(hbr);
      terminalLazyHbrs_.insert(lazy);
      terminalValueClasses_.insert(value);
      terminalStates_.insert(state);
      if (options_.checkTheorems) {
        thm21_.record(hbr, state);
        thm22_.record(lazy, state);
        thmValue_.record(value, state);
      }
      break;
    }
    case runtime::Outcome::Deadlock:
    case runtime::Outcome::AssertionFailure:
    case runtime::Outcome::UsageError: {
      ++result_.violationSchedules;
      if (result_.violations.size() < options_.maxViolationsKept) {
        const runtime::Violation& v = exec.violation();
        result_.violations.push_back(ViolationRecord{v.kind, v.message, v.schedule});
      }
      break;
    }
    case runtime::Outcome::Abandoned:
      ++result_.prunedSchedules;
      break;
    case runtime::Outcome::EventLimit:
      break;  // counted as executed, contributes no terminal data
  }

  if (options_.detectRaces) {
    raceAggregator_.ingest(recorder_);
  }
  if (options_.onScheduleTick && options_.tickIntervalSchedules > 0 &&
      result_.schedulesExecuted % options_.tickIntervalSchedules == 0) {
    options_.onScheduleTick(result_.schedulesExecuted);
  }
  if (options_.wallTimeoutSeconds > 0.0 && !deadlineExpired_ &&
      std::chrono::steady_clock::now() >= deadline_) {
    deadlineExpired_ = true;
    result_.timedOut = true;
  }
  return outcome;
}

}  // namespace lazyhb::explore
