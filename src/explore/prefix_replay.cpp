#include "explore/prefix_replay.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace lazyhb::explore {

PrefixReplayEngine::PrefixReplayEngine(runtime::StackPool& stackPool,
                                       trace::TraceRecorder& recorder,
                                       bool incremental, bool runtimeRollback,
                                       std::uint64_t snapshotBudgetBytes)
    : stackPool_(stackPool),
      recorder_(recorder),
      incremental_(incremental),
      runtimeRollback_(incremental && runtimeRollback),
      budgetBytes_(snapshotBudgetBytes) {
  LAZYHB_CHECK(!runtimeRollback_ || runtime::Execution::checkpointingSupported());
}

void PrefixReplayEngine::stageCheckpoint(runtime::Execution& exec, std::size_t depth) {
  if (!incremental_) return;
  // While the recorder is skipping a replayed prefix its depth lags the
  // scheduler's; those depths are already staged from an earlier schedule.
  // The runtime side must not stage there either: exec and recorder
  // checkpoints are rolled back in lockstep by prepareNext, so a depth
  // staged on one but not the other would make that rollback fail.
  if (recorder_.eventCount() != depth) return;
  const bool fresh = stages_.empty() || stages_.back().depth < depth;
  recorder_.checkpoint();
  std::uint64_t execBytes = 0;
  if (runtimeRollback_) {
    LAZYHB_CHECK(&exec == exec_.get());
    // After a full restart the ledger can already hold recorder-only
    // stages; the fresh execution's first checkpoint then lands on a
    // ledgered depth and only the runtime share is new cost.
    const bool execFresh = exec.deepestCheckpointAtOrBelow(depth) != depth;
    exec.checkpoint();
    if (execFresh) execBytes = exec.checkpointApproxBytes(depth);
  }
  if (fresh) {
    StageInfo info;
    info.depth = depth;
    info.bytes = recorder_.checkpointApproxBytes(depth) + execBytes;
    stages_.push_back(info);
    liveBytes_ += info.bytes;
    ++stagesCreated_;
    bytesStaged_ += info.bytes;
  } else if (execBytes != 0) {
    stages_.back().bytes += execBytes;
    liveBytes_ += execBytes;
    bytesStaged_ += execBytes;
  } else {
    return;  // nothing new was pinned; budget unchanged
  }
  enforceBudget();
}

void PrefixReplayEngine::enforceBudget() {
  if (budgetBytes_ == 0) return;
  // Shallowest-first: of all live stages the shallowest is the one furthest
  // from the frontier of the deepest-first tree walk, i.e. the one whose
  // next use is furthest in the future. The deepest (just-staged) stage is
  // never evicted — it is the imminent rollback target.
  while (liveBytes_ > budgetBytes_ && stages_.size() > 1) {
    const StageInfo victim = stages_.front();
    stages_.erase(stages_.begin());
    liveBytes_ -= victim.bytes;
    (void)recorder_.evictCheckpoint(victim.depth);
    if (runtimeRollback_ && exec_ != nullptr) {
      (void)exec_->evictCheckpoint(victim.depth);
    }
    evictedDepths_.push_back(victim.depth);
    ++evictions_;
  }
}

void PrefixReplayEngine::settleStages(std::size_t keepAtOrBelow,
                                      std::size_t divergenceDepth,
                                      bool repriceRecorderOnly) {
  // A divergence that lands strictly above the surviving rollback target
  // but at or below an evicted depth is the cost of the budget: had that
  // stage survived, the rollback would have been deeper. Count it once per
  // prepareNext; the extra replay distance shows up in eventsReplayed /
  // fullRestarts either way.
  bool fallback = false;
  for (const std::size_t e : evictedDepths_) {
    if (e > keepAtOrBelow && e <= divergenceDepth) fallback = true;
  }
  if (fallback) ++replayFallbacks_;
  // Evicted depths above the rollback target are finished subtrees or the
  // just-counted fallback; only shallower ones can still shadow a future,
  // shallower divergence.
  evictedDepths_.erase(
      std::remove_if(evictedDepths_.begin(), evictedDepths_.end(),
                     [&](std::size_t e) { return e > keepAtOrBelow; }),
      evictedDepths_.end());
  while (!stages_.empty() && stages_.back().depth > keepAtOrBelow) {
    liveBytes_ -= stages_.back().bytes;
    stages_.pop_back();
  }
  if (keepAtOrBelow == 0) {
    // The recorder was not armed: it resets wholesale on the next
    // execution start, taking any depth-0 checkpoint with it.
    stages_.clear();
    evictedDepths_.clear();
    liveBytes_ = 0;
  }
  if (repriceRecorderOnly) {
    // The persistent execution was retired: surviving stages keep only
    // their recorder share alive, so re-price them before the next
    // enforceBudget sees stale runtime bytes.
    liveBytes_ = 0;
    for (StageInfo& s : stages_) {
      s.bytes = recorder_.checkpointApproxBytes(s.depth);
      liveBytes_ += s.bytes;
    }
  }
}

std::size_t PrefixReplayEngine::prepareNext(std::size_t divergenceDepth) {
  pendingResume_ = false;
  pendingStart_ = 0;
  pendingElided_ = 0;
  pendingReplayed_ = divergenceDepth;
  if (!incremental_) return 0;

  if (runtimeRollback_ && exec_ != nullptr) {
    const std::size_t depth = exec_->deepestCheckpointAtOrBelow(divergenceDepth);
    if (depth != runtime::Execution::kNoCheckpoint && depth > 0) {
      exec_->rollbackTo(depth);
      recorder_.rollbackTo(depth);
      pendingResume_ = true;
      pendingStart_ = depth;
      pendingElided_ = depth;
      pendingReplayed_ = divergenceDepth - depth;
      ++rollbacks_;
      settleStages(depth, divergenceDepth, /*repriceRecorderOnly=*/false);
      return depth;
    }
    // No usable runtime checkpoint: retire the persistent execution (its
    // destructor runs the leftover fibers forward) and re-execute, still
    // eliding the recorder's share of the prefix below.
    exec_.reset();
    ++fullRestarts_;
  }

  const std::size_t depth = recorder_.deepestCheckpointAtOrBelow(divergenceDepth);
  const bool armed = depth != trace::TraceRecorder::kNoCheckpoint && depth > 0;
  if (armed) {
    recorder_.armResume(depth);
  }
  // Not armed: the recorder resets on the next execution start, clearing
  // every staged checkpoint — drop the whole ledger to match.
  settleStages(armed ? depth : 0, divergenceDepth,
               /*repriceRecorderOnly=*/runtimeRollback_);
  return 0;
}

PrefixReplayEngine::Session PrefixReplayEngine::beginSchedule(
    const runtime::Config& config, runtime::ExecutionObserver* observer) {
  eventsElided_ += pendingElided_;
  eventsReplayed_ += pendingReplayed_;
  pendingElided_ = 0;
  pendingReplayed_ = 0;
  if (pendingResume_) {
    pendingResume_ = false;
    return Session{exec_.get(), true, pendingStart_};
  }
  exec_ = std::make_unique<runtime::Execution>(config, stackPool_, observer);
  if (runtimeRollback_) exec_->enableResumable();
  return Session{exec_.get(), false, 0};
}

}  // namespace lazyhb::explore
