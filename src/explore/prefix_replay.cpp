#include "explore/prefix_replay.hpp"

#include "support/diagnostics.hpp"

namespace lazyhb::explore {

PrefixReplayEngine::PrefixReplayEngine(runtime::StackPool& stackPool,
                                       trace::TraceRecorder& recorder,
                                       bool incremental, bool runtimeRollback)
    : stackPool_(stackPool),
      recorder_(recorder),
      incremental_(incremental),
      runtimeRollback_(incremental && runtimeRollback) {
  LAZYHB_CHECK(!runtimeRollback_ || runtime::Execution::checkpointingSupported());
}

void PrefixReplayEngine::stageCheckpoint(runtime::Execution& exec, std::size_t depth) {
  if (!incremental_) return;
  // While the recorder is skipping a replayed prefix its depth lags the
  // scheduler's; those depths are already staged from an earlier schedule.
  if (recorder_.eventCount() == depth) {
    recorder_.checkpoint();
  }
  if (runtimeRollback_) {
    LAZYHB_CHECK(&exec == exec_.get());
    exec.checkpoint();
  }
}

std::size_t PrefixReplayEngine::prepareNext(std::size_t divergenceDepth) {
  pendingResume_ = false;
  pendingStart_ = 0;
  pendingElided_ = 0;
  pendingReplayed_ = divergenceDepth;
  if (!incremental_) return 0;

  if (runtimeRollback_ && exec_ != nullptr) {
    const std::size_t depth = exec_->deepestCheckpointAtOrBelow(divergenceDepth);
    if (depth != runtime::Execution::kNoCheckpoint && depth > 0) {
      exec_->rollbackTo(depth);
      recorder_.rollbackTo(depth);
      pendingResume_ = true;
      pendingStart_ = depth;
      pendingElided_ = depth;
      pendingReplayed_ = divergenceDepth - depth;
      ++rollbacks_;
      return depth;
    }
    // No usable runtime checkpoint: retire the persistent execution (its
    // destructor runs the leftover fibers forward) and re-execute, still
    // eliding the recorder's share of the prefix below.
    exec_.reset();
    ++fullRestarts_;
  }

  const std::size_t depth = recorder_.deepestCheckpointAtOrBelow(divergenceDepth);
  if (depth != trace::TraceRecorder::kNoCheckpoint && depth > 0) {
    recorder_.armResume(depth);
  }
  return 0;
}

PrefixReplayEngine::Session PrefixReplayEngine::beginSchedule(
    const runtime::Config& config, runtime::ExecutionObserver* observer) {
  eventsElided_ += pendingElided_;
  eventsReplayed_ += pendingReplayed_;
  pendingElided_ = 0;
  pendingReplayed_ = 0;
  if (pendingResume_) {
    pendingResume_ = false;
    return Session{exec_.get(), true, pendingStart_};
  }
  exec_ = std::make_unique<runtime::Execution>(config, stackPool_, observer);
  if (runtimeRollback_) exec_->enableResumable();
  return Session{exec_.get(), false, 0};
}

}  // namespace lazyhb::explore
