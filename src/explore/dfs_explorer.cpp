#include "explore/dfs_explorer.hpp"

#include "support/diagnostics.hpp"

namespace lazyhb::explore {

bool TreeSearchState::advance() {
  while (!nodes.empty()) {
    SearchNode& node = nodes.back();
    node.done.insert(node.chosen);
    const support::ThreadSet remaining = node.enabled.minus(node.done);
    if (!remaining.empty()) {
      node.chosen = remaining.first();
      checkFromDepth = nodes.size() - 1;
      return true;
    }
    nodes.pop_back();
  }
  return false;
}

TreeScheduler::TreeScheduler(TreeSearchState& state, std::function<bool()> prunePrefix,
                             PrefixReplayEngine* engine, std::size_t startDepth)
    : state_(state),
      prunePrefix_(std::move(prunePrefix)),
      engine_(engine),
      depth_(startDepth) {}

int TreeScheduler::pick(runtime::Execution& exec) {
  // The event committed by the previous pick is the deepest prefix; test it
  // against the prune hook unless it was a replay.
  if (prunePrefix_ && depth_ > 0 && depth_ - 1 >= state_.checkFromDepth) {
    if (prunePrefix_()) {
      return kAbandon;
    }
  }
  if (depth_ < state_.nodes.size()) {
    const SearchNode& node = state_.nodes[depth_];
    LAZYHB_CHECK(exec.enabled().contains(node.chosen));
    // A replayed node with unexplored siblings left is a future divergence
    // point: keep it checkpointed.
    if (engine_ != nullptr &&
        !node.enabled.minus(node.done).minus(support::ThreadSet::single(node.chosen))
             .empty()) {
      engine_->stageCheckpoint(exec, depth_);
    }
    ++depth_;
    return node.chosen;
  }
  SearchNode node;
  node.enabled = exec.enabled();
  node.chosen = node.enabled.first();
  state_.nodes.push_back(node);
  if (engine_ != nullptr && node.enabled.size() > 1) {
    engine_->stageCheckpoint(exec, depth_);
  }
  ++depth_;
  return node.chosen;
}

void DfsExplorer::runSearch(const Program& program) {
  TreeSearchState state;
  std::size_t startDepth = 0;
  for (;;) {
    if (budgetExhausted()) {
      result().hitScheduleLimit = true;
      return;
    }
    if (shouldStopForViolation()) {
      return;
    }
    TreeScheduler scheduler(state, {}, &prefixEngine(), startDepth);
    (void)executeSchedule(program, scheduler);
    if (!state.advance()) {
      markComplete();
      return;
    }
    startDepth = prefixEngine().prepareNext(state.checkFromDepth);
  }
}

}  // namespace lazyhb::explore
