// lazyhb/explore/replay.hpp
//
// Deterministic replay of a recorded schedule (the `schedule` field of a
// ViolationRecord, or Execution::choices()). Used to reproduce violations
// with full tracing enabled, and by the examples to pretty-print the
// happens-before structure of a specific interleaving.

#pragma once

#include <string>
#include <vector>

#include "explore/explorer.hpp"
#include "trace/trace_recorder.hpp"

namespace lazyhb::explore {

/// Scheduler that follows a fixed choice list, then falls back to the
/// lowest-numbered enabled thread once the list is exhausted. A choice that
/// is not currently enabled (e.g. a schedule recorded for a different
/// program) abandons the execution (Outcome::Abandoned) rather than abort.
class FixedScheduler final : public runtime::Scheduler {
 public:
  explicit FixedScheduler(std::vector<int> choices) : choices_(std::move(choices)) {}

  int pick(runtime::Execution& exec) override;

 private:
  std::vector<int> choices_;
  std::size_t step_ = 0;
};

struct ReplayResult {
  runtime::Outcome outcome = runtime::Outcome::Terminal;
  std::string violationMessage;
  support::Hash128 hbrFingerprint;
  support::Hash128 lazyFingerprint;
  support::Hash128 stateFingerprint;
  std::size_t eventCount = 0;
  std::string renderedTrace;  ///< schedule with inter-thread HBR edges
  std::vector<trace::RaceReport> races;
};

struct ReplayOptions {
  bool renderTrace = true;
  trace::Relation renderRelation = trace::Relation::Full;
  bool detectRaces = false;
  std::uint32_t maxEventsPerSchedule = 1u << 16;
  /// Must match the model the schedule was found under: a TSO schedule's
  /// flush picks are meaningless to an SC execution (and vice versa the
  /// pick sequences diverge at the first buffered store).
  memory::MemoryModel memoryModel = memory::MemoryModel::Sc;
};

/// Re-execute `program` following `choices`.
[[nodiscard]] ReplayResult replaySchedule(const Program& program,
                                          const std::vector<int>& choices,
                                          const ReplayOptions& options = {});

}  // namespace lazyhb::explore
