// lazyhb/explore/random_explorer.hpp
//
// Uniform random scheduling: each schedule picks uniformly among the
// enabled threads at every point. No reduction — this is the quick-and-dirty
// bug hunter and the fuzzing backend of the property-test suite (random
// schedules feed the Theorem 2.1/2.2 checkers with diverse linearizations).
// Deterministic given (seed): schedule k is reproducible from seed+k.

#pragma once

#include "explore/explorer.hpp"
#include "support/rng.hpp"

namespace lazyhb::explore {

class RandomExplorer final : public ExplorerBase {
 public:
  RandomExplorer(ExplorerOptions options, std::uint64_t seed)
      : ExplorerBase(options), seed_(seed) {}

 protected:
  void runSearch(const Program& program) override;

 private:
  std::uint64_t seed_;
};

}  // namespace lazyhb::explore
