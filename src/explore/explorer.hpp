// lazyhb/explore/explorer.hpp
//
// The exploration framework: an Explorer repeatedly executes a program under
// controlled schedules until its search space or budget is exhausted, and
// accumulates the statistics the paper's evaluation is built from —
// schedules executed, distinct terminal HBRs / lazy HBRs / states, and any
// property violations found (with replayable schedules).
//
// Concrete strategies:
//   DfsExplorer      — naive depth-first enumeration of all schedules.
//   DporExplorer     — Flanagan–Godefroid dynamic partial-order reduction
//                      with optional sleep sets (explore/dpor_explorer.hpp).
//   CachingExplorer  — DFS with HBR-prefix caching, parameterised on the
//                      relation: Full gives Musuvathi–Qadeer HBR caching,
//                      Lazy gives the paper's lazy HBR caching
//                      (explore/caching_explorer.hpp).
//   RandomExplorer   — uniform random walks (explore/random_explorer.hpp).

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/equivalence.hpp"
#include "core/hbr_cache.hpp"
#include "core/race_detector.hpp"
#include "explore/prefix_replay.hpp"
#include "memory/memory_model.hpp"
#include "runtime/execution.hpp"
#include "support/hash.hpp"
#include "trace/trace_recorder.hpp"

namespace lazyhb::explore {

/// A program under test: a callable run as thread 0 of every execution.
/// Must be re-runnable (each schedule re-executes it from scratch) and
/// deterministic apart from scheduling.
using Program = std::function<void()>;

/// Default byte budget for the incremental engine's staged snapshots (see
/// ExplorerOptions::snapshotBudgetBytes): the LAZYHB_SNAPSHOT_BUDGET
/// environment variable when set (bytes; 0 = unlimited), else 256 MiB —
/// roomy next to the HbrCache approxMemoryBytes footprints the campaign
/// reports, so eviction only engages on genuinely deep trees.
[[nodiscard]] std::uint64_t defaultSnapshotBudgetBytes() noexcept;

struct ExplorerOptions {
  /// Maximum number of executions (the paper's experiments use 100,000).
  std::uint64_t scheduleLimit = 100'000;
  /// Per-schedule event budget (guards against unbounded loops).
  std::uint32_t maxEventsPerSchedule = 1u << 16;
  /// Stop the whole exploration at the first violation (testing-tool mode).
  /// The paper's counting experiments keep exploring; that is the default.
  bool stopOnFirstViolation = false;
  /// Run the sync-HB data-race detector on every execution.
  bool detectRaces = false;
  /// Record per-event predecessor lists (exact canonical forms in tests).
  bool keepPredecessors = false;
  /// Feed every terminal schedule through the Theorem 2.1/2.2 checkers.
  bool checkTheorems = false;
  /// Keep at most this many violation records.
  std::uint32_t maxViolationsKept = 16;
  /// Incremental prefix replay (explore/prefix_replay.hpp): tree searches
  /// checkpoint at revisitable scheduling points and roll back instead of
  /// re-running the shared prefix of consecutive schedules. Counts are
  /// byte-identical either way; only wall time changes.
  bool incremental = true;
  /// The program under test satisfies the checkpointable contract
  /// (runtime/execution.hpp): all cross-schedule state in registered lazyhb
  /// objects or trivially-copyable stack locals. Enables full runtime
  /// rollback on fast-fiber builds; without it (or under ASan/ucontext)
  /// incremental mode still elides the recorder's share of replayed
  /// prefixes.
  bool checkpointable = false;
  /// Byte budget for staged incremental-replay snapshots (runtime fiber
  /// images plus recorder cursors), 0 = unlimited. When staging would
  /// exceed the budget, the engine evicts the shallowest staged depth
  /// first — the one furthest from the frontier of a deepest-first tree
  /// walk — and later divergences into the evicted region fall back to
  /// replaying from the deepest surviving shallower stage (or a full
  /// restart). Counts are byte-identical at any budget; only wall time
  /// and memory change. ParallelExplorer splits this evenly across its
  /// workers so the scenario-wide footprint stays bounded.
  std::uint64_t snapshotBudgetBytes = defaultSnapshotBudgetBytes();
  /// Shard the schedule tree of this one scenario across this many OS
  /// threads (explore/parallel_explorer.hpp). 1 = classic sequential
  /// search. Only the tree searches with order-independent counts support
  /// sharding (dfs and the caching explorers); for other strategies — or
  /// option combinations that are inherently order-sensitive
  /// (stopOnFirstViolation, checkTheorems) — the factory falls back to the
  /// sequential explorer and this field is advisory. All observable counts
  /// are byte-identical at any worker count.
  int workers = 1;
  /// Memory model every execution runs under (memory/memory_model.hpp).
  /// Sc is the default and leaves all behaviour — counts, fingerprints,
  /// event labels — byte-identical to a build without the field. Tso adds
  /// per-thread store buffers whose flush points become scheduler-visible
  /// transitions; every strategy explores them like thread picks.
  memory::MemoryModel memoryModel = memory::MemoryModel::Sc;
  /// Wall-clock budget for the whole exploration in seconds (0 = none).
  /// Checked at schedule boundaries; on expiry the search stops and the
  /// result is marked timedOut — its counts are then a wall-clock-dependent
  /// prefix, so report consumers (bench_diff, the merger) treat timed-out
  /// cells as incomparable. A nonzero timeout is order-sensitive and
  /// disables intra-scenario sharding (ParallelExplorer::shardable).
  double wallTimeoutSeconds = 0.0;
  /// Progress hook: invoked synchronously on the exploring thread after
  /// every tickIntervalSchedules-th schedule with the running schedule
  /// count. Must not re-enter the explorer. Order-sensitive for sharding
  /// purposes (ticks from racing workers would interleave), so a set
  /// callback also disables intra-scenario sharding.
  std::function<void(std::uint64_t schedulesExecuted)> onScheduleTick;
  std::uint64_t tickIntervalSchedules = 0;  ///< 0 disables progress ticks
};

/// A recorded property violation with the schedule that reproduces it.
struct ViolationRecord {
  runtime::Outcome kind = runtime::Outcome::Terminal;
  std::string message;
  std::vector<int> schedule;  ///< thread picked at each step; replayable
};

/// Snapshot of an explorer's HBR prefix cache at the end of the search.
/// All-zero (enabled == false) for strategies that consult no cache; the
/// approximate footprint makes cache growth visible per campaign cell.
struct PrefixCacheStats {
  bool enabled = false;
  std::uint64_t lookups = 0;
  std::uint64_t hits = 0;        ///< prefixes pruned as already seen
  std::uint64_t insertions = 0;
  std::uint64_t entries = 0;     ///< fingerprints resident at the end
  std::uint64_t approxBytes = 0; ///< HbrCache::approxMemoryBytes()
};

/// Checkpoint economics of the incremental prefix-replay engine for one
/// exploration (PrefixReplayEngine). All-zero with enabled == false when
/// incremental mode is off. Stage/eviction placement is a pure performance
/// policy — observable schedule counts are byte-identical regardless — so
/// these feed the bench report scoreboard, never count comparisons.
struct CheckpointStats {
  bool enabled = false;
  std::uint64_t stages = 0;          ///< distinct depths staged over the run
  std::uint64_t bytesStaged = 0;     ///< sum of approx bytes at staging time
  std::uint64_t evictions = 0;       ///< stages dropped to honour the budget
  /// prepareNext calls where an evicted stage would have served the
  /// divergence better than the deepest surviving one (the cost of the
  /// budget: extra replay distance).
  std::uint64_t replayFallbacks = 0;
};

/// Per-worker share of a parallel exploration (explore/parallel_explorer.hpp):
/// how many schedules the worker ran and how many frontier tasks it stole.
/// The campaign report (schema v4) surfaces these so load imbalance is
/// visible per cell.
struct WorkerShare {
  std::uint64_t schedulesVisited = 0;
  std::uint64_t tasksStolen = 0;
};

/// How a parallel exploration distributed its work. `workers == 0` means
/// the search ran sequentially (no pool was involved at all).
struct ParallelStats {
  int workers = 0;
  std::uint64_t frontierJobs = 0;  ///< subtree tasks executed across the pool
  /// The schedule budget bit mid-flight: parallel order would then decide
  /// *which* schedules fit the budget, so the run was aborted and redone
  /// sequentially (whether the budget bites at all is order-independent,
  /// so this fallback triggers identically at any worker count).
  bool fellBackSequential = false;
  std::vector<WorkerShare> byWorker;
};

struct ExplorationResult {
  std::uint64_t schedulesExecuted = 0;
  std::uint64_t terminalSchedules = 0;
  std::uint64_t violationSchedules = 0;
  std::uint64_t prunedSchedules = 0;   ///< abandoned mid-run (cache/sleep)
  std::uint64_t totalEvents = 0;       ///< logical events, elided ones included
  /// Prefix events never re-executed thanks to runtime rollback. The
  /// honest throughput metric divides executed events (totalEvents -
  /// eventsElided) by wall time, so elision is not double-counted as speed.
  std::uint64_t eventsElided = 0;
  /// Prefix events re-executed to reach a divergence point (the residual
  /// redundancy; their recording cost is elided whenever a recorder
  /// checkpoint covered them).
  std::uint64_t eventsReplayed = 0;
  std::uint64_t distinctHbrs = 0;      ///< terminal full-HBR fingerprints
  std::uint64_t distinctLazyHbrs = 0;  ///< terminal lazy-HBR fingerprints
  std::uint64_t distinctValueClasses = 0;  ///< terminal value-class fingerprints
  std::uint64_t distinctStates = 0;    ///< terminal state fingerprints
  bool hitScheduleLimit = false;
  bool complete = false;               ///< search space fully explored
  /// wallTimeoutSeconds expired mid-search: the counts above are a
  /// wall-clock-dependent prefix of the full exploration.
  bool timedOut = false;
  std::vector<ViolationRecord> violations;
  core::EquivalenceChecker::Stats theorem21;  ///< full HBR -> state (if enabled)
  core::EquivalenceChecker::Stats theorem22;  ///< lazy HBR -> state (if enabled)
  /// Value soundness: value fingerprint -> state must stay a function (the
  /// empirical bar the caching-value pruning rests on; same machinery as
  /// Theorems 2.1/2.2, populated when checkTheorems is on).
  core::EquivalenceChecker::Stats theoremValue;
  std::vector<trace::RaceReport> races;
  /// TSO store-buffer activity across all schedules (all zero under SC):
  /// flush events committed, fence events committed, and the deepest any
  /// thread's buffer got. Deterministic at any worker count / replay mode.
  std::uint64_t flushEvents = 0;
  std::uint64_t fenceEvents = 0;
  std::uint32_t maxBufferedStores = 0;
  PrefixCacheStats cacheStats;  ///< zero unless the strategy uses an HbrCache
  CheckpointStats checkpointStats;  ///< zero unless incremental replay ran
  ParallelStats parallel;       ///< zero-workers unless sharded (see above)

  [[nodiscard]] bool foundViolation() const noexcept { return !violations.empty(); }
};

/// The exploration interface: run a program's schedule space once, return
/// the accumulated statistics. Sequential strategies implement it through
/// ExplorerBase below; ParallelExplorer implements it directly (its result
/// is a merge of per-worker searches, not one ExplorerBase run).
class Explorer {
 public:
  virtual ~Explorer() = default;

  Explorer() = default;
  Explorer(const Explorer&) = delete;
  Explorer& operator=(const Explorer&) = delete;

  /// Run the full exploration. May be called once per explorer instance.
  [[nodiscard]] virtual ExplorationResult explore(const Program& program) = 0;

  [[nodiscard]] virtual const ExplorerOptions& options() const noexcept = 0;
};

/// Shared plumbing for the sequential explorers: owns the stack pool, the
/// trace recorder and the statistics, and runs one schedule at a time.
class ExplorerBase : public Explorer {
 public:
  explicit ExplorerBase(ExplorerOptions options);

  /// Run the full exploration. May be called once per explorer instance.
  [[nodiscard]] ExplorationResult explore(const Program& program) override;

  [[nodiscard]] const ExplorerOptions& options() const noexcept override {
    return options_;
  }

 protected:
  /// Strategy hook: run schedules (via executeSchedule) until done.
  virtual void runSearch(const Program& program) = 0;

  /// Strategy hook: the HBR prefix cache the search consulted, if any.
  /// explore() snapshots it into ExplorationResult::cacheStats.
  [[nodiscard]] virtual const core::HbrCache* prefixCache() const noexcept {
    return nullptr;
  }

  /// Execute one schedule under `scheduler`, updating all statistics. In
  /// incremental mode the execution may be the persistent rolled-back one
  /// (see prefixEngine()); statistics are identical either way. Returns
  /// the outcome.
  runtime::Outcome executeSchedule(const Program& program,
                                   runtime::Scheduler& scheduler);

  /// The incremental prefix-replay engine. Tree-search strategies hand it
  /// to their schedulers (checkpoint staging) and call prepareNext() with
  /// each divergence depth; the returned start depth seeds the next
  /// scheduler.
  [[nodiscard]] PrefixReplayEngine& prefixEngine() noexcept { return engine_; }

  /// True when the schedule budget is exhausted (strategies must stop).
  [[nodiscard]] bool budgetExhausted() const noexcept;

  /// True when the search should stop for a found violation.
  [[nodiscard]] bool shouldStopForViolation() const noexcept;

  [[nodiscard]] trace::TraceRecorder& recorder() noexcept { return recorder_; }
  [[nodiscard]] ExplorationResult& result() noexcept { return result_; }

  /// Mark the search as having visited every schedule class.
  void markComplete() noexcept { result_.complete = true; }

 private:
  ExplorerOptions options_;
  std::chrono::steady_clock::time_point deadline_{};  ///< zero: no timeout
  bool deadlineExpired_ = false;
  runtime::StackPool stackPool_;
  trace::TraceRecorder recorder_;
  ExplorationResult result_;
  std::unordered_set<support::Hash128, support::Hash128Hasher> terminalHbrs_;
  std::unordered_set<support::Hash128, support::Hash128Hasher> terminalLazyHbrs_;
  std::unordered_set<support::Hash128, support::Hash128Hasher> terminalValueClasses_;
  std::unordered_set<support::Hash128, support::Hash128Hasher> terminalStates_;
  core::EquivalenceChecker thm21_;
  core::EquivalenceChecker thm22_;
  core::EquivalenceChecker thmValue_;
  core::RaceAggregator raceAggregator_;
  PrefixReplayEngine engine_;  ///< after stackPool_/recorder_: destroyed first
  bool explored_ = false;
};

}  // namespace lazyhb::explore
