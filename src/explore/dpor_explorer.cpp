#include "explore/dpor_explorer.hpp"

#include "support/diagnostics.hpp"

namespace lazyhb::explore {

using core::OpSig;
using trace::Relation;

/// Per-execution scheduler driving the DPOR search state. Depth in the tree
/// equals the global event index (one pick commits one event), so
/// nodes_[i] is the state from which event i was chosen.
class DporScheduler final : public runtime::Scheduler {
 public:
  DporScheduler(DporExplorer& owner, std::size_t startDepth)
      : owner_(owner), depth_(startDepth) {}

  int pick(runtime::Execution& exec) override {
    // Experimental §4 combination: prune on cached (lazy) HBR prefixes.
    if (owner_.dpor_.cachePrefixes && depth_ > 0 &&
        depth_ - 1 >= owner_.checkFromDepth_) {
      if (owner_.cache_.checkAndInsert(
              owner_.recorder().fingerprint(*owner_.dpor_.cachePrefixes))) {
        return kAbandon;
      }
    }

    if (depth_ < owner_.nodes_.size()) {
      // Replay (or enter the flipped sibling at the deepest retained node).
      const auto& node = owner_.nodes_[depth_];
      LAZYHB_CHECK(exec.enabled().contains(node.chosen));
      // Backtrack-aware staging: checkpoint only where the search is
      // *known* to return — an unexplored thread already sits in the
      // node's backtrack set. A backtrack point added later by a deeper
      // race analysis finds no stage here and falls back to the deepest
      // surviving shallower one (or a full restart); trading that rare
      // extra replay for not snapshotting every multi-enabled node on the
      // way down is the point of the policy. Counts are unaffected —
      // staging never changes which schedules run.
      if (!node.backtrack.minus(node.done)
               .minus(support::ThreadSet::single(node.chosen))
               .empty()) {
        owner_.prefixEngine().stageCheckpoint(exec, depth_);
      }
      stashChildSleep(exec, depth_, node.chosen);
      ++depth_;
      return node.chosen;
    }

    // New state: perform the DPOR race analysis before extending the path.
    analyzeRaces(exec);

    DporExplorer::DporNode node;
    node.enabled = exec.enabled();
    node.sleepIn = pendingSleep_;
    const support::ThreadSet candidates =
        owner_.dpor_.sleepSets ? node.enabled.minus(node.sleepIn) : node.enabled;
    if (candidates.empty()) {
      ++owner_.sleepPrunes_;
      return kAbandon;  // every enabled transition is covered elsewhere
    }
    node.chosen = candidates.first();
    node.backtrack = support::ThreadSet::single(node.chosen);
    owner_.nodes_.push_back(node);
    // A new node's backtrack set is just {chosen}: the search is not (yet)
    // known to return here, so nothing is staged. If a race analysis later
    // schedules a sibling, the first replay through this node stages it via
    // the backtrack-aware test above.
    stashChildSleep(exec, depth_, node.chosen);
    ++depth_;
    return node.chosen;
  }

 private:
  /// True iff executed event j happens-before thread p's next transition
  /// under the Full relation.
  [[nodiscard]] bool happensBeforeNext(std::int32_t j, int p) const {
    const auto& record = owner_.recorder().eventRecord(j);
    const int tj = record.threadIndex;
    if (tj == p) return true;
    return owner_.recorder().eventClock(Relation::Full, j).get(tj) <=
           owner_.recorder().threadClock(Relation::Full, p).get(tj);
  }

  /// FG candidate: the most recent executed event that is dependent with
  /// p's pending operation, may be co-enabled with it, and does not
  /// happen-before it. Returns -1 if none.
  [[nodiscard]] std::int32_t findCandidate(const runtime::Execution& exec, int p,
                                           const OpSig& sigP) {
    const runtime::PendingOp& op = exec.pending(p);
    auto walkChain = [&](std::int32_t objectIndex) -> std::int32_t {
      const auto& chain = owner_.recorder().chainEvents(objectIndex);
      for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        const std::int32_t j = *it;
        const OpSig sigJ = core::sigOf(owner_.recorder().eventRecord(j));
        if (!core::mayBeCoEnabled(sigJ, sigP)) continue;
        // Chain events are totally ordered, so the first happens-before
        // event screens off everything earlier.
        if (happensBeforeNext(j, p)) return -1;
        return j;
      }
      return -1;
    };
    switch (op.kind) {
      case runtime::OpKind::Read:
      case runtime::OpKind::Write:
      case runtime::OpKind::Rmw:
      case runtime::OpKind::Flush: {  // pending flush pick: a memory write
        owner_.recorder().collectConflicts(exec, p, conflictScratch_);
        for (auto it = conflictScratch_.rbegin(); it != conflictScratch_.rend(); ++it) {
          if (!happensBeforeNext(*it, p)) return *it;
          // Reads since the last write are mutually unordered: a deeper
          // happens-before read does not screen off shallower ones, so keep
          // scanning.
        }
        return -1;
      }
      case runtime::OpKind::Wait:
      case runtime::OpKind::Reacquire: {
        const std::int32_t a = walkChain(op.object);       // condvar chain
        const std::int32_t b = walkChain(op.mutexObject);  // mutex chain
        return a > b ? a : b;
      }
      case runtime::OpKind::Lock:
      case runtime::OpKind::Unlock:
      case runtime::OpKind::TryLock:
      case runtime::OpKind::Signal:
      case runtime::OpKind::Broadcast:
      case runtime::OpKind::SemAcquire:
      case runtime::OpKind::SemRelease:
      case runtime::OpKind::Join:
        return walkChain(op.object);
      case runtime::OpKind::Spawn:
      case runtime::OpKind::Yield:
      case runtime::OpKind::Fence:
        return -1;
    }
    return -1;
  }

  /// The FG backtrack-set update, run once per new state for every thread
  /// with a pending operation (enabled or blocked).
  void analyzeRaces(const runtime::Execution& exec) {
    const auto eventCount = static_cast<std::int32_t>(owner_.recorder().eventCount());
    // pickLimit() spans the flush-pick range under TSO, so pending flushes
    // participate in the backtrack analysis like any other transition.
    for (int p = 0; p < exec.pickLimit(); ++p) {
      const runtime::PendingOp& op = exec.pending(p);
      if (!op.valid) continue;
      const OpSig sigP = core::sigOf(p, op);
      const std::int32_t i = findCandidate(exec, p, sigP);
      if (i < 0) continue;
      DporExplorer::DporNode& target = owner_.nodes_[static_cast<std::size_t>(i)];
      // Whenever a thread is added to a backtrack set it must also be woken
      // (removed from the node's sleep set): a sleeping thread is filtered
      // by the sibling-selection, so a race whose reversal thread is asleep
      // would otherwise never be explored — the classic DPOR/sleep-set
      // interaction that SDPOR's wakeup trees solve exactly; waking is the
      // simple sound approximation (it only adds exploration).
      if (target.enabled.contains(p)) {
        target.backtrack.insert(p);
        target.sleepIn.erase(p);
        continue;
      }
      // E = threads enabled at pre(i) that executed an event after i which
      // happens-before p's next transition; any one of them suffices.
      support::ThreadSet eSet;
      for (std::int32_t j = i + 1; j < eventCount; ++j) {
        if (happensBeforeNext(j, p)) {
          eSet.insert(owner_.recorder().eventRecord(j).threadIndex);
        }
      }
      eSet = eSet.intersect(target.enabled);
      if (!eSet.empty()) {
        // Prefer a member that is not asleep; wake one only if all are.
        const support::ThreadSet awake = eSet.minus(target.sleepIn);
        const int q = awake.empty() ? eSet.first() : awake.first();
        target.backtrack.insert(q);
        target.sleepIn.erase(q);
      } else {
        target.backtrack = target.backtrack.unionWith(target.enabled);
        target.sleepIn = target.sleepIn.minus(target.enabled);
      }
    }
  }

  /// Sleep set handed to the next-deeper node: threads asleep here (or
  /// already fully explored here) whose pending operation is independent of
  /// the transition just chosen.
  void stashChildSleep(const runtime::Execution& exec, std::size_t depth, int chosen) {
    pendingSleep_.clear();
    if (!owner_.dpor_.sleepSets) return;
    const auto& node = owner_.nodes_[depth];
    const support::ThreadSet sleepers = node.sleepIn.unionWith(node.done);
    if (sleepers.empty()) return;
    const OpSig chosenSig = core::sigOf(chosen, exec.pending(chosen));
    for (const int q : sleepers) {
      if (q == chosen) continue;
      const runtime::PendingOp& opQ = exec.pending(q);
      if (!opQ.valid) continue;
      if (!core::dependent(core::sigOf(q, opQ), chosenSig, Relation::Full)) {
        pendingSleep_.insert(q);
      }
    }
  }

  DporExplorer& owner_;
  std::size_t depth_;
  support::ThreadSet pendingSleep_;
  std::vector<std::int32_t> conflictScratch_;
};

DporExplorer::DporExplorer(ExplorerOptions options, DporOptions dpor)
    : ExplorerBase(options), dpor_(dpor) {}

bool DporExplorer::advance() {
  while (!nodes_.empty()) {
    DporNode& node = nodes_.back();
    node.done.insert(node.chosen);
    support::ThreadSet next = node.backtrack.minus(node.done);
    if (dpor_.sleepSets) next = next.minus(node.sleepIn);
    if (!next.empty()) {
      node.chosen = next.first();
      checkFromDepth_ = nodes_.size() - 1;
      return true;
    }
    nodes_.pop_back();
  }
  return false;
}

void DporExplorer::runSearch(const Program& program) {
  nodes_.clear();
  checkFromDepth_ = 0;
  std::size_t startDepth = 0;
  for (;;) {
    if (budgetExhausted()) {
      result().hitScheduleLimit = true;
      return;
    }
    if (shouldStopForViolation()) {
      return;
    }
    DporScheduler scheduler(*this, startDepth);
    const runtime::Outcome outcome = executeSchedule(program, scheduler);
    if (dpor_.cachePrefixes && outcome != runtime::Outcome::Abandoned &&
        recorder().eventCount() > 0) {
      cache_.insert(recorder().fingerprint(*dpor_.cachePrefixes));
    }
    if (!advance()) {
      markComplete();
      return;
    }
    startDepth = prefixEngine().prepareNext(checkFromDepth_);
  }
}

}  // namespace lazyhb::explore
