// lazyhb/explore/parallel_explorer.hpp
//
// Intra-scenario parallel exploration: shard ONE program's schedule tree
// across N OS threads, against one shared concurrent HbrCache — so a prefix
// pruned by any worker is pruned for all. This is the multi-core shape of
// Günther/Laarman's "Dynamic Reductions for Model Checking Concurrent
// Software" applied to the paper's lazy-HBR reduction: workers walk
// disjoint subtrees; the only shared mutable state is the CAS-based
// fingerprint table (core/hbr_cache.hpp) and the work-stealing frontier
// (campaign/work_stealing_pool.hpp).
//
// ## Work decomposition
//
// A frontier job is a subtree of the schedule tree: a forced choice prefix
// plus, at the divergence node, the set of children the job owns. Each pool
// worker owns a full sequential exploration kit — fiber stack pool,
// TraceRecorder, incremental prefix-replay engine — and runs jobs as plain
// depth-first searches whose roots are pinned by the forced prefix. When
// the pool reports hungry workers, a running worker donates the unexplored
// siblings of its *shallowest* splittable node (the largest subtree it can
// give away) as a new job: classic stack splitting, submitted back into the
// same batch.
//
// ## Why counts are byte-identical at any worker count
//
// For a COMPLETE search every count the tool reports is order-independent.
// Equal prefix fingerprints imply equal program states — via equal HBRs for
// the Full/Lazy keys (Theorems 2.1/2.2), and directly for the Value keys
// (the fingerprint *is* the observations plus the visible state) — and the
// fingerprint includes the event count — so the
// quotient of the schedule tree by fingerprint is a DAG in which every
// class has a fixed continuation structure. Whichever concrete prefix
// reaches a class first inserts its fingerprint and expands it; every later
// arrival hits and prunes. The *set* of expanded classes and the *number*
// of arrivals at each are therefore invariant under arrival order, and all
// of schedules / terminal / pruned / violation counts, distinct-fingerprint
// set sizes, total events, and cache lookup / hit / insertion / entry
// counts are sums over that quotient. (What is NOT invariant: which
// concrete schedule witnesses a violation class — the reproducer schedules
// in `violations` may differ between runs in caching mode; their count may
// not.)
//
// A schedule *budget* breaks the argument mid-flight: arrival order would
// decide which schedules fit the limit. But whether the budget bites at all
// is itself order-independent (total arrivals is fixed), so workers claim
// budget slots from one global counter and, the moment the claim count
// exceeds the limit, the parallel run aborts and the scenario is redone
// sequentially — byte-identical to `workers == 1` by construction, at the
// cost of the wasted partial run. Budget-bound scenarios are the quick
// modes; the deep runs this explorer exists for complete within budget.
//
// Strategies that are inherently order-sensitive are not shardable:
// random walks (one RNG stream), DPOR (backtrack sets mutate on visit
// order), stopOnFirstViolation ("first" presumes an order), and the theorem
// checkers (their conflict attribution is visit-ordered). The factory
// (campaign/explorer_spec.hpp) falls back to the sequential explorer for
// those; this class accepts only the shardable configurations.

#pragma once

#include <cstdint>
#include <optional>

#include "explore/explorer.hpp"
#include "trace/trace_recorder.hpp"

namespace lazyhb::explore {

/// Which sequential search a ParallelExplorer shards. The tree searches
/// with order-independent counts.
enum class ParallelStrategy {
  Dfs,           ///< naive enumeration, no cache
  CachingFull,   ///< Musuvathi–Qadeer HBR caching (shared cache, Full keys)
  CachingLazy,   ///< the paper's lazy HBR caching (shared cache, Lazy keys)
  CachingValue,  ///< value-class caching (shared cache, Value keys)
};

class ParallelExplorer final : public Explorer {
 public:
  /// `options.workers` must be >= 2 (use the sequential strategy classes
  /// for 1), and options must not request stopOnFirstViolation or
  /// checkTheorems (the factory routes those to sequential explorers).
  /// `seed` roots the frontier pool's per-worker victim-selection RNGs.
  ParallelExplorer(ExplorerOptions options, ParallelStrategy strategy,
                   std::uint64_t seed);
  ~ParallelExplorer() override;

  [[nodiscard]] ExplorationResult explore(const Program& program) override;

  [[nodiscard]] const ExplorerOptions& options() const noexcept override {
    return options_;
  }
  [[nodiscard]] ParallelStrategy strategy() const noexcept { return strategy_; }

  /// True when `options` can be sharded at all (the factory's gate):
  /// workers >= 2 and none of the order-sensitive options — no
  /// stop-on-first-violation, no theorem checking, no wall-clock timeout
  /// (which schedules fit a deadline depends on visit order), no progress
  /// tick callback (ticks from racing workers would interleave).
  [[nodiscard]] static bool shardable(const ExplorerOptions& options) noexcept {
    return options.workers >= 2 && !options.stopOnFirstViolation &&
           !options.checkTheorems && options.wallTimeoutSeconds <= 0.0 &&
           !options.onScheduleTick;
  }

 private:
  struct Impl;

  /// The caching relation, or nullopt for plain DFS.
  [[nodiscard]] std::optional<trace::Relation> relation() const noexcept;

  /// Re-run the scenario with the matching sequential explorer (budget
  /// abort path). Returns its result with parallel.fellBackSequential set.
  [[nodiscard]] ExplorationResult runSequentialFallback(const Program& program);

  ExplorerOptions options_;
  ParallelStrategy strategy_;
  std::uint64_t seed_;
  bool explored_ = false;
};

}  // namespace lazyhb::explore
