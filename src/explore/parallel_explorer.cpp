#include "explore/parallel_explorer.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "campaign/work_stealing_pool.hpp"
#include "core/hbr_cache.hpp"
#include "core/race_detector.hpp"
#include "explore/caching_explorer.hpp"
#include "explore/dfs_explorer.hpp"
#include "explore/prefix_replay.hpp"
#include "runtime/execution.hpp"
#include "support/diagnostics.hpp"

namespace lazyhb::explore {

namespace {

using Hash128Set =
    std::unordered_set<support::Hash128, support::Hash128Hasher>;

/// One subtree of the schedule tree, claimable by any worker: force the
/// choices in `prefix`, then explore every child in `enabled - done` of the
/// node at depth prefix.size(). An empty `enabled` marks the root job (the
/// whole tree; the real enabled set is discovered by the first execution).
struct FrontierJob {
  std::vector<int> prefix;
  support::ThreadSet enabled;
  support::ThreadSet done;
};

/// A worker's private exploration kit plus its share of the statistics.
/// Nothing in here is touched by any other thread until the merge.
struct WorkerContext {
  WorkerContext(const ExplorerOptions& opts, std::uint64_t snapshotBudgetBytes)
      : recorder(trace::TraceRecorder::Options{opts.keepPredecessors,
                                               opts.detectRaces}),
        engine(stackPool, recorder, opts.incremental,
               opts.checkpointable &&
                   runtime::Execution::checkpointingSupported(),
               snapshotBudgetBytes) {}

  runtime::StackPool stackPool;
  trace::TraceRecorder recorder;
  PrefixReplayEngine engine;
  bool ranASchedule = false;  ///< engine.prepareNext needs a first schedule

  std::uint64_t schedules = 0;
  std::uint64_t terminal = 0;
  std::uint64_t violation = 0;
  std::uint64_t pruned = 0;
  std::uint64_t events = 0;
  std::uint64_t flushEvents = 0;
  std::uint64_t fenceEvents = 0;
  std::uint32_t maxBufferedStores = 0;
  Hash128Set hbrs;
  Hash128Set lazyHbrs;
  Hash128Set valueClasses;
  Hash128Set states;
  std::vector<ViolationRecord> violations;
  core::RaceAggregator races;
};

/// Stable order for merged violation records: worker completion order is
/// nondeterministic, so the merged list is sorted before the
/// maxViolationsKept cut — workers keep all records so the cut sees the
/// full multiset regardless of sharding. (In caching mode the *reproducer
/// schedules* may still differ between runs — see the header; the counts
/// never do.)
bool violationLess(const ViolationRecord& a, const ViolationRecord& b) {
  return std::tie(a.kind, a.message, a.schedule) <
         std::tie(b.kind, b.message, b.schedule);
}

}  // namespace

/// Everything alive only during one explore() call: the frontier pool, the
/// shared cache, the per-worker contexts and the global coordination state.
struct ParallelExplorer::Impl {
  Impl(const ExplorerOptions& opts, std::optional<trace::Relation> rel,
       std::uint64_t seed)
      : options(opts), relation(rel), pool(opts.workers, seed) {
    const int n = pool.workerCount();
    // Each worker runs its own replay engine, so the scenario's snapshot
    // budget is split evenly across them — the combined footprint stays
    // what the user asked for, not workers× it (0 stays unlimited).
    const std::uint64_t perWorkerBudget =
        opts.snapshotBudgetBytes == 0
            ? 0
            : std::max<std::uint64_t>(
                  1, opts.snapshotBudgetBytes / static_cast<std::uint64_t>(n));
    contexts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      contexts.push_back(std::make_unique<WorkerContext>(opts, perWorkerBudget));
    }
  }

  const ExplorerOptions& options;
  std::optional<trace::Relation> relation;
  campaign::WorkStealingPool pool;
  std::vector<std::unique_ptr<WorkerContext>> contexts;
  core::HbrCache cache;  ///< shared; unused (empty) for plain DFS
  const Program* program = nullptr;

  std::atomic<std::uint64_t> claimed{0};  ///< global budget slots taken
  std::atomic<bool> aborted{false};       ///< budget exceeded: discard all
  std::atomic<std::uint64_t> frontierJobs{0};

  void runJob(FrontierJob job);
  void submitJob(FrontierJob job);
  runtime::Outcome executeOne(WorkerContext& cx, runtime::Scheduler& sched);
  void maybeDonate(TreeSearchState& state);
};

void ParallelExplorer::Impl::submitJob(FrontierJob job) {
  frontierJobs.fetch_add(1, std::memory_order_relaxed);
  pool.submit([this, job = std::move(job)]() mutable {
    runJob(std::move(job));
  });
}

/// One schedule, mirroring ExplorerBase::executeSchedule's accounting onto
/// the worker's private tallies (any drift between the two is caught by the
/// count-identity suite in tests/test_parallel.cpp). The caching terminal
/// seeding from CachingExplorer::runSearch lives here too.
runtime::Outcome ParallelExplorer::Impl::executeOne(WorkerContext& cx,
                                                    runtime::Scheduler& sched) {
  runtime::Config config;
  config.maxEventsPerSchedule = options.maxEventsPerSchedule;
  config.memoryModel = options.memoryModel;
  const PrefixReplayEngine::Session session =
      cx.engine.beginSchedule(config, &cx.recorder);
  runtime::Execution& exec = *session.exec;
  const runtime::Outcome outcome =
      session.resumed ? exec.resume(sched) : exec.run(*program, sched);

  ++cx.schedules;
  cx.events += exec.events().size();
  cx.flushEvents += exec.flushEventCount();
  cx.fenceEvents += exec.fenceEventCount();
  if (exec.maxBufferedStores() > cx.maxBufferedStores) {
    cx.maxBufferedStores = exec.maxBufferedStores();
  }

  switch (outcome) {
    case runtime::Outcome::Terminal: {
      ++cx.terminal;
      cx.hbrs.insert(cx.recorder.fingerprint(trace::Relation::Full));
      cx.lazyHbrs.insert(cx.recorder.fingerprint(trace::Relation::Lazy));
      cx.valueClasses.insert(cx.recorder.fingerprint(trace::Relation::Value));
      cx.states.insert(exec.stateFingerprint());
      break;
    }
    case runtime::Outcome::Deadlock:
    case runtime::Outcome::AssertionFailure:
    case runtime::Outcome::UsageError: {
      ++cx.violation;
      // Keep every record: capping per worker would make the post-merge
      // kept set depend on how violations happened to shard across
      // workers. The maxViolationsKept cut is applied once, after the
      // global sort, so the surviving set is a function of the full
      // violation multiset alone — identical at any worker count.
      const runtime::Violation& v = exec.violation();
      cx.violations.push_back(ViolationRecord{v.kind, v.message, v.schedule});
      break;
    }
    case runtime::Outcome::Abandoned:
      ++cx.pruned;
      break;
    case runtime::Outcome::EventLimit:
      break;  // counted as executed, contributes no terminal data
  }

  if (options.detectRaces) {
    cx.races.ingest(cx.recorder);
  }
  if (relation.has_value() && outcome != runtime::Outcome::Abandoned &&
      cx.recorder.eventCount() > 0) {
    // The final event's prefix is never tested by the scheduler (there is
    // no further pick); seed it so any worker can prune against it.
    cache.insert(cx.recorder.fingerprint(*relation));
  }
  return outcome;
}

/// Stack splitting: when the pool signals an idle worker, give away the
/// unexplored siblings of our shallowest splittable node — the largest
/// subtree we can part with — as one job (the donee can re-split further).
void ParallelExplorer::Impl::maybeDonate(TreeSearchState& state) {
  if (!pool.hungry()) return;
  for (std::size_t d = 0; d < state.nodes.size(); ++d) {
    SearchNode& node = state.nodes[d];
    const support::ThreadSet stealable = node.enabled.minus(node.done).minus(
        support::ThreadSet::single(node.chosen));
    if (stealable.empty()) continue;

    FrontierJob child;
    child.prefix.reserve(d);
    for (std::size_t i = 0; i < d; ++i) {
      child.prefix.push_back(state.nodes[i].chosen);
    }
    child.enabled = node.enabled;
    child.done = node.enabled.minus(stealable);  // donee owns exactly these
    node.done = node.done.unionWith(stealable);  // we never revisit them
    submitJob(std::move(child));
    return;
  }
}

void ParallelExplorer::Impl::runJob(FrontierJob job) {
  if (aborted.load(std::memory_order_relaxed)) return;
  const int workerIndex = pool.currentWorkerIndex();
  LAZYHB_CHECK(workerIndex >= 0);
  WorkerContext& cx = *contexts[static_cast<std::size_t>(workerIndex)];

  // Rebuild the job's subtree root as a search stack: forced single-choice
  // nodes pin the prefix (advance() can never flip them), then the
  // divergence node carries the children this job owns. The prefix events
  // are replays of work already accounted elsewhere, so checkFromDepth
  // excludes them from prune checks — exactly as the sequential search
  // excludes a schedule's shared prefix after advance().
  TreeSearchState state;
  state.nodes.reserve(job.prefix.size() + 1);
  for (const int choice : job.prefix) {
    SearchNode forced;
    forced.enabled = support::ThreadSet::single(choice);
    forced.chosen = choice;
    state.nodes.push_back(forced);
  }
  if (!job.enabled.empty()) {
    SearchNode divergence;
    divergence.enabled = job.enabled;
    divergence.done = job.done;
    divergence.chosen = job.enabled.minus(job.done).first();
    state.nodes.push_back(divergence);
  }
  state.checkFromDepth = job.prefix.size();

  // This job's tree shares nothing with whatever this worker ran before:
  // divergence is at the root as far as the replay engine is concerned.
  std::size_t startDepth = cx.ranASchedule ? cx.engine.prepareNext(0) : 0;
  cx.ranASchedule = true;

  for (;;) {
    if (aborted.load(std::memory_order_relaxed)) return;
    // Claim a budget slot before executing, like the sequential loop checks
    // budgetExhausted() before each schedule. Total demand is
    // order-independent (see header), so whether this trips is a function
    // of the scenario, not of scheduling.
    if (claimed.fetch_add(1, std::memory_order_relaxed) >=
        options.scheduleLimit) {
      aborted.store(true, std::memory_order_relaxed);
      return;
    }

    std::function<bool()> pruneHook;
    if (relation.has_value()) {
      pruneHook = [this, &cx] {
        return cache.checkAndInsert(cx.recorder.fingerprint(*relation));
      };
    }
    TreeScheduler scheduler(state, std::move(pruneHook), &cx.engine,
                            startDepth);
    (void)executeOne(cx, scheduler);
    maybeDonate(state);
    if (!state.advance()) return;  // subtree exhausted
    startDepth = cx.engine.prepareNext(state.checkFromDepth);
  }
}

ParallelExplorer::ParallelExplorer(ExplorerOptions options,
                                   ParallelStrategy strategy,
                                   std::uint64_t seed)
    : options_(options), strategy_(strategy), seed_(seed) {
  LAZYHB_CHECK(shardable(options));
}

ParallelExplorer::~ParallelExplorer() = default;

std::optional<trace::Relation> ParallelExplorer::relation() const noexcept {
  switch (strategy_) {
    case ParallelStrategy::Dfs:
      return std::nullopt;
    case ParallelStrategy::CachingFull:
      return trace::Relation::Full;
    case ParallelStrategy::CachingLazy:
      return trace::Relation::Lazy;
    case ParallelStrategy::CachingValue:
      return trace::Relation::Value;
  }
  return std::nullopt;
}

ExplorationResult ParallelExplorer::runSequentialFallback(
    const Program& program) {
  ExplorerOptions sequential = options_;
  sequential.workers = 1;
  std::unique_ptr<Explorer> explorer;
  if (const std::optional<trace::Relation> rel = relation()) {
    explorer = std::make_unique<CachingExplorer>(sequential, *rel);
  } else {
    explorer = std::make_unique<DfsExplorer>(sequential);
  }
  ExplorationResult result = explorer->explore(program);
  result.parallel.workers = options_.workers;
  result.parallel.fellBackSequential = true;
  return result;
}

ExplorationResult ParallelExplorer::explore(const Program& program) {
  LAZYHB_CHECK(!explored_);
  explored_ = true;

  Impl impl(options_, relation(), seed_);
  impl.program = &program;

  std::vector<campaign::WorkStealingPool::Task> roots;
  impl.frontierJobs.store(1, std::memory_order_relaxed);
  roots.push_back([&impl] { impl.runJob(FrontierJob{}); });
  impl.pool.run(std::move(roots));

  if (impl.aborted.load(std::memory_order_relaxed)) {
    // The budget bit: parallel order would decide which schedules fit it.
    // Discard everything (including the polluted shared cache — the
    // fallback explorer builds its own) and redo sequentially.
    return runSequentialFallback(program);
  }

  // Deterministic merge. Counts are sums, fingerprint classes are set
  // unions, violations sort lexicographically before the keep-cap, races
  // dedup on the racy object across workers.
  ExplorationResult result;
  Hash128Set hbrs;
  Hash128Set lazyHbrs;
  Hash128Set valueClasses;
  Hash128Set states;
  std::vector<ViolationRecord> violations;
  std::vector<trace::RaceReport> races;
  std::unordered_set<runtime::Uid> raceUids;

  result.parallel.workers = impl.pool.workerCount();
  result.parallel.frontierJobs =
      impl.frontierJobs.load(std::memory_order_relaxed);
  const std::vector<std::uint64_t> steals = impl.pool.stealsByWorker();
  for (std::size_t i = 0; i < impl.contexts.size(); ++i) {
    const WorkerContext& cx = *impl.contexts[i];
    result.schedulesExecuted += cx.schedules;
    result.terminalSchedules += cx.terminal;
    result.violationSchedules += cx.violation;
    result.prunedSchedules += cx.pruned;
    result.totalEvents += cx.events;
    result.flushEvents += cx.flushEvents;
    result.fenceEvents += cx.fenceEvents;
    if (cx.maxBufferedStores > result.maxBufferedStores) {
      result.maxBufferedStores = cx.maxBufferedStores;
    }
    result.eventsElided += cx.engine.eventsElided();
    result.eventsReplayed += cx.engine.eventsReplayed();
    result.checkpointStats.enabled =
        result.checkpointStats.enabled || cx.engine.incremental();
    result.checkpointStats.stages += cx.engine.stagesCreated();
    result.checkpointStats.bytesStaged += cx.engine.bytesStaged();
    result.checkpointStats.evictions += cx.engine.evictions();
    result.checkpointStats.replayFallbacks += cx.engine.replayFallbacks();
    hbrs.insert(cx.hbrs.begin(), cx.hbrs.end());
    lazyHbrs.insert(cx.lazyHbrs.begin(), cx.lazyHbrs.end());
    valueClasses.insert(cx.valueClasses.begin(), cx.valueClasses.end());
    states.insert(cx.states.begin(), cx.states.end());
    violations.insert(violations.end(), cx.violations.begin(),
                      cx.violations.end());
    for (const trace::RaceReport& race : cx.races.distinctRaces()) {
      if (raceUids.insert(race.objectUid).second) {
        races.push_back(race);
      }
    }
    result.parallel.byWorker.push_back(WorkerShare{cx.schedules, steals[i]});
  }
  result.distinctHbrs = hbrs.size();
  result.distinctLazyHbrs = lazyHbrs.size();
  result.distinctValueClasses = valueClasses.size();
  result.distinctStates = states.size();
  result.complete = true;
  result.hitScheduleLimit = false;

  std::sort(violations.begin(), violations.end(), violationLess);
  if (violations.size() > options_.maxViolationsKept) {
    violations.resize(options_.maxViolationsKept);
  }
  result.violations = std::move(violations);

  std::sort(races.begin(), races.end(),
            [](const trace::RaceReport& a, const trace::RaceReport& b) {
              return a.objectUid < b.objectUid;
            });
  result.races = std::move(races);

  if (relation().has_value()) {
    const core::HbrCache::Stats cacheStats = impl.cache.stats();
    result.cacheStats.enabled = true;
    result.cacheStats.lookups = cacheStats.lookups;
    result.cacheStats.hits = cacheStats.hits;
    result.cacheStats.insertions = cacheStats.insertions;
    result.cacheStats.entries = impl.cache.size();
    result.cacheStats.approxBytes = impl.cache.approxMemoryBytes();
  }
  return result;
}

}  // namespace lazyhb::explore
