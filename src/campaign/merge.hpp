// lazyhb/campaign/merge.hpp
//
// Merging schema-v5 campaign reports: the gather half of the shard/merge
// workflow (`lazyhb bench --shard i/N` on N hosts, `lazyhb merge` once).
// The merge is associative and commutative over reports with compatible
// configurations, so shards can be merged in any grouping and order and
// produce the same count set — the property tests/test_resume.cpp checks.
//
// Cell semantics:
//   * disjoint cells — union.
//   * duplicate cells with identical counts — deduplicated (one copy kept,
//     chosen by a deterministic, order-independent preference).
//   * duplicate cells where one copy timed out or failed — the healthy /
//     deeper copy wins (a resumed shard overlaps a partial one).
//   * duplicate CLEAN cells with different counts — a hard error: two
//     complete runs of one configuration can never disagree under the
//     determinism contract, so differing counts mean the inputs lie about
//     their configuration (or a bug worth hearing about).
//
// Aggregates are never merged numerically: the merged cell set is re-folded
// through campaign::foldCells — the same fold a direct run uses — and every
// cell's §3 chain is re-checked, so a merged report cannot carry totals or
// inequality verdicts its own cells do not support.

#pragma once

#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/report.hpp"

namespace lazyhb::campaign {

/// A merged campaign: the re-folded result, the common configuration, and
/// the provenance block for the output report.
struct MergeOutcome {
  CampaignResult result;
  ReportConfig config;
  MergeProvenance provenance;
};

/// Merge parsed-from-disk report documents. `labels[i]` names documents[i]
/// in provenance and error messages (the CLI passes filenames). Throws
/// std::runtime_error on malformed input, schema/version mismatch,
/// incompatible configurations, or conflicting duplicate cells.
[[nodiscard]] MergeOutcome mergeReports(const std::vector<std::string>& documents,
                                        const std::vector<std::string>& labels);

}  // namespace lazyhb::campaign
