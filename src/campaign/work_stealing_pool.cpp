#include "campaign/work_stealing_pool.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace lazyhb::campaign {

namespace {

// Which pool (if any) the calling thread serves, and at which index.
// A thread is a worker of at most one pool — nested pools (a campaign task
// spinning up a parallel explorer) run their workers on fresh threads, each
// with its own binding.
struct WorkerBinding {
  const WorkStealingPool* pool = nullptr;
  int index = -1;
};
thread_local WorkerBinding tlsBinding;

}  // namespace

WorkStealingPool::WorkStealingPool(int workers, std::uint64_t seed) {
  const int n = std::max(1, workers);
  deques_.resize(static_cast<std::size_t>(n));
  stealsByWorker_.assign(static_cast<std::size_t>(n), 0);
  rngs_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    // Distinct deterministic stream per worker: splitmix inside Rng spreads
    // the (seed, index) pair, so adjacent indices don't correlate.
    rngs_.emplace_back(seed + 0x9e3779b97f4a7c15ULL *
                                  static_cast<std::uint64_t>(i + 1));
  }
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back(
        [this, i] { workerLoop(static_cast<std::size_t>(i)); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    shuttingDown_ = true;
  }
  batchStart_.notify_all();
  frontier_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkStealingPool::run(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  LAZYHB_CHECK(remaining_ == 0);  // not reentrant
  // Deal round-robin: task i goes to worker i % N, so with stealing off the
  // load still spreads evenly and results never depend on who ran what.
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    deques_[i % deques_.size()].push_back(std::move(tasks[i]));
  }
  remaining_ = tasks.size();
  ++generation_;
  batchStart_.notify_all();
  batchDone_.wait(lock, [this] { return remaining_ == 0; });
}

void WorkStealingPool::submit(Task task) {
  std::unique_lock<std::mutex> lock(mutex_);
  LAZYHB_CHECK(remaining_ > 0);  // only legal inside an active batch
  if (tlsBinding.pool == this) {
    // Worker-submitted: own deque front, so the submitter (or a thief, in
    // stack-splitting order from the back) continues depth-first.
    deques_[static_cast<std::size_t>(tlsBinding.index)].push_front(
        std::move(task));
  } else {
    auto shortest = std::min_element(
        deques_.begin(), deques_.end(),
        [](const auto& a, const auto& b) { return a.size() < b.size(); });
    shortest->push_back(std::move(task));
  }
  ++remaining_;
  frontier_.notify_all();
}

int WorkStealingPool::currentWorkerIndex() const noexcept {
  return tlsBinding.pool == this ? tlsBinding.index : -1;
}

bool WorkStealingPool::hungry() const {
  const std::lock_guard<std::mutex> guard(mutex_);
  if (remaining_ == 0) return false;
  std::size_t queued = 0;
  for (const std::deque<Task>& d : deques_) {
    if (d.empty()) return true;
    queued += d.size();
  }
  // All deques non-empty but fewer queued tasks than workers: someone will
  // go idle as soon as the queued tail drains.
  return queued < deques_.size();
}

std::vector<std::uint64_t> WorkStealingPool::stealsByWorker() const {
  const std::lock_guard<std::mutex> guard(mutex_);
  return stealsByWorker_;
}

bool WorkStealingPool::popTask(std::size_t self, Task& task) {
  std::deque<Task>& mine = deques_[self];
  if (!mine.empty()) {
    task = std::move(mine.front());
    mine.pop_front();
    return true;
  }
  // Own deque drained: steal from the back of the longest victim deque (the
  // back holds the tasks its owner would reach last, so stealing there
  // minimises interleaving with the victim's own pops). The scan starts at
  // a per-worker seeded random offset, which breaks length ties without a
  // shared RNG — reproducible for a fixed (pool seed, worker, call count).
  const std::size_t n = deques_.size();
  const std::size_t offset = n > 1 ? rngs_[self].below(n) : 0;
  std::size_t victim = n;
  std::size_t victimBacklog = 0;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (offset + k) % n;
    if (i == self) continue;
    if (deques_[i].size() > victimBacklog) {
      victimBacklog = deques_[i].size();
      victim = i;
    }
  }
  if (victim == n) return false;  // frontier empty everywhere
  task = std::move(deques_[victim].back());
  deques_[victim].pop_back();
  tasksStolen_.fetch_add(1, std::memory_order_relaxed);
  ++stealsByWorker_[self];
  return true;
}

void WorkStealingPool::workerLoop(std::size_t self) {
  tlsBinding = {this, static_cast<int>(self)};
  std::uint64_t seenGeneration = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    batchStart_.wait(lock, [this, seenGeneration] {
      return shuttingDown_ || generation_ != seenGeneration;
    });
    if (shuttingDown_) return;
    seenGeneration = generation_;

    // Batch loop: run tasks until the whole frontier — initial deal plus
    // everything submit()ted along the way — has finished. Empty deques
    // alone don't end the batch; in-flight tasks may still submit.
    while (remaining_ != 0) {
      Task task;
      if (popTask(self, task)) {
        lock.unlock();
        task();  // noexcept contract: a throwing task terminates
        task = nullptr;  // destroy captures outside the lock
        lock.lock();
        if (--remaining_ == 0) {
          batchDone_.notify_all();
          frontier_.notify_all();  // release workers parked below
        }
        continue;
      }
      frontier_.wait(lock, [this, self] {
        if (shuttingDown_ || remaining_ == 0) return true;
        for (std::size_t i = 0; i < deques_.size(); ++i) {
          if (!deques_[i].empty()) return true;
        }
        return false;
      });
      if (shuttingDown_) return;
    }
  }
}

}  // namespace lazyhb::campaign
