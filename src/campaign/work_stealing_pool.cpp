#include "campaign/work_stealing_pool.hpp"

#include <algorithm>

#include "support/diagnostics.hpp"

namespace lazyhb::campaign {

WorkStealingPool::WorkStealingPool(int workers) {
  const int n = std::max(1, workers);
  deques_.reserve(static_cast<std::size_t>(n));
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { workerLoop(static_cast<std::size_t>(i)); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    const std::lock_guard<std::mutex> guard(mutex_);
    shuttingDown_ = true;
  }
  batchStart_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void WorkStealingPool::run(std::vector<Task> tasks) {
  if (tasks.empty()) return;
  std::unique_lock<std::mutex> lock(mutex_);
  LAZYHB_CHECK(remaining_ == 0);  // not reentrant
  tasks_ = std::move(tasks);
  remaining_ = tasks_.size();
  // Deal round-robin: task i goes to worker i % N, so with stealing off the
  // matrix still spreads evenly and results never depend on who ran what.
  // Each push takes the deque's own mutex: a straggler worker from the
  // previous batch may still be scanning these deques for steal victims
  // (remaining_ hits zero when the last task *finishes*, not when every
  // worker has gone back to sleep).
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    WorkerDeque& deque = *deques_[i % deques_.size()];
    const std::lock_guard<std::mutex> guard(deque.mutex);
    deque.tasks.push_back(i);
  }
  ++generation_;
  batchStart_.notify_all();
  batchDone_.wait(lock, [this] { return remaining_ == 0; });
  tasks_.clear();
}

bool WorkStealingPool::nextTask(std::size_t self, std::size_t& taskIndex) {
  {
    WorkerDeque& mine = *deques_[self];
    const std::lock_guard<std::mutex> guard(mine.mutex);
    if (!mine.tasks.empty()) {
      taskIndex = mine.tasks.front();
      mine.tasks.pop_front();
      return true;
    }
  }
  // Own deque drained: steal from the back of the longest victim deque
  // (the back holds the tasks its owner would reach last, so stealing
  // there minimises interleaving with the victim's own pops).
  while (true) {
    std::size_t victim = deques_.size();
    std::size_t victimBacklog = 0;
    for (std::size_t i = 0; i < deques_.size(); ++i) {
      if (i == self) continue;
      const std::lock_guard<std::mutex> guard(deques_[i]->mutex);
      if (deques_[i]->tasks.size() > victimBacklog) {
        victimBacklog = deques_[i]->tasks.size();
        victim = i;
      }
    }
    if (victim == deques_.size()) return false;  // frontier empty everywhere
    const std::lock_guard<std::mutex> guard(deques_[victim]->mutex);
    if (deques_[victim]->tasks.empty()) continue;  // raced; re-scan
    taskIndex = deques_[victim]->tasks.back();
    deques_[victim]->tasks.pop_back();
    tasksStolen_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

void WorkStealingPool::workerLoop(std::size_t self) {
  std::uint64_t seenGeneration = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      batchStart_.wait(lock, [this, seenGeneration] {
        return shuttingDown_ || generation_ != seenGeneration;
      });
      if (shuttingDown_) return;
      seenGeneration = generation_;
    }
    std::size_t taskIndex = 0;
    while (nextTask(self, taskIndex)) {
      tasks_[taskIndex]();
      const std::lock_guard<std::mutex> guard(mutex_);
      if (--remaining_ == 0) {
        batchDone_.notify_all();
      }
    }
  }
}

}  // namespace lazyhb::campaign
