// lazyhb/campaign/work_stealing_pool.hpp
//
// The shared executor behind both parallel layers: the campaign runner's
// (program × explorer) matrix and, since PR 6, the parallel explorer's
// intra-scenario frontier (explore/parallel_explorer.hpp). A fixed set of
// OS threads, one task deque per worker, with work stealing. Tasks vary
// wildly in cost (a complete DFS of a 2-thread program vs. 100,000
// schedules of a contended one), so a single shared queue serves long tasks
// tail-heavy: the last big cell lands on one worker while the rest idle.
// Dealing round-robin and letting idle workers steal from the *back* of a
// victim's deque keeps every hardware thread busy until the frontier drains.
//
// Two behaviours the frontier use case added:
//
//   * dynamic submission — a running task may call submit() to enqueue more
//     work into the same batch (new frontier nodes discovered mid-subtree).
//     Worker-submitted tasks go to the submitter's own deque front (LIFO,
//     so the frontier explores depth-first and stays small); run() returns
//     only when every task, including all transitively submitted ones, has
//     finished. Idle workers therefore park on a condition variable instead
//     of exiting when the deques look empty but tasks are still in flight.
//   * seeded victim selection — each worker breaks steal-victim ties with
//     its own deterministic RNG, seeded from (pool seed, worker index), so
//     pool behaviour is reproducible run-to-run under any --jobs/--workers
//     (a shared or unseeded RNG would make steal patterns — and with them
//     any order-sensitive downstream state — drift between runs).
//
// Tasks are independent and must not throw (support::ThreadPool's contract,
// kept here): an experiment harness has no meaningful recovery from a lost
// result, so an escaping exception terminates the process via noexcept.
//
// This pool is deliberately simple — one mutex over the deques, not a
// lock-free Chase–Lev deque. Tasks run for milliseconds to minutes, so
// queue operations are nowhere near the contention regime that justifies
// lock-free structures; what matters is the *stealing policy*, which is
// what balances the load.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "support/rng.hpp"

namespace lazyhb::campaign {

class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  /// Create `workers` OS threads (values < 1 clamp to 1). Threads persist
  /// across run() batches and park on a condition variable between them.
  /// `seed` roots the per-worker victim-selection RNGs: worker i draws from
  /// Rng(seed ^ mixed(i)), so the whole pool's steal behaviour is a pure
  /// function of (seed, worker count, task timing).
  explicit WorkStealingPool(int workers,
                            std::uint64_t seed = kDefaultSeed);

  /// Joins all workers. Must not be called while run() is in flight.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Execute every task in `tasks` — plus everything submit()ted while the
  /// batch runs — blocking until all have finished. Initial tasks are dealt
  /// round-robin across the worker deques; idle workers steal from the back
  /// of the longest victim deque. Not reentrant.
  void run(std::vector<Task> tasks);

  /// Enqueue one more task into the batch currently in flight. Legal only
  /// while a batch is running (i.e. from inside a task, or from another
  /// thread racing run() — the caller must know a batch is active). When
  /// called on a worker thread the task lands at the *front* of that
  /// worker's own deque (depth-first); otherwise at the back of the
  /// shortest deque.
  void submit(Task task);

  /// Index of the calling pool worker in [0, workerCount()), or -1 when the
  /// calling thread is not one of this pool's workers. Lets tasks address
  /// per-worker state (accumulators, recorders) without locking.
  [[nodiscard]] int currentWorkerIndex() const noexcept;

  /// True when some deque is empty while the batch still has unfinished
  /// tasks — a cheap "someone is (about to be) idle" signal that long
  /// tasks poll to decide whether splitting off a subtask would feed a
  /// starving worker. Racy by nature; both false positives and negatives
  /// only cost granularity, never correctness.
  [[nodiscard]] bool hungry() const;

  [[nodiscard]] int workerCount() const noexcept {
    return static_cast<int>(deques_.size());
  }

  /// Tasks executed by a worker other than the one they were dealt to,
  /// accumulated across run() batches. A load-balance diagnostic.
  [[nodiscard]] std::uint64_t tasksStolen() const noexcept {
    return tasksStolen_.load(std::memory_order_relaxed);
  }

  /// Per-worker steal counts (same accumulation as tasksStolen(), attributed
  /// to the stealing worker). Index = worker. Snapshot; call between
  /// batches for exact values.
  [[nodiscard]] std::vector<std::uint64_t> stealsByWorker() const;

  static constexpr std::uint64_t kDefaultSeed = 0x5ca1ab1e0ddba11ULL;

 private:
  void workerLoop(std::size_t self);

  /// Pop from our own deque's front, else steal from the back of the
  /// longest other deque (ties broken by our seeded RNG's scan offset).
  /// Returns false when every deque is empty. Caller holds mutex_.
  bool popTask(std::size_t self, Task& task);

  std::vector<std::deque<Task>> deques_;
  std::vector<support::Rng> rngs_;             ///< per-worker, deterministic
  std::vector<std::uint64_t> stealsByWorker_;
  std::vector<std::thread> workers_;

  mutable std::mutex mutex_;  ///< guards deques_, rngs_, counters, lifecycle
  std::condition_variable batchStart_;
  std::condition_variable batchDone_;
  std::condition_variable frontier_;  ///< signalled on submit / batch end
  std::uint64_t generation_ = 0;      ///< bumped once per run() batch
  std::size_t remaining_ = 0;         ///< tasks not yet finished this batch
  bool shuttingDown_ = false;

  std::atomic<std::uint64_t> tasksStolen_{0};
};

}  // namespace lazyhb::campaign
