// lazyhb/campaign/work_stealing_pool.hpp
//
// The campaign runner's executor: a fixed set of OS threads, one task deque
// per worker, with work stealing. Campaign cells vary wildly in cost (a
// complete DFS of a 2-thread program vs. 100,000 schedules of a contended
// one), so a single shared queue serves long tasks tail-heavy: the last big
// cell lands on one worker while the rest idle. Dealing the matrix
// round-robin and letting idle workers steal from the *back* of a victim's
// deque keeps every hardware thread busy until the global frontier drains.
//
// Tasks are independent and must not throw (support::ThreadPool's contract,
// kept here): an experiment harness has no meaningful recovery from a lost
// result, so an escaping exception terminates the process via noexcept.
//
// This pool is deliberately simple — mutex-per-deque, not a lock-free
// Chase–Lev deque. Campaign tasks run for milliseconds to minutes, so
// queue operations are nowhere near the contention regime that justifies
// lock-free structures; what matters is the *stealing policy*, which is
// what balances the matrix.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lazyhb::campaign {

class WorkStealingPool {
 public:
  using Task = std::function<void()>;

  /// Create `workers` OS threads (values < 1 clamp to 1). Threads persist
  /// across run() batches and park on a condition variable between them.
  explicit WorkStealingPool(int workers);

  /// Joins all workers. Must not be called while run() is in flight.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Execute every task in `tasks`, blocking until all have finished.
  /// Tasks are dealt round-robin across the worker deques; idle workers
  /// steal from the back of the busiest remaining deque. Not reentrant.
  void run(std::vector<Task> tasks);

  [[nodiscard]] int workerCount() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Tasks executed by a worker other than the one they were dealt to,
  /// accumulated across run() batches. A load-balance diagnostic.
  [[nodiscard]] std::uint64_t tasksStolen() const noexcept {
    return tasksStolen_.load(std::memory_order_relaxed);
  }

 private:
  struct WorkerDeque {
    std::mutex mutex;
    std::deque<std::size_t> tasks;  ///< indices into tasks_
  };

  void workerLoop(std::size_t self);

  /// Pop from our own deque's front, else steal from the back of the
  /// longest other deque. Returns false when the batch frontier is empty.
  bool nextTask(std::size_t self, std::size_t& taskIndex);

  std::vector<std::unique_ptr<WorkerDeque>> deques_;
  std::vector<std::thread> workers_;
  std::vector<Task> tasks_;

  std::mutex mutex_;                  ///< guards batch lifecycle state below
  std::condition_variable batchStart_;
  std::condition_variable batchDone_;
  std::uint64_t generation_ = 0;      ///< bumped once per run() batch
  std::size_t remaining_ = 0;         ///< tasks not yet finished this batch
  bool shuttingDown_ = false;

  std::atomic<std::uint64_t> tasksStolen_{0};
};

}  // namespace lazyhb::campaign
