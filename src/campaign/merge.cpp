#include "campaign/merge.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "support/diagnostics.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"

namespace lazyhb::campaign {
namespace {

struct ParsedReport {
  std::string label;
  ReportConfig config;
  std::vector<std::string> explorers;
  std::vector<CellResult> cells;
  std::vector<MergeSource> sources;  ///< flattened provenance contribution
  double wallSeconds = 0.0;
  std::uint64_t tasksStolen = 0;
};

[[noreturn]] void raise(const std::string& label, const std::string& message) {
  throw std::runtime_error("lazyhb: " + label + ": " + message);
}

ParsedReport parseReport(const std::string& document, const std::string& label) {
  ParsedReport report;
  report.label = label;

  std::string parseError;
  const auto root = support::JsonValue::parse(document, &parseError);
  if (root == nullptr) raise(label, "not valid JSON (" + parseError + ")");
  if (!root->isObject()) raise(label, "not a report object");
  if (root->stringAt("schema") != kReportSchemaName) {
    raise(label, "not a " + std::string(kReportSchemaName) + " document");
  }
  const auto version = root->intAt("version", -1);
  if (version != kReportSchemaVersion) {
    raise(label, "schema version " + std::to_string(version) +
                     " (mergeable reports are version " +
                     std::to_string(kReportSchemaVersion) + ")");
  }

  const support::JsonValue* config = root->find("config");
  if (config == nullptr || !config->isObject()) {
    raise(label, "missing config block");
  }
  report.config.scheduleLimit = config->uintAt("limit");
  report.config.maxEventsPerSchedule =
      static_cast<std::uint32_t>(config->uintAt("max_events"));
  report.config.seed = config->uintAt("seed");
  report.config.quick = config->boolAt("quick");
  report.config.incremental = config->boolAt("incremental", true);
  if (!config->has("workers")) {
    raise(label, "config.workers is missing (mandatory since schema v4)");
  }
  report.config.workers = static_cast<int>(config->intAt("workers", 1));
  if (!config->has("snapshot_budget")) {
    raise(label, "config.snapshot_budget is missing (mandatory since schema v6)");
  }
  report.config.snapshotBudgetBytes = config->uintAt("snapshot_budget");
  if (!config->has("memory_model")) {
    raise(label, "config.memory_model is missing (mandatory since schema v8)");
  }
  report.config.memoryModel = config->stringAt("memory_model");
  if (const support::JsonValue* shard = config->find("shard")) {
    report.config.shardIndex = static_cast<int>(shard->intAt("index"));
    report.config.shardCount = static_cast<int>(shard->intAt("count", 1));
  }
  const support::JsonValue* explorers = config->find("explorers");
  if (explorers == nullptr || !explorers->isArray() ||
      explorers->items().empty()) {
    raise(label, "config.explorers is missing or empty");
  }
  for (const support::JsonValue& name : explorers->items()) {
    report.explorers.push_back(name.asString());
  }

  const support::JsonValue* cells = root->find("cells");
  if (cells == nullptr || !cells->isArray()) {
    raise(label, "missing cells array");
  }
  for (const support::JsonValue& value : cells->items()) {
    CellResult cell;
    std::string cellError;
    if (!parseCellJson(value, &cell, &cellError)) raise(label, cellError);
    report.cells.push_back(std::move(cell));
  }

  if (const support::JsonValue* totals = root->find("totals")) {
    report.wallSeconds = totals->doubleAt("wall_seconds");
    report.tasksStolen = totals->uintAt("tasks_stolen");
  }

  // Provenance: a previously merged report contributes its own sources
  // (flattened — the provenance chain stays one level deep however many
  // merge rounds happened); a direct report contributes itself.
  const support::JsonValue* merge = root->find("merge");
  const support::JsonValue* sources =
      merge == nullptr ? nullptr : merge->find("sources");
  if (sources != nullptr && sources->isArray() && !sources->items().empty()) {
    for (const support::JsonValue& value : sources->items()) {
      MergeSource source;
      source.label = value.stringAt("label");
      source.shardIndex = static_cast<int>(value.intAt("shard_index"));
      source.shardCount = static_cast<int>(value.intAt("shard_count", 1));
      source.cells = value.uintAt("cells");
      report.sources.push_back(std::move(source));
    }
  } else {
    MergeSource source;
    source.label = label;
    source.shardIndex = report.config.shardIndex;
    source.shardCount = report.config.shardCount;
    source.cells = report.cells.size();
    report.sources.push_back(std::move(source));
  }
  return report;
}

/// The count fields the determinism contract covers — two clean runs of one
/// configuration must agree on all of these.
bool countsEqual(const CellResult& a, const CellResult& b) {
  return a.stats.schedulesExecuted == b.stats.schedulesExecuted &&
         a.stats.terminalSchedules == b.stats.terminalSchedules &&
         a.stats.prunedSchedules == b.stats.prunedSchedules &&
         a.stats.violationSchedules == b.stats.violationSchedules &&
         a.stats.totalEvents == b.stats.totalEvents &&
         a.stats.eventsElided == b.stats.eventsElided &&
         a.stats.eventsReplayed == b.stats.eventsReplayed &&
         a.stats.distinctHbrs == b.stats.distinctHbrs &&
         a.stats.distinctLazyHbrs == b.stats.distinctLazyHbrs &&
         a.stats.distinctStates == b.stats.distinctStates &&
         a.stats.complete == b.stats.complete &&
         a.stats.hitScheduleLimit == b.stats.hitScheduleLimit;
}

std::string serializeCell(const CellResult& cell) {
  support::JsonWriter json;
  writeCellJson(json, cell);
  return json.str();
}

/// Deterministic, argument-order-independent preference between duplicate
/// copies of one cell: healthy beats failed, finished beats timed-out,
/// deeper beats shallower; the serialized form breaks the final tie so
/// merging is commutative down to the byte.
bool preferred(const CellResult& a, const CellResult& b) {
  if (a.failed() != b.failed()) return !a.failed();
  if (a.timedOut != b.timedOut) return !a.timedOut;
  if (a.stats.schedulesExecuted != b.stats.schedulesExecuted) {
    return a.stats.schedulesExecuted > b.stats.schedulesExecuted;
  }
  return serializeCell(a) <= serializeCell(b);
}

std::string describeCounts(const CellResult& cell) {
  return "schedules=" + std::to_string(cell.stats.schedulesExecuted) +
         " hbrs=" + std::to_string(cell.stats.distinctHbrs) +
         " lazy_hbrs=" + std::to_string(cell.stats.distinctLazyHbrs) +
         " states=" + std::to_string(cell.stats.distinctStates) +
         " events=" + std::to_string(cell.stats.totalEvents);
}

void checkConfigCompatible(const ParsedReport& base, const ParsedReport& other) {
  const auto mismatch = [&](const std::string& field) {
    throw std::runtime_error(
        "lazyhb: cannot merge '" + other.label + "' with '" + base.label +
        "': config." + field +
        " differs — merged counts would mix incomparable campaigns");
  };
  if (other.config.scheduleLimit != base.config.scheduleLimit) mismatch("limit");
  if (other.config.maxEventsPerSchedule != base.config.maxEventsPerSchedule) {
    mismatch("max_events");
  }
  if (other.config.seed != base.config.seed) mismatch("seed");
  if (other.config.quick != base.config.quick) mismatch("quick");
  if (other.config.incremental != base.config.incremental) mismatch("incremental");
  if (other.config.workers != base.config.workers) mismatch("workers");
  if (other.config.snapshotBudgetBytes != base.config.snapshotBudgetBytes) {
    mismatch("snapshot_budget");
  }
  if (other.config.memoryModel != base.config.memoryModel) {
    mismatch("memory_model");
  }
  if (other.explorers != base.explorers) mismatch("explorers");
}

}  // namespace

MergeOutcome mergeReports(const std::vector<std::string>& documents,
                          const std::vector<std::string>& labels) {
  if (documents.empty()) {
    throw std::runtime_error("lazyhb: nothing to merge");
  }
  LAZYHB_CHECK(documents.size() == labels.size());

  std::vector<ParsedReport> reports;
  reports.reserve(documents.size());
  for (std::size_t i = 0; i < documents.size(); ++i) {
    reports.push_back(parseReport(documents[i], labels[i]));
  }
  for (std::size_t i = 1; i < reports.size(); ++i) {
    checkConfigCompatible(reports.front(), reports[i]);
  }
  const std::vector<std::string>& explorerOrder = reports.front().explorers;
  const auto explorerPosition = [&](const CellResult& cell,
                                    const std::string& label) {
    for (std::size_t e = 0; e < explorerOrder.size(); ++e) {
      if (explorerOrder[e] == cell.explorer) return e;
    }
    raise(label, "cell '" + cell.program + "' names explorer '" +
                     cell.explorer + "' outside config.explorers");
  };

  // Union with dedup: one slot per (program, explorer) cell.
  std::map<std::pair<int, std::size_t>, CellResult> merged;
  for (const ParsedReport& report : reports) {
    for (const CellResult& cell : report.cells) {
      const auto key = std::make_pair(cell.programId,
                                      explorerPosition(cell, report.label));
      const auto it = merged.find(key);
      if (it == merged.end()) {
        merged.emplace(key, cell);
        continue;
      }
      CellResult& kept = it->second;
      const bool bothClean = !kept.failed() && !kept.timedOut &&
                             !cell.failed() && !cell.timedOut;
      if (bothClean && !countsEqual(kept, cell)) {
        throw std::runtime_error(
            "lazyhb: conflicting counts for cell (" + cell.program + ", " +
            cell.explorer + ") while merging '" + report.label +
            "': " + describeCounts(kept) + " vs " + describeCounts(cell) +
            " — two clean runs of one configuration can never disagree, so "
            "the inputs do not come from the same campaign configuration");
      }
      if (preferred(cell, kept)) kept = cell;
    }
  }

  MergeOutcome outcome;
  outcome.config = reports.front().config;
  // The merged report is not a shard: its coverage is the union, described
  // by the merge provenance block rather than a shard slice.
  outcome.config.shardIndex = 0;
  outcome.config.shardCount = 1;

  std::vector<CellResult> cells;
  cells.reserve(merged.size());
  for (auto& entry : merged) {
    CellResult cell = std::move(entry.second);
    // Re-check the §3 chain from the merged cell's own counts — a merged
    // report must not inherit inequality verdicts it cannot verify.
    if (!cell.failed()) {
      cell.inequalityDiagnostic =
          core::checkCountingChain(cell.counts(), outcome.config.scheduleLimit);
    }
    cells.push_back(std::move(cell));
  }
  outcome.result = foldCells(std::move(cells), explorerOrder);

  // Cross-report aggregates with no per-cell decomposition: wall time is
  // the slowest input (shards run concurrently); steal counts just sum.
  // jobs has no meaning for a merged report and reads 0.
  outcome.result.jobs = 0;
  for (const ParsedReport& report : reports) {
    outcome.result.wallSeconds =
        std::max(outcome.result.wallSeconds, report.wallSeconds);
    outcome.result.tasksStolen += report.tasksStolen;
    for (const MergeSource& source : report.sources) {
      outcome.provenance.sources.push_back(source);
    }
  }
  std::sort(outcome.provenance.sources.begin(), outcome.provenance.sources.end(),
            [](const MergeSource& a, const MergeSource& b) {
              if (a.shardCount != b.shardCount) return a.shardCount < b.shardCount;
              if (a.shardIndex != b.shardIndex) return a.shardIndex < b.shardIndex;
              if (a.label != b.label) return a.label < b.label;
              return a.cells < b.cells;
            });
  return outcome;
}

}  // namespace lazyhb::campaign
