#include "campaign/report.hpp"

#include <cstdio>

#include "support/json_writer.hpp"

namespace lazyhb::campaign {
namespace {

void writeCell(support::JsonWriter& json, const CellResult& cell) {
  json.beginObject();
  json.field("program_id", cell.programId);
  json.field("program", cell.program);
  json.field("family", cell.family);
  json.field("explorer", cell.explorer);
  json.field("schedules", cell.stats.schedulesExecuted);
  json.field("terminal", cell.stats.terminalSchedules);
  json.field("pruned", cell.stats.prunedSchedules);
  json.field("violations", cell.stats.violationSchedules);
  json.field("hbrs", cell.stats.distinctHbrs);
  json.field("lazy_hbrs", cell.stats.distinctLazyHbrs);
  json.field("states", cell.stats.distinctStates);
  json.field("events", cell.stats.totalEvents);
  json.field("events_elided", cell.stats.eventsElided);
  json.field("events_replayed", cell.stats.eventsReplayed);
  json.field("complete", cell.stats.complete);
  json.field("hit_schedule_limit", cell.stats.hitScheduleLimit);
  json.field("wall_seconds", cell.wallSeconds);
  json.field("events_per_second", cell.eventsPerSecond);
  json.field("executed_events_per_second", cell.executedEventsPerSecond);
  json.key("inequality").beginObject();
  json.field("holds", cell.inequalityHolds());
  json.field("diagnostic", cell.inequalityDiagnostic);
  json.endObject();
  if (cell.stats.cacheStats.enabled) {
    const explore::PrefixCacheStats& cache = cell.stats.cacheStats;
    json.key("cache").beginObject();
    json.field("lookups", cache.lookups);
    json.field("hits", cache.hits);
    json.field("insertions", cache.insertions);
    json.field("entries", cache.entries);
    json.field("approx_bytes", cache.approxBytes);
    json.endObject();
  }
  if (cell.stats.parallel.workers > 0) {
    // Schema v4: how the cell's intra-scenario sharding distributed work.
    // All *count* fields above are byte-identical to a sequential run; this
    // block carries only the parallel-only diagnostics.
    const explore::ParallelStats& par = cell.stats.parallel;
    json.key("parallel").beginObject();
    json.field("workers", static_cast<std::int64_t>(par.workers));
    json.field("frontier_jobs", par.frontierJobs);
    json.field("fell_back_sequential", par.fellBackSequential);
    json.key("by_worker").beginArray();
    for (const explore::WorkerShare& share : par.byWorker) {
      json.beginObject();
      json.field("schedules_visited", share.schedulesVisited);
      json.field("tasks_stolen", share.tasksStolen);
      json.endObject();
    }
    json.endArray();
    json.endObject();
  }
  json.endObject();
}

void writeProgram(support::JsonWriter& json, const ProgramSummary& program) {
  json.beginObject();
  json.field("id", program.id);
  json.field("program", program.program);
  json.field("family", program.family);
  json.field("inequality_holds", program.inequalityHolds);
  if (program.hasDpor) {
    json.key("dpor").beginObject();
    json.field("hbrs", program.dporHbrs);
    json.field("lazy_hbrs", program.dporLazyHbrs);
    json.field("redundant_hbr_percent", program.redundantHbrPercent);
    json.field("below_diagonal", program.belowDiagonal);
    json.endObject();
  }
  if (program.hasCachingPair) {
    json.key("caching").beginObject();
    json.field("lazy_hbrs_by_full_caching", program.lazyHbrsByFullCaching);
    json.field("lazy_hbrs_by_lazy_caching", program.lazyHbrsByLazyCaching);
    json.field("differs", program.cachingDiffers);
    json.endObject();
  }
  if (program.hasDfsBaseline) {
    json.key("dfs_baseline").beginObject();
    json.field("schedules", program.dfsSchedules);
    json.field("dpor_schedule_ratio", program.dporScheduleRatio);
    json.field("caching_lazy_schedule_ratio", program.cachingLazyScheduleRatio);
    json.endObject();
  }
  json.endObject();
}

void writeExplorerTotals(support::JsonWriter& json, const ExplorerTotals& t) {
  json.beginObject();
  json.field("explorer", t.explorer);
  json.field("cells", t.cells);
  json.field("schedules", t.schedules);
  json.field("terminal", t.terminal);
  json.field("pruned", t.pruned);
  json.field("violations", t.violations);
  json.field("events", t.events);
  json.field("events_elided", t.eventsElided);
  json.field("events_replayed", t.eventsReplayed);
  json.field("hbrs", t.hbrs);
  json.field("lazy_hbrs", t.lazyHbrs);
  json.field("states", t.states);
  json.field("wall_seconds", t.wallSeconds);
  json.field("events_per_second", t.eventsPerSecond);
  json.field("executed_events_per_second", t.executedEventsPerSecond);
  json.field("cache_entries", t.cacheEntries);
  json.field("cache_hits", t.cacheHits);
  json.field("cache_approx_bytes", t.cacheApproxBytes);
  json.field("inequality_violations",
             static_cast<std::int64_t>(t.inequalityViolations));
  json.endObject();
}

}  // namespace

std::string writeReportJson(const CampaignResult& result,
                            const ReportConfig& config) {
  support::JsonWriter json;
  json.beginObject();
  json.field("schema", kReportSchemaName);
  json.field("version", kReportSchemaVersion);

  json.key("config").beginObject();
  json.field("limit", config.scheduleLimit);
  json.field("max_events", static_cast<std::uint64_t>(config.maxEventsPerSchedule));
  json.field("seed", config.seed);
  json.field("jobs", result.jobs);
  json.field("workers", static_cast<std::int64_t>(config.workers));
  json.field("quick", config.quick);
  json.field("incremental", config.incremental);
  json.key("explorers").beginArray();
  for (const ExplorerTotals& totals : result.perExplorer) {
    json.value(totals.explorer);
  }
  json.endArray();
  json.field("program_count", static_cast<std::uint64_t>(result.programs.size()));
  json.endObject();

  json.key("totals").beginObject();
  json.field("cells", static_cast<std::uint64_t>(result.cells.size()));
  json.field("schedules", result.totalSchedules);
  json.field("events", result.totalEvents);
  json.field("events_elided", result.totalEventsElided);
  json.field("events_replayed", result.totalEventsReplayed);
  json.field("wall_seconds", result.wallSeconds);
  json.field("cpu_seconds", result.cpuSeconds);
  json.field("events_per_second", result.eventsPerSecond);
  json.field("executed_events_per_second", result.executedEventsPerSecond);
  json.field("tasks_stolen", result.tasksStolen);
  json.field("inequality_violations",
             static_cast<std::int64_t>(result.inequalityViolations));
  json.key("per_explorer").beginArray();
  for (const ExplorerTotals& totals : result.perExplorer) {
    writeExplorerTotals(json, totals);
  }
  json.endArray();
  json.endObject();

  json.key("programs").beginArray();
  for (const ProgramSummary& program : result.programs) {
    writeProgram(json, program);
  }
  json.endArray();

  json.key("cells").beginArray();
  for (const CellResult& cell : result.cells) {
    writeCell(json, cell);
  }
  json.endArray();

  json.endObject();
  return json.str() + "\n";
}

bool writeReportFile(const std::string& path, const CampaignResult& result,
                     const ReportConfig& config) {
  const std::string document = writeReportJson(result, config);
  if (path == "-") {
    std::fputs(document.c_str(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "lazyhb: cannot write report to '%s'\n", path.c_str());
    return false;
  }
  bool ok =
      std::fwrite(document.data(), 1, document.size(), file) == document.size();
  // fclose flushes the stdio buffer; a full disk surfaces here, not in fwrite.
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    std::fprintf(stderr, "lazyhb: short write to '%s'\n", path.c_str());
  }
  return ok;
}

}  // namespace lazyhb::campaign
