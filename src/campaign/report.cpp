#include "campaign/report.hpp"

#include <cstdio>

#include "support/json_reader.hpp"
#include "support/json_writer.hpp"

namespace lazyhb::campaign {
namespace {

void writeProgram(support::JsonWriter& json, const ProgramSummary& program) {
  json.beginObject();
  json.field("id", program.id);
  json.field("program", program.program);
  json.field("family", program.family);
  json.field("inequality_holds", program.inequalityHolds);
  if (program.hasDpor) {
    json.key("dpor").beginObject();
    json.field("hbrs", program.dporHbrs);
    json.field("lazy_hbrs", program.dporLazyHbrs);
    json.field("redundant_hbr_percent", program.redundantHbrPercent);
    json.field("below_diagonal", program.belowDiagonal);
    json.endObject();
  }
  if (program.hasCachingPair) {
    json.key("caching").beginObject();
    json.field("lazy_hbrs_by_full_caching", program.lazyHbrsByFullCaching);
    json.field("lazy_hbrs_by_lazy_caching", program.lazyHbrsByLazyCaching);
    json.field("differs", program.cachingDiffers);
    json.endObject();
  }
  if (program.hasDfsBaseline) {
    json.key("dfs_baseline").beginObject();
    json.field("schedules", program.dfsSchedules);
    json.field("dpor_schedule_ratio", program.dporScheduleRatio);
    json.field("caching_lazy_schedule_ratio", program.cachingLazyScheduleRatio);
    json.endObject();
  }
  json.endObject();
}

void writeExplorerTotals(support::JsonWriter& json, const ExplorerTotals& t) {
  json.beginObject();
  json.field("explorer", t.explorer);
  json.field("cells", t.cells);
  json.field("schedules", t.schedules);
  json.field("terminal", t.terminal);
  json.field("pruned", t.pruned);
  json.field("violations", t.violations);
  json.field("events", t.events);
  json.field("events_elided", t.eventsElided);
  json.field("events_replayed", t.eventsReplayed);
  json.field("hbrs", t.hbrs);
  json.field("lazy_hbrs", t.lazyHbrs);
  json.field("value_classes", t.valueClasses);
  json.field("states", t.states);
  json.field("wall_seconds", t.wallSeconds);
  json.field("events_per_second", t.eventsPerSecond);
  json.field("executed_events_per_second", t.executedEventsPerSecond);
  json.field("cache_entries", t.cacheEntries);
  json.field("cache_hits", t.cacheHits);
  json.field("cache_approx_bytes", t.cacheApproxBytes);
  json.field("checkpoint_stages", t.checkpointStages);
  json.field("checkpoint_bytes_staged", t.checkpointBytesStaged);
  json.field("checkpoint_evictions", t.checkpointEvictions);
  json.field("checkpoint_replay_fallbacks", t.checkpointReplayFallbacks);
  json.field("inequality_violations",
             static_cast<std::int64_t>(t.inequalityViolations));
  json.endObject();
}

}  // namespace

void writeCellJson(support::JsonWriter& json, const CellResult& cell) {
  json.beginObject();
  json.field("program_id", cell.programId);
  json.field("program", cell.program);
  json.field("family", cell.family);
  json.field("explorer", cell.explorer);
  json.field("schedules", cell.stats.schedulesExecuted);
  json.field("terminal", cell.stats.terminalSchedules);
  json.field("pruned", cell.stats.prunedSchedules);
  json.field("violations", cell.stats.violationSchedules);
  json.field("hbrs", cell.stats.distinctHbrs);
  json.field("lazy_hbrs", cell.stats.distinctLazyHbrs);
  // Schema v7: distinct terminal value classes — the observation-centric
  // count the extended §3 chain runs through.
  json.field("value_classes", cell.stats.distinctValueClasses);
  json.field("states", cell.stats.distinctStates);
  json.field("events", cell.stats.totalEvents);
  json.field("events_elided", cell.stats.eventsElided);
  json.field("events_replayed", cell.stats.eventsReplayed);
  json.field("complete", cell.stats.complete);
  json.field("hit_schedule_limit", cell.stats.hitScheduleLimit);
  json.field("wall_seconds", cell.wallSeconds);
  json.field("events_per_second", cell.eventsPerSecond);
  json.field("executed_events_per_second", cell.executedEventsPerSecond);
  json.key("inequality").beginObject();
  json.field("holds", cell.inequalityHolds());
  json.field("diagnostic", cell.inequalityDiagnostic);
  json.endObject();
  // Schema v5 supervisor provenance — emitted only off the defaults, so a
  // clean unsharded campaign's cell blocks are byte-identical to v4 ones.
  if (cell.timedOut) json.field("timed_out", true);
  if (cell.attempts > 1) json.field("attempts", static_cast<std::int64_t>(cell.attempts));
  if (cell.failed()) json.field("error", cell.error);
  if (cell.fromCheckpoint) json.field("from_checkpoint", true);
  if (cell.stats.cacheStats.enabled) {
    const explore::PrefixCacheStats& cache = cell.stats.cacheStats;
    json.key("cache").beginObject();
    json.field("lookups", cache.lookups);
    json.field("hits", cache.hits);
    json.field("insertions", cache.insertions);
    json.field("entries", cache.entries);
    json.field("approx_bytes", cache.approxBytes);
    json.endObject();
  }
  if (cell.stats.checkpointStats.enabled) {
    // Schema v6: the incremental engine's checkpoint economics. Staging and
    // eviction are pure performance policy, so these are diagnostics for
    // the bench_diff scoreboard, never count-compared.
    const explore::CheckpointStats& ckpt = cell.stats.checkpointStats;
    json.key("checkpoint").beginObject();
    json.field("stages", ckpt.stages);
    json.field("bytes_staged", ckpt.bytesStaged);
    json.field("evictions", ckpt.evictions);
    json.field("replay_fallbacks", ckpt.replayFallbacks);
    json.endObject();
  }
  if (cell.stats.flushEvents > 0 || cell.stats.fenceEvents > 0 ||
      cell.stats.maxBufferedStores > 0) {
    // Schema v8: TSO store-buffer activity. Emitted only when nonzero, so
    // every SC cell block stays byte-identical to its v7 encoding.
    json.key("tso").beginObject();
    json.field("flush_events", cell.stats.flushEvents);
    json.field("fence_events", cell.stats.fenceEvents);
    json.field("max_buffered_stores",
               static_cast<std::uint64_t>(cell.stats.maxBufferedStores));
    json.endObject();
  }
  if (cell.stats.parallel.workers > 0) {
    // Schema v4: how the cell's intra-scenario sharding distributed work.
    // All *count* fields above are byte-identical to a sequential run; this
    // block carries only the parallel-only diagnostics.
    const explore::ParallelStats& par = cell.stats.parallel;
    json.key("parallel").beginObject();
    json.field("workers", static_cast<std::int64_t>(par.workers));
    json.field("frontier_jobs", par.frontierJobs);
    json.field("fell_back_sequential", par.fellBackSequential);
    json.key("by_worker").beginArray();
    for (const explore::WorkerShare& share : par.byWorker) {
      json.beginObject();
      json.field("schedules_visited", share.schedulesVisited);
      json.field("tasks_stolen", share.tasksStolen);
      json.endObject();
    }
    json.endArray();
    json.endObject();
  }
  json.endObject();
}

bool parseCellJson(const support::JsonValue& value, CellResult* cell,
                   std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (!value.isObject()) return fail("cell is not an object");
  for (const char* key :
       {"program_id", "program", "family", "explorer", "schedules", "hbrs",
        "lazy_hbrs", "states", "events"}) {
    if (!value.has(key)) {
      return fail(std::string("cell is missing '") + key + "'");
    }
  }

  *cell = CellResult{};
  cell->programId = static_cast<int>(value.intAt("program_id"));
  cell->program = value.stringAt("program");
  cell->family = value.stringAt("family");
  cell->explorer = value.stringAt("explorer");
  if (cell->program.empty() || cell->explorer.empty()) {
    return fail("cell has an empty program or explorer name");
  }
  cell->stats.schedulesExecuted = value.uintAt("schedules");
  cell->stats.terminalSchedules = value.uintAt("terminal");
  cell->stats.prunedSchedules = value.uintAt("pruned");
  cell->stats.violationSchedules = value.uintAt("violations");
  cell->stats.distinctHbrs = value.uintAt("hbrs");
  cell->stats.distinctLazyHbrs = value.uintAt("lazy_hbrs");
  // Absent in pre-v7 cell blocks; 0 means "not recorded" downstream.
  cell->stats.distinctValueClasses = value.uintAt("value_classes");
  cell->stats.distinctStates = value.uintAt("states");
  cell->stats.totalEvents = value.uintAt("events");
  cell->stats.eventsElided = value.uintAt("events_elided");
  cell->stats.eventsReplayed = value.uintAt("events_replayed");
  cell->stats.complete = value.boolAt("complete");
  cell->stats.hitScheduleLimit = value.boolAt("hit_schedule_limit");
  cell->wallSeconds = value.doubleAt("wall_seconds");
  cell->eventsPerSecond = value.doubleAt("events_per_second");
  cell->executedEventsPerSecond = value.doubleAt("executed_events_per_second");
  if (const support::JsonValue* inequality = value.find("inequality")) {
    cell->inequalityDiagnostic = inequality->stringAt("diagnostic");
  }
  cell->timedOut = value.boolAt("timed_out");
  cell->stats.timedOut = cell->timedOut;
  cell->attempts = static_cast<int>(value.intAt("attempts", 1));
  cell->error = value.stringAt("error");
  cell->fromCheckpoint = value.boolAt("from_checkpoint");
  if (const support::JsonValue* cache = value.find("cache")) {
    cell->stats.cacheStats.enabled = true;
    cell->stats.cacheStats.lookups = cache->uintAt("lookups");
    cell->stats.cacheStats.hits = cache->uintAt("hits");
    cell->stats.cacheStats.insertions = cache->uintAt("insertions");
    cell->stats.cacheStats.entries = cache->uintAt("entries");
    cell->stats.cacheStats.approxBytes = cache->uintAt("approx_bytes");
  }
  if (const support::JsonValue* ckpt = value.find("checkpoint")) {
    cell->stats.checkpointStats.enabled = true;
    cell->stats.checkpointStats.stages = ckpt->uintAt("stages");
    cell->stats.checkpointStats.bytesStaged = ckpt->uintAt("bytes_staged");
    cell->stats.checkpointStats.evictions = ckpt->uintAt("evictions");
    cell->stats.checkpointStats.replayFallbacks = ckpt->uintAt("replay_fallbacks");
  }
  if (const support::JsonValue* tso = value.find("tso")) {
    cell->stats.flushEvents = tso->uintAt("flush_events");
    cell->stats.fenceEvents = tso->uintAt("fence_events");
    cell->stats.maxBufferedStores =
        static_cast<std::uint32_t>(tso->uintAt("max_buffered_stores"));
  }
  if (const support::JsonValue* parallel = value.find("parallel")) {
    cell->stats.parallel.workers = static_cast<int>(parallel->intAt("workers"));
    cell->stats.parallel.frontierJobs = parallel->uintAt("frontier_jobs");
    cell->stats.parallel.fellBackSequential =
        parallel->boolAt("fell_back_sequential");
    if (const support::JsonValue* byWorker = parallel->find("by_worker")) {
      for (const support::JsonValue& share : byWorker->items()) {
        explore::WorkerShare ws;
        ws.schedulesVisited = share.uintAt("schedules_visited");
        ws.tasksStolen = share.uintAt("tasks_stolen");
        cell->stats.parallel.byWorker.push_back(ws);
      }
    }
  }
  return true;
}

std::string writeReportJson(const CampaignResult& result,
                            const ReportConfig& config,
                            const MergeProvenance* provenance) {
  support::JsonWriter json;
  json.beginObject();
  json.field("schema", kReportSchemaName);
  json.field("version", kReportSchemaVersion);

  json.key("config").beginObject();
  json.field("limit", config.scheduleLimit);
  json.field("max_events", static_cast<std::uint64_t>(config.maxEventsPerSchedule));
  json.field("seed", config.seed);
  json.field("jobs", result.jobs);
  json.field("workers", static_cast<std::int64_t>(config.workers));
  json.field("quick", config.quick);
  json.field("incremental", config.incremental);
  json.field("snapshot_budget", config.snapshotBudgetBytes);
  json.field("memory_model", config.memoryModel);
  if (config.shardCount > 1) {
    json.key("shard").beginObject();
    json.field("index", static_cast<std::int64_t>(config.shardIndex));
    json.field("count", static_cast<std::int64_t>(config.shardCount));
    json.endObject();
  }
  json.key("explorers").beginArray();
  for (const ExplorerTotals& totals : result.perExplorer) {
    json.value(totals.explorer);
  }
  json.endArray();
  json.field("program_count", static_cast<std::uint64_t>(result.programs.size()));
  json.endObject();

  if (provenance != nullptr && !provenance->sources.empty()) {
    json.key("merge").beginObject();
    json.key("sources").beginArray();
    for (const MergeSource& source : provenance->sources) {
      json.beginObject();
      json.field("label", source.label);
      json.field("shard_index", static_cast<std::int64_t>(source.shardIndex));
      json.field("shard_count", static_cast<std::int64_t>(source.shardCount));
      json.field("cells", source.cells);
      json.endObject();
    }
    json.endArray();
    json.endObject();
  }

  json.key("totals").beginObject();
  json.field("cells", static_cast<std::uint64_t>(result.cells.size()));
  json.field("schedules", result.totalSchedules);
  json.field("events", result.totalEvents);
  json.field("events_elided", result.totalEventsElided);
  json.field("events_replayed", result.totalEventsReplayed);
  json.field("wall_seconds", result.wallSeconds);
  json.field("cpu_seconds", result.cpuSeconds);
  json.field("events_per_second", result.eventsPerSecond);
  json.field("executed_events_per_second", result.executedEventsPerSecond);
  json.field("tasks_stolen", result.tasksStolen);
  json.field("inequality_violations",
             static_cast<std::int64_t>(result.inequalityViolations));
  // Schema v5 supervisor/durability tallies, off-default only.
  if (result.cellsTimedOut > 0) {
    json.field("cells_timed_out", static_cast<std::int64_t>(result.cellsTimedOut));
  }
  if (result.cellsFailed > 0) {
    json.field("cells_failed", static_cast<std::int64_t>(result.cellsFailed));
  }
  if (result.cellsRetried > 0) {
    json.field("cells_retried", static_cast<std::int64_t>(result.cellsRetried));
  }
  if (result.cellsFromCheckpoint > 0) {
    json.field("cells_from_checkpoint",
               static_cast<std::uint64_t>(result.cellsFromCheckpoint));
  }
  json.key("per_explorer").beginArray();
  for (const ExplorerTotals& totals : result.perExplorer) {
    writeExplorerTotals(json, totals);
  }
  json.endArray();
  json.endObject();

  json.key("programs").beginArray();
  for (const ProgramSummary& program : result.programs) {
    writeProgram(json, program);
  }
  json.endArray();

  json.key("cells").beginArray();
  for (const CellResult& cell : result.cells) {
    writeCellJson(json, cell);
  }
  json.endArray();

  json.endObject();
  return json.str() + "\n";
}

bool writeReportFile(const std::string& path, const CampaignResult& result,
                     const ReportConfig& config,
                     const MergeProvenance* provenance) {
  const std::string document = writeReportJson(result, config, provenance);
  if (path == "-") {
    std::fputs(document.c_str(), stdout);
    return true;
  }
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "lazyhb: cannot write report to '%s'\n", path.c_str());
    return false;
  }
  bool ok =
      std::fwrite(document.data(), 1, document.size(), file) == document.size();
  // fclose flushes the stdio buffer; a full disk surfaces here, not in fwrite.
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    std::fprintf(stderr, "lazyhb: short write to '%s'\n", path.c_str());
  }
  return ok;
}

}  // namespace lazyhb::campaign
