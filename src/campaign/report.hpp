// lazyhb/campaign/report.hpp
//
// The versioned, machine-readable campaign report (BENCH_*.json). The
// schema is documented in docs/bench-report-schema.md; bump
// kReportSchemaVersion on any field change a consumer could observe.
// Writing goes through support::JsonWriter — no third-party JSON
// dependency.

#pragma once

#include <cstdint>
#include <string>

#include "campaign/campaign.hpp"

namespace lazyhb::campaign {

inline constexpr const char* kReportSchemaName = "lazyhb-bench-report";
inline constexpr int kReportSchemaVersion = 4;

/// The campaign configuration echoed into the report, so a BENCH_*.json is
/// self-describing and two reports are comparable at a glance.
struct ReportConfig {
  std::uint64_t scheduleLimit = 0;
  std::uint32_t maxEventsPerSchedule = 0;
  std::uint64_t seed = 0;
  bool quick = false;
  bool incremental = true;  ///< --incremental toggle the campaign ran with
  /// Intra-scenario worker threads per cell (--workers). Mandatory in a v4
  /// config block: tools/bench_diff.py rejects v4 reports without it, so a
  /// report can never silently hide the parallelism it ran with.
  int workers = 1;
};

/// Serialize the campaign into the versioned report JSON (a full document,
/// newline-terminated).
[[nodiscard]] std::string writeReportJson(const CampaignResult& result,
                                          const ReportConfig& config);

/// Write the report to `path` ("-" means stdout). Returns false (with a
/// message on stderr) when the file cannot be written.
bool writeReportFile(const std::string& path, const CampaignResult& result,
                     const ReportConfig& config);

}  // namespace lazyhb::campaign
