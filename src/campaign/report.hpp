// lazyhb/campaign/report.hpp
//
// The versioned, machine-readable campaign report (BENCH_*.json). The
// schema is documented in docs/bench-report-schema.md; bump
// kReportSchemaVersion on any field change a consumer could observe.
// Writing goes through support::JsonWriter, reading through
// support::JsonValue — no third-party JSON dependency.
//
// The per-cell block serializers are exposed because three producers must
// agree byte-for-byte on the cell encoding: the report writer, the campaign
// journal (campaign/checkpoint.hpp stores one cell block per file), and the
// report merger (campaign/merge.hpp re-reads cell blocks from inputs).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace lazyhb::support {
class JsonWriter;
struct JsonValue;
}  // namespace lazyhb::support

namespace lazyhb::campaign {

inline constexpr const char* kReportSchemaName = "lazyhb-bench-report";
inline constexpr int kReportSchemaVersion = 8;

/// The campaign configuration echoed into the report, so a BENCH_*.json is
/// self-describing and two reports are comparable at a glance.
struct ReportConfig {
  std::uint64_t scheduleLimit = 0;
  std::uint32_t maxEventsPerSchedule = 0;
  std::uint64_t seed = 0;
  bool quick = false;
  bool incremental = true;  ///< --incremental toggle the campaign ran with
  /// Intra-scenario worker threads per cell (--workers). Mandatory in a
  /// v4+ config block: tools/bench_diff.py rejects such reports without it,
  /// so a report can never silently hide the parallelism it ran with.
  int workers = 1;
  /// Snapshot byte budget per cell (--snapshot-budget, 0 = unlimited).
  /// Mandatory in a v6 config block, for the same reason as workers: a
  /// budget small enough to force evictions changes wall time, so two
  /// reports are only comparable with it in view.
  std::uint64_t snapshotBudgetBytes = 0;
  /// Memory model every cell ran under ("sc" or "tso"). Mandatory in a v8
  /// config block: two reports are only count-comparable under the same
  /// model, so bench_diff refuses v8 reports without it.
  std::string memoryModel = "sc";
  /// Which slice of the cell matrix this report covers (schema v5): the
  /// cells with index % shardCount == shardIndex. The config block carries
  /// a "shard" object only when shardCount > 1 — an unsharded report is
  /// byte-compatible with a v4 consumer that ignores the version.
  int shardIndex = 0;
  int shardCount = 1;
};

/// Where a merged report's cells came from: one entry per (transitively)
/// merged input. Emitted as the top-level "merge" block; absent from
/// directly-run reports.
struct MergeSource {
  std::string label;        ///< input filename (or caller-supplied label)
  int shardIndex = 0;       ///< the input's config.shard, 0/1 when unsharded
  int shardCount = 1;
  std::uint64_t cells = 0;  ///< cells the input contributed
};

struct MergeProvenance {
  std::vector<MergeSource> sources;
};

/// Serialize one matrix cell as the schema's cell object. The exact
/// encoding shared by the report's "cells" array and the campaign journal's
/// per-cell files.
void writeCellJson(support::JsonWriter& json, const CellResult& cell);

/// Parse a cell object written by writeCellJson back into a CellResult.
/// Returns false (and sets *error) on a malformed or incomplete block.
/// Fields the report does not carry (violation reproducers, race reports,
/// theorem tallies) come back at their defaults — the journal and the
/// merger only ever need the report-visible projection.
[[nodiscard]] bool parseCellJson(const support::JsonValue& value,
                                 CellResult* cell, std::string* error);

/// Serialize the campaign into the versioned report JSON (a full document,
/// newline-terminated). `provenance`, when non-null and non-empty, becomes
/// the top-level "merge" block.
[[nodiscard]] std::string writeReportJson(
    const CampaignResult& result, const ReportConfig& config,
    const MergeProvenance* provenance = nullptr);

/// Write the report to `path` ("-" means stdout). Returns false (with a
/// message on stderr) when the file cannot be written.
bool writeReportFile(const std::string& path, const CampaignResult& result,
                     const ReportConfig& config,
                     const MergeProvenance* provenance = nullptr);

}  // namespace lazyhb::campaign
