#include "campaign/explorer_spec.hpp"

#include "explore/caching_explorer.hpp"
#include "explore/dfs_explorer.hpp"
#include "explore/dpor_explorer.hpp"
#include "explore/parallel_explorer.hpp"
#include "explore/random_explorer.hpp"
#include "support/diagnostics.hpp"
#include "support/options.hpp"

namespace lazyhb::campaign {

std::unique_ptr<explore::Explorer> ExplorerSpec::create(
    const explore::ExplorerOptions& options, std::uint64_t seed) const {
  if (explore::ParallelExplorer::shardable(options)) {
    // The shardable tree searches go parallel; anything order-sensitive
    // (random's RNG stream, DPOR's visit-ordered backtrack sets, the
    // ablations) keeps its sequential explorer below regardless of the
    // requested worker count.
    switch (kind) {
      case Kind::Dfs:
        return std::make_unique<explore::ParallelExplorer>(
            options, explore::ParallelStrategy::Dfs, seed);
      case Kind::CachingFull:
        return std::make_unique<explore::ParallelExplorer>(
            options, explore::ParallelStrategy::CachingFull, seed);
      case Kind::CachingLazy:
        return std::make_unique<explore::ParallelExplorer>(
            options, explore::ParallelStrategy::CachingLazy, seed);
      case Kind::CachingValue:
        return std::make_unique<explore::ParallelExplorer>(
            options, explore::ParallelStrategy::CachingValue, seed);
      default:
        break;
    }
  }
  switch (kind) {
    case Kind::Dfs:
      return std::make_unique<explore::DfsExplorer>(options);
    case Kind::Random:
      return std::make_unique<explore::RandomExplorer>(options, seed);
    case Kind::Dpor:
      return std::make_unique<explore::DporExplorer>(options);
    case Kind::CachingFull:
      return std::make_unique<explore::CachingExplorer>(options,
                                                        trace::Relation::Full);
    case Kind::CachingLazy:
      return std::make_unique<explore::CachingExplorer>(options,
                                                        trace::Relation::Lazy);
    case Kind::CachingValue:
      return std::make_unique<explore::CachingExplorer>(options,
                                                        trace::Relation::Value);
    case Kind::DporNoSleep: {
      explore::DporOptions dpor;
      dpor.sleepSets = false;
      return std::make_unique<explore::DporExplorer>(options, dpor);
    }
    case Kind::DporLazyCache: {
      explore::DporOptions dpor;
      dpor.cachePrefixes = trace::Relation::Lazy;
      return std::make_unique<explore::DporExplorer>(options, dpor);
    }
  }
  LAZYHB_UNREACHABLE("unhandled ExplorerSpec::Kind");
}

const std::vector<ExplorerSpec>& allExplorers() {
  static const std::vector<ExplorerSpec> specs = {
      {ExplorerSpec::Kind::Dfs, "dfs"},
      {ExplorerSpec::Kind::Random, "random"},
      {ExplorerSpec::Kind::Dpor, "dpor"},
      {ExplorerSpec::Kind::CachingFull, "caching-full"},
      {ExplorerSpec::Kind::CachingLazy, "caching-lazy"},
  };
  return specs;
}

const std::vector<ExplorerSpec>& extendedExplorers() {
  static const std::vector<ExplorerSpec> specs = {
      {ExplorerSpec::Kind::DporNoSleep, "dpor-nosleep"},
      {ExplorerSpec::Kind::DporLazyCache, "dpor-lazy-cache"},
      {ExplorerSpec::Kind::CachingValue, "caching-value"},
  };
  return specs;
}

std::optional<ExplorerSpec> parseExplorerSpec(const std::string& name) {
  for (const ExplorerSpec& spec : allExplorers()) {
    if (spec.name == name) return spec;
  }
  for (const ExplorerSpec& spec : extendedExplorers()) {
    if (spec.name == name) return spec;
  }
  return std::nullopt;
}

std::optional<std::vector<ExplorerSpec>> parseExplorerList(const std::string& csv,
                                                           std::string* badName) {
  if (csv.empty()) return allExplorers();
  std::vector<ExplorerSpec> specs;
  for (const std::string& token : support::splitCsv(csv)) {
    const auto spec = parseExplorerSpec(token);
    if (!spec) {
      if (badName != nullptr) *badName = token;
      return std::nullopt;
    }
    specs.push_back(*spec);
  }
  return specs;
}

std::string explorerNamesHelp(bool includeExtended) {
  std::string out;
  for (const ExplorerSpec& spec : allExplorers()) {
    if (!out.empty()) out += ", ";
    out += spec.name;
  }
  if (includeExtended) {
    for (const ExplorerSpec& spec : extendedExplorers()) {
      out += ", " + spec.name;
    }
  }
  return out;
}

}  // namespace lazyhb::campaign
