// lazyhb/campaign/checkpoint.hpp
//
// The on-disk campaign journal: crash-durable progress for long campaigns.
// A journal directory holds
//
//   manifest.json   — the campaign's count-relevant configuration, written
//                     once at creation; a resume against a directory whose
//                     manifest differs throws (silently mixing counts from
//                     two configurations would poison the determinism
//                     contract).
//   cell-<i>.json   — one file per completed matrix cell, the same cell
//                     object the report's "cells" array carries (written by
//                     campaign::writeCellJson), where <i> is the cell's
//                     program-major matrix index. Written atomically
//                     (tmp + fsync + rename), so a cell file either exists
//                     complete or not at all — a SIGKILL mid-campaign loses
//                     at most the cells in flight.
//
// Resume is therefore trivial: completed cells are the cell files present;
// pending cells are the rest. runCampaign loads the former and re-runs only
// the latter. See docs/campaign-service.md for the workflow.

#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"

namespace lazyhb::campaign {

/// Everything that can change a cell's counts (plus the shard slice, so two
/// shards never share a journal directory by accident). Field-for-field
/// equality with the on-disk manifest gates a resume.
struct JournalConfig {
  std::uint64_t scheduleLimit = 0;
  std::uint32_t maxEventsPerSchedule = 0;
  std::uint64_t seed = 0;
  bool incremental = true;
  int workers = 1;
  std::uint64_t snapshotBudgetBytes = 0;
  std::string memoryModel = "sc";  ///< TSO and SC counts must never mix
  bool detectRaces = false;
  bool checkTheorems = false;
  bool stopOnFirstViolation = false;
  int shardIndex = 0;
  int shardCount = 1;
  /// Explorer / program name lists in matrix order — cell indices are only
  /// meaningful relative to these.
  std::vector<std::string> explorers;
  std::vector<std::string> programs;
};

/// One campaign's journal directory. Construction opens an existing journal
/// (verifying its manifest and loading every completed cell) or creates a
/// fresh one. record() is thread-safe; completed()/loaded() are read-only
/// after construction and need no locking from runCampaign's threads.
class CampaignJournal {
 public:
  /// Throws std::runtime_error when the directory cannot be created, when
  /// an existing manifest does not match `config`, when a cell file is
  /// unreadable, or when `requireExisting` and there is no manifest (the
  /// CLI's --resume against an empty directory).
  CampaignJournal(std::string directory, const JournalConfig& config,
                  bool requireExisting);

  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

  /// True when the journal already holds the cell at matrix slot `index`.
  [[nodiscard]] bool completed(std::size_t index) const {
    return loaded_.count(index) != 0;
  }
  /// The journaled cell at `index`; completed(index) must hold.
  [[nodiscard]] const CellResult& loaded(std::size_t index) const {
    return loaded_.at(index);
  }
  [[nodiscard]] std::size_t completedCount() const noexcept {
    return loaded_.size();
  }

  /// Persist a finished cell atomically. Thread-safe; throws
  /// std::runtime_error when the write fails (a campaign that cannot
  /// journal must not pretend it is durable).
  void record(std::size_t index, const CellResult& cell);

 private:
  std::string directory_;
  std::map<std::size_t, CellResult> loaded_;
  std::mutex writeMutex_;
};

}  // namespace lazyhb::campaign
