// lazyhb/campaign/campaign.hpp
//
// The corpus campaign layer: the paper's evaluation is a *campaign* — every
// benchmark run under every technique, with the interesting quantities (the
// §3 chain #states ≤ #lazyHBRs ≤ #HBRs ≤ #schedules, the Figure 2/3
// redundancy gaps) emerging only from the aggregate. This layer owns the
// (program × explorer) matrix: it fans the cells out across hardware
// threads (WorkStealingPool), times each cell, feeds a thread-safe
// Aggregator, and folds the cells into per-program and per-explorer
// summaries plus campaign totals.
//
// Determinism contract: each cell constructs its own single-use explorer
// from its ExplorerSpec, the engine under it is single-threaded, and
// results land in a slot indexed by the cell's matrix position — so every
// per-cell count is byte-identical whatever --jobs is. Only wall-clock
// fields vary across runs.

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/explorer_spec.hpp"
#include "core/redundancy.hpp"
#include "explore/explorer.hpp"
#include "programs/registry.hpp"

namespace lazyhb::campaign {

/// One matrix cell: `program` explored once by `explorer`.
struct CellResult {
  int programId = 0;
  std::string program;
  std::string family;
  std::string explorer;
  explore::ExplorationResult stats;
  double wallSeconds = 0.0;
  /// Exploration throughput: logical events (elided ones included) per
  /// second — the v2-compatible headline rate; incremental replay raises it
  /// by eliding re-execution.
  double eventsPerSecond = 0.0;
  /// Hardware throughput: executed (non-elided) events per second — the
  /// per-event-cost view, immune to elision inflating the numerator.
  double executedEventsPerSecond = 0.0;
  std::string inequalityDiagnostic;      ///< empty when the §3 chain holds

  [[nodiscard]] bool inequalityHolds() const noexcept {
    return inequalityDiagnostic.empty();
  }
  /// The cell's counts in the shape core::summarizeFig2 / checkCountingChain
  /// consume.
  [[nodiscard]] core::BenchmarkCounts counts() const;
};

/// One program's row across the campaign: the §3 check plus the reduction
/// ratios the figures are built from, each section present only when the
/// campaign ran the explorers it needs.
struct ProgramSummary {
  int id = 0;
  std::string program;
  std::string family;
  bool inequalityHolds = true;  ///< across every cell of this program

  // Figure 2 view (requires a "dpor" cell): unique HBRs the lazy relation
  // proves redundant.
  bool hasDpor = false;
  std::uint64_t dporHbrs = 0;
  std::uint64_t dporLazyHbrs = 0;
  double redundantHbrPercent = 0.0;  ///< (hbrs - lazyHbrs) / hbrs * 100
  bool belowDiagonal = false;        ///< lazyHbrs < hbrs

  // Figure 3 view (requires both caching cells): terminal lazy HBRs reached
  // within the budget by regular vs. lazy HBR caching.
  bool hasCachingPair = false;
  std::uint64_t lazyHbrsByFullCaching = 0;
  std::uint64_t lazyHbrsByLazyCaching = 0;
  bool cachingDiffers = false;  ///< lazy caching reached strictly more

  // Schedule-reduction ratios against the naive DFS baseline (requires a
  // complete "dfs" cell): how many times fewer schedules each reduction ran.
  bool hasDfsBaseline = false;
  std::uint64_t dfsSchedules = 0;
  double dporScheduleRatio = 0.0;         ///< dfs / dpor (0 when dpor absent)
  double cachingLazyScheduleRatio = 0.0;  ///< dfs / caching-lazy (0 when absent)
};

/// Aggregate over every cell of one explorer mode.
struct ExplorerTotals {
  std::string explorer;
  std::uint64_t cells = 0;
  std::uint64_t schedules = 0;
  std::uint64_t terminal = 0;
  std::uint64_t pruned = 0;
  std::uint64_t violations = 0;
  std::uint64_t events = 0;
  std::uint64_t eventsElided = 0;    ///< prefix events skipped via rollback
  std::uint64_t eventsReplayed = 0;  ///< prefix events re-executed to diverge
  std::uint64_t hbrs = 0;      ///< summed distinct terminal HBRs
  std::uint64_t lazyHbrs = 0;  ///< summed distinct terminal lazy HBRs
  std::uint64_t states = 0;    ///< summed distinct terminal states
  double wallSeconds = 0.0;    ///< summed per-cell wall time (CPU view)
  double eventsPerSecond = 0.0;          ///< logical events / wallSeconds
  double executedEventsPerSecond = 0.0;  ///< (events - eventsElided) / wallSeconds
  std::uint64_t cacheEntries = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheApproxBytes = 0;
  int inequalityViolations = 0;
};

struct CampaignResult {
  /// Program-major, explorer-minor — cells[p * explorers + e]. The order is
  /// a function of the option lists alone, never of scheduling.
  std::vector<CellResult> cells;
  std::vector<ProgramSummary> programs;
  std::vector<ExplorerTotals> perExplorer;
  std::uint64_t totalSchedules = 0;
  std::uint64_t totalEvents = 0;
  std::uint64_t totalEventsElided = 0;    ///< summed over all cells
  std::uint64_t totalEventsReplayed = 0;  ///< summed over all cells
  double eventsPerSecond = 0.0;          ///< logical events / cpuSeconds
  double executedEventsPerSecond = 0.0;  ///< executed events / cpuSeconds
  int inequalityViolations = 0;  ///< cells whose §3 chain failed (expect 0)
  double wallSeconds = 0.0;      ///< end-to-end campaign wall time
  double cpuSeconds = 0.0;       ///< sum of per-cell wall times
  std::uint64_t tasksStolen = 0; ///< work-stealing load-balance diagnostic
  int jobs = 1;                  ///< worker threads actually used
};

struct CampaignOptions {
  /// Explorer modes to run (empty: all five).
  std::vector<ExplorerSpec> explorers;
  /// Programs to run (empty: the whole registered corpus).
  std::vector<const programs::ProgramSpec*> programs;
  /// Per-cell exploration options (budget, event cap, ...).
  explore::ExplorerOptions explorer;
  /// Seed for the random explorer; identical in every cell so per-cell
  /// results do not depend on matrix position.
  std::uint64_t seed = 42;
  /// Worker threads; <= 0 picks std::thread::hardware_concurrency().
  int jobs = 0;
  /// Progress hook, invoked after each finished cell (serialized, but from
  /// worker threads). `done` counts finished cells, `total` the matrix size.
  std::function<void(const CellResult& cell, std::size_t done, std::size_t total)>
      onCellDone;
};

/// Collects finished cells from worker threads and folds them into the
/// summaries above. submit() is thread-safe; finish() must be called once,
/// after every cell has been submitted.
class Aggregator {
 public:
  Aggregator(std::size_t programCount, std::size_t explorerCount);

  /// Record the cell at matrix slot `index` (program-major order).
  void submit(std::size_t index, CellResult cell);

  [[nodiscard]] std::size_t cellCount() const noexcept {
    return cells_.size();
  }

  /// Fold the matrix into summaries and totals. Consumes the aggregator.
  [[nodiscard]] CampaignResult finish();

 private:
  std::size_t explorerCount_;
  std::vector<CellResult> cells_;
  std::vector<bool> filled_;
  std::mutex mutex_;
};

/// Run the full (programs × explorers) matrix. The campaign entry point for
/// the CLI's `bench` subcommand and the figure benches.
[[nodiscard]] CampaignResult runCampaign(const CampaignOptions& options);

/// Figure 2 rows (one per program) from a campaign that ran "dpor".
[[nodiscard]] std::vector<core::BenchmarkCounts> fig2Counts(
    const CampaignResult& result);

/// Figure 3 rows (one per program) from a campaign that ran both
/// "caching-full" and "caching-lazy".
[[nodiscard]] std::vector<core::CachingCounts> fig3Counts(
    const CampaignResult& result);

}  // namespace lazyhb::campaign
