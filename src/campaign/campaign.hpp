// lazyhb/campaign/campaign.hpp
//
// The corpus campaign layer: the paper's evaluation is a *campaign* — every
// benchmark run under every technique, with the interesting quantities (the
// §3 chain #states ≤ #lazyHBRs ≤ #HBRs ≤ #schedules, the Figure 2/3
// redundancy gaps) emerging only from the aggregate. This layer owns the
// (program × explorer) matrix: it fans the cells out across hardware
// threads (WorkStealingPool), times each cell, feeds a thread-safe
// Aggregator, and folds the cells into per-program and per-explorer
// summaries plus campaign totals.
//
// Determinism contract: each cell constructs its own single-use explorer
// from its ExplorerSpec, the engine under it is single-threaded, and
// results land in a slot indexed by the cell's matrix position — so every
// per-cell count is byte-identical whatever --jobs is. Only wall-clock
// fields vary across runs.

#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/explorer_spec.hpp"
#include "core/redundancy.hpp"
#include "explore/explorer.hpp"
#include "lazyhb/progress.hpp"
#include "programs/registry.hpp"

namespace lazyhb::campaign {

/// One matrix cell: `program` explored once by `explorer`.
struct CellResult {
  int programId = 0;
  std::string program;
  std::string family;
  std::string explorer;
  explore::ExplorationResult stats;
  double wallSeconds = 0.0;
  /// Exploration throughput: logical events (elided ones included) per
  /// second — the v2-compatible headline rate; incremental replay raises it
  /// by eliding re-execution.
  double eventsPerSecond = 0.0;
  /// Hardware throughput: executed (non-elided) events per second — the
  /// per-event-cost view, immune to elision inflating the numerator.
  double executedEventsPerSecond = 0.0;
  std::string inequalityDiagnostic;      ///< empty when the §3 chain holds

  // Supervisor provenance (campaign-level resilience; see runCampaign).
  int attempts = 1;       ///< explorer runs consumed (> 1: the cell retried)
  bool timedOut = false;  ///< final attempt hit CampaignOptions::cellTimeoutSeconds
  std::string error;      ///< non-empty: every attempt threw; counts are zero
  /// Loaded from a campaign journal instead of being re-run (resume); the
  /// wall-clock fields are the original run's.
  bool fromCheckpoint = false;

  [[nodiscard]] bool inequalityHolds() const noexcept {
    return inequalityDiagnostic.empty();
  }
  [[nodiscard]] bool failed() const noexcept { return !error.empty(); }
  /// The cell's counts in the shape core::summarizeFig2 / checkCountingChain
  /// consume.
  [[nodiscard]] core::BenchmarkCounts counts() const;
};

/// One program's row across the campaign: the §3 check plus the reduction
/// ratios the figures are built from, each section present only when the
/// campaign ran the explorers it needs.
struct ProgramSummary {
  int id = 0;
  std::string program;
  std::string family;
  bool inequalityHolds = true;  ///< across every cell of this program

  // Figure 2 view (requires a "dpor" cell): unique HBRs the lazy relation
  // proves redundant.
  bool hasDpor = false;
  std::uint64_t dporHbrs = 0;
  std::uint64_t dporLazyHbrs = 0;
  double redundantHbrPercent = 0.0;  ///< (hbrs - lazyHbrs) / hbrs * 100
  bool belowDiagonal = false;        ///< lazyHbrs < hbrs

  // Figure 3 view (requires both caching cells): terminal lazy HBRs reached
  // within the budget by regular vs. lazy HBR caching.
  bool hasCachingPair = false;
  std::uint64_t lazyHbrsByFullCaching = 0;
  std::uint64_t lazyHbrsByLazyCaching = 0;
  bool cachingDiffers = false;  ///< lazy caching reached strictly more

  // Schedule-reduction ratios against the naive DFS baseline (requires a
  // complete "dfs" cell): how many times fewer schedules each reduction ran.
  bool hasDfsBaseline = false;
  std::uint64_t dfsSchedules = 0;
  double dporScheduleRatio = 0.0;         ///< dfs / dpor (0 when dpor absent)
  double cachingLazyScheduleRatio = 0.0;  ///< dfs / caching-lazy (0 when absent)
};

/// Aggregate over every cell of one explorer mode.
struct ExplorerTotals {
  std::string explorer;
  std::uint64_t cells = 0;
  std::uint64_t schedules = 0;
  std::uint64_t terminal = 0;
  std::uint64_t pruned = 0;
  std::uint64_t violations = 0;
  std::uint64_t events = 0;
  std::uint64_t eventsElided = 0;    ///< prefix events skipped via rollback
  std::uint64_t eventsReplayed = 0;  ///< prefix events re-executed to diverge
  std::uint64_t hbrs = 0;      ///< summed distinct terminal HBRs
  std::uint64_t lazyHbrs = 0;  ///< summed distinct terminal lazy HBRs
  std::uint64_t valueClasses = 0;  ///< summed distinct terminal value classes
  std::uint64_t states = 0;    ///< summed distinct terminal states
  double wallSeconds = 0.0;    ///< summed per-cell wall time (CPU view)
  double eventsPerSecond = 0.0;          ///< logical events / wallSeconds
  double executedEventsPerSecond = 0.0;  ///< (events - eventsElided) / wallSeconds
  std::uint64_t cacheEntries = 0;
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheApproxBytes = 0;
  /// Summed incremental-checkpoint economics (schema v6; zero when the
  /// explorer ran non-incrementally). Perf diagnostics only — bench_diff
  /// never count-compares them.
  std::uint64_t checkpointStages = 0;
  std::uint64_t checkpointBytesStaged = 0;
  std::uint64_t checkpointEvictions = 0;
  std::uint64_t checkpointReplayFallbacks = 0;
  int inequalityViolations = 0;
};

struct CampaignResult {
  /// Program-major, explorer-minor — cells[p * explorers + e]. The order is
  /// a function of the option lists alone, never of scheduling.
  std::vector<CellResult> cells;
  std::vector<ProgramSummary> programs;
  std::vector<ExplorerTotals> perExplorer;
  std::uint64_t totalSchedules = 0;
  std::uint64_t totalEvents = 0;
  std::uint64_t totalEventsElided = 0;    ///< summed over all cells
  std::uint64_t totalEventsReplayed = 0;  ///< summed over all cells
  double eventsPerSecond = 0.0;          ///< logical events / cpuSeconds
  double executedEventsPerSecond = 0.0;  ///< executed events / cpuSeconds
  int inequalityViolations = 0;  ///< cells whose §3 chain failed (expect 0)
  double wallSeconds = 0.0;      ///< end-to-end campaign wall time
  double cpuSeconds = 0.0;       ///< sum of per-cell wall times
  std::uint64_t tasksStolen = 0; ///< work-stealing load-balance diagnostic
  int jobs = 1;                  ///< worker threads actually used

  // Sharding: this run executed the cells with index % shardCount ==
  // shardIndex (0-based). An unsharded campaign is the 0/1 shard.
  int shardIndex = 0;
  int shardCount = 1;

  // Durability / supervisor tallies.
  std::size_t cellsFromCheckpoint = 0;  ///< satisfied from the journal
  int cellsTimedOut = 0;                ///< cells whose final attempt timed out
  int cellsFailed = 0;                  ///< cells whose every attempt threw
  int cellsRetried = 0;                 ///< cells that needed more than one attempt
};

struct CampaignOptions {
  /// Explorer modes to run (empty: all five).
  std::vector<ExplorerSpec> explorers;
  /// Programs to run (empty: the whole registered corpus).
  std::vector<const programs::ProgramSpec*> programs;
  /// Per-cell exploration options (budget, event cap, ...).
  explore::ExplorerOptions explorer;
  /// Seed for the random explorer; identical in every cell so per-cell
  /// results do not depend on matrix position.
  std::uint64_t seed = 42;
  /// Worker threads; <= 0 picks std::thread::hardware_concurrency().
  int jobs = 0;

  // --- supervisor -----------------------------------------------------------
  /// Per-cell wall-clock budget in seconds (0 = none). A cell that exceeds
  /// it stops at the next schedule boundary and is marked timedOut; the
  /// campaign continues. Timed-out counts are wall-clock-dependent, so
  /// report consumers exclude them from count comparisons.
  double cellTimeoutSeconds = 0.0;
  /// Extra attempts after a timeout or an exception before the cell is
  /// recorded as timedOut/failed. A cell whose explorer throws on every
  /// attempt is recorded with zero counts and its error message — the
  /// campaign survives a poisoned cell instead of dying.
  int cellRetries = 0;

  // --- sharding -------------------------------------------------------------
  /// Run only the cells with matrix index % shardCount == shardIndex
  /// (0-based round-robin over the program-major cell order, so every shard
  /// sees a balanced explorer mix). Shard reports merge back to the
  /// unsharded count set via campaign::mergeReports / `lazyhb merge`.
  int shardIndex = 0;
  int shardCount = 1;

  // --- durability -----------------------------------------------------------
  /// Non-empty: journal every finished cell into this directory (one atomic
  /// file per cell + a config manifest). When the directory already holds a
  /// matching journal, its completed cells are loaded instead of re-run
  /// (resume); a config mismatch throws std::runtime_error. See
  /// campaign/checkpoint.hpp and docs/campaign-service.md.
  std::string checkpointDir;
  /// Require `checkpointDir` to contain an existing journal (the CLI's
  /// --resume): throw std::runtime_error when there is nothing to resume.
  bool requireExistingJournal = false;

  /// Progress hook: the campaign lifecycle events of lazyhb/progress.hpp
  /// (CellStarted/CellFinished/CellRetried/CellTimedOut/CellFailed and one
  /// final CampaignFinished). Invoked from worker threads but serialized —
  /// never two callbacks concurrently.
  ProgressCallback onProgress;
};

/// Fold cells — already in program-major matrix order, but possibly a
/// *partial* matrix (a shard's slice, or a merge of some shards) — into the
/// per-program / per-explorer summaries and campaign totals. The one fold
/// shared by Aggregator::finish() and the report merger, so a merged report
/// can never aggregate differently from a directly-run one.
/// `explorerOrder` fixes the per-explorer total rows (an explorer with no
/// cells keeps an all-zero row, so shard reports stay column-compatible).
[[nodiscard]] CampaignResult foldCells(std::vector<CellResult> cells,
                                       const std::vector<std::string>& explorerOrder);

/// Collects finished cells from worker threads and folds them into the
/// summaries above. submit() is thread-safe; finish() must be called once,
/// after every expected cell has been submitted.
class Aggregator {
 public:
  /// `expected[index]` marks the matrix slots this run will submit (a shard
  /// marks only its slice); `explorerNames` fixes the per-explorer rows.
  Aggregator(std::vector<bool> expected, std::vector<std::string> explorerNames);

  /// Record the cell at matrix slot `index` (program-major order).
  void submit(std::size_t index, CellResult cell);

  /// Cells submitted so far. Not synchronized with in-flight submit()s;
  /// call from the coordinating thread (between pool phases) only.
  [[nodiscard]] std::size_t cellCount() const noexcept;

  /// Fold the submitted cells into summaries and totals. Consumes the
  /// aggregator.
  [[nodiscard]] CampaignResult finish();

 private:
  std::vector<std::string> explorerNames_;
  std::vector<CellResult> cells_;
  std::vector<bool> expected_;
  std::vector<bool> filled_;
  std::mutex mutex_;
};

/// Run the full (programs × explorers) matrix. The campaign entry point for
/// the CLI's `bench` subcommand and the figure benches.
[[nodiscard]] CampaignResult runCampaign(const CampaignOptions& options);

/// Figure 2 rows (one per program) from a campaign that ran "dpor".
[[nodiscard]] std::vector<core::BenchmarkCounts> fig2Counts(
    const CampaignResult& result);

/// Figure 3 rows (one per program) from a campaign that ran both
/// "caching-full" and "caching-lazy".
[[nodiscard]] std::vector<core::CachingCounts> fig3Counts(
    const CampaignResult& result);

}  // namespace lazyhb::campaign
