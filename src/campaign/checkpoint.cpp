#include "campaign/checkpoint.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "campaign/report.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define LAZYHB_HAVE_FSYNC 1
#endif

namespace lazyhb::campaign {
namespace {

namespace fs = std::filesystem;

constexpr const char* kManifestName = "manifest.json";
constexpr const char* kJournalSchemaName = "lazyhb-campaign-journal";
constexpr int kJournalSchemaVersion = 1;

[[noreturn]] void raise(const std::string& message) {
  throw std::runtime_error("lazyhb: " + message);
}

/// The manifest document for `config`. Byte-stable for a given config, so
/// the resume-time compatibility check is a byte comparison.
std::string manifestDocument(const JournalConfig& config) {
  support::JsonWriter json;
  json.beginObject();
  json.field("schema", kJournalSchemaName);
  json.field("version", kJournalSchemaVersion);
  json.field("limit", config.scheduleLimit);
  json.field("max_events", static_cast<std::uint64_t>(config.maxEventsPerSchedule));
  json.field("seed", config.seed);
  json.field("incremental", config.incremental);
  json.field("workers", static_cast<std::int64_t>(config.workers));
  json.field("snapshot_budget", config.snapshotBudgetBytes);
  json.field("memory_model", config.memoryModel);
  json.field("detect_races", config.detectRaces);
  json.field("check_theorems", config.checkTheorems);
  json.field("stop_on_first_violation", config.stopOnFirstViolation);
  json.field("shard_index", static_cast<std::int64_t>(config.shardIndex));
  json.field("shard_count", static_cast<std::int64_t>(config.shardCount));
  json.key("explorers").beginArray();
  for (const std::string& name : config.explorers) json.value(name);
  json.endArray();
  json.key("programs").beginArray();
  for (const std::string& name : config.programs) json.value(name);
  json.endArray();
  json.endObject();
  return json.str() + "\n";
}

std::string readFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    raise("cannot read '" + path + "': " + std::strerror(errno));
  }
  std::string content;
  char buffer[4096];
  std::size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    content.append(buffer, got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) raise("read error on '" + path + "'");
  return content;
}

/// tmp + fsync + rename: after this returns, `path` holds the complete
/// document even across a SIGKILL or power loss; a crash mid-write leaves
/// only the tmp file, which open() ignores.
void writeFileAtomic(const std::string& path, const std::string& document) {
  const std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    raise("cannot write '" + tmp + "': " + std::strerror(errno));
  }
  bool ok =
      std::fwrite(document.data(), 1, document.size(), file) == document.size();
  ok = (std::fflush(file) == 0) && ok;
#ifdef LAZYHB_HAVE_FSYNC
  ok = (fsync(fileno(file)) == 0) && ok;
#endif
  ok = (std::fclose(file) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    raise("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    raise("cannot rename '" + tmp + "' into place: " + std::strerror(errno));
  }
}

/// The matrix index of a `cell-<i>.json` entry, or npos for anything else
/// (the manifest, tmp leftovers, stray files).
std::size_t cellIndexFromName(const std::string& name) {
  constexpr const char* kPrefix = "cell-";
  constexpr const char* kSuffix = ".json";
  const std::size_t prefixLen = std::strlen(kPrefix);
  const std::size_t suffixLen = std::strlen(kSuffix);
  if (name.size() <= prefixLen + suffixLen) return std::string::npos;
  if (name.compare(0, prefixLen, kPrefix) != 0) return std::string::npos;
  if (name.compare(name.size() - suffixLen, suffixLen, kSuffix) != 0) {
    return std::string::npos;
  }
  std::size_t index = 0;
  for (std::size_t i = prefixLen; i < name.size() - suffixLen; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::string::npos;
    index = index * 10 + static_cast<std::size_t>(c - '0');
  }
  return index;
}

}  // namespace

CampaignJournal::CampaignJournal(std::string directory,
                                 const JournalConfig& config,
                                 bool requireExisting)
    : directory_(std::move(directory)) {
  const std::string expectedManifest = manifestDocument(config);
  const fs::path dir(directory_);
  const fs::path manifestPath = dir / kManifestName;

  std::error_code ec;
  const bool haveManifest = fs::exists(manifestPath, ec);
  if (!haveManifest) {
    if (requireExisting) {
      raise("nothing to resume: '" + directory_ +
            "' holds no campaign journal (run without --resume to start one)");
    }
    fs::create_directories(dir, ec);
    if (ec) {
      raise("cannot create checkpoint directory '" + directory_ +
            "': " + ec.message());
    }
    writeFileAtomic(manifestPath.string(), expectedManifest);
    return;
  }

  // The manifest writer is byte-stable, so configuration equality is
  // document equality — any drift (different seed, limit, shard, corpus,
  // ...) fails the resume up front.
  const std::string onDisk = readFile(manifestPath.string());
  if (onDisk != expectedManifest) {
    raise("campaign journal config mismatch in '" + directory_ +
          "': the journal was started with different campaign flags "
          "(seed/limit/shard/corpus/...); rerun with the original flags or "
          "start a fresh checkpoint directory");
  }

  const std::size_t totalCells = config.programs.size() * config.explorers.size();
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    const std::size_t index = cellIndexFromName(name);
    if (index == std::string::npos) continue;
    if (index >= totalCells) {
      raise("campaign journal '" + directory_ + "' holds out-of-range cell '" +
            name + "'");
    }
    const std::string document = readFile(entry.path().string());
    std::string parseError;
    const auto value = support::JsonValue::parse(document, &parseError);
    if (value == nullptr) {
      raise("campaign journal cell '" + name + "' is malformed: " + parseError);
    }
    CellResult cell;
    if (!parseCellJson(*value, &cell, &parseError)) {
      raise("campaign journal cell '" + name + "' is malformed: " + parseError);
    }
    loaded_.emplace(index, std::move(cell));
  }
}

void CampaignJournal::record(std::size_t index, const CellResult& cell) {
  support::JsonWriter json;
  writeCellJson(json, cell);
  const std::string document = json.str() + "\n";
  const std::string path =
      (fs::path(directory_) / ("cell-" + std::to_string(index) + ".json"))
          .string();
  // Distinct cells write distinct files; the lock just keeps the
  // write+rename sequences from interleaving their error reporting.
  const std::lock_guard<std::mutex> guard(writeMutex_);
  writeFileAtomic(path, document);
}

}  // namespace lazyhb::campaign
