// lazyhb/campaign/explorer_spec.hpp
//
// The one explorer factory shared by the CLI, the figure benches and the
// campaign runner. An ExplorerSpec is a *value* naming an explorer
// configuration; `create()` builds a fresh explorer instance from it.
// Because explorers are single-use (ExplorerBase::explore may run once),
// every campaign cell constructs its own explorer from the spec — which is
// also what makes the (program × explorer) matrix embarrassingly parallel.
//
// The canonical mode names are the strings the CLI accepts for --explorer /
// --explorers: dfs, random, dpor, caching-full, caching-lazy.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "explore/explorer.hpp"

namespace lazyhb::campaign {

struct ExplorerSpec {
  enum class Kind : std::uint8_t {
    Dfs,
    Random,
    Dpor,
    CachingFull,
    CachingLazy,
    // Ablation variants (parseable, but not part of allExplorers()):
    DporNoSleep,    ///< Flanagan–Godefroid backtracking without sleep sets
    DporLazyCache,  ///< EXPERIMENTAL §4: DPOR + lazy-HBR prefix cache
    CachingValue,   ///< value-class caching (coarser than caching-lazy)
  };

  Kind kind = Kind::Dfs;
  std::string name;  ///< canonical mode name, e.g. "caching-lazy"

  /// Build a fresh single-use explorer. `seed` affects Kind::Random and,
  /// when `options.workers >= 2`, the parallel frontier pool's per-worker
  /// victim-selection RNGs. With workers >= 2 the shardable tree searches
  /// (dfs, caching-full, caching-lazy) come back as a ParallelExplorer; the
  /// order-sensitive strategies and option combinations fall back to their
  /// sequential explorer — counts are byte-identical either way, so the
  /// fallback is an implementation detail, not a behaviour change.
  [[nodiscard]] std::unique_ptr<explore::Explorer> create(
      const explore::ExplorerOptions& options, std::uint64_t seed) const;
};

/// The five canonical explorer modes, in the order tables print them.
[[nodiscard]] const std::vector<ExplorerSpec>& allExplorers();

/// The ablation variants ("dpor-nosleep", "dpor-lazy-cache") and the
/// observation-centric "caching-value" explorer: constructible through the
/// same factory, excluded from the default campaign matrix so historical
/// reports stay comparable cell-for-cell. Select with --explorers.
[[nodiscard]] const std::vector<ExplorerSpec>& extendedExplorers();

/// Resolve a canonical or extended mode name; nullopt for unknown names.
[[nodiscard]] std::optional<ExplorerSpec> parseExplorerSpec(const std::string& name);

/// Parse a comma-separated mode list ("dpor,caching-lazy"). An empty string
/// selects every mode. Returns nullopt on the first unknown name, copying
/// it into *badName (when non-null) for the error message.
[[nodiscard]] std::optional<std::vector<ExplorerSpec>> parseExplorerList(
    const std::string& csv, std::string* badName = nullptr);

/// "dfs, random, dpor, caching-full, caching-lazy" — for usage strings.
/// With includeExtended, the ablation variants are appended too (use in
/// unknown-name error messages, where every accepted spelling belongs).
[[nodiscard]] std::string explorerNamesHelp(bool includeExtended = false);

}  // namespace lazyhb::campaign
