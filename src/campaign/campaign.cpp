#include "campaign/campaign.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "campaign/work_stealing_pool.hpp"
#include "support/diagnostics.hpp"

namespace lazyhb::campaign {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Find this program's cell for `explorerName` among its row of cells.
const CellResult* cellFor(const std::vector<const CellResult*>& row,
                          const std::string& explorerName) {
  for (const CellResult* cell : row) {
    if (cell->explorer == explorerName) return cell;
  }
  return nullptr;
}

ProgramSummary summarizeProgram(const std::vector<const CellResult*>& row) {
  ProgramSummary s;
  s.id = row.front()->programId;
  s.program = row.front()->program;
  s.family = row.front()->family;
  for (const CellResult* cell : row) {
    s.inequalityHolds = s.inequalityHolds && cell->inequalityHolds();
  }

  if (const CellResult* dpor = cellFor(row, "dpor")) {
    s.hasDpor = true;
    s.dporHbrs = dpor->stats.distinctHbrs;
    s.dporLazyHbrs = dpor->stats.distinctLazyHbrs;
    s.belowDiagonal = s.dporLazyHbrs < s.dporHbrs;
    if (s.dporHbrs > 0) {
      s.redundantHbrPercent = 100.0 *
                              static_cast<double>(s.dporHbrs - s.dporLazyHbrs) /
                              static_cast<double>(s.dporHbrs);
    }
  }

  const CellResult* cachingFull = cellFor(row, "caching-full");
  const CellResult* cachingLazy = cellFor(row, "caching-lazy");
  if (cachingFull != nullptr && cachingLazy != nullptr) {
    s.hasCachingPair = true;
    s.lazyHbrsByFullCaching = cachingFull->stats.distinctLazyHbrs;
    s.lazyHbrsByLazyCaching = cachingLazy->stats.distinctLazyHbrs;
    s.cachingDiffers = s.lazyHbrsByLazyCaching > s.lazyHbrsByFullCaching;
  }

  const CellResult* dfs = cellFor(row, "dfs");
  if (dfs != nullptr && dfs->stats.complete) {
    s.hasDfsBaseline = true;
    s.dfsSchedules = dfs->stats.schedulesExecuted;
    const auto ratio = [&](const CellResult* cell) {
      return (cell == nullptr || cell->stats.schedulesExecuted == 0)
                 ? 0.0
                 : static_cast<double>(s.dfsSchedules) /
                       static_cast<double>(cell->stats.schedulesExecuted);
    };
    s.dporScheduleRatio = ratio(cellFor(row, "dpor"));
    s.cachingLazyScheduleRatio = ratio(cachingLazy);
  }
  return s;
}

}  // namespace

core::BenchmarkCounts CellResult::counts() const {
  core::BenchmarkCounts c;
  c.name = program;
  c.id = programId;
  c.schedules = stats.schedulesExecuted;
  c.hbrs = stats.distinctHbrs;
  c.lazyHbrs = stats.distinctLazyHbrs;
  c.states = stats.distinctStates;
  c.hitScheduleLimit = stats.hitScheduleLimit;
  return c;
}

Aggregator::Aggregator(std::size_t programCount, std::size_t explorerCount)
    : explorerCount_(explorerCount),
      cells_(programCount * explorerCount),
      filled_(programCount * explorerCount, false) {
  LAZYHB_CHECK(explorerCount_ > 0);
}

void Aggregator::submit(std::size_t index, CellResult cell) {
  const std::lock_guard<std::mutex> guard(mutex_);
  LAZYHB_CHECK(index < cells_.size() && !filled_[index]);
  cells_[index] = std::move(cell);
  filled_[index] = true;
}

CampaignResult Aggregator::finish() {
  const std::lock_guard<std::mutex> guard(mutex_);
  for (const bool filled : filled_) {
    LAZYHB_CHECK(filled);  // finish() before every submit() is a runner bug
  }
  CampaignResult result;
  result.cells = std::move(cells_);

  // Per-explorer totals, keyed by position within each program's row so the
  // order matches CampaignOptions::explorers.
  result.perExplorer.resize(explorerCount_);
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& cell = result.cells[i];
    ExplorerTotals& totals = result.perExplorer[i % explorerCount_];
    totals.explorer = cell.explorer;
    ++totals.cells;
    totals.schedules += cell.stats.schedulesExecuted;
    totals.terminal += cell.stats.terminalSchedules;
    totals.pruned += cell.stats.prunedSchedules;
    totals.violations += cell.stats.violationSchedules;
    totals.events += cell.stats.totalEvents;
    totals.eventsElided += cell.stats.eventsElided;
    totals.eventsReplayed += cell.stats.eventsReplayed;
    totals.hbrs += cell.stats.distinctHbrs;
    totals.lazyHbrs += cell.stats.distinctLazyHbrs;
    totals.states += cell.stats.distinctStates;
    totals.wallSeconds += cell.wallSeconds;
    totals.cacheEntries += cell.stats.cacheStats.entries;
    totals.cacheHits += cell.stats.cacheStats.hits;
    totals.cacheApproxBytes += cell.stats.cacheStats.approxBytes;
    if (!cell.inequalityHolds()) ++totals.inequalityViolations;

    result.totalSchedules += cell.stats.schedulesExecuted;
    result.totalEvents += cell.stats.totalEvents;
    result.totalEventsElided += cell.stats.eventsElided;
    result.totalEventsReplayed += cell.stats.eventsReplayed;
    result.cpuSeconds += cell.wallSeconds;
    if (!cell.inequalityHolds()) ++result.inequalityViolations;
  }

  for (ExplorerTotals& totals : result.perExplorer) {
    if (totals.wallSeconds > 0.0) {
      totals.eventsPerSecond =
          static_cast<double>(totals.events) / totals.wallSeconds;
      totals.executedEventsPerSecond =
          static_cast<double>(totals.events - totals.eventsElided) /
          totals.wallSeconds;
    }
  }
  if (result.cpuSeconds > 0.0) {
    result.eventsPerSecond =
        static_cast<double>(result.totalEvents) / result.cpuSeconds;
    result.executedEventsPerSecond =
        static_cast<double>(result.totalEvents - result.totalEventsElided) /
        result.cpuSeconds;
  }

  // Per-program summaries from each row of the matrix.
  const std::size_t programCount = result.cells.size() / explorerCount_;
  result.programs.reserve(programCount);
  std::vector<const CellResult*> row(explorerCount_);
  for (std::size_t p = 0; p < programCount; ++p) {
    for (std::size_t e = 0; e < explorerCount_; ++e) {
      row[e] = &result.cells[p * explorerCount_ + e];
    }
    result.programs.push_back(summarizeProgram(row));
  }
  return result;
}

CampaignResult runCampaign(const CampaignOptions& options) {
  const auto campaignStart = Clock::now();

  std::vector<ExplorerSpec> explorers = options.explorers;
  if (explorers.empty()) explorers = allExplorers();
  std::vector<const programs::ProgramSpec*> corpus = options.programs;
  if (corpus.empty()) {
    for (const programs::ProgramSpec& spec : programs::all()) {
      corpus.push_back(&spec);
    }
  }

  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }

  Aggregator aggregator(corpus.size(), explorers.size());
  std::mutex progressMutex;
  std::size_t cellsDone = 0;
  const std::size_t totalCells = corpus.size() * explorers.size();

  std::vector<WorkStealingPool::Task> tasks;
  tasks.reserve(totalCells);
  for (std::size_t p = 0; p < corpus.size(); ++p) {
    for (std::size_t e = 0; e < explorers.size(); ++e) {
      const programs::ProgramSpec* program = corpus[p];
      const ExplorerSpec spec = explorers[e];
      const std::size_t index = p * explorers.size() + e;
      tasks.push_back([&, program, spec, index] {
        CellResult cell;
        cell.programId = program->id;
        cell.program = program->name;
        cell.family = program->family;
        cell.explorer = spec.name;

        // Per-cell options: the checkpointable contract is a property of
        // the program, not of the campaign.
        explore::ExplorerOptions cellOptions = options.explorer;
        cellOptions.checkpointable = program->checkpointable;

        const auto cellStart = Clock::now();
        auto explorer = spec.create(cellOptions, options.seed);
        cell.stats = explorer->explore(program->body);
        cell.wallSeconds = secondsSince(cellStart);
        if (cell.wallSeconds > 0.0) {
          cell.eventsPerSecond =
              static_cast<double>(cell.stats.totalEvents) / cell.wallSeconds;
          cell.executedEventsPerSecond =
              static_cast<double>(cell.stats.totalEvents -
                                  cell.stats.eventsElided) /
              cell.wallSeconds;
        }
        cell.inequalityDiagnostic = core::checkCountingChain(
            cell.counts(), options.explorer.scheduleLimit);

        if (options.onCellDone) {
          const std::lock_guard<std::mutex> guard(progressMutex);
          options.onCellDone(cell, ++cellsDone, totalCells);
        }
        aggregator.submit(index, std::move(cell));
      });
    }
  }

  WorkStealingPool pool(jobs);
  pool.run(std::move(tasks));

  CampaignResult result = aggregator.finish();
  result.wallSeconds = secondsSince(campaignStart);
  result.tasksStolen = pool.tasksStolen();
  result.jobs = pool.workerCount();
  return result;
}

std::vector<core::BenchmarkCounts> fig2Counts(const CampaignResult& result) {
  std::vector<core::BenchmarkCounts> rows;
  rows.reserve(result.programs.size());
  for (const CellResult& cell : result.cells) {
    if (cell.explorer == "dpor") rows.push_back(cell.counts());
  }
  return rows;
}

std::vector<core::CachingCounts> fig3Counts(const CampaignResult& result) {
  std::vector<core::CachingCounts> rows;
  // Walk program rows; emit one row where both caching cells are present.
  const std::size_t explorerCount =
      result.programs.empty() ? 1 : result.cells.size() / result.programs.size();
  for (std::size_t p = 0; p < result.programs.size(); ++p) {
    const CellResult* full = nullptr;
    const CellResult* lazy = nullptr;
    for (std::size_t e = 0; e < explorerCount; ++e) {
      const CellResult& cell = result.cells[p * explorerCount + e];
      if (cell.explorer == "caching-full") full = &cell;
      if (cell.explorer == "caching-lazy") lazy = &cell;
    }
    if (full == nullptr || lazy == nullptr) continue;
    core::CachingCounts row;
    row.name = full->program;
    row.id = full->programId;
    row.lazyHbrsByRegularCaching = full->stats.distinctLazyHbrs;
    row.lazyHbrsByLazyCaching = lazy->stats.distinctLazyHbrs;
    row.schedulesRegular = full->stats.schedulesExecuted;
    row.schedulesLazy = lazy->stats.schedulesExecuted;
    row.hitScheduleLimit =
        full->stats.hitScheduleLimit || lazy->stats.hitScheduleLimit;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace lazyhb::campaign
