#include "campaign/campaign.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "campaign/checkpoint.hpp"
#include "campaign/work_stealing_pool.hpp"
#include "support/diagnostics.hpp"

namespace lazyhb::campaign {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Find this program's cell for `explorerName` among its row of cells.
const CellResult* cellFor(const std::vector<const CellResult*>& row,
                          const std::string& explorerName) {
  for (const CellResult* cell : row) {
    if (cell->explorer == explorerName) return cell;
  }
  return nullptr;
}

ProgramSummary summarizeProgram(const std::vector<const CellResult*>& row) {
  ProgramSummary s;
  s.id = row.front()->programId;
  s.program = row.front()->program;
  s.family = row.front()->family;
  for (const CellResult* cell : row) {
    s.inequalityHolds = s.inequalityHolds && cell->inequalityHolds();
  }

  if (const CellResult* dpor = cellFor(row, "dpor")) {
    s.hasDpor = true;
    s.dporHbrs = dpor->stats.distinctHbrs;
    s.dporLazyHbrs = dpor->stats.distinctLazyHbrs;
    s.belowDiagonal = s.dporLazyHbrs < s.dporHbrs;
    if (s.dporHbrs > 0) {
      s.redundantHbrPercent = 100.0 *
                              static_cast<double>(s.dporHbrs - s.dporLazyHbrs) /
                              static_cast<double>(s.dporHbrs);
    }
  }

  const CellResult* cachingFull = cellFor(row, "caching-full");
  const CellResult* cachingLazy = cellFor(row, "caching-lazy");
  if (cachingFull != nullptr && cachingLazy != nullptr) {
    s.hasCachingPair = true;
    s.lazyHbrsByFullCaching = cachingFull->stats.distinctLazyHbrs;
    s.lazyHbrsByLazyCaching = cachingLazy->stats.distinctLazyHbrs;
    s.cachingDiffers = s.lazyHbrsByLazyCaching > s.lazyHbrsByFullCaching;
  }

  const CellResult* dfs = cellFor(row, "dfs");
  if (dfs != nullptr && dfs->stats.complete) {
    s.hasDfsBaseline = true;
    s.dfsSchedules = dfs->stats.schedulesExecuted;
    const auto ratio = [&](const CellResult* cell) {
      return (cell == nullptr || cell->stats.schedulesExecuted == 0)
                 ? 0.0
                 : static_cast<double>(s.dfsSchedules) /
                       static_cast<double>(cell->stats.schedulesExecuted);
    };
    s.dporScheduleRatio = ratio(cellFor(row, "dpor"));
    s.cachingLazyScheduleRatio = ratio(cachingLazy);
  }
  return s;
}

}  // namespace

core::BenchmarkCounts CellResult::counts() const {
  core::BenchmarkCounts c;
  c.name = program;
  c.id = programId;
  c.schedules = stats.schedulesExecuted;
  c.hbrs = stats.distinctHbrs;
  c.lazyHbrs = stats.distinctLazyHbrs;
  c.valueClasses = stats.distinctValueClasses;
  c.states = stats.distinctStates;
  c.hitScheduleLimit = stats.hitScheduleLimit;
  return c;
}

CampaignResult foldCells(std::vector<CellResult> cells,
                         const std::vector<std::string>& explorerOrder) {
  LAZYHB_CHECK(!explorerOrder.empty());
  CampaignResult result;
  result.cells = std::move(cells);

  result.perExplorer.resize(explorerOrder.size());
  for (std::size_t e = 0; e < explorerOrder.size(); ++e) {
    result.perExplorer[e].explorer = explorerOrder[e];
  }
  const auto explorerIndex = [&](const std::string& name) {
    for (std::size_t e = 0; e < explorerOrder.size(); ++e) {
      if (explorerOrder[e] == name) return e;
    }
    LAZYHB_CHECK(false && "cell names an explorer outside the campaign order");
    return std::size_t{0};
  };

  for (const CellResult& cell : result.cells) {
    ExplorerTotals& totals = result.perExplorer[explorerIndex(cell.explorer)];
    ++totals.cells;
    totals.schedules += cell.stats.schedulesExecuted;
    totals.terminal += cell.stats.terminalSchedules;
    totals.pruned += cell.stats.prunedSchedules;
    totals.violations += cell.stats.violationSchedules;
    totals.events += cell.stats.totalEvents;
    totals.eventsElided += cell.stats.eventsElided;
    totals.eventsReplayed += cell.stats.eventsReplayed;
    totals.hbrs += cell.stats.distinctHbrs;
    totals.lazyHbrs += cell.stats.distinctLazyHbrs;
    totals.valueClasses += cell.stats.distinctValueClasses;
    totals.states += cell.stats.distinctStates;
    totals.wallSeconds += cell.wallSeconds;
    totals.cacheEntries += cell.stats.cacheStats.entries;
    totals.cacheHits += cell.stats.cacheStats.hits;
    totals.cacheApproxBytes += cell.stats.cacheStats.approxBytes;
    totals.checkpointStages += cell.stats.checkpointStats.stages;
    totals.checkpointBytesStaged += cell.stats.checkpointStats.bytesStaged;
    totals.checkpointEvictions += cell.stats.checkpointStats.evictions;
    totals.checkpointReplayFallbacks += cell.stats.checkpointStats.replayFallbacks;
    if (!cell.inequalityHolds()) ++totals.inequalityViolations;

    result.totalSchedules += cell.stats.schedulesExecuted;
    result.totalEvents += cell.stats.totalEvents;
    result.totalEventsElided += cell.stats.eventsElided;
    result.totalEventsReplayed += cell.stats.eventsReplayed;
    result.cpuSeconds += cell.wallSeconds;
    if (!cell.inequalityHolds()) ++result.inequalityViolations;
    if (cell.fromCheckpoint) ++result.cellsFromCheckpoint;
    if (cell.timedOut) ++result.cellsTimedOut;
    if (cell.failed()) ++result.cellsFailed;
    if (cell.attempts > 1) ++result.cellsRetried;
  }

  for (ExplorerTotals& totals : result.perExplorer) {
    if (totals.wallSeconds > 0.0) {
      totals.eventsPerSecond =
          static_cast<double>(totals.events) / totals.wallSeconds;
      totals.executedEventsPerSecond =
          static_cast<double>(totals.events - totals.eventsElided) /
          totals.wallSeconds;
    }
  }
  if (result.cpuSeconds > 0.0) {
    result.eventsPerSecond =
        static_cast<double>(result.totalEvents) / result.cpuSeconds;
    result.executedEventsPerSecond =
        static_cast<double>(result.totalEvents - result.totalEventsElided) /
        result.cpuSeconds;
  }

  // Per-program summaries: each maximal run of cells sharing a program id
  // (the cells arrive program-major) is one row — possibly a partial row
  // for a shard's slice, which summarizeProgram handles by section.
  for (std::size_t i = 0; i < result.cells.size();) {
    std::size_t j = i;
    while (j < result.cells.size() &&
           result.cells[j].programId == result.cells[i].programId) {
      ++j;
    }
    std::vector<const CellResult*> row;
    row.reserve(j - i);
    for (std::size_t k = i; k < j; ++k) row.push_back(&result.cells[k]);
    result.programs.push_back(summarizeProgram(row));
    i = j;
  }
  return result;
}

Aggregator::Aggregator(std::vector<bool> expected,
                       std::vector<std::string> explorerNames)
    : explorerNames_(std::move(explorerNames)),
      cells_(expected.size()),
      expected_(std::move(expected)),
      filled_(expected_.size(), false) {
  LAZYHB_CHECK(!explorerNames_.empty());
}

void Aggregator::submit(std::size_t index, CellResult cell) {
  const std::lock_guard<std::mutex> guard(mutex_);
  LAZYHB_CHECK(index < cells_.size() && expected_[index] && !filled_[index]);
  cells_[index] = std::move(cell);
  filled_[index] = true;
}

std::size_t Aggregator::cellCount() const noexcept {
  std::size_t count = 0;
  for (const bool filled : filled_) count += filled ? 1 : 0;
  return count;
}

CampaignResult Aggregator::finish() {
  const std::lock_guard<std::mutex> guard(mutex_);
  std::vector<CellResult> cells;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (!expected_[i]) continue;
    LAZYHB_CHECK(filled_[i]);  // finish() before every submit() is a runner bug
    cells.push_back(std::move(cells_[i]));
  }
  cells_.clear();
  return foldCells(std::move(cells), explorerNames_);
}

CampaignResult runCampaign(const CampaignOptions& options) {
  const auto campaignStart = Clock::now();

  if (options.shardCount < 1 || options.shardIndex < 0 ||
      options.shardIndex >= options.shardCount) {
    throw std::invalid_argument(
        "lazyhb: shard index " + std::to_string(options.shardIndex) +
        " out of range for " + std::to_string(options.shardCount) + " shard(s)");
  }

  std::vector<ExplorerSpec> explorers = options.explorers;
  if (explorers.empty()) explorers = allExplorers();
  std::vector<const programs::ProgramSpec*> corpus = options.programs;
  if (corpus.empty()) {
    for (const programs::ProgramSpec& spec : programs::all()) {
      corpus.push_back(&spec);
    }
  }

  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) jobs = 1;
  }

  std::vector<std::string> explorerNames;
  explorerNames.reserve(explorers.size());
  for (const ExplorerSpec& spec : explorers) explorerNames.push_back(spec.name);

  // The shard's slice: round-robin over program-major cell indices, so
  // every shard gets a balanced mix of programs and explorers.
  const std::size_t totalCells = corpus.size() * explorers.size();
  std::vector<bool> inShard(totalCells, false);
  std::size_t shardCells = 0;
  for (std::size_t index = 0; index < totalCells; ++index) {
    if (static_cast<int>(index % static_cast<std::size_t>(options.shardCount)) ==
        options.shardIndex) {
      inShard[index] = true;
      ++shardCells;
    }
  }

  // Durability: open (or create) the journal before any cell runs — a
  // config mismatch must fail the campaign up front, not after hours.
  std::unique_ptr<CampaignJournal> journal;
  if (!options.checkpointDir.empty()) {
    JournalConfig config;
    config.scheduleLimit = options.explorer.scheduleLimit;
    config.maxEventsPerSchedule = options.explorer.maxEventsPerSchedule;
    config.seed = options.seed;
    config.incremental = options.explorer.incremental;
    config.workers = options.explorer.workers;
    config.snapshotBudgetBytes = options.explorer.snapshotBudgetBytes;
    config.memoryModel = memory::memoryModelName(options.explorer.memoryModel);
    config.detectRaces = options.explorer.detectRaces;
    config.checkTheorems = options.explorer.checkTheorems;
    config.stopOnFirstViolation = options.explorer.stopOnFirstViolation;
    config.shardIndex = options.shardIndex;
    config.shardCount = options.shardCount;
    config.explorers = explorerNames;
    for (const programs::ProgramSpec* spec : corpus) {
      config.programs.push_back(spec->name);
    }
    journal = std::make_unique<CampaignJournal>(
        options.checkpointDir, config, options.requireExistingJournal);
  }

  Aggregator aggregator(inShard, explorerNames);
  std::mutex progressMutex;
  std::size_t cellsDone = 0;

  // Serialize every callback (the contract in lazyhb/progress.hpp); the
  // done-count increments under the same lock so consumers see it monotone.
  const auto emitEvent = [&](ProgressEvent event) {
    if (!options.onProgress) return;
    const std::lock_guard<std::mutex> guard(progressMutex);
    event.cellsDone = cellsDone;
    event.cellsTotal = shardCells;
    options.onProgress(event);
  };
  const auto emitFinished = [&](const CellResult& cell) {
    if (!options.onProgress) return;
    const std::lock_guard<std::mutex> guard(progressMutex);
    ProgressEvent event;
    event.kind = ProgressEvent::Kind::CellFinished;
    event.scenario = cell.program;
    event.strategy = cell.explorer;
    event.schedulesExecuted = cell.stats.schedulesExecuted;
    event.scheduleLimit = options.explorer.scheduleLimit;
    event.attempt = cell.attempts;
    event.wallSeconds = cell.wallSeconds;
    event.fromCheckpoint = cell.fromCheckpoint;
    event.cellsDone = ++cellsDone;
    event.cellsTotal = shardCells;
    options.onProgress(event);
  };
  // Count even when no callback is installed: CampaignFinished reads it.
  const auto markDone = [&] {
    const std::lock_guard<std::mutex> guard(progressMutex);
    ++cellsDone;
  };

  std::vector<WorkStealingPool::Task> tasks;
  tasks.reserve(shardCells);
  const int maxAttempts = 1 + (options.cellRetries > 0 ? options.cellRetries : 0);
  for (std::size_t p = 0; p < corpus.size(); ++p) {
    for (std::size_t e = 0; e < explorers.size(); ++e) {
      const std::size_t index = p * explorers.size() + e;
      if (!inShard[index]) continue;
      const programs::ProgramSpec* program = corpus[p];
      const ExplorerSpec spec = explorers[e];

      // Resume: a journaled cell is loaded, not re-run.
      if (journal != nullptr && journal->completed(index)) {
        CellResult cell = journal->loaded(index);
        cell.fromCheckpoint = true;
        if (options.onProgress) {
          emitFinished(cell);
        } else {
          markDone();
        }
        aggregator.submit(index, std::move(cell));
        continue;
      }

      tasks.push_back([&, program, spec, index] {
        CellResult cell;
        cell.programId = program->id;
        cell.program = program->name;
        cell.family = program->family;
        cell.explorer = spec.name;

        // Per-cell options: the checkpointable contract is a property of
        // the program, not of the campaign; the wall-clock budget is the
        // supervisor's.
        explore::ExplorerOptions cellOptions = options.explorer;
        cellOptions.checkpointable = program->checkpointable;
        cellOptions.wallTimeoutSeconds = options.cellTimeoutSeconds;

        {
          ProgressEvent event;
          event.kind = ProgressEvent::Kind::CellStarted;
          event.scenario = cell.program;
          event.strategy = cell.explorer;
          event.scheduleLimit = options.explorer.scheduleLimit;
          emitEvent(std::move(event));
        }

        // The supervisor: re-run a timed-out or throwing cell up to
        // cellRetries extra times; a cell that fails every attempt is
        // recorded with its error and zero counts, and the campaign
        // continues past it.
        int attempt = 0;
        for (;;) {
          ++attempt;
          cell.stats = {};
          cell.error.clear();
          const auto cellStart = Clock::now();
          try {
            auto explorer = spec.create(cellOptions, options.seed);
            cell.stats = explorer->explore(program->body);
          } catch (const std::exception& e) {
            cell.stats = {};
            cell.error = e.what();
          } catch (...) {
            cell.stats = {};
            cell.error = "unknown exception";
          }
          cell.wallSeconds = secondsSince(cellStart);
          if ((cell.failed() || cell.stats.timedOut) && attempt < maxAttempts) {
            ProgressEvent event;
            event.kind = ProgressEvent::Kind::CellRetried;
            event.scenario = cell.program;
            event.strategy = cell.explorer;
            event.schedulesExecuted = cell.stats.schedulesExecuted;
            event.scheduleLimit = options.explorer.scheduleLimit;
            event.attempt = attempt;
            event.wallSeconds = cell.wallSeconds;
            emitEvent(std::move(event));
            continue;
          }
          break;
        }
        cell.attempts = attempt;
        cell.timedOut = cell.stats.timedOut;
        if (cell.wallSeconds > 0.0) {
          cell.eventsPerSecond =
              static_cast<double>(cell.stats.totalEvents) / cell.wallSeconds;
          cell.executedEventsPerSecond =
              static_cast<double>(cell.stats.totalEvents -
                                  cell.stats.eventsElided) /
              cell.wallSeconds;
        }
        if (!cell.failed()) {
          // A timed-out prefix still satisfies the §3 chain (every count is
          // a prefix of the full run's), so the check stays on.
          cell.inequalityDiagnostic = core::checkCountingChain(
              cell.counts(), options.explorer.scheduleLimit);
        }

        if (cell.timedOut || cell.failed()) {
          ProgressEvent event;
          event.kind = cell.failed() ? ProgressEvent::Kind::CellFailed
                                     : ProgressEvent::Kind::CellTimedOut;
          event.scenario = cell.program;
          event.strategy = cell.explorer;
          event.schedulesExecuted = cell.stats.schedulesExecuted;
          event.scheduleLimit = options.explorer.scheduleLimit;
          event.attempt = cell.attempts;
          event.wallSeconds = cell.wallSeconds;
          emitEvent(std::move(event));
        }

        // Journal before announcing: once a consumer sees CellFinished the
        // cell must survive a kill.
        if (journal != nullptr) journal->record(index, cell);
        if (options.onProgress) {
          emitFinished(cell);
        } else {
          markDone();
        }
        aggregator.submit(index, std::move(cell));
      });
    }
  }

  WorkStealingPool pool(jobs);
  pool.run(std::move(tasks));

  CampaignResult result = aggregator.finish();
  result.wallSeconds = secondsSince(campaignStart);
  result.tasksStolen = pool.tasksStolen();
  result.jobs = pool.workerCount();
  result.shardIndex = options.shardIndex;
  result.shardCount = options.shardCount;

  if (options.onProgress) {
    ProgressEvent event;
    event.kind = ProgressEvent::Kind::CampaignFinished;
    event.schedulesExecuted = result.totalSchedules;
    event.scheduleLimit = options.explorer.scheduleLimit;
    event.wallSeconds = result.wallSeconds;
    emitEvent(std::move(event));
  }
  return result;
}

std::vector<core::BenchmarkCounts> fig2Counts(const CampaignResult& result) {
  std::vector<core::BenchmarkCounts> rows;
  rows.reserve(result.programs.size());
  for (const CellResult& cell : result.cells) {
    if (cell.explorer == "dpor") rows.push_back(cell.counts());
  }
  return rows;
}

std::vector<core::CachingCounts> fig3Counts(const CampaignResult& result) {
  std::vector<core::CachingCounts> rows;
  // Walk program rows; emit one row where both caching cells are present.
  for (std::size_t i = 0; i < result.cells.size();) {
    std::size_t j = i;
    const CellResult* full = nullptr;
    const CellResult* lazy = nullptr;
    while (j < result.cells.size() &&
           result.cells[j].programId == result.cells[i].programId) {
      if (result.cells[j].explorer == "caching-full") full = &result.cells[j];
      if (result.cells[j].explorer == "caching-lazy") lazy = &result.cells[j];
      ++j;
    }
    if (full != nullptr && lazy != nullptr) {
      core::CachingCounts row;
      row.name = full->program;
      row.id = full->programId;
      row.lazyHbrsByRegularCaching = full->stats.distinctLazyHbrs;
      row.lazyHbrsByLazyCaching = lazy->stats.distinctLazyHbrs;
      row.schedulesRegular = full->stats.schedulesExecuted;
      row.schedulesLazy = lazy->stats.schedulesExecuted;
      row.hitScheduleLimit =
          full->stats.hitScheduleLimit || lazy->stats.hitScheduleLimit;
      rows.push_back(row);
    }
    i = j;
  }
  return rows;
}

}  // namespace lazyhb::campaign
